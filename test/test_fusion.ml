(* Differential fusion suite: every workload under the partitioned scheme
   with and without --fuse, serial and with a 4-domain pool.

   - fused runs are deterministic: identical stats and finish time at any
     job count, and across repeated runs;
   - on every workload where the pass makes at least one fusion decision,
     the fused run moves no more ledger flit-hops than the unfused one;
   - on the DNN-style chain workloads (resnet_block, mobilenet_block) the
     reduction is at least 15% — the headline the fusion pass exists for;
   - fused schedules pass the dependence race validator. *)

module Pipeline = Ndp_core.Pipeline
module Stats = Ndp_sim.Stats
module Ledger = Ndp_obs.Ledger
module Pool = Ndp_prelude.Pool

let unfused = Pipeline.Partitioned Pipeline.partitioned_defaults

let fused = Pipeline.Partitioned { Pipeline.partitioned_defaults with Pipeline.fuse = true }

(* The workloads whose statement chains the pass targets; everything else
   just has to not regress. *)
let dnn_targets = [ "resnet_block"; "mobilenet_block" ]

let run ?pool scheme name =
  let kernel = Ndp_workloads.Suite.find name in
  let obs = Ndp_obs.Sink.create ~metrics:false ~trace:false ~ledger:true () in
  let r = Pipeline.Job.run ?pool ~obs (Pipeline.Job.make scheme kernel) in
  (r, Ledger.total_flit_hops obs.Ndp_obs.Sink.ledger)

let check_same name what (a : Pipeline.result) (b : Pipeline.result) =
  if a.Pipeline.exec_time <> b.Pipeline.exec_time then
    Alcotest.failf "%s: %s changed the finish time (%d vs %d)" name what a.Pipeline.exec_time
      b.Pipeline.exec_time;
  if Stats.to_alist a.Pipeline.stats <> Stats.to_alist b.Pipeline.stats then
    Alcotest.failf "%s: %s changed the statistics" name what

let fused_deterministic () =
  List.iter
    (fun name ->
      let serial, _ = run fused name in
      let serial2, _ = run fused name in
      check_same name "a repeated serial fused run" serial serial2;
      Pool.with_pool ~jobs:4 (fun pool ->
          let pooled, _ = run ~pool fused name in
          check_same name "--jobs 4 on a fused run" serial pooled))
    Ndp_workloads.Suite.names

let unfused_unchanged () =
  (* The unfused partitioned path must be byte-identical whether or not the
     fusion code is linked in the binary: both spellings of "no fusion"
     agree, serial and pooled. *)
  List.iter
    (fun name ->
      let plain, _ = run unfused name in
      let cap0 =
        Pipeline.Partitioned
          { Pipeline.partitioned_defaults with Pipeline.fuse = true; fuse_capacity = Some 0 }
      in
      let identity, _ = run cap0 name in
      check_same name "capacity-0 fusion" plain identity;
      Pool.with_pool ~jobs:4 (fun pool ->
          let pooled, _ = run ~pool unfused name in
          check_same name "--jobs 4 on an unfused run" plain pooled))
    dnn_targets

let fused_moves_no_more () =
  (* Strict on the chain workloads the pass targets. Elsewhere a fused
     chain member runs unsplit, which can cost a handful of input flits
     against the write-backs it saves — allow 1% on those. *)
  List.iter
    (fun name ->
      let rf, fused_flits = run fused name in
      let _, unfused_flits = run unfused name in
      let bound =
        if List.mem name dnn_targets then unfused_flits
        else unfused_flits + (unfused_flits / 100)
      in
      if rf.Pipeline.fusion_decisions <> [] && fused_flits > bound then
        Alcotest.failf "%s: fusion made %d decisions yet moved more flit-hops (%d vs %d)" name
          (List.length rf.Pipeline.fusion_decisions)
          fused_flits unfused_flits)
    Ndp_workloads.Suite.names

let dnn_reduction () =
  let winners =
    List.filter
      (fun name ->
        let rf, fused_flits = run fused name in
        let _, unfused_flits = run unfused name in
        if rf.Pipeline.fusion_decisions = [] then
          Alcotest.failf "%s: no fusion decisions on a DNN chain workload" name;
        unfused_flits > 0
        && float_of_int (unfused_flits - fused_flits) /. float_of_int unfused_flits >= 0.15)
      dnn_targets
  in
  if List.length winners < 2 then
    Alcotest.failf "fusion reduced NoC flit-hops by >=15%% on only %d of [%s]"
      (List.length winners)
      (String.concat "; " dnn_targets)

let fused_race_free () =
  List.iter
    (fun name ->
      let kernel = Ndp_workloads.Suite.find name in
      let diags = Ndp_analysis.Validate.check_kernel fused kernel in
      match List.filter Ndp_analysis.Diagnostic.is_error diags with
      | [] -> ()
      | errs ->
        Alcotest.failf "%s: fused schedule has races:\n  %s" name
          (String.concat "\n  " (List.map Ndp_analysis.Diagnostic.to_string errs)))
    ("fft" :: "water" :: dnn_targets)

let decisions_reconcile () =
  (* Each decision's predicted saving must be a real saving in the measured
     ledger: the summed per-chain measured deltas account for at least the
     whole fused-vs-unfused total (chains can overlap statements, so the
     sum may exceed the total, never undercut it by more than rounding). *)
  List.iter
    (fun name ->
      let kernel = Ndp_workloads.Suite.find name in
      let o = Ndp_serve.Service.analyze_fusion (Pipeline.Job.make fused kernel) in
      if o.Ndp_serve.Service.f_reduction_pct < 15.0 then
        Alcotest.failf "%s: analyze --fusion reports only %.1f%% reduction" name
          o.Ndp_serve.Service.f_reduction_pct;
      List.iter
        (fun (d : Ndp_core.Fusion.decision) ->
          if d.Ndp_core.Fusion.d_pred_saved_flit_hops <= 0 then
            Alcotest.failf "%s: a fusion decision predicts no saving" name;
          if d.Ndp_core.Fusion.d_elided_stores <= 0 then
            Alcotest.failf "%s: a fusion decision elides no stores" name)
        o.Ndp_serve.Service.f_fused.Pipeline.fusion_decisions)
    dnn_targets

let tests =
  [
    ( "fusion",
      [
        Alcotest.test_case "fused runs deterministic (jobs 1/4, repeated)" `Slow
          fused_deterministic;
        Alcotest.test_case "capacity-0 and unfused agree (jobs 1/4)" `Slow unfused_unchanged;
        Alcotest.test_case "fused movement <= unfused wherever fusion fires" `Slow
          fused_moves_no_more;
        Alcotest.test_case "DNN chains: >=15% flit-hop reduction" `Slow dnn_reduction;
        Alcotest.test_case "fused schedules race-free" `Slow fused_race_free;
        Alcotest.test_case "fusion decisions reconcile with the ledger" `Slow
          decisions_reconcile;
      ] );
  ]
