(* Runs each module's suites as its own Alcotest run so one dying suite
   cannot mask another: every suite executes, the failures are collected,
   and the process exits nonzero with a summary naming exactly which
   suites failed (previously a bare aggregator: one combined run, one
   combined report). *)

let suites =
  [
    ("prelude", Test_prelude.tests);
    ("graph", Test_graph.tests);
    ("noc", Test_noc.tests);
    ("mem", Test_mem.tests);
    ("ir", Test_ir.tests);
    ("sim", Test_sim.tests);
    ("core", Test_core.tests);
    ("workloads", Test_workloads.tests);
    ("pipeline", Test_pipeline.tests);
    ("pool", Test_pool.tests);
    ("analysis", Test_analysis.tests);
    ("obs", Test_obs.tests);
    ("extra", Test_extra.tests);
    ("equiv", Test_equiv.tests);
    ("fault", Test_fault.tests);
    ("serve", Test_serve.tests);
    ("fusion", Test_fusion.tests);
    ("prop", Test_prop.tests);
  ]

let () =
  (* With CLI arguments (`test <filter>`, `list`, ...) defer to Alcotest's
     own driver over the combined suite — a filter that matches nothing in
     one module would otherwise abort the whole per-suite sweep. *)
  if Array.length Sys.argv > 1 then Alcotest.run "ndp" (List.concat_map snd suites)
  else
  let failed =
    List.filter_map
      (fun (name, tests) ->
        match Alcotest.run ~and_exit:false ("ndp-" ^ name) tests with
        | () -> None
        | exception Alcotest.Test_error -> Some name)
      suites
  in
  match failed with
  | [] -> ()
  | names ->
    Printf.eprintf "\n%d of %d suites FAILED: %s\n%!" (List.length names) (List.length suites)
      (String.concat ", " names);
    exit 1
