let () =
  Alcotest.run "ndp"
    (Test_prelude.tests @ Test_graph.tests @ Test_noc.tests @ Test_mem.tests
    @ Test_ir.tests @ Test_sim.tests @ Test_core.tests @ Test_workloads.tests
    @ Test_pipeline.tests @ Test_pool.tests @ Test_analysis.tests @ Test_obs.tests
    @ Test_extra.tests)
