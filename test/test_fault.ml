(* Fault injection and schedule repair: the plan mini-language and its
   resolved semantics, retry/stall/backpressure accounting through the
   fault.* metric family, empty-plan identity, repair effectiveness over
   the whole 12-application suite, race-freedom of repaired schedules and
   bit-determinism of faulted runs across worker-pool sizes. *)

module Plan = Ndp_fault.Plan
module Pipeline = Ndp_core.Pipeline
module Config = Ndp_sim.Config
module Mesh = Ndp_noc.Mesh
module Suite = Ndp_workloads.Suite
module Sink = Ndp_obs.Sink
module Metrics = Ndp_obs.Metrics

let mesh = Config.mesh Config.default
let seed = Config.default.Config.seed

let partitioned = Pipeline.Partitioned Pipeline.partitioned_defaults

let fixed2 =
  Pipeline.Partitioned
    { Pipeline.partitioned_defaults with Pipeline.window = Pipeline.Fixed 2 }

let parse_exn spec =
  match Plan.parse ~mesh ~seed spec with
  | Ok p -> p
  | Error e -> Alcotest.failf "spec %S rejected: %s" spec e

let metric_counter alist name =
  match List.assoc_opt name alist with
  | Some (Metrics.Counter_v n) -> n
  | Some _ -> Alcotest.failf "%s is not a counter" name
  | None -> Alcotest.failf "%s missing from registry" name

(* -------------------------------------------------------------------- *)
(* Plan construction and the --faults mini-language.                     *)

let parse_full_spec () =
  let p = parse_exn "kill=2,slow=1x4.0,stall=9@0+200000,mc=0x2.5" in
  let k, d, st, m = Plan.counts p in
  Alcotest.(check (list int)) "counts" [ 2; 1; 1; 1 ] [ k; d; st; m ];
  Alcotest.(check bool) "not empty" false (Plan.is_empty p);
  Alcotest.(check int) "stall skips the window" 200000
    (Plan.stall_until p ~node:9 ~time:150);
  Alcotest.(check int) "stall over, time unchanged" 200000
    (Plan.stall_until p ~node:9 ~time:200000);
  Alcotest.(check int) "other nodes unaffected" 150
    (Plan.stall_until p ~node:8 ~time:150);
  Alcotest.(check bool) "stalled node avoided" true (Plan.avoided p 9);
  Alcotest.(check (float 1e-9)) "mc factor" 2.5 (Plan.mc_factor p 0)

let parse_directed_kill () =
  let p = parse_exn "kill=14>20" in
  let fwd = Mesh.link_index mesh { Mesh.from_node = 14; to_node = 20 } in
  let bwd = Mesh.link_index mesh { Mesh.from_node = 20; to_node = 14 } in
  Alcotest.(check bool) "forward direction killed" true (Plan.link_killed p fwd);
  Alcotest.(check bool) "reverse direction killed" true (Plan.link_killed p bwd);
  let k, d, st, m = Plan.counts p in
  Alcotest.(check (list int)) "one link only" [ 1; 0; 0; 0 ] [ k; d; st; m ]

let parse_rejects_garbage () =
  let rejected spec =
    match Plan.parse ~mesh ~seed spec with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "spec %S should not parse" spec
  in
  rejected "kill=";
  rejected "stall=9";
  rejected "mc=0";
  rejected "slow=2";
  rejected "frobnicate=1";
  (* nodes 0 and 35 are opposite mesh corners, not adjacent *)
  rejected "kill=0>35"

let plans_are_seed_deterministic () =
  let killed p =
    List.init (Mesh.num_links mesh) (fun i -> Plan.link_killed p i)
  in
  let a = Plan.make ~mesh ~seed:123 [ Plan.Kill_links 3 ] in
  let b = Plan.make ~mesh ~seed:123 [ Plan.Kill_links 3 ] in
  Alcotest.(check (list bool)) "same seed, same links" (killed a) (killed b);
  Alcotest.(check string) "same describe" (Plan.describe a) (Plan.describe b)

let distance_respects_faults () =
  let free = Plan.empty ~mesh in
  for u = 0 to 35 do
    Alcotest.(check int)
      (Printf.sprintf "fault-free distance 0->%d" u)
      (Mesh.distance mesh 0 u) (Plan.distance free 0 u)
  done;
  let p = parse_exn "kill=14>20" in
  Alcotest.(check bool) "killed link costs more than a hop" true
    (Plan.distance p 14 20 > Mesh.distance mesh 14 20);
  Alcotest.(check int) "unrelated pair unchanged" (Mesh.distance mesh 0 1)
    (Plan.distance p 0 1)

(* -------------------------------------------------------------------- *)
(* Accounting through the fault.* metric family.                         *)

let run_with_metrics ?faults ?repair kernel =
  let obs = Sink.create ~metrics:true () in
  let result = Pipeline.run ~obs ?faults ?repair fixed2 kernel in
  (result, Metrics.to_alist obs.Sink.metrics)

let kill_charges_retries () =
  let kernel = Suite.find "fft" in
  let _, alist = run_with_metrics ~faults:(parse_exn "kill=2") kernel in
  Alcotest.(check bool) "link_retries > 0" true (metric_counter alist "fault.link_retries" > 0);
  Alcotest.(check bool) "msg_drops > 0" true (metric_counter alist "fault.msg_drops" > 0)

let stall_charges_cycles_and_repair_clears_them () =
  let kernel = Suite.find "fft" in
  let faults = parse_exn "stall=9@0+200000" in
  let _, stalled = run_with_metrics ~faults kernel in
  Alcotest.(check bool) "stall_cycles > 0" true (metric_counter stalled "fault.stall_cycles" > 0);
  let repaired, alist = run_with_metrics ~faults ~repair:true kernel in
  Alcotest.(check int) "repair leaves the stalled node idle" 0
    (metric_counter alist "fault.stall_cycles");
  Alcotest.(check int) "stalled node runs nothing" 0
    repaired.Pipeline.node_busy.(9);
  Alcotest.(check bool) "tasks were remapped" true (repaired.Pipeline.remapped_tasks > 0);
  Alcotest.(check int) "remapped counter matches result field"
    repaired.Pipeline.remapped_tasks
    (metric_counter alist "fault.remapped_tasks")

let fault_free_registry_has_no_fault_entries () =
  let kernel = Suite.find "fft" in
  let _, alist = run_with_metrics kernel in
  Alcotest.(check (list string)) "no fault.* samples" []
    (List.filter
       (fun (name, _) -> String.length name >= 6 && String.sub name 0 6 = "fault.")
       alist
    |> List.map fst)

let empty_plan_identical_on_workload () =
  let kernel = Suite.find "fft" in
  let plain = Pipeline.run partitioned kernel in
  let faulted = Pipeline.run ~faults:(Plan.empty ~mesh) partitioned kernel in
  Alcotest.(check int) "exec_time" plain.Pipeline.exec_time faulted.Pipeline.exec_time;
  Alcotest.(check (list (pair string int)))
    "stats"
    (Ndp_sim.Stats.to_alist plain.Pipeline.stats)
    (Ndp_sim.Stats.to_alist faulted.Pipeline.stats);
  Alcotest.(check (array int)) "node finish times" plain.Pipeline.node_finish
    faulted.Pipeline.node_finish

(* -------------------------------------------------------------------- *)
(* Repair effectiveness and safety over the whole suite.                 *)

let repair_beats_unrepaired () =
  (* One killed link on a hot center route. Repair must win on at least
     10 of the 12 applications (a remap that avoids the retry penalty can
     still lose a close race when the detour congests another link). *)
  let faults = parse_exn "kill=14>20" in
  let verdicts =
    List.map
      (fun kernel ->
        let broken = Pipeline.run ~faults partitioned kernel in
        let repaired = Pipeline.run ~faults ~repair:true partitioned kernel in
        (kernel.Ndp_core.Kernel.name,
         repaired.Pipeline.exec_time < broken.Pipeline.exec_time))
      (Suite.all ())
  in
  let wins = List.length (List.filter snd verdicts) in
  let losses = List.filter_map (fun (n, w) -> if w then None else Some n) verdicts in
  if wins < 10 then
    Alcotest.failf "repair won only %d/12 (lost on: %s)" wins (String.concat ", " losses)

let repaired_schedules_race_free () =
  let faults = parse_exn "kill=14>20,stall=9@0+200000" in
  List.iter
    (fun name ->
      let kernel = Suite.find name in
      let result = Pipeline.run ~validate:true ~faults ~repair:true partitioned kernel in
      let errors =
        List.filter Ndp_analysis.Diagnostic.is_error
          (Ndp_analysis.Validate.check_result ~kernel result)
      in
      Alcotest.(check (list string))
        (name ^ " repaired schedule race-free") []
        (List.map Ndp_analysis.Diagnostic.to_string errors))
    [ "fft"; "water"; "lu"; "radix" ]

let deterministic_across_pool_sizes () =
  (* The adaptive-window preprocessing is the only pool-parallel stage of
     a pipeline run; a faulted + repaired run must be bit-identical at
     any worker count because every random choice lives in the plan. *)
  let faults = parse_exn "kill=2,stall=9@0+200000,mc=0x2" in
  let fingerprint pool kernel =
    let r = Pipeline.run ?pool ~faults ~repair:true partitioned kernel in
    ( Ndp_sim.Stats.to_alist r.Pipeline.stats,
      r.Pipeline.exec_time,
      r.Pipeline.node_finish,
      r.Pipeline.remapped_tasks,
      r.Pipeline.windows_chosen )
  in
  List.iter
    (fun kernel ->
      let name = kernel.Ndp_core.Kernel.name in
      let reference = fingerprint None kernel in
      List.iter
        (fun jobs ->
          Ndp_prelude.Pool.with_pool ~jobs (fun pool ->
              let got = fingerprint (Some pool) kernel in
              Alcotest.(check bool)
                (Printf.sprintf "%s identical at %d jobs" name jobs)
                true (got = reference)))
        [ 1; 4; 7 ])
    (Suite.all ())

let repaired_schedule_identical_across_pool_sizes () =
  (* Stronger than the stats fingerprint: the emitted task lists of the
     repaired schedule themselves, compared task by task. *)
  let faults = parse_exn "kill=14>20,stall=9@0+200000" in
  let kernel = Suite.find "fft" in
  let tasks_of pool =
    let r = Pipeline.run ?pool ~validate:true ~faults ~repair:true partitioned kernel in
    List.map
      (function
        | Pipeline.Serialized { t_tasks; _ } -> t_tasks
        | Pipeline.Windowed { t_compiled; _ } ->
          List.map fst t_compiled.Ndp_core.Window.tasks)
      r.Pipeline.traces
  in
  let reference = tasks_of None in
  List.iter
    (fun jobs ->
      Ndp_prelude.Pool.with_pool ~jobs (fun pool ->
          Alcotest.(check bool)
            (Printf.sprintf "schedules identical at %d jobs" jobs)
            true
            (tasks_of (Some pool) = reference)))
    [ 1; 4; 7 ]

let tests =
  [
    ( "fault",
      [
        Alcotest.test_case "parse full spec" `Quick parse_full_spec;
        Alcotest.test_case "parse directed kill" `Quick parse_directed_kill;
        Alcotest.test_case "parse rejects garbage" `Quick parse_rejects_garbage;
        Alcotest.test_case "plans seed-deterministic" `Quick plans_are_seed_deterministic;
        Alcotest.test_case "distance respects faults" `Quick distance_respects_faults;
        Alcotest.test_case "kill charges retries" `Quick kill_charges_retries;
        Alcotest.test_case "stall charged, repair clears" `Quick
          stall_charges_cycles_and_repair_clears_them;
        Alcotest.test_case "fault-free registry clean" `Quick
          fault_free_registry_has_no_fault_entries;
        Alcotest.test_case "empty plan identical on workload" `Quick
          empty_plan_identical_on_workload;
        Alcotest.test_case "repair beats unrepaired on >= 10/12" `Slow repair_beats_unrepaired;
        Alcotest.test_case "repaired schedules race-free" `Slow repaired_schedules_race_free;
        Alcotest.test_case "deterministic across pool sizes" `Slow
          deterministic_across_pool_sizes;
        Alcotest.test_case "repaired schedule identical across pool sizes" `Slow
          repaired_schedule_identical_across_pool_sizes;
      ] );
  ]
