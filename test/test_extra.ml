(* Cross-cutting invariants that span several libraries. *)

module P = Ndp_core.Pipeline
module Task = Ndp_sim.Task

let env_shadowing () =
  let open Ndp_ir in
  let e = Env.bind "i" 2 (Env.bind "i" 1 Env.empty) in
  Alcotest.(check (option int)) "latest binding wins" (Some 2) (Env.lookup e "i");
  Alcotest.(check int) "single entry" 1 (List.length (Env.to_list e))

let qcheck_affine_eval_linear =
  (* eval(affine, k*env) is linear in the environment. *)
  QCheck.Test.make ~name:"affine subscripts evaluate linearly" ~count:200
    QCheck.(quad (int_range (-20) 20) (int_range (-20) 20) (int_range (-50) 50) small_nat)
    (fun (ci, cj, k, i) ->
      let open Ndp_ir in
      let sub = Subscript.affine [ ("i", ci); ("j", cj) ] k in
      let env = Env.of_list [ ("i", i); ("j", 3) ] in
      Subscript.eval_affine env sub = Some ((ci * i) + (cj * 3) + k))

let qcheck_mix_total =
  QCheck.Test.make ~name:"op mix counts every operator once" ~count:200
    QCheck.(list_of_size Gen.(0 -- 20) (oneofl Ndp_ir.Op.all))
    (fun ops -> Task.mix_total (Task.mix_of_ops ops) = List.length ops)

let qcheck_cost_at_least_ops =
  QCheck.Test.make ~name:"op cost bounded: n <= cost <= 10n" ~count:200
    QCheck.(list_of_size Gen.(0 -- 20) (oneofl Ndp_ir.Op.all))
    (fun ops ->
      let c = Task.cost_of_ops ops and n = List.length ops in
      c >= n && c <= 10 * n)

let engine_finish_time_monotone () =
  (* finish_time equals the max task finish and never decreases. *)
  let m = Ndp_sim.Machine.create Ndp_sim.Config.default in
  let engine = Ndp_sim.Engine.create m in
  let mk id node = Task.make ~id ~group:0 ~node ~ops:[ Ndp_ir.Op.Add ] ~operands:[] ~label:"t" () in
  Ndp_sim.Engine.run engine [ mk 0 1 ];
  let f1 = (Ndp_sim.Stats.finish_time (Ndp_sim.Engine.stats engine)) in
  Ndp_sim.Engine.run engine [ mk 1 1; mk 2 2 ];
  let f2 = (Ndp_sim.Stats.finish_time (Ndp_sim.Engine.stats engine)) in
  Alcotest.(check bool) "monotone" true (f2 >= f1);
  Alcotest.(check int) "elapsed matches max clock" f2 (Ndp_sim.Engine.elapsed engine)

let group_hops_sum_to_total () =
  let k = Ndp_workloads.Suite.find "fft" in
  let o = P.run (P.Partitioned P.partitioned_defaults) k in
  let per_group = Array.fold_left ( + ) 0 o.P.group_hops in
  Alcotest.(check int) "per-statement hops sum to the run total"
    (Ndp_sim.Stats.hops o.P.stats) per_group

let adaptive_matches_its_fixed_choice () =
  (* Running with the window size the adaptive search chose must give the
     same result as the adaptive run when all nests chose the same size. *)
  let k = Ndp_workloads.Suite.find "water" in
  let a = P.run (P.Partitioned P.partitioned_defaults) k in
  match List.sort_uniq compare (List.map snd a.P.windows_chosen) with
  | [ w ] ->
    let f = P.run (P.Partitioned { P.partitioned_defaults with P.window = P.Fixed w }) k in
    Alcotest.(check int) "identical execution" a.P.exec_time f.P.exec_time
  | _ -> () (* nests disagreed; nothing to compare *)

let unsplit_guard_caps_tasks () =
  (* Cholesky's 2-3 operand statements should mostly run whole: the task
     count stays close to the instance count. *)
  let k = Ndp_workloads.Suite.find "cholesky" in
  let o = P.run (P.Partitioned P.partitioned_defaults) k in
  Alcotest.(check bool) "few extra tasks" true
    (float_of_int o.P.tasks_emitted < 1.6 *. float_of_int o.P.num_instances)

let wide_statements_do_split () =
  let k = Ndp_workloads.Suite.find "barnes" in
  let o = P.run (P.Partitioned P.partitioned_defaults) k in
  Alcotest.(check bool) "splits happen" true (o.P.tasks_emitted > o.P.num_instances)

let est_movement_reported () =
  let k = Ndp_workloads.Suite.find "water" in
  let o = P.run (P.Partitioned P.partitioned_defaults) k in
  Alcotest.(check bool) "estimate positive" true (o.P.est_movement_total > 0)

let energy_breakdown_consistent () =
  let k = Ndp_workloads.Suite.find "fft" in
  let o = P.run P.Default k in
  let b = o.P.energy in
  Alcotest.(check bool) "all components nonnegative" true
    (b.Ndp_sim.Energy.network >= 0.0 && b.Ndp_sim.Energy.l1 >= 0.0
    && b.Ndp_sim.Energy.l2 >= 0.0 && b.Ndp_sim.Energy.dram >= 0.0
    && b.Ndp_sim.Energy.compute >= 0.0 && b.Ndp_sim.Energy.sync >= 0.0)

let common_improvement_helpers () =
  Alcotest.(check (float 1e-9)) "halved" 50.0 (Ndp_experiments.Common.improvement ~base:100 ~opt:50);
  Alcotest.(check bool) "geomean clamps nonpositive entries" true
    (Ndp_experiments.Common.geomean_improvement [ (-5.0, ()); (20.0, ()) ] > 0.0)

let table_cells () =
  Alcotest.(check string) "fixed decimals" "3.14" (Ndp_prelude.Table.cell_f 3.14159);
  Alcotest.(check string) "percent suffix" "50.00%" (Ndp_prelude.Table.cell_pct 50.0)

let stmt_analyzable_fraction () =
  let s = Ndp_ir.Parser.statement "x[y[i]] = a[i] + b[i]" in
  Alcotest.(check (pair (float 0.01) (float 0.01))) "2 of 3" (2.0, 3.0)
    (Ndp_ir.Stmt.analyzable_fraction s)

let kernel_hot_ranges_ordered () =
  let k = Ndp_workloads.Suite.find "minimd" in
  (* The hottest arrays are taken first; a tiny budget yields a prefix. *)
  let small = Ndp_core.Kernel.hot_ranges k ~budget:(256 * 1024) in
  let large = Ndp_core.Kernel.hot_ranges k ~budget:(4 * 1024 * 1024) in
  Alcotest.(check bool) "prefix property" true
    (List.length small <= List.length large
    && List.for_all (fun r -> List.mem r large) small)

let codegen_window_programs () =
  let k = Ndp_workloads.Suite.find "water" in
  let config = Ndp_sim.Config.default in
  let machine = Ndp_sim.Machine.create config in
  let insp = Ndp_core.Kernel.inspector k in
  Ndp_ir.Inspector.run insp;
  let address_of = Ndp_core.Kernel.address_of k in
  let ctx =
    Ndp_core.Context.create ~machine
      ~compiler_resolve:(Ndp_ir.Inspector.compiler_resolver insp ~address_of)
      ~runtime_resolve:(Ndp_ir.Inspector.runtime_resolver insp ~address_of)
      ~arrays:k.Ndp_core.Kernel.program.Ndp_ir.Loop.arrays
      ~options:(Ndp_core.Context.default_options config) ()
  in
  let nest = List.hd k.Ndp_core.Kernel.program.Ndp_ir.Loop.nests in
  let env = List.hd (Ndp_ir.Loop.iterations nest) in
  let metas =
    List.mapi
      (fun si stmt ->
        { Ndp_core.Window.group = si; default_node = 4;
          inst = { Ndp_ir.Dependence.stmt_idx = si; stmt; env } })
      nest.Ndp_ir.Loop.body
  in
  let compiled = Ndp_core.Window.compile ctx metas in
  let text = Ndp_core.Codegen.emit (List.map fst compiled.Ndp_core.Window.tasks) in
  (* Every task id appears in its node's program. *)
  List.iter
    (fun ((t : Task.t), _) ->
      Alcotest.(check bool)
        (Printf.sprintf "t%d rendered" t.Task.id)
        true
        (Astring.String.is_infix ~affix:(Printf.sprintf "t%d" t.Task.id) text))
    compiled.Ndp_core.Window.tasks

let qcheck_window_chunks_partition =
  QCheck.Test.make ~name:"window chunks partition the stream" ~count:200
    QCheck.(pair (list small_int) (1 -- 10))
    (fun (xs, w) -> List.concat (Ndp_core.Window.chunk xs w) = xs)

let qcheck_route_distance_factor_shortens =
  QCheck.Test.make ~name:"distance factor never lengthens a message" ~count:100
    QCheck.(pair (0 -- 35) (0 -- 35))
    (fun (src, dst) ->
      let config = Ndp_sim.Config.default in
      let full = Ndp_sim.Network.create config in
      let half = Ndp_sim.Network.create config in
      Ndp_sim.Network.set_distance_factor half 0.5;
      let s1 = Ndp_sim.Stats.create () and s2 = Ndp_sim.Stats.create () in
      let t_full = Ndp_sim.Network.send full ~time:0 ~src ~dst ~bytes:64 ~stats:s1 in
      let t_half = Ndp_sim.Network.send half ~time:0 ~src ~dst ~bytes:64 ~stats:s2 in
      t_half <= t_full && (Ndp_sim.Stats.hops s2) <= (Ndp_sim.Stats.hops s1))

let tests =
  [
    ( "extra",
      [
        Alcotest.test_case "env shadowing" `Quick env_shadowing;
        Alcotest.test_case "engine finish monotone" `Quick engine_finish_time_monotone;
        Alcotest.test_case "group hops sum" `Quick group_hops_sum_to_total;
        Alcotest.test_case "adaptive = its fixed choice" `Quick adaptive_matches_its_fixed_choice;
        Alcotest.test_case "unsplit guard caps tasks" `Quick unsplit_guard_caps_tasks;
        Alcotest.test_case "wide statements split" `Quick wide_statements_do_split;
        Alcotest.test_case "estimate reported" `Quick est_movement_reported;
        Alcotest.test_case "energy breakdown" `Quick energy_breakdown_consistent;
        Alcotest.test_case "experiments helpers" `Quick common_improvement_helpers;
        Alcotest.test_case "table cells" `Quick table_cells;
        Alcotest.test_case "stmt analyzable fraction" `Quick stmt_analyzable_fraction;
        Alcotest.test_case "hot ranges ordered" `Quick kernel_hot_ranges_ordered;
        Alcotest.test_case "codegen window programs" `Quick codegen_window_programs;
        QCheck_alcotest.to_alcotest qcheck_affine_eval_linear;
        QCheck_alcotest.to_alcotest qcheck_mix_total;
        QCheck_alcotest.to_alcotest qcheck_cost_at_least_ops;
        QCheck_alcotest.to_alcotest qcheck_window_chunks_partition;
        QCheck_alcotest.to_alcotest qcheck_route_distance_factor_shortens;
      ] );
  ]
