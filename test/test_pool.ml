module Pool = Ndp_prelude.Pool
module P = Ndp_core.Pipeline

let ordering () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let xs = List.init 100 Fun.id in
      let ys = Pool.parallel_map pool (fun x -> x * x) xs in
      Alcotest.(check (list int)) "squares in order" (List.map (fun x -> x * x) xs) ys)

let empty_and_singleton () =
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Pool.parallel_map pool succ []);
      Alcotest.(check (list int)) "singleton" [ 8 ] (Pool.parallel_map pool succ [ 7 ]))

exception Boom of int

let exception_propagation () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let ran = Array.make 8 false in
      let attempt () =
        Pool.parallel_map pool
          (fun i ->
            ran.(i) <- true;
            if i = 2 || i = 5 then raise (Boom i);
            i)
          (List.init 8 Fun.id)
      in
      (match attempt () with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i -> Alcotest.(check int) "lowest-index failure wins" 2 i);
      Alcotest.(check bool) "all tasks still ran" true (Array.for_all Fun.id ran);
      (* The pool survives a failing call. *)
      Alcotest.(check (list int)) "pool usable afterwards" [ 1; 2; 3 ]
        (Pool.parallel_map pool succ [ 0; 1; 2 ]))

let nested_use () =
  Pool.with_pool ~jobs:3 (fun pool ->
      let ys =
        Pool.parallel_map pool
          (fun x -> List.fold_left ( + ) 0 (Pool.parallel_map pool (fun y -> x * y) [ 1; 2; 3 ]))
          [ 1; 2; 3; 4 ]
      in
      Alcotest.(check (list int)) "nested maps" [ 6; 12; 18; 24 ] ys)

let size_one_inline () =
  Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check int) "size clamped" 1 (Pool.size pool);
      Alcotest.(check (list int)) "inline map" [ 2; 3 ] (Pool.parallel_map pool succ [ 1; 2 ]));
  Pool.with_pool ~jobs:(-3) (fun pool -> Alcotest.(check int) "negative clamped" 1 (Pool.size pool))

let shutdown_idempotent () =
  let pool = Pool.create ~jobs:3 () in
  Alcotest.(check (list int)) "before shutdown" [ 1; 4; 9 ]
    (Pool.parallel_map pool (fun x -> x * x) [ 1; 2; 3 ]);
  Pool.shutdown pool;
  Pool.shutdown pool;
  Alcotest.(check (list int)) "inline after shutdown" [ 1; 4; 9 ]
    (Pool.parallel_map pool (fun x -> x * x) [ 1; 2; 3 ])

let run_serially_forces_serial () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let r =
        Pool.run_serially (fun () -> Pool.parallel_map pool (fun x -> x + 10) [ 1; 2; 3 ])
      in
      Alcotest.(check (list int)) "serial path result" [ 11; 12; 13 ] r)

(* The tentpole guarantee: fanning the whole evaluation sweep across
   domains changes nothing about the numbers. Every (workload, scheme)
   cell is run once on a parallel pool and once with the calling domain
   pinned to the serial path, and the metrics the paper reports must be
   identical field for field. *)
let suite_determinism () =
  let kernels = List.map Ndp_workloads.Suite.find Ndp_workloads.Suite.names in
  let schemes = [ P.Default; P.Partitioned P.partitioned_defaults ] in
  let cells = List.concat_map (fun k -> List.map (fun s -> (k, s)) schemes) kernels in
  Pool.with_pool ~jobs:4 (fun pool ->
      let run_cell (k, s) = P.run ~pool s k in
      let par = Pool.parallel_map pool run_cell cells in
      let ser = Pool.run_serially (fun () -> List.map run_cell cells) in
      List.iter2
        (fun (p : P.result) (s : P.result) ->
          let label field = Printf.sprintf "%s/%s %s" p.P.kernel_name p.P.scheme_name field in
          Alcotest.(check int) (label "exec_time") s.P.exec_time p.P.exec_time;
          Alcotest.(check int) (label "est_movement") s.P.est_movement_total p.P.est_movement_total;
          Alcotest.(check int) (label "sync_arcs") s.P.sync_arcs p.P.sync_arcs;
          Alcotest.(check int) (label "tasks") s.P.tasks_emitted p.P.tasks_emitted;
          Alcotest.(check int) (label "hops") (Ndp_sim.Stats.hops s.P.stats)
            (Ndp_sim.Stats.hops p.P.stats);
          Alcotest.(check int) (label "messages") (Ndp_sim.Stats.messages s.P.stats)
            (Ndp_sim.Stats.messages p.P.stats);
          Alcotest.(check int) (label "l1_hits") (Ndp_sim.Stats.l1_hits s.P.stats)
            (Ndp_sim.Stats.l1_hits p.P.stats);
          Alcotest.(check int) (label "l1_misses") (Ndp_sim.Stats.l1_misses s.P.stats)
            (Ndp_sim.Stats.l1_misses p.P.stats);
          Alcotest.(check int) (label "finish_time") (Ndp_sim.Stats.finish_time s.P.stats)
            (Ndp_sim.Stats.finish_time p.P.stats);
          Alcotest.(check (list (pair string int)))
            (label "windows") s.P.windows_chosen p.P.windows_chosen)
        par ser)

(* The sliced window-size preprocessing must agree with the
   reanalyze-per-candidate oracle it replaced. *)
let choose_size_matches_oracle () =
  let module W = Ndp_core.Window in
  List.iter
    (fun name ->
      let kernel = Ndp_workloads.Suite.find name in
      let config = Ndp_sim.Config.default in
      let machine = Ndp_sim.Machine.create config in
      let insp = Ndp_core.Kernel.inspector kernel in
      Ndp_ir.Inspector.run insp;
      let address_of = Ndp_core.Kernel.address_of kernel in
      let ctx =
        Ndp_core.Context.create ~machine
          ~compiler_resolve:(Ndp_ir.Inspector.compiler_resolver insp ~address_of)
          ~runtime_resolve:(Ndp_ir.Inspector.runtime_resolver insp ~address_of)
          ~arrays:kernel.Ndp_core.Kernel.program.Ndp_ir.Loop.arrays
          ~options:(Ndp_core.Context.default_options config) ()
      in
      let mesh_size = Ndp_noc.Mesh.size (Ndp_sim.Machine.mesh machine) in
      List.iter
        (fun nest ->
          let body_len = List.length nest.Ndp_ir.Loop.body in
          let metas =
            List.concat
              (List.mapi
                 (fun ii env ->
                   List.mapi
                     (fun si stmt ->
                       {
                         W.group = (ii * body_len) + si;
                         default_node = ii mod mesh_size;
                         inst = { Ndp_ir.Dependence.stmt_idx = si; stmt; env };
                       })
                     nest.Ndp_ir.Loop.body)
                 (Ndp_ir.Loop.iterations nest))
          in
          let oracle = W.choose_size_reanalyze ctx metas ~max:8 in
          let sliced = W.choose_size ctx metas ~max:8 in
          Alcotest.(check int) (name ^ ": sliced matches oracle") oracle sliced;
          Pool.with_pool ~jobs:3 (fun pool ->
              Alcotest.(check int)
                (name ^ ": pooled matches oracle")
                oracle
                (W.choose_size ~pool ctx metas ~max:8)))
        kernel.Ndp_core.Kernel.program.Ndp_ir.Loop.nests)
    [ "water"; "cholesky" ]

let tests =
  [
    ( "pool",
      [
        Alcotest.test_case "ordering" `Quick ordering;
        Alcotest.test_case "empty and singleton" `Quick empty_and_singleton;
        Alcotest.test_case "exception propagation" `Quick exception_propagation;
        Alcotest.test_case "nested use" `Quick nested_use;
        Alcotest.test_case "pool size 1" `Quick size_one_inline;
        Alcotest.test_case "shutdown idempotent" `Quick shutdown_idempotent;
        Alcotest.test_case "run_serially" `Quick run_serially_forces_serial;
        Alcotest.test_case "suite determinism" `Slow suite_determinism;
        Alcotest.test_case "choose_size matches oracle" `Slow choose_size_matches_oracle;
      ] );
  ]
