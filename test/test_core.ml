open Ndp_core
module Task = Ndp_sim.Task

(* Fixture: place named arrays at chosen mesh nodes by picking virtual
   addresses whose cache line index equals the node id (SNUCA line
   interleave over the 6x6 mesh under the quadrant mode). Elements are
   8 bytes; predictor state is cold, so locations resolve to MC nodes
   unless we warm the predictor first — [warm] marks lines recently seen
   so GetNode answers with the L2 home. *)
let fixture ?(options = None) placements =
  let config = Ndp_sim.Config.default in
  let machine = Ndp_sim.Machine.create config in
  let arrays =
    Ndp_ir.Array_decl.layout (List.map (fun (name, _) -> (name, 64, 8)) placements)
  in
  let va_of name = 64 * List.assoc name placements in
  let resolve (r : Ndp_ir.Reference.t) env =
    match Ndp_ir.Subscript.eval_affine env r.Ndp_ir.Reference.subscript with
    | Some _ -> Some (va_of r.Ndp_ir.Reference.array)
    | None -> None
  in
  let opts =
    match options with Some o -> o | None -> Context.default_options config
  in
  let ctx =
    Context.create ~machine ~compiler_resolve:resolve ~runtime_resolve:resolve ~arrays
      ~options:opts ()
  in
  (* Warm the predictor so every placement is predicted L2-resident and
     GetNode returns the home bank, as in the paper's figures. *)
  List.iter
    (fun (name, _) ->
      Ndp_mem.Miss_predictor.note_access ctx.Context.predictor
        (Ndp_sim.Machine.compiler_translate machine (va_of name)))
    placements;
  (ctx, va_of)

let env0 = Ndp_ir.Env.of_list [ ("i", 0) ]

(* The Figure 3/9 scenario: A with four inputs on a chain of adjacent
   nodes. Default execution visits 10 links; the MST needs only 4. *)
let figure9_placements = [ ("a", 7); ("b", 8); ("e", 9); ("c", 10); ("d", 16) ]

(* A branching variant: two pairs of co-located operands on either side of
   the store node, giving two subcomputations that run in parallel
   (Figure 6). *)
let branching_placements = [ ("a", 7); ("b", 6); ("e", 6); ("c", 8); ("d", 8) ]

let figure9_stmt = Ndp_ir.Parser.statement "a[i] = b[i] + c[i] + d[i] + e[i]"

let splitter_figure9 () =
  let ctx, _ = fixture figure9_placements in
  let split = Splitter.split ctx ~store_node:7 figure9_stmt env0 in
  Alcotest.(check int) "spanning tree over 5 nodes" 4 (List.length split.Splitter.edges);
  Alcotest.(check bool) "tree is spanning" true
    (let nodes = split.Splitter.nodes in
     List.length nodes = 5 && List.mem 7 nodes);
  Alcotest.(check int) "minimum movement 4" 4 split.Splitter.est_movement;
  let default = Splitter.default_movement ctx ~store_node:7 figure9_stmt env0 in
  Alcotest.(check int) "default movement 10" 10 default

let splitter_dedupes_same_node () =
  (* b and c share a node: one vertex, not two (Algorithm 1 line 12). *)
  let ctx, _ = fixture [ ("a", 7); ("b", 9); ("c", 9) ] in
  let split =
    Splitter.split ctx ~store_node:7 (Ndp_ir.Parser.statement "a[i] = b[i] + c[i]") env0
  in
  Alcotest.(check (list int)) "two vertices" [ 7; 9 ] (List.sort compare split.Splitter.nodes);
  Alcotest.(check int) "one edge" 1 (List.length split.Splitter.edges)

let splitter_single_node () =
  let ctx, _ = fixture [ ("a", 7); ("b", 7); ("c", 7) ] in
  let split =
    Splitter.split ctx ~store_node:7 (Ndp_ir.Parser.statement "a[i] = b[i] + c[i]") env0
  in
  Alcotest.(check int) "no edges" 0 (List.length split.Splitter.edges);
  Alcotest.(check int) "zero movement" 0 split.Splitter.est_movement

let splitter_levels () =
  (* a = b * (c + d): the (c, d) group forms its own sub-MST first. *)
  let ctx, _ = fixture [ ("a", 0); ("b", 1); ("c", 34); ("d", 35) ] in
  let split =
    Splitter.split ctx ~store_node:0 (Ndp_ir.Parser.statement "a[i] = b[i] * (c[i] + d[i])") env0
  in
  (* c-d are adjacent (distance 1); that edge must be in the tree. *)
  Alcotest.(check bool) "group edge chosen" true
    (List.exists
       (fun (e : Ndp_graph.Kruskal.edge) ->
         (e.Ndp_graph.Kruskal.u = 34 && e.Ndp_graph.Kruskal.v = 35)
         || (e.Ndp_graph.Kruskal.u = 35 && e.Ndp_graph.Kruskal.v = 34))
       split.Splitter.edges)

let splitter_never_cyclic () =
  (* Shared operands across parenthesized groups must not create multi-
     edges or cycles (the pooled-MSTedges property). *)
  let ctx, _ = fixture [ ("a", 0); ("b", 3); ("c", 21); ("e", 23); ("f", 21) ] in
  let stmt = Ndp_ir.Parser.statement "a[i] = (b[i] + c[i]) * (e[i] + f[i]) + c[i] * f[i]" in
  let split = Splitter.split ctx ~store_node:0 stmt env0 in
  Alcotest.(check int) "edges = vertices - 1" (List.length split.Splitter.nodes - 1)
    (List.length split.Splitter.edges)

let unsplit_collapses () =
  let ctx, va_of = fixture figure9_placements in
  let split = Splitter.split ctx ~store_node:7 figure9_stmt env0 in
  let u = Splitter.unsplit split in
  Alcotest.(check int) "no edges" 0 (List.length u.Splitter.edges);
  Alcotest.(check (list int)) "single node" [ 7 ] u.Splitter.nodes;
  ignore va_of

let schedule_invariants () =
  let ctx, va_of = fixture figure9_placements in
  let split = Splitter.split ctx ~store_node:7 figure9_stmt env0 in
  let sched = Schedule.schedule ctx ~group:0 split figure9_stmt env0 in
  (* Producers precede consumers in emission order. *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (t : Task.t) ->
      List.iter
        (function
          | Task.Result { producer; bytes = _ } ->
            Alcotest.(check bool) "producer already emitted" true (Hashtbl.mem seen producer)
          | Task.Load _ -> ())
        t.Task.operands;
      Hashtbl.replace seen t.Task.id ())
    sched.Schedule.tasks;
  (* Exactly one task stores, and it stores A. *)
  let stores = List.filter_map (fun (t : Task.t) -> t.Task.store) sched.Schedule.tasks in
  Alcotest.(check (list (pair int int))) "stores A" [ (va_of "a", 8) ] stores;

  (* All four inputs are loaded exactly once across the task set. *)
  let loads =
    List.concat_map
      (fun (t : Task.t) ->
        List.filter_map
          (function Task.Load { va; bytes = _ } -> Some va | Task.Result _ -> None)
          t.Task.operands)
      sched.Schedule.tasks
  in
  Alcotest.(check (list int)) "each input loaded once"
    (List.sort compare [ va_of "b"; va_of "c"; va_of "d"; va_of "e" ])
    (List.sort compare loads)

let schedule_parallel_branches () =
  let ctx, _ = fixture branching_placements in
  let split = Splitter.split ctx ~store_node:7 figure9_stmt env0 in
  let sched = Schedule.schedule ctx ~group:0 split figure9_stmt env0 in
  Alcotest.(check bool) "two parallel subcomputations" true (sched.Schedule.parallelism >= 2);
  (* The root joins two children and synchronizes on both (Figure 6). *)
  Alcotest.(check int) "two join arcs" 2 (List.length sched.Schedule.join_arcs)

let schedule_ops_conserved () =
  let ctx, _ = fixture figure9_placements in
  let split = Splitter.split ctx ~store_node:7 figure9_stmt env0 in
  let sched = Schedule.schedule ctx ~group:0 split figure9_stmt env0 in
  let total_cost =
    List.fold_left (fun acc (t : Task.t) -> acc + t.Task.cost) 0 sched.Schedule.tasks
  in
  Alcotest.(check int) "3 additions in total" 3 total_cost

let location_reuse () =
  (* Figure 11: C already fetched into n_D's L1 by statement 1 makes n_D
     C's location for statement 2. *)
  let ctx, va_of = fixture [ ("x", 3); ("y", 4); ("c", 10); ("d", 16) ] in
  Context.note_cached ctx ~line:(va_of "c" / 64) ~node:16;
  let loc = Location.locate ctx ~store_node:3 (Ndp_ir.Reference.make "c" (Ndp_ir.Subscript.var "i")) env0 in
  Alcotest.(check int) "located at n_D" 16 loc.Location.node;
  Alcotest.(check bool) "via L1" true loc.Location.in_l1

let location_reuse_expires () =
  let ctx, va_of = fixture [ ("x", 3); ("c", 10) ] in
  Context.note_cached ctx ~line:(va_of "c" / 64) ~node:16;
  for _ = 1 to Context.reuse_horizon + 1 do
    Context.advance_statement ctx
  done;
  let loc = Location.locate ctx ~store_node:3 (Ndp_ir.Reference.make "c" (Ndp_ir.Subscript.var "i")) env0 in
  Alcotest.(check bool) "stale placement ignored" false loc.Location.in_l1

let location_unanalyzable_pins () =
  let ctx, _ = fixture [ ("x", 3) ] in
  let r = Ndp_ir.Reference.make "x" (Ndp_ir.Subscript.indirect "y" (Ndp_ir.Subscript.var "i")) in
  let loc = Location.locate ctx ~store_node:31 r env0 in
  Alcotest.(check int) "pinned to store node" 31 loc.Location.node;
  Alcotest.(check (option int)) "no address" None loc.Location.va

let sync_min_removes_chain () =
  let arcs = [ (0, 1); (1, 2); (0, 2) ] in
  Alcotest.(check (list (pair int int))) "redundant removed" [ (0, 1); (1, 2) ]
    (List.sort compare (Sync_min.minimize ~enabled:true arcs));
  Alcotest.(check int) "disabled keeps all" 3
    (List.length (Sync_min.minimize ~enabled:false arcs))

let sync_per_consumer () =
  let t = Sync_min.syncs_per_consumer [ (0, 5); (1, 5); (2, 9) ] in
  Alcotest.(check (option int)) "two into 5" (Some 2) (Hashtbl.find_opt t 5);
  Alcotest.(check (option int)) "one into 9" (Some 1) (Hashtbl.find_opt t 9)

let window_chunking () =
  Alcotest.(check (list (list int))) "chunks of 2" [ [ 1; 2 ]; [ 3; 4 ]; [ 5 ] ]
    (Window.chunk [ 1; 2; 3; 4; 5 ] 2);
  Alcotest.(check (list (list int))) "oversize window" [ [ 1; 2 ] ] (Window.chunk [ 1; 2 ] 9)

let meta_of ctx stmt i node =
  ignore ctx;
  {
    Window.group = i;
    default_node = node;
    inst = { Ndp_ir.Dependence.stmt_idx = i; stmt; env = env0 };
  }

let window_compile_basics () =
  let ctx, _ = fixture (figure9_placements @ [ ("x", 20); ("y", 21) ]) in
  let s2 = Ndp_ir.Parser.statement "x[i] = y[i] + c[i]" in
  let compiled = Window.compile ctx [ meta_of ctx figure9_stmt 0 7; meta_of ctx s2 1 20 ] in
  Alcotest.(check int) "two reports" 2 (List.length compiled.Window.reports);
  (* Emission is level-major: levels never decrease. *)
  let levels = List.map snd compiled.Window.tasks in
  Alcotest.(check (list int)) "level-sorted" (List.sort compare levels) levels;
  Alcotest.(check bool) "predictions recorded" true (compiled.Window.predictions <> [])

let window_choose_size_bounds () =
  let ctx, _ = fixture figure9_placements in
  let metas = List.init 40 (fun i -> meta_of ctx figure9_stmt i (i mod 36)) in
  let w = Window.choose_size ctx metas ~max:8 in
  Alcotest.(check bool) "within 1..8" true (w >= 1 && w <= 8)

let window_movement_estimate_reuse () =
  (* Two statements sharing c: windows of 2 see the reuse, w=1 cannot. *)
  let ctx, _ = fixture (figure9_placements @ [ ("x", 20); ("y", 21) ]) in
  let s2 = Ndp_ir.Parser.statement "x[i] = y[i] + c[i]" in
  let metas =
    List.concat
      (List.init 10 (fun i ->
           [ meta_of ctx figure9_stmt (2 * i) 7; meta_of ctx s2 ((2 * i) + 1) 20 ]))
  in
  let m1 = Window.movement_estimate ctx metas ~window:1 in
  let m2 = Window.movement_estimate ctx metas ~window:2 in
  Alcotest.(check bool) "window of 2 moves no more data" true (m2 <= m1)

let window_analytic_matches_sampled () =
  (* The closed-form window model must agree with the sampled oracle on
     every nest of the whole suite — the property that lets the analytic
     path replace sampled compilation. *)
  List.iter
    (fun name ->
      let kernel = Ndp_workloads.Suite.find name in
      let scheme = Pipeline.Partitioned Pipeline.partitioned_defaults in
      let _ =
        List.fold_left
          (fun g (nest : Ndp_ir.Loop.nest) ->
            let sampled_ctx = Pipeline.static_context scheme kernel in
            let analytic_ctx = Pipeline.static_context scheme kernel in
            let metas, g' = Pipeline.nest_stream sampled_ctx nest ~first_group:g in
            let ws = Window.choose_size sampled_ctx metas ~max:8 in
            let wa = Window.choose_size_analytic analytic_ctx metas ~max:8 in
            Alcotest.(check int)
              (Printf.sprintf "%s/%s analytic = sampled" name nest.Ndp_ir.Loop.nest_name)
              ws wa;
            g')
          0 kernel.Kernel.program.Ndp_ir.Loop.nests
      in
      ())
    Ndp_workloads.Suite.names

let window_non_affine_short_circuit () =
  (* A nest whose every reference is indirect gives the static model
     nothing to work with: both sizers fall back to w=1. *)
  let ctx, _ = fixture [ ("x", 3); ("y", 4); ("w", 5) ] in
  let stmt = Ndp_ir.Parser.statement "x[y[i]] = w[y[i]]" in
  let metas = List.init 16 (fun i -> meta_of ctx stmt i (i mod 36)) in
  Alcotest.(check bool) "all non-affine" true (Window.all_non_affine metas);
  Alcotest.(check int) "sampled short-circuits" 1 (Window.choose_size ctx metas ~max:8);
  Alcotest.(check int) "analytic short-circuits" 1 (Window.choose_size_analytic ctx metas ~max:8)

let baseline_assignment () =
  let arrays = Ndp_ir.Array_decl.layout [ ("a", 4096, 8); ("b", 4096, 8) ] in
  let resolve (r : Ndp_ir.Reference.t) env =
    Option.map
      (Ndp_ir.Array_decl.address (Ndp_ir.Array_decl.find arrays r.Ndp_ir.Reference.array))
      (Ndp_ir.Subscript.eval_affine env r.Ndp_ir.Reference.subscript)
  in
  let machine = Ndp_sim.Machine.create Ndp_sim.Config.default in
  let ctx =
    Context.create ~machine ~compiler_resolve:resolve ~runtime_resolve:resolve ~arrays
      ~options:(Context.default_options Ndp_sim.Config.default) ()
  in
  let nest =
    Ndp_ir.Loop.nest ~sweeps:2 "n"
      [ { Ndp_ir.Loop.var = "i"; lo = 0; hi = 72 } ]
      [ Ndp_ir.Parser.statement "a[i] = b[i]" ]
  in
  let iters = Ndp_ir.Loop.iterations nest in
  let assignment = Baseline.assign_iterations ctx nest iters in
  Alcotest.(check int) "one node per iteration" 144 (Array.length assignment);
  let used = List.sort_uniq compare (Array.to_list assignment) in
  Alcotest.(check int) "all 36 nodes used" 36 (List.length used);
  (* Sweeps repeat the same static schedule. *)
  Alcotest.(check int) "sweep repeats" assignment.(0) assignment.(72)

let codegen_renders () =
  let ctx, _ = fixture figure9_placements in
  let text = Codegen.emit_statement ctx ~store_node:7 figure9_stmt env0 in
  Alcotest.(check bool) "mentions nodes" true (Astring.String.is_infix ~affix:"node" text);
  Alcotest.(check bool) "stores" true (Astring.String.is_infix ~affix:"store" text)

let qcheck_splitter_beats_default =
  (* The MST movement never exceeds the default star topology. *)
  QCheck.Test.make ~name:"MST movement <= default star movement" ~count:100
    QCheck.(list_of_size (QCheck.Gen.return 4) (0 -- 35))
    (fun nodes ->
      QCheck.assume (List.length (List.sort_uniq compare nodes) = 4);
      match nodes with
      | [ na; nb; nc; nd ] ->
        let ctx, _ = fixture [ ("a", na); ("b", nb); ("c", nc); ("d", nd) ] in
        let stmt = Ndp_ir.Parser.statement "a[i] = b[i] + c[i] + d[i]" in
        let split = Splitter.split ctx ~store_node:na stmt env0 in
        split.Splitter.est_movement <= Splitter.default_movement ctx ~store_node:na stmt env0
      | _ -> true)

let qcheck_schedule_emits_all_inputs =
  QCheck.Test.make ~name:"every resolvable input becomes exactly one load" ~count:100
    QCheck.(list_of_size (QCheck.Gen.return 5) (0 -- 35))
    (fun nodes ->
      QCheck.assume (List.length (List.sort_uniq compare nodes) = 5);
      match nodes with
      | [ na; nb; nc; nd; ne ] ->
        let ctx, _ = fixture [ ("a", na); ("b", nb); ("c", nc); ("d", nd); ("e", ne) ] in
        let stmt = Ndp_ir.Parser.statement "a[i] = b[i] * c[i] + d[i] / e[i]" in
        let split = Splitter.split ctx ~store_node:na stmt env0 in
        let sched = Schedule.schedule ctx ~group:0 split stmt env0 in
        let loads =
          List.concat_map
            (fun (t : Task.t) ->
              List.filter_map
                (function Task.Load { va; bytes = _ } -> Some va | Task.Result _ -> None)
                t.Task.operands)
            sched.Schedule.tasks
        in
        List.length loads = 4 && List.length (List.sort_uniq compare loads) = 4
      | _ -> true)

let graphviz_outputs () =
  let ctx, _ = fixture figure9_placements in
  let split = Splitter.split ctx ~store_node:7 figure9_stmt env0 in
  let mst_dot = Graphviz.statement_mst split in
  Alcotest.(check bool) "mst dot well-formed" true
    (Astring.String.is_prefix ~affix:"digraph" mst_dot
    && Astring.String.is_infix ~affix:"n7" mst_dot);
  let compiled = Window.compile ctx [ meta_of ctx figure9_stmt 0 7 ] in
  let task_dot = Graphviz.task_graph compiled.Window.tasks in
  Alcotest.(check bool) "task dot well-formed" true
    (Astring.String.is_prefix ~affix:"digraph" task_dot
    && Astring.String.is_infix ~affix:"store" task_dot)

let tests =
  [
    ( "core",
      [
        Alcotest.test_case "splitter figure 9" `Quick splitter_figure9;
        Alcotest.test_case "splitter dedupes" `Quick splitter_dedupes_same_node;
        Alcotest.test_case "splitter single node" `Quick splitter_single_node;
        Alcotest.test_case "splitter levels" `Quick splitter_levels;
        Alcotest.test_case "splitter acyclic" `Quick splitter_never_cyclic;
        Alcotest.test_case "unsplit collapses" `Quick unsplit_collapses;
        Alcotest.test_case "schedule invariants" `Quick schedule_invariants;
        Alcotest.test_case "schedule parallel branches" `Quick schedule_parallel_branches;
        Alcotest.test_case "schedule ops conserved" `Quick schedule_ops_conserved;
        Alcotest.test_case "location reuse (fig 11)" `Quick location_reuse;
        Alcotest.test_case "location reuse expires" `Quick location_reuse_expires;
        Alcotest.test_case "location unanalyzable pins" `Quick location_unanalyzable_pins;
        Alcotest.test_case "sync minimization chain" `Quick sync_min_removes_chain;
        Alcotest.test_case "syncs per consumer" `Quick sync_per_consumer;
        Alcotest.test_case "window chunking" `Quick window_chunking;
        Alcotest.test_case "window compile basics" `Quick window_compile_basics;
        Alcotest.test_case "window choose size bounds" `Quick window_choose_size_bounds;
        Alcotest.test_case "window reuse estimate" `Quick window_movement_estimate_reuse;
        Alcotest.test_case "window analytic = sampled (suite)" `Slow window_analytic_matches_sampled;
        Alcotest.test_case "window non-affine short-circuit" `Quick window_non_affine_short_circuit;
        Alcotest.test_case "baseline assignment" `Quick baseline_assignment;
        Alcotest.test_case "codegen renders" `Quick codegen_renders;
        Alcotest.test_case "graphviz outputs" `Quick graphviz_outputs;
        QCheck_alcotest.to_alcotest qcheck_splitter_beats_default;
        QCheck_alcotest.to_alcotest qcheck_schedule_emits_all_inputs;
      ] );
  ]
