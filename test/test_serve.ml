(* ndp_serve: canonical content keys, the bounded LRU cache, the framed
   wire protocol, and the daemon's caching behaviour (repeat requests are
   byte-identical to cold ones; sweeps reuse captured schedules). *)

module Key = Ndp_serve.Key
module Cache = Ndp_serve.Cache
module Protocol = Ndp_serve.Protocol
module Server = Ndp_serve.Server
module Pipeline = Ndp_core.Pipeline
module Config = Ndp_sim.Config
module Plan = Ndp_fault.Plan

let fft () = Ndp_workloads.Suite.find "fft"
let water () = Ndp_workloads.Suite.find "water"

(* -------------------------------------------------------------------- *)
(* Key: every collision-sensitive input perturbs the canonical key.      *)

(* One entry per Config.t field, in declaration order. If a field is ever
   added without extending [Key.config], the count check below trips. *)
let config_perturbations : (string * (Config.t -> Config.t)) list =
  [
    ("mesh_cols", fun d -> { d with Config.mesh_cols = d.Config.mesh_cols + 1 });
    ("mesh_rows", fun d -> { d with Config.mesh_rows = d.Config.mesh_rows + 1 });
    ("cluster", fun d -> { d with Config.cluster = Ndp_noc.Cluster.Snc4 });
    ("memory_mode", fun d -> { d with Config.memory_mode = Config.Cache_mode });
    ("line_bytes", fun d -> { d with Config.line_bytes = d.Config.line_bytes * 2 });
    ("l1_size", fun d -> { d with Config.l1_size = d.Config.l1_size * 2 });
    ("l1_assoc", fun d -> { d with Config.l1_assoc = d.Config.l1_assoc + 1 });
    ("l2_bank_size", fun d -> { d with Config.l2_bank_size = d.Config.l2_bank_size * 2 });
    ("l2_assoc", fun d -> { d with Config.l2_assoc = d.Config.l2_assoc + 1 });
    ("mcdram_capacity", fun d -> { d with Config.mcdram_capacity = d.Config.mcdram_capacity * 2 });
    ("hop_cycles", fun d -> { d with Config.hop_cycles = d.Config.hop_cycles + 1 });
    ( "link_service_cycles",
      fun d -> { d with Config.link_service_cycles = d.Config.link_service_cycles + 1 } );
    ("flit_bytes", fun d -> { d with Config.flit_bytes = d.Config.flit_bytes * 2 });
    ("l1_hit_cycles", fun d -> { d with Config.l1_hit_cycles = d.Config.l1_hit_cycles + 1 });
    ("l2_hit_cycles", fun d -> { d with Config.l2_hit_cycles = d.Config.l2_hit_cycles + 1 });
    ("mcdram_cycles", fun d -> { d with Config.mcdram_cycles = d.Config.mcdram_cycles + 1 });
    ("ddr_cycles", fun d -> { d with Config.ddr_cycles = d.Config.ddr_cycles + 1 });
    ("op_cycles", fun d -> { d with Config.op_cycles = d.Config.op_cycles + 1 });
    ("sync_cycles", fun d -> { d with Config.sync_cycles = d.Config.sync_cycles + 1 });
    ( "load_issue_cycles",
      fun d -> { d with Config.load_issue_cycles = d.Config.load_issue_cycles + 1 } );
    ( "outstanding_loads",
      fun d -> { d with Config.outstanding_loads = d.Config.outstanding_loads + 1 } );
    ("coherence", fun d -> { d with Config.coherence = not d.Config.coherence });
    ( "prefetch_next_line",
      fun d -> { d with Config.prefetch_next_line = not d.Config.prefetch_next_line } );
    ("mlp_overlap", fun d -> { d with Config.mlp_overlap = d.Config.mlp_overlap +. 0.125 });
    ( "balance_threshold",
      fun d -> { d with Config.balance_threshold = d.Config.balance_threshold +. 0.125 } );
    ("max_window", fun d -> { d with Config.max_window = d.Config.max_window + 1 });
    ("page_policy", fun d -> { d with Config.page_policy = Ndp_mem.Page_alloc.Scrambled });
    ( "predictor_capacity_blocks",
      fun d ->
        { d with Config.predictor_capacity_blocks = d.Config.predictor_capacity_blocks + 1 } );
    ("seed", fun d -> { d with Config.seed = d.Config.seed + 1 });
  ]

let key_covers_config () =
  let base = Key.config Config.default in
  List.iter
    (fun (name, f) ->
      if String.equal (Key.config (f Config.default)) base then
        Alcotest.failf "perturbing Config.%s does not change the config key" name)
    config_perturbations

let tweak_perturbations : (string * (Pipeline.tweaks -> Pipeline.tweaks)) list =
  [
    ("l1_boost", fun t -> { t with Pipeline.l1_boost = 0.25 });
    ("distance_factor", fun t -> { t with Pipeline.distance_factor = 0.5 });
    ("mc_overrides", fun t -> { t with Pipeline.mc_overrides = [ (3, 1) ] });
    ("cost_scale", fun t -> { t with Pipeline.cost_scale = 2.0 });
    ("extra_syncs", fun t -> { t with Pipeline.extra_syncs = 1 });
  ]

let key_covers_tweaks () =
  Alcotest.(check string) "no_tweaks keys empty" "" (Key.tweaks Pipeline.no_tweaks);
  List.iter
    (fun (name, f) ->
      if String.equal (Key.tweaks (f Pipeline.no_tweaks)) (Key.tweaks Pipeline.no_tweaks) then
        Alcotest.failf "perturbing tweaks.%s does not change the tweaks key" name)
    tweak_perturbations;
  (* mc_overrides must serialize pairwise: same flattened ints, different
     pairing, different key. *)
  let a = { Pipeline.no_tweaks with Pipeline.mc_overrides = [ (1, 2); (3, 0) ] } in
  let b = { Pipeline.no_tweaks with Pipeline.mc_overrides = [ (1, 23); (0, 0) ] } in
  if String.equal (Key.tweaks a) (Key.tweaks b) then
    Alcotest.fail "mc_overrides pairings collide"

let key_covers_scheme () =
  let schemes =
    [
      Pipeline.Default;
      Pipeline.Partitioned Pipeline.partitioned_defaults;
      Pipeline.Partitioned { Pipeline.partitioned_defaults with Pipeline.window = Pipeline.Fixed 2 };
      Pipeline.Partitioned { Pipeline.partitioned_defaults with Pipeline.window = Pipeline.Fixed 4 };
      Pipeline.Partitioned { Pipeline.partitioned_defaults with Pipeline.window = Pipeline.Analytic };
      (* A job differing only in --fuse (or its capacity bound) must miss
         the schedule cache: fused schedules store different task graphs. *)
      Pipeline.Partitioned { Pipeline.partitioned_defaults with Pipeline.fuse = true };
      Pipeline.Partitioned
        { Pipeline.partitioned_defaults with Pipeline.fuse = true; fuse_capacity = Some 4096 };
    ]
  in
  let keys = List.map Key.scheme schemes in
  let distinct = List.sort_uniq compare keys in
  Alcotest.(check int) "scheme keys pairwise distinct" (List.length keys) (List.length distinct)

let key_covers_fault () =
  let mesh = Config.mesh Config.default in
  let p1 = Plan.make ~mesh ~seed:1 [ Plan.Degrade_link (0, 1, 2.0) ] in
  let p2 = Plan.make ~mesh ~seed:2 [ Plan.Degrade_link (0, 1, 2.0) ] in
  let p3 = Plan.make ~mesh ~seed:1 [ Plan.Degrade_link (0, 1, 4.0) ] in
  Alcotest.(check string) "no plan keys empty" "" (Key.fault None);
  let k1 = Key.fault (Some p1) in
  if String.equal k1 "" then Alcotest.fail "a real plan must not key empty";
  if String.equal k1 (Key.fault (Some p2)) then Alcotest.fail "fault seed does not perturb key";
  if String.equal k1 (Key.fault (Some p3)) then Alcotest.fail "fault events do not perturb key"

let key_covers_kernel_content () =
  let f = fft () and w = water () in
  if String.equal (Key.kernel f) (Key.kernel w) then Alcotest.fail "distinct kernels collide";
  (* Same name, different body: content digests must still differ. *)
  let impostor = { w with Ndp_core.Kernel.name = f.Ndp_core.Kernel.name } in
  if String.equal (Key.kernel f) (Key.kernel impostor) then
    Alcotest.fail "same-named kernels with different bodies collide"

let key_covers_job_flags () =
  let job = Pipeline.Job.make Pipeline.Default (fft ()) in
  let base = Key.job job in
  List.iter
    (fun (name, j) ->
      if String.equal (Key.job j) base then
        Alcotest.failf "flipping %s does not change the job key" name)
    [
      ("repair", { job with Pipeline.Job.repair = true });
      ("validate", { job with Pipeline.Job.validate = true });
      ("capture", { job with Pipeline.Job.capture = true });
    ];
  Alcotest.(check int) "digest is 32 hex chars" 32 (String.length (Key.job_digest job))

(* -------------------------------------------------------------------- *)
(* Cache: LRU order, eviction accounting, hit/miss counts.               *)

let cache_lru () =
  let c = Cache.create ~name:"t" ~capacity:2 () in
  let v, hit = Cache.find_or_add c "a" (fun () -> 1) in
  Alcotest.(check bool) "first add misses" false hit;
  Alcotest.(check int) "computed value" 1 v;
  ignore (Cache.find_or_add c "b" (fun () -> 2));
  (* Refresh "a" so "b" is the least recently used entry. *)
  let v, hit = Cache.find_or_add c "a" (fun () -> 99) in
  Alcotest.(check bool) "repeat hits" true hit;
  Alcotest.(check int) "hit returns stored value" 1 v;
  ignore (Cache.find_or_add c "c" (fun () -> 3));
  Alcotest.(check bool) "LRU entry evicted" true (Cache.find c "b" = None);
  Alcotest.(check bool) "refreshed entry survives" true (Cache.find c "a" = Some 1);
  let st = Cache.stats c in
  Alcotest.(check int) "entries" 2 st.Cache.entries;
  Alcotest.(check int) "hits" 1 st.Cache.hits;
  Alcotest.(check int) "misses" 3 st.Cache.misses;
  Alcotest.(check int) "evictions" 1 st.Cache.evictions

let cache_capacity_clamped () =
  let c = Cache.create ~name:"t" ~capacity:0 () in
  Alcotest.(check int) "capacity clamps to 1" 1 (Cache.capacity c);
  ignore (Cache.find_or_add c "a" (fun () -> 1));
  ignore (Cache.find_or_add c "b" (fun () -> 2));
  Alcotest.(check int) "never over capacity" 1 (Cache.stats c).Cache.entries

(* -------------------------------------------------------------------- *)
(* Protocol: JSON codec and framing round-trips.                         *)

let representative_requests () =
  let spec = Protocol.default_spec ~app:"fft" in
  let faulty =
    { spec with Protocol.faults = "kill=2,slow=1x2.5"; fault_seed = Some 7; repair = true }
  in
  [
    Protocol.Ping;
    Protocol.List_apps;
    Protocol.Run { spec; metrics = true };
    Protocol.Compile spec;
    Protocol.Profile { spec; interval = 500; top = 5 };
    Protocol.Analyze { spec; threshold = 2.5 };
    Protocol.Inject faulty;
    Protocol.Batch [ spec; faulty ];
    Protocol.Sweep
      {
        spec;
        variants =
          [
            { Protocol.v_name = "base"; v_overrides = []; v_tweaks = Pipeline.no_tweaks };
            {
              Protocol.v_name = "hop8";
              v_overrides = [ ("hop_cycles", 8) ];
              v_tweaks = { Pipeline.no_tweaks with Pipeline.cost_scale = 2.0 };
            };
          ];
      };
    Protocol.Cache_stats;
    Protocol.Metrics_dump;
    Protocol.Metrics_text;
    Protocol.Shutdown;
  ]

let codec_round_trip () =
  List.iteri
    (fun i req ->
      let id = i + 1 in
      match Protocol.request_of_json (Protocol.request_to_json ~id req) with
      | Ok (id', req') ->
        Alcotest.(check int) "id survives" id id';
        if req' <> req then Alcotest.failf "request %d does not round-trip" id
      | Error msg -> Alcotest.failf "request %d rejected: %s" id msg)
    (representative_requests ())

let framing_round_trip () =
  let path = Filename.temp_file "ndp_serve_test" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      Protocol.write_frame oc "hello\nworld";
      Protocol.write_frame oc "";
      Protocol.write_request oc ~id:7 (Protocol.Analyze { spec = Protocol.default_spec ~app:"lu"; threshold = 1.5 });
      Protocol.write_response oc
        { Protocol.id = 7; ok = true; cached = true; key = "abc" }
        ~body:"{\n  \"x\": [1,\n2]\n}";
      close_out oc;
      let ic = open_in_bin path in
      (match Protocol.read_frame ic with
      | Protocol.Frame s -> Alcotest.(check string) "payload with newlines" "hello\nworld" s
      | _ -> Alcotest.fail "expected a frame");
      (match Protocol.read_frame ic with
      | Protocol.Frame s -> Alcotest.(check string) "empty payload" "" s
      | _ -> Alcotest.fail "expected an empty frame");
      (match Protocol.read_frame ic with
      | Protocol.Frame s -> (
        match Ndp_obs.Render.Json.parse s with
        | Ok doc -> (
          match Protocol.request_of_json doc with
          | Ok (7, Protocol.Analyze { threshold; _ }) ->
            Alcotest.(check (float 0.0)) "threshold" 1.5 threshold
          | Ok _ -> Alcotest.fail "wrong request decoded"
          | Error m -> Alcotest.fail m)
        | Error m -> Alcotest.fail m)
      | _ -> Alcotest.fail "expected a request frame");
      (match Protocol.read_response ic with
      | Ok (env, body) ->
        Alcotest.(check int) "envelope id" 7 env.Protocol.id;
        Alcotest.(check bool) "envelope cached" true env.Protocol.cached;
        Alcotest.(check string) "envelope key" "abc" env.Protocol.key;
        Alcotest.(check string) "body verbatim" "{\n  \"x\": [1,\n2]\n}" body
      | Error m -> Alcotest.fail m);
      (match Protocol.read_frame ic with
      | Protocol.Eof -> ()
      | _ -> Alcotest.fail "expected EOF");
      close_in ic)

let framing_rejects_garbage () =
  let path = Filename.temp_file "ndp_serve_test" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "not-a-length\n{}\n";
      close_out oc;
      let ic = open_in_bin path in
      (match Protocol.read_frame ic with
      | Protocol.Corrupt _ -> ()
      | _ -> Alcotest.fail "expected Corrupt on a non-numeric length line");
      close_in ic)

(* -------------------------------------------------------------------- *)
(* Server: cached replies are byte-identical to cold ones.               *)

let specs_for_suite () =
  List.concat_map
    (fun app ->
      List.map
        (fun scheme -> { (Protocol.default_spec ~app) with Protocol.scheme })
        [ "default"; "partitioned" ])
    Ndp_workloads.Suite.names

let cached_replies_byte_identical () =
  let warm = Server.create () in
  let fresh = Server.create () in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown warm;
      Server.shutdown fresh)
    (fun () ->
      List.iter
        (fun spec ->
          let req = Protocol.Run { spec; metrics = false } in
          let r1 = Server.handle warm req in
          let r2 = Server.handle warm req in
          let rf = Server.handle fresh req in
          let ctx = spec.Protocol.app ^ "/" ^ spec.Protocol.scheme in
          Alcotest.(check bool) (ctx ^ " first reply ok") true r1.Server.ok;
          Alcotest.(check bool) (ctx ^ " first reply uncached") false r1.Server.cached;
          Alcotest.(check bool) (ctx ^ " repeat reply cached") true r2.Server.cached;
          Alcotest.(check string) (ctx ^ " repeat body identical") r1.Server.body r2.Server.body;
          Alcotest.(check string) (ctx ^ " keys agree") r1.Server.key r2.Server.key;
          Alcotest.(check bool) (ctx ^ " fresh reply uncached") false rf.Server.cached;
          Alcotest.(check string) (ctx ^ " fresh body identical") r1.Server.body rf.Server.body)
        (specs_for_suite ()))

let sweep_reuses_schedule () =
  let spec = Protocol.default_spec ~app:"fft" in
  let variants =
    [
      { Protocol.v_name = "baseline"; v_overrides = []; v_tweaks = Pipeline.no_tweaks };
      { Protocol.v_name = "hop8"; v_overrides = [ ("hop_cycles", 8) ]; v_tweaks = Pipeline.no_tweaks };
    ]
  in
  let sweep = Protocol.Sweep { spec; variants } in
  let warm = Server.create () in
  let fresh = Server.create () in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown warm;
      Server.shutdown fresh)
    (fun () ->
      let compile = Server.handle warm (Protocol.Compile spec) in
      Alcotest.(check bool) "compile ok" true compile.Server.ok;
      let s1 = Server.handle warm sweep in
      let sched = Cache.stats (Server.schedule_cache warm) in
      (* The compile populated the schedule cache; the sweep replayed it. *)
      Alcotest.(check int) "one captured compile" 1 sched.Cache.misses;
      Alcotest.(check int) "sweep reused the capture" 1 sched.Cache.hits;
      let s2 = Server.handle warm sweep in
      Alcotest.(check bool) "repeat sweep cached" true s2.Server.cached;
      Alcotest.(check string) "repeat sweep body identical" s1.Server.body s2.Server.body;
      (* A fresh server compiles from scratch; the body must not leak
         cache state (cold and warm sweeps are byte-identical). *)
      let sf = Server.handle fresh sweep in
      Alcotest.(check string) "cold sweep body identical" s1.Server.body sf.Server.body)

let errors_reported_in_band () =
  let server = Server.create () in
  Fun.protect
    ~finally:(fun () -> Server.shutdown server)
    (fun () ->
      let r =
        Server.handle server
          (Protocol.Run { spec = Protocol.default_spec ~app:"no-such-app"; metrics = false })
      in
      Alcotest.(check bool) "error reply not ok" false r.Server.ok;
      Alcotest.(check bool) "error reply uncached" false r.Server.cached;
      let is_sub = Astring.String.is_infix ~affix:"error" r.Server.body in
      Alcotest.(check bool) "body carries an error document" true is_sub)

(* -------------------------------------------------------------------- *)
(* Telemetry: request tracing, per-op latency, exposition, access log.   *)

module RJ = Ndp_obs.Render.Json
module Metrics = Ndp_obs.Metrics
module Span = Ndp_obs.Span

(* A deterministic server clock: 0.5 ms per reading. *)
let test_clock () =
  let t = ref 0.0 in
  fun () ->
    t := !t +. 0.0005;
    !t

let replies_are_traced () =
  let server = Server.create ~clock:(test_clock ()) () in
  Fun.protect
    ~finally:(fun () -> Server.shutdown server)
    (fun () ->
      let r1 = Server.handle server Protocol.Ping in
      let r2 = Server.handle server (Protocol.Run { spec = Protocol.default_spec ~app:"fft"; metrics = false }) in
      let r3 = Server.handle server Protocol.Ping in
      Alcotest.(check (list int)) "seq is a monotone request counter" [ 1; 2; 3 ]
        [ r1.Server.seq; r2.Server.seq; r3.Server.seq ];
      Alcotest.(check bool) "latency stamped" true (r2.Server.ms > 0.0);
      Alcotest.(check bool) "root span recorded" true (Span.count r1.Server.spans >= 1);
      Alcotest.(check bool) "uncached run records phase spans" true (Span.count r2.Server.spans > 1);
      let phases = List.map fst (Span.summary r2.Server.spans) in
      List.iter
        (fun p ->
          if not (List.mem p phases) then Alcotest.failf "run reply is missing a %S span" p)
        [ "request"; "parse"; "window"; "deps"; "schedule"; "simulate" ];
      (* per-phase span time reconciles with the request latency: the
         phases live under the root, so their sum is bounded by it *)
      let phase_ms =
        List.fold_left
          (fun acc (name, (_, ms, _)) -> if name = "request" then acc else acc +. ms)
          0.0 (Span.summary r2.Server.spans)
      in
      Alcotest.(check bool) "phase spans sum within request latency" true
        (phase_ms > 0.0 && phase_ms <= r2.Server.ms);
      (* a cached repeat skips the pipeline: root span only *)
      let r4 = Server.handle server (Protocol.Run { spec = Protocol.default_spec ~app:"fft"; metrics = false }) in
      Alcotest.(check bool) "cached repeat" true r4.Server.cached;
      Alcotest.(check int) "cached reply has only the root span" 1 (Span.count r4.Server.spans);
      (* per-op histograms appear in the registry *)
      let reg = Server.registry server in
      (match Metrics.find reg "serve.request_ms{op=ping}" with
      | Some (Metrics.Histogram_v h) -> Alcotest.(check int) "two pings observed" 2 h.count
      | _ -> Alcotest.fail "no per-op histogram for ping");
      match Metrics.find reg "serve.request_ms" with
      | Some (Metrics.Histogram_v h) -> Alcotest.(check int) "aggregate counts all" 4 h.count
      | _ -> Alcotest.fail "no aggregate latency histogram")

let metrics_text_exposition () =
  let server = Server.create ~clock:(test_clock ()) () in
  Fun.protect
    ~finally:(fun () -> Server.shutdown server)
    (fun () ->
      ignore (Server.handle server Protocol.Ping);
      let r = Server.handle server Protocol.Metrics_text in
      Alcotest.(check bool) "ok" true r.Server.ok;
      Alcotest.(check bool) "uncached" false r.Server.cached;
      let has affix = Astring.String.is_infix ~affix r.Server.body in
      Alcotest.(check bool) "body is not JSON" false (Astring.String.is_prefix ~affix:"{" r.Server.body);
      Alcotest.(check bool) "counter family present" true (has "# TYPE serve_requests counter");
      Alcotest.(check bool) "histogram family present" true (has "# TYPE serve_request_ms histogram");
      Alcotest.(check bool) "per-op label series" true (has "serve_request_ms_bucket{op=\"ping\",le=");
      Alcotest.(check bool) "+Inf closes buckets" true (has "le=\"+Inf\"}");
      Alcotest.(check bool) "count series" true (has "serve_request_ms_count "))

let cache_stats_latency_section () =
  let server = Server.create ~clock:(test_clock ()) () in
  Fun.protect
    ~finally:(fun () -> Server.shutdown server)
    (fun () ->
      ignore (Server.handle server Protocol.Ping);
      ignore (Server.handle server (Protocol.Run { spec = Protocol.default_spec ~app:"fft"; metrics = false }));
      let r = Server.handle server Protocol.Cache_stats in
      match RJ.parse r.Server.body with
      | Error m -> Alcotest.fail m
      | Ok doc -> (
        match RJ.member "latency" doc with
        | Some lat ->
          List.iter
            (fun key ->
              match RJ.member key lat with
              | Some entry ->
                (match (RJ.member "count" entry, RJ.member "p95_ms" entry) with
                | Some (RJ.Int n), Some _ -> Alcotest.(check bool) (key ^ " count positive") true (n > 0)
                | _ -> Alcotest.failf "latency.%s missing count/p95_ms" key)
              | None -> Alcotest.failf "latency section missing %S" key)
            [ "all"; "ping"; "run" ]
        | None -> Alcotest.fail "cache-stats has no latency section"))

let access_log_jsonl () =
  let req_path = Filename.temp_file "ndp_serve_req" ".bin" in
  let rsp_path = Filename.temp_file "ndp_serve_rsp" ".bin" in
  let log_path = Filename.temp_file "ndp_serve_log" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ req_path; rsp_path; log_path ])
    (fun () ->
      let oc = open_out_bin req_path in
      let session =
        [
          Protocol.Ping;
          Protocol.Run { spec = Protocol.default_spec ~app:"fft"; metrics = false };
          Protocol.Run { spec = Protocol.default_spec ~app:"fft"; metrics = false };
          Protocol.Shutdown;
        ]
      in
      List.iteri (fun i req -> Protocol.write_request oc ~id:(i + 1) req) session;
      close_out oc;
      let log_oc = open_out log_path in
      let server = Server.create ~clock:(test_clock ()) ~access_log:log_oc ~slow_ms:1e9 () in
      let ic = open_in_bin req_path in
      let rsp_oc = open_out_bin rsp_path in
      Server.serve_channels server ic rsp_oc;
      close_in ic;
      close_out rsp_oc;
      Server.shutdown server;
      close_out log_oc;
      let lines = In_channel.with_open_bin log_path In_channel.input_all in
      let lines = String.split_on_char '\n' lines |> List.filter (fun l -> l <> "") in
      Alcotest.(check int) "one JSONL line per request" (List.length session) (List.length lines);
      List.iteri
        (fun i line ->
          match RJ.parse line with
          | Error m -> Alcotest.failf "access-log line %d unparseable: %s" i m
          | Ok doc ->
            Alcotest.(check bool) (Printf.sprintf "line %d seq" i) true
              (RJ.member "seq" doc = Some (RJ.Int (i + 1)));
            Alcotest.(check bool) (Printf.sprintf "line %d id" i) true
              (RJ.member "id" doc = Some (RJ.Int (i + 1)));
            List.iter
              (fun field ->
                if RJ.member field doc = None then
                  Alcotest.failf "access-log line %d missing %S" i field)
              [ "op"; "key"; "ok"; "cached"; "ms"; "bytes_out"; "spans"; "phases" ])
        lines;
      (* the uncached run (line 2) carries phase totals; the cached repeat
         (line 3) does not *)
      let phases_of line =
        match RJ.parse line with
        | Ok doc -> (match RJ.member "phases" doc with Some (RJ.Obj kvs) -> List.map fst kvs | _ -> [])
        | Error _ -> []
      in
      Alcotest.(check bool) "cold run logs phase breakdown" true
        (List.mem "simulate" (phases_of (List.nth lines 1)));
      Alcotest.(check (list string)) "cached repeat logs no phases" [] (phases_of (List.nth lines 2));
      (* ops recorded via Protocol.op_name *)
      let op_of line =
        match RJ.parse line with
        | Ok doc -> (match RJ.member "op" doc with Some (RJ.Str s) -> s | _ -> "?")
        | Error _ -> "?"
      in
      Alcotest.(check (list string)) "ops in request order" [ "ping"; "run"; "run"; "shutdown" ]
        (List.map op_of lines))

let op_names_cover_requests () =
  List.iter
    (fun req ->
      let name = Protocol.op_name req in
      if name = "" then Alcotest.fail "empty op name";
      (* ops that round-trip through the wire decode back to the same op
         name (the access-log vocabulary is the wire vocabulary) *)
      match Protocol.request_of_json (Protocol.request_to_json ~id:1 req) with
      | Ok (_, req') -> Alcotest.(check string) "op name stable" name (Protocol.op_name req')
      | Error m -> Alcotest.fail m)
    (representative_requests ())

let tests =
  [
    ( "serve",
      [
        Alcotest.test_case "key covers every Config field" `Quick key_covers_config;
        Alcotest.test_case "key covers every tweak field" `Quick key_covers_tweaks;
        Alcotest.test_case "key covers scheme + window policy" `Quick key_covers_scheme;
        Alcotest.test_case "key covers fault spec + seed" `Quick key_covers_fault;
        Alcotest.test_case "key covers kernel content" `Quick key_covers_kernel_content;
        Alcotest.test_case "key covers job flags" `Quick key_covers_job_flags;
        Alcotest.test_case "cache LRU eviction accounting" `Quick cache_lru;
        Alcotest.test_case "cache capacity clamps to 1" `Quick cache_capacity_clamped;
        Alcotest.test_case "request codec round-trips" `Quick codec_round_trip;
        Alcotest.test_case "framing round-trips" `Quick framing_round_trip;
        Alcotest.test_case "framing rejects garbage" `Quick framing_rejects_garbage;
        Alcotest.test_case "cached replies byte-identical (suite x schemes)" `Slow
          cached_replies_byte_identical;
        Alcotest.test_case "sweep reuses the captured schedule" `Quick sweep_reuses_schedule;
        Alcotest.test_case "errors reported in band" `Quick errors_reported_in_band;
        Alcotest.test_case "replies are traced" `Quick replies_are_traced;
        Alcotest.test_case "metrics-text exposition" `Quick metrics_text_exposition;
        Alcotest.test_case "cache-stats latency section" `Quick cache_stats_latency_section;
        Alcotest.test_case "access log JSONL" `Quick access_log_jsonl;
        Alcotest.test_case "op names cover requests" `Quick op_names_cover_requests;
      ] );
  ]
