(* Property-based tests over randomized inputs: a hand-rolled, seeded
   generator plus a greedy shrinker (no qcheck runner, so failures report
   the exact seed and a minimized counterexample in the repo's own
   vocabulary).

   Properties:
   - parser round-trip: printing any precedence-respecting statement tree
     and reparsing it yields the same tree;
   - the bucketed [Dependence.analyze] equals the O(n^2) naive oracle on
     random instance streams (including indirect may-dependences);
   - every schedule the partitioned pipeline emits for a random in-bounds
     kernel passes the [Ndp_analysis.Validate] race detector;
   - linking [ndp_fault] but injecting an empty plan leaves a run
     result-identical to one with no plan at all. *)

module Rng = Ndp_prelude.Rng
module Sub = Ndp_ir.Subscript
module Ref = Ndp_ir.Reference
module Expr = Ndp_ir.Expr
module Op = Ndp_ir.Op
module Stmt = Ndp_ir.Stmt
module Parser = Ndp_ir.Parser
module Dep = Ndp_ir.Dependence
module Spec = Ndp_workloads.Spec
module Pipeline = Ndp_core.Pipeline
module Plan = Ndp_fault.Plan

(* -------------------------------------------------------------------- *)
(* Harness.                                                              *)

type 'a arbitrary = {
  gen : Rng.t -> 'a;
  shrink : 'a -> 'a list; (** structurally smaller candidates, best first *)
  print : 'a -> string;
}

(* Each case gets its own deterministic seed so a failure names the one
   stream that reproduces it; shrinking keeps the first still-failing
   candidate until none of them fail (greedy descent, bounded fuel). *)
let forall ?(count = 100) ~name arb prop =
  for case = 0 to count - 1 do
    let seed = 0x5eed + (case * 0x9e3779b9) in
    let x = arb.gen (Rng.create seed) in
    match prop x with
    | Ok () -> ()
    | Error first ->
      let rec minimize x msg fuel =
        if fuel = 0 then (x, msg)
        else
          let failing =
            List.find_map
              (fun cand ->
                match prop cand with Error m -> Some (cand, m) | Ok () -> None)
              (arb.shrink x)
          in
          match failing with
          | Some (cand, m) -> minimize cand m (fuel - 1)
          | None -> (x, msg)
      in
      let min_x, min_msg = minimize x first 500 in
      Alcotest.failf "%s: case %d (seed %d): %s\n  minimal counterexample: %s" name case seed
        min_msg (arb.print min_x)
  done

(* -------------------------------------------------------------------- *)
(* Statement generator.                                                  *)

let array_names = [| "A"; "B"; "C"; "D"; "E" |]

(* Positive coefficients and a non-negative constant: the printer joins
   affine terms with '+', and the subscript grammar has no unary minus. *)
let gen_affine rng =
  let vs =
    match Rng.int rng 3 with
    | 0 -> []
    | 1 -> [ (if Rng.bool rng then "i" else "j") ]
    | _ -> [ "i"; "j" ]
  in
  let coeffs = List.map (fun v -> (v, 1 + Rng.int rng 3)) vs in
  Sub.affine coeffs (Rng.int rng 5)

let rec gen_subscript rng depth =
  if depth > 0 && Rng.chance rng 0.3 then Sub.indirect "Y" (gen_subscript rng (depth - 1))
  else gen_affine rng

let gen_ref rng = Ref.make (Rng.pick rng array_names) (gen_subscript rng 1)

(* Precedence-respecting trees only: [Binop (op, l, r)] round-trips
   through the naive (paren-free) printer exactly when the top operator of
   [l] binds at least as tightly as [op] and the top operator of [r]
   strictly tighter — the same left-associative climb the parser does.
   [min_prio] is that constraint pushed down during generation. *)
let rec gen_expr rng depth min_prio =
  let leaf () =
    if Rng.bool rng then Expr.Const (float_of_int (Rng.int rng 10))
    else Expr.Ref (gen_ref rng)
  in
  if depth = 0 then leaf ()
  else
    match Rng.int rng 4 with
    | 0 -> leaf ()
    | 1 -> Expr.Group (gen_expr rng (depth - 1) 0)
    | _ -> (
      let candidates =
        Array.of_list (List.filter (fun op -> Op.priority op >= min_prio) Op.all)
      in
      match Array.length candidates with
      | 0 -> leaf ()
      | _ ->
        let op = Rng.pick rng candidates in
        let l = gen_expr rng (depth - 1) (Op.priority op) in
        let r = gen_expr rng (depth - 1) (Op.priority op + 1) in
        Expr.Binop (op, l, r))

let gen_stmt rng = Stmt.make (gen_ref rng) (gen_expr rng 3 0)

(* Shrinks must preserve the precedence invariant, or the shrinker walks
   toward trees that fail the round-trip by construction rather than by
   bug. Replacing a binop with either child is safe (children satisfy a
   constraint at least as strict); unwrapping a [Group] in an operand
   position is not, so groups only shrink their contents. *)
let rec shrink_expr = function
  | Expr.Const c -> if c <> 0. then [ Expr.Const 0. ] else []
  | Expr.Ref _ -> [ Expr.Const 0. ]
  | Expr.Group e -> List.map (fun e' -> Expr.Group e') (shrink_expr e)
  | Expr.Binop (op, a, b) ->
    [ a; b ]
    @ List.map (fun a' -> Expr.Binop (op, a', b)) (shrink_expr a)
    @ List.map (fun b' -> Expr.Binop (op, a, b')) (shrink_expr b)

let shrink_subscript = function
  | Sub.Indirect { inner; _ } -> [ inner ]
  | Sub.Affine { coeffs; const } ->
    (if const <> 0 then [ Sub.affine coeffs 0 ] else [])
    @ List.mapi (fun i _ -> Sub.affine (List.filteri (fun j _ -> j <> i) coeffs) const) coeffs

let shrink_stmt (s : Stmt.t) =
  List.map (fun rhs -> Stmt.make s.Stmt.lhs rhs) (shrink_expr s.Stmt.rhs)
  @ List.map
      (fun sub -> Stmt.make (Ref.make s.Stmt.lhs.Ref.array sub) s.Stmt.rhs)
      (shrink_subscript s.Stmt.lhs.Ref.subscript)

let arb_stmt = { gen = gen_stmt; shrink = shrink_stmt; print = Stmt.to_string }

let parser_round_trip () =
  forall ~count:400 ~name:"print/parse round-trip" arb_stmt (fun t ->
      let src = Stmt.to_string t in
      match Parser.statement src with
      | exception Parser.Parse_error msg ->
        Error (Printf.sprintf "printed form %S does not parse: %s" src msg)
      | t' ->
        if t' = t then Ok ()
        else
          Error
            (Printf.sprintf "parse of %S rebuilt a different tree (reprints as %S)" src
               (Stmt.to_string t')))

(* -------------------------------------------------------------------- *)
(* Dependence analysis vs. the naive oracle.                             *)

(* Random single-nest programs over three shared data arrays and one
   index array, with small strides and offsets so accesses overlap often
   (the interesting case for the address-bucketed analyze). *)
type dep_case = { trip : int; body : Stmt.t list }

let dep_arrays = Ndp_ir.Array_decl.layout [ ("a", 64, 8); ("b", 64, 8); ("c", 64, 8) ]

let gen_dep_ref rng =
  let name = [| "a"; "b"; "c" |].(Rng.int rng 3) in
  let sub =
    let affine = Sub.affine [ ("i", 1 + Rng.int rng 2) ] (Rng.int rng 4) in
    if Rng.chance rng 0.25 then Sub.indirect "y" affine else affine
  in
  Ref.make name sub

let gen_dep_stmt rng =
  let rhs =
    let r1 = Expr.Ref (gen_dep_ref rng) in
    if Rng.bool rng then r1 else Expr.Binop (Op.Add, r1, Expr.Ref (gen_dep_ref rng))
  in
  Stmt.make (gen_dep_ref rng) rhs

let gen_dep_case rng =
  let trip = 3 + Rng.int rng 5 in
  let body = List.init (1 + Rng.int rng 3) (fun _ -> gen_dep_stmt rng) in
  { trip; body }

let shrink_dep_case { trip; body } =
  (if trip > 1 then [ { trip = trip - 1; body } ] else [])
  @ (if List.length body > 1 then
       List.mapi (fun i _ -> { trip; body = List.filteri (fun j _ -> j <> i) body }) body
     else [])
  @ List.concat
      (List.mapi
         (fun i s ->
           List.map
             (fun s' -> { trip; body = List.mapi (fun j t -> if j = i then s' else t) body })
             (shrink_stmt s))
         body)

let print_dep_case { trip; body } =
  Printf.sprintf "for i in [0,%d): %s" trip
    (String.concat "; " (List.map Stmt.to_string body))

(* The compiler's static view: affine subscripts resolve to addresses,
   indirect ones stay opaque and fall back to per-array may-deps. *)
let dep_resolver (r : Ref.t) env =
  match Sub.eval_affine env r.Ref.subscript with
  | Some i -> Some (Ndp_ir.Array_decl.address (Ndp_ir.Array_decl.find dep_arrays r.Ref.array) i)
  | None -> None

let dep_stream { trip; body } =
  let nest = Ndp_ir.Loop.nest ~sweeps:1 "n" [ { Ndp_ir.Loop.var = "i"; lo = 0; hi = trip } ] body in
  List.concat_map
    (fun env -> List.mapi (fun stmt_idx stmt -> { Dep.stmt_idx; stmt; env }) body)
    (Ndp_ir.Loop.iterations nest)

let dep_to_tuple (d : Dep.dep) = (d.Dep.src, d.Dep.dst, d.Dep.kind, d.Dep.may)

let analyze_equals_oracle () =
  forall ~count:80 ~name:"analyze = naive oracle"
    { gen = gen_dep_case; shrink = shrink_dep_case; print = print_dep_case }
    (fun case ->
      let stream = dep_stream case in
      let fast = List.map dep_to_tuple (Dep.analyze dep_resolver stream) in
      let naive = List.map dep_to_tuple (Dep.analyze_naive dep_resolver stream) in
      if fast = naive then Ok ()
      else
        Error
          (Printf.sprintf "bucketed analyze found %d deps, naive oracle %d (or different order)"
             (List.length fast) (List.length naive)))

(* -------------------------------------------------------------------- *)
(* Random kernels vs. the schedule race detector.                        *)

(* In-bounds by construction: arrays hold 64 elements, i ranges over at
   most 8 iterations, strides are <= 2 and offsets <= 3, and the y index
   array permutes [0,64). *)
let y_table = Array.init 64 (fun k -> k * 7 mod 64)

let gen_kernel rng =
  let trip = 4 + Rng.int rng 5 in
  let body = List.init (1 + Rng.int rng 3) (fun _ -> Stmt.to_string (gen_dep_stmt rng)) in
  Spec.kernel
    ~name:(Printf.sprintf "prop-%d" trip)
    ~description:"randomized property-test kernel"
    ~arrays:[ ("a", 64, 8); ("b", 64, 8); ("c", 64, 8); ("y", 64, 8) ]
    ~nests:[ Spec.nest ~sweeps:1 "n" [ ("i", 0, trip) ] body ]
    ~index_arrays:[ ("y", y_table) ]
    ()

let print_kernel (k : Ndp_core.Kernel.t) =
  String.concat "; " (List.map Stmt.to_string (Ndp_ir.Loop.all_statements k.Ndp_core.Kernel.program))

let gen_scheme rng =
  (* Half the schemes fuse: fused schedules must pass the race detector
     exactly as unfused ones do. *)
  let fuse = Rng.bool rng in
  match Rng.int rng 4 with
  | 0 -> Pipeline.Partitioned { Pipeline.partitioned_defaults with Pipeline.fuse = fuse }
  | n ->
    Pipeline.Partitioned
      { Pipeline.partitioned_defaults with Pipeline.window = Pipeline.Fixed n; fuse }

let schedules_pass_race_validator () =
  forall ~count:15 ~name:"random schedules race-free"
    {
      gen = (fun rng -> (gen_kernel rng, gen_scheme rng));
      (* Kernel shrinking would re-derive the whole compile+simulate
         pipeline per candidate; a failure here names the kernel body,
         which is already minimal enough to replay by hand. *)
      shrink = (fun _ -> []);
      print =
        (fun (k, scheme) ->
          Printf.sprintf "%s under %s" (print_kernel k) (Pipeline.scheme_name scheme));
    }
    (fun (kernel, scheme) ->
      let diags = Ndp_analysis.Validate.check_kernel scheme kernel in
      match List.filter Ndp_analysis.Diagnostic.is_error diags with
      | [] -> Ok ()
      | errs ->
        Error
          (String.concat "\n    " (List.map Ndp_analysis.Diagnostic.to_string errs)))

(* -------------------------------------------------------------------- *)
(* Empty fault plan = no fault plan.                                     *)

let empty_plan_is_identity () =
  forall ~count:8 ~name:"empty fault plan is identity"
    {
      gen = gen_kernel;
      shrink = (fun _ -> []);
      print = print_kernel;
    }
    (fun kernel ->
      let scheme =
        Pipeline.Partitioned
          { Pipeline.partitioned_defaults with Pipeline.window = Pipeline.Fixed 2 }
      in
      let plain = Pipeline.run scheme kernel in
      let mesh = Ndp_sim.Config.mesh Ndp_sim.Config.default in
      let faulted = Pipeline.run ~faults:(Plan.empty ~mesh) ~repair:true scheme kernel in
      if plain.Pipeline.exec_time <> faulted.Pipeline.exec_time then
        Error
          (Printf.sprintf "exec_time diverged: %d plain vs %d with empty plan"
             plain.Pipeline.exec_time faulted.Pipeline.exec_time)
      else if
        Ndp_sim.Stats.to_alist plain.Pipeline.stats
        <> Ndp_sim.Stats.to_alist faulted.Pipeline.stats
      then Error "stats diverged under an empty fault plan"
      else if plain.Pipeline.node_finish <> faulted.Pipeline.node_finish then
        Error "per-node finish times diverged under an empty fault plan"
      else if faulted.Pipeline.remapped_tasks <> 0 then
        Error
          (Printf.sprintf "empty plan repaired %d tasks" faulted.Pipeline.remapped_tasks)
      else Ok ())

(* -------------------------------------------------------------------- *)
(* Analytic window model vs. the sampled estimator.                      *)

(* Restricted kernels on which the closed form is provably exact: every
   statement touches its own arrays (no dependences, so no sync arcs and
   an empty chunk slice), and every subscript strides a full cache line
   (8 words at 8-byte elements), so the reuse map never hits and both
   paths price every instance with the same margin rule. On this class
   [Window.movement_estimate] must equal the analytic total exactly, for
   every window size. *)
type analytic_case = { a_trip : int; a_stmts : int * int list (* inputs per stmt *) }

let gen_analytic_case rng =
  let nstmts = 1 + Rng.int rng 3 in
  { a_trip = 4 + Rng.int rng 7; a_stmts = (nstmts, List.init nstmts (fun _ -> 1 + Rng.int rng 3)) }

let analytic_kernel { a_trip; a_stmts = nstmts, inputs } =
  let arrays = ref [] in
  let body =
    List.init nstmts (fun k ->
        let out = Printf.sprintf "o%d" k in
        let ins = List.init (List.nth inputs k) (fun j -> Printf.sprintf "x%d_%d" k j) in
        arrays := (out :: ins) @ !arrays;
        Printf.sprintf "%s[8*i+%d] = %s" out (k mod 8)
          (String.concat " + " (List.map (fun a -> Printf.sprintf "%s[8*i+%d]" a (k mod 8)) ins)))
  in
  Spec.kernel ~name:"prop-analytic" ~description:"affine-only, dependence-free"
    ~arrays:(List.map (fun a -> (a, (8 * a_trip) + 8, 8)) (List.sort_uniq compare !arrays))
    ~nests:[ Spec.nest ~sweeps:1 "n" [ ("i", 0, a_trip) ] body ]
    ()

let print_analytic_case c =
  Printf.sprintf "trip %d, inputs per stmt [%s]" c.a_trip
    (String.concat "; " (List.map string_of_int (snd c.a_stmts)))

let analytic_equals_sampled_estimate () =
  forall ~count:60 ~name:"analytic = sampled estimate on affine-only kernels"
    { gen = gen_analytic_case; shrink = (fun _ -> []); print = print_analytic_case }
    (fun case ->
      let kernel = analytic_kernel case in
      let scheme = Pipeline.Partitioned Pipeline.partitioned_defaults in
      let nest = List.hd kernel.Ndp_core.Kernel.program.Ndp_ir.Loop.nests in
      let rec check_w w =
        if w > 4 then Ok ()
        else begin
          let sampled_ctx = Pipeline.static_context scheme kernel in
          let analytic_ctx = Pipeline.static_context scheme kernel in
          let metas, _ = Pipeline.nest_stream sampled_ctx nest ~first_group:0 in
          let sampled = Ndp_core.Window.movement_estimate sampled_ctx metas ~window:w in
          let a = Ndp_core.Window.analytic_of analytic_ctx metas ~window:w in
          let analytic =
            Array.fold_left ( + ) 0 a.Ndp_core.Window.a_est
            + (Ndp_core.Window.sync_links_of analytic_ctx * a.Ndp_core.Window.a_syncs)
          in
          if sampled <> analytic then
            Error
              (Printf.sprintf "window %d: sampled estimate %d vs analytic %d" w sampled analytic)
          else check_w (w + 1)
        end
      in
      check_w 1)

(* -------------------------------------------------------------------- *)
(* Static cost table vs. the measured ledger, whole suite.               *)

let divergence ~static ~measured =
  if static = 0 && measured = 0 then 1.0
  else if static = 0 || measured = 0 then infinity
  else
    let a = float_of_int static and b = float_of_int measured in
    if a > b then a /. b else b /. a

let analyze_reconciles_suite () =
  (* The same gate `ndp_run analyze` applies, over every workload and both
     schemes: the static table must stay within the divergence threshold
     of what the simulated NoC actually carried. *)
  let threshold = 4.0 in
  List.iter
    (fun name ->
      let kernel = Ndp_workloads.Suite.find name in
      List.iter
        (fun scheme ->
          let table = Ndp_analysis.Cost.table ~scheme kernel in
          let obs = Ndp_obs.Sink.create ~metrics:false ~trace:false ~ledger:true () in
          let _ = Pipeline.run ~obs scheme kernel in
          let measured = Ndp_obs.Ledger.total_flit_hops obs.Ndp_obs.Sink.ledger in
          let ratio = divergence ~static:table.Ndp_analysis.Cost.total_flit_hops ~measured in
          if ratio > threshold then
            Alcotest.failf "%s under %s: static %d vs measured %d flit-hops (x%.2f > x%.2f)" name
              (Pipeline.scheme_name scheme) table.Ndp_analysis.Cost.total_flit_hops measured ratio
              threshold)
        [
          Pipeline.Default;
          Pipeline.Partitioned
            { Pipeline.partitioned_defaults with Pipeline.window = Pipeline.Analytic };
        ])
    Ndp_workloads.Suite.names

(* -------------------------------------------------------------------- *)
(* Fusion: semantics preserved, capacity 0 is the identity pass.         *)

module Fusion = Ndp_core.Fusion
module Window = Ndp_core.Window

(* Random flow-only chain kernels — the class fusion targets: statement k
   writes its own array o{k}[i] and reads pure inputs plus earlier
   outputs of the same iteration, so every hazard is a producer→consumer
   flow dependence. All subscripts are affine and in bounds (64-element
   arrays, trips <= 8, strides <= 2, offsets <= 3). *)
type chain_case = { c_trip : int; c_reads : int list list }
(* [c_reads] row k lists which earlier statements k reads (j < k); each
   row implicitly also reads one fresh input array. *)

let gen_chain_case rng =
  let nstmts = 2 + Rng.int rng 4 in
  let reads =
    List.init nstmts (fun k ->
        List.filter (fun j -> j < k) (List.init (Rng.int rng 3) (fun _ -> Rng.int rng nstmts)))
  in
  { c_trip = 4 + Rng.int rng 5; c_reads = List.map (List.sort_uniq compare) reads }

let shrink_chain_case { c_trip; c_reads } =
  (if c_trip > 2 then [ { c_trip = c_trip - 1; c_reads } ] else [])
  @ (if List.length c_reads > 2 then
       (* Dropping the last statement is safe: earlier rows never read it. *)
       [ { c_trip; c_reads = List.filteri (fun k _ -> k < List.length c_reads - 1) c_reads } ]
     else [])
  @ List.concat
      (List.mapi
         (fun k row ->
           List.map
             (fun j ->
               {
                 c_trip;
                 c_reads =
                   List.mapi
                     (fun k' row' -> if k' = k then List.filter (( <> ) j) row' else row')
                     c_reads;
               })
             row)
         c_reads)

let chain_kernel { c_trip; c_reads } =
  let body =
    List.mapi
      (fun k row ->
        let reads =
          Printf.sprintf "x%d[%d*i+%d]" k (1 + (k mod 2)) (k mod 4)
          :: List.map (fun j -> Printf.sprintf "o%d[i]" j) row
        in
        Printf.sprintf "o%d[i] = %s" k (String.concat " + " reads))
      c_reads
  in
  let arrays =
    List.concat_map
      (fun k -> [ (Printf.sprintf "o%d" k, 64, 8); (Printf.sprintf "x%d" k, 64, 8) ])
      (List.init (List.length c_reads) Fun.id)
  in
  Spec.kernel ~name:"prop-chain" ~description:"flow-only fusion chain"
    ~arrays:(List.sort_uniq compare arrays)
    ~nests:[ Spec.nest ~sweeps:1 "n" [ ("i", 0, c_trip) ] body ]
    ()

let print_chain_case c =
  Printf.sprintf "for i in [0,%d): %s" c.c_trip
    (String.concat "; "
       (List.map Stmt.to_string (Ndp_ir.Loop.all_statements (chain_kernel c).Ndp_core.Kernel.program)))

(* A tiny reference interpreter over float array states. Division guards
   to 0 and bitwise operators truncate to ints; the generators above only
   emit Add, so this totality is belt-and-braces. *)
let apply_op op a b =
  match op with
  | Op.Add -> a +. b
  | Op.Sub -> a -. b
  | Op.Mul -> a *. b
  | Op.Div -> if b = 0. then 0. else a /. b
  | Op.Shl | Op.Shr | Op.Band | Op.Bor | Op.Bxor ->
    let ia = int_of_float a and ib = int_of_float b land 62 in
    float_of_int
      (match op with
      | Op.Shl -> ia lsl ib
      | Op.Shr -> ia asr ib
      | Op.Band -> ia land int_of_float b
      | Op.Bor -> ia lor int_of_float b
      | _ -> ia lxor int_of_float b)

(* Execute the statement instances in [order] and digest the final array
   state. Initial contents are a deterministic nonzero function of (array,
   index); out-of-range indices wrap like [Array_decl.address]. *)
let interp_digest (kernel : Ndp_core.Kernel.t) order =
  let store =
    List.map
      (fun (d : Ndp_ir.Array_decl.t) ->
        ( d.Ndp_ir.Array_decl.name,
          Array.init d.Ndp_ir.Array_decl.length (fun i ->
              float_of_int ((Hashtbl.hash (d.Ndp_ir.Array_decl.name, i) mod 97) + 1)) ))
      kernel.Ndp_core.Kernel.program.Ndp_ir.Loop.arrays
  in
  let slot name i =
    let a = List.assoc name store in
    let n = Array.length a in
    (a, ((i mod n) + n) mod n)
  in
  let rec eval env = function
    | Expr.Const c -> c
    | Expr.Group e -> eval env e
    | Expr.Binop (op, a, b) -> apply_op op (eval env a) (eval env b)
    | Expr.Ref r -> (
      match Sub.eval_affine env r.Ref.subscript with
      | Some i ->
        let a, i = slot r.Ref.array i in
        a.(i)
      | None -> Alcotest.fail "non-affine reference reached the interpreter")
  in
  List.iter
    (fun (inst : Dep.instance) ->
      let s = inst.Dep.stmt in
      let v = eval inst.Dep.env s.Stmt.rhs in
      match Sub.eval_affine inst.Dep.env s.Stmt.lhs.Ref.subscript with
      | Some i ->
        let a, i = slot s.Stmt.lhs.Ref.array i in
        a.(i) <- v
      | None -> Alcotest.fail "non-affine store reached the interpreter")
    order;
  Digest.to_hex
    (Digest.string
       (String.concat "|"
          (List.map
             (fun (n, a) ->
               n ^ ":" ^ String.concat "," (Array.to_list (Array.map string_of_float a)))
             store)))

(* Compile the whole nest as one window (fused or not) and return the
   statement instances in root-emission order: each instance keyed by the
   position of its root (store-performing) task in the level-major task
   list. This is the order the schedule retires outputs in; flow
   dependences force a producer's root to an earlier position than any
   consumer's. *)
let scheduled_order (kernel : Ndp_core.Kernel.t) ~fuse =
  let scheme = Pipeline.Partitioned Pipeline.partitioned_defaults in
  let ctx = Pipeline.static_context scheme kernel in
  let nest = List.hd kernel.Ndp_core.Kernel.program.Ndp_ir.Loop.nests in
  let metas, _ = Pipeline.nest_stream ctx nest ~first_group:0 in
  let insts = List.map (fun (m : Window.meta) -> m.Window.inst) metas in
  let deps = Dep.analyze ctx.Ndp_core.Context.compiler_resolve insts in
  let fusion =
    if not fuse then None
    else begin
      let insts_arr = Array.of_list insts in
      let default_node =
        Array.of_list (List.map (fun (m : Window.meta) -> m.Window.default_node) metas)
      in
      let slots, _ =
        Fusion.plan ctx ~nest:nest.Ndp_ir.Loop.nest_name ~window:(List.length metas)
          ~capacity:Ndp_sim.Config.default.Ndp_sim.Config.l1_size
          ~shared:(Hashtbl.create 1) ~default_node insts_arr (Array.of_list deps)
      in
      Some slots
    end
  in
  let compiled = Window.compile ~deps ?fusion ctx metas in
  let pos = Hashtbl.create 64 in
  List.iteri
    (fun i ((t : Ndp_sim.Task.t), _level) -> Hashtbl.replace pos t.Ndp_sim.Task.id i)
    compiled.Window.tasks;
  let root_pos group =
    match List.assoc_opt group compiled.Window.roots with
    | Some task -> Hashtbl.find pos task
    | None -> Alcotest.failf "no root task recorded for statement group %d" group
  in
  ( List.map snd
      (List.sort compare
         (List.map (fun (m : Window.meta) -> (root_pos m.Window.group, m.Window.inst)) metas)),
    match fusion with
    | Some slots ->
      Array.exists (function Some { Fusion.f_elide = true; _ } -> true | _ -> false) slots
    | None -> false )

let fusion_preserves_semantics () =
  let fused_nonempty = ref 0 in
  forall ~count:40 ~name:"fusion preserves array state"
    { gen = gen_chain_case; shrink = shrink_chain_case; print = print_chain_case }
    (fun case ->
      let kernel = chain_kernel case in
      let program_order =
        let nest = List.hd kernel.Ndp_core.Kernel.program.Ndp_ir.Loop.nests in
        List.concat_map
          (fun env ->
            List.mapi (fun stmt_idx stmt -> { Dep.stmt_idx; stmt; env }) nest.Ndp_ir.Loop.body)
          (Ndp_ir.Loop.iterations nest)
      in
      let reference = interp_digest kernel program_order in
      let unfused_order, _ = scheduled_order kernel ~fuse:false in
      let fused_order, elided = scheduled_order kernel ~fuse:true in
      if elided then incr fused_nonempty;
      let unfused = interp_digest kernel unfused_order in
      let fused = interp_digest kernel fused_order in
      if unfused <> reference then
        Error
          (Printf.sprintf "unfused schedule order diverged from program order (%s vs %s)"
             unfused reference)
      else if fused <> reference then
        Error
          (Printf.sprintf "fused schedule order diverged from program order (%s vs %s)" fused
             reference)
      else Ok ());
  (* The property is vacuous if no generated case ever fused. *)
  if !fused_nonempty = 0 then
    Alcotest.fail "no generated chain kernel produced a fusion elision"

let capacity_zero_is_identity () =
  forall ~count:25 ~name:"fuse with capacity 0 is the identity pass"
    { gen = gen_dep_case; shrink = shrink_dep_case; print = print_dep_case }
    (fun case ->
      let kernel =
        Spec.kernel ~name:"prop-cap0" ~description:"capacity-0 identity case"
          ~arrays:[ ("a", 64, 8); ("b", 64, 8); ("c", 64, 8); ("y", 64, 8) ]
          ~nests:
            [
              Spec.nest ~sweeps:1 "n"
                [ ("i", 0, case.trip) ]
                (List.map Stmt.to_string case.body);
            ]
          ~index_arrays:[ ("y", y_table) ]
          ()
      in
      let run fuse =
        Pipeline.run
          (Pipeline.Partitioned
             {
               Pipeline.partitioned_defaults with
               Pipeline.window = Pipeline.Fixed 4;
               fuse;
               fuse_capacity = (if fuse then Some 0 else None);
             })
          kernel
      in
      let plain = run false and fused = run true in
      if plain.Pipeline.exec_time <> fused.Pipeline.exec_time then
        Error
          (Printf.sprintf "exec_time diverged: %d plain vs %d with capacity-0 fusion"
             plain.Pipeline.exec_time fused.Pipeline.exec_time)
      else if
        Ndp_sim.Stats.to_alist plain.Pipeline.stats
        <> Ndp_sim.Stats.to_alist fused.Pipeline.stats
      then Error "stats diverged under capacity-0 fusion"
      else if fused.Pipeline.fusion_decisions <> [] then
        Error
          (Printf.sprintf "capacity-0 fusion still recorded %d decisions"
             (List.length fused.Pipeline.fusion_decisions))
      else Ok ())

(* -------------------------------------------------------------------- *)
(* The shrinker itself: a deliberately false property must minimize.     *)

let shrinker_minimizes () =
  (* Any statement whose rhs contains a division fails; the minimal
     failing tree under [shrink_stmt] is [lhs = x / y] with constant
     operands. Run the same greedy descent [forall] uses and check it
     lands on a single-binop counterexample. *)
  let has_div (s : Stmt.t) = List.mem Op.Div (Expr.ops s.Stmt.rhs) in
  let rng = Rng.create 7 in
  let rec find_failing () =
    let t = gen_stmt rng in
    if has_div t then t else find_failing ()
  in
  let t = find_failing () in
  let rec minimize x fuel =
    if fuel = 0 then x
    else
      match List.find_opt has_div (shrink_stmt x) with
      | Some c -> minimize c (fuel - 1)
      | None -> x
  in
  let m = minimize t 500 in
  Alcotest.(check bool) "still failing" true (has_div m);
  Alcotest.(check int) "exactly one operator left" 1 (Expr.op_count m.Stmt.rhs);
  match m.Stmt.rhs with
  | Expr.Binop (Op.Div, Expr.Const _, Expr.Const _) -> ()
  | _ -> Alcotest.failf "not minimal: %s" (Stmt.to_string m)

(* -------------------------------------------------------------------- *)
(* Serve protocol: every request survives the JSON wire codec.           *)

module Proto = Ndp_serve.Protocol

(* Floats from a 1/8 grid: %.12g prints them exactly, so the codec's
   float round-trip is representational, not approximate. *)
let gen_grid_float rng = float_of_int (Rng.int rng 64) /. 8.0

let gen_spec rng =
  {
    Proto.app = Rng.pick rng [| "fft"; "water"; "lu"; "ocean" |];
    scheme = (if Rng.bool rng then "partitioned" else "default");
    window = Rng.pick rng [| "adaptive"; "analytic"; "2"; "8" |];
    cluster = Rng.pick rng [| "quadrant"; "all-to-all"; "snc-4" |];
    memory = Rng.pick rng [| "flat"; "cache"; "hybrid" |];
    tweaks =
      (if Rng.bool rng then Pipeline.no_tweaks
       else
         {
           Pipeline.l1_boost = gen_grid_float rng;
           distance_factor = 1.0 +. gen_grid_float rng;
           mc_overrides = (if Rng.bool rng then [] else [ (Rng.int rng 8, Rng.int rng 4) ]);
           cost_scale = 1.0 +. gen_grid_float rng;
           extra_syncs = Rng.int rng 3;
         });
    faults = Rng.pick rng [| ""; "kill=2"; "slow=1x2.5,stall=3@100+50" |];
    fault_seed = (if Rng.bool rng then None else Some (Rng.int rng 1000));
    repair = Rng.bool rng;
  }

let gen_request rng =
  match Rng.int rng 8 with
  | 0 -> Proto.Ping
  | 1 -> Proto.List_apps
  | 2 -> Proto.Run { spec = gen_spec rng; metrics = Rng.bool rng }
  | 3 -> Proto.Compile (gen_spec rng)
  | 4 -> Proto.Profile { spec = gen_spec rng; interval = Rng.int rng 5000; top = Rng.int rng 20 }
  | 5 -> Proto.Analyze { spec = gen_spec rng; threshold = 1.0 +. gen_grid_float rng }
  | 6 -> Proto.Batch [ gen_spec rng; gen_spec rng ]
  | _ ->
    Proto.Sweep
      {
        spec = gen_spec rng;
        variants =
          [
            {
              Proto.v_name = "v" ^ string_of_int (Rng.int rng 10);
              v_overrides = [ ("hop_cycles", 1 + Rng.int rng 64) ];
              v_tweaks = Pipeline.no_tweaks;
            };
          ];
      }

let request_round_trip () =
  forall ~count:200 ~name:"serve request wire round-trip"
    {
      gen = (fun rng -> (1 + Rng.int rng 1000, gen_request rng));
      shrink = (fun _ -> []);
      print =
        (fun (id, r) -> Ndp_obs.Render.Json.to_string (Proto.request_to_json ~id r));
    }
    (fun (id, r) ->
      match Proto.request_of_json (Proto.request_to_json ~id r) with
      | Ok (id', r') when id' = id && r' = r -> Ok ()
      | Ok _ -> Error "decoded to a different request"
      | Error m -> Error m)

let tests =
  [
    ( "prop",
      [
        Alcotest.test_case "parser print/parse round-trip" `Quick parser_round_trip;
        Alcotest.test_case "dependence analyze = naive oracle" `Quick analyze_equals_oracle;
        Alcotest.test_case "random schedules pass race validator" `Slow
          schedules_pass_race_validator;
        Alcotest.test_case "empty fault plan is identity" `Slow empty_plan_is_identity;
        Alcotest.test_case "analytic = sampled estimate (affine-only)" `Quick
          analytic_equals_sampled_estimate;
        Alcotest.test_case "static cost table reconciles with ledger (suite)" `Slow
          analyze_reconciles_suite;
        Alcotest.test_case "fusion preserves array state" `Slow fusion_preserves_semantics;
        Alcotest.test_case "fuse with capacity 0 is the identity pass" `Slow
          capacity_zero_is_identity;
        Alcotest.test_case "shrinker reaches a minimal counterexample" `Quick shrinker_minimizes;
        Alcotest.test_case "serve request wire round-trip" `Quick request_round_trip;
      ] );
  ]
