open Ndp_mem

let map36 = Addr_map.create ~num_l2_banks:36 ()

let addr_fields () =
  (* Figure 2: 64B lines, 4KB pages, 2 channel bits above the offset. *)
  Alcotest.(check int) "line of 0" 0 (Addr_map.line_of_addr map36 63);
  Alcotest.(check int) "line of 64" 1 (Addr_map.line_of_addr map36 64);
  Alcotest.(check int) "page of 4095" 0 (Addr_map.page_of_addr map36 4095);
  Alcotest.(check int) "page of 4096" 1 (Addr_map.page_of_addr map36 4096);
  Alcotest.(check int) "channel bits 12-13" 3 (Addr_map.channel map36 (3 lsl 12));
  Alcotest.(check int) "rank bits 14-15" 2 (Addr_map.rank map36 (2 lsl 14));
  Alcotest.(check int) "dram bank bits 16-18" 5 (Addr_map.dram_bank map36 (5 lsl 16));
  Alcotest.(check int) "channels" 4 (Addr_map.num_channels map36)

let addr_same_line () =
  Alcotest.(check bool) "same line" true (Addr_map.same_line map36 0 63);
  Alcotest.(check bool) "different lines" false (Addr_map.same_line map36 0 64)

let l2_bank_interleaves () =
  Alcotest.(check int) "line 0 -> bank 0" 0 (Addr_map.l2_bank map36 0);
  Alcotest.(check int) "line 36 wraps" 0 (Addr_map.l2_bank map36 (36 * 64));
  Alcotest.(check int) "line 37" 1 (Addr_map.l2_bank map36 (37 * 64))

let coloring_preserves () =
  let pa = Page_alloc.create ~policy:Page_alloc.Coloring map36 in
  let va = (7 lsl 12) lor 123 in
  Alcotest.(check int) "identity translation" va (Page_alloc.translate pa va);
  Alcotest.(check int) "compiler agrees" va (Page_alloc.compiler_view pa va)

let scrambled_diverges () =
  let pa = Page_alloc.create ~seed:5 ~policy:Page_alloc.Scrambled map36 in
  let va = (9 lsl 12) lor 50 in
  let t1 = Page_alloc.translate pa va in
  Alcotest.(check int) "stable translation" t1 (Page_alloc.translate pa va);
  Alcotest.(check int) "offset preserved" 50 (t1 land 4095);
  Alcotest.(check int) "compiler assumes identity" va (Page_alloc.compiler_view pa va)

let cache_hit_after_fill () =
  let c = Cache.create ~size_bytes:1024 ~assoc:2 ~line_bytes:64 () in
  Alcotest.(check bool) "cold miss" false (Cache.access c 0);
  Alcotest.(check bool) "hit after fill" true (Cache.access c 32);
  Alcotest.(check int) "one hit" 1 (Cache.hits c);
  Alcotest.(check int) "one miss" 1 (Cache.misses c)

let cache_lru_eviction () =
  (* 2-way, 8 sets: three lines in the same set evict the least recent. *)
  let c = Cache.create ~size_bytes:1024 ~assoc:2 ~line_bytes:64 () in
  let stride = 8 * 64 in
  ignore (Cache.access c 0);
  ignore (Cache.access c stride);
  ignore (Cache.access c 0); (* refresh line 0 *)
  ignore (Cache.access c (2 * stride)); (* evicts [stride] *)
  Alcotest.(check bool) "line 0 survives" true (Cache.probe c 0);
  Alcotest.(check bool) "line stride evicted" false (Cache.probe c stride)

let cache_probe_pure () =
  let c = Cache.create ~size_bytes:1024 ~assoc:2 ~line_bytes:64 () in
  Alcotest.(check bool) "probe miss" false (Cache.probe c 0);
  Alcotest.(check int) "probe does not count" 0 (Cache.hits c + Cache.misses c)

let cache_clear () =
  let c = Cache.create ~size_bytes:1024 ~assoc:2 ~line_bytes:64 () in
  ignore (Cache.access c 0);
  Cache.clear c;
  Alcotest.(check bool) "cleared" false (Cache.probe c 0);
  Alcotest.(check int) "stats reset" 0 (Cache.hits c + Cache.misses c)

let qcheck_cache_capacity =
  QCheck.Test.make ~name:"cache never holds more lines than capacity" ~count:50
    QCheck.(list_of_size Gen.(1 -- 200) (int_bound 10000))
    (fun addrs ->
      let c = Cache.create ~size_bytes:512 ~assoc:2 ~line_bytes:64 () in
      List.iter (fun a -> ignore (Cache.access c a)) addrs;
      let distinct_lines = List.sort_uniq compare (List.map (fun a -> a / 64) addrs) in
      let resident = List.filter (fun l -> Cache.probe c (l * 64)) distinct_lines in
      List.length resident <= 8)

let snuca_homes () =
  let mesh = Ndp_noc.Mesh.create ~cols:6 ~rows:6 in
  let s = Snuca.create mesh Ndp_noc.Cluster.Quadrant map36 in
  Alcotest.(check int) "line interleave" 0 (Snuca.home_node s 0);
  Alcotest.(check int) "next line next bank" 1 (Snuca.home_node s 64);
  Alcotest.(check int) "wraps at 36" 0 (Snuca.home_node s (36 * 64))

let snuca_snc4_quadrant_local () =
  let mesh = Ndp_noc.Mesh.create ~cols:6 ~rows:6 in
  let s = Snuca.create mesh Ndp_noc.Cluster.Snc4 map36 in
  for page = 0 to 15 do
    for line = 0 to 3 do
      let addr = (page lsl 12) lor (line * 64) in
      let home = Snuca.home_node s addr in
      Alcotest.(check int) "home in the page's quadrant" (page mod 4)
        (Ndp_noc.Mesh.quadrant_of_node mesh home)
    done
  done

let predictor_learns_reuse () =
  let p = Miss_predictor.create ~capacity_blocks:8 map36 in
  Alcotest.(check bool) "cold predicts miss" false (Miss_predictor.predict p 0);
  Miss_predictor.note_access p 0;
  Alcotest.(check bool) "recent predicts hit" true (Miss_predictor.predict p 0);
  for i = 1 to 20 do
    Miss_predictor.note_access p (i * 64)
  done;
  Alcotest.(check bool) "old access predicts miss again" false (Miss_predictor.predict p 0)

let predictor_accuracy_tracking () =
  let p = Miss_predictor.create ~capacity_blocks:8 map36 in
  Miss_predictor.confirm p ~addr:0 ~predicted:false ~hit:false;
  Miss_predictor.confirm p ~addr:64 ~predicted:true ~hit:false;
  Alcotest.(check int) "two observations" 2 (Miss_predictor.observations p);
  Alcotest.(check (float 1e-9)) "half right" 0.5 (Miss_predictor.accuracy p)

let cache_invalidate () =
  let c = Cache.create ~size_bytes:1024 ~assoc:2 ~line_bytes:64 () in
  ignore (Cache.access c 0);
  Cache.invalidate c 32;
  Alcotest.(check bool) "line gone" false (Cache.probe c 0);
  Cache.invalidate c 4096 (* absent line: no-op *)

let tests =
  [
    ( "mem",
      [
        Alcotest.test_case "address fields" `Quick addr_fields;
        Alcotest.test_case "same line" `Quick addr_same_line;
        Alcotest.test_case "L2 bank interleave" `Quick l2_bank_interleaves;
        Alcotest.test_case "coloring preserves bits" `Quick coloring_preserves;
        Alcotest.test_case "scrambled diverges" `Quick scrambled_diverges;
        Alcotest.test_case "cache hit after fill" `Quick cache_hit_after_fill;
        Alcotest.test_case "cache LRU eviction" `Quick cache_lru_eviction;
        Alcotest.test_case "cache probe pure" `Quick cache_probe_pure;
        Alcotest.test_case "cache clear" `Quick cache_clear;
        Alcotest.test_case "cache invalidate" `Quick cache_invalidate;
        Alcotest.test_case "snuca homes" `Quick snuca_homes;
        Alcotest.test_case "snc-4 quadrant local" `Quick snuca_snc4_quadrant_local;
        Alcotest.test_case "predictor learns reuse" `Quick predictor_learns_reuse;
        Alcotest.test_case "predictor accuracy" `Quick predictor_accuracy_tracking;
        QCheck_alcotest.to_alcotest qcheck_cache_capacity;
      ] );
  ]
