open Ndp_sim

let config = Config.default

let network_latency_grows_with_distance () =
  let net = Network.create config in
  let stats = Stats.create () in
  let t1 = Network.send net ~time:0 ~src:0 ~dst:1 ~bytes:8 ~stats in
  Network.reset net;
  let t5 = Network.send net ~time:0 ~src:0 ~dst:5 ~bytes:8 ~stats in
  Alcotest.(check bool) "longer route is slower" true (t5 > t1)

(* Regression: [reset] must also restore the distance factor, or a
   counterfactual (S2/ideal-network) run leaks its scaling into the next
   experiment sharing the network. *)
let network_reset_restores_distance_factor () =
  let net = Network.create config in
  let stats = Stats.create () in
  let fresh = Network.send net ~time:0 ~src:0 ~dst:5 ~bytes:64 ~stats in
  Network.reset net;
  Network.set_distance_factor net 0.5;
  let scaled = Network.send net ~time:0 ~src:0 ~dst:5 ~bytes:64 ~stats in
  Alcotest.(check bool) "factor active" true (scaled < fresh);
  Network.reset net;
  let after = Network.send net ~time:0 ~src:0 ~dst:5 ~bytes:64 ~stats in
  Alcotest.(check int) "factor restored by reset" fresh after

let network_local_is_free () =
  let net = Network.create config in
  let stats = Stats.create () in
  Alcotest.(check int) "same node" 17 (Network.send net ~time:17 ~src:4 ~dst:4 ~bytes:64 ~stats);
  Alcotest.(check int) "no hops" 0 (Stats.hops stats);
  Alcotest.(check int) "no message" 0 (Stats.messages stats)

let network_counts_flit_hops () =
  let net = Network.create config in
  let stats = Stats.create () in
  ignore (Network.send net ~time:0 ~src:0 ~dst:2 ~bytes:64 ~stats);
  (* 2 links x (64 / flit_bytes) flits. *)
  let flits = Config.flits_of_bytes config 64 in
  Alcotest.(check int) "flit-weighted hops" (2 * flits) (Stats.hops stats)

let network_congestion () =
  let net = Network.create config in
  let stats = Stats.create () in
  (* Saturate one link within an epoch; later messages should queue. *)
  let first = Network.send net ~time:0 ~src:0 ~dst:1 ~bytes:64 ~stats in
  let rec flood n last =
    if n = 0 then last else flood (n - 1) (Network.send net ~time:0 ~src:0 ~dst:1 ~bytes:64 ~stats)
  in
  let last = flood 300 first in
  Alcotest.(check bool) "queueing delays later messages" true (last > first)

let network_distance_factor () =
  let net = Network.create config in
  Network.set_distance_factor net 0.0;
  let stats = Stats.create () in
  let t = Network.send net ~time:5 ~src:0 ~dst:35 ~bytes:64 ~stats in
  Alcotest.(check int) "zero-distance network" 5 t;
  Alcotest.(check int) "no hops recorded" 0 (Stats.hops stats)

let machine_l1_hit_on_reuse () =
  let m = Machine.create config in
  let stats = Stats.create () in
  let o1 = Machine.load m ~node:3 ~va:4096 ~bytes:8 ~time:0 ~stats in
  Alcotest.(check bool) "first access misses L1" false o1.Machine.l1_hit;
  let o2 = Machine.load m ~node:3 ~va:4096 ~bytes:8 ~time:o1.Machine.arrival ~stats in
  Alcotest.(check bool) "second access hits L1" true o2.Machine.l1_hit;
  (* Same cache line, different element: spatial locality. *)
  let o3 = Machine.load m ~node:3 ~va:4104 ~bytes:8 ~time:o2.Machine.arrival ~stats in
  Alcotest.(check bool) "same line hits" true o3.Machine.l1_hit

let machine_l2_fill () =
  let m = Machine.create config in
  let stats = Stats.create () in
  let o1 = Machine.load m ~node:3 ~va:8192 ~bytes:8 ~time:0 ~stats in
  Alcotest.(check (option bool)) "cold L2 miss" (Some false) o1.Machine.l2_hit;
  (* A different node touching the same line now hits the shared L2. *)
  let o2 = Machine.load m ~node:20 ~va:8192 ~bytes:8 ~time:1000 ~stats in
  Alcotest.(check (option bool)) "remote L2 hit" (Some true) o2.Machine.l2_hit;
  Alcotest.(check bool) "probe sees residency" true (Machine.probe_l2 m ~va:8192)

let machine_miss_slower_than_hit () =
  let m = Machine.create config in
  let stats = Stats.create () in
  let miss = Machine.load m ~node:3 ~va:16384 ~bytes:8 ~time:0 ~stats in
  let m2 = Machine.create config in
  let stats2 = Stats.create () in
  ignore (Machine.load m2 ~node:7 ~va:16384 ~bytes:8 ~time:0 ~stats:stats2);
  let hit = Machine.load m2 ~node:3 ~va:16384 ~bytes:8 ~time:0 ~stats:stats2 in
  Alcotest.(check bool) "DRAM miss slower than L2 hit" true
    (miss.Machine.arrival > hit.Machine.arrival)

let machine_hot_ranges () =
  let m = Machine.create config in
  Machine.set_hot_ranges m [ (0, 1 lsl 20) ];
  let stats = Stats.create () in
  ignore (Machine.load m ~node:0 ~va:4096 ~bytes:8 ~time:0 ~stats);
  Alcotest.(check int) "hot access served by MCDRAM" 1 (Stats.mcdram_accesses stats);
  ignore (Machine.load m ~node:0 ~va:(1 lsl 21) ~bytes:8 ~time:0 ~stats);
  Alcotest.(check int) "cold access served by DDR" 1 (Stats.ddr_accesses stats)

let machine_mc_override () =
  let m = Machine.create config in
  let va = 4096 in
  let page = va lsr 12 in
  Machine.set_mc_overrides m [ (page, 35) ];
  let stats = Stats.create () in
  ignore (Machine.load m ~node:0 ~va ~bytes:8 ~time:0 ~stats);
  Alcotest.(check int) "miss went somewhere" 1 ((Stats.ddr_accesses stats) + (Stats.mcdram_accesses stats))

let machine_l1_boost () =
  let m = Machine.create config in
  Machine.set_l1_boost m 1.0;
  let stats = Stats.create () in
  let o = Machine.load m ~node:0 ~va:123456 ~bytes:8 ~time:0 ~stats in
  Alcotest.(check bool) "boosted to hit" true o.Machine.l1_hit

let engine_runs_chain () =
  let m = Machine.create config in
  let engine = Engine.create m in
  let t0 =
    Ndp_sim.Task.make ~id:0 ~group:0 ~node:1 ~ops:[ Ndp_ir.Op.Add ]
      ~operands:[ Ndp_sim.Task.Load { va = 4096; bytes = 8 } ]
      ~label:"leaf" ()
  in
  let t1 =
    Ndp_sim.Task.make ~id:1 ~group:0 ~node:5 ~ops:[ Ndp_ir.Op.Add ]
      ~operands:[ Ndp_sim.Task.Result { producer = 0; bytes = 8 } ]
      ~store:(8192, 8) ~syncs:1 ~label:"root" ()
  in
  Engine.run engine [ t0; t1 ];
  let f0 = Option.get (Engine.finish_of engine 0) in
  let f1 = Option.get (Engine.finish_of engine 1) in
  Alcotest.(check bool) "consumer after producer" true (f1 > f0);
  Alcotest.(check int) "two tasks" 2 (Stats.tasks (Engine.stats engine));
  Alcotest.(check int) "one sync" 1 (Stats.syncs (Engine.stats engine))

let engine_rejects_disorder () =
  let m = Machine.create config in
  let engine = Engine.create m in
  let consumer =
    Ndp_sim.Task.make ~id:1 ~group:0 ~node:5 ~ops:[]
      ~operands:[ Ndp_sim.Task.Result { producer = 0; bytes = 8 } ]
      ~label:"orphan" ()
  in
  Alcotest.check_raises "producer missing"
    (Invalid_argument "Engine.run: tasks not in producer-before-consumer order")
    (fun () -> Engine.run engine [ consumer ])

let engine_group_accounting () =
  let m = Machine.create config in
  let engine = Engine.create m in
  let t0 =
    Ndp_sim.Task.make ~id:0 ~group:7 ~node:1 ~ops:[]
      ~operands:[ Ndp_sim.Task.Load { va = 1 lsl 18; bytes = 8 } ]
      ~label:"x" ()
  in
  Engine.run engine [ t0 ];
  Alcotest.(check bool) "hops attributed to group" true (Engine.group_hops engine 7 > 0);
  Alcotest.(check int) "other group empty" 0 (Engine.group_hops engine 3)

let engine_parallelism_overlap () =
  let m = Machine.create config in
  let engine = Engine.create m in
  let mk id node = Ndp_sim.Task.make ~id ~group:0 ~node ~ops:[ Ndp_ir.Op.Mul ] ~operands:[] ~label:"p" () in
  Engine.run engine [ mk 0 1; mk 1 2; mk 2 3 ];
  Alcotest.(check int) "three tasks overlap on distinct nodes" 3 (Engine.group_parallelism engine 0)

let coherence_invalidates_remote_copy () =
  let m = Machine.create config in
  let stats = Stats.create () in
  (* Two nodes cache the same line; a third stores to it. *)
  ignore (Machine.load m ~node:1 ~va:4096 ~bytes:8 ~time:0 ~stats);
  ignore (Machine.load m ~node:2 ~va:4096 ~bytes:8 ~time:0 ~stats);
  Alcotest.(check bool) "node 1 holds copy" true (Machine.l1_probe m ~node:1 ~va:4096);
  ignore (Machine.store m ~node:3 ~va:4096 ~bytes:8 ~time:100 ~stats);
  Alcotest.(check bool) "node 1 invalidated" false (Machine.l1_probe m ~node:1 ~va:4096);
  Alcotest.(check bool) "node 2 invalidated" false (Machine.l1_probe m ~node:2 ~va:4096);
  Alcotest.(check bool) "writer keeps copy" true (Machine.l1_probe m ~node:3 ~va:4096);
  Alcotest.(check int) "two invalidations" 2 (Stats.invalidations stats)

let coherence_off_keeps_copies () =
  let m = Machine.create { config with Config.coherence = false } in
  let stats = Stats.create () in
  ignore (Machine.load m ~node:1 ~va:4096 ~bytes:8 ~time:0 ~stats);
  ignore (Machine.store m ~node:3 ~va:4096 ~bytes:8 ~time:100 ~stats);
  Alcotest.(check bool) "stale copy survives" true (Machine.l1_probe m ~node:1 ~va:4096);
  Alcotest.(check int) "no invalidations" 0 (Stats.invalidations stats)

let prefetch_pulls_next_line () =
  let m = Machine.create { config with Config.prefetch_next_line = true } in
  let stats = Stats.create () in
  ignore (Machine.load m ~node:1 ~va:4096 ~bytes:8 ~time:0 ~stats);
  Alcotest.(check bool) "next line resident" true (Machine.l1_probe m ~node:1 ~va:4160);
  Alcotest.(check bool) "prefetch counted" true ((Stats.prefetches stats) >= 1)

let energy_totals () =
  let s = Stats.create () in
  Stats.add_hops s 100;
  Stats.add_ops s 10;
  let b = Energy.of_stats s in
  Alcotest.(check bool) "network dominates" true (b.Energy.network > b.Energy.compute);
  Alcotest.(check (float 1e-6)) "total is the sum"
    (b.Energy.network +. b.Energy.l1 +. b.Energy.l2 +. b.Energy.dram +. b.Energy.compute
    +. b.Energy.sync)
    (Energy.total b)

let config_modes () =
  List.iter
    (fun m ->
      match Config.memory_mode_of_string (Config.memory_mode_to_string m) with
      | Ok m' -> Alcotest.(check string) "roundtrip" (Config.memory_mode_to_string m)
                   (Config.memory_mode_to_string m')
      | Error e -> Alcotest.fail e)
    Config.all_memory_modes;
  Alcotest.(check int) "flits round up" 1 (Config.flits_of_bytes config 1);
  Alcotest.(check int) "line flits" (64 / config.Config.flit_bytes) (Config.flits_of_bytes config 64)

let tests =
  [
    ( "sim",
      [
        Alcotest.test_case "network latency grows with distance" `Quick network_latency_grows_with_distance;
        Alcotest.test_case "network local free" `Quick network_local_is_free;
        Alcotest.test_case "network flit hops" `Quick network_counts_flit_hops;
        Alcotest.test_case "network congestion" `Quick network_congestion;
        Alcotest.test_case "network distance factor" `Quick network_distance_factor;
        Alcotest.test_case "network reset restores factor" `Quick
          network_reset_restores_distance_factor;
        Alcotest.test_case "machine L1 reuse" `Quick machine_l1_hit_on_reuse;
        Alcotest.test_case "machine L2 fill" `Quick machine_l2_fill;
        Alcotest.test_case "machine miss slower" `Quick machine_miss_slower_than_hit;
        Alcotest.test_case "machine hot ranges" `Quick machine_hot_ranges;
        Alcotest.test_case "machine mc override" `Quick machine_mc_override;
        Alcotest.test_case "machine l1 boost" `Quick machine_l1_boost;
        Alcotest.test_case "engine chain" `Quick engine_runs_chain;
        Alcotest.test_case "engine rejects disorder" `Quick engine_rejects_disorder;
        Alcotest.test_case "engine group accounting" `Quick engine_group_accounting;
        Alcotest.test_case "engine parallelism" `Quick engine_parallelism_overlap;
        Alcotest.test_case "coherence invalidates" `Quick coherence_invalidates_remote_copy;
        Alcotest.test_case "coherence off" `Quick coherence_off_keeps_copies;
        Alcotest.test_case "prefetch next line" `Quick prefetch_pulls_next_line;
        Alcotest.test_case "energy totals" `Quick energy_totals;
        Alcotest.test_case "config modes" `Quick config_modes;
      ] );
  ]
