let suite_complete () =
  Alcotest.(check int) "twelve applications + two DNN chains" 14
    (List.length Ndp_workloads.Suite.names);
  Alcotest.(check (list string)) "paper order, DNN chains last"
    [ "barnes"; "cholesky"; "fft"; "fmm"; "lu"; "ocean"; "radiosity"; "radix"; "raytrace";
      "water"; "minimd"; "minixyce"; "resnet_block"; "mobilenet_block" ]
    Ndp_workloads.Suite.names

let kernels_build () =
  List.iter
    (fun k ->
      Alcotest.(check bool) "has nests" true (k.Ndp_core.Kernel.program.Ndp_ir.Loop.nests <> []);
      Alcotest.(check bool) "has statements" true (Ndp_core.Kernel.total_statements k > 0))
    (Ndp_workloads.Suite.all ())

let find_unknown () =
  Alcotest.check_raises "unknown app" Not_found (fun () ->
      ignore (Ndp_workloads.Suite.find "nonesuch"))

let index_arrays_cover_references () =
  (* Every indirect subscript's index array must have declared contents. *)
  List.iter
    (fun (k : Ndp_core.Kernel.t) ->
      let declared = List.map fst k.Ndp_core.Kernel.index_arrays in
      List.iter
        (fun nest ->
          List.iter
            (fun stmt ->
              List.iter
                (fun (r : Ndp_ir.Reference.t) ->
                  let rec check = function
                    | Ndp_ir.Subscript.Affine _ -> ()
                    | Ndp_ir.Subscript.Indirect { index_array; inner } ->
                      Alcotest.(check bool)
                        (Printf.sprintf "%s: %s declared" k.Ndp_core.Kernel.name index_array)
                        true (List.mem index_array declared);
                      check inner
                  in
                  check r.Ndp_ir.Reference.subscript)
                (Ndp_ir.Stmt.output stmt :: Ndp_ir.Stmt.inputs stmt))
            nest.Ndp_ir.Loop.body)
        k.Ndp_core.Kernel.program.Ndp_ir.Loop.nests)
    (Ndp_workloads.Suite.all ())

let arrays_declared () =
  (* Every referenced array appears in the layout. *)
  List.iter
    (fun (k : Ndp_core.Kernel.t) ->
      let declared =
        List.map (fun d -> d.Ndp_ir.Array_decl.name) k.Ndp_core.Kernel.program.Ndp_ir.Loop.arrays
      in
      List.iter
        (fun stmt ->
          List.iter
            (fun (r : Ndp_ir.Reference.t) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: array %s declared" k.Ndp_core.Kernel.name
                   r.Ndp_ir.Reference.array)
                true
                (List.mem r.Ndp_ir.Reference.array declared))
            (Ndp_ir.Stmt.output stmt :: Ndp_ir.Stmt.inputs stmt))
        (Ndp_ir.Loop.all_statements k.Ndp_core.Kernel.program))
    (Ndp_workloads.Suite.all ())

let hot_arrays_fit () =
  List.iter
    (fun k ->
      let ranges = Ndp_core.Kernel.hot_ranges k ~budget:(2 * 1024 * 1024) in
      let total = List.fold_left (fun acc (_, len) -> acc + len) 0 ranges in
      Alcotest.(check bool) "within budget" true (total <= 2 * 1024 * 1024))
    (Ndp_workloads.Suite.all ())

let analyzability_spread () =
  (* Cholesky is fully affine; Barnes has a large indirect fraction —
     the Table 1 contrast. *)
  let frac name =
    let k = Ndp_workloads.Suite.find name in
    let refs =
      List.concat_map
        (fun s -> Ndp_ir.Stmt.output s :: Ndp_ir.Stmt.inputs s)
        (Ndp_ir.Loop.all_statements k.Ndp_core.Kernel.program)
    in
    let ok = List.length (List.filter Ndp_ir.Reference.analyzable refs) in
    float_of_int ok /. float_of_int (List.length refs)
  in
  Alcotest.(check bool) "cholesky fully analyzable" true (frac "cholesky" = 1.0);
  Alcotest.(check bool) "barnes partially analyzable" true (frac "barnes" < 0.9)

let gen_deterministic () =
  let a = Ndp_workloads.Gen.uniform ~seed:5 ~n:100 ~range:1000 in
  let b = Ndp_workloads.Gen.uniform ~seed:5 ~n:100 ~range:1000 in
  Alcotest.(check (array int)) "same seed, same data" a b;
  Array.iter (fun v -> Alcotest.(check bool) "in range" true (v >= 0 && v < 1000)) a

let gen_clustered_local () =
  let idx = Ndp_workloads.Gen.clustered ~seed:3 ~n:200 ~range:10000 ~spread:50 in
  Array.iteri
    (fun i v ->
      let base = i * 10000 / 200 in
      let dist = min (abs (v - base)) (10000 - abs (v - base)) in
      Alcotest.(check bool) "near its base" true (dist <= 50))
    idx

let gen_permutation () =
  let p = Ndp_workloads.Gen.permutation ~seed:11 64 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is permutation" (Array.init 64 Fun.id) sorted

let tests =
  [
    ( "workloads",
      [
        Alcotest.test_case "suite complete" `Quick suite_complete;
        Alcotest.test_case "kernels build" `Quick kernels_build;
        Alcotest.test_case "find unknown" `Quick find_unknown;
        Alcotest.test_case "index arrays declared" `Quick index_arrays_cover_references;
        Alcotest.test_case "arrays declared" `Quick arrays_declared;
        Alcotest.test_case "hot arrays fit budget" `Quick hot_arrays_fit;
        Alcotest.test_case "analyzability spread" `Quick analyzability_spread;
        Alcotest.test_case "gen deterministic" `Quick gen_deterministic;
        Alcotest.test_case "gen clustered local" `Quick gen_clustered_local;
        Alcotest.test_case "gen permutation" `Quick gen_permutation;
      ] );
  ]
