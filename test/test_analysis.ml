(* The analysis subsystem: IR lint rules over deliberately broken kernels,
   the schedule validator over clean and tampered traces, and the bucketed
   dependence analysis against its naive oracle. *)

open Ndp_analysis
module Dep = Ndp_ir.Dependence
module Task = Ndp_sim.Task
module Window = Ndp_core.Window
module Pipeline = Ndp_core.Pipeline
module Spec = Ndp_workloads.Spec

let codes diags = List.map (fun (d : Diagnostic.t) -> d.Diagnostic.code) diags
let has_code c diags = List.mem c (codes diags)
let errors diags = List.filter Diagnostic.is_error diags

(* -------------------------------------------------------------------- *)
(* Lint rules, one broken kernel per rule.                               *)

let lint_oob_affine () =
  let k =
    Spec.kernel ~name:"bad-oob" ~description:"subscript walks past the extent"
      ~arrays:[ ("a", 8, 8); ("b", 64, 8) ]
      ~nests:[ Spec.nest "n" [ ("i", 0, 16) ] [ "a[i] = b[i]" ] ]
      ()
  in
  let diags = Lint.check_kernel k in
  Alcotest.(check bool) "E101 reported" true (has_code "E101" diags);
  Alcotest.(check int) "exactly one error" 1 (List.length (errors diags))

let lint_in_bounds_clean () =
  let k =
    Spec.kernel ~name:"ok" ~description:"in bounds"
      ~arrays:[ ("a", 16, 8); ("b", 16, 8) ]
      ~nests:[ Spec.nest "n" [ ("i", 0, 15) ] [ "a[i+1] = b[i] + a[i]" ] ]
      ()
  in
  Alcotest.(check (list string)) "no diagnostics" [] (codes (Lint.check_kernel k))

let lint_undeclared () =
  let k =
    Spec.kernel ~name:"bad-undecl" ~description:"reads an undeclared array"
      ~arrays:[ ("a", 16, 8) ]
      ~nests:[ Spec.nest "n" [ ("i", 0, 8) ] [ "a[i] = z[i]" ] ]
      ()
  in
  Alcotest.(check bool) "E102 reported" true (has_code "E102" (Lint.check_kernel k))

let lint_bad_index_values () =
  let k =
    Spec.kernel ~name:"bad-idx" ~description:"index array points past the target"
      ~arrays:[ ("x", 4, 8); ("y", 16, 8); ("idx", 2, 4) ]
      ~nests:[ Spec.nest "n" [ ("i", 0, 2) ] [ "x[idx[i]] = y[i]" ] ]
      ~index_arrays:[ ("idx", [| 0; 9 |]) ]
      ()
  in
  Alcotest.(check bool) "E103 reported" true (has_code "E103" (Lint.check_kernel k))

let lint_unbound_var () =
  let k =
    Spec.kernel ~name:"bad-var" ~description:"subscript variable never bound"
      ~arrays:[ ("a", 16, 8); ("b", 16, 8) ]
      ~nests:[ Spec.nest "n" [ ("i", 0, 8) ] [ "a[j] = b[i]" ] ]
      ()
  in
  Alcotest.(check bool) "E104 reported" true (has_code "E104" (Lint.check_kernel k))

let lint_dead_store () =
  let k =
    Spec.kernel ~name:"bad-dead" ~description:"array written, never read"
      ~arrays:[ ("a", 16, 8); ("b", 16, 8) ]
      ~nests:[ Spec.nest "n" [ ("i", 0, 8) ] [ "a[i] = b[i]" ] ]
      ()
  in
  let diags = Lint.check_kernel k in
  Alcotest.(check bool) "W201 reported" true (has_code "W201" diags);
  Alcotest.(check int) "warning, not error" 0 (List.length (errors diags))

let lint_no_inspector () =
  let k =
    Spec.kernel ~name:"bad-noinsp" ~description:"indirect access without inspector data"
      ~arrays:[ ("x", 16, 8); ("y", 16, 8); ("idx", 8, 4) ]
      ~nests:[ Spec.nest "n" [ ("i", 0, 8) ] [ "x[idx[i]] = y[i] + x[i]" ] ]
      ()
  in
  let diags = Lint.check_kernel k in
  Alcotest.(check bool) "W202 reported" true (has_code "W202" diags);
  Alcotest.(check bool) "declared index array is not E102" false (has_code "E102" diags)

let lint_degenerate_loop () =
  let k =
    Spec.kernel ~name:"bad-empty" ~description:"loop never executes"
      ~arrays:[ ("a", 16, 8); ("b", 16, 8) ]
      ~nests:[ Spec.nest "n" [ ("i", 5, 5) ] [ "a[i] = b[i] + a[i]" ] ]
      ()
  in
  Alcotest.(check bool) "W203 reported" true (has_code "W203" (Lint.check_kernel k))

let lint_oversized_window () =
  let k =
    Spec.kernel ~name:"bad-window" ~description:"window exceeds the instance stream"
      ~arrays:[ ("a", 16, 8); ("b", 16, 8) ]
      ~nests:[ Spec.nest "n" [ ("i", 0, 8) ] [ "a[i] = b[i] + a[i]" ] ]
      ()
  in
  Alcotest.(check bool) "W204 reported" true (has_code "W204" (Lint.check_kernel ~window:1000 k));
  Alcotest.(check bool) "fitting window is silent" false
    (has_code "W204" (Lint.check_kernel ~window:4 k))

(* W4xx: the static cost model critiquing kernels it cannot price well. *)

let lint_footprint_exceeds_window () =
  (* a[i] has self-temporal reuse across j, but its 500-line footprint can
     never sit inside the 256-line L1 reuse window. *)
  let k =
    Spec.kernel ~name:"bad-footprint" ~description:"reuse footprint larger than the L1 window"
      ~arrays:[ ("a", 4000, 8); ("b", 4, 8) ]
      ~nests:[ Spec.nest "big" [ ("i", 0, 4000); ("j", 0, 2) ] [ "a[i] = a[i] + b[j]" ] ]
      ()
  in
  let diags = Lint.check_kernel k in
  Alcotest.(check bool) "W401 reported" true (has_code "W401" diags);
  Alcotest.(check int) "warning, not error" 0 (List.length (errors diags))

let lint_non_affine_defeats_static () =
  (* Inspector coverage silences W202 but cannot make the reference
     statically analyzable: W402 still fires. *)
  let k =
    Spec.kernel ~name:"bad-static" ~description:"indirect access with inspector data"
      ~arrays:[ ("x", 16, 8); ("y", 16, 8); ("idx", 8, 4) ]
      ~nests:[ Spec.nest "n" [ ("i", 0, 8) ] [ "x[idx[i]] = y[i] + x[i]" ] ]
      ~index_arrays:[ ("idx", Array.init 8 (fun i -> i)) ]
      ()
  in
  let diags = Lint.check_kernel k in
  Alcotest.(check bool) "W402 reported" true (has_code "W402" diags);
  Alcotest.(check bool) "inspector coverage silences W202" false (has_code "W202" diags)

let lint_movement_domination () =
  (* One 12-operand statement against a single-operand one: the first
     carries essentially all of the nest's predicted movement. *)
  let wide =
    "s[i] = a0[i] + a1[i] + a2[i] + a3[i] + a4[i] + a5[i] + a6[i] + a7[i] + a8[i] + a9[i] + \
     aa[i] + ab[i]"
  in
  let arrays =
    [ ("s", 16, 8); ("t", 16, 8); ("c0", 16, 8) ]
    @ List.map
        (fun n -> (n, 16, 8))
        [ "a0"; "a1"; "a2"; "a3"; "a4"; "a5"; "a6"; "a7"; "a8"; "a9"; "aa"; "ab" ]
  in
  let k =
    Spec.kernel ~name:"bad-dominated" ~description:"one statement dominates predicted movement"
      ~arrays
      ~nests:[ Spec.nest "n" [ ("i", 0, 8) ] [ wide; "t[i] = c0[i]" ] ]
      ()
  in
  Alcotest.(check bool) "W403 reported" true (has_code "W403" (Lint.check_kernel k))

let lint_suite_error_free () =
  List.iter
    (fun k ->
      let diags = Lint.check_kernel k in
      Alcotest.(check int)
        (k.Ndp_core.Kernel.name ^ " lint errors")
        0
        (List.length (errors diags)))
    (Ndp_workloads.Suite.all ())

(* -------------------------------------------------------------------- *)
(* Schedule validator over hand-built traces: two statement instances
   with a flow dependence (S0 writes a[0], S1 reads it) compiled to one
   task each on different mesh nodes.                                    *)

let decls = Ndp_ir.Array_decl.layout [ ("a", 16, 8); ("b", 16, 8); ("c", 16, 8) ]

let resolver (r : Ndp_ir.Reference.t) env =
  match Ndp_ir.Subscript.eval_affine env r.Ndp_ir.Reference.subscript with
  | Some i ->
    Some (Ndp_ir.Array_decl.address (Ndp_ir.Array_decl.find decls r.Ndp_ir.Reference.array) i)
  | None -> None

let flow_trace ?(sync_arcs = []) ?(result_arc = false) ?(serialized = false) () =
  let env = Ndp_ir.Env.of_list [ ("i", 0) ] in
  let s0 = Ndp_ir.Parser.statement "a[i] = b[i]" in
  let s1 = Ndp_ir.Parser.statement "c[i] = a[i]" in
  let meta group stmt_idx stmt =
    { Window.group; default_node = group; inst = { Dep.stmt_idx; stmt; env } }
  in
  let operands = if result_arc then [ Task.Result { producer = 0; bytes = 8 } ] else [] in
  let t0 = Task.make ~id:0 ~group:0 ~node:0 ~ops:[] ~operands:[] ~label:"s0" () in
  let t1 = Task.make ~id:1 ~group:1 ~node:1 ~ops:[] ~operands ~label:"s1" () in
  {
    Validate.v_kernel = "synthetic";
    v_nest = "n";
    v_metas = [ meta 0 0 s0; meta 1 1 s1 ];
    v_tasks = [ t0; t1 ];
    v_sync_arcs = sync_arcs;
    v_roots = [ (0, 0); (1, 1) ];
    v_serialized = serialized;
  }

let validate_detects_missing_sync () =
  (* The compiler would have kept a sync arc 0 -> 1; with it removed the
     flow dependence is unordered and must surface as a definite race. *)
  let diags = Validate.check ~resolver (flow_trace ()) in
  Alcotest.(check bool) "E301 reported" true (has_code "E301" diags);
  let d = List.hd diags in
  Alcotest.(check bool) "names both instances" true
    (Astring.String.is_infix ~affix:"S0" d.Diagnostic.message
    && Astring.String.is_infix ~affix:"S1" d.Diagnostic.message);
  Alcotest.(check bool) "names both nodes" true
    (Astring.String.is_infix ~affix:"(node 0)" d.Diagnostic.message
    && Astring.String.is_infix ~affix:"(node 1)" d.Diagnostic.message)

let validate_accepts_sync_arc () =
  let diags = Validate.check ~resolver (flow_trace ~sync_arcs:[ (0, 1) ] ()) in
  Alcotest.(check (list string)) "sync arc orders the pair" [] (codes diags)

let validate_accepts_result_arc () =
  let diags = Validate.check ~resolver (flow_trace ~result_arc:true ()) in
  Alcotest.(check (list string)) "result operand orders the pair" [] (codes diags)

let validate_accepts_serialized () =
  let diags = Validate.check ~resolver (flow_trace ~serialized:true ()) in
  Alcotest.(check (list string)) "emission order is total" [] (codes diags)

let validate_detects_incomplete_trace () =
  let t = flow_trace ~sync_arcs:[ (0, 1) ] () in
  let diags = Validate.check ~resolver { t with Validate.v_roots = [ (0, 0) ] } in
  Alcotest.(check bool) "E302 reported" true (has_code "E302" diags)

(* End to end: a kernel with a cross-iteration flow chain compiles clean
   under both schemes, and tampering with the captured evidence (dropping
   every sync arc and result operand) is detected. *)

let chain_kernel () =
  Spec.kernel ~name:"chain" ~description:"cross-iteration flow chain"
    ~arrays:[ ("a", 4096, 8); ("b", 4096, 8) ]
    ~nests:[ Spec.nest "n" [ ("i", 0, 48) ] [ "a[8*i+8] = a[8*i] * b[i]" ] ]
    ()

let strip_ordering (t : Validate.trace) =
  let strip_task (task : Task.t) =
    {
      task with
      Task.operands =
        List.filter (function Task.Result _ -> false | Task.Load _ -> true) task.Task.operands;
    }
  in
  {
    t with
    Validate.v_sync_arcs = [];
    v_tasks = List.map strip_task t.Validate.v_tasks;
    v_serialized = false;
  }

let validate_pipeline_clean_and_tampered () =
  let kernel = chain_kernel () in
  let scheme =
    Pipeline.Partitioned { Pipeline.partitioned_defaults with Pipeline.window = Pipeline.Fixed 6 }
  in
  let result = Pipeline.run ~validate:true scheme kernel in
  Alcotest.(check bool) "traces captured" true (result.Pipeline.traces <> []);
  let diags = Validate.check_result ~kernel result in
  Alcotest.(check int) "clean schedule validates" 0 (List.length (errors diags));
  let resolver = Validate.ground_truth_resolver kernel in
  let tampered =
    List.concat_map
      (fun t ->
        Validate.check ~resolver
          (strip_ordering (Validate.of_pipeline_trace ~kernel:"chain" t)))
      result.Pipeline.traces
  in
  Alcotest.(check bool) "stripped ordering is detected" true (has_code "E301" tampered)

let validate_default_scheme_clean () =
  let diags = Validate.check_kernel Pipeline.Default (chain_kernel ()) in
  Alcotest.(check int) "no errors" 0 (List.length (errors diags))

(* -------------------------------------------------------------------- *)
(* Bucketed dependence analysis vs the naive oracle, and the index.      *)

let raytrace_stream limit =
  let kernel = Ndp_workloads.Suite.find "raytrace" in
  let prog = kernel.Ndp_core.Kernel.program in
  let nest = List.hd prog.Ndp_ir.Loop.nests in
  let insts =
    List.concat_map
      (fun env ->
        List.mapi (fun stmt_idx stmt -> { Dep.stmt_idx; stmt; env }) nest.Ndp_ir.Loop.body)
      (Ndp_ir.Loop.iterations nest)
  in
  let stream = List.filteri (fun i _ -> i < limit) insts in
  let resolver (r : Ndp_ir.Reference.t) env =
    match Ndp_ir.Subscript.eval_affine env r.Ndp_ir.Reference.subscript with
    | Some i ->
      Some
        (Ndp_ir.Array_decl.address
           (Ndp_ir.Array_decl.find prog.Ndp_ir.Loop.arrays r.Ndp_ir.Reference.array)
           i)
    | None -> None
  in
  (stream, resolver)

let dep_to_tuple (d : Dep.dep) = (d.Dep.src, d.Dep.dst, Dep.kind_to_string d.Dep.kind, d.Dep.may)

let analyze_matches_naive () =
  let stream, resolver = raytrace_stream 150 in
  let fast = List.map dep_to_tuple (Dep.analyze resolver stream) in
  let naive = List.map dep_to_tuple (Dep.analyze_naive resolver stream) in
  Alcotest.(check bool) "dependence stream is non-trivial" true (List.length naive > 0);
  Alcotest.(check (list (pair (pair int int) (pair string bool))))
    "bucketed analyze equals the naive oracle"
    (List.map (fun (a, b, c, d) -> ((a, b), (c, d))) naive)
    (List.map (fun (a, b, c, d) -> ((a, b), (c, d))) fast)

let index_matches_linear_scan () =
  let stream, resolver = raytrace_stream 80 in
  let deps = Dep.analyze resolver stream in
  let index = Dep.index_deps deps in
  let n = List.length stream in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      let expected = List.exists (fun (d : Dep.dep) -> d.Dep.src = src && d.Dep.dst = dst) deps in
      if expected <> Dep.serialized index ~src ~dst then
        Alcotest.failf "index disagrees with linear scan at (%d, %d)" src dst
    done
  done;
  match deps with
  | d :: _ ->
    Alcotest.(check bool) "must_serialize wrapper" true
      (Dep.must_serialize deps ~src:d.Dep.src ~dst:d.Dep.dst)
  | [] -> Alcotest.fail "expected at least one dependence"

(* -------------------------------------------------------------------- *)
(* Checker + diagnostics plumbing.                                       *)

let checker_flags_broken_kernel () =
  let k =
    Spec.kernel ~name:"bad-oob" ~description:"subscript walks past the extent"
      ~arrays:[ ("a", 8, 8); ("b", 64, 8) ]
      ~nests:[ Spec.nest "n" [ ("i", 0, 16) ] [ "a[i] = b[i] + a[i]" ] ]
      ()
  in
  let reports = Checker.check_kernel ~schemes:[] k in
  Alcotest.(check bool) "has_errors" true (Checker.has_errors reports);
  let rendered = Checker.render reports in
  Alcotest.(check bool) "human render names the rule" true
    (Astring.String.is_infix ~affix:"E101" rendered)

let diagnostic_renderers () =
  let d =
    Diagnostic.make ~code:"E101" ~severity:Diagnostic.Error
      ~loc:(Diagnostic.location "k" ~nest:"n" ~stmt:2 ~reference:{|a["i"]|})
      {|spans "too far"|}
  in
  Alcotest.(check string) "human"
    {|error[E101] k/n stmt 2 ref a["i"]: spans "too far"|}
    (Diagnostic.to_string d);
  Alcotest.(check string) "sexp"
    {|(diagnostic (code E101) (severity error) (kernel k) (nest n) (stmt 2) (ref "a[\"i\"]") (message "spans \"too far\""))|}
    (Diagnostic.to_sexp d);
  Alcotest.(check string) "json"
    {|{"code":"E101","severity":"error","kernel":"k","nest":"n","stmt":2,"ref":"a[\"i\"]","message":"spans \"too far\""}|}
    (Diagnostic.to_json d);
  Alcotest.(check string) "summary" "1 error(s), 0 warning(s), 0 info"
    (Diagnostic.summary [ d ])

let tests =
  [
    ( "analysis.lint",
      [
        Alcotest.test_case "E101 out-of-bounds affine subscript" `Quick lint_oob_affine;
        Alcotest.test_case "in-bounds kernel is clean" `Quick lint_in_bounds_clean;
        Alcotest.test_case "E102 undeclared array" `Quick lint_undeclared;
        Alcotest.test_case "E103 index values out of range" `Quick lint_bad_index_values;
        Alcotest.test_case "E104 unbound subscript variable" `Quick lint_unbound_var;
        Alcotest.test_case "W201 dead store" `Quick lint_dead_store;
        Alcotest.test_case "W202 no inspector coverage" `Quick lint_no_inspector;
        Alcotest.test_case "W203 degenerate loop" `Quick lint_degenerate_loop;
        Alcotest.test_case "W204 oversized window" `Quick lint_oversized_window;
        Alcotest.test_case "W401 footprint exceeds window" `Quick lint_footprint_exceeds_window;
        Alcotest.test_case "W402 non-affine defeats static analysis" `Quick
          lint_non_affine_defeats_static;
        Alcotest.test_case "W403 movement domination" `Quick lint_movement_domination;
        Alcotest.test_case "whole suite lints error-free" `Quick lint_suite_error_free;
      ] );
    ( "analysis.validate",
      [
        Alcotest.test_case "removed sync arc raises E301" `Quick validate_detects_missing_sync;
        Alcotest.test_case "sync arc orders the dependence" `Quick validate_accepts_sync_arc;
        Alcotest.test_case "result arc orders the dependence" `Quick validate_accepts_result_arc;
        Alcotest.test_case "serialized emission orders everything" `Quick
          validate_accepts_serialized;
        Alcotest.test_case "missing root raises E302" `Quick validate_detects_incomplete_trace;
        Alcotest.test_case "pipeline trace validates; tampering is caught" `Slow
          validate_pipeline_clean_and_tampered;
        Alcotest.test_case "default scheme validates" `Slow validate_default_scheme_clean;
      ] );
    ( "analysis.dependence",
      [
        Alcotest.test_case "bucketed analyze equals naive oracle" `Quick analyze_matches_naive;
        Alcotest.test_case "index equals linear scan" `Quick index_matches_linear_scan;
      ] );
    ( "analysis.checker",
      [
        Alcotest.test_case "broken kernel fails the check" `Quick checker_flags_broken_kernel;
        Alcotest.test_case "diagnostic renderers" `Quick diagnostic_renderers;
      ] );
  ]
