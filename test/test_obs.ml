(* Observability subsystem: registry semantics, sharded-merge determinism
   under the pool, trace ring behaviour, Chrome-JSON well-formedness, and
   the no-perturbation guarantee (observed runs byte-identical to
   unobserved ones). *)

module M = Ndp_obs.Metrics
module T = Ndp_obs.Trace
module L = Ndp_obs.Ledger
module TL = Ndp_obs.Timeline
module Sink = Ndp_obs.Sink
module P = Ndp_core.Pipeline
module Stats = Ndp_sim.Stats
module Pool = Ndp_prelude.Pool

let water () = Ndp_workloads.Suite.find "water"

(* {1 A minimal JSON reader}

   Enough of RFC 8259 to validate the tracer's output without a JSON
   dependency: objects, arrays, strings with the common escapes, numbers,
   literals. Raises [Failure] on malformed input. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = failwith (Printf.sprintf "json: %s at offset %d" msg !pos) in
    let peek () = if !pos < n then s.[!pos] else '\000' in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws () | _ -> ()
    in
    let expect c = if peek () = c then advance () else fail (Printf.sprintf "expected %c" c) in
    let literal word v =
      String.iter expect word;
      v
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | '\000' -> fail "unterminated string"
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (match peek () with
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
            (* keep validation simple: skip the four hex digits *)
            for _ = 1 to 4 do
              advance ();
              match peek () with
              | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
              | _ -> fail "bad \\u escape"
            done;
            Buffer.add_char b '?'
          | c -> Buffer.add_char b c);
          advance ();
          go ()
        | c ->
          Buffer.add_char b c;
          advance ();
          go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while num_char (peek ()) do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then (advance (); Obj [])
        else
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); members ((key, v) :: acc)
            | '}' -> advance (); Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
      | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then (advance (); Arr [])
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); elements (v :: acc)
            | ']' -> advance (); Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          elements []
      | '"' -> Str (parse_string ())
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | 'n' -> literal "null" Null
      | _ -> parse_number ()
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

  let str = function Some (Str s) -> s | _ -> failwith "json: expected string"

  let num = function Some (Num f) -> f | _ -> failwith "json: expected number"
end

(* {1 Registry} *)

let registry_instruments () =
  let reg = M.create () in
  let c = M.counter reg "a.count" in
  M.add c 5;
  M.incr c;
  Alcotest.(check int) "counter value" 6 (M.counter_value c);
  let v = M.vec reg "a.vec" ~size:3 ~label:(fun i -> Printf.sprintf "slot=%d" i) in
  M.vadd v 0 2;
  M.vadd v 2 7;
  M.vadd v 99 1 (* out of range: ignored *);
  Alcotest.(check int) "vec slot" 7 (M.vec_value v 2);
  let g = M.gauge reg "a.gauge" in
  M.set_gauge g 1.5;
  M.gauge_fn reg "a.derived" (fun () -> 42.0);
  let h = M.histogram reg "a.hist" in
  M.observe h 3.0;
  M.observe h 5.0;
  let names = List.map fst (M.to_alist reg) in
  Alcotest.(check (list string)) "exploded, name-sorted"
    [ "a.count"; "a.derived"; "a.gauge"; "a.hist"; "a.vec{slot=0}"; "a.vec{slot=2}" ]
    names;
  (match M.find reg "a.vec{slot=2}" with
  | Some (M.Counter_v 7) -> ()
  | _ -> Alcotest.fail "find on exploded vec slot");
  match M.find reg "a.hist" with
  | Some (M.Histogram_v h) ->
    Alcotest.(check int) "hist count" 2 h.count;
    Alcotest.(check (float 1e-9)) "hist sum" 8.0 h.sum
  | _ -> Alcotest.fail "find histogram"

let registry_same_name_same_handle () =
  let reg = M.create () in
  let a = M.counter reg "x" and b = M.counter reg "x" in
  M.add a 3;
  M.add b 4;
  Alcotest.(check int) "shared storage" 7 (M.counter_value a)

let disabled_inert () =
  Alcotest.(check bool) "disabled flag" false (M.enabled M.disabled);
  let c = M.counter M.disabled "dead.count" in
  let v = M.vec M.disabled "dead.vec" ~size:4 ~label:string_of_int in
  let h = M.histogram M.disabled "dead.hist" in
  M.add c 10;
  M.vadd v 1 10;
  M.observe h 10.0;
  M.set_gauge (M.gauge M.disabled "dead.gauge") 1.0;
  Alcotest.(check int) "dead counter stays zero" 0 (M.counter_value c);
  Alcotest.(check (list string)) "nothing registered" [] (List.map fst (M.to_alist M.disabled))

let merge_counters_commute () =
  let build bumps =
    let reg = M.create () in
    List.iter
      (fun (name, v) -> M.add (M.counter reg name) v)
      bumps;
    reg
  in
  let a = build [ ("x", 1); ("y", 2) ] in
  let b = build [ ("y", 40); ("z", 5) ] in
  let c = build [ ("x", 100) ] in
  let totals regs =
    List.filter_map
      (fun (name, s) -> match s with M.Counter_v v -> Some (name, v) | _ -> None)
      (M.to_alist (M.merge regs))
  in
  let expected = [ ("x", 101); ("y", 42); ("z", 5) ] in
  Alcotest.(check (list (pair string int))) "abc" expected (totals [ a; b; c ]);
  Alcotest.(check (list (pair string int))) "cba" expected (totals [ c; b; a ])

let sharded_pool_deterministic () =
  let items = List.init 100 (fun i -> i + 1) in
  let collect jobs =
    let sh = M.Sharded.create () in
    Pool.with_pool ~jobs (fun pool ->
        Pool.parallel_iter pool
          (fun i ->
            let reg = M.Sharded.local sh in
            M.add (M.counter reg "sum") i;
            M.vadd (M.vec reg "mod" ~size:8 ~label:(fun s -> Printf.sprintf "r=%d" s)) (i mod 8) 1)
          items);
    List.filter_map
      (fun (name, s) -> match s with M.Counter_v v -> Some (name, v) | _ -> None)
      (M.to_alist (M.Sharded.merged sh))
  in
  let serial = collect 1 in
  Alcotest.(check (list (pair string int))) "serial total"
    (List.init 8 (fun r ->
         (* items 1..100 mod 8: residues 1..4 appear 13 times, the rest 12 *)
         (Printf.sprintf "mod{r=%d}" r), if r >= 1 && r <= 4 then 13 else 12)
    @ [ ("sum", 5050) ])
    (List.sort compare serial);
  Alcotest.(check (list (pair string int))) "4 jobs == serial" serial (collect 4);
  Alcotest.(check (list (pair string int))) "7 jobs == serial" serial (collect 7)

(* {1 Tracer} *)

let ring_overflow () =
  let t = T.create ~capacity:4 () in
  for i = 0 to 9 do
    T.task t ~name:"t" ~node:0 ~start:i ~finish:(i + 1) ~id:i ~group:0
  done;
  Alcotest.(check int) "length" 4 (T.length t);
  Alcotest.(check int) "total" 10 (T.total t);
  Alcotest.(check int) "dropped" 6 (T.dropped t);
  Alcotest.(check (list int)) "newest survive" [ 6; 7; 8; 9 ]
    (List.map (fun (e : T.event) -> e.T.id) (T.events t))

let trace_chrome_well_formed () =
  let obs = Sink.create ~metrics:true ~trace:true () in
  let r = P.run ~obs (P.Partitioned P.partitioned_defaults) (water ()) in
  Alcotest.(check int) "nothing dropped" 0 (T.dropped obs.Sink.trace);
  let doc = Json.parse (T.to_chrome obs.Sink.trace) in
  let events =
    match Json.member "traceEvents" doc with
    | Some (Json.Arr es) -> es
    | _ -> Alcotest.fail "traceEvents array missing"
  in
  Alcotest.(check bool) "events present" true (events <> []);
  let last_ts = ref (-1.0) in
  let tasks = ref 0 in
  let max_task_end = ref 0.0 in
  List.iter
    (fun e ->
      let ts = Json.num (Json.member "ts" e) in
      Alcotest.(check bool) "ts monotone" true (ts >= !last_ts);
      last_ts := ts;
      match Json.str (Json.member "ph" e) with
      | "X" ->
        let dur = Json.num (Json.member "dur" e) in
        Alcotest.(check bool) "dur non-negative" true (dur >= 0.0);
        if Json.str (Json.member "cat" e) = "task" then begin
          incr tasks;
          if ts +. dur > !max_task_end then max_task_end := ts +. dur
        end
      | "i" -> Alcotest.(check string) "sync cat" "sync" (Json.str (Json.member "cat" e))
      | ph -> Alcotest.fail ("unexpected phase " ^ ph))
    events;
  (* The trace must reconcile with the aggregate stats: one complete event
     per executed task, ending at the simulated finish time. *)
  Alcotest.(check int) "task events == Stats.tasks" (Stats.tasks r.P.stats) !tasks;
  Alcotest.(check int) "last task ends at finish_time" (Stats.finish_time r.P.stats)
    (int_of_float !max_task_end)

let trace_jsonl_lines_parse () =
  let obs = Sink.create ~metrics:false ~trace:true () in
  ignore (P.run ~obs P.Default (water ()));
  let lines =
    String.split_on_char '\n' (T.to_jsonl obs.Sink.trace)
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "one line per event" (T.length obs.Sink.trace) (List.length lines);
  List.iter
    (fun line ->
      match Json.parse line with
      | Json.Obj _ -> ()
      | _ -> Alcotest.fail "jsonl line is not an object")
    lines

let metrics_json_parses () =
  let obs = Sink.create ~metrics:true ~trace:false () in
  ignore (P.run ~obs (P.Partitioned P.partitioned_defaults) (water ()));
  match Json.parse (Ndp_obs.Render.Json.to_string (M.to_json obs.Sink.metrics)) with
  | Json.Obj kvs ->
    Alcotest.(check bool) "per-link family present" true
      (List.exists (fun (k, _) -> Astring.String.is_prefix ~affix:"noc.link_flits{" k) kvs);
    Alcotest.(check bool) "sim aggregate present" true (List.mem_assoc "sim.tasks" kvs)
  | _ -> Alcotest.fail "metrics json is not an object"

(* {1 Percentiles} *)

let percentile_estimates () =
  (* 10 observations <= 10, 10 more <= 20: p50 lands at the first bucket's
     upper bound, p75 halfway through the second. *)
  let counts = [| 10; 10 |] and bounds = [| 10.0; 20.0 |] in
  Alcotest.(check (float 1e-9)) "p50" 10.0 (M.percentile ~counts ~bounds 0.5);
  Alcotest.(check (float 1e-9)) "p75" 15.0 (M.percentile ~counts ~bounds 0.75);
  Alcotest.(check (float 1e-9)) "p100" 20.0 (M.percentile ~counts ~bounds 1.0);
  Alcotest.(check (float 1e-9)) "empty histogram" 0.0 (M.percentile ~counts:[| 0; 0 |] ~bounds 0.5);
  (* Overflow-bucket mass clamps to the largest bound. *)
  Alcotest.(check (float 1e-9)) "overflow clamps" 20.0
    (M.percentile ~counts:[| 0; 0; 5 |] ~bounds 0.99)

(* {1 Movement ledger} *)

let link_flits_total reg =
  List.fold_left
    (fun acc (name, s) ->
      match s with
      | M.Counter_v v when Astring.String.is_prefix ~affix:"noc.link_flits{" name -> acc + v
      | _ -> acc)
    0 (M.to_alist reg)

let profiled_sink () = Sink.create ~metrics:true ~trace:false ~ledger:true ()

(* The central invariant: the ledger charges [flits x links] per message
   while the NoC adds [flits] to each traversed link's counter, so their
   totals must agree exactly — for every workload, under both schemes. *)
let ledger_reconciles_suite () =
  List.iter
    (fun name ->
      let k = Ndp_workloads.Suite.find name in
      List.iter
        (fun (scheme_name, scheme) ->
          let obs = profiled_sink () in
          ignore (P.run ~obs scheme k);
          Alcotest.(check int)
            (Printf.sprintf "%s/%s ledger == link flits" name scheme_name)
            (link_flits_total obs.Sink.metrics)
            (L.total_flit_hops obs.Sink.ledger))
        [ ("default", P.Default); ("partitioned", P.Partitioned P.partitioned_defaults) ])
    Ndp_workloads.Suite.names

let ledger_attributes_and_predicts () =
  let obs = profiled_sink () in
  ignore (P.run ~obs (P.Partitioned P.partitioned_defaults) (water ()));
  let ledger = obs.Sink.ledger in
  let rows = L.rows ledger in
  Alcotest.(check bool) "rows present" true (rows <> []);
  (* Resolvers are registered, so real traffic lands on real provenance:
     named nests and arrays, not the "(other)" fallback. *)
  let attributed = List.filter (fun (r : L.row) -> r.L.nest <> "(other)") rows in
  Alcotest.(check bool) "most traffic attributed to statements" true
    (List.length attributed > List.length rows / 2);
  Alcotest.(check bool) "some array-resolved traffic" true
    (List.exists (fun (r : L.row) -> r.L.array_name <> "(other)" && r.L.array_name <> "(result)") rows);
  (* The compiler recorded its Kruskal/window estimates. *)
  Alcotest.(check bool) "predicted cost recorded" true (L.total_predicted ledger > 0);
  let stmts = L.statements ledger in
  Alcotest.(check bool) "statement aggregation present" true (stmts <> []);
  let sum_stmt = List.fold_left (fun acc (s : L.stmt_total) -> acc + s.L.s_flit_hops) 0 stmts in
  Alcotest.(check int) "statement totals partition row totals" (L.total_flit_hops ledger) sum_stmt

let ledger_output_deterministic_across_jobs () =
  let render jobs =
    let run obs pool = ignore (P.run ?pool ~obs (P.Partitioned P.partitioned_defaults) (water ())) in
    let obs = profiled_sink () in
    (match jobs with
    | 1 -> run obs None
    | j -> Pool.with_pool ~jobs:j (fun pool -> run obs (Some pool)));
    Ndp_obs.Render.Json.to_string (L.to_json obs.Sink.ledger)
  in
  let serial = render 1 in
  Alcotest.(check string) "jobs=4 byte-identical" serial (render 4);
  Alcotest.(check string) "jobs=7 byte-identical" serial (render 7)

(* {1 Timeline} *)

let timeline_samples_run () =
  let interval = 500 in
  let obs = Sink.create ~metrics:true ~trace:false ~timeline_interval:interval () in
  let r = P.run ~obs (P.Partitioned P.partitioned_defaults) (water ()) in
  let series = TL.series obs.Sink.timeline in
  Alcotest.(check bool) "series registered" true (series <> []);
  let finish = Stats.finish_time r.P.stats in
  List.iter
    (fun (s : TL.series) ->
      Alcotest.(check bool) (s.TL.name ^ " sampled") true (s.TL.samples <> []);
      let rec monotone = function
        | (t1, v1) :: ((t2, v2) :: _ as rest) ->
          t1 <= t2 && v1 <= v2 (* counters never decrease *) && monotone rest
        | _ -> true
      in
      Alcotest.(check bool) (s.TL.name ^ " monotone") true (monotone s.TL.samples);
      List.iter
        (fun (ts, _) ->
          if ts <> finish then
            Alcotest.(check int) (s.TL.name ^ " on-boundary sample") 0 (ts mod interval))
        s.TL.samples;
      (* The flush pinned the series' end to the run's last cycle. *)
      let last_ts = List.fold_left (fun _ (ts, _) -> ts) 0 s.TL.samples in
      Alcotest.(check int) (s.TL.name ^ " ends at finish") finish last_ts)
    series;
  (* The final flit-hop sample agrees with the aggregate counter. *)
  let hops_series = List.find (fun (s : TL.series) -> s.TL.name = "noc.flit_hops") series in
  let _, last_v = List.nth hops_series.TL.samples (List.length hops_series.TL.samples - 1) in
  Alcotest.(check int) "final sample == stats hops" (Stats.hops r.P.stats) last_v

let timeline_merge_sums () =
  let mk samples =
    let t = TL.create ~interval:10 () in
    let v = ref 0 in
    TL.register t "c" (fun () -> !v);
    List.iter
      (fun (ts, value) ->
        v := value;
        TL.tick t ~now:ts)
      samples;
    t
  in
  let a = mk [ (10, 1); (20, 2) ] in
  let b = mk [ (10, 5); (30, 9) ] in
  let merged = TL.merge [ a; b ] in
  match TL.series merged with
  | [ s ] ->
    Alcotest.(check (list (pair int int))) "step-summed union"
      [ (10, 6); (20, 7); (30, 11) ] s.TL.samples
  | ss -> Alcotest.fail (Printf.sprintf "expected 1 merged series, got %d" (List.length ss))

let timeline_bounded () =
  let t = TL.create ~capacity:3 ~interval:10 () in
  TL.register t "c" (fun () -> 1);
  for i = 1 to 10 do
    TL.tick t ~now:(i * 10)
  done;
  match TL.series t with
  | [ s ] ->
    Alcotest.(check int) "capacity respected" 3 (List.length s.TL.samples);
    Alcotest.(check int) "overflow counted as dropped" 7 s.TL.dropped
  | _ -> Alcotest.fail "expected one series"

(* {1 Observation must not perturb} *)

let observed_run_identical () =
  let bare = P.run (P.Partitioned P.partitioned_defaults) (water ()) in
  let obs = Sink.create ~metrics:true ~trace:true () in
  let seen = P.run ~obs (P.Partitioned P.partitioned_defaults) (water ()) in
  Alcotest.(check bool) "stats equal" true (Stats.equal bare.P.stats seen.P.stats);
  Alcotest.(check int) "exec_time equal" bare.P.exec_time seen.P.exec_time;
  Alcotest.(check (list (pair string int))) "windows equal" bare.P.windows_chosen
    seen.P.windows_chosen;
  (* The profiling layers (ledger + timeline) must be just as inert. *)
  let full =
    Sink.create ~metrics:true ~trace:true ~ledger:true ~timeline_interval:1000 ()
  in
  let profiled = P.run ~obs:full (P.Partitioned P.partitioned_defaults) (water ()) in
  Alcotest.(check bool) "stats equal under profiling" true
    (Stats.equal bare.P.stats profiled.P.stats);
  Alcotest.(check int) "exec_time equal under profiling" bare.P.exec_time profiled.P.exec_time

let observed_run_identical_under_pool () =
  let bare = P.run (P.Partitioned P.partitioned_defaults) (water ()) in
  Pool.with_pool ~jobs:4 (fun pool ->
      let obs = Sink.create ~metrics:true ~trace:true () in
      let seen = P.run ~pool ~obs (P.Partitioned P.partitioned_defaults) (water ()) in
      Alcotest.(check bool) "stats equal under jobs=4" true (Stats.equal bare.P.stats seen.P.stats);
      Alcotest.(check int) "exec_time equal under jobs=4" bare.P.exec_time seen.P.exec_time)

(* {1 Stats surface} *)

let stats_alist_shape () =
  let s = Stats.create () in
  Stats.incr_l1_hits s;
  Stats.add_hops s 9;
  let alist = Stats.to_alist s in
  Alcotest.(check int) "18 counters" 18 (List.length alist);
  Alcotest.(check (pair string int)) "l1_hits first" ("l1_hits", 1) (List.hd alist);
  Alcotest.(check int) "hops via alist" 9 (List.assoc "hops" alist)

let stats_pp_no_nan () =
  (* Regression: a run with zero messages used to render avg latency as
     "nan"; it must render as "-". *)
  let s = Stats.create () in
  Stats.incr_tasks s;
  let text = Format.asprintf "%a" Stats.pp s in
  Alcotest.(check bool) "no nan" false (Astring.String.is_infix ~affix:"nan" text);
  Alcotest.(check bool) "dash placeholder" true (Astring.String.is_infix ~affix:"-" text);
  Alcotest.(check (float 1e-9)) "avg_latency total" 0.0 (Stats.avg_latency s)

(* {1 Spans} *)

module Span = Ndp_obs.Span
module RJ = Ndp_obs.Render.Json

(* A deterministic test clock: 1 ms per reading. *)
let tick_clock () =
  let t = ref 0.0 in
  fun () ->
    t := !t +. 0.001;
    !t

let span_fields t =
  match RJ.member "spans" (Span.to_json ~wall:false t) with
  | Some (RJ.List items) ->
    List.map
      (fun item ->
        let int name = match RJ.member name item with Some (RJ.Int n) -> n | _ -> -999 in
        let str name = match RJ.member name item with Some (RJ.Str s) -> s | _ -> "?" in
        (str "name", int "id", int "parent", int "depth"))
      items
  | _ -> Alcotest.fail "span json has no spans list"

let span_nesting_and_attrs () =
  let t = Span.create ~clock:(tick_clock ()) () in
  Alcotest.(check bool) "enabled" true (Span.enabled t);
  let a = Span.enter t "a" in
  let b = Span.enter t "b" in
  Span.attr_int t b "n" 7;
  Span.attr_str t b "k" "v";
  Alcotest.(check int) "two open" 2 (Span.depth t);
  Span.exit t b;
  let c = Span.enter t "c" in
  Span.exit ~cycles:42 t c;
  Span.exit t a;
  Alcotest.(check int) "stack drained" 0 (Span.depth t);
  Alcotest.(check int) "three recorded" 3 (Span.count t);
  (* ids in enter order; parents/depths reflect the open stack *)
  Alcotest.(check (list (pair string (pair int (pair int int)))))
    "structure"
    [ ("a", (0, (-1, 0))); ("b", (1, (0, 1))); ("c", (2, (0, 1))) ]
    (List.map (fun (n, i, p, d) -> (n, (i, (p, d)))) (span_fields t));
  (* attrs and cycles survive into the JSON *)
  (match RJ.member "spans" (Span.to_json ~wall:false t) with
  | Some (RJ.List [ _; b_item; c_item ]) ->
    (match RJ.member "attrs" b_item with
    | Some attrs ->
      Alcotest.(check bool) "int attr" true (RJ.member "n" attrs = Some (RJ.Int 7));
      Alcotest.(check bool) "str attr" true (RJ.member "k" attrs = Some (RJ.Str "v"))
    | None -> Alcotest.fail "span b lost its attrs");
    Alcotest.(check bool) "cycles attr" true (RJ.member "cycles" c_item = Some (RJ.Int 42))
  | _ -> Alcotest.fail "expected three spans");
  (* summary aggregates by name, name-sorted *)
  let names = List.map fst (Span.summary t) in
  Alcotest.(check (list string)) "summary sorted" [ "a"; "b"; "c" ] names

let span_disabled_inert () =
  let t = Span.none in
  Alcotest.(check bool) "disabled" false (Span.enabled t);
  let sp = Span.enter t "dead" in
  Span.attr_int t sp "n" 1;
  Span.attr_str t sp "s" "x";
  Span.exit t sp;
  Alcotest.(check int) "nothing recorded" 0 (Span.count t);
  Alcotest.(check int) "nothing open" 0 (Span.depth t);
  Alcotest.(check bool) "empty json" true
    (RJ.member "count" (Span.to_json t) = Some (RJ.Int 0))

let span_exception_safe () =
  let t = Span.create ~clock:(tick_clock ()) () in
  (try Span.with_span t "boom" (fun () -> failwith "inner") with Failure _ -> ());
  Alcotest.(check int) "span closed by exception path" 0 (Span.depth t);
  Alcotest.(check int) "span still recorded" 1 (Span.count t)

(* Byte-identical span logs at any --jobs, two ways: the pipeline's own
   phase spans (collector stays on the calling domain), and explicit
   per-unit collectors merged in input order under [parallel_map]. *)
let span_deterministic_across_jobs () =
  List.iter
    (fun app ->
      let kernel = Ndp_workloads.Suite.find app in
      let pipeline jobs =
        Pool.with_pool ~jobs (fun pool ->
            let spans = Span.create ~clock:(fun () -> 0.0) () in
            let obs = { Sink.none with Sink.spans } in
            ignore
              (P.Job.run ~pool ~obs
                 (P.Job.make (P.Partitioned P.partitioned_defaults) kernel));
            RJ.to_string (Span.to_json ~wall:false spans))
      in
      let p1 = pipeline 1 in
      Alcotest.(check string) (app ^ " pipeline spans 4 jobs == serial") p1 (pipeline 4);
      Alcotest.(check string) (app ^ " pipeline spans 7 jobs == serial") p1 (pipeline 7);
      let merged jobs =
        Pool.with_pool ~jobs (fun pool ->
            let parts =
              Pool.parallel_map pool
                (fun i ->
                  let t = Span.create ~clock:(fun () -> 0.0) () in
                  Span.with_span t (Printf.sprintf "unit-%d" i) (fun () ->
                      Span.with_span ~cycles:i t "inner" (fun () -> ()));
                  t)
                [ 0; 1; 2; 3; 4; 5; 6; 7 ]
            in
            RJ.to_string (Span.to_json ~wall:false (Span.merge parts)))
      in
      let m1 = merged 1 in
      Alcotest.(check string) (app ^ " merged spans 4 jobs == serial") m1 (merged 4);
      Alcotest.(check string) (app ^ " merged spans 7 jobs == serial") m1 (merged 7))
    [ "water"; "fft" ]

let span_merge_rebases_ids () =
  let make names =
    let t = Span.create ~clock:(fun () -> 0.0) () in
    List.iter (fun n -> Span.with_span t n (fun () -> ())) names;
    t
  in
  let a = make [ "a1"; "a2" ] in
  let b = make [ "b1" ] in
  let m = Span.merge [ a; Span.none; b ] in
  Alcotest.(check int) "merged count" 3 (Span.count m);
  Alcotest.(check (list (pair string int)))
    "ids rebased in input order"
    [ ("a1", 0); ("a2", 1); ("b1", 2) ]
    (List.map (fun (n, i, _, _) -> (n, i)) (span_fields m))

let span_pipeline_phases () =
  let phases scheme kernel =
    let spans = Span.create ~clock:(fun () -> 0.0) () in
    let obs = { Sink.none with Sink.spans } in
    ignore (P.run ~obs scheme kernel);
    List.map fst (Span.summary spans)
  in
  Alcotest.(check (list string)) "partitioned phases"
    [ "deps"; "parse"; "schedule"; "simulate"; "window" ]
    (phases (P.Partitioned P.partitioned_defaults) (water ()));
  Alcotest.(check (list string)) "fused adds a fusion phase"
    [ "deps"; "fusion"; "parse"; "schedule"; "simulate"; "window" ]
    (phases
       (P.Partitioned { P.partitioned_defaults with P.fuse = true })
       (Ndp_workloads.Suite.find "resnet_block"));
  Alcotest.(check (list string)) "default scheme coarse phases"
    [ "parse"; "simulate" ]
    (phases P.Default (water ()))

let span_chrome_containment () =
  let t = Span.create ~clock:(tick_clock ()) () in
  Span.with_span t "outer" (fun () ->
      Span.with_span t "inner" (fun () -> ());
      Span.with_span t "inner" (fun () -> ()));
  let slices =
    List.map
      (fun e ->
        let num name = match RJ.member name e with Some (RJ.Float f) -> f | Some (RJ.Int n) -> float_of_int n | _ -> nan in
        let name = match RJ.member "name" e with Some (RJ.Str s) -> s | _ -> "?" in
        (name, num "ts", num "dur"))
      (Span.chrome_events t)
  in
  let outer = List.find (fun (n, _, _) -> n = "outer") slices in
  let _, ots, odur = outer in
  List.iter
    (fun (n, ts, dur) ->
      if n = "inner" then begin
        Alcotest.(check bool) "inner starts after outer" true (ts >= ots);
        Alcotest.(check bool) "inner ends before outer" true (ts +. dur <= ots +. odur)
      end)
    slices;
  Alcotest.(check int) "three slices" 3 (List.length slices)

(* {1 Prometheus exposition} *)

let prometheus_exposition_valid () =
  let reg = M.create () in
  M.add (M.counter reg "a.count") 3;
  let v = M.vec reg "noc.link" ~size:3 ~label:(fun i -> Printf.sprintf "%d->%d" i (i + 1)) in
  M.vadd v 0 2;
  M.vadd v 2 5;
  M.set_gauge (M.gauge reg "g.val") 1.5;
  let h = M.histogram ~buckets:[| 1.0; 2.0; 4.0 |] reg "h.lat" in
  List.iter (M.observe h) [ 0.5; 1.5; 3.0; 9.0 ];
  let text = M.to_prometheus reg in
  let lines = String.split_on_char '\n' text |> List.filter (fun l -> l <> "") in
  let series = List.filter (fun l -> not (Astring.String.is_prefix ~affix:"#" l)) lines in
  (* every sample line is "name{labels} value" with a numeric value *)
  List.iter
    (fun l ->
      match String.rindex_opt l ' ' with
      | None -> Alcotest.failf "sample line %S has no value" l
      | Some i -> (
        let value = String.sub l (i + 1) (String.length l - i - 1) in
        match float_of_string_opt value with
        | Some _ -> ()
        | None ->
          if not (List.mem value [ "NaN"; "+Inf"; "-Inf" ]) then
            Alcotest.failf "line %S has non-numeric value %S" l value))
    series;
  (* mangled names only, no duplicate series *)
  let keys =
    List.map
      (fun l -> match String.rindex_opt l ' ' with Some i -> String.sub l 0 i | None -> l)
    series
  in
  Alcotest.(check int) "no duplicate series" (List.length keys)
    (List.length (List.sort_uniq compare keys));
  List.iter
    (fun k ->
      if Astring.String.is_infix ~affix:"." k then
        Alcotest.failf "series %S kept an unmangled dot in its name" k)
    keys;
  (* one TYPE line per family *)
  let types = List.filter (fun l -> Astring.String.is_prefix ~affix:"# TYPE " l) lines in
  Alcotest.(check int) "one TYPE per family" 4 (List.length types);
  Alcotest.(check int) "TYPE lines distinct" 4 (List.length (List.sort_uniq compare types));
  (* histogram: cumulative buckets ending at +Inf, plus _sum/_count *)
  let bucket_values =
    List.filter_map
      (fun l ->
        if Astring.String.is_prefix ~affix:"h_lat_bucket{" l then
          String.rindex_opt l ' '
          |> Option.map (fun i -> float_of_string (String.sub l (i + 1) (String.length l - i - 1)))
        else None)
      series
  in
  Alcotest.(check int) "bucket series incl +Inf" 4 (List.length bucket_values);
  let rec monotone = function a :: (b :: _ as rest) -> a <= b && monotone rest | _ -> true in
  Alcotest.(check bool) "buckets cumulative" true (monotone bucket_values);
  Alcotest.(check bool) "+Inf bucket closes the family" true
    (List.exists (fun l -> Astring.String.is_prefix ~affix:"h_lat_bucket{le=\"+Inf\"} 4" l) series);
  Alcotest.(check bool) "count series" true (List.mem "h_lat_count 4" series);
  Alcotest.(check bool) "sum series" true
    (List.exists (fun l -> Astring.String.is_prefix ~affix:"h_lat_sum " l) series)

let prometheus_deterministic () =
  let build () =
    let reg = M.create () in
    M.add (M.counter reg "z.last") 1;
    M.add (M.counter reg "a.first") 2;
    M.observe (M.histogram reg "m.h") 3.0;
    reg
  in
  Alcotest.(check string) "same registry, same exposition" (M.to_prometheus (build ()))
    (M.to_prometheus (build ()))

(* {1 Bench diff} *)

module BD = Ndp_obs.Bench_diff

let bench_entry name ns = RJ.Obj [ ("name", RJ.Str name); ("ns", RJ.Float ns) ]

let bench_diff_report () =
  let old_doc =
    RJ.Obj
      [
        ("meta", RJ.Obj [ ("commit", RJ.Str "abc123"); ("jobs", RJ.Int 4) ]);
        ("tests", RJ.List [ bench_entry "a" 100.0; bench_entry "b" 200.0; bench_entry "gone" 5.0 ]);
      ]
  in
  let new_doc =
    RJ.Obj
      [ ("tests", RJ.List [ bench_entry "a" 105.0; bench_entry "b" 260.0; bench_entry "fresh" 1.0 ]) ]
  in
  match BD.compare_docs ~threshold:10.0 ~old_doc ~new_doc () with
  | Error m -> Alcotest.fail m
  | Ok r ->
    Alcotest.(check int) "two compared" 2 (List.length r.BD.r_deltas);
    Alcotest.(check (list string)) "only b regressed" [ "b" ]
      (List.map (fun (d : BD.delta) -> d.BD.d_name) (BD.regressions r));
    Alcotest.(check bool) "has regressions" true (BD.has_regressions r);
    Alcotest.(check (list string)) "only-old" [ "gone" ] r.BD.r_only_old;
    Alcotest.(check (list string)) "only-new" [ "fresh" ] r.BD.r_only_new;
    (* meta is surfaced but never gates *)
    Alcotest.(check (list (pair string string))) "old meta carried"
      [ ("commit", "abc123"); ("jobs", "4") ]
      r.BD.r_old_meta;
    Alcotest.(check (list (pair string string))) "missing meta tolerated" [] r.BD.r_new_meta;
    let d_b = List.find (fun (d : BD.delta) -> d.BD.d_name = "b") r.BD.r_deltas in
    Alcotest.(check (float 1e-9)) "pct math" 30.0 d_b.BD.d_pct;
    (* a looser threshold accepts the same snapshots *)
    (match BD.compare_docs ~threshold:35.0 ~old_doc ~new_doc () with
    | Ok loose -> Alcotest.(check bool) "loose threshold passes" false (BD.has_regressions loose)
    | Error m -> Alcotest.fail m);
    (* the report renders and the human text flags the regression *)
    Alcotest.(check bool) "render flags b" true
      (Astring.String.is_infix ~affix:"REGRESSED" (BD.render r))

let bench_diff_rejects_malformed () =
  let good = RJ.Obj [ ("tests", RJ.List [ bench_entry "a" 1.0 ]) ] in
  (match BD.compare_docs ~old_doc:(RJ.Obj []) ~new_doc:good () with
  | Error m -> Alcotest.(check bool) "names the old side" true (Astring.String.is_infix ~affix:"old" m)
  | Ok _ -> Alcotest.fail "missing tests array must be rejected");
  match BD.compare_strings ~old_text:"{ not json" ~new_text:"{\"tests\": []}" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unparseable snapshot must be rejected"

let tests =
  [
    ( "obs",
      [
        Alcotest.test_case "registry instruments" `Quick registry_instruments;
        Alcotest.test_case "same name same handle" `Quick registry_same_name_same_handle;
        Alcotest.test_case "disabled handles inert" `Quick disabled_inert;
        Alcotest.test_case "merge counters commute" `Quick merge_counters_commute;
        Alcotest.test_case "sharded pool deterministic" `Quick sharded_pool_deterministic;
        Alcotest.test_case "ring overflow" `Quick ring_overflow;
        Alcotest.test_case "chrome trace well-formed" `Quick trace_chrome_well_formed;
        Alcotest.test_case "jsonl lines parse" `Quick trace_jsonl_lines_parse;
        Alcotest.test_case "metrics json parses" `Quick metrics_json_parses;
        Alcotest.test_case "percentile estimates" `Quick percentile_estimates;
        Alcotest.test_case "ledger reconciles across suite" `Quick ledger_reconciles_suite;
        Alcotest.test_case "ledger attributes and predicts" `Quick ledger_attributes_and_predicts;
        Alcotest.test_case "ledger deterministic across jobs" `Quick
          ledger_output_deterministic_across_jobs;
        Alcotest.test_case "timeline samples a run" `Quick timeline_samples_run;
        Alcotest.test_case "timeline merge sums" `Quick timeline_merge_sums;
        Alcotest.test_case "timeline bounded" `Quick timeline_bounded;
        Alcotest.test_case "observed run identical" `Quick observed_run_identical;
        Alcotest.test_case "observed run identical under pool" `Quick observed_run_identical_under_pool;
        Alcotest.test_case "stats alist shape" `Quick stats_alist_shape;
        Alcotest.test_case "stats pp no nan" `Quick stats_pp_no_nan;
        Alcotest.test_case "span nesting and attrs" `Quick span_nesting_and_attrs;
        Alcotest.test_case "span disabled inert" `Quick span_disabled_inert;
        Alcotest.test_case "span exception safe" `Quick span_exception_safe;
        Alcotest.test_case "span deterministic across jobs" `Slow span_deterministic_across_jobs;
        Alcotest.test_case "span merge rebases ids" `Quick span_merge_rebases_ids;
        Alcotest.test_case "span pipeline phases" `Quick span_pipeline_phases;
        Alcotest.test_case "span chrome containment" `Quick span_chrome_containment;
        Alcotest.test_case "prometheus exposition valid" `Quick prometheus_exposition_valid;
        Alcotest.test_case "prometheus deterministic" `Quick prometheus_deterministic;
        Alcotest.test_case "bench diff report" `Quick bench_diff_report;
        Alcotest.test_case "bench diff rejects malformed" `Quick bench_diff_rejects_malformed;
      ] );
  ]
