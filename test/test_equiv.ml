(* Frozen seed digests: every observable output of all 14 workloads x
   both schemes x {plain, faulted, profiled} runs — the original 12
   captured before the flat-engine rewrite (PR 7), the DNN chain
   workloads on their introduction alongside the fusion pass.
   `bench/main.exe equiv` regenerates the table; any intentional
   behaviour change must update it explicitly. *)

module E = Ndp_experiments.Equiv
module P = Ndp_core.Pipeline

let expected =
  [
    ("barnes/default/plain", "36773bac4175bf27");
    ("barnes/default/faulted", "c8fd0103c0af88a");
    ("barnes/default/profiled", "1a5176d0c09a84ea");
    ("barnes/partitioned(adaptive)/plain", "26dd1532e7d3f9ea");
    ("barnes/partitioned(adaptive)/faulted", "21d4c7905dba9bf7");
    ("barnes/partitioned(adaptive)/profiled", "2e08fd84970abc56");
    ("cholesky/default/plain", "3d0330442379bf2d");
    ("cholesky/default/faulted", "2c3a9e438b1ca8b8");
    ("cholesky/default/profiled", "14861b8ed76385fe");
    ("cholesky/partitioned(adaptive)/plain", "3933285fd2b34ea1");
    ("cholesky/partitioned(adaptive)/faulted", "11394cf7e07baceb");
    ("cholesky/partitioned(adaptive)/profiled", "287128a604821181");
    ("fft/default/plain", "1d11019861a0b4ba");
    ("fft/default/faulted", "32e09d7ff5435870");
    ("fft/default/profiled", "157c4da9fe96911b");
    ("fft/partitioned(adaptive)/plain", "270e834825bb677a");
    ("fft/partitioned(adaptive)/faulted", "2db92d6c1ec55ef7");
    ("fft/partitioned(adaptive)/profiled", "934a92dad9ccf4d");
    ("fmm/default/plain", "224178efdcdca73d");
    ("fmm/default/faulted", "24cbf7b2c72b63be");
    ("fmm/default/profiled", "29c6c37300caac71");
    ("fmm/partitioned(adaptive)/plain", "1d44ae97926bb613");
    ("fmm/partitioned(adaptive)/faulted", "38644a9930ee0f49");
    ("fmm/partitioned(adaptive)/profiled", "20e3aa1df41d9d22");
    ("lu/default/plain", "3529a234422a225a");
    ("lu/default/faulted", "1d1995b16d190d34");
    ("lu/default/profiled", "3b4c5166519724cc");
    ("lu/partitioned(adaptive)/plain", "2514f19a0908f166");
    ("lu/partitioned(adaptive)/faulted", "177faff9c7773a3d");
    ("lu/partitioned(adaptive)/profiled", "2a5d72ac1190010b");
    ("ocean/default/plain", "1254c3e5f34d5b4");
    ("ocean/default/faulted", "1a3f94223d2879af");
    ("ocean/default/profiled", "2fa055b04729af67");
    ("ocean/partitioned(adaptive)/plain", "1bda0ff36c2ab483");
    ("ocean/partitioned(adaptive)/faulted", "f493efb166c2b78");
    ("ocean/partitioned(adaptive)/profiled", "2ce9cfd0272a851");
    ("radiosity/default/plain", "1927d4deb4d69748");
    ("radiosity/default/faulted", "368edff667249927");
    ("radiosity/default/profiled", "25fab618fbd4ba9f");
    ("radiosity/partitioned(adaptive)/plain", "1d06e7dbe67e7e75");
    ("radiosity/partitioned(adaptive)/faulted", "379ae7b151f07372");
    ("radiosity/partitioned(adaptive)/profiled", "10411d5b27ca5b82");
    ("radix/default/plain", "a782dd7a80264cc");
    ("radix/default/faulted", "2f972ea0de99db9b");
    ("radix/default/profiled", "e2b3702189bc7fb");
    ("radix/partitioned(adaptive)/plain", "3aff875b6e842689");
    ("radix/partitioned(adaptive)/faulted", "33730fa59b2178ab");
    ("radix/partitioned(adaptive)/profiled", "1079409a4cb7dec6");
    ("raytrace/default/plain", "13c68cd0995d449e");
    ("raytrace/default/faulted", "3bb612eb9df02105");
    ("raytrace/default/profiled", "0502d5e01249d51");
    ("raytrace/partitioned(adaptive)/plain", "3ec639a832f4a7b9");
    ("raytrace/partitioned(adaptive)/faulted", "22cf456948d9634e");
    ("raytrace/partitioned(adaptive)/profiled", "362b9096687791a5");
    ("water/default/plain", "1ff7151f49941637");
    ("water/default/faulted", "150642662e666985");
    ("water/default/profiled", "362210aea267afa5");
    ("water/partitioned(adaptive)/plain", "3d7963c00352df7d");
    ("water/partitioned(adaptive)/faulted", "1bb07fea284bfcad");
    ("water/partitioned(adaptive)/profiled", "1f0a0f701b16d3de");
    ("minimd/default/plain", "25c7e639f53f22ab");
    ("minimd/default/faulted", "2f483e3f8dd009d7");
    ("minimd/default/profiled", "3a9e13cc70109a22");
    ("minimd/partitioned(adaptive)/plain", "186573821391049");
    ("minimd/partitioned(adaptive)/faulted", "3aaa3ec102206033");
    ("minimd/partitioned(adaptive)/profiled", "2c09fb51c9236e7f");
    ("minixyce/default/plain", "1eaa75bde1c9e56c");
    ("minixyce/default/faulted", "3b8e597b90d011ae");
    ("minixyce/default/profiled", "338a9a23a1a592eb");
    ("minixyce/partitioned(adaptive)/plain", "1edb0530e1f85006");
    ("minixyce/partitioned(adaptive)/faulted", "36e161051c5a1cc");
    ("minixyce/partitioned(adaptive)/profiled", "35abd2fedcd119b0");
    ("resnet_block/default/plain", "3699321dfdb40334");
    ("resnet_block/default/faulted", "defc3d3f81bed96");
    ("resnet_block/default/profiled", "2a03febce1c60823");
    ("resnet_block/partitioned(adaptive)/plain", "1bf1e0c1e6f1ca3c");
    ("resnet_block/partitioned(adaptive)/faulted", "3d906a6df6894831");
    ("resnet_block/partitioned(adaptive)/profiled", "2efc6fc155f25719");
    ("mobilenet_block/default/plain", "98f28fd5abde6a6");
    ("mobilenet_block/default/faulted", "24aa729b5d8cb5b");
    ("mobilenet_block/default/profiled", "284a78c5f8c622a5");
    ("mobilenet_block/partitioned(adaptive)/plain", "bc22c694a3d8a6e");
    ("mobilenet_block/partitioned(adaptive)/faulted", "16bb27b286823011");
    ("mobilenet_block/partitioned(adaptive)/profiled", "1e5b4af69402f81f");
  ]

let combos = E.all_combos ()

let check_combo (name, scheme, mode) () =
  let key = E.combo_key name scheme mode in
  let want =
    match List.assoc_opt key expected with
    | Some d -> d
    | None -> Alcotest.failf "no frozen digest for %s" key
  in
  let got = E.run ~mode ~scheme (Ndp_workloads.Suite.find name) in
  Alcotest.(check string) key want got

let table_covers_all_combos () =
  Alcotest.(check int) "combo count" (List.length combos) (List.length expected);
  List.iter
    (fun (name, scheme, mode) ->
      let key = E.combo_key name scheme mode in
      Alcotest.(check bool) (key ^ " frozen") true (List.mem_assoc key expected))
    combos

let tests =
  [
    ( "equiv",
      Alcotest.test_case "table-covers-all-combos" `Quick table_covers_all_combos
      :: List.map
           (fun ((name, scheme, mode) as combo) ->
             Alcotest.test_case
               (E.combo_key name scheme mode)
               `Slow (check_combo combo))
           combos );
  ]
