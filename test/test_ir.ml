open Ndp_ir

let stmt = Alcotest.testable (Fmt.of_to_string Stmt.to_string) ( = )

let parse_simple () =
  let s = Parser.statement "a[i] = b[i] + c[i+1]" in
  Alcotest.(check string) "lhs" "a[i]" (Reference.to_string (Stmt.output s));
  Alcotest.(check (list string)) "inputs" [ "b[i]"; "c[i+1]" ]
    (List.map Reference.to_string (Stmt.inputs s))

let parse_precedence () =
  (* Multiplication binds tighter than addition. *)
  let e = Parser.expr "a[i] + b[i] * c[i]" in
  match e with
  | Expr.Binop (Op.Add, Expr.Ref _, Expr.Binop (Op.Mul, _, _)) -> ()
  | _ -> Alcotest.fail ("wrong tree: " ^ Expr.to_string e)

let parse_parentheses () =
  let e = Parser.expr "(a[i] + b[i]) * c[i]" in
  match e with
  | Expr.Binop (Op.Mul, Expr.Group _, Expr.Ref _) -> ()
  | _ -> Alcotest.fail ("wrong tree: " ^ Expr.to_string e)

let parse_affine_subscript () =
  let s = Parser.statement "a[2*i+j+3] = b[i]" in
  let sub = (Stmt.output s).Reference.subscript in
  Alcotest.(check (option int)) "evaluates" (Some 13)
    (Subscript.eval_affine (Env.of_list [ ("i", 4); ("j", 2) ]) sub)

let parse_negative_offset () =
  let s = Parser.statement "a[i-1] = b[i]" in
  Alcotest.(check (option int)) "i-1 at i=5" (Some 4)
    (Subscript.eval_affine (Env.of_list [ ("i", 5) ])
       (Stmt.output s).Reference.subscript)

let parse_indirect () =
  let s = Parser.statement "x[y[i]] = x[y[i]] + w[i]" in
  Alcotest.(check bool) "lhs not analyzable" false (Reference.analyzable (Stmt.output s));
  Alcotest.(check bool) "w analyzable" true
    (Reference.analyzable (List.nth (Stmt.inputs s) 1))

let parse_shift_ops () =
  let s = Parser.statement "d[i] = (k[i] >> s1[i]) & m[i]" in
  Alcotest.(check int) "two ops" 2 (Expr.op_count s.Stmt.rhs)

let parse_errors () =
  List.iter
    (fun src ->
      match Parser.statement src with
      | exception Parser.Parse_error _ -> ()
      | _ -> Alcotest.fail ("should not parse: " ^ src))
    [ "a[i] ="; "= b[i]"; "a[i] + b[i]"; "a[i] = b"; "a[i] = b[i] +"; "a[] = b[i]" ]

let roundtrip () =
  let src = "a[i] = b[i] + c[i] * (d[i] + e[i+1])" in
  let s = Parser.statement src in
  Alcotest.check stmt "parse(print(parse)) = parse" s (Parser.statement (Stmt.to_string s))

(* The paper's nested-set example (Section 4.2):
   x = a * (b + c) + d * (e + f + g)  =>  (a, (b, c), d, (e, f, g)). *)
let nested_sets_paper_example () =
  let s = Parser.statement "x[i] = a[i] * (b[i] + c[i]) + d[i] * (e[i] + f[i] + g[i])" in
  let ns = Nested_set.of_expr s.Stmt.rhs in
  Alcotest.(check string) "paper's nesting" "(a[i], (b[i], c[i]), d[i], (e[i], f[i], g[i]))"
    (Nested_set.to_string ns);
  Alcotest.(check int) "three sets" 3 (Nested_set.count_sets ns);
  Alcotest.(check int) "depth 2" 2 (Nested_set.depth ns)

let nested_sets_flat () =
  let s = Parser.statement "a[i] = b[i] + c[i] + d[i] + e[i]" in
  let ns = Nested_set.of_expr s.Stmt.rhs in
  Alcotest.(check int) "one flat set" 1 (Nested_set.count_sets ns);
  Alcotest.(check int) "four refs" 4 (List.length (Nested_set.all_refs ns));
  Alcotest.(check bool) "reassociable" true ns.Nested_set.reassociable

let nested_sets_subtraction_not_reassociable () =
  let s = Parser.statement "a[i] = b[i] - c[i] - d[i]" in
  let ns = Nested_set.of_expr s.Stmt.rhs in
  Alcotest.(check bool) "not reassociable" false ns.Nested_set.reassociable

let nested_sets_preserve_refs () =
  let s = Parser.statement "x[i] = a[i] * (b[i] + c[i]) + d[i] / e[i]" in
  let ns = Nested_set.of_expr s.Stmt.rhs in
  Alcotest.(check (list string)) "all refs kept"
    (List.map Reference.to_string (Expr.refs s.Stmt.rhs))
    (List.map Reference.to_string (List.sort compare (Nested_set.all_refs ns))
    |> List.sort compare)

let array_layout () =
  let decls = Array_decl.layout [ ("a", 100, 8); ("b", 10, 4) ] in
  let a = Array_decl.find decls "a" and b = Array_decl.find decls "b" in
  Alcotest.(check bool) "page aligned" true (a.Array_decl.base_va mod 4096 = 0);
  Alcotest.(check bool) "disjoint" true
    (b.Array_decl.base_va >= a.Array_decl.base_va + (100 * 8));
  Alcotest.(check int) "element address" (a.Array_decl.base_va + 24) (Array_decl.address a 3);
  Alcotest.(check int) "wraps" (Array_decl.address a 5) (Array_decl.address a 105)

let loop_iterations () =
  let n =
    Loop.nest "n"
      [ { Loop.var = "i"; lo = 0; hi = 2 }; { Loop.var = "j"; lo = 0; hi = 3 } ]
      [ Parser.statement "a[i] = b[j]" ]
  in
  let envs = Loop.iterations n in
  Alcotest.(check int) "6 iterations" 6 (List.length envs);
  Alcotest.(check (list (pair string int))) "lexicographic first" [ ("i", 0); ("j", 0) ]
    (Env.to_list (List.hd envs));
  Alcotest.(check (list (pair string int))) "lexicographic last" [ ("i", 1); ("j", 2) ]
    (Env.to_list (List.nth envs 5))

let loop_sweeps () =
  let n =
    Loop.nest ~sweeps:3 "n" [ { Loop.var = "i"; lo = 0; hi = 4 } ] [ Parser.statement "a[i] = b[i]" ]
  in
  Alcotest.(check int) "base trips" 4 (Loop.base_trip_count n);
  Alcotest.(check int) "total trips" 12 (Loop.trip_count n);
  Alcotest.(check int) "iteration list length" 12 (List.length (Loop.iterations n))

let resolver_of decls =
  fun (r : Reference.t) env ->
    match Subscript.eval_affine env r.Reference.subscript with
    | Some i -> Some (Array_decl.address (Array_decl.find decls r.Reference.array) i)
    | None -> None

let dependence_flow () =
  let decls = Array_decl.layout [ ("a", 64, 8); ("b", 64, 8) ] in
  let s1 = Parser.statement "a[i] = b[i]" and s2 = Parser.statement "b[i] = a[i]" in
  let env = Env.of_list [ ("i", 3) ] in
  let deps =
    Dependence.analyze (resolver_of decls)
      [
        { Dependence.stmt_idx = 0; stmt = s1; env };
        { Dependence.stmt_idx = 1; stmt = s2; env };
      ]
  in
  let kinds =
    List.sort compare (List.map (fun d -> Dependence.kind_to_string d.Dependence.kind) deps)
  in
  (* s1 writes a[3] read by s2 (flow); s1 reads b[3] written by s2 (anti). *)
  Alcotest.(check (list string)) "flow + anti" [ "anti"; "flow" ] kinds;
  Alcotest.(check bool) "none may" true (List.for_all (fun d -> not d.Dependence.may) deps)

let dependence_none_across_elements () =
  let decls = Array_decl.layout [ ("a", 64, 8); ("b", 64, 8) ] in
  let s = Parser.statement "a[i] = b[i]" in
  let deps =
    Dependence.analyze (resolver_of decls)
      [
        { Dependence.stmt_idx = 0; stmt = s; env = Env.of_list [ ("i", 1) ] };
        { Dependence.stmt_idx = 0; stmt = s; env = Env.of_list [ ("i", 2) ] };
      ]
  in
  Alcotest.(check int) "no deps" 0 (List.length deps)

let dependence_may_on_indirect () =
  let decls = Array_decl.layout [ ("x", 64, 8); ("y", 64, 4); ("w", 64, 8) ] in
  let s1 = Parser.statement "x[i] = w[i]" and s2 = Parser.statement "w[i] = x[y[i]]" in
  let env = Env.of_list [ ("i", 0) ] in
  let deps =
    Dependence.analyze (resolver_of decls)
      [
        { Dependence.stmt_idx = 0; stmt = s1; env };
        { Dependence.stmt_idx = 1; stmt = s2; env = Env.of_list [ ("i", 1) ] };
      ]
  in
  Alcotest.(check bool) "has a may dep" true (List.exists (fun d -> d.Dependence.may) deps)

let inspector_resolution () =
  let decls = Array_decl.layout [ ("x", 64, 8); ("y", 8, 4) ] in
  let insp = Inspector.create () in
  Inspector.declare_index_array insp "y" [| 5; 2; 7 |];
  let address_of name i = Array_decl.address (Array_decl.find decls name) i in
  let r = Reference.make "x" (Subscript.indirect "y" (Subscript.var "i")) in
  let env = Env.of_list [ ("i", 1) ] in
  let compiler = Inspector.compiler_resolver insp ~address_of in
  let runtime = Inspector.runtime_resolver insp ~address_of in
  Alcotest.(check (option int)) "compiler blind before inspection" None (compiler r env);
  Alcotest.(check (option int)) "runtime resolves" (Some (address_of "x" 2)) (runtime r env);
  Inspector.run insp;
  Alcotest.(check (option int)) "compiler resolves after inspection"
    (Some (address_of "x" 2)) (compiler r env)

let op_properties () =
  Alcotest.(check int) "div costs 10" 10 (Op.cost Op.Div);
  Alcotest.(check int) "add costs 1" 1 (Op.cost Op.Add);
  Alcotest.(check bool) "mul binds tighter than add" true (Op.priority Op.Mul > Op.priority Op.Add);
  Alcotest.(check bool) "shift binds looser than add" true (Op.priority Op.Shl < Op.priority Op.Add);
  List.iter
    (fun op ->
      let k = Op.kind op in
      ignore k)
    Op.all

let qcheck_parser_roundtrip =
  (* Generate random flat expressions over a fixed array alphabet and check
     print -> parse is the identity. *)
  let gen =
    QCheck.Gen.(
      let ref_ = oneofl [ "a[i]"; "b[i]"; "c[i+1]"; "d[2*i]"; "e[j]" ] in
      let op = oneofl [ "+"; "-"; "*"; "/" ] in
      let* n = 1 -- 6 in
      let* first = ref_ in
      let* rest = list_size (return n) (pair op ref_) in
      return (List.fold_left (fun acc (o, r) -> acc ^ " " ^ o ^ " " ^ r) first rest))
  in
  QCheck.Test.make ~name:"parser/printer roundtrip" ~count:200 (QCheck.make gen) (fun src ->
      let e = Parser.expr src in
      Parser.expr (Expr.to_string e) = e)

(* ---- Affine_range footprints / strides and reuse classification ---- *)

(* A subscript from source, without caring about the rest of the statement. *)
let sub_of src = (Stmt.output (Parser.statement (src ^ " = q[0]"))).Reference.subscript

let bounds_of l v = List.assoc_opt v l

let footprint_unit_stride () =
  (* a[i], i in [0,100), 8 words/line: elements 0..99 live in lines 0..12. *)
  Alcotest.(check (option int)) "13 lines" (Some 13)
    (Affine_range.footprint_lines ~line_words:8 ~bounds:(bounds_of [ ("i", (0, 100)) ])
       (sub_of "a[i]"))

let footprint_line_stride () =
  (* Stride = line size: every iteration lands on a fresh line. *)
  Alcotest.(check (option int)) "100 lines" (Some 100)
    (Affine_range.footprint_lines ~line_words:8 ~bounds:(bounds_of [ ("i", (0, 100)) ])
       (sub_of "a[8*i]"))

let footprint_sub_line_stride () =
  (* a[2*i], i in [0,50): values 0,2,..,98 -> lines 0..12. *)
  Alcotest.(check (option int)) "13 lines" (Some 13)
    (Affine_range.footprint_lines ~line_words:8 ~bounds:(bounds_of [ ("i", (0, 50)) ])
       (sub_of "a[2*i]"))

let footprint_constant () =
  Alcotest.(check (option int)) "constant: 1 line" (Some 1)
    (Affine_range.footprint_lines ~line_words:8 ~bounds:(bounds_of [ ("i", (0, 10)) ])
       (sub_of "a[5]"))

let footprint_two_vars_exact () =
  (* a[16*i+j], i in [0,4), j in [0,16): covers 0..63 contiguously. *)
  Alcotest.(check (option int)) "8 lines" (Some 8)
    (Affine_range.footprint_lines ~line_words:8
       ~bounds:(bounds_of [ ("i", (0, 4)); ("j", (0, 16)) ])
       (sub_of "a[16*i+j]"))

let footprint_not_static () =
  let bounds = bounds_of [ ("i", (0, 10)) ] in
  Alcotest.(check (option int)) "unbound var" None
    (Affine_range.footprint_lines ~line_words:8 ~bounds (sub_of "a[k]"));
  Alcotest.(check (option int)) "indirect" None
    (Affine_range.footprint_lines ~line_words:8 ~bounds (sub_of "x[y[i]]"))

let stride_profile () =
  match
    Affine_range.strides ~bounds:(bounds_of [ ("i", (0, 4)); ("j", (0, 3)) ]) (sub_of "a[2*i+j]")
  with
  | Some [ si; sj ] ->
    Alcotest.(check string) "outer var" "i" si.Affine_range.s_var;
    Alcotest.(check int) "outer coeff" 2 si.Affine_range.s_coeff;
    Alcotest.(check int) "outer trip" 4 si.Affine_range.s_trip;
    Alcotest.(check string) "inner var" "j" sj.Affine_range.s_var;
    Alcotest.(check int) "inner coeff" 1 sj.Affine_range.s_coeff;
    Alcotest.(check int) "inner trip" 3 sj.Affine_range.s_trip
  | other ->
    Alcotest.failf "expected two strides, got %s"
      (match other with None -> "None" | Some l -> string_of_int (List.length l) ^ " strides")

let reuse_classes () =
  let words _ = 8 in
  let nest vars stmts = Loop.nest "n" vars (List.map Parser.statement stmts) in
  let i0_4 = { Loop.var = "i"; lo = 0; hi = 4 } and j0_4 = { Loop.var = "j"; lo = 0; hi = 4 } in
  (* j moves but is absent from b[i]: successive j iterations re-touch it. *)
  let n = nest [ i0_4; j0_4 ] [ "a[i+j] = b[i]" ] in
  Alcotest.(check string) "self-temporal" "self-temporal"
    (Reuse.to_string (Reuse.classify ~line_words:words n ~stmt_idx:0 (List.hd (Stmt.inputs (List.hd n.Loop.body)))));
  (* Unit stride under an 8-word line stays in-line. *)
  let n = nest [ i0_4 ] [ "a[i] = b[i]" ] in
  Alcotest.(check string) "self-spatial" "self-spatial"
    (Reuse.to_string (Reuse.classify ~line_words:words n ~stmt_idx:0 (Stmt.output (List.hd n.Loop.body))));
  (* Full-line stride: every iteration is a fresh line, nothing to reuse. *)
  let n = nest [ i0_4 ] [ "a[8*i] = b[8*i]" ] in
  Alcotest.(check string) "no reuse" "none"
    (Reuse.to_string (Reuse.classify ~line_words:words n ~stmt_idx:0 (Stmt.output (List.hd n.Loop.body))));
  (* b[8*i+1] rides the line statement 0's b[8*i] fetched. *)
  let n = nest [ i0_4 ] [ "x[8*i] = b[8*i]"; "y[8*i] = b[8*i+1]" ] in
  (match Reuse.classify ~line_words:words n ~stmt_idx:1 (List.hd (Stmt.inputs (List.nth n.Loop.body 1))) with
  | Reuse.Group { with_stmt; delta } ->
    Alcotest.(check int) "group leader stmt" 0 with_stmt;
    Alcotest.(check int) "group delta" 1 delta
  | other -> Alcotest.failf "expected group reuse, got %s" (Reuse.to_string other))

let tests =
  [
    ( "ir",
      [
        Alcotest.test_case "parse simple" `Quick parse_simple;
        Alcotest.test_case "parse precedence" `Quick parse_precedence;
        Alcotest.test_case "parse parentheses" `Quick parse_parentheses;
        Alcotest.test_case "parse affine subscript" `Quick parse_affine_subscript;
        Alcotest.test_case "parse negative offset" `Quick parse_negative_offset;
        Alcotest.test_case "parse indirect" `Quick parse_indirect;
        Alcotest.test_case "parse shift ops" `Quick parse_shift_ops;
        Alcotest.test_case "parse errors" `Quick parse_errors;
        Alcotest.test_case "roundtrip" `Quick roundtrip;
        Alcotest.test_case "nested sets paper example" `Quick nested_sets_paper_example;
        Alcotest.test_case "nested sets flat" `Quick nested_sets_flat;
        Alcotest.test_case "nested sets subtraction" `Quick nested_sets_subtraction_not_reassociable;
        Alcotest.test_case "nested sets preserve refs" `Quick nested_sets_preserve_refs;
        Alcotest.test_case "array layout" `Quick array_layout;
        Alcotest.test_case "loop iterations" `Quick loop_iterations;
        Alcotest.test_case "loop sweeps" `Quick loop_sweeps;
        Alcotest.test_case "dependence flow/anti" `Quick dependence_flow;
        Alcotest.test_case "dependence distinct elements" `Quick dependence_none_across_elements;
        Alcotest.test_case "dependence may on indirect" `Quick dependence_may_on_indirect;
        Alcotest.test_case "inspector resolution" `Quick inspector_resolution;
        Alcotest.test_case "op properties" `Quick op_properties;
        Alcotest.test_case "footprint: unit stride" `Quick footprint_unit_stride;
        Alcotest.test_case "footprint: line stride" `Quick footprint_line_stride;
        Alcotest.test_case "footprint: sub-line stride" `Quick footprint_sub_line_stride;
        Alcotest.test_case "footprint: constant" `Quick footprint_constant;
        Alcotest.test_case "footprint: two vars exact" `Quick footprint_two_vars_exact;
        Alcotest.test_case "footprint: not static" `Quick footprint_not_static;
        Alcotest.test_case "stride profile" `Quick stride_profile;
        Alcotest.test_case "reuse classes" `Quick reuse_classes;
        QCheck_alcotest.to_alcotest qcheck_parser_roundtrip;
      ] );
  ]
