module P = Ndp_core.Pipeline

let water () = Ndp_workloads.Suite.find "water"
let fft () = Ndp_workloads.Suite.find "fft"

let deterministic () =
  let a = P.run (P.Partitioned P.partitioned_defaults) (water ()) in
  let b = P.run (P.Partitioned P.partitioned_defaults) (water ()) in
  Alcotest.(check int) "same exec" a.P.exec_time b.P.exec_time;
  Alcotest.(check int) "same hops" (Ndp_sim.Stats.hops a.P.stats) (Ndp_sim.Stats.hops b.P.stats)

let partitioning_reduces_movement () =
  List.iter
    (fun name ->
      let k = Ndp_workloads.Suite.find name in
      let d = P.run P.Default k in
      let o = P.run (P.Partitioned P.partitioned_defaults) k in
      Alcotest.(check bool)
        (name ^ ": less data movement")
        true
        ((Ndp_sim.Stats.hops o.P.stats) < (Ndp_sim.Stats.hops d.P.stats)))
    [ "water"; "fft"; "minimd"; "barnes" ]

let partitioning_improves_l1 () =
  let d = P.run P.Default (water ()) in
  let o = P.run (P.Partitioned P.partitioned_defaults) (water ()) in
  Alcotest.(check bool) "higher L1 hit rate" true
    (Ndp_sim.Stats.l1_hit_rate o.P.stats > Ndp_sim.Stats.l1_hit_rate d.P.stats)

let partitioning_wins_on_wide_statements () =
  List.iter
    (fun name ->
      let k = Ndp_workloads.Suite.find name in
      let d = P.run P.Default k in
      let o = P.run (P.Partitioned P.partitioned_defaults) k in
      Alcotest.(check bool) (name ^ ": faster") true (o.P.exec_time < d.P.exec_time))
    [ "water"; "fft" ]

let default_has_no_syncs () =
  let d = P.run P.Default (water ()) in
  Alcotest.(check int) "no syncs" 0 d.P.sync_arcs;
  Alcotest.(check int) "one task per instance" d.P.num_instances d.P.tasks_emitted

let group_arrays_sized () =
  let o = P.run (P.Partitioned P.partitioned_defaults) (fft ()) in
  Alcotest.(check int) "hops per instance" o.P.num_instances (Array.length o.P.group_hops);
  Alcotest.(check int) "parallelism per instance" o.P.num_instances (Array.length o.P.parallelism);
  Alcotest.(check bool) "windows chosen for both nests" true
    (List.length o.P.windows_chosen = 2);
  List.iter
    (fun (_, w) -> Alcotest.(check bool) "window in range" true (w >= 1 && w <= 8))
    o.P.windows_chosen

let fixed_window_runs () =
  List.iter
    (fun w ->
      let o =
        P.run (P.Partitioned { P.partitioned_defaults with P.window = P.Fixed w }) (water ())
      in
      Alcotest.(check bool) (Printf.sprintf "w=%d sane" w) true (o.P.exec_time > 0))
    [ 1; 4; 8 ]

let ideal_data_at_least_as_good () =
  let k = Ndp_workloads.Suite.find "radiosity" in
  let o = P.run (P.Partitioned P.partitioned_defaults) k in
  let ideal = P.run (P.Partitioned { P.partitioned_defaults with P.ideal_data = true }) k in
  (* Perfect analysis and location knowledge should not lose much. *)
  Alcotest.(check bool) "ideal within 10% of real" true
    (float_of_int ideal.P.exec_time <= 1.1 *. float_of_int o.P.exec_time)

let ideal_network_faster () =
  let o = P.run (P.Partitioned P.partitioned_defaults) (water ()) in
  let inet =
    P.run ~tweaks:{ P.no_tweaks with P.distance_factor = 0.0 }
      (P.Partitioned P.partitioned_defaults) (water ())
  in
  Alcotest.(check bool) "zero-latency network strictly faster" true
    (inet.P.exec_time < o.P.exec_time)

let l1_boost_tweak () =
  let d = P.run P.Default (water ()) in
  let boosted = P.run ~tweaks:{ P.no_tweaks with P.l1_boost = 0.9 } P.Default (water ()) in
  Alcotest.(check bool) "boost raises hit rate" true
    (Ndp_sim.Stats.l1_hit_rate boosted.P.stats > Ndp_sim.Stats.l1_hit_rate d.P.stats)

let cost_scale_tweak () =
  let d = P.run P.Default (water ()) in
  let scaled = P.run ~tweaks:{ P.no_tweaks with P.cost_scale = 4.0 } P.Default (water ()) in
  Alcotest.(check bool) "cheaper compute is faster" true (scaled.P.exec_time < d.P.exec_time)

let extra_syncs_tweak () =
  let d = P.run P.Default (water ()) in
  let s = P.run ~tweaks:{ P.no_tweaks with P.extra_syncs = 3 } P.Default (water ()) in
  Alcotest.(check bool) "syncs slow default down" true (s.P.exec_time > d.P.exec_time)

let memory_modes_run () =
  List.iter
    (fun mem ->
      List.iter
        (fun cluster ->
          let config = Ndp_sim.Config.with_modes Ndp_sim.Config.default cluster mem in
          let o = P.run ~config (P.Partitioned P.partitioned_defaults) (fft ()) in
          Alcotest.(check bool) "positive exec" true (o.P.exec_time > 0))
        Ndp_noc.Cluster.all)
    Ndp_sim.Config.all_memory_modes

let scrambled_pages_hurt_compiler () =
  let k = fft () in
  let config =
    { Ndp_sim.Config.default with Ndp_sim.Config.page_policy = Ndp_mem.Page_alloc.Scrambled }
  in
  let colored = P.run (P.Partitioned P.partitioned_defaults) k in
  let scrambled = P.run ~config (P.Partitioned P.partitioned_defaults) k in
  (* Without the page-coloring OS support the compiler mispredicts homes
     and the schedule moves more data. *)
  Alcotest.(check bool) "coloring moves less data" true
    ((Ndp_sim.Stats.hops colored.P.stats) <= (Ndp_sim.Stats.hops scrambled.P.stats))

let profile_accesses () =
  let accesses = P.profile_page_accesses (water ()) in
  Alcotest.(check bool) "non-empty" true (accesses <> []);
  List.iter
    (fun (page, node) ->
      Alcotest.(check bool) "sane" true (page >= 0 && node >= 0 && node < 36))
    accesses

let predictor_measured () =
  let o = P.run (P.Partitioned P.partitioned_defaults) (water ()) in
  Alcotest.(check bool) "accuracy in (0,1]" true
    (o.P.predictor_accuracy > 0.0 && o.P.predictor_accuracy <= 1.0)

let offload_mix_nonempty () =
  let o = P.run (P.Partitioned P.partitioned_defaults) (water ()) in
  Alcotest.(check bool) "some ops offloaded" true
    (Ndp_sim.Task.mix_total o.P.offload_mix > 0)

(* Replay a captured task stream under the capture config: the simulation
   must be cycle-identical — replay skips compilation, nothing else. *)
let capture_replay_identical () =
  let fixed2 = P.Partitioned { P.partitioned_defaults with P.window = P.Fixed 2 } in
  let k = water () in
  let r = P.run ~capture:true fixed2 k in
  Alcotest.(check bool) "captured" true (r.P.emitted <> []);
  let rp = P.replay k r.P.emitted in
  Alcotest.(check int) "same exec" r.P.exec_time rp.P.rp_exec_time;
  List.iter2
    (fun (na, va) (nb, vb) ->
      Alcotest.(check string) "same sample" na nb;
      Alcotest.(check int) na va vb)
    (Ndp_sim.Stats.to_alist r.P.stats)
    (Ndp_sim.Stats.to_alist rp.P.rp_stats)

let replay_cost_model_shifts () =
  let k = water () in
  let r = P.run ~capture:true (P.Partitioned P.partitioned_defaults) k in
  let d = Ndp_sim.Config.default in
  let dear = { d with Ndp_sim.Config.op_cycles = 4 * d.Ndp_sim.Config.op_cycles } in
  let rp = P.replay ~config:dear k r.P.emitted in
  Alcotest.(check bool) "dearer compute is slower" true (rp.P.rp_exec_time > r.P.exec_time)

let batch_jobs () =
  [
    P.batch_job P.Default (water ());
    P.batch_job (P.Partitioned P.partitioned_defaults) (water ());
    P.batch_job (P.Partitioned { P.partitioned_defaults with P.window = P.Fixed 2 }) (fft ());
  ]

let check_same_result label (a : P.result) (b : P.result) =
  Alcotest.(check int) (label ^ ": exec") a.P.exec_time b.P.exec_time;
  List.iter2
    (fun (na, va) (nb, vb) ->
      Alcotest.(check string) (label ^ ": sample") na nb;
      Alcotest.(check int) (label ^ ": " ^ na) va vb)
    (Ndp_sim.Stats.to_alist a.P.stats)
    (Ndp_sim.Stats.to_alist b.P.stats)

(* A batch must equal the corresponding solo runs, serially and at any
   pool size — each job is an independent simulation. *)
let batch_matches_solo_and_parallel () =
  let solo =
    List.map
      (fun (j : P.batch_job) -> P.Job.run j)
      (batch_jobs ())
  in
  let serial = P.run_batch (batch_jobs ()) in
  let pooled =
    Ndp_prelude.Pool.with_pool ~jobs:4 (fun pool -> P.run_batch ~pool (batch_jobs ()))
  in
  List.iter2 (check_same_result "serial") solo serial;
  List.iter2 (check_same_result "pooled") solo pooled

(* The Metrics.Sharded discipline: counter totals merged across shards are
   the same whether the batch ran on one domain or several. *)
let batch_sharded_metrics_deterministic () =
  let counter_samples sh =
    List.filter_map
      (fun (name, s) ->
        match s with Ndp_obs.Metrics.Counter_v v -> Some (name, v) | _ -> None)
      (Ndp_obs.Metrics.to_alist (Ndp_obs.Metrics.Sharded.merged sh))
  in
  let sh_serial = Ndp_obs.Metrics.Sharded.create () in
  ignore (P.run_batch ~metrics:sh_serial (batch_jobs ()));
  let sh_pooled = Ndp_obs.Metrics.Sharded.create () in
  ignore
    (Ndp_prelude.Pool.with_pool ~jobs:4 (fun pool ->
         P.run_batch ~pool ~metrics:sh_pooled (batch_jobs ())));
  let a = counter_samples sh_serial and b = counter_samples sh_pooled in
  Alcotest.(check int) "same sample count" (List.length a) (List.length b);
  List.iter2
    (fun (na, va) (nb, vb) ->
      Alcotest.(check string) "same counter" na nb;
      Alcotest.(check int) na va vb)
    a b

let tests =
  [
    ( "pipeline",
      [
        Alcotest.test_case "deterministic" `Quick deterministic;
        Alcotest.test_case "reduces movement" `Slow partitioning_reduces_movement;
        Alcotest.test_case "improves L1" `Quick partitioning_improves_l1;
        Alcotest.test_case "wins on wide statements" `Quick partitioning_wins_on_wide_statements;
        Alcotest.test_case "default has no syncs" `Quick default_has_no_syncs;
        Alcotest.test_case "group arrays sized" `Quick group_arrays_sized;
        Alcotest.test_case "fixed windows run" `Slow fixed_window_runs;
        Alcotest.test_case "ideal data sane" `Quick ideal_data_at_least_as_good;
        Alcotest.test_case "ideal network faster" `Quick ideal_network_faster;
        Alcotest.test_case "l1 boost tweak" `Quick l1_boost_tweak;
        Alcotest.test_case "cost scale tweak" `Quick cost_scale_tweak;
        Alcotest.test_case "extra syncs tweak" `Quick extra_syncs_tweak;
        Alcotest.test_case "all mode combinations" `Slow memory_modes_run;
        Alcotest.test_case "scrambled pages hurt" `Quick scrambled_pages_hurt_compiler;
        Alcotest.test_case "profile accesses" `Quick profile_accesses;
        Alcotest.test_case "predictor measured" `Quick predictor_measured;
        Alcotest.test_case "offload mix" `Quick offload_mix_nonempty;
        Alcotest.test_case "capture/replay identical" `Quick capture_replay_identical;
        Alcotest.test_case "replay cost model" `Quick replay_cost_model_shifts;
        Alcotest.test_case "batch matches solo" `Slow batch_matches_solo_and_parallel;
        Alcotest.test_case "batch sharded metrics" `Slow batch_sharded_metrics_deterministic;
      ] );
  ]
