(* Command-line driver: compile one of the twelve application kernels under
   a placement scheme and simulate it on the KNL-like mesh.

     ndp_run list
     ndp_run run barnes --scheme partitioned --cluster quadrant --memory flat
     ndp_run compare water --window 4
     ndp_run stats ocean --format json
     ndp_run trace mg -o trace.json
     ndp_run codegen fft

   Every subcommand is an entry in the declarative [commands] table below:
   name, one-line summary, and a term built from the shared flag specs in
   [Args]. Help output is generated from the table. *)

open Cmdliner
module Render = Ndp_obs.Render
module Metrics = Ndp_obs.Metrics
module Trace = Ndp_obs.Trace
module Stats = Ndp_sim.Stats
module Pipeline = Ndp_core.Pipeline

(* ------------------------------------------------------------------ *)
(* Shared flag specs                                                   *)

module Args = struct
  let kernel_conv =
    let parse name =
      match Ndp_workloads.Suite.find name with
      | k -> Ok k
      | exception Not_found ->
        Error (`Msg (Printf.sprintf "unknown application %S (try `ndp_run list')" name))
    in
    Arg.conv (parse, fun ppf k -> Format.pp_print_string ppf k.Ndp_core.Kernel.name)

  let cluster_conv =
    let parse s = Result.map_error (fun m -> `Msg m) (Ndp_noc.Cluster.of_string s) in
    Arg.conv (parse, fun ppf c -> Format.pp_print_string ppf (Ndp_noc.Cluster.to_string c))

  let memory_conv =
    let parse s = Result.map_error (fun m -> `Msg m) (Ndp_sim.Config.memory_mode_of_string s) in
    Arg.conv
      (parse, fun ppf m -> Format.pp_print_string ppf (Ndp_sim.Config.memory_mode_to_string m))

  let kernel =
    Arg.(
      required & pos 0 (some kernel_conv) None & info [] ~docv:"APP" ~doc:"Application kernel name.")

  let kernel_opt =
    Arg.(
      value
      & pos 0 (some kernel_conv) None
      & info [] ~docv:"APP" ~doc:"Check one application only (default: the whole suite).")

  let cluster =
    Arg.(
      value
      & opt cluster_conv Ndp_noc.Cluster.Quadrant
      & info [ "cluster" ] ~doc:"Cluster mode: all-to-all, quadrant or snc-4.")

  let memory =
    Arg.(
      value
      & opt memory_conv Ndp_sim.Config.Flat
      & info [ "memory" ] ~doc:"Memory mode: flat, cache or hybrid.")

  let window_conv =
    let parse s =
      if String.lowercase_ascii s = "analytic" then Ok `Analytic
      else
        match int_of_string_opt s with
        | Some k -> Ok (`Fixed k)
        | None -> Error (`Msg (Printf.sprintf "expected a window size or \"analytic\", got %S" s))
    in
    Arg.conv
      ( parse,
        fun ppf -> function
          | `Analytic -> Format.pp_print_string ppf "analytic"
          | `Fixed k -> Format.pp_print_int ppf k )

  let window =
    Arg.(
      value
      & opt (some window_conv) None
      & info [ "window" ]
          ~doc:
            "Window size: a fixed integer, or $(b,analytic) to size each nest with the \
             closed-form static cost model instead of sampled compilation (default: adaptive \
             sampled sizing per nest).")

  let threshold =
    Arg.(
      value
      & opt float 4.0
      & info [ "threshold" ] ~docv:"R"
          ~doc:
            "Maximum tolerated total divergence ratio between the static cost model and the \
             measured ledger, as max(static,measured)/min(static,measured) ($(b,analyze) \
             only). The static model prices compiler-visible movement; runtime adds traffic \
             it cannot see (misses, syncs, inspector), so suite ratios sit between x1 and \
             x3.2. Exceeding the threshold exits nonzero.")

  let scheme =
    Arg.(
      value
      & opt (enum [ ("default", `Default); ("partitioned", `Partitioned) ]) `Partitioned
      & info [ "scheme" ] ~doc:"Computation placement: default or partitioned.")

  (* The one output-format vocabulary, shared by check/stats/trace/run. *)
  let format =
    Arg.(
      value
      & opt (enum Render.all_formats) Render.Human
      & info [ "format" ] ~doc:"Output format: human, sexp, json or jsonl.")

  let metrics =
    Arg.(
      value
      & flag
      & info [ "metrics" ]
          ~doc:"Collect the metrics registry during the run and dump it after the result.")

  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ]
          ~doc:
            "Number of domains for parallel work (window preprocessing; $(b,check)'s \
             validation cells). Default: \\$(b,NDP_JOBS) or the recommended domain count. \
             Output is identical at any job count.")

  let out_file =
    Arg.(
      value
      & opt string "trace.json"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file; \"-\" writes to stdout.")

  let selfcheck =
    Arg.(
      value
      & flag
      & info [ "selfcheck" ]
          ~doc:
            "Reconcile the trace against the aggregate statistics (task-event count, finish \
             time, timestamp monotonicity) and exit nonzero on mismatch.")

  let interval =
    Arg.(
      value
      & opt int 1000
      & info [ "interval" ] ~docv:"N"
          ~doc:
            "Timeline sampling interval in simulated cycles ($(b,profile) only). 0 disables \
             the timeline and keeps just the movement ledger.")

  let top =
    Arg.(
      value
      & opt int 10
      & info [ "top" ] ~docv:"K"
          ~doc:"Rows shown in the top-K movement-source table ($(b,profile) only).")

  let profile_out =
    Arg.(
      value
      & opt string ""
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:
            "Also write a Chrome/Perfetto trace — task events plus one counter track per \
             timeline series — to FILE; \"-\" writes it to stdout.")

  let faults =
    Arg.(
      value
      & opt string ""
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Comma-separated fault spec: $(b,kill=N) or $(b,kill=A>B) (kill N random links / \
             one specific link), $(b,slow=NxF) or $(b,slow=A>BxF) (degrade links by factor F), \
             $(b,stall=NODE\\@START+LEN) (node stall window), $(b,mc=NODExF) (backpressure the \
             MC nearest NODE). Empty spec injects nothing.")

  let fault_seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed"; "fault-seed" ] ~docv:"SEED"
          ~doc:
            "Seed for the plan's random choices (which links $(b,kill=N) removes). Default: the \
             simulator config's seed. A fixed seed gives byte-identical runs at any --jobs.")

  let repair =
    Arg.(
      value
      & flag
      & info [ "repair" ]
          ~doc:
            "Hand the fault plan to the compiler as well: partition over the surviving mesh \
             with degraded link weights and remap subcomputations off stalled/isolated nodes.")
end

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                      *)

let config_of cluster memory = Ndp_sim.Config.with_modes Ndp_sim.Config.default cluster memory

let scheme_of scheme window =
  match scheme with
  | `Default -> Pipeline.Default
  | `Partitioned ->
    let w =
      match window with
      | None -> Pipeline.Adaptive
      | Some `Analytic -> Pipeline.Analytic
      | Some (`Fixed k) -> Pipeline.Fixed k
    in
    Pipeline.Partitioned { Pipeline.partitioned_defaults with Pipeline.window = w }

let result_human (r : Pipeline.result) =
  let s = r.Pipeline.stats in
  let buf = Buffer.create 512 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "%s / %s\n" r.Pipeline.kernel_name r.Pipeline.scheme_name;
  pr "  execution time     %d cycles\n" r.Pipeline.exec_time;
  pr "  data movement      %d flit-hops over %d messages\n" (Stats.hops s) (Stats.messages s);
  pr "  network latency    avg %s, max %d cycles\n"
    (if Stats.messages s = 0 then "-" else Printf.sprintf "%.1f" (Stats.avg_latency s))
    (Stats.latency_max s);
  pr "  L1 hit rate        %.1f%%   L2 hit rate %.1f%%\n"
    (100.0 *. Stats.l1_hit_rate s)
    (100.0 *. Stats.l2_hit_rate s);
  pr "  tasks              %d (%d statement instances)\n" r.Pipeline.tasks_emitted
    r.Pipeline.num_instances;
  pr "  synchronizations   %d\n" r.Pipeline.sync_arcs;
  pr "  energy             %.0f pJ (%s)\n"
    (Ndp_sim.Energy.total r.Pipeline.energy)
    (Format.asprintf "%a" Ndp_sim.Energy.pp r.Pipeline.energy);
  (match r.Pipeline.windows_chosen with
  | [] -> ()
  | ws ->
    pr "  windows            %s\n"
      (String.concat ", " (List.map (fun (n, w) -> Printf.sprintf "%s=%d" n w) ws)));
  pr "  predictor accuracy %.1f%%" (100.0 *. r.Pipeline.predictor_accuracy);
  Buffer.contents buf

let result_json (r : Pipeline.result) =
  let s = r.Pipeline.stats in
  Render.Json.Obj
    [
      ("app", Render.Json.Str r.Pipeline.kernel_name);
      ("scheme", Render.Json.Str r.Pipeline.scheme_name);
      ("exec_time", Render.Json.Int r.Pipeline.exec_time);
      ("tasks", Render.Json.Int r.Pipeline.tasks_emitted);
      ("instances", Render.Json.Int r.Pipeline.num_instances);
      ("sync_arcs", Render.Json.Int r.Pipeline.sync_arcs);
      ("energy_pj", Render.Json.Float (Ndp_sim.Energy.total r.Pipeline.energy));
      ( "stats",
        Render.Json.Obj (List.map (fun (name, v) -> (name, Render.Json.Int v)) (Stats.to_alist s))
      );
      ( "windows",
        Render.Json.Obj
          (List.map (fun (n, w) -> (n, Render.Json.Int w)) r.Pipeline.windows_chosen) );
      ("predictor_accuracy", Render.Json.Float r.Pipeline.predictor_accuracy);
    ]

let metrics_json reg = Metrics.to_json reg

let metrics_human reg =
  let t = Ndp_prelude.Table.create ~header:[ "metric"; "value" ] in
  List.iter
    (fun (name, sample) ->
      let value =
        match sample with
        | Metrics.Counter_v v -> string_of_int v
        | Metrics.Gauge_v v -> Ndp_prelude.Table.cell_f v
        | Metrics.Histogram_v h ->
          let p q =
            Ndp_prelude.Table.cell_f (Metrics.percentile ~counts:h.counts ~bounds:h.bounds q)
          in
          Printf.sprintf "count=%d sum=%s p50=%s p95=%s p99=%s" h.count
            (Ndp_prelude.Table.cell_f h.sum) (p 0.5) (p 0.95) (p 0.99)
      in
      Ndp_prelude.Table.add_row t [ name; value ])
    (Metrics.to_alist reg);
  Ndp_prelude.Table.render t

(* ------------------------------------------------------------------ *)
(* run / compare                                                       *)

(* Run [f] with a pool of the requested size, or without one when --jobs
   is absent (Pipeline.run then stays serial). *)
let with_jobs jobs f =
  match jobs with
  | None -> f None
  | Some j -> Ndp_prelude.Pool.with_pool ~jobs:(max 1 j) (fun p -> f (Some p))

let pipeline_run ?config ?obs ?faults ?repair pool scheme kernel =
  match pool with
  | None -> Pipeline.run ?config ?obs ?faults ?repair scheme kernel
  | Some pool -> Pipeline.run ?config ?obs ?faults ?repair ~pool scheme kernel

let run_act kernel cluster memory scheme window metrics format jobs =
  with_jobs jobs @@ fun pool ->
  let obs =
    if metrics then Ndp_obs.Sink.create ~metrics:true ~trace:false () else Ndp_obs.Sink.none
  in
  let r = pipeline_run ~config:(config_of cluster memory) ~obs pool (scheme_of scheme window) kernel in
  let doc =
    if metrics then
      Render.Json.Obj
        [ ("result", result_json r); ("metrics", metrics_json obs.Ndp_obs.Sink.metrics) ]
    else result_json r
  in
  let human () =
    result_human r
    ^ if metrics then "\n\n" ^ metrics_human obs.Ndp_obs.Sink.metrics else ""
  in
  print_endline (Render.output format ~human doc)

let compare_act kernel cluster memory window metrics format jobs =
  with_jobs jobs @@ fun pool ->
  let config = config_of cluster memory in
  let obs () =
    if metrics then Ndp_obs.Sink.create ~metrics:true ~trace:false () else Ndp_obs.Sink.none
  in
  let obs_d = obs () and obs_o = obs () in
  let d = pipeline_run ~config ~obs:obs_d pool Pipeline.Default kernel in
  let o = pipeline_run ~config ~obs:obs_o pool (scheme_of `Partitioned window) kernel in
  let imp base opt = 100.0 *. float_of_int (base - opt) /. float_of_int (max 1 base) in
  let exec_imp = imp d.Pipeline.exec_time o.Pipeline.exec_time in
  let move_imp = imp (Stats.hops d.Pipeline.stats) (Stats.hops o.Pipeline.stats) in
  let with_metrics doc sink =
    if metrics then
      Render.Json.Obj [ ("result", doc); ("metrics", metrics_json sink.Ndp_obs.Sink.metrics) ]
    else doc
  in
  let doc =
    Render.Json.Obj
      [
        ("default", with_metrics (result_json d) obs_d);
        ("partitioned", with_metrics (result_json o) obs_o);
        ( "improvement",
          Render.Json.Obj
            [ ("exec_pct", Render.Json.Float exec_imp); ("movement_pct", Render.Json.Float move_imp) ]
        );
      ]
  in
  let human () =
    String.concat "\n"
      ([ result_human d ]
      @ (if metrics then [ ""; metrics_human obs_d.Ndp_obs.Sink.metrics ] else [])
      @ [ ""; result_human o ]
      @ (if metrics then [ ""; metrics_human obs_o.Ndp_obs.Sink.metrics ] else [])
      @ [ ""; Printf.sprintf "improvement: exec %.1f%%, movement %.1f%%" exec_imp move_imp ])
  in
  print_endline (Render.output format ~human doc)

(* ------------------------------------------------------------------ *)
(* stats: per-node / per-link breakdown                                *)

let lookup_int reg name =
  match Metrics.find reg name with Some (Metrics.Counter_v v) -> v | _ -> 0

let node_table reg n =
  let t =
    Ndp_prelude.Table.create
      ~header:[ "node"; "tasks"; "busy"; "l1_hits"; "l1_miss"; "l2_hits"; "l2_miss"; "mc_reqs" ]
  in
  for i = 0 to n - 1 do
    let g fam key = lookup_int reg (Printf.sprintf "%s{%s=%d}" fam key i) in
    Ndp_prelude.Table.add_row t
      [
        string_of_int i;
        string_of_int (g "core.tasks" "node");
        string_of_int (g "core.busy_cycles" "node");
        string_of_int (g "mem.l1_hits" "node");
        string_of_int (g "mem.l1_misses" "node");
        string_of_int (g "mem.l2_bank_hits" "bank");
        string_of_int (g "mem.l2_bank_misses" "bank");
        string_of_int (g "mem.mc_requests" "node");
      ]
  done;
  Ndp_prelude.Table.render t

let link_table reg =
  let t = Ndp_prelude.Table.create ~header:[ "link"; "flits"; "busy_cycles" ] in
  let prefix = "noc.link_flits{" in
  List.iter
    (fun (name, sample) ->
      match sample with
      | Metrics.Counter_v flits when Astring.String.is_prefix ~affix:prefix name ->
        let label = String.sub name (String.length prefix) (String.length name - String.length prefix - 1) in
        let busy = lookup_int reg (Printf.sprintf "noc.link_busy_cycles{%s}" label) in
        Ndp_prelude.Table.add_row t [ label; string_of_int flits; string_of_int busy ]
      | _ -> ())
    (Metrics.to_alist reg);
  Ndp_prelude.Table.render t

let stats_act kernel cluster memory scheme window format jobs =
  with_jobs jobs @@ fun pool ->
  let obs = Ndp_obs.Sink.create ~metrics:true ~trace:false () in
  let config = config_of cluster memory in
  let r = pipeline_run ~config ~obs pool (scheme_of scheme window) kernel in
  let reg = obs.Ndp_obs.Sink.metrics in
  let n = Ndp_noc.Mesh.size (Ndp_sim.Config.mesh config) in
  let doc =
    Render.Json.Obj [ ("result", result_json r); ("metrics", metrics_json reg) ]
  in
  let human () =
    String.concat "\n"
      [
        result_human r;
        "";
        "per-node:";
        node_table reg n;
        "per-link (nonzero):";
        link_table reg;
      ]
  in
  print_endline (Render.output format ~human doc)

(* ------------------------------------------------------------------ *)
(* inject: deterministic fault injection + schedule repair             *)

module Plan = Ndp_fault.Plan

let plan_json plan ~spec ~repair =
  let killed, degraded, stalled, mcs = Plan.counts plan in
  Render.Json.Obj
    [
      ("spec", Render.Json.Str spec);
      ("seed", Render.Json.Int (Plan.seed plan));
      ("retry_timeout", Render.Json.Int (Plan.retry_timeout plan));
      ("max_retries", Render.Json.Int (Plan.max_retries plan));
      ("links_killed", Render.Json.Int killed);
      ("links_degraded", Render.Json.Int degraded);
      ("nodes_stalled", Render.Json.Int stalled);
      ("mcs_slowed", Render.Json.Int mcs);
      ( "avoided_nodes",
        Render.Json.List (List.map (fun n -> Render.Json.Int n) (Plan.avoided_nodes plan)) );
      ("repair", Render.Json.Bool repair);
    ]

(* Invariants of a fault run, verified by re-execution:
   1. determinism — an identical second run (fresh plan from the same
      seed) produces identical stats and finish time;
   2. an empty plan is byte-identical to running without one;
   3. under --repair, nodes the plan avoids end the run with zero busy
      cycles (every subcomputation was remapped off them);
   4. a non-empty plan surfaces its fault.* instruments in the registry. *)
let inject_selfcheck ~config ~spec ~seed ~repair pool scheme kernel plan
    (r : Pipeline.result) reg =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let mesh = Ndp_sim.Config.mesh config in
  let rerun =
    let plan2 =
      match Plan.parse ~mesh ~seed spec with Ok p -> p | Error m -> failwith m
    in
    pipeline_run ~config ~faults:plan2 ~repair pool scheme kernel
  in
  if not (Stats.equal r.Pipeline.stats rerun.Pipeline.stats) then
    fail "re-run with the same seed changed the statistics";
  if r.Pipeline.exec_time <> rerun.Pipeline.exec_time then
    fail "re-run with the same seed changed the finish time (%d <> %d)" r.Pipeline.exec_time
      rerun.Pipeline.exec_time;
  if Plan.is_empty plan then begin
    let bare = pipeline_run ~config pool scheme kernel in
    if not (Stats.equal r.Pipeline.stats bare.Pipeline.stats) then
      fail "an empty fault plan changed the statistics vs a plain run"
  end
  else begin
    (match Metrics.find reg "fault.link_retries" with
    | Some _ -> ()
    | None -> fail "non-empty plan but fault.link_retries is not in the registry");
    if repair then
      List.iter
        (fun node ->
          if r.Pipeline.node_busy.(node) <> 0 then
            fail "repair left %d busy cycles on avoided node %d" r.Pipeline.node_busy.(node)
              node)
        (Plan.avoided_nodes plan)
  end;
  match !failures with
  | [] ->
    let killed, degraded, stalled, mcs = Plan.counts plan in
    Printf.printf
      "inject selfcheck: ok (killed=%d degraded=%d stalled=%d mcs=%d remapped=%d)\n" killed
      degraded stalled mcs r.Pipeline.remapped_tasks
  | fs ->
    List.iter (Printf.eprintf "inject selfcheck: %s\n") (List.rev fs);
    exit 1

let inject_act kernel cluster memory scheme window spec fault_seed repair format selfcheck jobs
    =
  with_jobs jobs @@ fun pool ->
  let config = config_of cluster memory in
  let mesh = Ndp_sim.Config.mesh config in
  let seed = Option.value fault_seed ~default:config.Ndp_sim.Config.seed in
  let plan =
    match Plan.parse ~mesh ~seed spec with
    | Ok plan -> plan
    | Error msg ->
      Printf.eprintf "ndp_run inject: bad --faults spec: %s\n" msg;
      exit 2
  in
  let obs = Ndp_obs.Sink.create ~metrics:true ~trace:false () in
  let scheme = scheme_of scheme window in
  let r = pipeline_run ~config ~obs ~faults:plan ~repair pool scheme kernel in
  let reg = obs.Ndp_obs.Sink.metrics in
  let doc =
    Render.Json.Obj
      [
        ("plan", plan_json plan ~spec ~repair);
        ("result", result_json r);
        ("remapped_tasks", Render.Json.Int r.Pipeline.remapped_tasks);
        ("metrics", metrics_json reg);
      ]
  in
  let human () =
    let fault_rows =
      List.filter_map
        (fun (name, sample) ->
          match sample with
          | Metrics.Counter_v v when Astring.String.is_prefix ~affix:"fault." name ->
            Some (Printf.sprintf "  %-24s %d" name v)
          | Metrics.Gauge_v v when Astring.String.is_prefix ~affix:"fault." name ->
            Some (Printf.sprintf "  %-24s %g" name v)
          | _ -> None)
        (Metrics.to_alist reg)
    in
    String.concat "\n"
      ([ "plan: " ^ Plan.describe plan; result_human r ]
      @ (if repair then
           [ Printf.sprintf "  remapped tasks     %d" r.Pipeline.remapped_tasks ]
         else [])
      @ if fault_rows = [] then [] else ("fault counters:" :: fault_rows))
  in
  print_endline (Render.output format ~human doc);
  if selfcheck then inject_selfcheck ~config ~spec ~seed ~repair pool scheme kernel plan r reg

(* ------------------------------------------------------------------ *)
(* trace: Chrome trace_event JSON                                      *)

let trace_selfcheck tracer (r : Pipeline.result) =
  let events = Trace.events tracer in
  let tasks = List.filter (fun e -> e.Trace.kind = Trace.Task) events in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let stats_tasks = Stats.tasks r.Pipeline.stats in
  (* A lossy trace cannot vouch for anything: dropped events mean the ring
     overwrote history, so the check fails rather than passing silently. *)
  if Trace.dropped tracer > 0 then
    fail "%d events dropped (ring capacity %d exceeded): the trace is not faithful"
      (Trace.dropped tracer) (Trace.length tracer);
  if Trace.dropped tracer = 0 && List.length tasks <> stats_tasks then
    fail "task events %d <> stats tasks %d" (List.length tasks) stats_tasks;
  let max_end = List.fold_left (fun acc e -> max acc e.Trace.end_ts) 0 tasks in
  let finish = Stats.finish_time r.Pipeline.stats in
  if tasks <> [] && max_end <> finish then
    fail "max task end %d <> finish time %d" max_end finish;
  let sorted = Trace.sorted_events tracer in
  let rec monotonic = function
    | a :: (b :: _ as rest) -> a.Trace.start_ts <= b.Trace.start_ts && monotonic rest
    | _ -> true
  in
  if not (monotonic sorted) then fail "rendered timestamps are not monotonic";
  List.iter
    (fun e ->
      if e.Trace.end_ts < e.Trace.start_ts then
        fail "event %s id %d ends before it starts" e.Trace.name e.Trace.id)
    events;
  match !failures with
  | [] ->
    Printf.printf "trace selfcheck: ok (%d events, %d tasks, %d dropped)\n"
      (Trace.length tracer) (List.length tasks) (Trace.dropped tracer)
  | fs ->
    List.iter (Printf.eprintf "trace selfcheck: %s\n") (List.rev fs);
    exit 1

let trace_act kernel cluster memory scheme window out format selfcheck jobs =
  with_jobs jobs @@ fun pool ->
  let obs = Ndp_obs.Sink.create ~metrics:true ~trace:true () in
  let r =
    pipeline_run ~config:(config_of cluster memory) ~obs pool (scheme_of scheme window) kernel
  in
  let tracer = obs.Ndp_obs.Sink.trace in
  let payload =
    match format with
    | Render.Jsonl -> Trace.to_jsonl tracer
    | Render.Sexp -> Render.json_to_sexp (Render.Json.Str "use --format json or jsonl")
    | Render.Human | Render.Json -> Trace.to_chrome tracer
  in
  (match out with
  | "-" -> print_string payload
  | file ->
    let oc = open_out file in
    output_string oc payload;
    close_out oc;
    Printf.printf "wrote %s (%d events, %d dropped)\n" file (Trace.length tracer)
      (Trace.dropped tracer));
  if selfcheck then trace_selfcheck tracer r

(* ------------------------------------------------------------------ *)
(* profile: movement attribution ledger + counter timeline             *)

module Ledger = Ndp_obs.Ledger
module Timeline = Ndp_obs.Timeline

(* The reconciliation target: what the NoC itself counted, summed over
   every link. The ledger charges [flits x links] per message, so the two
   totals must agree exactly. *)
let link_flits_total reg =
  let prefix = "noc.link_flits{" in
  List.fold_left
    (fun acc (name, sample) ->
      match sample with
      | Metrics.Counter_v flits when Astring.String.is_prefix ~affix:prefix name -> acc + flits
      | _ -> acc)
    0 (Metrics.to_alist reg)

let divergence_cell ~measured ~predicted =
  if predicted = 0 then "-"
  else Printf.sprintf "x%.2f" (float_of_int measured /. float_of_int predicted)

let profile_human (r : Pipeline.result) ledger timeline ~top ~link_flits =
  let buf = Buffer.create 2048 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  Buffer.add_string buf (result_human r);
  pr "\n\n";
  let stmts = Ledger.statements ledger in
  let stmt_ratio =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (s : Ledger.stmt_total) ->
        Hashtbl.replace tbl (s.Ledger.s_nest, s.Ledger.s_stmt)
          (divergence_cell ~measured:s.Ledger.s_flit_hops ~predicted:s.Ledger.s_predicted))
      stmts;
    fun nest stmt -> Option.value (Hashtbl.find_opt tbl (nest, stmt)) ~default:"-"
  in
  let rows = Ledger.rows ledger in
  let by_weight =
    List.stable_sort
      (fun (a : Ledger.row) (b : Ledger.row) -> compare b.Ledger.flit_hops a.Ledger.flit_hops)
      rows
  in
  let shown = List.filteri (fun i _ -> i < top) by_weight in
  let total = max 1 (Ledger.total_flit_hops ledger) in
  pr "top %d of %d movement sources (by flit-hops):\n" (List.length shown) (List.length rows);
  let t =
    Ndp_prelude.Table.create
      ~header:[ "nest"; "stmt"; "array"; "route"; "msgs"; "flits"; "flit-hops"; "share"; "divergence" ]
  in
  List.iter
    (fun (row : Ledger.row) ->
      Ndp_prelude.Table.add_row t
        [
          row.Ledger.nest;
          string_of_int row.Ledger.stmt;
          row.Ledger.array_name;
          Printf.sprintf "%d->%d" row.Ledger.src row.Ledger.dst;
          string_of_int row.Ledger.messages;
          string_of_int row.Ledger.flits;
          string_of_int row.Ledger.flit_hops;
          Printf.sprintf "%.1f%%" (100.0 *. float_of_int row.Ledger.flit_hops /. float_of_int total);
          stmt_ratio row.Ledger.nest row.Ledger.stmt;
        ])
    shown;
  Buffer.add_string buf (Ndp_prelude.Table.render t);
  pr "\npredicted vs measured movement per statement (flit-hops):\n";
  let t =
    Ndp_prelude.Table.create ~header:[ "nest"; "stmt"; "predicted"; "measured"; "divergence" ]
  in
  List.iter
    (fun (s : Ledger.stmt_total) ->
      Ndp_prelude.Table.add_row t
        [
          s.Ledger.s_nest;
          string_of_int s.Ledger.s_stmt;
          string_of_int s.Ledger.s_predicted;
          string_of_int s.Ledger.s_flit_hops;
          divergence_cell ~measured:s.Ledger.s_flit_hops ~predicted:s.Ledger.s_predicted;
        ])
    stmts;
  Ndp_prelude.Table.add_row t
    [
      "(total)";
      "";
      string_of_int (Ledger.total_predicted ledger);
      string_of_int (Ledger.total_flit_hops ledger);
      divergence_cell ~measured:(Ledger.total_flit_hops ledger)
        ~predicted:(Ledger.total_predicted ledger);
    ];
  Buffer.add_string buf (Ndp_prelude.Table.render t);
  let measured = Ledger.total_flit_hops ledger in
  pr "\nreconciliation: ledger %d flit-hops vs noc.link_flits %d -> %s\n" measured link_flits
    (if measured = link_flits then "ok" else "MISMATCH");
  (match Timeline.series timeline with
  | [] -> ()
  | series ->
    let samples = List.fold_left (fun acc s -> acc + List.length s.Timeline.samples) 0 series in
    let dropped = List.fold_left (fun acc s -> acc + s.Timeline.dropped) 0 series in
    pr "timeline: %d series, interval %d cycles, %d samples, %d dropped"
      (List.length series) (Timeline.interval timeline) samples dropped);
  Buffer.contents buf

let profile_act kernel cluster memory scheme window interval top out format jobs =
  with_jobs jobs @@ fun pool ->
  let want_trace = out <> "" in
  let obs =
    Ndp_obs.Sink.create ~metrics:true ~trace:want_trace ~ledger:true
      ~timeline_interval:(max 0 interval) ()
  in
  let r =
    pipeline_run ~config:(config_of cluster memory) ~obs pool (scheme_of scheme window) kernel
  in
  let ledger = obs.Ndp_obs.Sink.ledger in
  let timeline = obs.Ndp_obs.Sink.timeline in
  let reg = obs.Ndp_obs.Sink.metrics in
  let link_flits = link_flits_total reg in
  let measured = Ledger.total_flit_hops ledger in
  let reconciled = measured = link_flits in
  if want_trace then begin
    let payload =
      Trace.to_chrome ~counters:(Timeline.chrome_counter_events timeline) obs.Ndp_obs.Sink.trace
    in
    match out with
    | "-" -> print_string payload
    | file ->
      let oc = open_out file in
      output_string oc payload;
      close_out oc;
      Printf.printf "wrote %s (%d events + %d counter samples)\n" file
        (Trace.length obs.Ndp_obs.Sink.trace)
        (List.length (Timeline.chrome_counter_events timeline))
  end;
  let doc =
    Render.Json.Obj
      [
        ("result", result_json r);
        ("ledger", Ledger.to_json ledger);
        ("timeline", Timeline.to_json timeline);
        ( "reconciliation",
          Render.Json.Obj
            [
              ("ledger_flit_hops", Render.Json.Int measured);
              ("noc_link_flits", Render.Json.Int link_flits);
              ("reconciled", Render.Json.Bool reconciled);
            ] );
      ]
  in
  let human () = profile_human r ledger timeline ~top ~link_flits in
  print_endline (Render.output format ~human doc);
  if not reconciled then begin
    Printf.eprintf "ndp_run profile: ledger flit-hops %d do not reconcile with noc.link_flits %d\n"
      measured link_flits;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* analyze: static cost table reconciled against a measured run        *)

module Cost = Ndp_analysis.Cost

(* Symmetric divergence: how far apart two totals are, as a >=1 ratio.
   Equal zeroes agree perfectly; a zero against a nonzero is infinitely
   divergent (rendered as null in JSON, "-" in the table). *)
let divergence_ratio ~static ~measured =
  if static = 0 && measured = 0 then 1.0
  else if static = 0 || measured = 0 then infinity
  else
    let a = float_of_int static and b = float_of_int measured in
    if a > b then a /. b else b /. a

let ratio_cell r = if Float.is_finite r then Printf.sprintf "x%.2f" r else "-"

let analyze_human (r : Pipeline.result) (table : Cost.t) stmt_of ~threshold ~ratio ~within =
  let buf = Buffer.create 2048 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "%s / %s static cost model\n\n" r.Pipeline.kernel_name r.Pipeline.scheme_name;
  pr "footprints and reuse (lines = nest-wide footprint in cache lines):\n";
  let t = Ndp_prelude.Table.create ~header:[ "nest"; "stmt"; "ref"; "affine"; "lines"; "reuse" ] in
  List.iter
    (fun (row : Cost.stmt_row) ->
      List.iter
        (fun (rr : Cost.ref_row) ->
          Ndp_prelude.Table.add_row t
            [
              row.Cost.c_nest;
              string_of_int row.Cost.c_stmt;
              rr.Cost.r_text;
              (if rr.Cost.r_affine then "yes" else "no");
              (match rr.Cost.r_lines with Some n -> string_of_int n | None -> "-");
              Ndp_ir.Reuse.to_string rr.Cost.r_reuse;
            ])
        row.Cost.c_refs)
    table.Cost.rows;
  Buffer.add_string buf (Ndp_prelude.Table.render t);
  pr "\nstatic vs measured movement per statement (flit-hops):\n";
  let t =
    Ndp_prelude.Table.create
      ~header:[ "nest"; "stmt"; "instances"; "static"; "predicted"; "measured"; "divergence" ]
  in
  List.iter
    (fun (row : Cost.stmt_row) ->
      let predicted, measured = stmt_of row.Cost.c_nest row.Cost.c_stmt in
      Ndp_prelude.Table.add_row t
        [
          row.Cost.c_nest;
          string_of_int row.Cost.c_stmt;
          string_of_int row.Cost.c_instances;
          string_of_int row.Cost.c_flit_hops;
          string_of_int predicted;
          string_of_int measured;
          ratio_cell (divergence_ratio ~static:row.Cost.c_flit_hops ~measured);
        ])
    table.Cost.rows;
  let measured_total = List.fold_left (fun acc r -> acc + snd (stmt_of r.Cost.c_nest r.Cost.c_stmt)) 0 table.Cost.rows in
  let predicted_total = List.fold_left (fun acc r -> acc + fst (stmt_of r.Cost.c_nest r.Cost.c_stmt)) 0 table.Cost.rows in
  Ndp_prelude.Table.add_row t
    [
      "(total)";
      "";
      "";
      string_of_int table.Cost.total_flit_hops;
      string_of_int predicted_total;
      string_of_int measured_total;
      ratio_cell ratio;
    ];
  Buffer.add_string buf (Ndp_prelude.Table.render t);
  (match table.Cost.windows with
  | [] -> ()
  | ws ->
    pr "\nanalytic windows: %s\n"
      (String.concat ", " (List.map (fun (n, w) -> Printf.sprintf "%s=%d" n w) ws)));
  pr "\nreconciliation: static %d vs measured %d flit-hops -> %s (threshold x%.2f)"
    table.Cost.total_flit_hops measured_total
    (if within then ratio_cell ratio ^ ", ok" else ratio_cell ratio ^ ", DIVERGED")
    threshold;
  Buffer.contents buf

let analyze_act kernel cluster memory scheme window threshold format jobs =
  with_jobs jobs @@ fun pool ->
  let config = config_of cluster memory in
  let scheme_v = scheme_of scheme window in
  let table = Cost.table ~config ~scheme:scheme_v kernel in
  let obs = Ndp_obs.Sink.create ~metrics:false ~trace:false ~ledger:true () in
  let r = pipeline_run ~config ~obs pool scheme_v kernel in
  let ledger = obs.Ndp_obs.Sink.ledger in
  let stmt_of =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (s : Ledger.stmt_total) ->
        Hashtbl.replace tbl (s.Ledger.s_nest, s.Ledger.s_stmt)
          (s.Ledger.s_predicted, s.Ledger.s_flit_hops))
      (Ledger.statements ledger);
    fun nest stmt -> Option.value (Hashtbl.find_opt tbl (nest, stmt)) ~default:(0, 0)
  in
  let measured_total = Ledger.total_flit_hops ledger in
  let ratio = divergence_ratio ~static:table.Cost.total_flit_hops ~measured:measured_total in
  let within = ratio <= threshold in
  let stmt_json (row : Cost.stmt_row) =
    let predicted, measured = stmt_of row.Cost.c_nest row.Cost.c_stmt in
    Render.Json.Obj
      [
        ("nest", Render.Json.Str row.Cost.c_nest);
        ("stmt", Render.Json.Int row.Cost.c_stmt);
        ("text", Render.Json.Str row.Cost.c_text);
        ("instances", Render.Json.Int row.Cost.c_instances);
        ( "refs",
          Render.Json.List
            (List.map
               (fun (rr : Cost.ref_row) ->
                 Render.Json.Obj
                   [
                     ("ref", Render.Json.Str rr.Cost.r_text);
                     ("array", Render.Json.Str rr.Cost.r_array);
                     ("affine", Render.Json.Bool rr.Cost.r_affine);
                     ( "lines",
                       match rr.Cost.r_lines with
                       | Some n -> Render.Json.Int n
                       | None -> Render.Json.Null );
                     ("reuse", Render.Json.Str (Ndp_ir.Reuse.to_string rr.Cost.r_reuse));
                   ])
               row.Cost.c_refs) );
        ("static_links", Render.Json.Int row.Cost.c_links);
        ("static_flit_hops", Render.Json.Int row.Cost.c_flit_hops);
        ("predicted_flit_hops", Render.Json.Int predicted);
        ("measured_flit_hops", Render.Json.Int measured);
        ( "divergence",
          Render.Json.Float (divergence_ratio ~static:row.Cost.c_flit_hops ~measured) );
      ]
  in
  let doc =
    Render.Json.Obj
      [
        ("app", Render.Json.Str r.Pipeline.kernel_name);
        ("scheme", Render.Json.Str r.Pipeline.scheme_name);
        ("statements", Render.Json.List (List.map stmt_json table.Cost.rows));
        ( "windows",
          Render.Json.Obj (List.map (fun (n, w) -> (n, Render.Json.Int w)) table.Cost.windows) );
        ( "totals",
          Render.Json.Obj
            [
              ("static_links", Render.Json.Int table.Cost.total_links);
              ("static_flit_hops", Render.Json.Int table.Cost.total_flit_hops);
              ("predicted_flit_hops", Render.Json.Int (Ledger.total_predicted ledger));
              ("measured_flit_hops", Render.Json.Int measured_total);
              ("divergence", Render.Json.Float ratio);
            ] );
        ("threshold", Render.Json.Float threshold);
        ("within_threshold", Render.Json.Bool within);
      ]
  in
  let human () = analyze_human r table stmt_of ~threshold ~ratio ~within in
  print_endline (Render.output format ~human doc);
  if not within then begin
    Printf.eprintf
      "ndp_run analyze: static model diverges from the measured ledger: static %d vs measured \
       %d flit-hops (%s > x%.2f)\n"
      table.Cost.total_flit_hops measured_total (ratio_cell ratio) threshold;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* list / codegen / dot / check                                        *)

let list_act () =
  List.iter
    (fun name ->
      let k = Ndp_workloads.Suite.find name in
      Printf.printf "%-10s %s\n" name k.Ndp_core.Kernel.description)
    Ndp_workloads.Suite.names

let context_of kernel =
  let config = Ndp_sim.Config.default in
  let machine = Ndp_sim.Machine.create config in
  let insp = Ndp_core.Kernel.inspector kernel in
  Ndp_ir.Inspector.run insp;
  let address_of = Ndp_core.Kernel.address_of kernel in
  let ctx =
    Ndp_core.Context.create ~machine
      ~compiler_resolve:(Ndp_ir.Inspector.compiler_resolver insp ~address_of)
      ~runtime_resolve:(Ndp_ir.Inspector.runtime_resolver insp ~address_of)
      ~arrays:kernel.Ndp_core.Kernel.program.Ndp_ir.Loop.arrays
      ~options:(Ndp_core.Context.default_options config) ()
  in
  (machine, ctx)

let codegen_act kernel =
  (* Render the subcomputation program of the first window of the first
     nest, Figure 8 style. *)
  let machine, ctx = context_of kernel in
  match kernel.Ndp_core.Kernel.program.Ndp_ir.Loop.nests with
  | [] -> prerr_endline "kernel has no loop nests"
  | nest :: _ ->
    let envs = Ndp_ir.Loop.iterations nest in
    let metas =
      List.concat
        (List.mapi
           (fun ii env ->
             List.mapi
               (fun si stmt ->
                 {
                   Ndp_core.Window.group = (ii * List.length nest.Ndp_ir.Loop.body) + si;
                   default_node = ii mod Ndp_noc.Mesh.size (Ndp_sim.Machine.mesh machine);
                   inst = { Ndp_ir.Dependence.stmt_idx = si; stmt; env };
                 })
               nest.Ndp_ir.Loop.body)
           envs)
    in
    let window = List.filteri (fun i _ -> i < 4) metas in
    let compiled = Ndp_core.Window.compile ctx window in
    List.iter
      (fun (m : Ndp_core.Window.meta) ->
        Printf.printf "S%d: %s  %s\n" m.Ndp_core.Window.group
          (Ndp_ir.Stmt.to_string m.Ndp_core.Window.inst.Ndp_ir.Dependence.stmt)
          (Format.asprintf "%a" Ndp_ir.Env.pp m.Ndp_core.Window.inst.Ndp_ir.Dependence.env))
      window;
    print_newline ();
    print_endline (Ndp_core.Codegen.emit (List.map fst compiled.Ndp_core.Window.tasks))

let dot_act kernel =
  let _, ctx = context_of kernel in
  match kernel.Ndp_core.Kernel.program.Ndp_ir.Loop.nests with
  | [] -> prerr_endline "kernel has no loop nests"
  | nest :: _ ->
    let env = List.hd (Ndp_ir.Loop.iterations nest) in
    let stmt = List.hd nest.Ndp_ir.Loop.body in
    let split = Ndp_core.Splitter.split ctx ~store_node:0 stmt env in
    print_endline (Ndp_core.Graphviz.statement_mst split);
    let metas =
      List.mapi
        (fun si stmt ->
          {
            Ndp_core.Window.group = si;
            default_node = 0;
            inst = { Ndp_ir.Dependence.stmt_idx = si; stmt; env };
          })
        nest.Ndp_ir.Loop.body
    in
    let compiled = Ndp_core.Window.compile ctx metas in
    print_endline (Ndp_core.Graphviz.task_graph compiled.Ndp_core.Window.tasks)

let check_act kernel cluster memory window format jobs =
  let config = config_of cluster memory in
  let kernels =
    match kernel with
    | Some k -> [ k ]
    | None -> List.map Ndp_workloads.Suite.find Ndp_workloads.Suite.names
  in
  let jobs = match jobs with Some j -> max 1 j | None -> Ndp_prelude.Pool.default_jobs () in
  let schemes = [ Pipeline.Default; scheme_of `Partitioned window ] in
  (* W204 checks a concrete size against each nest; only a fixed window
     gives it one. *)
  let fixed = match window with Some (`Fixed k) -> Some k | Some `Analytic | None -> None in
  let reports = Ndp_analysis.Checker.check_suite ~config ?window:fixed ~jobs ~schemes kernels in
  print_endline (Ndp_analysis.Checker.render ~format reports);
  if Ndp_analysis.Checker.has_errors reports then exit 1

(* ------------------------------------------------------------------ *)
(* Command table                                                       *)

type command = { name : string; summary : string; term : unit Term.t }

let commands =
  [
    {
      name = "run";
      summary = "Compile and simulate one application.";
      term =
        Term.(
          const run_act $ Args.kernel $ Args.cluster $ Args.memory $ Args.scheme $ Args.window
          $ Args.metrics $ Args.format $ Args.jobs);
    };
    {
      name = "compare";
      summary = "Run default and partitioned placements and compare.";
      term =
        Term.(
          const compare_act $ Args.kernel $ Args.cluster $ Args.memory $ Args.window
          $ Args.metrics $ Args.format $ Args.jobs);
    };
    {
      name = "stats";
      summary = "Simulate with metrics enabled and print per-node/per-link breakdowns.";
      term =
        Term.(
          const stats_act $ Args.kernel $ Args.cluster $ Args.memory $ Args.scheme $ Args.window
          $ Args.format $ Args.jobs);
    };
    {
      name = "inject";
      summary =
        "Simulate under a deterministic fault plan (killed/degraded links, node stalls, MC \
         backpressure), optionally repairing the schedule around it.";
      term =
        Term.(
          const inject_act $ Args.kernel $ Args.cluster $ Args.memory $ Args.scheme
          $ Args.window $ Args.faults $ Args.fault_seed $ Args.repair $ Args.format
          $ Args.selfcheck $ Args.jobs);
    };
    {
      name = "trace";
      summary = "Simulate with tracing enabled and write Chrome trace_event JSON (Perfetto).";
      term =
        Term.(
          const trace_act $ Args.kernel $ Args.cluster $ Args.memory $ Args.scheme $ Args.window
          $ Args.out_file $ Args.format $ Args.selfcheck $ Args.jobs);
    };
    {
      name = "profile";
      summary =
        "Simulate with the data-movement attribution ledger and counter timeline enabled: \
         top-K movement sources, predicted-vs-measured reconciliation, optional Perfetto \
         counter tracks.";
      term =
        Term.(
          const profile_act $ Args.kernel $ Args.cluster $ Args.memory $ Args.scheme
          $ Args.window $ Args.interval $ Args.top $ Args.profile_out $ Args.format $ Args.jobs);
    };
    {
      name = "analyze";
      summary =
        "Static cost model: symbolic footprints, reuse classes and closed-form per-statement \
         movement, reconciled against the measured ledger of one run; exit nonzero when the \
         totals diverge beyond --threshold.";
      term =
        Term.(
          const analyze_act $ Args.kernel $ Args.cluster $ Args.memory $ Args.scheme
          $ Args.window $ Args.threshold $ Args.format $ Args.jobs);
    };
    { name = "list"; summary = "List the application kernels."; term = Term.(const list_act $ const ()) };
    {
      name = "codegen";
      summary = "Show the generated per-node subcomputation program for one window.";
      term = Term.(const codegen_act $ Args.kernel);
    };
    {
      name = "dot";
      summary = "Emit Graphviz DOT for a statement MST and one window's task graph.";
      term = Term.(const dot_act $ Args.kernel);
    };
    {
      name = "check";
      summary =
        "Lint every kernel's IR and validate the compiled schedules (dependence race detection) \
         under the default and partitioned schemes; exit nonzero on any error.";
      term =
        Term.(
          const check_act $ Args.kernel_opt $ Args.cluster $ Args.memory $ Args.window
          $ Args.format $ Args.jobs);
    };
  ]

let () =
  let info = Cmd.info "ndp_run" ~doc:"Data-movement-aware computation partitioning playground." in
  let cmds = List.map (fun c -> Cmd.v (Cmd.info c.name ~doc:c.summary) c.term) commands in
  exit (Cmd.eval (Cmd.group info cmds))
