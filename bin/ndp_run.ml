(* Command-line driver: compile one of the twelve application kernels under
   a placement scheme and simulate it on the KNL-like mesh.

     ndp_run list
     ndp_run run barnes --scheme partitioned --cluster quadrant --memory flat
     ndp_run compare water --window 4
     ndp_run stats ocean --format json
     ndp_run trace mg -o trace.json
     ndp_run codegen fft

   Every subcommand is an entry in the declarative [commands] table below:
   name, one-line summary, and a term built from the shared flag specs in
   [Args]. Help output is generated from the table. *)

open Cmdliner
module Render = Ndp_obs.Render
module Metrics = Ndp_obs.Metrics
module Trace = Ndp_obs.Trace
module Stats = Ndp_sim.Stats
module Pipeline = Ndp_core.Pipeline
module Service = Ndp_serve.Service
module Protocol = Ndp_serve.Protocol

(* ------------------------------------------------------------------ *)
(* Shared flag specs                                                   *)

module Args = struct
  let kernel_conv =
    let parse name =
      match Ndp_workloads.Suite.find name with
      | k -> Ok k
      | exception Not_found ->
        Error (`Msg (Printf.sprintf "unknown application %S (try `ndp_run list')" name))
    in
    Arg.conv (parse, fun ppf k -> Format.pp_print_string ppf k.Ndp_core.Kernel.name)

  let cluster_conv =
    let parse s = Result.map_error (fun m -> `Msg m) (Ndp_noc.Cluster.of_string s) in
    Arg.conv (parse, fun ppf c -> Format.pp_print_string ppf (Ndp_noc.Cluster.to_string c))

  let memory_conv =
    let parse s = Result.map_error (fun m -> `Msg m) (Ndp_sim.Config.memory_mode_of_string s) in
    Arg.conv
      (parse, fun ppf m -> Format.pp_print_string ppf (Ndp_sim.Config.memory_mode_to_string m))

  let kernel =
    Arg.(
      required & pos 0 (some kernel_conv) None & info [] ~docv:"APP" ~doc:"Application kernel name.")

  let kernel_opt =
    Arg.(
      value
      & pos 0 (some kernel_conv) None
      & info [] ~docv:"APP" ~doc:"Check one application only (default: the whole suite).")

  let cluster =
    Arg.(
      value
      & opt cluster_conv Ndp_noc.Cluster.Quadrant
      & info [ "cluster" ] ~doc:"Cluster mode: all-to-all, quadrant or snc-4.")

  let memory =
    Arg.(
      value
      & opt memory_conv Ndp_sim.Config.Flat
      & info [ "memory" ] ~doc:"Memory mode: flat, cache or hybrid.")

  let window_conv =
    let parse s =
      if String.lowercase_ascii s = "analytic" then Ok `Analytic
      else
        match int_of_string_opt s with
        | Some k -> Ok (`Fixed k)
        | None -> Error (`Msg (Printf.sprintf "expected a window size or \"analytic\", got %S" s))
    in
    Arg.conv
      ( parse,
        fun ppf -> function
          | `Analytic -> Format.pp_print_string ppf "analytic"
          | `Fixed k -> Format.pp_print_int ppf k )

  let window =
    Arg.(
      value
      & opt (some window_conv) None
      & info [ "window" ]
          ~doc:
            "Window size: a fixed integer, or $(b,analytic) to size each nest with the \
             closed-form static cost model instead of sampled compilation (default: adaptive \
             sampled sizing per nest).")

  let threshold =
    Arg.(
      value
      & opt float 4.0
      & info [ "threshold" ] ~docv:"R"
          ~doc:
            "Maximum tolerated total divergence ratio between the static cost model and the \
             measured ledger, as max(static,measured)/min(static,measured) ($(b,analyze) \
             only). The static model prices compiler-visible movement; runtime adds traffic \
             it cannot see (misses, syncs, inspector), so suite ratios sit between x1 and \
             x3.2. Exceeding the threshold exits nonzero.")

  let scheme =
    Arg.(
      value
      & opt (enum [ ("default", `Default); ("partitioned", `Partitioned) ]) `Partitioned
      & info [ "scheme" ] ~doc:"Computation placement: default or partitioned.")

  (* The one output-format vocabulary, shared by check/stats/trace/run. *)
  let format =
    Arg.(
      value
      & opt (enum Render.all_formats) Render.Human
      & info [ "format" ] ~doc:"Output format: human, sexp, json or jsonl.")

  let metrics =
    Arg.(
      value
      & flag
      & info [ "metrics" ]
          ~doc:"Collect the metrics registry during the run and dump it after the result.")

  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ]
          ~doc:
            "Number of domains for parallel work (window preprocessing; $(b,check)'s \
             validation cells). Default: \\$(b,NDP_JOBS) or the recommended domain count. \
             Output is identical at any job count.")

  let out_file =
    Arg.(
      value
      & opt string "trace.json"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file; \"-\" writes to stdout.")

  let selfcheck =
    Arg.(
      value
      & flag
      & info [ "selfcheck" ]
          ~doc:
            "Reconcile the trace against the aggregate statistics (task-event count, finish \
             time, timestamp monotonicity) and exit nonzero on mismatch.")

  let interval =
    Arg.(
      value
      & opt int 1000
      & info [ "interval" ] ~docv:"N"
          ~doc:
            "Timeline sampling interval in simulated cycles ($(b,profile) only). 0 disables \
             the timeline and keeps just the movement ledger.")

  let top =
    Arg.(
      value
      & opt int 10
      & info [ "top" ] ~docv:"K"
          ~doc:"Rows shown in the top-K movement-source table ($(b,profile) only).")

  let profile_out =
    Arg.(
      value
      & opt string ""
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:
            "Also write a Chrome/Perfetto trace — task events plus one counter track per \
             timeline series — to FILE; \"-\" writes it to stdout.")

  let spans =
    Arg.(
      value
      & flag
      & info [ "spans" ]
          ~doc:
            "Collect per-phase pipeline spans (parse/deps/window/fusion/schedule/simulate) \
             and append them to the output: a $(b,spans) object under $(b,--format json), a \
             per-phase summary table under $(b,--format human), nested slices in the \
             Perfetto trace written by $(b,-o).")

  let faults =
    Arg.(
      value
      & opt string ""
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Comma-separated fault spec: $(b,kill=N) or $(b,kill=A>B) (kill N random links / \
             one specific link), $(b,slow=NxF) or $(b,slow=A>BxF) (degrade links by factor F), \
             $(b,stall=NODE\\@START+LEN) (node stall window), $(b,mc=NODExF) (backpressure the \
             MC nearest NODE). Empty spec injects nothing.")

  let fault_seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed"; "fault-seed" ] ~docv:"SEED"
          ~doc:
            "Seed for the plan's random choices (which links $(b,kill=N) removes). Default: the \
             simulator config's seed. A fixed seed gives byte-identical runs at any --jobs.")

  let repair =
    Arg.(
      value
      & flag
      & info [ "repair" ]
          ~doc:
            "Hand the fault plan to the compiler as well: partition over the surviving mesh \
             with degraded link weights and remap subcomputations off stalled/isolated nodes.")

  let fuse =
    Arg.(
      value
      & flag
      & info [ "fuse" ]
          ~doc:
            "Fuse producer$(b,->)consumer statement chains before MST scheduling (partitioned \
             scheme only): each fused group runs on one node and intermediate store write-backs \
             stay in that node's L1 instead of crossing the NoC.")

  let fuse_capacity =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuse-capacity" ] ~docv:"BYTES"
          ~doc:
            "L1 footprint budget per fused group in bytes (with $(b,--fuse)). Default: the \
             config's L1 size. 0 disables fusion (identity pass).")

  let fusion =
    Arg.(
      value
      & flag
      & info [ "fusion" ]
          ~doc:
            "$(b,analyze) only: report the fusion decision table instead of the static cost \
             table — each fused chain with its predicted saved flit-hops reconciled against the \
             measured delta between an unfused and a fused run.")
end

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                      *)

let config_of cluster memory = Ndp_sim.Config.with_modes Ndp_sim.Config.default cluster memory

let scheme_of ?(fuse = false) ?fuse_capacity scheme window =
  match scheme with
  | `Default -> Pipeline.Default
  | `Partitioned ->
    let w =
      match window with
      | None -> Pipeline.Adaptive
      | Some `Analytic -> Pipeline.Analytic
      | Some (`Fixed k) -> Pipeline.Fixed k
    in
    Pipeline.Partitioned
      { Pipeline.partitioned_defaults with Pipeline.window = w; fuse; fuse_capacity }

(* The document builders and human renderers live in [Ndp_serve.Service]
   now, shared with the daemon: a serve response body is byte-identical
   to the corresponding subcommand's [--format json] output. *)
let result_human = Service.result_human

let result_json = Service.result_json

let metrics_json reg = Service.metrics_json reg

(* ------------------------------------------------------------------ *)
(* run / compare                                                       *)

(* Run [f] with a pool of the requested size, or without one when --jobs
   is absent (the pipeline then stays serial). *)
let with_jobs jobs f =
  match jobs with
  | None -> f None
  | Some j -> Ndp_prelude.Pool.with_pool ~jobs:(max 1 j) (fun p -> f (Some p))

let run_act kernel cluster memory scheme window fuse fuse_capacity metrics format jobs =
  with_jobs jobs @@ fun pool ->
  let job =
    Pipeline.Job.make ~config:(config_of cluster memory)
      (scheme_of ~fuse ?fuse_capacity scheme window)
      kernel
  in
  let o = Service.run ?pool ~metrics job in
  print_endline (Render.output format ~human:o.Service.human o.Service.doc)

let compare_act kernel cluster memory window fuse metrics format jobs =
  with_jobs jobs @@ fun pool ->
  let config = config_of cluster memory in
  let od = Service.run ?pool ~metrics (Pipeline.Job.make ~config Pipeline.Default kernel) in
  let oo =
    Service.run ?pool ~metrics
      (Pipeline.Job.make ~config (scheme_of ~fuse `Partitioned window) kernel)
  in
  let d = od.Service.result and o = oo.Service.result in
  let imp base opt = 100.0 *. float_of_int (base - opt) /. float_of_int (max 1 base) in
  let exec_imp = imp d.Pipeline.exec_time o.Pipeline.exec_time in
  let move_imp = imp (Stats.hops d.Pipeline.stats) (Stats.hops o.Pipeline.stats) in
  let doc =
    Render.Json.Obj
      [
        ("default", od.Service.doc);
        ("partitioned", oo.Service.doc);
        ( "improvement",
          Render.Json.Obj
            [ ("exec_pct", Render.Json.Float exec_imp); ("movement_pct", Render.Json.Float move_imp) ]
        );
      ]
  in
  let human () =
    String.concat "\n"
      [
        od.Service.human ();
        "";
        oo.Service.human ();
        "";
        Printf.sprintf "improvement: exec %.1f%%, movement %.1f%%" exec_imp move_imp;
      ]
  in
  print_endline (Render.output format ~human doc)

(* ------------------------------------------------------------------ *)
(* stats: per-node / per-link breakdown                                *)

let lookup_int reg name =
  match Metrics.find reg name with Some (Metrics.Counter_v v) -> v | _ -> 0

let node_table reg n =
  let t =
    Ndp_prelude.Table.create
      ~header:[ "node"; "tasks"; "busy"; "l1_hits"; "l1_miss"; "l2_hits"; "l2_miss"; "mc_reqs" ]
  in
  for i = 0 to n - 1 do
    let g fam key = lookup_int reg (Printf.sprintf "%s{%s=%d}" fam key i) in
    Ndp_prelude.Table.add_row t
      [
        string_of_int i;
        string_of_int (g "core.tasks" "node");
        string_of_int (g "core.busy_cycles" "node");
        string_of_int (g "mem.l1_hits" "node");
        string_of_int (g "mem.l1_misses" "node");
        string_of_int (g "mem.l2_bank_hits" "bank");
        string_of_int (g "mem.l2_bank_misses" "bank");
        string_of_int (g "mem.mc_requests" "node");
      ]
  done;
  Ndp_prelude.Table.render t

let link_table reg =
  let t = Ndp_prelude.Table.create ~header:[ "link"; "flits"; "busy_cycles" ] in
  let prefix = "noc.link_flits{" in
  List.iter
    (fun (name, sample) ->
      match sample with
      | Metrics.Counter_v flits when Astring.String.is_prefix ~affix:prefix name ->
        let label = String.sub name (String.length prefix) (String.length name - String.length prefix - 1) in
        let busy = lookup_int reg (Printf.sprintf "noc.link_busy_cycles{%s}" label) in
        Ndp_prelude.Table.add_row t [ label; string_of_int flits; string_of_int busy ]
      | _ -> ())
    (Metrics.to_alist reg);
  Ndp_prelude.Table.render t

let stats_act kernel cluster memory scheme window fuse format jobs =
  with_jobs jobs @@ fun pool ->
  let obs = Ndp_obs.Sink.create ~metrics:true ~trace:false () in
  let config = config_of cluster memory in
  let r =
    Pipeline.Job.run ?pool ~obs
      (Pipeline.Job.make ~config (scheme_of ~fuse scheme window) kernel)
  in
  let reg = obs.Ndp_obs.Sink.metrics in
  let n = Ndp_noc.Mesh.size (Ndp_sim.Config.mesh config) in
  let doc =
    Render.Json.Obj [ ("result", result_json r); ("metrics", metrics_json reg) ]
  in
  let human () =
    String.concat "\n"
      [
        result_human r;
        "";
        "per-node:";
        node_table reg n;
        "per-link (nonzero):";
        link_table reg;
      ]
  in
  print_endline (Render.output format ~human doc)

(* ------------------------------------------------------------------ *)
(* inject: deterministic fault injection + schedule repair             *)

module Plan = Ndp_fault.Plan

(* Invariants of a fault run, verified by re-execution:
   1. determinism — an identical second run (fresh plan from the same
      seed) produces identical stats and finish time;
   2. an empty plan is byte-identical to running without one;
   3. under --repair, nodes the plan avoids end the run with zero busy
      cycles (every subcomputation was remapped off them);
   4. a non-empty plan surfaces its fault.* instruments in the registry. *)
let inject_selfcheck ~config ~spec ~seed ~repair pool scheme kernel plan
    (r : Pipeline.result) reg =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let mesh = Ndp_sim.Config.mesh config in
  let rerun =
    let plan2 =
      match Plan.parse ~mesh ~seed spec with Ok p -> p | Error m -> failwith m
    in
    Pipeline.Job.run ?pool (Pipeline.Job.make ~config ~faults:plan2 ~repair scheme kernel)
  in
  if not (Stats.equal r.Pipeline.stats rerun.Pipeline.stats) then
    fail "re-run with the same seed changed the statistics";
  if r.Pipeline.exec_time <> rerun.Pipeline.exec_time then
    fail "re-run with the same seed changed the finish time (%d <> %d)" r.Pipeline.exec_time
      rerun.Pipeline.exec_time;
  if Plan.is_empty plan then begin
    let bare = Pipeline.Job.run ?pool (Pipeline.Job.make ~config scheme kernel) in
    if not (Stats.equal r.Pipeline.stats bare.Pipeline.stats) then
      fail "an empty fault plan changed the statistics vs a plain run"
  end
  else begin
    (match Metrics.find reg "fault.link_retries" with
    | Some _ -> ()
    | None -> fail "non-empty plan but fault.link_retries is not in the registry");
    if repair then
      List.iter
        (fun node ->
          if r.Pipeline.node_busy.(node) <> 0 then
            fail "repair left %d busy cycles on avoided node %d" r.Pipeline.node_busy.(node)
              node)
        (Plan.avoided_nodes plan)
  end;
  match !failures with
  | [] ->
    let killed, degraded, stalled, mcs = Plan.counts plan in
    Printf.printf
      "inject selfcheck: ok (killed=%d degraded=%d stalled=%d mcs=%d remapped=%d)\n" killed
      degraded stalled mcs r.Pipeline.remapped_tasks
  | fs ->
    List.iter (Printf.eprintf "inject selfcheck: %s\n") (List.rev fs);
    exit 1

let inject_act kernel cluster memory scheme window spec fault_seed repair format selfcheck jobs
    =
  with_jobs jobs @@ fun pool ->
  let config = config_of cluster memory in
  let mesh = Ndp_sim.Config.mesh config in
  let seed = Option.value fault_seed ~default:config.Ndp_sim.Config.seed in
  let plan =
    match Plan.parse ~mesh ~seed spec with
    | Ok plan -> plan
    | Error msg ->
      Printf.eprintf "ndp_run inject: bad --faults spec: %s\n" msg;
      exit 2
  in
  let scheme = scheme_of scheme window in
  let job = Pipeline.Job.make ~config ~faults:plan ~repair scheme kernel in
  let o = Service.inject ?pool ~spec job in
  print_endline (Render.output format ~human:o.Service.i_human o.Service.i_doc);
  if selfcheck then
    inject_selfcheck ~config ~spec ~seed ~repair pool scheme kernel plan o.Service.i_result
      o.Service.i_reg

(* ------------------------------------------------------------------ *)
(* trace: Chrome trace_event JSON                                      *)

let trace_selfcheck tracer (r : Pipeline.result) =
  let events = Trace.events tracer in
  let tasks = List.filter (fun e -> e.Trace.kind = Trace.Task) events in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let stats_tasks = Stats.tasks r.Pipeline.stats in
  (* A lossy trace cannot vouch for anything: dropped events mean the ring
     overwrote history, so the check fails rather than passing silently. *)
  if Trace.dropped tracer > 0 then
    fail "%d events dropped (ring capacity %d exceeded): the trace is not faithful"
      (Trace.dropped tracer) (Trace.length tracer);
  if Trace.dropped tracer = 0 && List.length tasks <> stats_tasks then
    fail "task events %d <> stats tasks %d" (List.length tasks) stats_tasks;
  let max_end = List.fold_left (fun acc e -> max acc e.Trace.end_ts) 0 tasks in
  let finish = Stats.finish_time r.Pipeline.stats in
  if tasks <> [] && max_end <> finish then
    fail "max task end %d <> finish time %d" max_end finish;
  let sorted = Trace.sorted_events tracer in
  let rec monotonic = function
    | a :: (b :: _ as rest) -> a.Trace.start_ts <= b.Trace.start_ts && monotonic rest
    | _ -> true
  in
  if not (monotonic sorted) then fail "rendered timestamps are not monotonic";
  List.iter
    (fun e ->
      if e.Trace.end_ts < e.Trace.start_ts then
        fail "event %s id %d ends before it starts" e.Trace.name e.Trace.id)
    events;
  match !failures with
  | [] ->
    Printf.printf "trace selfcheck: ok (%d events, %d tasks, %d dropped)\n"
      (Trace.length tracer) (List.length tasks) (Trace.dropped tracer)
  | fs ->
    List.iter (Printf.eprintf "trace selfcheck: %s\n") (List.rev fs);
    exit 1

let trace_act kernel cluster memory scheme window out format selfcheck jobs =
  with_jobs jobs @@ fun pool ->
  let obs = Ndp_obs.Sink.create ~metrics:true ~trace:true () in
  let r =
    Pipeline.Job.run ?pool ~obs
      (Pipeline.Job.make ~config:(config_of cluster memory) (scheme_of scheme window) kernel)
  in
  let tracer = obs.Ndp_obs.Sink.trace in
  let payload =
    match format with
    | Render.Jsonl -> Trace.to_jsonl tracer
    | Render.Sexp -> Render.json_to_sexp (Render.Json.Str "use --format json or jsonl")
    | Render.Human | Render.Json -> Trace.to_chrome tracer
  in
  (match out with
  | "-" -> print_string payload
  | file ->
    let oc = open_out file in
    output_string oc payload;
    close_out oc;
    Printf.printf "wrote %s (%d events, %d dropped)\n" file (Trace.length tracer)
      (Trace.dropped tracer));
  if selfcheck then trace_selfcheck tracer r

(* ------------------------------------------------------------------ *)
(* profile: movement attribution ledger + counter timeline             *)

let profile_act kernel cluster memory scheme window interval top out spans format jobs =
  with_jobs jobs @@ fun pool ->
  let want_trace = out <> "" in
  let job =
    Pipeline.Job.make ~config:(config_of cluster memory) (scheme_of scheme window) kernel
  in
  let sp = if spans then Ndp_obs.Span.create () else Ndp_obs.Span.none in
  let o = Service.profile ?pool ~trace:want_trace ~spans:sp ~interval ~top job in
  let obs = o.Service.p_sink in
  let timeline = obs.Ndp_obs.Sink.timeline in
  if want_trace then begin
    let payload =
      Trace.to_chrome
        ~counters:(Ndp_obs.Timeline.chrome_counter_events timeline)
        ~spans:sp obs.Ndp_obs.Sink.trace
    in
    match out with
    | "-" -> print_string payload
    | file ->
      let oc = open_out file in
      output_string oc payload;
      close_out oc;
      Printf.printf "wrote %s (%d events + %d counter samples)\n" file
        (Trace.length obs.Ndp_obs.Sink.trace)
        (List.length (Ndp_obs.Timeline.chrome_counter_events timeline))
  end;
  (* The service keeps spans out of the shared document (daemon bodies
     must stay byte-identical); --spans composes them into the CLI
     output here. *)
  let doc =
    if not spans then o.Service.p_doc
    else
      match o.Service.p_doc with
      | Render.Json.Obj fields ->
        Render.Json.Obj (fields @ [ ("spans", Ndp_obs.Span.to_json sp) ])
      | other -> other
  in
  let human () =
    if not spans then o.Service.p_human ()
    else o.Service.p_human () ^ "\nphase spans\n" ^ Ndp_obs.Span.summary_table sp
  in
  print_endline (Render.output format ~human doc);
  if not o.Service.p_reconciled then begin
    Printf.eprintf "ndp_run profile: ledger flit-hops %d do not reconcile with noc.link_flits %d\n"
      o.Service.p_measured o.Service.p_link_flits;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* analyze: static cost table reconciled against a measured run        *)

let analyze_act kernel cluster memory scheme window fuse fuse_capacity fusion threshold format
    jobs =
  with_jobs jobs @@ fun pool ->
  let job =
    Pipeline.Job.make ~config:(config_of cluster memory)
      (scheme_of ~fuse ?fuse_capacity scheme window)
      kernel
  in
  if fusion then begin
    (* The decision table: [analyze_fusion] forces the fused/unfused pair
       itself, so --fusion works with or without --fuse. *)
    let o = Service.analyze_fusion ?pool job in
    print_endline (Render.output format ~human:o.Service.f_human o.Service.f_doc)
  end
  else begin
    let o = Service.analyze ?pool ~threshold job in
    print_endline (Render.output format ~human:o.Service.a_human o.Service.a_doc);
    if not o.Service.a_within then begin
      Printf.eprintf
        "ndp_run analyze: static model diverges from the measured ledger: static %d vs measured \
         %d flit-hops (%s > x%.2f)\n"
        o.Service.a_static_total o.Service.a_measured_total
        (Service.ratio_cell o.Service.a_ratio) threshold;
      exit 1
    end
  end

(* ------------------------------------------------------------------ *)
(* list / codegen / dot / check                                        *)

let list_act () =
  List.iter
    (fun name ->
      let k = Ndp_workloads.Suite.find name in
      Printf.printf "%-10s %s\n" name k.Ndp_core.Kernel.description)
    Ndp_workloads.Suite.names

let context_of kernel =
  let config = Ndp_sim.Config.default in
  let machine = Ndp_sim.Machine.create config in
  let insp = Ndp_core.Kernel.inspector kernel in
  Ndp_ir.Inspector.run insp;
  let address_of = Ndp_core.Kernel.address_of kernel in
  let ctx =
    Ndp_core.Context.create ~machine
      ~compiler_resolve:(Ndp_ir.Inspector.compiler_resolver insp ~address_of)
      ~runtime_resolve:(Ndp_ir.Inspector.runtime_resolver insp ~address_of)
      ~arrays:kernel.Ndp_core.Kernel.program.Ndp_ir.Loop.arrays
      ~options:(Ndp_core.Context.default_options config) ()
  in
  (machine, ctx)

let codegen_act kernel =
  (* Render the subcomputation program of the first window of the first
     nest, Figure 8 style. *)
  let machine, ctx = context_of kernel in
  match kernel.Ndp_core.Kernel.program.Ndp_ir.Loop.nests with
  | [] -> prerr_endline "kernel has no loop nests"
  | nest :: _ ->
    let envs = Ndp_ir.Loop.iterations nest in
    let metas =
      List.concat
        (List.mapi
           (fun ii env ->
             List.mapi
               (fun si stmt ->
                 {
                   Ndp_core.Window.group = (ii * List.length nest.Ndp_ir.Loop.body) + si;
                   default_node = ii mod Ndp_noc.Mesh.size (Ndp_sim.Machine.mesh machine);
                   inst = { Ndp_ir.Dependence.stmt_idx = si; stmt; env };
                 })
               nest.Ndp_ir.Loop.body)
           envs)
    in
    let window = List.filteri (fun i _ -> i < 4) metas in
    let compiled = Ndp_core.Window.compile ctx window in
    List.iter
      (fun (m : Ndp_core.Window.meta) ->
        Printf.printf "S%d: %s  %s\n" m.Ndp_core.Window.group
          (Ndp_ir.Stmt.to_string m.Ndp_core.Window.inst.Ndp_ir.Dependence.stmt)
          (Format.asprintf "%a" Ndp_ir.Env.pp m.Ndp_core.Window.inst.Ndp_ir.Dependence.env))
      window;
    print_newline ();
    print_endline (Ndp_core.Codegen.emit (List.map fst compiled.Ndp_core.Window.tasks))

let dot_act kernel =
  let _, ctx = context_of kernel in
  match kernel.Ndp_core.Kernel.program.Ndp_ir.Loop.nests with
  | [] -> prerr_endline "kernel has no loop nests"
  | nest :: _ ->
    let env = List.hd (Ndp_ir.Loop.iterations nest) in
    let stmt = List.hd nest.Ndp_ir.Loop.body in
    let split = Ndp_core.Splitter.split ctx ~store_node:0 stmt env in
    print_endline (Ndp_core.Graphviz.statement_mst split);
    let metas =
      List.mapi
        (fun si stmt ->
          {
            Ndp_core.Window.group = si;
            default_node = 0;
            inst = { Ndp_ir.Dependence.stmt_idx = si; stmt; env };
          })
        nest.Ndp_ir.Loop.body
    in
    let compiled = Ndp_core.Window.compile ctx metas in
    print_endline (Ndp_core.Graphviz.task_graph compiled.Ndp_core.Window.tasks)

let check_act kernel cluster memory window fuse format jobs =
  let config = config_of cluster memory in
  let kernels =
    match kernel with
    | Some k -> [ k ]
    | None -> List.map Ndp_workloads.Suite.find Ndp_workloads.Suite.names
  in
  let jobs = match jobs with Some j -> max 1 j | None -> Ndp_prelude.Pool.default_jobs () in
  let schemes =
    [ Pipeline.Default; scheme_of `Partitioned window ]
    @ (if fuse then [ scheme_of ~fuse `Partitioned window ] else [])
  in
  (* W204 checks a concrete size against each nest; only a fixed window
     gives it one. *)
  let fixed = match window with Some (`Fixed k) -> Some k | Some `Analytic | None -> None in
  let reports = Ndp_analysis.Checker.check_suite ~config ?window:fixed ~jobs ~schemes kernels in
  print_endline (Ndp_analysis.Checker.render ~format reports);
  if Ndp_analysis.Checker.has_errors reports then exit 1

(* ------------------------------------------------------------------ *)
(* serve / client: the compile-as-a-service daemon and its CLI client  *)

let spec_of_flags app cluster memory scheme window faults fault_seed repair =
  {
    Protocol.app;
    scheme = (match scheme with `Default -> "default" | `Partitioned -> "partitioned");
    window =
      (match window with
      | None -> "adaptive"
      | Some `Analytic -> "analytic"
      | Some (`Fixed k) -> string_of_int k);
    cluster = Ndp_noc.Cluster.to_string cluster;
    memory = Ndp_sim.Config.memory_mode_to_string memory;
    tweaks = Pipeline.no_tweaks;
    faults;
    fault_seed;
    repair;
  }

(* The canonical demo session: exercises compile sharing (the repeated
   Run and the Compile/Sweep pair) and ends with deterministic cache
   counters plus a clean shutdown. [serve --demo-requests] prints it;
   the golden tests feed it back through [serve --stdio]. *)
let demo_requests () =
  let spec = Protocol.default_spec ~app:"fft" in
  let sweep_variants =
    [
      { Protocol.v_name = "baseline"; v_overrides = []; v_tweaks = Pipeline.no_tweaks };
      { Protocol.v_name = "hop-cycles-8"; v_overrides = [ ("hop_cycles", 8) ]; v_tweaks = Pipeline.no_tweaks };
    ]
  in
  let session =
    [
      Protocol.Ping;
      Protocol.List_apps;
      Protocol.Run { spec; metrics = false };
      Protocol.Run { spec; metrics = false };
      Protocol.Compile spec;
      Protocol.Sweep { spec; variants = sweep_variants };
      Protocol.Cache_stats;
      Protocol.Shutdown;
    ]
  in
  List.iteri (fun i req -> Protocol.write_request stdout ~id:(i + 1) req) session;
  flush stdout

let serve_act socket stdio demo result_capacity schedule_capacity access_log slow_ms jobs =
  if demo then demo_requests ()
  else begin
    let access_oc = if access_log = "" then None else Some (open_out access_log) in
    let server =
      Ndp_serve.Server.create ?jobs ~result_capacity ~schedule_capacity ?access_log:access_oc
        ?slow_ms ()
    in
    if stdio then Ndp_serve.Server.serve_channels server stdin stdout
    else if socket = "" then begin
      prerr_endline "ndp_run serve: --socket PATH required (or --stdio / --demo-requests)";
      exit 2
    end
    else begin
      Printf.eprintf "ndp_run serve: listening on %s\n%!" socket;
      Ndp_serve.Server.serve server ~socket_path:socket
    end;
    Ndp_serve.Server.shutdown server;
    Option.iter close_out access_oc
  end

(* Sim-side cost-model variants for [client sweep]: the same standard
   set the bench replays, minus the tweak-based ones (sweep over the
   wire carries config overrides). *)
let client_sweep_variants =
  List.map
    (fun (v_name, v_overrides) -> { Protocol.v_name; v_overrides; v_tweaks = Pipeline.no_tweaks })
    [
      ("baseline", []);
      ("hop-cycles-8", [ ("hop_cycles", 8) ]);
      ("hop-cycles-32", [ ("hop_cycles", 32) ]);
      ("ddr-cycles-520", [ ("ddr_cycles", 520) ]);
      ("op-cycles-16", [ ("op_cycles", 16) ]);
      ("l2-hit-cycles-36", [ ("l2_hit_cycles", 36) ]);
    ]

let client_act op app socket cluster memory scheme window faults fault_seed repair interval top
    threshold metrics meta =
  if socket = "" then begin
    prerr_endline "ndp_run client: --socket PATH required";
    exit 2
  end;
  let spec_of name = spec_of_flags name cluster memory scheme window faults fault_seed repair in
  let need_app () =
    match app with
    | Some (k : Ndp_core.Kernel.t) -> spec_of k.Ndp_core.Kernel.name
    | None ->
      prerr_endline "ndp_run client: this operation needs an APP argument";
      exit 2
  in
  let request =
    match op with
    | `Ping -> Protocol.Ping
    | `List -> Protocol.List_apps
    | `Run -> Protocol.Run { spec = need_app (); metrics }
    | `Compile -> Protocol.Compile (need_app ())
    | `Profile -> Protocol.Profile { spec = need_app (); interval; top }
    | `Analyze -> Protocol.Analyze { spec = need_app (); threshold }
    | `Inject -> Protocol.Inject (need_app ())
    | `Sweep -> Protocol.Sweep { spec = need_app (); variants = client_sweep_variants }
    | `Cache_stats -> Protocol.Cache_stats
    | `Metrics -> Protocol.Metrics_dump
    | `Metrics_text -> Protocol.Metrics_text
    | `Shutdown -> Protocol.Shutdown
  in
  match Ndp_serve.Client.connect socket with
  | Error msg ->
    Printf.eprintf "ndp_run client: %s\n" msg;
    exit 1
  | Ok client -> (
    let r = Ndp_serve.Client.rpc client request in
    Ndp_serve.Client.close client;
    match r with
    | Error msg ->
      Printf.eprintf "ndp_run client: %s\n" msg;
      exit 1
    | Ok (env, body) ->
      if meta then
        Printf.eprintf "id=%d ok=%b cached=%b key=%s\n" env.Protocol.id env.Protocol.ok
          env.Protocol.cached env.Protocol.key;
      print_endline body;
      if not env.Protocol.ok then exit 1)

(* ------------------------------------------------------------------ *)
(* bench diff: the perf-regression sentinel                            *)

let bench_diff_act old_file new_file threshold format =
  let slurp path =
    match In_channel.with_open_bin path In_channel.input_all with
    | s -> Ok s
    | exception Sys_error msg -> Error msg
  in
  let report =
    Result.bind (slurp old_file) @@ fun old_text ->
    Result.bind (slurp new_file) @@ fun new_text ->
    Ndp_obs.Bench_diff.compare_strings ~threshold ~old_text ~new_text ()
  in
  match report with
  | Error msg ->
    Printf.eprintf "ndp_run bench diff: %s\n" msg;
    exit 2
  | Ok r ->
    print_endline
      (Render.output format
         ~human:(fun () -> Ndp_obs.Bench_diff.render r)
         (Ndp_obs.Bench_diff.to_json r));
    if Ndp_obs.Bench_diff.has_regressions r then exit 1

let bench_old_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"OLD.json" ~doc:"Baseline benchmark snapshot (BENCH_micro.json shape).")

let bench_new_arg =
  Arg.(
    required
    & pos 1 (some string) None
    & info [] ~docv:"NEW.json" ~doc:"Candidate benchmark snapshot to compare against OLD.")

let bench_threshold_arg =
  Arg.(
    value
    & opt float 10.0
    & info [ "threshold" ] ~docv:"PCT"
        ~doc:
          "Regression threshold in percent: a benchmark whose per-iteration time grew by \
           more than PCT fails the diff (nonzero exit).")

(* ------------------------------------------------------------------ *)

let socket_arg =
  Arg.(
    value
    & opt string ""
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path of the serve daemon.")

let stdio_arg =
  Arg.(
    value
    & flag
    & info [ "stdio" ]
        ~doc:"Serve one framed session over stdin/stdout instead of binding a socket.")

let access_log_arg =
  Arg.(
    value
    & opt string ""
    & info [ "access-log" ] ~docv:"FILE"
        ~doc:
          "Append one JSON line per request to FILE: sequence number, request id, op, cache \
           key, hit/miss, latency ms, response bytes and the per-phase span breakdown.")

let slow_ms_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "slow-ms" ] ~docv:"MS"
        ~doc:
          "Print a span breakdown to stderr for every request slower than MS milliseconds.")

let demo_arg =
  Arg.(
    value
    & flag
    & info [ "demo-requests" ]
        ~doc:
          "Print the canonical demo request stream (a framed \
           ping/list/run/run/compile/sweep/cache-stats/shutdown session) and exit; pipe it \
           back through $(b,serve --stdio).")

let result_capacity_arg =
  Arg.(
    value
    & opt int 256
    & info [ "result-cache" ] ~docv:"N" ~doc:"Result-cache capacity (rendered response bodies).")

let schedule_capacity_arg =
  Arg.(
    value
    & opt int 64
    & info [ "schedule-cache" ] ~docv:"N" ~doc:"Schedule-cache capacity (captured compiles).")

let meta_arg =
  Arg.(
    value
    & flag
    & info [ "meta" ] ~doc:"Print the response envelope (id/ok/cached/key) to stderr.")

let op_arg =
  let ops =
    [
      ("ping", `Ping);
      ("list", `List);
      ("run", `Run);
      ("compile", `Compile);
      ("profile", `Profile);
      ("analyze", `Analyze);
      ("inject", `Inject);
      ("sweep", `Sweep);
      ("cache-stats", `Cache_stats);
      ("metrics", `Metrics);
      ("metrics-text", `Metrics_text);
      ("shutdown", `Shutdown);
    ]
  in
  Arg.(
    required
    & pos 0 (some (enum ops)) None
    & info [] ~docv:"OP"
        ~doc:
          "Operation: ping, list, run, compile, profile, analyze, inject, sweep, cache-stats, \
           metrics, metrics-text (Prometheus text exposition) or shutdown.")

let client_app =
  Arg.(
    value
    & pos 1 (some Args.kernel_conv) None
    & info [] ~docv:"APP"
        ~doc:"Application kernel name (run/compile/profile/analyze/inject/sweep only).")

(* ------------------------------------------------------------------ *)
(* Command table                                                       *)

type command = { name : string; summary : string; term : unit Term.t }

let commands =
  [
    {
      name = "run";
      summary = "Compile and simulate one application.";
      term =
        Term.(
          const run_act $ Args.kernel $ Args.cluster $ Args.memory $ Args.scheme $ Args.window
          $ Args.fuse $ Args.fuse_capacity $ Args.metrics $ Args.format $ Args.jobs);
    };
    {
      name = "compare";
      summary = "Run default and partitioned placements and compare.";
      term =
        Term.(
          const compare_act $ Args.kernel $ Args.cluster $ Args.memory $ Args.window
          $ Args.fuse $ Args.metrics $ Args.format $ Args.jobs);
    };
    {
      name = "stats";
      summary = "Simulate with metrics enabled and print per-node/per-link breakdowns.";
      term =
        Term.(
          const stats_act $ Args.kernel $ Args.cluster $ Args.memory $ Args.scheme $ Args.window
          $ Args.fuse $ Args.format $ Args.jobs);
    };
    {
      name = "inject";
      summary =
        "Simulate under a deterministic fault plan (killed/degraded links, node stalls, MC \
         backpressure), optionally repairing the schedule around it.";
      term =
        Term.(
          const inject_act $ Args.kernel $ Args.cluster $ Args.memory $ Args.scheme
          $ Args.window $ Args.faults $ Args.fault_seed $ Args.repair $ Args.format
          $ Args.selfcheck $ Args.jobs);
    };
    {
      name = "trace";
      summary = "Simulate with tracing enabled and write Chrome trace_event JSON (Perfetto).";
      term =
        Term.(
          const trace_act $ Args.kernel $ Args.cluster $ Args.memory $ Args.scheme $ Args.window
          $ Args.out_file $ Args.format $ Args.selfcheck $ Args.jobs);
    };
    {
      name = "profile";
      summary =
        "Simulate with the data-movement attribution ledger and counter timeline enabled: \
         top-K movement sources, predicted-vs-measured reconciliation, optional Perfetto \
         counter tracks.";
      term =
        Term.(
          const profile_act $ Args.kernel $ Args.cluster $ Args.memory $ Args.scheme
          $ Args.window $ Args.interval $ Args.top $ Args.profile_out $ Args.spans
          $ Args.format $ Args.jobs);
    };
    {
      name = "analyze";
      summary =
        "Static cost model: symbolic footprints, reuse classes and closed-form per-statement \
         movement, reconciled against the measured ledger of one run; exit nonzero when the \
         totals diverge beyond --threshold. With --fusion, report the fusion decision table \
         (predicted vs measured saved flit-hops per fused chain) instead.";
      term =
        Term.(
          const analyze_act $ Args.kernel $ Args.cluster $ Args.memory $ Args.scheme
          $ Args.window $ Args.fuse $ Args.fuse_capacity $ Args.fusion $ Args.threshold
          $ Args.format $ Args.jobs);
    };
    { name = "list"; summary = "List the application kernels."; term = Term.(const list_act $ const ()) };
    {
      name = "codegen";
      summary = "Show the generated per-node subcomputation program for one window.";
      term = Term.(const codegen_act $ Args.kernel);
    };
    {
      name = "dot";
      summary = "Emit Graphviz DOT for a statement MST and one window's task graph.";
      term = Term.(const dot_act $ Args.kernel);
    };
    {
      name = "serve";
      summary =
        "Run the compile-as-a-service daemon: accept framed JSON requests on a Unix-domain \
         socket (or stdin with --stdio) and answer them from content-addressed result and \
         schedule caches.";
      term =
        Term.(
          const serve_act $ socket_arg $ stdio_arg $ demo_arg $ result_capacity_arg
          $ schedule_capacity_arg $ access_log_arg $ slow_ms_arg $ Args.jobs);
    };
    {
      name = "client";
      summary = "Send one request to a running serve daemon and print the response body.";
      term =
        Term.(
          const client_act $ op_arg $ client_app $ socket_arg $ Args.cluster $ Args.memory
          $ Args.scheme $ Args.window $ Args.faults $ Args.fault_seed $ Args.repair
          $ Args.interval $ Args.top $ Args.threshold $ Args.metrics $ meta_arg);
    };
    {
      name = "check";
      summary =
        "Lint every kernel's IR and validate the compiled schedules (dependence race detection) \
         under the default and partitioned schemes — plus the fused partitioned scheme with \
         --fuse; exit nonzero on any error.";
      term =
        Term.(
          const check_act $ Args.kernel_opt $ Args.cluster $ Args.memory $ Args.window
          $ Args.fuse $ Args.format $ Args.jobs);
    };
  ]

(* [bench] is a command group of its own: [bench diff] compares two
   benchmark snapshots (the perf-regression sentinel check.sh runs). *)
let bench_cmd =
  let diff =
    Cmd.v
      (Cmd.info "diff"
         ~doc:
           "Compare two BENCH_micro.json snapshots per benchmark and exit nonzero when any \
            grew beyond --threshold percent. The meta blocks (timestamp, commit, jobs, host) \
            are shown in the header but never affect the deltas.")
      Term.(
        const bench_diff_act $ bench_old_arg $ bench_new_arg $ bench_threshold_arg $ Args.format)
  in
  Cmd.group (Cmd.info "bench" ~doc:"Benchmark snapshot tooling (perf-regression sentinel).") [ diff ]

let () =
  let info = Cmd.info "ndp_run" ~doc:"Data-movement-aware computation partitioning playground." in
  let cmds = List.map (fun c -> Cmd.v (Cmd.info c.name ~doc:c.summary) c.term) commands in
  exit (Cmd.eval (Cmd.group info (cmds @ [ bench_cmd ])))
