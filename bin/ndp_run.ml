(* Command-line driver: compile one of the twelve application kernels under
   a placement scheme and simulate it on the KNL-like mesh.

     ndp_run list
     ndp_run run barnes --scheme partitioned --cluster quadrant --memory flat
     ndp_run compare water --window 4
     ndp_run codegen fft *)

open Cmdliner

let kernel_conv =
  let parse name =
    match Ndp_workloads.Suite.find name with
    | k -> Ok k
    | exception Not_found ->
      Error (`Msg (Printf.sprintf "unknown application %S (try `ndp_run list')" name))
  in
  Arg.conv (parse, fun ppf k -> Format.pp_print_string ppf k.Ndp_core.Kernel.name)

let cluster_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Ndp_noc.Cluster.of_string s) in
  Arg.conv (parse, fun ppf c -> Format.pp_print_string ppf (Ndp_noc.Cluster.to_string c))

let memory_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Ndp_sim.Config.memory_mode_of_string s) in
  Arg.conv (parse, fun ppf m -> Format.pp_print_string ppf (Ndp_sim.Config.memory_mode_to_string m))

let kernel_arg =
  Arg.(required & pos 0 (some kernel_conv) None & info [] ~docv:"APP" ~doc:"Application kernel name.")

let cluster_arg =
  Arg.(value & opt cluster_conv Ndp_noc.Cluster.Quadrant & info [ "cluster" ] ~doc:"Cluster mode: all-to-all, quadrant or snc-4.")

let memory_arg =
  Arg.(value & opt memory_conv Ndp_sim.Config.Flat & info [ "memory" ] ~doc:"Memory mode: flat, cache or hybrid.")

let window_arg =
  Arg.(value & opt (some int) None & info [ "window" ] ~doc:"Fixed window size (default: adaptive per nest).")

let scheme_arg =
  Arg.(value & opt (enum [ ("default", `Default); ("partitioned", `Partitioned) ]) `Partitioned
       & info [ "scheme" ] ~doc:"Computation placement: default or partitioned.")

let config_of cluster memory = Ndp_sim.Config.with_modes Ndp_sim.Config.default cluster memory

let scheme_of scheme window =
  match scheme with
  | `Default -> Ndp_core.Pipeline.Default
  | `Partitioned ->
    let w =
      match window with
      | None -> Ndp_core.Pipeline.Adaptive
      | Some k -> Ndp_core.Pipeline.Fixed k
    in
    Ndp_core.Pipeline.Partitioned { Ndp_core.Pipeline.partitioned_defaults with Ndp_core.Pipeline.window = w }

let print_result (r : Ndp_core.Pipeline.result) =
  let s = r.Ndp_core.Pipeline.stats in
  Printf.printf "%s / %s\n" r.Ndp_core.Pipeline.kernel_name r.Ndp_core.Pipeline.scheme_name;
  Printf.printf "  execution time     %d cycles\n" r.Ndp_core.Pipeline.exec_time;
  Printf.printf "  data movement      %d flit-hops over %d messages\n" s.Ndp_sim.Stats.hops
    s.Ndp_sim.Stats.messages;
  Printf.printf "  network latency    avg %.1f, max %d cycles\n" (Ndp_sim.Stats.avg_latency s)
    s.Ndp_sim.Stats.latency_max;
  Printf.printf "  L1 hit rate        %.1f%%   L2 hit rate %.1f%%\n"
    (100.0 *. Ndp_sim.Stats.l1_hit_rate s)
    (100.0 *. Ndp_sim.Stats.l2_hit_rate s);
  Printf.printf "  tasks              %d (%d statement instances)\n" r.Ndp_core.Pipeline.tasks_emitted
    r.Ndp_core.Pipeline.num_instances;
  Printf.printf "  synchronizations   %d\n" r.Ndp_core.Pipeline.sync_arcs;
  Printf.printf "  energy             %.0f pJ (%s)\n"
    (Ndp_sim.Energy.total r.Ndp_core.Pipeline.energy)
    (Format.asprintf "%a" Ndp_sim.Energy.pp r.Ndp_core.Pipeline.energy);
  (match r.Ndp_core.Pipeline.windows_chosen with
  | [] -> ()
  | ws ->
    Printf.printf "  windows            %s\n"
      (String.concat ", " (List.map (fun (n, w) -> Printf.sprintf "%s=%d" n w) ws)));
  Printf.printf "  predictor accuracy %.1f%%\n" (100.0 *. r.Ndp_core.Pipeline.predictor_accuracy)

let run_cmd =
  let act kernel cluster memory scheme window =
    let r = Ndp_core.Pipeline.run ~config:(config_of cluster memory) (scheme_of scheme window) kernel in
    print_result r
  in
  Cmd.v (Cmd.info "run" ~doc:"Compile and simulate one application.")
    Term.(const act $ kernel_arg $ cluster_arg $ memory_arg $ scheme_arg $ window_arg)

let compare_cmd =
  let act kernel cluster memory window =
    let config = config_of cluster memory in
    let d = Ndp_core.Pipeline.run ~config Ndp_core.Pipeline.Default kernel in
    let o = Ndp_core.Pipeline.run ~config (scheme_of `Partitioned window) kernel in
    print_result d;
    print_newline ();
    print_result o;
    let imp base opt = 100.0 *. float_of_int (base - opt) /. float_of_int (max 1 base) in
    Printf.printf "\nimprovement: exec %.1f%%, movement %.1f%%\n"
      (imp d.Ndp_core.Pipeline.exec_time o.Ndp_core.Pipeline.exec_time)
      (imp d.Ndp_core.Pipeline.stats.Ndp_sim.Stats.hops o.Ndp_core.Pipeline.stats.Ndp_sim.Stats.hops)
  in
  Cmd.v (Cmd.info "compare" ~doc:"Run default and partitioned placements and compare.")
    Term.(const act $ kernel_arg $ cluster_arg $ memory_arg $ window_arg)

let list_cmd =
  let act () =
    List.iter
      (fun name ->
        let k = Ndp_workloads.Suite.find name in
        Printf.printf "%-10s %s\n" name k.Ndp_core.Kernel.description)
      Ndp_workloads.Suite.names
  in
  Cmd.v (Cmd.info "list" ~doc:"List the application kernels.") Term.(const act $ const ())

let codegen_cmd =
  let act kernel =
    (* Render the subcomputation program of the first window of the first
       nest, Figure 8 style. *)
    let config = Ndp_sim.Config.default in
    let machine = Ndp_sim.Machine.create config in
    let insp = Ndp_core.Kernel.inspector kernel in
    Ndp_ir.Inspector.run insp;
    let address_of = Ndp_core.Kernel.address_of kernel in
    let ctx =
      Ndp_core.Context.create ~machine
        ~compiler_resolve:(Ndp_ir.Inspector.compiler_resolver insp ~address_of)
        ~runtime_resolve:(Ndp_ir.Inspector.runtime_resolver insp ~address_of)
        ~arrays:kernel.Ndp_core.Kernel.program.Ndp_ir.Loop.arrays
        ~options:(Ndp_core.Context.default_options config)
    in
    match kernel.Ndp_core.Kernel.program.Ndp_ir.Loop.nests with
    | [] -> prerr_endline "kernel has no loop nests"
    | nest :: _ ->
      let envs = Ndp_ir.Loop.iterations nest in
      let metas =
        List.concat
          (List.mapi
             (fun ii env ->
               List.mapi
                 (fun si stmt ->
                   {
                     Ndp_core.Window.group = (ii * List.length nest.Ndp_ir.Loop.body) + si;
                     default_node = ii mod Ndp_noc.Mesh.size (Ndp_sim.Machine.mesh machine);
                     inst = { Ndp_ir.Dependence.stmt_idx = si; stmt; env };
                   })
                 nest.Ndp_ir.Loop.body)
             envs)
      in
      let window = List.filteri (fun i _ -> i < 4) metas in
      let compiled = Ndp_core.Window.compile ctx window in
      List.iter
        (fun (m : Ndp_core.Window.meta) ->
          Printf.printf "S%d: %s  %s\n" m.Ndp_core.Window.group
            (Ndp_ir.Stmt.to_string m.Ndp_core.Window.inst.Ndp_ir.Dependence.stmt)
            (Format.asprintf "%a" Ndp_ir.Env.pp m.Ndp_core.Window.inst.Ndp_ir.Dependence.env))
        window;
      print_newline ();
      print_endline (Ndp_core.Codegen.emit (List.map fst compiled.Ndp_core.Window.tasks))
  in
  Cmd.v (Cmd.info "codegen" ~doc:"Show the generated per-node subcomputation program for one window.")
    Term.(const act $ kernel_arg)

let check_cmd =
  let format_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("human", Ndp_analysis.Diagnostic.Human);
               ("sexp", Ndp_analysis.Diagnostic.Sexp);
               ("jsonl", Ndp_analysis.Diagnostic.Jsonl);
             ])
          Ndp_analysis.Diagnostic.Human
      & info [ "format" ] ~doc:"Diagnostic output: human, sexp or jsonl.")
  in
  let kernel_opt =
    Arg.(value & pos 0 (some kernel_conv) None & info [] ~docv:"APP" ~doc:"Check one application only (default: the whole suite).")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ]
          ~doc:
            "Number of domains for the validation cells (default: \\$(b,NDP_JOBS) or the \
             recommended domain count). Output is identical at any job count.")
  in
  let act kernel cluster memory window format jobs =
    let config = config_of cluster memory in
    let kernels =
      match kernel with
      | Some k -> [ k ]
      | None -> List.map Ndp_workloads.Suite.find Ndp_workloads.Suite.names
    in
    let jobs =
      match jobs with Some j -> max 1 j | None -> Ndp_prelude.Pool.default_jobs ()
    in
    let schemes = [ Ndp_core.Pipeline.Default; scheme_of `Partitioned window ] in
    let reports = Ndp_analysis.Checker.check_suite ~config ?window ~jobs ~schemes kernels in
    print_endline (Ndp_analysis.Checker.render ~format reports);
    if Ndp_analysis.Checker.has_errors reports then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Lint every kernel's IR and validate the compiled schedules (dependence race \
          detection) under the default and partitioned schemes; exit nonzero on any error.")
    Term.(const act $ kernel_opt $ cluster_arg $ memory_arg $ window_arg $ format_arg $ jobs_arg)

let dot_cmd =
  let act kernel =
    let config = Ndp_sim.Config.default in
    let machine = Ndp_sim.Machine.create config in
    let insp = Ndp_core.Kernel.inspector kernel in
    Ndp_ir.Inspector.run insp;
    let address_of = Ndp_core.Kernel.address_of kernel in
    let ctx =
      Ndp_core.Context.create ~machine
        ~compiler_resolve:(Ndp_ir.Inspector.compiler_resolver insp ~address_of)
        ~runtime_resolve:(Ndp_ir.Inspector.runtime_resolver insp ~address_of)
        ~arrays:kernel.Ndp_core.Kernel.program.Ndp_ir.Loop.arrays
        ~options:(Ndp_core.Context.default_options config)
    in
    match kernel.Ndp_core.Kernel.program.Ndp_ir.Loop.nests with
    | [] -> prerr_endline "kernel has no loop nests"
    | nest :: _ ->
      let env = List.hd (Ndp_ir.Loop.iterations nest) in
      let stmt = List.hd nest.Ndp_ir.Loop.body in
      let split = Ndp_core.Splitter.split ctx ~store_node:0 stmt env in
      print_endline (Ndp_core.Graphviz.statement_mst split);
      let metas =
        List.mapi
          (fun si stmt ->
            {
              Ndp_core.Window.group = si;
              default_node = 0;
              inst = { Ndp_ir.Dependence.stmt_idx = si; stmt; env };
            })
          nest.Ndp_ir.Loop.body
      in
      let compiled = Ndp_core.Window.compile ctx metas in
      print_endline (Ndp_core.Graphviz.task_graph compiled.Ndp_core.Window.tasks)
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit Graphviz DOT for a statement MST and one window's task graph.")
    Term.(const act $ kernel_arg)

let () =
  let info = Cmd.info "ndp_run" ~doc:"Data-movement-aware computation partitioning playground." in
  exit (Cmd.eval (Cmd.group info [ run_cmd; compare_cmd; list_cmd; codegen_cmd; dot_cmd; check_cmd ]))
