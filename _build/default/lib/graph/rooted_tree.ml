type t = {
  root : int;
  parents : (int, int * int) Hashtbl.t; (* vertex -> parent, edge weight *)
  childmap : (int, int list) Hashtbl.t;
  order : int list; (* vertices in BFS order from the root *)
}

let of_edges ~root edges =
  let adj = Hashtbl.create 16 in
  let add u v w =
    let cur = Option.value (Hashtbl.find_opt adj u) ~default:[] in
    Hashtbl.replace adj u ((v, w) :: cur)
  in
  List.iter (fun (e : Kruskal.edge) -> add e.u e.v e.weight; add e.v e.u e.weight) edges;
  let parents = Hashtbl.create 16 in
  let childmap = Hashtbl.create 16 in
  let visited = Hashtbl.create 16 in
  Hashtbl.replace visited root ();
  let order = ref [ root ] in
  let queue = Queue.create () in
  Queue.push root queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let neighbors = Option.value (Hashtbl.find_opt adj u) ~default:[] in
    let attach (v, w) =
      if not (Hashtbl.mem visited v) then begin
        Hashtbl.replace visited v ();
        Hashtbl.replace parents v (u, w);
        let cur = Option.value (Hashtbl.find_opt childmap u) ~default:[] in
        Hashtbl.replace childmap u (v :: cur);
        order := v :: !order;
        Queue.push v queue
      end
      else
        match Hashtbl.find_opt parents u with
        | Some (p, _) when p = v -> ()
        | _ when v = root && u <> root -> ()
        | _ ->
          (* A visited neighbor that is not our parent means a cycle. *)
          if not (u = root && Hashtbl.mem parents v) then
            invalid_arg "Rooted_tree.of_edges: edge set contains a cycle"
    in
    List.iter attach (List.sort compare neighbors)
  done;
  if Hashtbl.length visited <> List.length edges + 1 then
    invalid_arg "Rooted_tree.of_edges: edge set is not a tree reaching the root";
  { root; parents; childmap; order = List.rev !order }

let root t = t.root

let children t v =
  List.sort compare (Option.value (Hashtbl.find_opt t.childmap v) ~default:[])

let parent t v = Option.map fst (Hashtbl.find_opt t.parents v)

let vertices t = t.order

let leaves t = List.filter (fun v -> children t v = []) t.order

let edge_weight t v =
  match Hashtbl.find_opt t.parents v with
  | Some (_, w) -> w
  | None -> invalid_arg "Rooted_tree.edge_weight: root has no parent edge"

let postorder t =
  let rec walk v acc = v :: List.fold_right walk (children t v) acc in
  List.rev (walk t.root [])

let rec depth t v =
  match parent t v with
  | None -> 0
  | Some p -> 1 + depth t p
