(** Minimum spanning trees / forests over weighted undirected edges. *)

type edge = { u : int; v : int; weight : int }

val mst : n:int -> edge list -> edge list
(** [mst ~n edges] runs Kruskal's algorithm over vertices [0 .. n-1].
    Edges are considered in increasing weight; ties are broken by the
    [(u, v)] pair so the result is deterministic. When the graph is not
    connected the minimum spanning forest is returned. *)

val total_weight : edge list -> int

val is_spanning : n:int -> edge list -> bool
(** Whether the edge set connects all [n] vertices. *)
