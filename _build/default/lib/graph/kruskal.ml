type edge = { u : int; v : int; weight : int }

let compare_edge a b =
  match compare a.weight b.weight with
  | 0 -> compare (a.u, a.v) (b.u, b.v)
  | c -> c

let mst ~n edges =
  let uf = Union_find.create n in
  let sorted = List.sort compare_edge edges in
  let keep e = Union_find.union uf e.u e.v in
  List.filter keep sorted

let total_weight edges = List.fold_left (fun acc e -> acc + e.weight) 0 edges

let is_spanning ~n edges =
  if n = 0 then true
  else begin
    let uf = Union_find.create n in
    List.iter (fun e -> ignore (Union_find.union uf e.u e.v)) edges;
    Union_find.count uf = 1
  end
