(** Rooted views of spanning trees.

    The subcomputation scheduler walks the statement MST from its leaves
    toward the node that stores the final result; this module provides that
    rooted structure. *)

type t

val of_edges : root:int -> Kruskal.edge list -> t
(** Orient an (acyclic, connected) edge set away from [root].
    Raises [Invalid_argument] if the edges contain a cycle or do not reach
    the root-connected component consistently. *)

val root : t -> int

val children : t -> int -> int list
(** Children in deterministic (ascending) order. *)

val parent : t -> int -> int option
(** [None] exactly for the root. *)

val vertices : t -> int list

val leaves : t -> int list

val edge_weight : t -> int -> int
(** Weight of the edge from a non-root vertex to its parent. *)

val postorder : t -> int list
(** Every vertex after all of its children. *)

val depth : t -> int -> int
(** Distance in edges from the root. *)
