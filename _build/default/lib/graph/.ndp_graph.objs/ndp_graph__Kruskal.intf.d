lib/graph/kruskal.mli:
