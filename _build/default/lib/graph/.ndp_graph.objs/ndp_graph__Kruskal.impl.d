lib/graph/kruskal.ml: List Union_find
