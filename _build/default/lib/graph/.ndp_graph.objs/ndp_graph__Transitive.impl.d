lib/graph/transitive.ml: Array List Queue
