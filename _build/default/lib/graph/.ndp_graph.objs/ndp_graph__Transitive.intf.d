lib/graph/transitive.mli:
