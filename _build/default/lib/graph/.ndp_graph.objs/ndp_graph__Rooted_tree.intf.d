lib/graph/rooted_tree.mli: Kruskal
