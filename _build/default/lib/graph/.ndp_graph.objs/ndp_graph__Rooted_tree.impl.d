lib/graph/rooted_tree.ml: Hashtbl Kruskal List Option Queue
