(** Reachability and redundant-edge elimination on DAGs.

    The synchronization minimizer drops a point-to-point synchronization
    [a -> b] whenever a longer chain from [a] to [b] already orders the two
    subcomputations (Section 4.5 of the paper). *)

val closure : n:int -> (int * int) list -> bool array array
(** [closure ~n edges] is the reachability matrix over vertices [0..n-1]. *)

val reduction : n:int -> (int * int) list -> (int * int) list
(** Transitive reduction: the subset of edges that are not implied by any
    other path. Input must be a DAG; raises [Invalid_argument] on cycles. *)

val is_dag : n:int -> (int * int) list -> bool
