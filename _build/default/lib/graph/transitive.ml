let adjacency ~n edges =
  let adj = Array.make n [] in
  List.iter (fun (u, v) -> adj.(u) <- v :: adj.(u)) edges;
  adj

let topological_order ~n edges =
  let adj = adjacency ~n edges in
  let indeg = Array.make n 0 in
  List.iter (fun (_, v) -> indeg.(v) <- indeg.(v) + 1) edges;
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.push v queue
  done;
  let order = ref [] in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    order := u :: !order;
    let relax v =
      indeg.(v) <- indeg.(v) - 1;
      if indeg.(v) = 0 then Queue.push v queue
    in
    List.iter relax adj.(u)
  done;
  if List.length !order <> n then None else Some (List.rev !order)

let is_dag ~n edges = topological_order ~n edges <> None

let closure ~n edges =
  let reach = Array.make_matrix n n false in
  List.iter (fun (u, v) -> reach.(u).(v) <- true) edges;
  (* Floyd-Warshall style closure; n is the number of subcomputations in a
     window, which stays small, so the cubic cost is immaterial. *)
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      if reach.(i).(k) then
        for j = 0 to n - 1 do
          if reach.(k).(j) then reach.(i).(j) <- true
        done
    done
  done;
  reach

let reduction ~n edges =
  if not (is_dag ~n edges) then invalid_arg "Transitive.reduction: graph has a cycle";
  let edges = List.sort_uniq compare edges in
  let adj = adjacency ~n edges in
  (* reach_without u v e: is v reachable from u using edges other than e? *)
  let redundant (u, v) =
    let visited = Array.make n false in
    let rec dfs x =
      if x = v then true
      else if visited.(x) then false
      else begin
        visited.(x) <- true;
        let step y = if x = u && y = v then false else dfs y in
        List.exists step adj.(x)
      end
    in
    dfs u
  in
  List.filter (fun e -> not (redundant e)) edges
