(** Ocean simulation (Splash-2): 5-point stencil relaxations on a 2D grid.
    Wide statements (five grid operands plus weights) whose neighbors live
    in different L2 banks give the partitioner a large network footprint to
    shrink — Ocean is among the paper's biggest winners (Figure 13). *)

let dim = 192
let n = dim * dim

let kernel () =
  Spec.kernel ~name:"ocean" ~description:"Red-black 5-point stencil relaxation"
    ~arrays:
      [
        ("g", n, 8); ("gn", n, 8); ("w0", n, 8); ("w1", n, 8);
        ("psi", n, 8); ("vor", n, 8); ("tmp", n, 8);
      ]
    ~nests:
      [
        Spec.nest "relax"
          [ ("i", 1, 15); ("j", 1, 15) ]
          [
            Printf.sprintf
              "gn[%d*i+j] = w0[%d*i+j] * (g[%d*i+j-1] + g[%d*i+j+1] + g[%d*i+j-%d] + g[%d*i+j+%d]) + w1[%d*i+j] * g[%d*i+j]"
              dim dim dim dim dim dim dim dim dim dim;
            Printf.sprintf
              "tmp[%d*i+j] = gn[%d*i+j] - g[%d*i+j] + w1[%d*i+j] * psi[%d*i+j]"
              dim dim dim dim dim;
          ];
        Spec.nest "vorticity"
          [ ("i", 1, 15); ("j", 1, 15) ]
          [
            Printf.sprintf
              "vor[%d*i+j] = (psi[%d*i+j-1] + psi[%d*i+j+1] + psi[%d*i+j-%d] + psi[%d*i+j+%d]) * w0[%d*i+j]"
              dim dim dim dim dim dim dim dim;
          ];
      ]
    ~hot:[ "g"; "gn"; "psi"; "w0"; "w1" ]
    ()
