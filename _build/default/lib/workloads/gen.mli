(** Deterministic index-array generation for the irregular kernels. *)

val permutation : seed:int -> int -> int array
(** Random permutation of [0..n-1]. *)

val uniform : seed:int -> n:int -> range:int -> int array
(** [n] uniform indices into [0..range-1]. *)

val clustered : seed:int -> n:int -> range:int -> spread:int -> int array
(** Indices with spatial locality: a slowly drifting base plus a bounded
    random offset — the shape of neighbor lists and interaction lists. *)

val strided_neighbors : n:int -> range:int -> stride:int -> int array
(** [i -> (i * stride) mod range]: deterministic gather pattern. *)
