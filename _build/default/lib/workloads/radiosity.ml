(** Radiosity (Splash-2): hierarchical light-transport gathering across
    irregular patch interaction lists. Heavily indirect, mixing form-factor
    multiplies with visibility shifts. *)

let n = 24 * 1024
let trips = 200

let kernel () =
  let el1 = Gen.uniform ~seed:41 ~n:trips ~range:n in
  let el2 = Gen.clustered ~seed:42 ~n:trips ~range:n ~spread:1024 in
  Spec.kernel ~name:"radiosity" ~description:"Hierarchical radiosity gathering"
    ~arrays:
      [
        ("rad", n, 8); ("ff", n, 8); ("emit", n, 8); ("refl", n, 8);
        ("area", n, 8); ("vis", n, 4); ("bits", n, 4); ("acc", n, 8);
        ("el1", trips, 4); ("el2", trips, 4);
      ]
    ~nests:
      [
        (Spec.nest "gather"
           [ ("i", 0, trips) ]
           [
              "acc[i] = acc[i] + ff[el1[i]] * rad[el1[i]] + ff[el2[i]] * rad[el2[i]]";
              "rad[i] = emit[i] + refl[i] * acc[i]";
              "vis[i] = (bits[i] >> vis[i]) & bits[i]";
            ]);
        (Spec.nest "normalize"
           [ ("i", 0, trips) ]
           [ "rad[i] = rad[i] / area[i]"; "acc[i] = acc[i] - rad[i] * area[i]" ]);
      ]
    ~index_arrays:[ ("el1", el1); ("el2", el2) ]
    ~hot:[ "rad"; "ff"; "acc" ]
    ()
