let permutation ~seed n =
  let rng = Ndp_prelude.Rng.create seed in
  let a = Array.init n Fun.id in
  Ndp_prelude.Rng.shuffle rng a;
  a

let uniform ~seed ~n ~range =
  let rng = Ndp_prelude.Rng.create seed in
  Array.init n (fun _ -> Ndp_prelude.Rng.int rng range)

let clustered ~seed ~n ~range ~spread =
  let rng = Ndp_prelude.Rng.create seed in
  Array.init n (fun i ->
      let base = i * range / max 1 n in
      let off = Ndp_prelude.Rng.int rng (2 * spread) - spread in
      ((base + off) mod range + range) mod range)

let strided_neighbors ~n ~range ~stride = Array.init n (fun i -> i * stride mod range)
