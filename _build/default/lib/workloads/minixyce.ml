(** MiniXyce (Mantevo): circuit transient simulation — a sparse
    matrix-vector product in compressed form (indirect column indices)
    plus a regular RHS update. Mostly affine (93.8% analyzable). *)

let n = 24 * 1024
let trips = 240

let kernel () =
  let colidx = Gen.clustered ~seed:81 ~n:trips ~range:n ~spread:512 in
  Spec.kernel ~name:"minixyce" ~description:"MiniXyce sparse circuit solve step"
    ~arrays:
      [
        ("aval", n, 8); ("xvec", n, 8); ("yvec", n, 8); ("rhs", n, 8);
        ("gmat", n, 8); ("cvec", n, 8); ("dt0", n, 8);
        ("colidx", trips, 4);
      ]
    ~nests:
      [
        (Spec.nest "spmv"
           [ ("i", 0, trips) ]
           [
              "yvec[i] = yvec[i] + aval[i] * xvec[colidx[i]]";
              "yvec[i] = yvec[i] + gmat[i] * xvec[i] + cvec[i] * xvec[i+1]";
            ]);
        (Spec.nest "update"
           [ ("i", 0, trips) ]
           [
              "rhs[i] = rhs[i] + yvec[i] * dt0[i] - cvec[i] * dt0[i]";
              "xvec[i] = xvec[i] + rhs[i] * dt0[i]";
            ]);
      ]
    ~index_arrays:[ ("colidx", colidx) ]
    ~hot:[ "aval"; "xvec"; "yvec" ]
    ()
