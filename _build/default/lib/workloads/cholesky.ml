(** Cholesky factorization (Splash-2): short update statements with few
    operands and a heavy multiply/divide mix. The small per-statement
    network footprint makes the partitioner's gains modest — the behaviour
    the paper reports for this application. *)

let n = 32 * 1024
let trips = 240

let kernel () =
  Spec.kernel ~name:"cholesky" ~description:"Sparse Cholesky factorization updates"
    ~arrays:[ ("a", n, 8); ("l", n, 8); ("u", n, 8); ("dinv", n, 8); ("col", n, 8) ]
    ~nests:
      [
        (Spec.nest "cdiv"
           [ ("i", 0, trips) ]
           [ "l[i] = a[i] / dinv[i]"; "col[i] = l[i] * dinv[i]" ]);
        (Spec.nest "cmod"
           [ ("i", 0, trips) ]
           [
              "a[i] = a[i] - l[i] * u[i]";
              "a[i+1] = a[i+1] - l[i] * u[i+1]";
              "a[i+2] = a[i+2] - l[i] * u[i+2]";
            ]);
      ]
    ~hot:[ "a"; "l"; "u" ]
    ()
