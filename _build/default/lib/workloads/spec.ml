open Ndp_ir

type nest_spec = {
  label : string;
  vars : (string * int * int) list;
  body : string list;
  sweeps : int;
}

let nest ?(sweeps = 3) label vars body = { label; vars; body; sweeps }

let kernel ~name ~description ~arrays ~nests ?(index_arrays = []) ?(hot = []) () =
  let arrays = Array_decl.layout arrays in
  let build_nest spec =
    let vars = List.map (fun (var, lo, hi) -> { Loop.var; lo; hi }) spec.vars in
    Loop.nest ~sweeps:spec.sweeps spec.label vars (Parser.statements spec.body)
  in
  let program = Loop.program name ~arrays ~nests:(List.map build_nest nests) in
  Ndp_core.Kernel.make ~name ~description ~program ~index_arrays ~hot_arrays:hot ()
