(** MiniMD (Mantevo): Lennard-Jones force kernel over explicit neighbor
    lists. Very wide statements plus indirect neighbor gathers — one of
    the paper's biggest data-movement winners. *)

let n = 24 * 1024
let trips = 190

let kernel () =
  let nb = Gen.clustered ~seed:71 ~n:trips ~range:n ~spread:64 in
  let nb2 = Gen.clustered ~seed:72 ~n:trips ~range:n ~spread:64 in
  Spec.kernel ~name:"minimd" ~description:"MiniMD Lennard-Jones force kernel"
    ~arrays:
      [
        ("x", n, 8); ("y", n, 8); ("z", n, 8);
        ("fx", n, 8); ("fy", n, 8); ("fz", n, 8);
        ("sig", n, 8); ("eps", n, 8); ("en", n, 8);
        ("nb", trips, 4); ("nb2", trips, 4);
      ]
    ~nests:
      [
        (Spec.nest "force"
           [ ("i", 0, trips) ]
           [
              "fx[i] = fx[i] + eps[i] * (x[nb[i]] - x[i]) * sig[i] + eps[i] * (x[nb2[i]] - x[i])";
              "fy[i] = fy[i] + eps[i] * (y[nb[i]] - y[i]) * sig[i] + eps[i] * (y[nb2[i]] - y[i])";
              "fz[i] = fz[i] + eps[i] * (z[nb[i]] - z[i]) * sig[i] + eps[i] * (z[nb2[i]] - z[i])";
              "en[i] = en[i] + sig[i] / eps[i] + sig[i] * eps[i]";
            ]);
        (Spec.nest "integrate"
           [ ("i", 0, trips) ]
           [
              "x[i] = x[i] + fx[i] * sig[i]";
              "y[i] = y[i] + fy[i] * sig[i]";
              "z[i] = z[i] + fz[i] * sig[i]";
            ]);
      ]
    ~index_arrays:[ ("nb", nb); ("nb2", nb2) ]
    ~hot:[ "x"; "y"; "z"; "fx"; "fy"; "fz" ]
    ()
