(** Compact kernel builder used by all twelve application models. *)

type nest_spec = {
  label : string;
  vars : (string * int * int) list; (** (name, lo, hi), outermost first *)
  body : string list; (** statements in {!Ndp_ir.Parser} syntax *)
  sweeps : int; (** outer timing-loop repetitions *)
}

val nest : ?sweeps:int -> string -> (string * int * int) list -> string list -> nest_spec

val kernel :
  name:string ->
  description:string ->
  arrays:(string * int * int) list ->
  nests:nest_spec list ->
  ?index_arrays:(string * int array) list ->
  ?hot:string list ->
  unit ->
  Ndp_core.Kernel.t
