(** Barnes-Hut N-body (Splash-2): tree-walk force accumulation with
    indirect neighbor references, followed by a regular position update.
    Long statements give the partitioner many operands per MST; the
    indirect tree references keep static analyzability near the paper's
    68% (Table 1). *)

let n = 24 * 1024
let trips = 200

let kernel () =
  let nb1 = Gen.clustered ~seed:11 ~n:trips ~range:n ~spread:96 in
  let nb2 = Gen.clustered ~seed:12 ~n:trips ~range:n ~spread:96 in
  let nb3 = Gen.clustered ~seed:13 ~n:trips ~range:n ~spread:384 in
  Spec.kernel ~name:"barnes" ~description:"Barnes-Hut N-body tree force computation"
    ~arrays:
      [
        ("px", n, 8); ("py", n, 8); ("pz", n, 8); ("m", n, 8);
        ("fx", n, 8); ("fy", n, 8); ("fz", n, 8); ("pot", n, 8);
        ("vx", n, 8); ("vy", n, 8); ("vz", n, 8); ("dt", n, 8);
        ("d", n, 8); ("cell", n, 4); ("ix", n, 4); ("iy", n, 4);
        ("s1", n, 4); ("mask1", n, 4);
        ("nb1", trips, 4); ("nb2", trips, 4); ("nb3", trips, 4);
      ]
    ~nests:
      [
        (Spec.nest "force"
           [ ("i", 0, trips) ]
           [
              "fx[i] = fx[i] + m[nb1[i]] * (px[nb1[i]] - px[i]) + m[nb2[i]] * (px[nb2[i]] - px[i])";
              "fy[i] = fy[i] + m[nb1[i]] * (py[nb1[i]] - py[i]) + m[nb2[i]] * (py[nb2[i]] - py[i])";
              "fz[i] = fz[i] + m[nb3[i]] * (pz[nb3[i]] - pz[i]) + d[i] * pz[i]";
              "pot[i] = pot[i] + m[nb1[i]] / d[i] + m[nb2[i]] / d[i]";
            ]);
        (Spec.nest "update"
           [ ("i", 0, trips) ]
           [
              "vx[i] = vx[i] + fx[i] * dt[i]";
              "vy[i] = vy[i] + fy[i] * dt[i]";
              "vz[i] = vz[i] + fz[i] * dt[i]";
              "px[i] = px[i] + vx[i] * dt[i]";
            ]);
        (Spec.nest "cellkey"
           [ ("i", 0, trips) ]
           [ "cell[i] = (ix[i] >> s1[i]) & mask1[i] | (iy[i] >> s1[i]) & mask1[i]" ]);
      ]
    ~index_arrays:[ ("nb1", nb1); ("nb2", nb2); ("nb3", nb3) ]
    ~hot:[ "px"; "py"; "pz"; "m"; "fx"; "fy"; "fz" ]
    ()
