(** Fast Multipole Method (Splash-2): multipole-to-local translations with
    parenthesized sub-expressions (exercising the level-based splitter) and
    interaction lists as indirect references (~74% analyzable, Table 1). *)

let n = 24 * 1024
let trips = 180

let kernel () =
  let il1 = Gen.clustered ~seed:31 ~n:trips ~range:n ~spread:768 in
  let il2 = Gen.clustered ~seed:32 ~n:trips ~range:n ~spread:768 in
  Spec.kernel ~name:"fmm" ~description:"FMM multipole-to-local translation"
    ~arrays:
      [
        ("mre", n, 8); ("mim", n, 8); ("lre", n, 8); ("lim", n, 8);
        ("cx", n, 8); ("cy", n, 8); ("pw", n, 8); ("q", n, 8);
        ("il1", trips, 4); ("il2", trips, 4);
      ]
    ~nests:
      [
        (Spec.nest "m2l"
           [ ("i", 0, trips) ]
           [
              "lre[i] = lre[i] + pw[i] * (mre[il1[i]] * cx[i] - mim[il1[i]] * cy[i])";
              "lim[i] = lim[i] + pw[i] * (mre[il1[i]] * cy[i] + mim[il1[i]] * cx[i])";
              "lre[i+1] = lre[i+1] + pw[i] * (mre[il2[i]] * cx[i] - mim[il2[i]] * cy[i])";
              "lim[i+1] = lim[i+1] + pw[i] * (mre[il2[i]] * cy[i] + mim[il2[i]] * cx[i])";
            ]);
        (Spec.nest "l2p"
           [ ("i", 0, trips) ]
           [
              "q[i] = q[i] + lre[i] * cx[i] + lim[i] * cy[i]";
              "pw[i] = pw[i] * cx[i] / cy[i]";
            ]);
      ]
    ~index_arrays:[ ("il1", il1); ("il2", il2) ]
    ~hot:[ "mre"; "mim"; "lre"; "lim" ]
    ()
