(** 1D FFT (Splash-2): radix-2 butterflies over real/imaginary planes plus
    a bit-reversal permutation (the only indirect access). Butterfly
    statements share twiddle factors across the real and imaginary
    statements of one butterfly, which the window mechanism can reuse. *)

let n = 24 * 1024
let trips = 200

let kernel () =
  let rev = Gen.permutation ~seed:21 trips in
  Spec.kernel ~name:"fft" ~description:"Radix-2 FFT butterflies and bit-reversal"
    ~arrays:
      [
        ("ar", n, 8); ("ai", n, 8); ("br", n, 8); ("bi", n, 8);
        ("wr", n, 8); ("wi", n, 8); ("xr", n, 8); ("xi", n, 8);
        ("yr", n, 8); ("yi", n, 8); ("rev", trips, 4);
      ]
    ~nests:
      [
        (Spec.nest "butterfly"
           [ ("i", 0, trips) ]
           [
              "xr[i] = ar[i] + wr[i] * br[i] - wi[i] * bi[i]";
              "xi[i] = ai[i] + wr[i] * bi[i] + wi[i] * br[i]";
              "yr[i] = ar[i] - wr[i] * br[i] + wi[i] * bi[i]";
              "yi[i] = ai[i] - wr[i] * bi[i] - wi[i] * br[i]";
            ]);
        (Spec.nest "bitrev"
           [ ("i", 0, trips) ]
           [ "ar[i] = xr[rev[i]]  + yr[i] * wi[i]"; "ai[i] = xi[rev[i]] + yi[i] * wr[i]" ]);
      ]
    ~index_arrays:[ ("rev", rev) ]
    ~hot:[ "ar"; "ai"; "br"; "bi"; "wr"; "wi" ]
    ()
