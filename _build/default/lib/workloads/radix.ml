(** Radix sort (Splash-2): digit extraction (shift/mask heavy — the
    largest "other" op fraction in Table 3) and histogram scatter through
    an indirect key. *)

let n = 24 * 1024
let trips = 260

let kernel () =
  let key = Gen.clustered ~seed:51 ~n:trips ~range:n ~spread:512 in
  Spec.kernel ~name:"radix" ~description:"Radix sort digit histogramming"
    ~arrays:
      [
        ("k", n, 4); ("dig", n, 4); ("msk", n, 4); ("sh", n, 4);
        ("hist", n, 4); ("one", n, 4); ("rank", n, 4); ("out", n, 4);
        ("key", trips, 4);
      ]
    ~nests:
      [
        (Spec.nest "digits"
           [ ("i", 0, trips) ]
           [
              "dig[i] = (k[i] >> sh[i]) & msk[i]";
              "hist[key[i]] = hist[key[i]] + one[i]";
            ]);
        (Spec.nest "scatter"
           [ ("i", 0, trips) ]
           [
              "rank[i] = hist[key[i]] + dig[i]";
              "out[key[i]] = k[i] + rank[i] * one[i]";
            ]);
      ]
    ~index_arrays:[ ("key", key) ]
    ~hot:[ "k"; "hist"; "out" ]
    ()
