(** Water-nsquared (Splash-2): intra/inter-molecular force accumulation.
    Addition-dominated (Table 3: 58.1% add/sub) with moderate statement
    width and strong cross-statement operand sharing. *)

let n = 24 * 1024
let trips = 220

let kernel () =
  Spec.kernel ~name:"water" ~description:"Water molecular dynamics forces"
    ~arrays:
      [
        ("rx", n, 8); ("ry", n, 8); ("rz", n, 8);
        ("gx", n, 8); ("gy", n, 8); ("gz", n, 8);
        ("q", n, 8); ("cut", n, 8); ("pot", n, 8);
      ]
    ~nests:
      [
        (Spec.nest "intra"
           [ ("i", 0, trips) ]
           [
              "gx[i] = gx[i] + q[i] * (rx[i] - rx[i+1]) + cut[i]";
              "gy[i] = gy[i] + q[i] * (ry[i] - ry[i+1]) + cut[i]";
              "gz[i] = gz[i] + q[i] * (rz[i] - rz[i+1]) + cut[i]";
            ]);
        (Spec.nest "potential"
           [ ("i", 0, trips) ]
           [
              "pot[i] = pot[i] + gx[i] + gy[i] + gz[i]";
              "q[i] = q[i] + pot[i] / cut[i]";
            ]);
      ]
    ~hot:[ "rx"; "ry"; "rz"; "gx"; "gy"; "gz" ]
    ()
