(** Raytrace (Splash-2): ray-object intersection tests walking indirect
    object lists; multiply/divide dominated (Table 3: 49.7%). *)

let n = 24 * 1024
let trips = 200

let kernel () =
  let obj = Gen.clustered ~seed:61 ~n:trips ~range:n ~spread:160 in
  Spec.kernel ~name:"raytrace" ~description:"Ray-object intersection kernel"
    ~arrays:
      [
        ("ox", n, 8); ("oy", n, 8); ("oz", n, 8); ("r2", n, 8);
        ("dx", n, 8); ("dy", n, 8); ("dz", n, 8);
        ("tmin", n, 8); ("hit", n, 8); ("shade", n, 8);
        ("obj", trips, 4);
      ]
    ~nests:
      [
        (Spec.nest "intersect"
           [ ("i", 0, trips) ]
           [
              "tmin[i] = (ox[obj[i]] * dx[i] + oy[obj[i]] * dy[i] + oz[obj[i]] * dz[i]) / r2[obj[i]]";
              "hit[i] = hit[i] + tmin[i] * tmin[i] - r2[obj[i]]";
            ]);
        (Spec.nest "shade"
           [ ("i", 0, trips) ]
           [
              "shade[i] = hit[i] * dx[i] + hit[i] * dy[i] + hit[i] * dz[i]";
              "shade[i+1] = shade[i+1] + shade[i] / tmin[i]";
            ]);
      ]
    ~index_arrays:[ ("obj", obj) ]
    ~hot:[ "ox"; "oy"; "oz"; "hit" ]
    ()
