lib/workloads/fmm.ml: Gen Spec
