lib/workloads/minixyce.ml: Gen Spec
