lib/workloads/gen.mli:
