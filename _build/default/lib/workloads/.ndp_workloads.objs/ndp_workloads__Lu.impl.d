lib/workloads/lu.ml: Printf Spec
