lib/workloads/suite.ml: Barnes Cholesky Fft Fmm List Lu Minimd Minixyce Ocean Radiosity Radix Raytrace Water
