lib/workloads/water.ml: Spec
