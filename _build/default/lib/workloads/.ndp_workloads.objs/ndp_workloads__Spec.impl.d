lib/workloads/spec.ml: Array_decl List Loop Ndp_core Ndp_ir Parser
