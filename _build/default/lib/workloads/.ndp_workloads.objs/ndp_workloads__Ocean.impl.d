lib/workloads/ocean.ml: Printf Spec
