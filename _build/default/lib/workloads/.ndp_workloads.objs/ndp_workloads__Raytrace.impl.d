lib/workloads/raytrace.ml: Gen Spec
