lib/workloads/gen.ml: Array Fun Ndp_prelude
