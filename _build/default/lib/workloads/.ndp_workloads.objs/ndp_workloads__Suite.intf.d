lib/workloads/suite.mli: Ndp_core
