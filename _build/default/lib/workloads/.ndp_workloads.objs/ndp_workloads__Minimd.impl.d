lib/workloads/minimd.ml: Gen Spec
