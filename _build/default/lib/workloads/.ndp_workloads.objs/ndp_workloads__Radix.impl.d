lib/workloads/radix.ml: Gen Spec
