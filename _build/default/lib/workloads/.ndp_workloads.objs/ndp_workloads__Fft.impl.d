lib/workloads/fft.ml: Gen Spec
