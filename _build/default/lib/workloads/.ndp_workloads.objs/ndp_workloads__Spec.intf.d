lib/workloads/spec.mli: Ndp_core
