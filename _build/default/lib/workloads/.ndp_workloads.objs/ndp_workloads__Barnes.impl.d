lib/workloads/barnes.ml: Gen Spec
