lib/workloads/radiosity.ml: Gen Spec
