lib/workloads/cholesky.ml: Spec
