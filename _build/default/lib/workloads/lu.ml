(** Dense LU factorization (Splash-2): rank-1 trailing-matrix updates over
    a 2D nest. Statements are short (three operands) and mul/div heavy, so
    the original network footprint per statement is small — the paper
    observes correspondingly modest movement reductions. *)

let dim = 224
let n = dim * dim

let kernel () =
  Spec.kernel ~name:"lu" ~description:"Dense LU trailing submatrix update"
    ~arrays:[ ("a", n, 8); ("lcol", n, 8); ("urow", n, 8); ("piv", n, 8) ]
    ~nests:
      [
        (Spec.nest "pivot"
           [ ("i", 0, 200) ]
           [ "lcol[i] = a[i] / piv[i]" ]);
        Spec.nest "update"
          [ ("i", 0, 14); ("j", 0, 14) ]
          [
            Printf.sprintf "a[%d*i+j] = a[%d*i+j] - lcol[i] * urow[j]" dim dim;
            Printf.sprintf "a[%d*i+j+1] = a[%d*i+j+1] - lcol[i] * urow[j+1]" dim dim;
          ];
      ]
    ~hot:[ "a"; "lcol"; "urow" ]
    ()
