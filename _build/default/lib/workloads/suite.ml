let builders =
  [
    ("barnes", Barnes.kernel);
    ("cholesky", Cholesky.kernel);
    ("fft", Fft.kernel);
    ("fmm", Fmm.kernel);
    ("lu", Lu.kernel);
    ("ocean", Ocean.kernel);
    ("radiosity", Radiosity.kernel);
    ("radix", Radix.kernel);
    ("raytrace", Raytrace.kernel);
    ("water", Water.kernel);
    ("minimd", Minimd.kernel);
    ("minixyce", Minixyce.kernel);
  ]

let all () = List.map (fun (_, build) -> build ()) builders

let names = List.map fst builders

let find name =
  match List.assoc_opt name builders with
  | Some build -> build ()
  | None -> raise Not_found
