lib/mem/miss_predictor.mli: Addr_map
