lib/mem/snuca.mli: Addr_map Ndp_noc
