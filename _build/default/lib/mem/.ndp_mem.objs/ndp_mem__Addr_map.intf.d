lib/mem/addr_map.mli:
