lib/mem/page_alloc.ml: Addr_map Hashtbl Ndp_prelude
