lib/mem/addr_map.ml:
