lib/mem/cache.mli:
