lib/mem/snuca.ml: Addr_map List Ndp_noc
