lib/mem/page_alloc.mli: Addr_map
