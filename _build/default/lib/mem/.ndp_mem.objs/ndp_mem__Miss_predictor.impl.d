lib/mem/miss_predictor.ml: Addr_map Hashtbl
