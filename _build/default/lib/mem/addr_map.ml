type t = {
  line_bits : int;
  page_bits : int;
  channel_bits : int;
  rank_bits : int;
  dram_bank_bits : int;
  num_l2_banks : int;
}

let create ?(line_bits = 6) ?(page_bits = 12) ?(channel_bits = 2) ?(rank_bits = 2)
    ?(dram_bank_bits = 3) ~num_l2_banks () =
  if num_l2_banks <= 0 then invalid_arg "Addr_map.create: need at least one L2 bank";
  { line_bits; page_bits; channel_bits; rank_bits; dram_bank_bits; num_l2_banks }

let line_bits t = t.line_bits
let page_bits t = t.page_bits
let num_channels t = 1 lsl t.channel_bits

let line_of_addr t addr = addr lsr t.line_bits

let page_of_addr t addr = addr lsr t.page_bits

let l2_bank t addr = line_of_addr t addr mod t.num_l2_banks

let field addr ~shift ~bits = (addr lsr shift) land ((1 lsl bits) - 1)

let channel t addr = field addr ~shift:t.page_bits ~bits:t.channel_bits

let rank t addr = field addr ~shift:(t.page_bits + t.channel_bits) ~bits:t.rank_bits

let dram_bank t addr =
  field addr ~shift:(t.page_bits + t.channel_bits + t.rank_bits) ~bits:t.dram_bank_bits

let same_line t a b = line_of_addr t a = line_of_addr t b
