(** Compile-time L2 hit/miss prediction (Section 4.1, Table 2).

    When the predictor believes a reference misses in the shared L2, the
    partitioner uses the servicing memory controller, rather than the home
    bank, as the data's location. The predictor approximates stack reuse
    distance: a block is predicted to hit if it was touched within the last
    [capacity_blocks] accesses.

    Protocol: the compiler calls [predict] while partitioning; when the
    access actually executes, the runtime calls [confirm] with the earlier
    prediction and the ground-truth outcome, which both scores accuracy
    (Table 2) and advances the predictor's reuse state. Accesses that were
    never predicted still advance the state via [note_access]. *)

type t

val create : capacity_blocks:int -> Addr_map.t -> t

val predict : t -> int -> bool
(** [predict t addr]: [true] means "expected to hit in L2". *)

val confirm : t -> addr:int -> predicted:bool -> hit:bool -> unit

val note_access : t -> int -> unit

val accuracy : t -> float
(** Fraction of confirmed predictions that were correct. *)

val observations : t -> int
