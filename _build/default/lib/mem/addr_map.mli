(** Physical address mapping (Figure 2 of the paper).

    Two granularities are modelled:
    - {b cache-line granularity} over L2 banks: consecutive 64B lines map to
      consecutive banks (bits 6..10 in the paper's 32-bank example);
    - {b page granularity} over the memory system: within the page number,
      the low bits select the channel, then the rank, then the DRAM bank. *)

type t

val create :
  ?line_bits:int ->
  ?page_bits:int ->
  ?channel_bits:int ->
  ?rank_bits:int ->
  ?dram_bank_bits:int ->
  num_l2_banks:int ->
  unit ->
  t
(** Defaults follow the paper: 64B lines ([line_bits = 6]), 4KB pages
    ([page_bits = 12]), 4 channels, 4 ranks per channel, 8 banks per rank. *)

val line_bits : t -> int
val page_bits : t -> int
val num_channels : t -> int

val line_of_addr : t -> int -> int
(** Cache-line (block) number of a physical address. *)

val page_of_addr : t -> int -> int

val l2_bank : t -> int -> int
(** Home L2 bank index of a physical address (cache-line interleaved). *)

val channel : t -> int -> int
(** Memory channel of a physical address (page-granularity bits). *)

val rank : t -> int -> int

val dram_bank : t -> int -> int

val same_line : t -> int -> int -> bool
(** Whether two addresses fall in the same cache line (spatial locality). *)
