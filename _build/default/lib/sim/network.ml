type t = {
  mesh : Ndp_noc.Mesh.t;
  config : Config.t;
  (* Per-link utilization accumulated in fixed time epochs. The engine
     replays tasks in program order while node clocks advance at different
     rates, so sends are observed out of simulated-time order; bucketing
     makes contention independent of processing order. *)
  util : (int * int, int) Hashtbl.t; (* (link index, epoch) -> busy cycles *)
  mutable distance_factor : float;
}

let epoch_bits = 8
(* 256-cycle epochs: short enough to capture bursts, long enough that a
   message's own service time fits. *)

let epoch_span = 1 lsl epoch_bits

let create (config : Config.t) =
  let mesh = Config.mesh config in
  { mesh; config; util = Hashtbl.create 4096; distance_factor = 1.0 }

let set_distance_factor t f =
  if f < 0.0 || f > 1.0 then invalid_arg "Network.set_distance_factor: factor must be in [0,1]";
  t.distance_factor <- f

(* Under a distance factor < 1 we traverse only a prefix of the route,
   modelling a counterfactual where data had to travel proportionally
   fewer links. *)
let effective_route t route =
  if t.distance_factor >= 1.0 then route
  else begin
    let n = List.length route in
    let keep = int_of_float (Float.round (t.distance_factor *. float_of_int n)) in
    List.filteri (fun i _ -> i < keep) route
  end

let send t ~time ~src ~dst ~bytes ~stats =
  if src = dst then time
  else begin
    let flits = Config.flits_of_bytes t.config bytes in
    let route = effective_route t (Ndp_noc.Mesh.xy_route t.mesh ~src ~dst) in
    let service = flits * t.config.Config.link_service_cycles in
    let traverse now link =
      let idx = Ndp_noc.Mesh.link_index t.mesh link in
      let key = (idx, now lsr epoch_bits) in
      let load = Option.value (Hashtbl.find_opt t.util key) ~default:0 in
      Hashtbl.replace t.util key (load + service);
      (* Queueing: demand beyond the epoch's capacity waits. *)
      let wait = max 0 (load + service - epoch_span) in
      now + t.config.Config.hop_cycles + (service - 1) + wait
    in
    let arrival = List.fold_left traverse time route in
    let hops = List.length route in
    stats.Stats.hops <- stats.Stats.hops + (hops * flits);
    stats.Stats.messages <- stats.Stats.messages + 1;
    let latency = arrival - time in
    stats.Stats.latency_sum <- stats.Stats.latency_sum + latency;
    if latency > stats.Stats.latency_max then stats.Stats.latency_max <- latency;
    arrival
  end

let reset t = Hashtbl.reset t.util

let mesh t = t.mesh
