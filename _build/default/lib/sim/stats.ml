type t = {
  mutable l1_hits : int;
  mutable l1_misses : int;
  mutable l2_hits : int;
  mutable l2_misses : int;
  mutable mcdram_accesses : int;
  mutable ddr_accesses : int;
  mutable hops : int;
  mutable messages : int;
  mutable latency_sum : int;
  mutable latency_max : int;
  mutable ops : int;
  mutable syncs : int;
  mutable tasks : int;
  mutable finish_time : int;
  mutable load_wait : int;
  mutable result_wait : int;
  mutable invalidations : int;
  mutable prefetches : int;
}

let create () =
  {
    l1_hits = 0;
    l1_misses = 0;
    l2_hits = 0;
    l2_misses = 0;
    mcdram_accesses = 0;
    ddr_accesses = 0;
    hops = 0;
    messages = 0;
    latency_sum = 0;
    latency_max = 0;
    ops = 0;
    syncs = 0;
    tasks = 0;
    finish_time = 0;
    load_wait = 0;
    result_wait = 0;
    invalidations = 0;
    prefetches = 0;
  }

let copy t = { t with l1_hits = t.l1_hits }

let rate hits misses =
  let total = hits + misses in
  if total = 0 then 0.0 else float_of_int hits /. float_of_int total

let l1_hit_rate t = rate t.l1_hits t.l1_misses

let l2_hit_rate t = rate t.l2_hits t.l2_misses

let avg_latency t =
  if t.messages = 0 then 0.0 else float_of_int t.latency_sum /. float_of_int t.messages

let pp ppf t =
  Format.fprintf ppf
    "@[<v>L1 %d/%d (%.1f%%)@ L2 %d/%d (%.1f%%)@ hops %d, msgs %d, avg lat %.1f, max lat %d@ \
     ops %d, syncs %d, tasks %d, finish %d@]"
    t.l1_hits (t.l1_hits + t.l1_misses)
    (100.0 *. l1_hit_rate t)
    t.l2_hits (t.l2_hits + t.l2_misses)
    (100.0 *. l2_hit_rate t)
    t.hops t.messages (avg_latency t) t.latency_max t.ops t.syncs t.tasks t.finish_time
