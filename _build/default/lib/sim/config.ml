type memory_mode = Flat | Cache_mode | Hybrid

type t = {
  mesh_cols : int;
  mesh_rows : int;
  cluster : Ndp_noc.Cluster.t;
  memory_mode : memory_mode;
  line_bytes : int;
  l1_size : int;
  l1_assoc : int;
  l2_bank_size : int;
  l2_assoc : int;
  mcdram_capacity : int;
  hop_cycles : int;
  link_service_cycles : int;
  flit_bytes : int;
  l1_hit_cycles : int;
  l2_hit_cycles : int;
  mcdram_cycles : int;
  ddr_cycles : int;
  op_cycles : int;
  sync_cycles : int;
  load_issue_cycles : int;
  outstanding_loads : int;
  coherence : bool;
  prefetch_next_line : bool;
  mlp_overlap : float;
  balance_threshold : float;
  max_window : int;
  page_policy : Ndp_mem.Page_alloc.policy;
  predictor_capacity_blocks : int;
  seed : int;
}

let default =
  {
    mesh_cols = 6;
    mesh_rows = 6;
    cluster = Ndp_noc.Cluster.Quadrant;
    memory_mode = Flat;
    line_bytes = 64;
    l1_size = 16 * 1024;
    l1_assoc = 4;
    l2_bank_size = 128 * 1024;
    l2_assoc = 8;
    mcdram_capacity = 2 * 1024 * 1024;
    hop_cycles = 16;
    link_service_cycles = 1;
    flit_bytes = 32;
    l1_hit_cycles = 2;
    l2_hit_cycles = 18;
    mcdram_cycles = 170;
    ddr_cycles = 260;
    op_cycles = 8;
    sync_cycles = 8;
    load_issue_cycles = 2;
    outstanding_loads = 2;
    coherence = true;
    prefetch_next_line = false;
    mlp_overlap = 0.85;
    balance_threshold = 0.10;
    max_window = 8;
    page_policy = Ndp_mem.Page_alloc.Coloring;
    predictor_capacity_blocks = 1024;
    seed = 42;
  }

let memory_mode_to_string = function
  | Flat -> "flat"
  | Cache_mode -> "cache"
  | Hybrid -> "hybrid"

let memory_mode_of_string = function
  | "flat" -> Ok Flat
  | "cache" -> Ok Cache_mode
  | "hybrid" -> Ok Hybrid
  | s -> Error (Printf.sprintf "unknown memory mode %S" s)

let memory_mode_letter = function
  | Flat -> "X"
  | Cache_mode -> "Y"
  | Hybrid -> "Z"

let all_memory_modes = [ Flat; Cache_mode; Hybrid ]

let with_modes t cluster memory_mode = { t with cluster; memory_mode }

let mesh t = Ndp_noc.Mesh.create ~cols:t.mesh_cols ~rows:t.mesh_rows

let addr_map t =
  Ndp_mem.Addr_map.create ~num_l2_banks:(t.mesh_cols * t.mesh_rows) ()

let flits_of_bytes t bytes = max 1 ((bytes + t.flit_bytes - 1) / t.flit_bytes)
