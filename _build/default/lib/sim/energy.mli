(** Event-proportional energy model (Figure 24).

    Constants are in picojoules per event, chosen in the CACTI/McPAT
    ballpark for a 14nm manycore; the reported results are relative
    savings, so only ratios matter. *)

type breakdown = {
  network : float;
  l1 : float;
  l2 : float;
  dram : float;
  compute : float;
  sync : float;
}

val of_stats : Stats.t -> breakdown

val total : breakdown -> float

val pp : Format.formatter -> breakdown -> unit
