(** Counters collected by the execution engine. *)

type t = {
  mutable l1_hits : int;
  mutable l1_misses : int;
  mutable l2_hits : int;
  mutable l2_misses : int;
  mutable mcdram_accesses : int;
  mutable ddr_accesses : int;
  mutable hops : int; (** total link traversals weighted by flits *)
  mutable messages : int;
  mutable latency_sum : int; (** network latency across all messages *)
  mutable latency_max : int;
  mutable ops : int; (** weighted operation units executed *)
  mutable syncs : int; (** point-to-point synchronizations performed *)
  mutable tasks : int;
  mutable finish_time : int; (** simulated completion cycle *)
  mutable load_wait : int; (** cycles tasks waited on memory operands *)
  mutable result_wait : int; (** cycles tasks waited on partial results *)
  mutable invalidations : int; (** L1 copies killed by remote stores *)
  mutable prefetches : int; (** next-line prefetch fills issued *)
}

val create : unit -> t

val copy : t -> t

val l1_hit_rate : t -> float

val l2_hit_rate : t -> float

val avg_latency : t -> float

val pp : Format.formatter -> t -> unit
