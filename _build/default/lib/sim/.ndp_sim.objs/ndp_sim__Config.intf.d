lib/sim/config.mli: Ndp_mem Ndp_noc
