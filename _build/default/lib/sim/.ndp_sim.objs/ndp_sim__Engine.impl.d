lib/sim/engine.ml: Array Config Hashtbl List Machine Ndp_noc Network Option Stats Task
