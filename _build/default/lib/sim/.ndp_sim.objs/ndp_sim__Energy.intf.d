lib/sim/energy.mli: Format Stats
