lib/sim/machine.ml: Array Config Hashtbl List Ndp_mem Ndp_noc Ndp_prelude Network Option Stats
