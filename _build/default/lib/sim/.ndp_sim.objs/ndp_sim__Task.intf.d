lib/sim/task.mli: Ndp_ir
