lib/sim/engine.mli: Machine Stats Task
