lib/sim/task.ml: List Ndp_ir
