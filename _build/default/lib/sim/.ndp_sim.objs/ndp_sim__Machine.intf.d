lib/sim/machine.mli: Config Ndp_noc Network Stats
