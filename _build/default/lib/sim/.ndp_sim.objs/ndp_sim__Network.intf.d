lib/sim/network.mli: Config Ndp_noc Stats
