lib/sim/network.ml: Config Float Hashtbl List Ndp_noc Option Stats
