lib/sim/energy.ml: Format Stats
