lib/sim/config.ml: Ndp_mem Ndp_noc Printf
