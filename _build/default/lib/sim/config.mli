(** Machine configuration for the KNL-like simulated manycore.

    The default models a 6x6 tile mesh (Section 6.1) with corner memory
    controllers, quadrant cluster mode and flat memory mode. All latency
    and energy constants are per-event; the paper's results are relative,
    so only their ratios matter. *)

type memory_mode = Flat | Cache_mode | Hybrid

type t = {
  mesh_cols : int;
  mesh_rows : int;
  cluster : Ndp_noc.Cluster.t;
  memory_mode : memory_mode;
  line_bytes : int;
  l1_size : int;
  l1_assoc : int;
  l2_bank_size : int;
  l2_assoc : int;
  mcdram_capacity : int; (** bytes of on-package memory *)
  hop_cycles : int; (** per-link traversal latency *)
  link_service_cycles : int; (** per-flit link occupancy (contention) *)
  flit_bytes : int;
  l1_hit_cycles : int;
  l2_hit_cycles : int;
  mcdram_cycles : int;
  ddr_cycles : int;
  op_cycles : int; (** per unit of operation cost *)
  sync_cycles : int; (** per point-to-point synchronization *)
  load_issue_cycles : int; (** core occupancy per issued load *)
  outstanding_loads : int;
      (** loads a core can overlap (MSHR-bound memory-level parallelism) *)
  coherence : bool;
      (** write-invalidate coherence: a store invalidates every other
          node's L1 copy of the line (invalidation messages are charged
          to the network) *)
  prefetch_next_line : bool;
      (** L1 next-line prefetch: an L1 miss also fills line+1 from its
          home bank, off the critical path *)
  mlp_overlap : float;
      (** fraction of memory-stall time hidden by outstanding misses; the
          rest blocks the core's task queue *)
  balance_threshold : float; (** load-balance slack, 10% in the paper *)
  max_window : int; (** largest window size searched, 8 in the paper *)
  page_policy : Ndp_mem.Page_alloc.policy;
  predictor_capacity_blocks : int;
  seed : int;
}

val default : t

val memory_mode_to_string : memory_mode -> string

val memory_mode_of_string : string -> (memory_mode, string) result

val memory_mode_letter : memory_mode -> string
(** Paper legend letter: X (flat), Y (cache) or Z (hybrid), Figure 22. *)

val all_memory_modes : memory_mode list

val with_modes : t -> Ndp_noc.Cluster.t -> memory_mode -> t

val mesh : t -> Ndp_noc.Mesh.t

val addr_map : t -> Ndp_mem.Addr_map.t

val flits_of_bytes : t -> int -> int
(** Number of flits for a message payload, at least 1. *)
