type t = { cols : int; rows : int }

type link = { from_node : int; to_node : int }

let create ~cols ~rows =
  if cols < 2 || rows < 2 then invalid_arg "Mesh.create: need at least a 2x2 mesh";
  { cols; rows }

let cols t = t.cols
let rows t = t.rows
let size t = t.cols * t.rows

let coord_of_node t id =
  if id < 0 || id >= size t then invalid_arg "Mesh.coord_of_node: bad node id";
  Coord.make (id mod t.cols) (id / t.cols)

let node_of_coord t (c : Coord.t) =
  if c.x < 0 || c.x >= t.cols || c.y < 0 || c.y >= t.rows then
    invalid_arg "Mesh.node_of_coord: coordinate off-mesh";
  (c.y * t.cols) + c.x

let distance t a b = Coord.manhattan (coord_of_node t a) (coord_of_node t b)

let memory_controllers t =
  let corner x y = node_of_coord t (Coord.make x y) in
  [ corner 0 0; corner (t.cols - 1) 0; corner 0 (t.rows - 1); corner (t.cols - 1) (t.rows - 1) ]

let nearest_mc t node =
  let best (bn, bd) mc =
    let d = distance t node mc in
    if d < bd || (d = bd && mc < bn) then (mc, d) else (bn, bd)
  in
  fst (List.fold_left best (max_int, max_int) (memory_controllers t))

let xy_route t ~src ~dst =
  let s = coord_of_node t src and d = coord_of_node t dst in
  let step_x x = if d.x > x then x + 1 else x - 1 in
  let step_y y = if d.y > y then y + 1 else y - 1 in
  let rec go (c : Coord.t) acc =
    if c.x <> d.x then
      let next = Coord.make (step_x c.x) c.y in
      go next ({ from_node = node_of_coord t c; to_node = node_of_coord t next } :: acc)
    else if c.y <> d.y then
      let next = Coord.make c.x (step_y c.y) in
      go next ({ from_node = node_of_coord t c; to_node = node_of_coord t next } :: acc)
    else List.rev acc
  in
  go s []

let links t =
  let acc = ref [] in
  for id = size t - 1 downto 0 do
    let c = coord_of_node t id in
    let neighbor dx dy =
      let nx = c.x + dx and ny = c.y + dy in
      if nx >= 0 && nx < t.cols && ny >= 0 && ny < t.rows then
        acc := { from_node = id; to_node = node_of_coord t (Coord.make nx ny) } :: !acc
    in
    neighbor 1 0; neighbor (-1) 0; neighbor 0 1; neighbor 0 (-1)
  done;
  !acc

(* Each node has at most 4 outgoing links, indexed by direction. *)
let direction_index t l =
  let a = coord_of_node t l.from_node and b = coord_of_node t l.to_node in
  match (b.x - a.x, b.y - a.y) with
  | 1, 0 -> 0
  | -1, 0 -> 1
  | 0, 1 -> 2
  | 0, -1 -> 3
  | _ -> invalid_arg "Mesh.link_index: nodes are not adjacent"

let link_index t l = (l.from_node * 4) + direction_index t l

let num_links t = size t * 4

let quadrant_of_node t node =
  let c = coord_of_node t node in
  let qx = if c.x * 2 >= t.cols then 1 else 0 in
  let qy = if c.y * 2 >= t.rows then 1 else 0 in
  (qy * 2) + qx

let nodes_in_quadrant t q =
  List.filter (fun n -> quadrant_of_node t n = q) (List.init (size t) Fun.id)

let mc_of_quadrant t q =
  let in_q mc = quadrant_of_node t mc = q in
  match List.filter in_q (memory_controllers t) with
  | mc :: _ -> mc
  | [] -> invalid_arg "Mesh.mc_of_quadrant: no controller in quadrant"
