type t = { x : int; y : int }

let make x y = { x; y }

let manhattan a b = abs (a.x - b.x) + abs (a.y - b.y)

let equal a b = a.x = b.x && a.y = b.y

let pp ppf t = Format.fprintf ppf "(%d,%d)" t.x t.y
