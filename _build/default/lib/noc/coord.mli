(** Node coordinates on the 2D mesh. *)

type t = { x : int; y : int }

val make : int -> int -> t

val manhattan : t -> t -> int
(** [manhattan a b = |a.x - b.x| + |a.y - b.y|], the minimum number of mesh
    links between the two nodes (Section 2 of the paper). *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
