lib/noc/mesh.mli: Coord
