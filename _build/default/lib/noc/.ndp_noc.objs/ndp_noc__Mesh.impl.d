lib/noc/mesh.ml: Coord Fun List
