lib/noc/coord.ml: Format
