lib/noc/cluster.ml: List Mesh Printf
