lib/noc/cluster.mli: Mesh
