(** KNL-style cluster-of-mesh operating modes (Section 6.1).

    The modes differ in which memory controller services an L2 miss for a
    given address and requester:
    - {b All_to_all}: addresses hash uniformly over all controllers; a miss
      can travel to any corner.
    - {b Quadrant}: the home L2 bank and the servicing controller share a
      quadrant, but the requester may be anywhere.
    - {b Snc4}: requester, home bank and controller are all constrained to
      one quadrant (software-visible NUMA). *)

type t = All_to_all | Quadrant | Snc4

val all : t list

val to_string : t -> string

val of_string : string -> (t, string) result

val letter : t -> string
(** Paper legend letter: A, B or C (Figure 22). *)

val mc_for : t -> Mesh.t -> home_bank:int -> channel:int -> int
(** Memory controller node that services an L2 miss whose home bank is
    [home_bank] and whose physical address selects [channel]. *)
