(** Ablations of the design choices DESIGN.md calls out. *)

val reuse : Common.t -> unit
(** Reuse-aware vs reuse-agnostic fixed windows (Section 6.3 reports the
    agnostic variant ~11% worse). *)

val levels : Common.t -> unit
(** Level-based nested-set splitting vs a flat splitter that ignores
    operator priority. *)

val sync_minimization : Common.t -> unit
(** Transitive-closure sync elimination on vs off. *)

val balance : Common.t -> unit
(** Load-balance threshold sweep around the paper's 10%. *)

val coloring : Common.t -> unit
(** Page-coloring OS support vs a scrambling allocator (location inference
    broken). *)

val all : Common.t -> unit
