(** Tables 1-3 of the paper, regenerated from measurements. *)

val table1 : Common.t -> unit
(** Fraction of compile-time analyzable data references per application. *)

val table2 : Common.t -> unit
(** L2 hit/miss predictor accuracy per application. *)

val table3 : Common.t -> unit
(** Operation-type mix of the computations re-mapped by the partitioner. *)
