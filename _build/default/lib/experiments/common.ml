module Pipeline = Ndp_core.Pipeline
module Config = Ndp_sim.Config

type t = {
  cache : (string, Pipeline.result) Hashtbl.t;
  mutable kernels : Ndp_core.Kernel.t list option;
}

let create () = { cache = Hashtbl.create 64; kernels = None }

let apps t =
  match t.kernels with
  | Some ks -> ks
  | None ->
    let ks = Ndp_workloads.Suite.all () in
    t.kernels <- Some ks;
    ks

let config_key (c : Config.t) =
  Printf.sprintf "%s/%s/%s/l1b" (Ndp_noc.Cluster.letter c.Config.cluster)
    (Config.memory_mode_letter c.Config.memory_mode)
    (match c.Config.page_policy with
    | Ndp_mem.Page_alloc.Coloring -> "col"
    | Ndp_mem.Page_alloc.Scrambled -> "scr")

let tweaks_key (tw : Pipeline.tweaks) =
  if tw = Pipeline.no_tweaks then ""
  else
    Printf.sprintf "|b%.3f d%.3f mc%d c%.2f s%d" tw.Pipeline.l1_boost tw.Pipeline.distance_factor
      (List.length tw.Pipeline.mc_overrides) tw.Pipeline.cost_scale tw.Pipeline.extra_syncs

let scheme_key = function
  | Pipeline.Default -> "default"
  | Pipeline.Partitioned o ->
    Printf.sprintf "part(w=%s,r=%b,s=%b,l=%b,bt=%s,id=%b,insp=%b)"
      (match o.Pipeline.window with Pipeline.Adaptive -> "a" | Pipeline.Fixed k -> string_of_int k)
      o.Pipeline.reuse_aware o.Pipeline.sync_minimize o.Pipeline.level_based
      (match o.Pipeline.balance_threshold with None -> "-" | Some f -> Printf.sprintf "%.2f" f)
      o.Pipeline.ideal_data o.Pipeline.use_inspector

let run t ?(config = Config.default) ?(tweaks = Pipeline.no_tweaks) ?(key_suffix = "") scheme
    kernel =
  let key =
    String.concat "#"
      [
        kernel.Ndp_core.Kernel.name; scheme_key scheme; config_key config; tweaks_key tweaks;
        key_suffix;
      ]
  in
  match Hashtbl.find_opt t.cache key with
  | Some r -> r
  | None ->
    let r = Pipeline.run ~config ~tweaks scheme kernel in
    Hashtbl.replace t.cache key r;
    r

let default_of t kernel = run t Pipeline.Default kernel

let ours_of t kernel = run t (Pipeline.Partitioned Pipeline.partitioned_defaults) kernel

let improvement ~base ~opt =
  Ndp_prelude.Stats.improvement_pct (float_of_int base) (float_of_int opt)

let geomean_improvement rows =
  (* Geometric mean over percentages needs positive values; clamp small. *)
  Ndp_prelude.Stats.geomean (List.map (fun (v, _) -> max 0.1 v) rows)
