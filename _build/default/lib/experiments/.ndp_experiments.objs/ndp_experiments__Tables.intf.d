lib/experiments/tables.mli: Common
