lib/experiments/ablation.ml: Common List Ndp_core Ndp_mem Ndp_prelude Ndp_sim Printf
