lib/experiments/common.ml: Hashtbl List Ndp_core Ndp_mem Ndp_noc Ndp_prelude Ndp_sim Ndp_workloads Printf String
