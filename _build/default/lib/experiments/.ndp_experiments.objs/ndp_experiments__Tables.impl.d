lib/experiments/tables.ml: Common List Ndp_core Ndp_prelude Ndp_sim
