lib/experiments/figures.ml: Array Common Float List Ndp_core Ndp_ir Ndp_noc Ndp_prelude Ndp_sim Printf
