lib/experiments/figures.mli: Common
