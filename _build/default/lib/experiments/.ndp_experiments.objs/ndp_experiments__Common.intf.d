lib/experiments/common.mli: Ndp_core Ndp_sim
