(** Shared run cache for the experiment drivers: the same (app, scheme,
    config, tweaks) simulation backs several figures, so results are
    memoized per process. *)

type t

val create : unit -> t

val apps : t -> Ndp_core.Kernel.t list
(** The twelve-application suite, constructed once. *)

val run :
  t ->
  ?config:Ndp_sim.Config.t ->
  ?tweaks:Ndp_core.Pipeline.tweaks ->
  ?key_suffix:string ->
  Ndp_core.Pipeline.scheme ->
  Ndp_core.Kernel.t ->
  Ndp_core.Pipeline.result
(** Memoized {!Ndp_core.Pipeline.run}. [key_suffix] must distinguish calls
    whose config/tweaks differ in ways the automatic key cannot see. *)

val default_of : t -> Ndp_core.Kernel.t -> Ndp_core.Pipeline.result
(** The baseline run under the default config. *)

val ours_of : t -> Ndp_core.Kernel.t -> Ndp_core.Pipeline.result
(** The full partitioned scheme under the default config. *)

val improvement : base:int -> opt:int -> float
(** Percent reduction. *)

val geomean_improvement : (float * 'a) list -> float
