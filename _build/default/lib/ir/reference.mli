(** A reference to one array element, e.g. [B\[i+1\]] or [X\[Y\[i\]\]]. *)

type t = { array : string; subscript : Subscript.t }

val make : string -> Subscript.t -> t

val analyzable : t -> bool
(** Compile-time analyzable: the subscript is affine (Table 1). *)

val vars : t -> string list

val to_string : t -> string

val equal : t -> t -> bool
