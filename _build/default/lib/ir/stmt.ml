type t = { lhs : Reference.t; rhs : Expr.t }

let make lhs rhs = { lhs; rhs }

let inputs t = Expr.refs t.rhs

let output t = t.lhs

let to_string t = Printf.sprintf "%s = %s" (Reference.to_string t.lhs) (Expr.to_string t.rhs)

let analyzable_fraction t =
  let all = t.lhs :: inputs t in
  let ok = List.filter Reference.analyzable all in
  (float_of_int (List.length ok), float_of_int (List.length all))
