type t = { name : string; length : int; elem_size : int; base_va : int }

let round_up v multiple = (v + multiple - 1) / multiple * multiple

let layout ?(page_size = 4096) decls =
  let place (next_va, acc) (name, length, elem_size) =
    if length <= 0 || elem_size <= 0 then
      invalid_arg "Array_decl.layout: length and elem_size must be positive";
    let decl = { name; length; elem_size; base_va = next_va } in
    let next_va = round_up (next_va + (length * elem_size)) page_size in
    (next_va, decl :: acc)
  in
  let _, acc = List.fold_left place (page_size, []) decls in
  List.rev acc

let address t i =
  let i = ((i mod t.length) + t.length) mod t.length in
  t.base_va + (i * t.elem_size)

let find decls name = List.find (fun d -> d.name = name) decls
