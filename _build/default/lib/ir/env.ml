type t = (string * int) list

let empty = []

let bind name value t = (name, value) :: List.remove_assoc name t

let lookup t name = List.assoc_opt name t

let get t name =
  match lookup t name with
  | Some v -> v
  | None -> raise Not_found

let of_list l = List.fold_left (fun acc (n, v) -> bind n v acc) empty l

let to_list t = List.sort compare t

let pp ppf t =
  let pp_binding ppf (n, v) = Format.fprintf ppf "%s=%d" n v in
  Format.fprintf ppf "{%a}" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_binding) (to_list t)
