(** The nested variable sets of Algorithm 1 (line 5).

    A statement's data accesses are classified into nested sets following
    the paper's Section 4.2 example: [x = a*(b+c) + d*(e+f+g)] yields
    [(a, (b,c), d, (e,f,g))] — each parenthesized group is a set of its
    own, and the remaining operator chain forms one level. The splitter
    processes sets innermost first, treating each completed set as a
    single component at the next level, which preserves evaluation
    priority: a group's partial result is complete before the enclosing
    level consumes it. *)

type item =
  | Ref of Reference.t
  | Const of float
  | Sub of t

and t = {
  items : item list;
  level_ops : Op.t list; (** operators joining the items; length = items-1 *)
  reassociable : bool; (** all level operators commute/associate *)
}

val of_expr : Expr.t -> t

val depth : t -> int
(** 1 for a flat statement; grows with parenthesis nesting. *)

val all_refs : t -> Reference.t list

val count_sets : t -> int
(** Total number of (sub)sets, the number of MST problems to solve. *)

val to_string : t -> string
(** [(a, (b, c), d)]-style rendering, mirroring the paper's notation. *)
