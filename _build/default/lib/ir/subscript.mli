(** Array subscripts.

    Affine subscripts ([2*i + j + 3]) are compile-time analyzable: with the
    page-coloring OS support the compiler can resolve them to on-chip
    locations (Table 1). Indirect subscripts ([Y[i]]) are may-dependences;
    they resolve only through the inspector-executor mechanism
    (Section 4.5). *)

type t =
  | Affine of { coeffs : (string * int) list; const : int }
  | Indirect of { index_array : string; inner : t }

val const : int -> t

val var : string -> t
(** [var "i"] is the subscript [i]. *)

val affine : (string * int) list -> int -> t

val indirect : string -> t -> t
(** [indirect "Y" s] is [Y\[s\]]. *)

val analyzable : t -> bool
(** [true] exactly for affine subscripts. *)

val vars : t -> string list
(** Loop variables appearing anywhere in the subscript, sorted, unique. *)

val eval : lookup:(string -> int -> int) -> Env.t -> t -> int
(** Concrete index under an iteration environment. [lookup a i] reads
    element [i] of index array [a] (inspector data). Raises [Not_found] for
    unbound loop variables. *)

val eval_affine : Env.t -> t -> int option
(** [Some index] for affine subscripts only — the compiler's static view. *)

val to_string : t -> string
