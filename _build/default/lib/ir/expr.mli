(** Right-hand-side expressions of loop-body statements. *)

type t =
  | Const of float
  | Ref of Reference.t
  | Binop of Op.t * t * t
  | Group of t  (** Explicit parentheses, forcing a nested-set boundary. *)

val refs : t -> Reference.t list
(** All array references, left-to-right. *)

val ops : t -> Op.t list
(** All operators, left-to-right. *)

val op_count : t -> int

val to_string : t -> string
