type t = { index_arrays : (string, int array) Hashtbl.t; mutable ran : bool }

let create () = { index_arrays = Hashtbl.create 8; ran = false }

let declare_index_array t name contents = Hashtbl.replace t.index_arrays name contents

let run t = t.ran <- true

let has_run t = t.ran

let lookup t name i =
  match Hashtbl.find_opt t.index_arrays name with
  | None -> raise Not_found
  | Some a ->
    let n = Array.length a in
    a.(((i mod n) + n) mod n)

let resolve_exn t ~address_of (r : Reference.t) env =
  let index = Subscript.eval ~lookup:(lookup t) env r.subscript in
  address_of r.array index

let runtime_resolver t ~address_of r env =
  try Some (resolve_exn t ~address_of r env) with Not_found -> None

let compiler_resolver t ~address_of r env =
  if Reference.analyzable r || t.ran then runtime_resolver t ~address_of r env else None
