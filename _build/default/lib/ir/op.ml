type t = Add | Sub | Mul | Div | Shl | Shr | Band | Bor | Bxor

type kind = Add_sub | Mul_div | Other

let kind = function
  | Add | Sub -> Add_sub
  | Mul | Div -> Mul_div
  | Shl | Shr | Band | Bor | Bxor -> Other

let priority = function
  | Mul | Div -> 5
  | Add | Sub -> 4
  | Shl | Shr -> 3
  | Band -> 2
  | Bxor -> 1
  | Bor -> 0

let cost = function
  | Div -> 10
  | Add | Sub | Mul | Shl | Shr | Band | Bor | Bxor -> 1

let commutative_associative = function
  | Add | Mul | Band | Bor | Bxor -> true
  | Sub | Div | Shl | Shr -> false

let to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Shl -> "<<"
  | Shr -> ">>"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"

let all = [ Add; Sub; Mul; Div; Shl; Shr; Band; Bor; Bxor ]
