(** Bindings of loop variables to concrete iteration values. *)

type t

val empty : t

val bind : string -> int -> t -> t
(** Shadows any previous binding of the same variable. *)

val lookup : t -> string -> int option

val get : t -> string -> int
(** Raises [Not_found] when unbound. *)

val of_list : (string * int) list -> t

val to_list : t -> (string * int) list
(** Sorted by variable name. *)

val pp : Format.formatter -> t -> unit
