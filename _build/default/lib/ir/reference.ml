type t = { array : string; subscript : Subscript.t }

let make array subscript = { array; subscript }

let analyzable t = Subscript.analyzable t.subscript

let vars t = Subscript.vars t.subscript

let to_string t = Printf.sprintf "%s[%s]" t.array (Subscript.to_string t.subscript)

let equal a b = a = b
