(** Loop nests and whole kernels. *)

type loop_var = { var : string; lo : int; hi : int }
(** Iterates [lo, lo+1, ..., hi-1]. *)

type nest = {
  nest_name : string;
  vars : loop_var list; (** outermost first *)
  body : Stmt.t list;
  sweeps : int;
      (** repetitions of the whole iteration space — the outer timing loop
          of the paper's loop-dominated applications; the first sweep is
          the cold phase, later sweeps run against warm caches *)
}

type program = {
  prog_name : string;
  arrays : Array_decl.t list;
  nests : nest list;
}

val nest : ?sweeps:int -> string -> loop_var list -> Stmt.t list -> nest

val iterations : nest -> Env.t list
(** All iteration environments in lexicographic order, repeated once per
    sweep. *)

val base_trip_count : nest -> int
(** Iterations of a single sweep. *)

val trip_count : nest -> int

val program : string -> arrays:Array_decl.t list -> nests:nest list -> program

val all_statements : program -> Stmt.t list

val pp_nest : Format.formatter -> nest -> unit
