(** Array declarations with a virtual-address layout. *)

type t = {
  name : string;
  length : int; (** number of elements *)
  elem_size : int; (** bytes per element *)
  base_va : int; (** virtual base address, page aligned *)
}

val layout : ?page_size:int -> (string * int * int) list -> t list
(** [layout decls] assigns consecutive page-aligned virtual base addresses
    to [(name, length, elem_size)] declarations, in order. *)

val address : t -> int -> int
(** Virtual address of element [i]. Out-of-range indices are wrapped into
    the array (synthetic kernels index modulo their data set). *)

val find : t list -> string -> t
(** Raises [Not_found] for undeclared arrays. *)
