lib/ir/array_decl.ml: List
