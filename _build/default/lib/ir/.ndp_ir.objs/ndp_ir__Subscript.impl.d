lib/ir/subscript.ml: Env List Option Printf String
