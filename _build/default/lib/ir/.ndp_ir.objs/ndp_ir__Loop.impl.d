lib/ir/loop.ml: Array_decl Env Format List Stmt
