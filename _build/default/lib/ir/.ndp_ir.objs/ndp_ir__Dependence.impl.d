lib/ir/dependence.ml: Array Env List Reference Stmt
