lib/ir/inspector.ml: Array Hashtbl Reference Subscript
