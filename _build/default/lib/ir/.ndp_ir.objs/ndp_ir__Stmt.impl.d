lib/ir/stmt.ml: Expr List Printf Reference
