lib/ir/subscript.mli: Env
