lib/ir/nested_set.ml: Expr List Op Printf Reference String
