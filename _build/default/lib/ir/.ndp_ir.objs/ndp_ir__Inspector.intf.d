lib/ir/inspector.mli: Dependence
