lib/ir/op.mli:
