lib/ir/expr.mli: Op Reference
