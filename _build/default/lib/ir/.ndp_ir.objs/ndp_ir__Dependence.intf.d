lib/ir/dependence.mli: Env Reference Stmt
