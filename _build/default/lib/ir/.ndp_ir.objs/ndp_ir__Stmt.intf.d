lib/ir/stmt.mli: Expr Reference
