lib/ir/reference.mli: Subscript
