lib/ir/expr.ml: Float List Op Printf Reference
