lib/ir/nested_set.mli: Expr Op Reference
