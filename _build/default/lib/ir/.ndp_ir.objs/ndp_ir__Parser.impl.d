lib/ir/parser.ml: Expr List Op Printf Reference Stmt String Subscript
