lib/ir/env.ml: Format List
