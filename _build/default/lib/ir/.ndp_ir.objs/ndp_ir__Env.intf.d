lib/ir/env.mli: Format
