lib/ir/op.ml:
