lib/ir/reference.ml: Printf Subscript
