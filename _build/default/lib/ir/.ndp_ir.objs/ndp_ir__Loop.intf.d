lib/ir/loop.mli: Array_decl Env Format Stmt
