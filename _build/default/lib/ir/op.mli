(** Binary operators appearing in loop-body statements. *)

type t = Add | Sub | Mul | Div | Shl | Shr | Band | Bor | Bxor

type kind = Add_sub | Mul_div | Other
(** The three classes reported in Table 3 of the paper. *)

val kind : t -> kind

val priority : t -> int
(** C-like precedence; higher binds tighter. Operators with equal priority
    associate left-to-right and form one level of the nested variable set. *)

val cost : t -> int
(** Load-balancing cost: division is 10x an addition/multiplication
    (Section 4.5, footnote 5). *)

val commutative_associative : t -> bool
(** Whether operands at this level may be regrouped freely by the MST
    splitter. Non-reassociable levels are still placed, but keep their
    evaluation order. *)

val to_string : t -> string

val all : t list
