exception Parse_error of string

type token =
  | Ident of string
  | Int of int
  | Lbracket
  | Rbracket
  | Lparen
  | Rparen
  | Equals
  | Operator of Op.t

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let tokenize src =
  let n = String.length src in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match src.[i] with
      | ' ' | '\t' | '\n' -> go (i + 1) acc
      | '[' -> go (i + 1) (Lbracket :: acc)
      | ']' -> go (i + 1) (Rbracket :: acc)
      | '(' -> go (i + 1) (Lparen :: acc)
      | ')' -> go (i + 1) (Rparen :: acc)
      | '=' -> go (i + 1) (Equals :: acc)
      | '+' -> go (i + 1) (Operator Op.Add :: acc)
      | '-' -> go (i + 1) (Operator Op.Sub :: acc)
      | '*' -> go (i + 1) (Operator Op.Mul :: acc)
      | '/' -> go (i + 1) (Operator Op.Div :: acc)
      | '&' -> go (i + 1) (Operator Op.Band :: acc)
      | '|' -> go (i + 1) (Operator Op.Bor :: acc)
      | '^' -> go (i + 1) (Operator Op.Bxor :: acc)
      | '<' when i + 1 < n && src.[i + 1] = '<' -> go (i + 2) (Operator Op.Shl :: acc)
      | '>' when i + 1 < n && src.[i + 1] = '>' -> go (i + 2) (Operator Op.Shr :: acc)
      | c when c = '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ->
        let j = ref i in
        while
          !j < n
          &&
          let c = src.[!j] in
          c = '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
        do
          incr j
        done;
        go !j (Ident (String.sub src i (!j - i)) :: acc)
      | c when c >= '0' && c <= '9' ->
        let j = ref i in
        while !j < n && src.[!j] >= '0' && src.[!j] <= '9' do
          incr j
        done;
        go !j (Int (int_of_string (String.sub src i (!j - i))) :: acc)
      | c -> fail "unexpected character %c" c
  in
  go 0 []

(* A mutable token stream keeps the recursive-descent code readable. *)
type stream = { mutable toks : token list }

let peek s = match s.toks with [] -> None | t :: _ -> Some t

let advance s = match s.toks with [] -> fail "unexpected end of input" | _ :: rest -> s.toks <- rest

let expect s tok what =
  match peek s with
  | Some t when t = tok -> advance s
  | _ -> fail "expected %s" what

(* Subscripts: sums of terms over loop variables, or indirect refs. *)
let rec parse_subscript s =
  let merge_affine sign a b =
    match (a, b) with
    | ( Subscript.Affine { coeffs = ca; const = ka },
        Subscript.Affine { coeffs = cb; const = kb } ) ->
      let cb = List.map (fun (v, c) -> (v, sign * c)) cb in
      Subscript.affine (ca @ cb) (ka + (sign * kb))
    | _ -> fail "indirect subscripts cannot appear inside arithmetic"
  in
  let rec terms acc =
    match peek s with
    | Some (Operator Op.Add) ->
      advance s;
      terms (merge_affine 1 acc (parse_term s))
    | Some (Operator Op.Sub) ->
      advance s;
      terms (merge_affine (-1) acc (parse_term s))
    | _ -> acc
  in
  terms (parse_term s)

and parse_term s =
  match peek s with
  | Some (Int k) -> (
    advance s;
    match peek s with
    | Some (Operator Op.Mul) -> (
      advance s;
      match peek s with
      | Some (Ident v) ->
        advance s;
        Subscript.affine [ (v, k) ] 0
      | _ -> fail "expected loop variable after %d*" k)
    | _ -> Subscript.const k)
  | Some (Ident name) -> (
    advance s;
    match peek s with
    | Some Lbracket ->
      advance s;
      let inner = parse_subscript s in
      expect s Rbracket "]";
      Subscript.indirect name inner
    | _ -> Subscript.var name)
  | _ -> fail "malformed subscript"

let parse_reference s name =
  expect s Lbracket "[";
  let sub = parse_subscript s in
  expect s Rbracket "]";
  Reference.make name sub

(* Expressions: precedence climbing over Op.priority. *)
let rec parse_expr s min_prio =
  let lhs = parse_atom s in
  let rec loop lhs =
    match peek s with
    | Some (Operator op) when Op.priority op >= min_prio ->
      advance s;
      let rhs = parse_expr s (Op.priority op + 1) in
      loop (Expr.Binop (op, lhs, rhs))
    | _ -> lhs
  in
  loop lhs

and parse_atom s =
  match peek s with
  | Some Lparen ->
    advance s;
    let e = parse_expr s 0 in
    expect s Rparen ")";
    Expr.Group e
  | Some (Int k) ->
    advance s;
    Expr.Const (float_of_int k)
  | Some (Ident name) -> (
    advance s;
    match peek s with
    | Some Lbracket -> Expr.Ref (parse_reference s name)
    | _ -> fail "bare identifier %s: array references need a subscript" name)
  | _ -> fail "malformed expression"

let expr src =
  let s = { toks = tokenize src } in
  let e = parse_expr s 0 in
  if s.toks <> [] then fail "trailing tokens after expression";
  e

let statement src =
  let s = { toks = tokenize src } in
  let lhs =
    match peek s with
    | Some (Ident name) ->
      advance s;
      parse_reference s name
    | _ -> fail "statement must start with an array reference"
  in
  expect s Equals "=";
  let rhs = parse_expr s 0 in
  if s.toks <> [] then fail "trailing tokens after statement";
  Stmt.make lhs rhs

let statements srcs = List.map statement srcs
