type instance = { stmt_idx : int; stmt : Stmt.t; env : Env.t }

type kind = Flow | Anti | Output

type dep = { src : int; dst : int; kind : kind; may : bool }

type resolver = Reference.t -> Env.t -> int option

type access = { ref_ : Reference.t; addr : int option }

let accesses resolver inst =
  let resolve r = { ref_ = r; addr = resolver r inst.env } in
  (resolve (Stmt.output inst.stmt), List.map resolve (Stmt.inputs inst.stmt))

(* Two accesses conflict when they certainly touch the same element, or when
   either is unresolvable and the arrays match (a may-dependence). *)
let conflict a b =
  if a.ref_.Reference.array <> b.ref_.Reference.array then None
  else
    match (a.addr, b.addr) with
    | Some x, Some y -> if x = y then Some false else None
    | None, _ | _, None -> Some true

let analyze resolver instances =
  let arr = Array.of_list instances in
  let resolved = Array.map (accesses resolver) arr in
  let deps = ref [] in
  let add src dst kind may = deps := { src; dst; kind; may } :: !deps in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    let wi, ri = resolved.(i) in
    for j = i + 1 to n - 1 do
      let wj, rj = resolved.(j) in
      (match conflict wi wj with
      | Some may -> add i j Output may
      | None -> ());
      List.iter
        (fun r -> match conflict wi r with Some may -> add i j Flow may | None -> ())
        rj;
      List.iter
        (fun r -> match conflict r wj with Some may -> add i j Anti may | None -> ())
        ri
    done
  done;
  List.rev !deps

let kind_to_string = function Flow -> "flow" | Anti -> "anti" | Output -> "output"

let must_serialize deps ~src ~dst =
  List.exists (fun d -> d.src = src && d.dst = dst) deps
