type t =
  | Const of float
  | Ref of Reference.t
  | Binop of Op.t * t * t
  | Group of t

let rec refs = function
  | Const _ -> []
  | Ref r -> [ r ]
  | Binop (_, a, b) -> refs a @ refs b
  | Group e -> refs e

let rec ops = function
  | Const _ | Ref _ -> []
  | Binop (op, a, b) -> ops a @ [ op ] @ ops b
  | Group e -> ops e

let op_count e = List.length (ops e)

let rec to_string = function
  | Const c -> if Float.is_integer c then string_of_int (int_of_float c) else string_of_float c
  | Ref r -> Reference.to_string r
  | Binop (op, a, b) -> Printf.sprintf "%s %s %s" (to_string a) (Op.to_string op) (to_string b)
  | Group e -> Printf.sprintf "(%s)" (to_string e)
