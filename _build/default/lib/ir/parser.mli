(** Textual front end for statements, e.g.
    ["A[i] = B[i] + C[i] * (D[i] + E[i+1])"] or ["X[Y[i]] = X[Y[i]] + W[i]"].

    Subscripts are affine forms over loop variables ([2*i+j+3]) or nested
    array references (indirect accesses). Operators: [+ - * / << >> & | ^]
    with C precedence; parentheses group. *)

exception Parse_error of string

val statement : string -> Stmt.t
(** Raises [Parse_error] on malformed input. *)

val expr : string -> Expr.t

val statements : string list -> Stmt.t list
(** Convenience: parse a whole loop body. *)
