(** A loop-body statement [lhs = rhs]. *)

type t = { lhs : Reference.t; rhs : Expr.t }

val make : Reference.t -> Expr.t -> t

val inputs : t -> Reference.t list
(** References read by the statement (the [V_i] of Equation 1). *)

val output : t -> Reference.t

val to_string : t -> string

val analyzable_fraction : t -> float * float
(** [(analyzable, total)] reference counts including the output. *)
