type loop_var = { var : string; lo : int; hi : int }

type nest = { nest_name : string; vars : loop_var list; body : Stmt.t list; sweeps : int }

type program = { prog_name : string; arrays : Array_decl.t list; nests : nest list }

let nest ?(sweeps = 1) nest_name vars body =
  if vars = [] then invalid_arg "Loop.nest: need at least one loop variable";
  if body = [] then invalid_arg "Loop.nest: empty body";
  if sweeps < 1 then invalid_arg "Loop.nest: sweeps must be positive";
  { nest_name; vars; body; sweeps }

let base_iterations t =
  let rec expand env = function
    | [] -> [ env ]
    | { var; lo; hi } :: rest ->
      List.concat_map
        (fun v -> expand (Env.bind var v env) rest)
        (List.init (max 0 (hi - lo)) (fun k -> lo + k))
  in
  expand Env.empty t.vars

let iterations t =
  let base = base_iterations t in
  List.concat (List.init t.sweeps (fun _ -> base))

let base_trip_count t =
  List.fold_left (fun acc { lo; hi; _ } -> acc * max 0 (hi - lo)) 1 t.vars

let trip_count t = t.sweeps * base_trip_count t

let program prog_name ~arrays ~nests = { prog_name; arrays; nests }

let all_statements p = List.concat_map (fun n -> n.body) p.nests

let pp_nest ppf t =
  let pp_var ppf { var; lo; hi } = Format.fprintf ppf "for %s in [%d,%d)" var lo hi in
  Format.fprintf ppf "%s: %a@\n" t.nest_name
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " ") pp_var)
    t.vars;
  List.iter (fun s -> Format.fprintf ppf "  %s@\n" (Stmt.to_string s)) t.body
