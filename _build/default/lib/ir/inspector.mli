(** Inspector–executor support for indirect array accesses (Section 4.5).

    Loop-dominated irregular applications iterate an outer timing loop; the
    inspector runs over its first iterations, records the values of index
    arrays, and the executor phase then schedules subcomputations with that
    may-dependence information. Before [run] the resolver answers [None]
    for indirect references (conservative may-deps); afterwards it resolves
    them exactly. *)

type t

val create : unit -> t

val declare_index_array : t -> string -> int array -> unit
(** Register the runtime contents of an index array. *)

val run : t -> unit
(** Mark the inspector phase complete. *)

val has_run : t -> bool

val lookup : t -> string -> int -> int
(** Ground-truth index-array read (always available to the {e runtime}).
    Raises [Not_found] for undeclared arrays; indices wrap. *)

val runtime_resolver : t -> address_of:(string -> int -> int) -> Dependence.resolver
(** Resolves every reference using ground truth — what the hardware does. *)

val compiler_resolver : t -> address_of:(string -> int -> int) -> Dependence.resolver
(** Resolves affine references always, indirect references only once [run]
    has been called — what the compiler knows. *)
