type item =
  | Ref of Reference.t
  | Const of float
  | Sub of t

and t = { items : item list; level_ops : Op.t list; reassociable : bool }

(* Only explicit parentheses open a nested set: the paper's Section 4.2
   example classifies x = a*(b+c) + d*(e+f+g) as (a, (b,c), d, (e,f,g)) —
   the unparenthesized operator chain is one level regardless of the mix
   of priorities, and each parenthesized group is a single component whose
   sub-MST is built first. Priority is preserved because a group's partial
   result is complete before the enclosing level combines it. *)
let rec of_expr expr =
  match expr with
  | Expr.Const c -> { items = [ Const c ]; level_ops = []; reassociable = true }
  | Expr.Ref r -> { items = [ Ref r ]; level_ops = []; reassociable = true }
  | Expr.Group e -> of_expr e
  | Expr.Binop _ ->
    let rec flatten e =
      match e with
      | Expr.Binop (op', a, b) ->
        let items_a, ops_a = flatten a in
        let items_b, ops_b = flatten b in
        (items_a @ items_b, ops_a @ [ op' ] @ ops_b)
      | Expr.Const c -> ([ Const c ], [])
      | Expr.Ref r -> ([ Ref r ], [])
      | Expr.Group inner -> (
        let sub = of_expr inner in
        match sub.items with
        | [ single ] when sub.level_ops = [] -> ([ single ], [])
        | _ -> ([ Sub sub ], []))
    in
    let items, level_ops = flatten expr in
    let reassociable = List.for_all Op.commutative_associative level_ops in
    { items; level_ops; reassociable }

let rec depth t =
  let item_depth = function
    | Ref _ | Const _ -> 0
    | Sub s -> depth s
  in
  1 + List.fold_left (fun acc i -> max acc (item_depth i)) 0 t.items

let rec all_refs t =
  List.concat_map
    (function
      | Ref r -> [ r ]
      | Const _ -> []
      | Sub s -> all_refs s)
    t.items

let rec count_sets t =
  1
  + List.fold_left
      (fun acc -> function
        | Ref _ | Const _ -> acc
        | Sub s -> acc + count_sets s)
      0 t.items

let rec to_string t =
  let item = function
    | Ref r -> Reference.to_string r
    | Const c -> string_of_float c
    | Sub s -> to_string s
  in
  Printf.sprintf "(%s)" (String.concat ", " (List.map item t.items))
