(** A compilable kernel: a loop-nest program plus the runtime context the
    simulator needs (index-array contents for indirect accesses, MCDRAM
    placement candidates). *)

type t = {
  name : string;
  description : string;
  program : Ndp_ir.Loop.program;
  index_arrays : (string * int array) list;
  hot_arrays : string list;
      (** arrays to place in MCDRAM under flat/hybrid modes, hottest
          first (the paper's VTune-guided selection) *)
}

val make :
  name:string ->
  description:string ->
  program:Ndp_ir.Loop.program ->
  ?index_arrays:(string * int array) list ->
  ?hot_arrays:string list ->
  unit ->
  t

val inspector : t -> Ndp_ir.Inspector.t
(** Fresh inspector pre-loaded with the kernel's index arrays. *)

val address_of : t -> string -> int -> int
(** Virtual address of element [i] of a named array. *)

val hot_ranges : t -> budget:int -> (int * int) list
(** [(base, bytes)] ranges of the hottest arrays fitting in [budget]. *)

val total_statements : t -> int
(** Static statement count across all nests. *)
