(** High-level code generation (Section 4.5, Figure 8): render the
    per-node subcomputation programs produced by the scheduler, with
    explicit [sync(...)] waits, in the style of the paper's example. *)

val emit : Ndp_sim.Task.t list -> string
(** Group the tasks by node and print each node's program. *)

val emit_statement :
  Context.t -> store_node:int -> Ndp_ir.Stmt.t -> Ndp_ir.Env.t -> string
(** Convenience: split + schedule one statement instance and render it. *)
