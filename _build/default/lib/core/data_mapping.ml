module Mesh = Ndp_noc.Mesh

let page_of (ctx : Context.t) va =
  va lsr Ndp_mem.Addr_map.page_bits (Ndp_sim.Config.addr_map ctx.config)

let profile (ctx : Context.t) ~accesses =
  let mesh = Context.mesh ctx in
  let counts : (int, (int, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 256 in
  let note (page, node) =
    let per_node =
      match Hashtbl.find_opt counts page with
      | Some t -> t
      | None ->
        let t = Hashtbl.create 8 in
        Hashtbl.replace counts page t;
        t
    in
    Hashtbl.replace per_node node (Option.value (Hashtbl.find_opt per_node node) ~default:0 + 1)
  in
  List.iter note accesses;
  let best_mc per_node =
    let cost mc =
      Hashtbl.fold (fun node count acc -> acc + (count * Mesh.distance mesh node mc)) per_node 0
    in
    List.fold_left
      (fun (bm, bc) mc ->
        let c = cost mc in
        if c < bc then (mc, c) else (bm, bc))
      (-1, max_int)
      (Mesh.memory_controllers mesh)
    |> fst
  in
  Hashtbl.fold (fun page per_node acc -> (page, best_mc per_node) :: acc) counts []
