(** Single-statement splitting (Algorithm 1, lines 1-32).

    The statement's references are classified into nested sets by operator
    priority; processing proceeds innermost set first, running Kruskal's
    algorithm per level with already-processed sets treated as single
    components (their member nodes collectively form one vertex, and the
    distance to a component is the minimum distance to any member). The
    union of the per-level MST edges is a spanning tree over the distinct
    physical nodes holding the statement's data, rooted at the store node. *)

type t = {
  edges : Ndp_graph.Kruskal.edge list;
      (** tree edges over physical node ids; total weight = the minimized
          data movement in links *)
  items_at : (int * Location.t list) list;
      (** data to be consumed at each physical node *)
  store_node : int;
  store : (int * int) option; (** runtime (va, bytes) of the output *)
  nodes : int list; (** all distinct physical nodes, including the store *)
  est_movement : int; (** sum of edge weights — Equation 1 with unit size *)
  predictions : (int * bool) list; (** (va, predicted L2 hit) pairs made *)
}

val split : Context.t -> store_node:int -> Ndp_ir.Stmt.t -> Ndp_ir.Env.t -> t

val default_movement : Context.t -> store_node:int -> Ndp_ir.Stmt.t -> Ndp_ir.Env.t -> int
(** Links traversed by the default execution (every operand fetched to the
    store node) — the 13 of Figure 3. *)

val unsplit : t -> t
(** Collapse a split back to whole-statement execution at the store node:
    no tree edges, every item consumed there. Used when the MST cannot
    beat the default movement. *)
