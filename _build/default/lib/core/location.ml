type t = {
  ref_ : Ndp_ir.Reference.t;
  node : int;
  in_l1 : bool;
  predicted_hit : bool option;
  va : int option;
  bytes : int;
}

let line_of (ctx : Context.t) va = va / ctx.config.Ndp_sim.Config.line_bytes

let locate (ctx : Context.t) ~store_node ref_ env =
  let bytes = Context.bytes_of ctx ref_ in
  match ctx.compiler_resolve ref_ env with
  | None -> { ref_; node = store_node; in_l1 = false; predicted_hit = None; va = None; bytes }
  | Some va -> (
    let cached =
      if ctx.options.Context.reuse_aware then Context.cached_node ctx ~line:(line_of ctx va)
      else None
    in
    match cached with
    | Some node -> { ref_; node; in_l1 = true; predicted_hit = None; va = Some va; bytes }
    | None ->
      if ctx.options.Context.ideal_location then begin
        let hit = Ndp_sim.Machine.probe_l2 ctx.machine ~va in
        let node =
          if hit then Ndp_sim.Machine.home_node ctx.machine ~va
          else Ndp_sim.Machine.compiler_mc_node ctx.machine ~va
        in
        { ref_; node; in_l1 = false; predicted_hit = Some hit; va = Some va; bytes }
      end
      else begin
        let pa = Ndp_sim.Machine.compiler_translate ctx.machine va in
        let hit = Ndp_mem.Miss_predictor.predict ctx.predictor pa in
        let node =
          if hit then Ndp_sim.Machine.compiler_home_node ctx.machine ~va
          else Ndp_sim.Machine.compiler_mc_node ctx.machine ~va
        in
        { ref_; node; in_l1 = false; predicted_hit = Some hit; va = Some va; bytes }
      end)
