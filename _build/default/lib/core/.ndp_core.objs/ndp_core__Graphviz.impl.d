lib/core/graphviz.ml: Buffer List Location Ndp_graph Ndp_ir Ndp_sim Option Printf Splitter String
