lib/core/pipeline.ml: Array Baseline Context Data_mapping Hashtbl Kernel List Ndp_ir Ndp_mem Ndp_sim Option Printf Queue Window
