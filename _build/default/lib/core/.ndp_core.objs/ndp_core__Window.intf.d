lib/core/window.mli: Context Ndp_ir Ndp_sim
