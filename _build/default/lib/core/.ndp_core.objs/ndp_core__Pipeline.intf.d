lib/core/pipeline.mli: Kernel Ndp_sim
