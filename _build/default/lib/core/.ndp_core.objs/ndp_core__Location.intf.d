lib/core/location.mli: Context Ndp_ir
