lib/core/context.ml: Array Hashtbl Ndp_ir Ndp_mem Ndp_noc Ndp_sim Queue
