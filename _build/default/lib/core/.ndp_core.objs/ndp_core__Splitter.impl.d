lib/core/splitter.ml: Array Context Hashtbl List Location Ndp_graph Ndp_ir Ndp_noc Ndp_sim Option
