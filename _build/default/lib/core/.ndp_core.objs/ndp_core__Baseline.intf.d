lib/core/baseline.mli: Context Ndp_ir Ndp_sim
