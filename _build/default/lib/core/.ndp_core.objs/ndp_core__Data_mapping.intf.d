lib/core/data_mapping.mli: Context
