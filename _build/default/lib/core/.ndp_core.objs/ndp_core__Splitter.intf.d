lib/core/splitter.mli: Context Location Ndp_graph Ndp_ir
