lib/core/sync_min.mli: Hashtbl
