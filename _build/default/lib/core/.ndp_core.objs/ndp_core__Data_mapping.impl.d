lib/core/data_mapping.ml: Context Hashtbl List Ndp_mem Ndp_noc Ndp_sim Option
