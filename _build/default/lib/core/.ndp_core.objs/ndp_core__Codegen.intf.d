lib/core/codegen.mli: Context Ndp_ir Ndp_sim
