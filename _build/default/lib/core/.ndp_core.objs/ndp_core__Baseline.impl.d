lib/core/baseline.ml: Array Context List Ndp_ir Ndp_noc Ndp_sim Option Printf
