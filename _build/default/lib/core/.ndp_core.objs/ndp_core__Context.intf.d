lib/core/context.mli: Hashtbl Ndp_ir Ndp_mem Ndp_noc Ndp_sim Queue
