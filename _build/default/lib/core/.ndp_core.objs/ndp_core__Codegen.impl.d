lib/core/codegen.ml: Hashtbl List Ndp_sim Option Printf Schedule Splitter String
