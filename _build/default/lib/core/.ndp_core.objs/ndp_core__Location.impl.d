lib/core/location.ml: Context Ndp_ir Ndp_mem Ndp_sim
