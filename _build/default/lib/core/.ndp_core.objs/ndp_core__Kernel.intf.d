lib/core/kernel.mli: Ndp_ir
