lib/core/kernel.ml: Array_decl Inspector List Loop Ndp_ir
