lib/core/graphviz.mli: Ndp_sim Splitter
