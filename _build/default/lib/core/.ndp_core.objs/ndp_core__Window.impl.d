lib/core/window.ml: Array Context Hashtbl List Location Ndp_ir Ndp_sim Option Schedule Splitter Sync_min
