lib/core/sync_min.ml: Array Hashtbl List Ndp_graph Option
