lib/core/schedule.mli: Context Ndp_ir Ndp_sim Splitter
