module Mesh = Ndp_noc.Mesh
module Task = Ndp_sim.Task

let home (ctx : Context.t) va = Ndp_sim.Machine.home_node ctx.machine ~va

(* Profile cost of running an iteration on a node: total distance to the
   home of every reference it touches (the LLC-locality view). *)
let iteration_cost (ctx : Context.t) mesh env node stmt =
  let ref_cost acc r =
    match ctx.runtime_resolve r env with
    | None -> acc
    | Some va -> acc + Mesh.distance mesh node (home ctx va)
  in
  let refs = Ndp_ir.Stmt.output stmt :: Ndp_ir.Stmt.inputs stmt in
  List.fold_left ref_cost 0 refs

let assign_iterations (ctx : Context.t) nest iterations =
  let mesh = Context.mesh ctx in
  let num_nodes = Mesh.size mesh in
  let iters = Array.of_list iterations in
  (* Chunk one sweep of the iteration space and repeat the assignment for
     the remaining sweeps: each core owns the same iterations of every
     sweep, as an OpenMP-style static schedule would. *)
  let period = max 1 (Ndp_ir.Loop.base_trip_count nest) in
  let iters = Array.sub iters 0 (min period (Array.length iters)) in
  let trips = Array.length iters in
  let chunks = min num_nodes (max 1 trips) in
  let bounds k =
    let per = trips / chunks and rem = trips mod chunks in
    let lo = (k * per) + min k rem in
    let hi = lo + per + if k < rem then 1 else 0 in
    (lo, hi)
  in
  let chunk_cost k node =
    let lo, hi = bounds k in
    let acc = ref 0 in
    for i = lo to hi - 1 do
      List.iter
        (fun stmt -> acc := !acc + iteration_cost ctx mesh iters.(i) node stmt)
        nest.Ndp_ir.Loop.body
    done;
    !acc
  in
  (* Greedy matching: chunks claim their cheapest still-free node. *)
  let taken = Array.make num_nodes false in
  let assignment = Array.make trips 0 in
  for k = 0 to chunks - 1 do
    let best = ref (-1) and best_cost = ref max_int in
    for node = 0 to num_nodes - 1 do
      if not taken.(node) then begin
        let c = chunk_cost k node in
        if c < !best_cost then begin
          best := node;
          best_cost := c
        end
      end
    done;
    taken.(!best) <- true;
    let lo, hi = bounds k in
    for i = lo to hi - 1 do
      assignment.(i) <- !best
    done
  done;
  Array.init (List.length iterations) (fun i -> assignment.(i mod trips))

let compile_instance (ctx : Context.t) ~group ~node (inst : Ndp_ir.Dependence.instance) =
  let stmt = inst.Ndp_ir.Dependence.stmt in
  let env = inst.Ndp_ir.Dependence.env in
  let operand r =
    Option.map
      (fun va -> Task.Load { va; bytes = Context.bytes_of ctx r })
      (ctx.runtime_resolve r env)
  in
  let operands = List.filter_map operand (Ndp_ir.Stmt.inputs stmt) in
  let store =
    Option.map
      (fun va -> (va, Context.bytes_of ctx (Ndp_ir.Stmt.output stmt)))
      (ctx.runtime_resolve (Ndp_ir.Stmt.output stmt) env)
  in
  Task.make
    ~id:(Context.fresh_task_id ctx)
    ~group ~node
    ~ops:(Ndp_ir.Expr.ops stmt.Ndp_ir.Stmt.rhs)
    ~operands ?store
    ~label:(Printf.sprintf "g%d:default" group)
    ()
