module Task = Ndp_sim.Task

let operand_text = function
  | Task.Load { va; bytes = _ } -> Printf.sprintf "load(0x%x)" va
  | Task.Result { producer; bytes = _ } -> Printf.sprintf "t%d" producer

let task_lines (t : Task.t) =
  let syncs =
    List.filter_map
      (function Task.Result { producer; _ } -> Some (Printf.sprintf "  sync(t%d)" producer) | Task.Load _ -> None)
      (if t.Task.syncs > 0 then t.Task.operands else [])
  in
  let rhs = String.concat " op " (List.map operand_text t.Task.operands) in
  let store =
    match t.Task.store with
    | Some (va, _) -> Printf.sprintf "  store(0x%x, t%d)" va t.Task.id
    | None -> Printf.sprintf "  send(t%d)" t.Task.id
  in
  syncs @ [ Printf.sprintf "  t%d = %s" t.Task.id (if rhs = "" then "const" else rhs); store ]

let emit tasks =
  let by_node = Hashtbl.create 8 in
  List.iter
    (fun (t : Task.t) ->
      let cur = Option.value (Hashtbl.find_opt by_node t.Task.node) ~default:[] in
      Hashtbl.replace by_node t.Task.node (t :: cur))
    tasks;
  let nodes = List.sort_uniq compare (List.map (fun (t : Task.t) -> t.Task.node) tasks) in
  let render node =
    let entries = List.rev (Option.value (Hashtbl.find_opt by_node node) ~default:[]) in
    Printf.sprintf "node %d:\n%s" node
      (String.concat "\n" (List.concat_map task_lines entries))
  in
  String.concat "\n" (List.map render nodes)

let emit_statement ctx ~store_node stmt env =
  let split = Splitter.split ctx ~store_node stmt env in
  let sched = Schedule.schedule ctx ~group:0 split stmt env in
  emit sched.Schedule.tasks
