(** The highly-optimized default computation placement the paper compares
    against (Section 6.1): the iteration space is divided into chunks and
    each chunk is assigned to the core that is most beneficial from an
    LLC/MC-locality viewpoint, using profile (ground-truth) data. Every
    statement instance then executes entirely on its chunk's node. *)

val assign_iterations :
  Context.t -> Ndp_ir.Loop.nest -> Ndp_ir.Env.t list -> int array
(** Node per iteration index. Chunks are contiguous runs of iterations;
    each chunk goes to the distinct node minimizing total distance to the
    home banks of the data the chunk touches. *)

val compile_instance :
  Context.t -> group:int -> node:int -> Ndp_ir.Dependence.instance -> Ndp_sim.Task.t
(** One task per statement instance: fetch every operand to [node],
    compute, store the result to its home. *)
