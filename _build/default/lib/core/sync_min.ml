let minimize ~enabled arcs =
  let arcs = List.sort_uniq compare arcs in
  if (not enabled) || arcs = [] then arcs
  else begin
    (* Compact task ids to a dense range for the reduction. *)
    let ids = List.sort_uniq compare (List.concat_map (fun (a, b) -> [ a; b ]) arcs) in
    let index = Hashtbl.create (List.length ids) in
    List.iteri (fun i id -> Hashtbl.replace index id i) ids;
    let back = Array.of_list ids in
    let dense = List.map (fun (a, b) -> (Hashtbl.find index a, Hashtbl.find index b)) arcs in
    let n = List.length ids in
    if not (Ndp_graph.Transitive.is_dag ~n dense) then arcs
    else
      Ndp_graph.Transitive.reduction ~n dense
      |> List.map (fun (a, b) -> (back.(a), back.(b)))
  end

let syncs_per_consumer arcs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (_, consumer) ->
      Hashtbl.replace tbl consumer (Option.value (Hashtbl.find_opt tbl consumer) ~default:0 + 1))
    arcs;
  tbl
