(** Data location detection (Section 4.1) — the [GetNode] function of
    Algorithm 1.

    For an analyzable reference the compiler resolves the virtual address,
    translates it under the page-coloring assumption, and asks the L2 miss
    predictor whether the home bank or the servicing memory controller
    should count as the data's location. The variable2node map overrides
    both when an earlier subcomputation in the window already fetched the
    line into some node's L1. *)

type t = {
  ref_ : Ndp_ir.Reference.t;
  node : int; (** compile-time location on the mesh *)
  in_l1 : bool; (** found in the variable2node map *)
  predicted_hit : bool option; (** [Some] when the predictor was consulted *)
  va : int option; (** virtual address, when resolvable at compile time *)
  bytes : int;
}

val locate :
  Context.t -> store_node:int -> Ndp_ir.Reference.t -> Ndp_ir.Env.t -> t
(** References the compiler cannot resolve are pinned to [store_node],
    matching default execution for that operand. *)

val line_of : Context.t -> int -> int
(** Cache-line number of a virtual address. *)
