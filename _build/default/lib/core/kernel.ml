open Ndp_ir

type t = {
  name : string;
  description : string;
  program : Loop.program;
  index_arrays : (string * int array) list;
  hot_arrays : string list;
}

let make ~name ~description ~program ?(index_arrays = []) ?(hot_arrays = []) () =
  { name; description; program; index_arrays; hot_arrays }

let inspector t =
  let insp = Inspector.create () in
  List.iter (fun (name, contents) -> Inspector.declare_index_array insp name contents) t.index_arrays;
  insp

let address_of t name i = Array_decl.address (Array_decl.find t.program.Loop.arrays name) i

let hot_ranges t ~budget =
  let add (used, acc) name =
    match List.find_opt (fun d -> d.Array_decl.name = name) t.program.Loop.arrays with
    | None -> (used, acc)
    | Some d ->
      let bytes = d.Array_decl.length * d.Array_decl.elem_size in
      if used + bytes > budget then (used, acc)
      else (used + bytes, (d.Array_decl.base_va, bytes) :: acc)
  in
  let _, acc = List.fold_left add (0, []) t.hot_arrays in
  List.rev acc

let total_statements t = List.length (Loop.all_statements t.program)
