module Task = Ndp_sim.Task

let buffer_dot f =
  let b = Buffer.create 1024 in
  Buffer.add_string b "digraph ndp {\n  rankdir=BT;\n  node [fontname=\"monospace\"];\n";
  f b;
  Buffer.add_string b "}\n";
  Buffer.contents b

let task_graph tasks =
  buffer_dot (fun b ->
      List.iter
        (fun ((t : Task.t), level) ->
          let loads =
            List.length
              (List.filter (function Task.Load _ -> true | Task.Result _ -> false) t.Task.operands)
          in
          let style = if t.Task.syncs > 0 then ",peripheries=2,style=dashed" else "" in
          Buffer.add_string b
            (Printf.sprintf
               "  t%d [shape=box,label=\"t%d @node%d\\nlevel %d, %d loads, %d ops\"%s];\n"
               t.Task.id t.Task.id t.Task.node level loads t.Task.cost style);
          List.iter
            (function
              | Task.Result { producer; bytes } ->
                Buffer.add_string b
                  (Printf.sprintf "  t%d -> t%d [label=\"%dB\"];\n" producer t.Task.id bytes)
              | Task.Load _ -> ())
            t.Task.operands;
          match t.Task.store with
          | Some (va, _) ->
            Buffer.add_string b
              (Printf.sprintf "  t%d -> store%d [style=dotted];\n  store%d [shape=cylinder,label=\"0x%x\"];\n"
                 t.Task.id t.Task.id t.Task.id va)
          | None -> ())
        tasks)

let statement_mst (split : Splitter.t) =
  buffer_dot (fun b ->
      Buffer.add_string b "  edge [dir=none];\n";
      List.iter
        (fun node ->
          let items = Option.value (List.assoc_opt node split.Splitter.items_at) ~default:[] in
          let labels =
            String.concat "\\n"
              (List.map
                 (fun (l : Location.t) -> Ndp_ir.Reference.to_string l.Location.ref_)
                 items)
          in
          let shape = if node = split.Splitter.store_node then "doublecircle" else "circle" in
          Buffer.add_string b
            (Printf.sprintf "  n%d [shape=%s,label=\"node %d\\n%s\"];\n" node shape node labels))
        split.Splitter.nodes;
      List.iter
        (fun (e : Ndp_graph.Kruskal.edge) ->
          Buffer.add_string b
            (Printf.sprintf "  n%d -> n%d [label=\"%d\"];\n" e.Ndp_graph.Kruskal.u
               e.Ndp_graph.Kruskal.v e.Ndp_graph.Kruskal.weight))
        split.Splitter.edges)
