(** Graphviz (DOT) export of the partitioner's data structures, for
    inspecting schedules visually: [dot -Tsvg out.dot > out.svg]. *)

val task_graph : (Ndp_sim.Task.t * int) list -> string
(** A compiled window's subcomputation DAG: one box per task labelled with
    its mesh node, solid edges for partial-result flow, a dashed ring on
    tasks that synchronize. Takes the (task, level) pairs of
    {!Window.compile}. *)

val statement_mst : Splitter.t -> string
(** The spanning tree of one statement over the mesh nodes that hold its
    data, edge labels carrying link distances — the paper's Figure 4b. *)
