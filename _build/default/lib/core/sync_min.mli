(** Transitive-closure-based synchronization minimization (Section 4.5).

    The synchronization graph has one vertex per subcomputation instance
    and an arc wherever one subcomputation must wait for another. An arc
    already implied by a longer chain of arcs is redundant and dropped. *)

val minimize : enabled:bool -> (int * int) list -> (int * int) list
(** [minimize ~enabled arcs] returns the surviving arcs (deduplicated).
    Arc endpoints are arbitrary task ids. When [enabled] is false only
    exact duplicates are removed, preserving the unminimized count. *)

val syncs_per_consumer : (int * int) list -> (int, int) Hashtbl.t
(** Number of surviving arcs into each consumer task. *)
