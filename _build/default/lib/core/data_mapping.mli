(** Profile-based data-to-MC page mapping (Figure 23).

    For each virtual page, the profiler counts accesses per computing node
    and re-homes the page's L2-miss service to the memory controller
    preferred by the majority of those nodes (minimum total distance). *)

val profile :
  Context.t ->
  accesses:(int * int) list ->
  (int * int) list
(** [profile ctx ~accesses] takes [(virtual page, node)] access samples and
    returns [(virtual page, mc node)] overrides for
    {!Ndp_sim.Machine.set_mc_overrides}. *)

val page_of : Context.t -> int -> int
