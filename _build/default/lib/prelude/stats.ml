let sum = List.fold_left ( +. ) 0.0

let mean = function
  | [] -> 0.0
  | xs -> sum xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.0
  | xs ->
    let logs = List.map (fun x -> assert (x > 0.0); log x) xs in
    exp (mean logs)

let stddev = function
  | [] | [ _ ] -> 0.0
  | xs ->
    let m = mean xs in
    let sq = List.map (fun x -> (x -. m) ** 2.0) xs in
    sqrt (mean sq)

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty list"
  | x :: xs ->
    List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) xs

let percentile p = function
  | [] -> invalid_arg "Stats.percentile: empty list"
  | xs ->
    let sorted = List.sort compare xs in
    let n = List.length sorted in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    let rank = max 1 (min n rank) in
    List.nth sorted (rank - 1)

let ratio num den = if den = 0.0 then 0.0 else num /. den

let improvement_pct base opt =
  if base = 0.0 then 0.0 else (base -. opt) /. base *. 100.0
