(** Deterministic pseudo-random number generation (splitmix64).

    All randomized behaviour in the repository flows through this module so
    that every experiment is reproducible from a seed. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Two generators created from the
    same seed produce identical streams. *)

val copy : t -> t
(** Independent copy that continues from the current state. *)

val next_int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val split : t -> t
(** Derive an independent generator; the parent stream advances once. *)
