lib/prelude/table.ml: Array List Printf String
