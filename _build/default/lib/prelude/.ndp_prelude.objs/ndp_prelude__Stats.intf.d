lib/prelude/stats.mli:
