lib/prelude/table.mli:
