lib/prelude/rng.mli:
