type t = { header : string list; mutable rows : string list list }

let create ~header = { header; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let cell_f v = Printf.sprintf "%.2f" v

let cell_pct v = Printf.sprintf "%.2f%%" v

let render t =
  let rows = List.rev t.rows in
  let ncols =
    List.fold_left (fun acc r -> max acc (List.length r)) (List.length t.header) rows
  in
  let pad row = row @ List.init (ncols - List.length row) (fun _ -> "") in
  let all = List.map pad (t.header :: rows) in
  let widths = Array.make ncols 0 in
  let note_widths row =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row
  in
  List.iter note_widths all;
  let render_row row =
    let cells = List.mapi (fun i c -> Printf.sprintf "%-*s" widths.(i) c) row in
    String.concat "  " cells
  in
  let sep =
    String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  match all with
  | header :: body ->
    String.concat "\n" ((render_row header :: sep :: List.map render_row body) @ [ "" ])
  | [] -> ""

let print t = print_string (render t)
