(** Plain-text table rendering for experiment output. *)

type t

val create : header:string list -> t

val add_row : t -> string list -> unit
(** Rows may be shorter than the header; missing cells render empty. *)

val render : t -> string
(** Column-aligned rendering with a separator under the header. *)

val print : t -> unit

val cell_f : float -> string
(** Fixed 2-decimal rendering used for all numeric cells. *)

val cell_pct : float -> string
(** Like [cell_f] with a ["%"] suffix. *)
