(** Summary statistics used throughout experiment reporting. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values; 0 on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)

val min_max : float list -> float * float
(** Smallest and largest elements. Raises [Invalid_argument] on []. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,100\]], nearest-rank on sorted data.
    Raises [Invalid_argument] on []. *)

val sum : float list -> float

val ratio : float -> float -> float
(** [ratio num den] is [num /. den], or 0 when [den = 0]. *)

val improvement_pct : float -> float -> float
(** [improvement_pct base opt] is the percent reduction of [opt] relative to
    [base]: [(base - opt) / base * 100]; 0 when [base = 0]. *)
