test/test_prelude.ml: Alcotest Array Astring Fun Gen List Ndp_prelude QCheck QCheck_alcotest Rng Stats Table
