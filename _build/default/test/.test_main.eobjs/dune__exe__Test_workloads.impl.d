test/test_workloads.ml: Alcotest Array Fun List Ndp_core Ndp_ir Ndp_workloads Printf
