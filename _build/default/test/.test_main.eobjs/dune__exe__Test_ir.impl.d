test/test_ir.ml: Alcotest Array_decl Dependence Env Expr Fmt Inspector List Loop Ndp_ir Nested_set Op Parser QCheck QCheck_alcotest Reference Stmt Subscript
