test/test_sim.ml: Alcotest Config Energy Engine List Machine Ndp_ir Ndp_sim Network Option Stats
