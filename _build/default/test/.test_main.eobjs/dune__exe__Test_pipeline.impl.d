test/test_pipeline.ml: Alcotest Array List Ndp_core Ndp_mem Ndp_noc Ndp_sim Ndp_workloads Printf
