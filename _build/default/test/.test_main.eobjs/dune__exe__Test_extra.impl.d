test/test_extra.ml: Alcotest Array Astring Env Gen List Ndp_core Ndp_experiments Ndp_ir Ndp_prelude Ndp_sim Ndp_workloads Printf QCheck QCheck_alcotest Subscript
