test/test_graph.ml: Alcotest Array Kruskal List Ndp_graph Ndp_prelude Option QCheck QCheck_alcotest Rooted_tree Transitive Union_find
