test/test_noc.ml: Alcotest Cluster Coord List Mesh Ndp_noc QCheck QCheck_alcotest
