test/test_mem.ml: Addr_map Alcotest Cache Gen List Miss_predictor Ndp_mem Ndp_noc Page_alloc QCheck QCheck_alcotest Snuca
