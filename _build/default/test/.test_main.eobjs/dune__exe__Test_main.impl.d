test/test_main.ml: Alcotest Test_core Test_extra Test_graph Test_ir Test_mem Test_noc Test_pipeline Test_prelude Test_sim Test_workloads
