open Ndp_prelude

let check_float = Alcotest.(check (float 1e-9))

let rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let rng_distinct_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different streams" false (Rng.next_int64 a = Rng.next_int64 b)

let rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10)
  done

let rng_float_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 3.0 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 3.0)
  done

let rng_shuffle_permutes () =
  let rng = Rng.create 9 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let rng_split_independent () =
  let parent = Rng.create 3 in
  let child = Rng.split parent in
  Alcotest.(check bool) "child differs" false (Rng.next_int64 child = Rng.next_int64 parent)

let rng_copy () =
  let a = Rng.create 5 in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.next_int64 a) (Rng.next_int64 b)

let stats_mean () =
  check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check_float "mean empty" 0.0 (Stats.mean [])

let stats_geomean () =
  check_float "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ]);
  check_float "geomean singleton" 5.0 (Stats.geomean [ 5.0 ])

let stats_stddev () =
  check_float "stddev constant" 0.0 (Stats.stddev [ 4.0; 4.0; 4.0 ]);
  check_float "stddev" (sqrt 2.0) (Stats.stddev [ 2.0; 6.0; 4.0; 4.0 ])

let stats_min_max () =
  Alcotest.(check (pair (float 0.0) (float 0.0))) "min max" (1.0, 9.0)
    (Stats.min_max [ 3.0; 1.0; 9.0; 4.0 ])

let stats_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  check_float "p50" 50.0 (Stats.percentile 50.0 xs);
  check_float "p100" 100.0 (Stats.percentile 100.0 xs);
  check_float "p1" 1.0 (Stats.percentile 1.0 xs)

let stats_improvement () =
  check_float "halving is 50%" 50.0 (Stats.improvement_pct 100.0 50.0);
  check_float "zero base" 0.0 (Stats.improvement_pct 0.0 50.0)

let table_renders () =
  let t = Table.create ~header:[ "a"; "b" ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "longer" ];
  let s = Table.render t in
  Alcotest.(check bool) "mentions all cells" true
    (List.for_all (fun needle ->
         Astring.String.is_infix ~affix:needle s)
       [ "a"; "b"; "x"; "1"; "longer" ])

let qcheck_percentile_within =
  QCheck.Test.make ~name:"percentile lies within data bounds" ~count:200
    QCheck.(list_of_size Gen.(1 -- 40) (float_bound_exclusive 1000.0))
    (fun xs ->
      QCheck.assume (xs <> []);
      let p = Stats.percentile 50.0 xs in
      let lo, hi = Stats.min_max xs in
      p >= lo && p <= hi)

let qcheck_geomean_le_mean =
  QCheck.Test.make ~name:"geomean <= arithmetic mean (AM-GM)" ~count:200
    QCheck.(list_of_size Gen.(1 -- 40) (float_range 0.001 1000.0))
    (fun xs -> Stats.geomean xs <= Stats.mean xs +. 1e-6)

let tests =
  [
    ( "prelude",
      [
        Alcotest.test_case "rng deterministic" `Quick rng_deterministic;
        Alcotest.test_case "rng distinct seeds" `Quick rng_distinct_seeds;
        Alcotest.test_case "rng int bounds" `Quick rng_bounds;
        Alcotest.test_case "rng float bounds" `Quick rng_float_bounds;
        Alcotest.test_case "rng shuffle permutes" `Quick rng_shuffle_permutes;
        Alcotest.test_case "rng split independent" `Quick rng_split_independent;
        Alcotest.test_case "rng copy" `Quick rng_copy;
        Alcotest.test_case "stats mean" `Quick stats_mean;
        Alcotest.test_case "stats geomean" `Quick stats_geomean;
        Alcotest.test_case "stats stddev" `Quick stats_stddev;
        Alcotest.test_case "stats min_max" `Quick stats_min_max;
        Alcotest.test_case "stats percentile" `Quick stats_percentile;
        Alcotest.test_case "stats improvement" `Quick stats_improvement;
        Alcotest.test_case "table renders" `Quick table_renders;
        QCheck_alcotest.to_alcotest qcheck_percentile_within;
        QCheck_alcotest.to_alcotest qcheck_geomean_le_mean;
      ] );
  ]
