open Ndp_graph

let uf_basics () =
  let uf = Union_find.create 5 in
  Alcotest.(check int) "five sets" 5 (Union_find.count uf);
  Alcotest.(check bool) "union succeeds" true (Union_find.union uf 0 1);
  Alcotest.(check bool) "repeat union fails" false (Union_find.union uf 1 0);
  Alcotest.(check bool) "same" true (Union_find.same uf 0 1);
  Alcotest.(check bool) "not same" false (Union_find.same uf 0 2);
  Alcotest.(check int) "four sets" 4 (Union_find.count uf)

let uf_transitive () =
  let uf = Union_find.create 6 in
  ignore (Union_find.union uf 0 1);
  ignore (Union_find.union uf 1 2);
  ignore (Union_find.union uf 3 4);
  Alcotest.(check bool) "0~2" true (Union_find.same uf 0 2);
  Alcotest.(check bool) "2!~3" false (Union_find.same uf 2 3);
  ignore (Union_find.union uf 2 3);
  Alcotest.(check bool) "0~4" true (Union_find.same uf 0 4)

let edge u v weight = { Kruskal.u; v; weight }

let kruskal_triangle () =
  (* Triangle 0-1 (1), 1-2 (2), 0-2 (3): MST drops the heaviest edge. *)
  let mst = Kruskal.mst ~n:3 [ edge 0 1 1; edge 1 2 2; edge 0 2 3 ] in
  Alcotest.(check int) "two edges" 2 (List.length mst);
  Alcotest.(check int) "weight 3" 3 (Kruskal.total_weight mst);
  Alcotest.(check bool) "spanning" true (Kruskal.is_spanning ~n:3 mst)

let kruskal_deterministic_ties () =
  let edges = [ edge 0 1 1; edge 1 2 1; edge 0 2 1 ] in
  let a = Kruskal.mst ~n:3 edges and b = Kruskal.mst ~n:3 (List.rev edges) in
  Alcotest.(check bool) "tie-broken deterministically" true (a = b)

let kruskal_forest () =
  (* Two disconnected components give a forest, not a failure. *)
  let mst = Kruskal.mst ~n:4 [ edge 0 1 1; edge 2 3 1 ] in
  Alcotest.(check int) "two edges" 2 (List.length mst);
  Alcotest.(check bool) "not spanning" false (Kruskal.is_spanning ~n:4 mst)

(* Brute-force MST weight on tiny graphs for the property test. *)
let brute_force_mst_weight ~n edges =
  let rec subsets = function
    | [] -> [ [] ]
    | e :: rest ->
      let s = subsets rest in
      s @ List.map (fun sub -> e :: sub) s
  in
  let candidates =
    List.filter
      (fun sub -> List.length sub = n - 1 && Kruskal.is_spanning ~n sub)
      (subsets edges)
  in
  List.fold_left (fun acc sub -> min acc (Kruskal.total_weight sub)) max_int candidates

let qcheck_kruskal_minimal =
  QCheck.Test.make ~name:"kruskal matches brute force on K4/K5" ~count:60
    QCheck.(pair (2 -- 5) (small_int))
    (fun (n, seed) ->
      let rng = Ndp_prelude.Rng.create seed in
      let edges = ref [] in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          edges := edge i j (1 + Ndp_prelude.Rng.int rng 9) :: !edges
        done
      done;
      let mst = Kruskal.mst ~n !edges in
      Kruskal.is_spanning ~n mst
      && Kruskal.total_weight mst = brute_force_mst_weight ~n !edges)

let tree_structure () =
  let edges = [ edge 0 1 2; edge 1 2 3; edge 1 3 1 ] in
  let t = Rooted_tree.of_edges ~root:0 edges in
  Alcotest.(check int) "root" 0 (Rooted_tree.root t);
  Alcotest.(check (list int)) "children of 1" [ 2; 3 ] (Rooted_tree.children t 1);
  Alcotest.(check (option int)) "parent of 2" (Some 1) (Rooted_tree.parent t 2);
  Alcotest.(check (option int)) "root has no parent" None (Rooted_tree.parent t 0);
  Alcotest.(check (list int)) "leaves" [ 2; 3 ] (List.sort compare (Rooted_tree.leaves t));
  Alcotest.(check int) "edge weight" 3 (Rooted_tree.edge_weight t 2);
  Alcotest.(check int) "depth" 2 (Rooted_tree.depth t 3)

let tree_postorder () =
  let edges = [ edge 0 1 1; edge 1 2 1; edge 1 3 1 ] in
  let t = Rooted_tree.of_edges ~root:0 edges in
  let order = Rooted_tree.postorder t in
  let pos v = Option.get (List.find_index (( = ) v) order) in
  Alcotest.(check bool) "children before parent" true (pos 2 < pos 1 && pos 3 < pos 1);
  Alcotest.(check bool) "root last" true (pos 0 = 3)

let tree_rejects_cycle () =
  Alcotest.check_raises "cycle rejected"
    (Invalid_argument "Rooted_tree.of_edges: edge set contains a cycle")
    (fun () -> ignore (Rooted_tree.of_edges ~root:0 [ edge 0 1 1; edge 1 2 1; edge 2 0 1 ]))

let closure_reachability () =
  let r = Transitive.closure ~n:4 [ (0, 1); (1, 2) ] in
  Alcotest.(check bool) "0 reaches 2" true r.(0).(2);
  Alcotest.(check bool) "2 does not reach 0" false r.(2).(0);
  Alcotest.(check bool) "3 isolated" false r.(0).(3)

let reduction_drops_redundant () =
  (* The paper's example: a chain 0->1->2 plus a direct 0->2 sync. *)
  let reduced = Transitive.reduction ~n:3 [ (0, 1); (1, 2); (0, 2) ] in
  Alcotest.(check (list (pair int int))) "redundant arc dropped" [ (0, 1); (1, 2) ]
    (List.sort compare reduced)

let reduction_keeps_needed () =
  let arcs = [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let reduced = Transitive.reduction ~n:4 arcs in
  Alcotest.(check (list (pair int int))) "diamond kept" (List.sort compare arcs)
    (List.sort compare reduced)

let reduction_rejects_cycle () =
  Alcotest.check_raises "cycle rejected"
    (Invalid_argument "Transitive.reduction: graph has a cycle")
    (fun () -> ignore (Transitive.reduction ~n:2 [ (0, 1); (1, 0) ]))

let qcheck_reduction_preserves_closure =
  QCheck.Test.make ~name:"transitive reduction preserves reachability" ~count:100
    QCheck.(small_int)
    (fun seed ->
      let rng = Ndp_prelude.Rng.create seed in
      let n = 6 in
      (* Random DAG: only forward arcs. *)
      let arcs = ref [] in
      for i = 0 to n - 2 do
        for j = i + 1 to n - 1 do
          if Ndp_prelude.Rng.chance rng 0.4 then arcs := (i, j) :: !arcs
        done
      done;
      let before = Transitive.closure ~n !arcs in
      let after = Transitive.closure ~n (Transitive.reduction ~n !arcs) in
      before = after)

let tests =
  [
    ( "graph",
      [
        Alcotest.test_case "union-find basics" `Quick uf_basics;
        Alcotest.test_case "union-find transitive" `Quick uf_transitive;
        Alcotest.test_case "kruskal triangle" `Quick kruskal_triangle;
        Alcotest.test_case "kruskal deterministic ties" `Quick kruskal_deterministic_ties;
        Alcotest.test_case "kruskal forest" `Quick kruskal_forest;
        Alcotest.test_case "rooted tree structure" `Quick tree_structure;
        Alcotest.test_case "rooted tree postorder" `Quick tree_postorder;
        Alcotest.test_case "rooted tree rejects cycle" `Quick tree_rejects_cycle;
        Alcotest.test_case "closure reachability" `Quick closure_reachability;
        Alcotest.test_case "reduction drops redundant sync" `Quick reduction_drops_redundant;
        Alcotest.test_case "reduction keeps diamond" `Quick reduction_keeps_needed;
        Alcotest.test_case "reduction rejects cycle" `Quick reduction_rejects_cycle;
        QCheck_alcotest.to_alcotest qcheck_kruskal_minimal;
        QCheck_alcotest.to_alcotest qcheck_reduction_preserves_closure;
      ] );
  ]
