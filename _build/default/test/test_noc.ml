open Ndp_noc

let mesh6 = Mesh.create ~cols:6 ~rows:6

let manhattan () =
  Alcotest.(check int) "distance" 7 (Coord.manhattan (Coord.make 0 0) (Coord.make 3 4));
  Alcotest.(check int) "self" 0 (Coord.manhattan (Coord.make 2 2) (Coord.make 2 2))

let coords_roundtrip () =
  for id = 0 to Mesh.size mesh6 - 1 do
    Alcotest.(check int) "roundtrip" id (Mesh.node_of_coord mesh6 (Mesh.coord_of_node mesh6 id))
  done

let corners_are_mcs () =
  Alcotest.(check (list int)) "corner ids" [ 0; 5; 30; 35 ]
    (List.sort compare (Mesh.memory_controllers mesh6))

let nearest_mc () =
  Alcotest.(check int) "origin corner" 0 (Mesh.nearest_mc mesh6 0);
  (* Node (1,1) = id 7 is closest to corner 0. *)
  Alcotest.(check int) "interior node" 0 (Mesh.nearest_mc mesh6 7);
  (* Node (4,4) = id 28 is closest to corner 35. *)
  Alcotest.(check int) "far interior" 35 (Mesh.nearest_mc mesh6 28)

let xy_route_length () =
  for src = 0 to Mesh.size mesh6 - 1 do
    let dst = (src * 7) mod 36 in
    Alcotest.(check int) "route length = manhattan distance" (Mesh.distance mesh6 src dst)
      (List.length (Mesh.xy_route mesh6 ~src ~dst))
  done

let xy_route_connects () =
  let route = Mesh.xy_route mesh6 ~src:0 ~dst:35 in
  let rec connected prev = function
    | [] -> prev = 35
    | { Mesh.from_node; to_node } :: rest -> from_node = prev && connected to_node rest
  in
  Alcotest.(check bool) "contiguous path" true (connected 0 route)

let link_index_distinct () =
  let idx = List.map (Mesh.link_index mesh6) (Mesh.links mesh6) in
  Alcotest.(check int) "all link indices distinct" (List.length idx)
    (List.length (List.sort_uniq compare idx));
  List.iter
    (fun i -> Alcotest.(check bool) "within bound" true (i >= 0 && i < Mesh.num_links mesh6))
    idx

let quadrants () =
  Alcotest.(check int) "origin in q0" 0 (Mesh.quadrant_of_node mesh6 0);
  Alcotest.(check int) "far corner in q3" 3 (Mesh.quadrant_of_node mesh6 35);
  List.iter
    (fun q ->
      Alcotest.(check int) "9 nodes per quadrant" 9 (List.length (Mesh.nodes_in_quadrant mesh6 q));
      Alcotest.(check int) "mc in own quadrant" q
        (Mesh.quadrant_of_node mesh6 (Mesh.mc_of_quadrant mesh6 q)))
    [ 0; 1; 2; 3 ]

let cluster_modes () =
  (* Quadrant/SNC-4: the controller shares the home bank's quadrant. *)
  List.iter
    (fun mode ->
      for home_bank = 0 to 35 do
        let mc = Cluster.mc_for mode mesh6 ~home_bank ~channel:2 in
        Alcotest.(check int) "mc in home quadrant"
          (Mesh.quadrant_of_node mesh6 home_bank)
          (Mesh.quadrant_of_node mesh6 mc)
      done)
    [ Cluster.Quadrant; Cluster.Snc4 ];
  (* All-to-all: the channel picks the controller regardless of the bank. *)
  let mc0 = Cluster.mc_for Cluster.All_to_all mesh6 ~home_bank:14 ~channel:0 in
  let mc1 = Cluster.mc_for Cluster.All_to_all mesh6 ~home_bank:14 ~channel:1 in
  Alcotest.(check bool) "channels map to different MCs" true (mc0 <> mc1)

let cluster_strings () =
  List.iter
    (fun c ->
      Alcotest.(check string) "roundtrip" (Cluster.to_string c)
        (match Cluster.of_string (Cluster.to_string c) with
        | Ok c' -> Cluster.to_string c'
        | Error e -> e))
    Cluster.all

let qcheck_manhattan_triangle =
  QCheck.Test.make ~name:"manhattan satisfies triangle inequality" ~count:300
    QCheck.(triple (pair (0 -- 5) (0 -- 5)) (pair (0 -- 5) (0 -- 5)) (pair (0 -- 5) (0 -- 5)))
    (fun ((ax, ay), (bx, by), (cx, cy)) ->
      let a = Coord.make ax ay and b = Coord.make bx by and c = Coord.make cx cy in
      Coord.manhattan a c <= Coord.manhattan a b + Coord.manhattan b c)

let qcheck_route_symmetric_length =
  QCheck.Test.make ~name:"xy route lengths symmetric" ~count:200
    QCheck.(pair (0 -- 35) (0 -- 35))
    (fun (src, dst) ->
      List.length (Mesh.xy_route mesh6 ~src ~dst) = List.length (Mesh.xy_route mesh6 ~src:dst ~dst:src))

let tests =
  [
    ( "noc",
      [
        Alcotest.test_case "manhattan distance" `Quick manhattan;
        Alcotest.test_case "coord roundtrip" `Quick coords_roundtrip;
        Alcotest.test_case "corners are MCs" `Quick corners_are_mcs;
        Alcotest.test_case "nearest MC" `Quick nearest_mc;
        Alcotest.test_case "xy route length" `Quick xy_route_length;
        Alcotest.test_case "xy route connects" `Quick xy_route_connects;
        Alcotest.test_case "link indices distinct" `Quick link_index_distinct;
        Alcotest.test_case "quadrants" `Quick quadrants;
        Alcotest.test_case "cluster modes" `Quick cluster_modes;
        Alcotest.test_case "cluster strings" `Quick cluster_strings;
        QCheck_alcotest.to_alcotest qcheck_manhattan_triangle;
        QCheck_alcotest.to_alcotest qcheck_route_symmetric_length;
      ] );
  ]
