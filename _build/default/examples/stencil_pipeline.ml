(* A two-phase stencil pipeline (the Ocean-style workload of the paper's
   introduction): a 5-point relaxation feeding a vorticity pass. Shows the
   per-nest adaptive window selection and the cluster-mode sensitivity of
   Figure 22.

     dune exec examples/stencil_pipeline.exe *)

open Ndp_ir

let dim = 128

let build () =
  let n = dim * dim in
  let arrays =
    Array_decl.layout
      [ ("g", n, 8); ("gn", n, 8); ("w", n, 8); ("psi", n, 8); ("vor", n, 8) ]
  in
  let relax =
    Printf.sprintf
      "gn[%d*i+j] = w[%d*i+j] * (g[%d*i+j-1] + g[%d*i+j+1] + g[%d*i+j-%d] + g[%d*i+j+%d])"
      dim dim dim dim dim dim dim dim
  in
  let vort =
    Printf.sprintf "vor[%d*i+j] = (gn[%d*i+j] - psi[%d*i+j]) * w[%d*i+j]" dim dim dim dim
  in
  let vars = [ { Loop.var = "i"; lo = 1; hi = 17 }; { Loop.var = "j"; lo = 1; hi = 17 } ] in
  let nest = Loop.nest ~sweeps:3 "stencil" vars (Parser.statements [ relax; vort ]) in
  let program = Loop.program "stencil" ~arrays ~nests:[ nest ] in
  Ndp_core.Kernel.make ~name:"stencil" ~description:"5-point stencil pipeline" ~program
    ~hot_arrays:[ "g"; "gn"; "w" ] ()

let () =
  let kernel = build () in
  Printf.printf "%-12s %-8s %10s %10s %8s\n" "cluster" "memory" "default" "ours" "gain";
  List.iter
    (fun cluster ->
      List.iter
        (fun memory ->
          let config = Ndp_sim.Config.with_modes Ndp_sim.Config.default cluster memory in
          let d = Ndp_core.Pipeline.run ~config Ndp_core.Pipeline.Default kernel in
          let o =
            Ndp_core.Pipeline.run ~config
              (Ndp_core.Pipeline.Partitioned Ndp_core.Pipeline.partitioned_defaults)
              kernel
          in
          Printf.printf "%-12s %-8s %10d %10d %7.1f%%\n"
            (Ndp_noc.Cluster.to_string cluster)
            (Ndp_sim.Config.memory_mode_to_string memory)
            d.Ndp_core.Pipeline.exec_time o.Ndp_core.Pipeline.exec_time
            (100.0
            *. float_of_int (d.Ndp_core.Pipeline.exec_time - o.Ndp_core.Pipeline.exec_time)
            /. float_of_int d.Ndp_core.Pipeline.exec_time))
        Ndp_sim.Config.all_memory_modes)
    Ndp_noc.Cluster.all;
  let o =
    Ndp_core.Pipeline.run (Ndp_core.Pipeline.Partitioned Ndp_core.Pipeline.partitioned_defaults)
      kernel
  in
  Printf.printf "\nadaptive window chosen per nest: %s\n"
    (String.concat ", "
       (List.map (fun (n, w) -> Printf.sprintf "%s=%d" n w) o.Ndp_core.Pipeline.windows_chosen))
