(* The window-size tradeoff of Section 4.4 (Figures 20-21): sweep fixed
   statement-window sizes 1..8 on one application and compare against the
   adaptive per-nest choice. Small windows miss L1 reuse; large ones lose
   it again to pollution and cross-iteration grouping.

     dune exec examples/window_explorer.exe [app] *)

let () =
  let app = if Array.length Sys.argv > 1 then Sys.argv.(1) else "water" in
  let kernel =
    try Ndp_workloads.Suite.find app
    with Not_found ->
      Printf.eprintf "unknown app %s; one of: %s\n" app
        (String.concat ", " Ndp_workloads.Suite.names);
      exit 1
  in
  let default = Ndp_core.Pipeline.run Ndp_core.Pipeline.Default kernel in
  let base = default.Ndp_core.Pipeline.exec_time in
  Printf.printf "app: %s (default exec %d cycles)\n\n" app base;
  Printf.printf "%-10s %10s %8s %8s %8s\n" "window" "exec" "gain" "L1" "syncs";
  let report label (r : Ndp_core.Pipeline.result) =
    Printf.printf "%-10s %10d %7.1f%% %7.1f%% %8d\n" label r.Ndp_core.Pipeline.exec_time
      (100.0 *. float_of_int (base - r.Ndp_core.Pipeline.exec_time) /. float_of_int base)
      (100.0 *. Ndp_sim.Stats.l1_hit_rate r.Ndp_core.Pipeline.stats)
      r.Ndp_core.Pipeline.sync_arcs
  in
  for w = 1 to 8 do
    let r =
      Ndp_core.Pipeline.run
        (Ndp_core.Pipeline.Partitioned
           { Ndp_core.Pipeline.partitioned_defaults with
             Ndp_core.Pipeline.window = Ndp_core.Pipeline.Fixed w })
        kernel
    in
    report (Printf.sprintf "fixed %d" w) r
  done;
  let adaptive =
    Ndp_core.Pipeline.run
      (Ndp_core.Pipeline.Partitioned Ndp_core.Pipeline.partitioned_defaults)
      kernel
  in
  report "adaptive" adaptive;
  Printf.printf "\nadaptive chose: %s\n"
    (String.concat ", "
       (List.map (fun (n, w) -> Printf.sprintf "%s=%d" n w) adaptive.Ndp_core.Pipeline.windows_chosen))
