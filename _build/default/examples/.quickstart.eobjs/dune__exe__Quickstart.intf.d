examples/quickstart.mli:
