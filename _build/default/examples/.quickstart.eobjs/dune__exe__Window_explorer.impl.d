examples/window_explorer.ml: Array List Ndp_core Ndp_sim Ndp_workloads Printf String Sys
