examples/irregular_inspector.ml: Array_decl Loop Ndp_core Ndp_ir Ndp_sim Ndp_workloads Parser Printf
