examples/stencil_pipeline.ml: Array_decl List Loop Ndp_core Ndp_ir Ndp_noc Ndp_sim Parser Printf String
