examples/quickstart.ml: Array_decl Loop Ndp_core Ndp_ir Ndp_sim Parser Printf
