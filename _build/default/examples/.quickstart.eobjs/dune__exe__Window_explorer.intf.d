examples/window_explorer.mli:
