#!/bin/sh
# Repo verification gate: build, unit/property tests, then the static
# analysis suite (IR lint + schedule race detection over all 12 workloads
# under the default and partitioned schemes). Exits nonzero on the first
# failure. See DESIGN.md "Analysis & validation" for the diagnostic codes.
#
#   ./check.sh [-j N]
#
# -j N fans the validation cells over N domains (default: nproc). The
# diagnostics are identical at any job count. Each phase is timed, and
# the serial baseline recorded by a `-j 1` run (.check_serial_seconds) is
# compared against parallel runs so the speedup is visible.
set -e

jobs=$(nproc 2>/dev/null || echo 1)
while getopts j: opt; do
  case $opt in
  j) jobs=$OPTARG ;;
  *)
    echo "usage: $0 [-j N]" >&2
    exit 2
    ;;
  esac
done

now() { date +%s; }
t_start=$(now)

phase() {
  _name=$1
  shift
  _t0=$(now)
  "$@"
  echo "phase $_name: $(($(now) - _t0))s"
}

obs_gate() {
  # Trace an app end-to-end, self-check the trace against the aggregate
  # stats, and make sure the emitted Chrome JSON actually parses.
  _trace=$(mktemp /tmp/ndp_trace.XXXXXX.json)
  dune exec bin/ndp_run.exe -- trace mg -o "$_trace" --selfcheck
  if command -v python3 >/dev/null 2>&1; then
    python3 -c "import json,sys; d=json.load(open(sys.argv[1])); assert d['traceEvents'], 'empty traceEvents'" "$_trace"
  fi
  rm -f "$_trace"
  dune exec bin/ndp_run.exe -- stats fft --format json >/dev/null
}

phase build dune build
phase runtest dune runtest
phase obs obs_gate
phase check dune exec bin/ndp_run.exe -- check --jobs "$jobs"

total=$(($(now) - t_start))
baseline_file=.check_serial_seconds
if [ "$jobs" -le 1 ]; then
  echo "$total" >"$baseline_file"
  echo "total (serial, -j $jobs): ${total}s (recorded as baseline)"
elif [ -f "$baseline_file" ]; then
  before=$(cat "$baseline_file")
  echo "total: before (serial) ${before}s -> after (-j $jobs) ${total}s"
else
  echo "total (-j $jobs): ${total}s (no serial baseline; run ./check.sh -j 1 to record one)"
fi
