#!/bin/sh
# Repo verification gate: build, unit/property/golden tests, the
# observability self-check, the profiling reconciliation check (the
# attribution ledger must account for every flit-hop the NoC carried),
# the static-cost-model reconciliation (the closed-form table must stay
# within the divergence threshold of the measured ledger),
# the fault-injection + schedule-repair self-check, the serve daemon
# round-trip (a repeated identical request must come back as a
# byte-identical cache hit), the telemetry gate (one JSONL access-log
# line per request, a well-formed Prometheus exposition, and per-phase
# span sums reconciling with the request-latency histogram within 5%),
# the bench sentinel (`bench diff` accepts the committed BENCH_micro.json
# against itself and provably rejects a synthetic 2x regression),
# the fusion reconciliation gate (the fusion
# decision table must show a real >=15% measured flit-hop reduction on
# the residual-block chain workload), then the static analysis suite
# (IR lint + schedule race detection over all 14 workloads under the
# default, partitioned, and fused partitioned schemes — the fused
# schedules are race-validated over the whole suite here). Every phase
# runs even when an earlier one fails; the gate
# exits nonzero naming each failed phase, so a broken build can no longer
# mask a broken test phase (or vice versa). See DESIGN.md "Analysis &
# validation" for the diagnostic codes and "Fault model & repair" for the
# fault phase.
#
#   ./check.sh [-j N]
#
# -j N fans the validation cells over N domains (default: nproc). The
# diagnostics are identical at any job count. Each phase is timed, and
# the serial baseline recorded by a `-j 1` run (.check_serial_seconds) is
# compared against parallel runs so the speedup is visible.

jobs=$(nproc 2>/dev/null || echo 1)
while getopts j: opt; do
  case $opt in
  j) jobs=$OPTARG ;;
  *)
    echo "usage: $0 [-j N]" >&2
    exit 2
    ;;
  esac
done

now() { date +%s; }
t_start=$(now)

failures=""
phase() {
  _name=$1
  shift
  _t0=$(now)
  if "$@"; then
    echo "phase $_name: $(($(now) - _t0))s"
  else
    echo "phase $_name: FAILED ($(($(now) - _t0))s)" >&2
    failures="$failures $_name"
  fi
}

obs_gate() (
  # Trace an app end-to-end, self-check the trace against the aggregate
  # stats, and make sure the emitted Chrome JSON actually parses.
  set -e
  _trace=$(mktemp /tmp/ndp_trace.XXXXXX.json)
  dune exec bin/ndp_run.exe -- trace mg -o "$_trace" --selfcheck
  if command -v python3 >/dev/null 2>&1; then
    python3 -c "import json,sys; d=json.load(open(sys.argv[1])); assert d['traceEvents'], 'empty traceEvents'" "$_trace"
  fi
  rm -f "$_trace"
  dune exec bin/ndp_run.exe -- stats fft --format json >/dev/null
)

profile_gate() (
  # Profile an app and assert the attribution ledger reconciles exactly
  # against the NoC's own link counters: every flit-hop the simulated
  # network carried must be attributed to some (statement, array, route).
  set -e
  _prof=$(mktemp /tmp/ndp_profile.XXXXXX.json)
  dune exec bin/ndp_run.exe -- profile mg --format json >"$_prof"
  if command -v python3 >/dev/null 2>&1; then
    python3 -c "
import json, sys
d = json.load(open(sys.argv[1]))
r = d['reconciliation']
assert r['reconciled'], 'ledger does not reconcile: %r' % r
assert r['ledger_flit_hops'] == r['noc_link_flits'], r
assert r['ledger_flit_hops'] > 0, 'empty ledger'
assert d['ledger']['totals']['flit_hops'] == r['ledger_flit_hops'], 'totals mismatch'
assert d['timeline']['series'], 'no timeline series'
" "$_prof"
  fi
  rm -f "$_prof"
)

analyze_gate() (
  # Reconcile the static cost model against a measured run: the analyze
  # subcommand itself gates on the divergence threshold (exit nonzero),
  # and the JSON must carry a non-empty per-statement table whose static
  # total matches the sum of its rows.
  set -e
  _an=$(mktemp /tmp/ndp_analyze.XXXXXX.json)
  dune exec bin/ndp_run.exe -- analyze mg --format json >"$_an"
  if command -v python3 >/dev/null 2>&1; then
    python3 -c "
import json, sys
d = json.load(open(sys.argv[1]))
assert d['statements'], 'empty static cost table'
assert d['within_threshold'], 'divergence above threshold: %r' % d['totals']
t = d['totals']
assert t['static_flit_hops'] == sum(s['static_flit_hops'] for s in d['statements']), 'total != sum of rows'
assert t['static_flit_hops'] > 0 and t['measured_flit_hops'] > 0, 'empty totals'
" "$_an"
  fi
  rm -f "$_an"
)

serve_gate() (
  # Start the compile-as-a-service daemon on a throwaway socket, send the
  # same profile request twice, and assert the second reply is a result
  # cache hit whose body is byte-identical to the cold one; then shut the
  # daemon down cleanly.
  set -e
  _sock=$(mktemp -u /tmp/ndp_serve.XXXXXX.sock)
  _cold=$(mktemp /tmp/ndp_cold.XXXXXX.json)
  _warm=$(mktemp /tmp/ndp_warm.XXXXXX.json)
  _meta=$(mktemp /tmp/ndp_meta.XXXXXX.txt)
  dune exec bin/ndp_run.exe -- serve --socket "$_sock" 2>/dev/null &
  _daemon=$!
  # The daemon unlinks any stale socket then binds; poll for the file.
  _tries=0
  while [ ! -S "$_sock" ]; do
    _tries=$((_tries + 1))
    if [ "$_tries" -gt 100 ]; then
      echo "serve_gate: daemon never bound $_sock" >&2
      kill "$_daemon" 2>/dev/null || true
      exit 1
    fi
    sleep 0.1
  done
  _client="$(pwd)/_build/default/bin/ndp_run.exe"
  "$_client" client profile fft --socket "$_sock" --meta >"$_cold" 2>"$_meta"
  grep -q "cached=false" "$_meta"
  "$_client" client profile fft --socket "$_sock" --meta >"$_warm" 2>"$_meta"
  grep -q "cached=true" "$_meta"
  cmp "$_cold" "$_warm"
  "$_client" client shutdown --socket "$_sock" >/dev/null
  wait "$_daemon"
  rm -f "$_sock" "$_cold" "$_warm" "$_meta"
)

fusion_gate() (
  # Reconcile the fusion pass against the measured ledger: the decision
  # table must be non-empty on the residual-block chain workload, every
  # decision must elide stores and predict a positive saving, and the
  # fused run must undercut the unfused one by at least 15% of the
  # measured NoC flit-hops. (The fused schedules themselves are
  # race-validated suite-wide by the check phase's --fuse sweep.)
  set -e
  _fus=$(mktemp /tmp/ndp_fusion.XXXXXX.json)
  dune exec bin/ndp_run.exe -- analyze resnet_block --fusion --format json >"$_fus"
  if command -v python3 >/dev/null 2>&1; then
    python3 -c "
import json, sys
d = json.load(open(sys.argv[1]))
assert d['decisions'], 'no fusion decisions on resnet_block'
t = d['totals']
assert t['fused_flit_hops'] < t['unfused_flit_hops'], t
assert t['reduction_pct'] >= 15.0, 'reduction below 15%%: %r' % t
for dec in d['decisions']:
    assert dec['elided_stores'] > 0, dec
    assert dec['predicted_saved_flit_hops'] > 0, dec
    assert dec['measured_delta_flit_hops'] > 0, dec
" "$_fus"
  fi
  rm -f "$_fus"
)

telemetry_gate() (
  # Observability gate, two halves. (1) A deterministic stdio session
  # under the fake clock must emit exactly one well-formed JSONL
  # access-log line per demo request. (2) A real daemon must serve a
  # well-formed Prometheus exposition (TYPE'd families, no duplicate
  # series, cumulative histogram buckets, per-op request histograms),
  # and on a cold traced request the per-phase span sum must reconcile
  # with the recorded serve.request_ms within 5%.
  set -e
  _log=$(mktemp /tmp/ndp_access.XXXXXX.jsonl)
  _reqs=$(mktemp /tmp/ndp_reqs.XXXXXX.txt)
  dune exec bin/ndp_run.exe -- serve --demo-requests >"$_reqs"
  NDP_FAKE_CLOCK=1 dune exec bin/ndp_run.exe -- serve --stdio --access-log "$_log" <"$_reqs" >/dev/null
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$_reqs" "$_log" <<'PY'
import json, sys
reqs = sum(1 for i, _ in enumerate(open(sys.argv[1])) if i % 2 == 1)  # frames: len\npayload\n
lines = [json.loads(l) for l in open(sys.argv[2])]
assert len(lines) == reqs, 'expected %d access-log lines, got %d' % (reqs, len(lines))
for i, d in enumerate(lines):
    assert d['seq'] == i + 1 and d['id'] == i + 1, d
    for k in ('op', 'key', 'ok', 'cached', 'ms', 'bytes_out', 'spans', 'phases'):
        assert k in d, (k, d)
PY
  fi
  _sock=$(mktemp -u /tmp/ndp_tele.XXXXXX.sock)
  _prom=$(mktemp /tmp/ndp_prom.XXXXXX.txt)
  : >"$_log"
  dune exec bin/ndp_run.exe -- serve --socket "$_sock" --access-log "$_log" 2>/dev/null &
  _daemon=$!
  _tries=0
  while [ ! -S "$_sock" ]; do
    _tries=$((_tries + 1))
    if [ "$_tries" -gt 100 ]; then
      echo "telemetry_gate: daemon never bound $_sock" >&2
      kill "$_daemon" 2>/dev/null || true
      exit 1
    fi
    sleep 0.1
  done
  _client="$(pwd)/_build/default/bin/ndp_run.exe"
  "$_client" client profile cholesky --socket "$_sock" >/dev/null
  "$_client" client metrics-text --socket "$_sock" >"$_prom"
  "$_client" client shutdown --socket "$_sock" >/dev/null
  wait "$_daemon"
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$_prom" <<'PY'
import re, sys
seen, families, last = set(), {}, {}
for raw in open(sys.argv[1]):
    line = raw.rstrip('\n')
    if not line:
        continue
    if line.startswith('#'):
        m = re.match(r'# TYPE (\w+) (counter|gauge|histogram)$', line)
        assert m, 'bad comment line: %r' % line
        assert m.group(1) not in families, 'duplicate TYPE for %s' % m.group(1)
        families[m.group(1)] = m.group(2)
        continue
    m = re.match(r'([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$', line)
    assert m, 'bad sample line: %r' % line
    name, labels, value = m.group(1), m.group(2) or '', m.group(3)
    assert (name, labels) not in seen, 'duplicate series %s%s' % (name, labels)
    seen.add((name, labels))
    float(value)
    base = re.sub(r'_(bucket|sum|count)$', '', name)
    assert base in families or name in families, 'sample %s lacks a TYPE' % name
    if name.endswith('_bucket'):
        key = (base, re.sub(r'le="[^"]*",?', '', labels))
        v = float(value)
        assert v >= last.get(key, 0.0), 'non-cumulative buckets for %s%s' % (name, labels)
        last[key] = v
assert families.get('serve_requests') == 'counter', families
assert families.get('serve_request_ms') == 'histogram', families
assert any(n == 'serve_request_ms_bucket' and 'op="profile"' in l for n, l in seen), \
    'no per-op request histogram series'
PY
    python3 - "$_log" <<'PY'
import json, sys
cold = [d for d in map(json.loads, open(sys.argv[1])) if d['op'] == 'profile' and not d['cached']]
assert cold, 'no cold traced profile request in the access log'
d = cold[0]
phase_ms = sum(p['ms'] for p in d['phases'].values())
ratio = phase_ms / d['ms']
assert 0.95 <= ratio <= 1.0, \
    'phase spans (%.3f ms) do not reconcile with request ms (%.3f ms): ratio %.3f' \
    % (phase_ms, d['ms'], ratio)
PY
  fi
  rm -f "$_log" "$_reqs" "$_prom" "$_sock"
)

bench_sentinel_gate() (
  # The perf-regression sentinel must accept the committed baseline
  # against itself, and its self-test must prove it can actually fire:
  # a copy with one benchmark synthetically doubled has to come back
  # nonzero. A sentinel that cannot reject anything guards nothing.
  set -e
  dune exec bin/ndp_run.exe -- bench diff BENCH_micro.json BENCH_micro.json >/dev/null
  if command -v python3 >/dev/null 2>&1; then
    _slow=$(mktemp /tmp/ndp_bench_slow.XXXXXX.json)
    python3 -c "
import json, sys
d = json.load(open('BENCH_micro.json'))
d['tests'][0]['ns'] *= 2.0
json.dump(d, open(sys.argv[1], 'w'))
" "$_slow"
    if dune exec bin/ndp_run.exe -- bench diff BENCH_micro.json "$_slow" >/dev/null; then
      echo "bench_sentinel_gate: bench diff failed to flag a 2x regression" >&2
      rm -f "$_slow"
      exit 1
    fi
    rm -f "$_slow"
  fi
)

fault_gate() (
  # Inject a deterministic fault plan (killed link, stalled node, slowed
  # MC), repair the schedule around it, and run the built-in selfcheck:
  # same-seed reproducibility, empty-plan identity, avoided nodes idle
  # after repair, fault counters present.
  set -e
  dune exec bin/ndp_run.exe -- \
    inject fft --faults "kill=2,stall=9@0+200000,mc=0x2" --repair --selfcheck \
    >/dev/null
)

phase build dune build
phase runtest dune runtest
phase obs obs_gate
phase profile profile_gate
phase analyze analyze_gate
phase fault fault_gate
phase serve serve_gate
phase telemetry telemetry_gate
phase bench-sentinel bench_sentinel_gate
phase fusion fusion_gate
phase check dune exec bin/ndp_run.exe -- check --fuse --jobs "$jobs"

if [ -n "$failures" ]; then
  echo "check.sh: FAILED phases:$failures" >&2
  exit 1
fi

total=$(($(now) - t_start))
# Wall-clock budget: warn (without failing) when the full gate overruns,
# so a perf regression surfaces in every run, not only when someone
# re-benchmarks. BENCH_micro.json records the measured gate time.
budget=90
echo "gate budget: ${total}s of ${budget}s"
if [ "$total" -gt "$budget" ]; then
  echo "check.sh: WARNING: full gate took ${total}s (> ${budget}s budget)" >&2
fi
baseline_file=.check_serial_seconds
if [ "$jobs" -le 1 ]; then
  echo "$total" >"$baseline_file"
  echo "total (serial, -j $jobs): ${total}s (recorded as baseline)"
elif [ -f "$baseline_file" ]; then
  before=$(cat "$baseline_file")
  echo "total: before (serial) ${before}s -> after (-j $jobs) ${total}s"
else
  echo "total (-j $jobs): ${total}s (no serial baseline; run ./check.sh -j 1 to record one)"
fi
