#!/bin/sh
# Repo verification gate: build, unit/property tests, then the static
# analysis suite (IR lint + schedule race detection over all 12 workloads
# under the default and partitioned schemes). Exits nonzero on the first
# failure. See DESIGN.md "Analysis & validation" for the diagnostic codes.
set -e

dune build
dune runtest
dune exec bin/ndp_run.exe -- check
