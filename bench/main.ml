(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 6) on the simulated manycore, plus Bechamel
   micro-benchmarks of the compiler itself.

   Usage:
     main.exe            run all tables + figures
     main.exe all        tables + figures + ablations + micro
     main.exe table1     one artifact (table1..table3, fig13..fig24, summary)
     main.exe ablation   the DESIGN.md ablations
     main.exe micro      Bechamel micro-benchmarks *)

module E = Ndp_experiments

let micro () =
  let open Bechamel in
  let open Toolkit in
  let mesh = Ndp_noc.Mesh.create ~cols:6 ~rows:6 in
  let rng = Ndp_prelude.Rng.create 7 in
  let random_edges n =
    List.concat_map
      (fun u -> List.filter_map (fun v -> if u < v then Some { Ndp_graph.Kruskal.u; v; weight = 1 + Ndp_prelude.Rng.int rng 10 } else None)
          (List.init n Fun.id))
      (List.init n Fun.id)
  in
  let edges36 = random_edges 36 in
  let stmt =
    Ndp_ir.Parser.statement "A[i] = B[i] + C[i] * (D[i] + E[i+1]) + F[i] / G[i]"
  in
  let kernel = Ndp_workloads.Suite.find "cholesky" in
  let bench_mst =
    Test.make ~name:"kruskal-36-complete" (Staged.stage (fun () -> Ndp_graph.Kruskal.mst ~n:36 edges36))
  in
  let bench_route =
    Test.make ~name:"xy-route-corner-to-corner"
      (Staged.stage (fun () -> Ndp_noc.Mesh.xy_route mesh ~src:0 ~dst:35))
  in
  let bench_nested =
    Test.make ~name:"nested-set-build"
      (Staged.stage (fun () -> Ndp_ir.Nested_set.of_expr stmt.Ndp_ir.Stmt.rhs))
  in
  let bench_parse =
    Test.make ~name:"parse-statement"
      (Staged.stage (fun () ->
           Ndp_ir.Parser.statement "X[i] = Y[i] * (Z[i] + W[2*i+1]) - V[i] / U[i]"))
  in
  let bench_pipeline =
    Test.make ~name:"compile+simulate-cholesky"
      (Staged.stage (fun () ->
           Ndp_core.Pipeline.run
             (Ndp_core.Pipeline.Partitioned
                { Ndp_core.Pipeline.partitioned_defaults with
                  Ndp_core.Pipeline.window = Ndp_core.Pipeline.Fixed 2 })
             kernel))
  in
  (* Dependence analysis on a real instance stream: the bucketed analyze
     against the O(n^2) naive oracle it replaced. *)
  let module Dep = Ndp_ir.Dependence in
  let dep_prog = kernel.Ndp_core.Kernel.program in
  let dep_resolver (r : Ndp_ir.Reference.t) env =
    match Ndp_ir.Subscript.eval_affine env r.Ndp_ir.Reference.subscript with
    | Some i ->
      Some
        (Ndp_ir.Array_decl.address
           (Ndp_ir.Array_decl.find dep_prog.Ndp_ir.Loop.arrays r.Ndp_ir.Reference.array)
           i)
    | None -> None
  in
  let dep_stream =
    let nest = List.hd dep_prog.Ndp_ir.Loop.nests in
    let insts =
      List.concat_map
        (fun env ->
          List.mapi
            (fun stmt_idx stmt -> { Dep.stmt_idx; stmt; env })
            nest.Ndp_ir.Loop.body)
        (Ndp_ir.Loop.iterations nest)
    in
    List.filteri (fun i _ -> i < 384) insts
  in
  let bench_dep_bucketed =
    Test.make ~name:"dependence-analyze-bucketed-384"
      (Staged.stage (fun () -> Dep.analyze dep_resolver dep_stream))
  in
  let bench_dep_naive =
    Test.make ~name:"dependence-analyze-naive-384"
      (Staged.stage (fun () -> Dep.analyze_naive dep_resolver dep_stream))
  in
  let tests =
    Test.make_grouped ~name:"ndp"
      [
        bench_mst; bench_route; bench_nested; bench_parse; bench_pipeline;
        bench_dep_bucketed; bench_dep_naive;
      ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let results = Analyze.merge ols instances results in
  print_endline "== Micro-benchmarks (ns per run, OLS estimate) ==";
  Hashtbl.iter
    (fun measure tbl ->
      if measure = Measure.label Instance.monotonic_clock then
        Hashtbl.iter
          (fun test ols_result ->
            match Bechamel.Analyze.OLS.estimates ols_result with
            | Some [ est ] -> Printf.printf "%-40s %12.1f ns\n" test est
            | _ -> Printf.printf "%-40s (no estimate)\n" test)
          tbl)
    results

let () =
  let common = E.Common.create () in
  let artifacts =
    [
      ("table1", fun () -> E.Tables.table1 common);
      ("table2", fun () -> E.Tables.table2 common);
      ("table3", fun () -> E.Tables.table3 common);
      ("fig13", fun () -> E.Figures.fig13 common);
      ("fig14", fun () -> E.Figures.fig14 common);
      ("fig15", fun () -> E.Figures.fig15 common);
      ("fig16", fun () -> E.Figures.fig16 common);
      ("fig17", fun () -> E.Figures.fig17 common);
      ("fig18", fun () -> E.Figures.fig18 common);
      ("fig19", fun () -> E.Figures.fig19 common);
      ("fig20", fun () -> E.Figures.fig20 common);
      ("fig21", fun () -> E.Figures.fig21 common);
      ("fig22", fun () -> E.Figures.fig22 common);
      ("fig23", fun () -> E.Figures.fig23 common);
      ("fig24", fun () -> E.Figures.fig24 common);
      ("summary", fun () -> E.Figures.summary common);
    ]
  in
  let run_paper () = List.iter (fun (_, f) -> f ()) artifacts in
  match Sys.argv with
  | [| _ |] -> run_paper ()
  | [| _; "all" |] ->
    run_paper ();
    E.Ablation.all common;
    micro ()
  | [| _; "ablation" |] -> E.Ablation.all common
  | [| _; "micro" |] -> micro ()
  | [| _; name |] -> (
    match List.assoc_opt name artifacts with
    | Some f -> f ()
    | None ->
      Printf.eprintf "unknown artifact %s\n" name;
      exit 1)
  | _ ->
    prerr_endline "usage: main.exe [all|ablation|micro|table1..3|fig13..24]";
    exit 1
