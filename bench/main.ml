(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 6) on the simulated manycore, plus Bechamel
   micro-benchmarks of the compiler itself.

   Subcommands live in the declarative [commands] table at the bottom
   (name, summary, run function); usage is generated from it.

   Usage:
     main.exe            run all tables + figures
     main.exe all        tables + figures + ablations + micro
     main.exe table1     one artifact (table1..table3, fig13..fig24,
                         heatmap, summary)
     main.exe ablation   the DESIGN.md ablations
     main.exe micro      Bechamel micro-benchmarks (incl. observability
                         overhead, enabled vs disabled)
     main.exe micro --json
                         also time the full validation gate and write the
                         BENCH_micro.json trajectory file *)

module E = Ndp_experiments

(* A 256-instance sample of cholesky's first nest, with a compile context,
   for the window-size preprocessing benchmarks: the sliced path runs
   [Dep.analyze] once per call, the reanalyze oracle once per (candidate,
   chunk). *)
let choose_size_fixture () =
  let kernel = Ndp_workloads.Suite.find "cholesky" in
  let config = Ndp_sim.Config.default in
  let machine = Ndp_sim.Machine.create config in
  let insp = Ndp_core.Kernel.inspector kernel in
  Ndp_ir.Inspector.run insp;
  let address_of = Ndp_core.Kernel.address_of kernel in
  let ctx =
    Ndp_core.Context.create ~machine
      ~compiler_resolve:(Ndp_ir.Inspector.compiler_resolver insp ~address_of)
      ~runtime_resolve:(Ndp_ir.Inspector.runtime_resolver insp ~address_of)
      ~arrays:kernel.Ndp_core.Kernel.program.Ndp_ir.Loop.arrays
      ~options:(Ndp_core.Context.default_options config) ()
  in
  let nest = List.hd kernel.Ndp_core.Kernel.program.Ndp_ir.Loop.nests in
  let mesh_size = Ndp_noc.Mesh.size (Ndp_sim.Machine.mesh machine) in
  let body_len = List.length nest.Ndp_ir.Loop.body in
  let metas =
    List.concat
      (List.mapi
         (fun ii env ->
           List.mapi
             (fun si stmt ->
               {
                 Ndp_core.Window.group = (ii * body_len) + si;
                 default_node = ii mod mesh_size;
                 inst = { Ndp_ir.Dependence.stmt_idx = si; stmt; env };
               })
             nest.Ndp_ir.Loop.body)
         (Ndp_ir.Loop.iterations nest))
  in
  (ctx, List.filteri (fun i _ -> i < 256) metas)

(* Load-generate against an in-process serve daemon: every suite kernel
   under both schemes, three rounds of identical Run requests. Round one
   compiles (all result-cache misses); the later rounds are answered from
   the cache, so the expected hit ratio is 2/3 and the warm/cold latency
   ratio is the cache speedup. [Server.handle] is exactly the dispatch
   the socket loop uses, so the numbers cover everything but framing I/O. *)
let serve_loadgen () =
  let module Server = Ndp_serve.Server in
  let module Protocol = Ndp_serve.Protocol in
  let server = Server.create () in
  let requests =
    List.concat_map
      (fun app ->
        List.map
          (fun scheme ->
            Protocol.Run
              { spec = { (Protocol.default_spec ~app) with Protocol.scheme }; metrics = false })
          [ "default"; "partitioned" ])
      Ndp_workloads.Suite.names
  in
  let n = List.length requests in
  let pass () =
    let t0 = Unix.gettimeofday () in
    let replies = List.map (Server.handle server) requests in
    (Unix.gettimeofday () -. t0, replies)
  in
  let cold_s, cold = pass () in
  let warm1_s, warm1 = pass () in
  let warm2_s, _ = pass () in
  let identical =
    List.for_all2 (fun (a : Server.reply) (b : Server.reply) -> a.Server.body = b.Server.body)
      cold warm1
  in
  let st = Ndp_serve.Cache.stats (Server.result_cache server) in
  Server.shutdown server;
  let rps = float_of_int (3 * n) /. (cold_s +. warm1_s +. warm2_s) in
  let hit_ratio =
    float_of_int st.Ndp_serve.Cache.hits
    /. float_of_int (st.Ndp_serve.Cache.hits + st.Ndp_serve.Cache.misses)
  in
  let cold_ms = cold_s *. 1000.0 /. float_of_int n in
  let warm_ms = (warm1_s +. warm2_s) *. 1000.0 /. float_of_int (2 * n) in
  let speedup = cold_ms /. warm_ms in
  Printf.printf "== serve load-gen: %d requests (%d apps x 2 schemes x 3 rounds, in-process) ==\n"
    (3 * n)
    (List.length Ndp_workloads.Suite.names);
  Printf.printf "cold pass %.1f ms/req, warm passes %.3f ms/req (x%.0f cache speedup)\n" cold_ms
    warm_ms speedup;
  Printf.printf
    "sustained %.0f req/s, hit ratio %.2f (%d hits / %d misses), cold=warm bodies: %b\n" rps
    hit_ratio st.Ndp_serve.Cache.hits st.Ndp_serve.Cache.misses identical;
  (rps, hit_ratio, cold_ms, warm_ms, speedup, identical)

let micro ?(json = false) () =
  let open Bechamel in
  let open Toolkit in
  let mesh = Ndp_noc.Mesh.create ~cols:6 ~rows:6 in
  let rng = Ndp_prelude.Rng.create 7 in
  let random_edges n =
    List.concat_map
      (fun u -> List.filter_map (fun v -> if u < v then Some { Ndp_graph.Kruskal.u; v; weight = 1 + Ndp_prelude.Rng.int rng 10 } else None)
          (List.init n Fun.id))
      (List.init n Fun.id)
  in
  let edges36 = random_edges 36 in
  let stmt =
    Ndp_ir.Parser.statement "A[i] = B[i] + C[i] * (D[i] + E[i+1]) + F[i] / G[i]"
  in
  let kernel = Ndp_workloads.Suite.find "cholesky" in
  let bench_mst =
    Test.make ~name:"kruskal-36-complete" (Staged.stage (fun () -> Ndp_graph.Kruskal.mst ~n:36 edges36))
  in
  let bench_route =
    Test.make ~name:"xy-route-corner-to-corner"
      (Staged.stage (fun () -> Ndp_noc.Mesh.xy_route mesh ~src:0 ~dst:35))
  in
  let bench_nested =
    Test.make ~name:"nested-set-build"
      (Staged.stage (fun () -> Ndp_ir.Nested_set.of_expr stmt.Ndp_ir.Stmt.rhs))
  in
  let bench_parse =
    Test.make ~name:"parse-statement"
      (Staged.stage (fun () ->
           Ndp_ir.Parser.statement "X[i] = Y[i] * (Z[i] + W[2*i+1]) - V[i] / U[i]"))
  in
  let bench_pipeline =
    Test.make ~name:"compile+simulate-cholesky"
      (Staged.stage (fun () ->
           Ndp_core.Pipeline.Job.run
             (Ndp_core.Pipeline.Job.make
                (Ndp_core.Pipeline.Partitioned
                   { Ndp_core.Pipeline.partitioned_defaults with
                     Ndp_core.Pipeline.window = Ndp_core.Pipeline.Fixed 2 })
                kernel)))
  in
  (* Observability overhead: a disabled-registry bump must be a single
     predictable branch, and a fully observed pipeline run should cost a
     few percent over the unobserved one above. *)
  let bench_metrics_disabled =
    let c = Ndp_obs.Metrics.counter Ndp_obs.Metrics.disabled "bench.dead" in
    Test.make ~name:"metrics-incr-x1000-disabled"
      (Staged.stage (fun () ->
           for _ = 1 to 1000 do
             Ndp_obs.Metrics.incr c
           done))
  in
  let bench_metrics_enabled =
    let reg = Ndp_obs.Metrics.create () in
    let c = Ndp_obs.Metrics.counter reg "bench.live" in
    Test.make ~name:"metrics-incr-x1000-enabled"
      (Staged.stage (fun () ->
           for _ = 1 to 1000 do
             Ndp_obs.Metrics.incr c
           done))
  in
  let bench_pipeline_obs =
    Test.make ~name:"compile+simulate-cholesky-observed"
      (Staged.stage (fun () ->
           let obs = Ndp_obs.Sink.create ~metrics:true ~trace:true () in
           Ndp_core.Pipeline.Job.run ~obs
             (Ndp_core.Pipeline.Job.make
                (Ndp_core.Pipeline.Partitioned
                   { Ndp_core.Pipeline.partitioned_defaults with
                     Ndp_core.Pipeline.window = Ndp_core.Pipeline.Fixed 2 })
                kernel)))
  in
  (* Span overhead, same discipline as the metrics pair: a disabled
     enter/exit is one branch and no allocation; the enabled side pays
     the clock reads and log append. The pipeline pair below bounds the
     end-to-end cost of tracing a whole compile+simulate (the acceptance
     bar is <=5% over the untraced run). *)
  let bench_spans_disabled =
    Test.make ~name:"span-enter-exit-x1000-disabled"
      (Staged.stage (fun () ->
           for _ = 1 to 1000 do
             let sp = Ndp_obs.Span.enter Ndp_obs.Span.none "dead" in
             Ndp_obs.Span.exit Ndp_obs.Span.none sp
           done))
  in
  let bench_spans_enabled =
    Test.make ~name:"span-enter-exit-x1000-enabled"
      (Staged.stage (fun () ->
           let t = Ndp_obs.Span.create () in
           for _ = 1 to 1000 do
             let sp = Ndp_obs.Span.enter t "live" in
             Ndp_obs.Span.exit t sp
           done))
  in
  (* Dependence analysis on a real instance stream: the bucketed analyze
     against the O(n^2) naive oracle it replaced. *)
  let module Dep = Ndp_ir.Dependence in
  let dep_prog = kernel.Ndp_core.Kernel.program in
  let dep_resolver (r : Ndp_ir.Reference.t) env =
    match Ndp_ir.Subscript.eval_affine env r.Ndp_ir.Reference.subscript with
    | Some i ->
      Some
        (Ndp_ir.Array_decl.address
           (Ndp_ir.Array_decl.find dep_prog.Ndp_ir.Loop.arrays r.Ndp_ir.Reference.array)
           i)
    | None -> None
  in
  let dep_stream =
    let nest = List.hd dep_prog.Ndp_ir.Loop.nests in
    let insts =
      List.concat_map
        (fun env ->
          List.mapi
            (fun stmt_idx stmt -> { Dep.stmt_idx; stmt; env })
            nest.Ndp_ir.Loop.body)
        (Ndp_ir.Loop.iterations nest)
    in
    List.filteri (fun i _ -> i < 384) insts
  in
  let bench_dep_bucketed =
    Test.make ~name:"dependence-analyze-bucketed-384"
      (Staged.stage (fun () -> Dep.analyze dep_resolver dep_stream))
  in
  let bench_dep_naive =
    Test.make ~name:"dependence-analyze-naive-384"
      (Staged.stage (fun () -> Dep.analyze_naive dep_resolver dep_stream))
  in
  (* Fault-injection overhead: the [?faults] hook adds one option branch
     per link traversal when disabled, and a plan that touches no link on
     the hot routes should cost little when enabled. *)
  let fixed2 =
    Ndp_core.Pipeline.Partitioned
      { Ndp_core.Pipeline.partitioned_defaults with
        Ndp_core.Pipeline.window = Ndp_core.Pipeline.Fixed 2 }
  in
  let fixed2_job = Ndp_core.Pipeline.Job.make fixed2 kernel in
  let bench_inject_disabled =
    Test.make ~name:"pipeline-inject-disabled"
      (Staged.stage (fun () -> Ndp_core.Pipeline.Job.run fixed2_job))
  in
  let bench_inject_enabled =
    let mesh = Ndp_sim.Config.mesh Ndp_sim.Config.default in
    let faults =
      Ndp_fault.Plan.make ~mesh ~seed:42 [ Ndp_fault.Plan.Degrade_link (0, 1, 2.0) ]
    in
    Test.make ~name:"pipeline-inject-enabled"
      (Staged.stage (fun () ->
           Ndp_core.Pipeline.Job.run (Ndp_core.Pipeline.Job.make ~faults fixed2 kernel)))
  in
  (* Profiling overhead: the attribution ledger tags every NoC message and
     the timeline samples six counters every 1000 cycles; the enabled run
     should stay within ~10% of the unobserved pipeline. *)
  let bench_profile_disabled =
    Test.make ~name:"pipeline-profile-disabled"
      (Staged.stage (fun () -> Ndp_core.Pipeline.Job.run fixed2_job))
  in
  let bench_pipeline_spans_disabled =
    Test.make ~name:"pipeline-spans-disabled"
      (Staged.stage (fun () -> Ndp_core.Pipeline.Job.run fixed2_job))
  in
  let bench_pipeline_spans_enabled =
    Test.make ~name:"pipeline-spans-enabled"
      (Staged.stage (fun () ->
           let obs =
             { Ndp_obs.Sink.none with Ndp_obs.Sink.spans = Ndp_obs.Span.create () }
           in
           Ndp_core.Pipeline.Job.run ~obs fixed2_job))
  in
  let bench_profile_enabled =
    Test.make ~name:"pipeline-profile-enabled"
      (Staged.stage (fun () ->
           let obs =
             Ndp_obs.Sink.create ~metrics:true ~trace:false ~ledger:true
               ~timeline_interval:1000 ()
           in
           Ndp_core.Pipeline.Job.run ~obs fixed2_job))
  in
  (* Fusion pass overhead: the same compile+simulate on the residual-block
     chain workload with producer→consumer fusion on — covers Fusion.plan
     (legality + profitability pricing) plus the store-elided simulation. *)
  let bench_pipeline_fused =
    let dnn = Ndp_workloads.Suite.find "resnet_block" in
    Test.make ~name:"pipeline-fused"
      (Staged.stage (fun () ->
           Ndp_core.Pipeline.Job.run
             (Ndp_core.Pipeline.Job.make
                (Ndp_core.Pipeline.Partitioned
                   { Ndp_core.Pipeline.partitioned_defaults with Ndp_core.Pipeline.fuse = true })
                dnn)))
  in
  (* Window-size preprocessing on a 256-instance sample. The sampled
     implementation compiles every (candidate, chunk) pair with the
     dependence analysis done once and sliced per chunk; the reanalyze
     oracle re-runs the analysis for every pair; the analytic path prices
     instances once with the closed-form cost model and compiles only to
     break ties. *)
  let cs_ctx, cs_metas = choose_size_fixture () in
  let bench_choose_sampled =
    Test.make ~name:"choose-size-sampled-256"
      (Staged.stage (fun () -> Ndp_core.Window.choose_size cs_ctx cs_metas ~max:8))
  in
  let bench_choose_reanalyze =
    Test.make ~name:"choose-size-reanalyze-256"
      (Staged.stage (fun () -> Ndp_core.Window.choose_size_reanalyze cs_ctx cs_metas ~max:8))
  in
  let bench_choose_analytic =
    Test.make ~name:"choose-size-analytic-256"
      (Staged.stage (fun () -> Ndp_core.Window.choose_size_analytic cs_ctx cs_metas ~max:8))
  in
  (* Layer microbenchmarks for the flat-engine hot paths: a burst of
     [Network.send]s over varied routes, the Machine L1-hit and deep-miss
     load paths, and one [Engine.run] of a representative combine task.
     Each keeps its machine/network alive across samples (per-link
     occupancy and clocks accumulate, as in a real run); only the
     per-operation slope is reported. *)
  let bench_net_send =
    let net = Ndp_sim.Network.create Ndp_sim.Config.default in
    let stats = Ndp_sim.Stats.create () in
    let t = ref 0 in
    Test.make ~name:"network-send-256"
      (Staged.stage (fun () ->
           t := !t + 1000;
           for i = 0 to 255 do
             ignore
               (Ndp_sim.Network.send net ~time:!t ~src:(i mod 36) ~dst:(((i * 7) + 5) mod 36)
                  ~bytes:64 ~stats)
           done))
  in
  let bench_load_hit =
    let machine = Ndp_sim.Machine.create Ndp_sim.Config.default in
    let stats = Ndp_sim.Stats.create () in
    let t = ref 0 in
    ignore (Ndp_sim.Machine.load machine ~node:0 ~va:4096 ~bytes:8 ~time:0 ~stats);
    Test.make ~name:"machine-load-hit"
      (Staged.stage (fun () ->
           incr t;
           ignore (Ndp_sim.Machine.load machine ~node:0 ~va:4096 ~bytes:8 ~time:!t ~stats)))
  in
  let bench_load_miss =
    let machine = Ndp_sim.Machine.create Ndp_sim.Config.default in
    let stats = Ndp_sim.Stats.create () in
    let t = ref 0 in
    let va = ref 0 in
    Test.make ~name:"machine-load-miss"
      (Staged.stage (fun () ->
           t := !t + 100;
           (* 64 MB wrap with a line-sized offset so every access misses
              both the L1 and the home L2 bank. *)
           va := (!va + 4160) land 0x3FFFFFF;
           ignore (Ndp_sim.Machine.load machine ~node:1 ~va:!va ~bytes:8 ~time:!t ~stats)))
  in
  let bench_exec_task =
    let machine = Ndp_sim.Machine.create Ndp_sim.Config.default in
    let engine = Ndp_sim.Engine.create machine in
    let ops = Ndp_ir.Expr.ops stmt.Ndp_ir.Stmt.rhs in
    let id = ref 0 in
    Test.make ~name:"engine-exec-task"
      (Staged.stage (fun () ->
           incr id;
           let base = !id * 64 in
           let task =
             Ndp_sim.Task.make ~id:!id ~group:0 ~node:(!id mod 36) ~ops
               ~operands:
                 [
                   Ndp_sim.Task.Load { va = base; bytes = 8 };
                   Ndp_sim.Task.Load { va = base + 8192; bytes = 8 };
                 ]
               ~store:(base + 16384, 8) ~label:"bench" ()
           in
           Ndp_sim.Engine.run engine [ task ]))
  in
  let tests =
    Test.make_grouped ~name:"ndp"
      [
        bench_mst; bench_route; bench_nested; bench_parse; bench_pipeline;
        bench_metrics_disabled; bench_metrics_enabled; bench_pipeline_obs;
        bench_spans_disabled; bench_spans_enabled;
        bench_pipeline_spans_disabled; bench_pipeline_spans_enabled;
        bench_dep_bucketed; bench_dep_naive; bench_choose_sampled; bench_choose_reanalyze;
        bench_choose_analytic;
        bench_inject_disabled; bench_inject_enabled; bench_pipeline_fused;
        bench_net_send; bench_load_hit; bench_load_miss; bench_exec_task;
      ]
  in
  (* The profile pair gets its own longer quota: at ~40 ms per run the
     default 0.5 s quota yields ~12 samples — too few for a stable OLS
     slope on a shared machine — and the claim riding on this pair is a
     ~10% overhead bound, so it needs the tighter estimate. *)
  let profile_tests =
    Test.make_grouped ~name:"ndp" [ bench_profile_disabled; bench_profile_enabled ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let estimates = ref [] in
  let run_group cfg tests =
    let raw = Benchmark.all cfg instances tests in
    let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
    let results = Analyze.merge ols instances results in
    Hashtbl.iter
      (fun measure tbl ->
        if measure = Measure.label Instance.monotonic_clock then
          Hashtbl.iter
            (fun test ols_result ->
              match Bechamel.Analyze.OLS.estimates ols_result with
              | Some [ est ] -> estimates := (test, est) :: !estimates
              | _ -> ())
            tbl)
      results
  in
  run_group (Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ()) tests;
  run_group (Benchmark.cfg ~limit:1000 ~quota:(Time.second 4.0) ()) profile_tests;
  print_endline "== Micro-benchmarks (ns per run, OLS estimate) ==";
  List.iter
    (fun (test, est) -> Printf.printf "%-40s %12.1f ns\n" test est)
    (List.sort compare !estimates);
  if json then begin
    (* The trajectory file: per-test estimates plus the wall-clock of the
       full validation gate (the `ndp_run check` sweep), so later PRs can
       show speedups against a recorded baseline. *)
    let jobs = Ndp_prelude.Pool.default_jobs () in
    let kernels = List.map Ndp_workloads.Suite.find Ndp_workloads.Suite.names in
    let schemes =
      [
        Ndp_core.Pipeline.Default;
        Ndp_core.Pipeline.Partitioned Ndp_core.Pipeline.partitioned_defaults;
      ]
    in
    let t0 = Unix.gettimeofday () in
    let reports = Ndp_analysis.Checker.check_suite ~jobs ~schemes kernels in
    let gate_seconds = Unix.gettimeofday () -. t0 in
    let gate_errors = Ndp_analysis.Checker.has_errors reports in
    let rps, hit_ratio, cold_ms, warm_ms, speedup, identical = serve_loadgen () in
    (* Provenance header for `ndp_run bench diff`: shown when comparing
       snapshots, never part of the deltas. *)
    let timestamp =
      let tm = Unix.gmtime (Unix.time ()) in
      Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
        (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec
    in
    let commit =
      match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
      | ic ->
        let line = try input_line ic with End_of_file -> "" in
        (match Unix.close_process_in ic with Unix.WEXITED 0 -> line | _ -> "")
      | exception _ -> ""
    in
    let hostname = try Unix.gethostname () with _ -> "" in
    let oc = open_out "BENCH_micro.json" in
    let tests =
      List.sort compare !estimates
      |> List.map (fun (test, est) -> Printf.sprintf "    {\"name\": %S, \"ns\": %.1f}" test est)
    in
    Printf.fprintf oc
      "{\n  \"meta\": {\"timestamp\": %S, \"commit\": %S, \"jobs\": %d, \"hostname\": %S},\n\
      \  \"tests\": [\n%s\n  ],\n  \"full_gate\": {\"seconds\": %.3f, \"jobs\": %d, \
       \"errors\": %b},\n  \"serve\": {\"req_per_s\": %.1f, \"hit_ratio\": %.4f, \
       \"cold_ms_per_req\": %.3f, \"warm_ms_per_req\": %.4f, \"warm_speedup\": %.1f, \
       \"bodies_identical\": %b}\n}\n"
      timestamp commit jobs hostname (String.concat ",\n" tests) gate_seconds jobs gate_errors
      rps hit_ratio cold_ms warm_ms speedup identical;
    close_out oc;
    Printf.printf "full gate (check sweep, %d jobs): %.1f s -> BENCH_micro.json\n" jobs
      gate_seconds
  end

(* The declarative subcommand table: name, one-line summary, run function
   over the remaining argv words. Usage is generated from the table. *)
type command = { name : string; summary : string; run : string list -> unit }

let () =
  let common = E.Common.create () in
  let artifacts =
    [
      ("table1", fun () -> E.Tables.table1 common);
      ("table2", fun () -> E.Tables.table2 common);
      ("table3", fun () -> E.Tables.table3 common);
      ("fig13", fun () -> E.Figures.fig13 common);
      ("fig14", fun () -> E.Figures.fig14 common);
      ("fig15", fun () -> E.Figures.fig15 common);
      ("fig16", fun () -> E.Figures.fig16 common);
      ("fig17", fun () -> E.Figures.fig17 common);
      ("fig18", fun () -> E.Figures.fig18 common);
      ("fig19", fun () -> E.Figures.fig19 common);
      ("heatmap", fun () -> E.Figures.link_heatmap common);
      ("attribution", fun () -> E.Figures.attribution common);
      ("degradation", fun () -> E.Figures.degradation common);
      ("fig20", fun () -> E.Figures.fig20 common);
      ("fig21", fun () -> E.Figures.fig21 common);
      ("fig22", fun () -> E.Figures.fig22 common);
      ("fig23", fun () -> E.Figures.fig23 common);
      ("fig24", fun () -> E.Figures.fig24 common);
      ("summary", fun () -> E.Figures.summary common);
    ]
  in
  let run_paper () = List.iter (fun (_, f) -> f ()) artifacts in
  let commands =
    [
      { name = "paper"; summary = "every table and figure (the default)"; run = (fun _ -> run_paper ()) };
      {
        name = "all";
        summary = "tables + figures + ablations + micro-benchmarks";
        run =
          (fun _ ->
            run_paper ();
            E.Ablation.all common;
            micro ());
      };
      { name = "ablation"; summary = "the DESIGN.md ablations"; run = (fun _ -> E.Ablation.all common) };
      {
        name = "micro";
        summary = "Bechamel micro-benchmarks; --json also writes BENCH_micro.json";
        run = (fun args -> micro ~json:(List.mem "--json" args) ());
      };
      {
        name = "serve";
        summary = "load-generate against an in-process serve daemon (req/s, cache hit ratio)";
        run = (fun _ -> ignore (serve_loadgen ()));
      };
      {
        name = "sweep";
        summary = "compile cholesky once, replay the schedule across cost-model variants";
        run =
          (fun args ->
            let kernel = Ndp_workloads.Suite.find (match args with k :: _ -> k | [] -> "cholesky") in
            let scheme =
              Ndp_core.Pipeline.Partitioned Ndp_core.Pipeline.partitioned_defaults
            in
            let d = Ndp_sim.Config.default in
            let nt = Ndp_core.Pipeline.no_tweaks in
            (* Simulation-side variants only: address-shape parameters
               (mesh, line/page size) must match the capture config. *)
            let variants =
              [
                ("baseline", d, nt);
                ("hop-cycles-8", { d with Ndp_sim.Config.hop_cycles = 8 }, nt);
                ("hop-cycles-32", { d with Ndp_sim.Config.hop_cycles = 32 }, nt);
                ("ddr-cycles-520", { d with Ndp_sim.Config.ddr_cycles = 520 }, nt);
                ("op-cycles-16", { d with Ndp_sim.Config.op_cycles = 16 }, nt);
                ("l2-hit-cycles-36", { d with Ndp_sim.Config.l2_hit_cycles = 36 }, nt);
                ("distance-x0.5", d, { nt with Ndp_core.Pipeline.distance_factor = 0.5 });
                ("compute-/2", d, { nt with Ndp_core.Pipeline.cost_scale = 2.0 });
              ]
            in
            let t0 = Unix.gettimeofday () in
            let r =
              Ndp_core.Pipeline.Job.run (Ndp_core.Pipeline.Job.make ~capture:true scheme kernel)
            in
            let compile_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
            let t1 = Unix.gettimeofday () in
            let replays =
              Ndp_prelude.Pool.with_pool (fun pool ->
                  Ndp_prelude.Pool.parallel_map pool
                    (fun (name, config, tweaks) ->
                      (name, Ndp_core.Pipeline.replay ~config ~tweaks kernel r.Ndp_core.Pipeline.emitted))
                    variants)
            in
            let replay_ms = (Unix.gettimeofday () -. t1) *. 1000.0 in
            Printf.printf "== %s / %s: one compile, %d replays ==\n" kernel.Ndp_core.Kernel.name
              r.Ndp_core.Pipeline.scheme_name (List.length variants);
            Printf.printf "%-18s %12s %10s %10s %12s\n" "variant" "exec-cycles" "vs-base" "hops"
              "load-wait";
            let base_exec = r.Ndp_core.Pipeline.exec_time in
            List.iter
              (fun (name, (rp : Ndp_core.Pipeline.replayed)) ->
                Printf.printf "%-18s %12d %9.2fx %10d %12d\n" name rp.Ndp_core.Pipeline.rp_exec_time
                  (float_of_int rp.Ndp_core.Pipeline.rp_exec_time /. float_of_int base_exec)
                  (Ndp_sim.Stats.hops rp.Ndp_core.Pipeline.rp_stats)
                  (Ndp_sim.Stats.load_wait rp.Ndp_core.Pipeline.rp_stats))
              replays;
            Printf.printf
              "compile+capture %.1f ms, %d replays %.1f ms (%.1f ms/variant vs %.1f ms for a full \
               recompile each)\n"
              compile_ms (List.length variants) replay_ms
              (replay_ms /. float_of_int (List.length variants))
              compile_ms);
      };
      {
        name = "equiv";
        summary = "print the run-digest table consumed by test_equiv.ml";
        run =
          (fun _ ->
            List.iter
              (fun (name, scheme, mode) ->
                let kernel = Ndp_workloads.Suite.find name in
                let d = E.Equiv.run ~mode ~scheme kernel in
                Printf.printf "    (%S, %S);\n%!"
                  (E.Equiv.combo_key name scheme mode) d)
              (E.Equiv.all_combos ()));
      };
    ]
    @ List.map
        (fun (n, f) -> { name = n; summary = "the " ^ n ^ " artifact only"; run = (fun _ -> f ()) })
        artifacts
  in
  let usage oc =
    Printf.fprintf oc "usage: main.exe [COMMAND]\n\ncommands:\n";
    List.iter (fun c -> Printf.fprintf oc "  %-10s %s\n" c.name c.summary) commands
  in
  match Array.to_list Sys.argv with
  | [] | [ _ ] -> run_paper ()
  | _ :: ("help" | "--help" | "-h") :: _ -> usage stdout
  | _ :: name :: rest -> (
    match List.find_opt (fun c -> c.name = name) commands with
    | Some c -> c.run rest
    | None ->
      Printf.eprintf "unknown command %s\n\n" name;
      usage stderr;
      exit 1)
