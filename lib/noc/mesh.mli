(** The [cols x rows] 2D-mesh on-chip network.

    Each node holds a core, a private L1 and one bank of the shared L2
    (Figure 1 of the paper). Memory controllers sit on the corner nodes.
    Nodes are identified by dense integer ids in [0 .. size-1]. *)

type t

type link = { from_node : int; to_node : int }
(** A directed physical link between two adjacent nodes. *)

val create : cols:int -> rows:int -> t

val cols : t -> int
val rows : t -> int

val size : t -> int
(** Number of nodes. *)

val coord_of_node : t -> int -> Coord.t
val node_of_coord : t -> Coord.t -> int

val distance : t -> int -> int -> int
(** Manhattan distance between two node ids. *)

val memory_controllers : t -> int list
(** Node ids hosting a memory controller: the four corners. *)

val memory_controller : t -> int -> int
(** [memory_controller t i] is element [i land 3] of {!memory_controllers},
    computed without building the list. *)

val nearest_mc : t -> int -> int
(** The memory controller closest to a node (ties broken by node id). *)

val xy_route : t -> src:int -> dst:int -> link list
(** Deterministic XY (dimension-ordered) route: travel along X first, then
    along Y. The list has exactly [distance t src dst] links. *)

val route_links : t -> src:int -> dst:int -> int array
(** The XY route as dense link indices ([link_index] of each hop of
    [xy_route]), served from a per-mesh table built lazily on first use.
    The returned array is shared — callers must not mutate it. *)

val route_nodes : t -> src:int -> dst:int -> int array
(** The nodes the XY route enters, one per hop ([to_node] of each link of
    [xy_route]), served from a lazily-built per-mesh table. The returned
    array is shared — callers must not mutate it. *)

val links : t -> link list
(** All directed links of the mesh. *)

val link_index : t -> link -> int
(** Dense index of a link, for O(1) occupancy tables. *)

val num_links : t -> int

val quadrant_of_node : t -> int -> int
(** Quadrant id in [0..3] used by the quadrant and SNC-4 cluster modes. *)

val nodes_in_quadrant : t -> int -> int list

val mc_of_quadrant : t -> int -> int
(** The corner memory controller that belongs to a quadrant. *)
