type t = {
  cols : int;
  rows : int;
  (* Lazily-built dense XY route table: [routes.(src * size + dst)] is the
     link-index sequence of the route, shared by every [route_links]
     caller. Built on first use, so meshes used only for geometry queries
     never pay for it. *)
  mutable routes : int array array;
  (* Companion table: the nodes each route enters, one per link. *)
  mutable route_nodes : int array array;
}

type link = { from_node : int; to_node : int }

let create ~cols ~rows =
  if cols < 2 || rows < 2 then invalid_arg "Mesh.create: need at least a 2x2 mesh";
  { cols; rows; routes = [||]; route_nodes = [||] }

let cols t = t.cols
let rows t = t.rows
let size t = t.cols * t.rows

let coord_of_node t id =
  if id < 0 || id >= size t then invalid_arg "Mesh.coord_of_node: bad node id";
  Coord.make (id mod t.cols) (id / t.cols)

let node_of_coord t (c : Coord.t) =
  if c.x < 0 || c.x >= t.cols || c.y < 0 || c.y >= t.rows then
    invalid_arg "Mesh.node_of_coord: coordinate off-mesh";
  (c.y * t.cols) + c.x

let distance t a b =
  if a < 0 || a >= size t || b < 0 || b >= size t then
    invalid_arg "Mesh.distance: bad node id";
  abs ((a mod t.cols) - (b mod t.cols)) + abs ((a / t.cols) - (b / t.cols))

(* The four corner controllers, in the order [memory_controllers] lists
   them — arithmetic on the node id so the per-miss paths below never
   build the list. *)
let memory_controller t i =
  match i land 3 with
  | 0 -> 0
  | 1 -> t.cols - 1
  | 2 -> (t.rows - 1) * t.cols
  | _ -> (t.rows * t.cols) - 1

let memory_controllers t =
  [ memory_controller t 0; memory_controller t 1; memory_controller t 2; memory_controller t 3 ]

let nearest_mc t node =
  let bn = ref max_int and bd = ref max_int in
  for i = 0 to 3 do
    let mc = memory_controller t i in
    let d = distance t node mc in
    if d < !bd || (d = !bd && mc < !bn) then begin
      bn := mc;
      bd := d
    end
  done;
  !bn

let xy_route t ~src ~dst =
  let s = coord_of_node t src and d = coord_of_node t dst in
  let step_x x = if d.x > x then x + 1 else x - 1 in
  let step_y y = if d.y > y then y + 1 else y - 1 in
  let rec go (c : Coord.t) acc =
    if c.x <> d.x then
      let next = Coord.make (step_x c.x) c.y in
      go next ({ from_node = node_of_coord t c; to_node = node_of_coord t next } :: acc)
    else if c.y <> d.y then
      let next = Coord.make c.x (step_y c.y) in
      go next ({ from_node = node_of_coord t c; to_node = node_of_coord t next } :: acc)
    else List.rev acc
  in
  go s []

let links t =
  let acc = ref [] in
  for id = size t - 1 downto 0 do
    let c = coord_of_node t id in
    let neighbor dx dy =
      let nx = c.x + dx and ny = c.y + dy in
      if nx >= 0 && nx < t.cols && ny >= 0 && ny < t.rows then
        acc := { from_node = id; to_node = node_of_coord t (Coord.make nx ny) } :: !acc
    in
    neighbor 1 0; neighbor (-1) 0; neighbor 0 1; neighbor 0 (-1)
  done;
  !acc

(* Each node has at most 4 outgoing links, indexed by direction. *)
let direction_index t l =
  let a = coord_of_node t l.from_node and b = coord_of_node t l.to_node in
  match (b.x - a.x, b.y - a.y) with
  | 1, 0 -> 0
  | -1, 0 -> 1
  | 0, 1 -> 2
  | 0, -1 -> 3
  | _ -> invalid_arg "Mesh.link_index: nodes are not adjacent"

let link_index t l = (l.from_node * 4) + direction_index t l

let num_links t = size t * 4

let build_routes t =
  let n = size t in
  let routes =
    Array.init (n * n) (fun cell ->
        let src = cell / n and dst = cell mod n in
        if src = dst then [||]
        else
          let hops = List.map (link_index t) (xy_route t ~src ~dst) in
          Array.of_list hops)
  in
  t.routes <- routes;
  routes

let route_links t ~src ~dst =
  let n = size t in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Mesh.route_links: bad node id";
  let routes = if Array.length t.routes = 0 then build_routes t else t.routes in
  routes.((src * n) + dst)

let route_nodes t ~src ~dst =
  let n = size t in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Mesh.route_nodes: bad node id";
  let table =
    if Array.length t.route_nodes > 0 then t.route_nodes
    else begin
      let table =
        Array.init (n * n) (fun cell ->
            let src = cell / n and dst = cell mod n in
            if src = dst then [||]
            else
              Array.of_list
                (List.map (fun l -> l.to_node) (xy_route t ~src ~dst)))
      in
      t.route_nodes <- table;
      table
    end
  in
  table.((src * n) + dst)

let quadrant_of_node t node =
  if node < 0 || node >= size t then invalid_arg "Mesh.coord_of_node: bad node id";
  let qx = if node mod t.cols * 2 >= t.cols then 1 else 0 in
  let qy = if node / t.cols * 2 >= t.rows then 1 else 0 in
  (qy * 2) + qx

let nodes_in_quadrant t q =
  List.filter (fun n -> quadrant_of_node t n = q) (List.init (size t) Fun.id)

(* Corner [i] of [memory_controller] sits in quadrant [i] (corner (0,0) in
   quadrant 0, (cols-1,0) in 1, and so on), and each quadrant holds exactly
   one controller, so the first-in-list-order controller the original
   filter selected is corner [q] itself. *)
let mc_of_quadrant t q =
  if q < 0 || q > 3 then invalid_arg "Mesh.mc_of_quadrant: no controller in quadrant"
  else memory_controller t q
