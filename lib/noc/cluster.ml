type t = All_to_all | Quadrant | Snc4

let all = [ All_to_all; Quadrant; Snc4 ]

let to_string = function
  | All_to_all -> "all-to-all"
  | Quadrant -> "quadrant"
  | Snc4 -> "snc-4"

let of_string = function
  | "all-to-all" | "a2a" -> Ok All_to_all
  | "quadrant" -> Ok Quadrant
  | "snc-4" | "snc4" -> Ok Snc4
  | s -> Error (Printf.sprintf "unknown cluster mode %S" s)

let letter = function
  | All_to_all -> "A"
  | Quadrant -> "B"
  | Snc4 -> "C"

let mc_for mode mesh ~home_bank ~channel =
  match mode with
  | All_to_all ->
    (* Addresses hash uniformly over the controllers regardless of bank. *)
    Mesh.memory_controller mesh (channel mod 4)
  | Quadrant | Snc4 ->
    (* The controller shares the quadrant of the home L2 bank; in SNC-4 the
       requester is additionally constrained to that quadrant, which the
       address-mapping layer enforces when allocating pages. *)
    Mesh.mc_of_quadrant mesh (Mesh.quadrant_of_node mesh home_bank)
