type entry = { mutable e_messages : int; mutable e_flits : int; mutable e_flit_hops : int }

(* Keys pack (stmt id, array id, src, dst) into one int so the per-message
   hashtable lookup allocates nothing. The field widths bound array ids to
   2^10 and node ids to 2^12 — far above any mesh or kernel we model. *)
let array_bits = 10

let node_bits = 12

let pack ~stmt ~array ~src ~dst =
  (((((stmt lsl array_bits) lor array) lsl node_bits) lor src) lsl node_bits) lor dst

let unpack key =
  let mask b = (1 lsl b) - 1 in
  let dst = key land mask node_bits in
  let key = key lsr node_bits in
  let src = key land mask node_bits in
  let key = key lsr node_bits in
  let array = key land mask array_bits in
  (key lsr array_bits, array, src, dst)

type t = {
  on : bool;
  table : (int, entry) Hashtbl.t;
  (* Interned statements: id -> (nest name, statement index). Slot 0 is
     the "(other)" statement charged for traffic outside any resolver. *)
  mutable stmts : (string * int) array;
  mutable stmt_count : int;
  stmt_ids : (string * int, int) Hashtbl.t;
  mutable arrays : string array;
  mutable array_count : int;
  array_ids : (string, int) Hashtbl.t;
  mutable predicted : int array; (* stmt id -> predicted flit-hops *)
  mutable group_resolve : int -> int;
  mutable va_resolve : int -> int;
  mutable cur_stmt : int;
  mutable cur_array : int;
}

let other = "(other)"

let none =
  {
    on = false;
    table = Hashtbl.create 1;
    stmts = [| (other, -1) |];
    stmt_count = 1;
    stmt_ids = Hashtbl.create 1;
    arrays = [| other |];
    array_count = 1;
    array_ids = Hashtbl.create 1;
    predicted = [| 0 |];
    group_resolve = (fun _ -> 0);
    va_resolve = (fun _ -> 0);
    cur_stmt = 0;
    cur_array = 0;
  }

let create () =
  {
    on = true;
    table = Hashtbl.create 1024;
    stmts = Array.make 16 (other, -1);
    stmt_count = 1;
    stmt_ids = Hashtbl.create 64;
    arrays = Array.make 16 other;
    array_count = 1;
    array_ids = Hashtbl.create 16;
    predicted = Array.make 16 0;
    group_resolve = (fun _ -> 0);
    va_resolve = (fun _ -> 0);
    cur_stmt = 0;
    cur_array = 0;
  }

let enabled t = t.on

let grow arr count absent =
  if count < Array.length arr then arr
  else begin
    let grown = Array.make (2 * Array.length arr) absent in
    Array.blit arr 0 grown 0 (Array.length arr);
    grown
  end

let stmt_id t ~nest ~stmt =
  if not t.on then 0
  else
    match Hashtbl.find_opt t.stmt_ids (nest, stmt) with
    | Some id -> id
    | None ->
      let id = t.stmt_count in
      t.stmts <- grow t.stmts id (other, -1);
      t.stmts.(id) <- (nest, stmt);
      t.stmt_count <- id + 1;
      Hashtbl.replace t.stmt_ids (nest, stmt) id;
      id

let array_id t name =
  if not t.on then 0
  else
    match Hashtbl.find_opt t.array_ids name with
    | Some id -> id
    | None ->
      let id = t.array_count in
      t.arrays <- grow t.arrays id other;
      t.arrays.(id) <- name;
      t.array_count <- id + 1;
      Hashtbl.replace t.array_ids name id;
      id

let set_group_resolver t f = if t.on then t.group_resolve <- f

let set_va_resolver t f = if t.on then t.va_resolve <- f

let enter_group t group = if t.on then t.cur_stmt <- t.group_resolve group

let enter_va t va = if t.on then t.cur_array <- t.va_resolve va

let enter_array t id = if t.on then t.cur_array <- id

let account t ~src ~dst ~flits ~links =
  if t.on then begin
    let key = pack ~stmt:t.cur_stmt ~array:t.cur_array ~src ~dst in
    match Hashtbl.find_opt t.table key with
    | Some e ->
      e.e_messages <- e.e_messages + 1;
      e.e_flits <- e.e_flits + flits;
      e.e_flit_hops <- e.e_flit_hops + (flits * links)
    | None ->
      Hashtbl.add t.table key
        { e_messages = 1; e_flits = flits; e_flit_hops = flits * links }
  end

let predict t ~stmt ~flit_hops =
  if t.on then begin
    t.predicted <- grow t.predicted stmt 0;
    t.predicted.(stmt) <- t.predicted.(stmt) + flit_hops
  end

type row = {
  nest : string;
  stmt : int;
  array_name : string;
  src : int;
  dst : int;
  messages : int;
  flits : int;
  flit_hops : int;
}

type stmt_total = {
  s_nest : string;
  s_stmt : int;
  s_messages : int;
  s_flits : int;
  s_flit_hops : int;
  s_predicted : int;
}

let rows t =
  let unsorted =
    Hashtbl.fold
      (fun key e acc ->
        let stmt_id, array_id, src, dst = unpack key in
        let nest, stmt = t.stmts.(stmt_id) in
        {
          nest;
          stmt;
          array_name = t.arrays.(array_id);
          src;
          dst;
          messages = e.e_messages;
          flits = e.e_flits;
          flit_hops = e.e_flit_hops;
        }
        :: acc)
      t.table []
  in
  List.sort
    (fun a b ->
      compare
        (a.nest, a.stmt, a.array_name, a.src, a.dst)
        (b.nest, b.stmt, b.array_name, b.src, b.dst))
    unsorted

let statements t =
  (* stmt id -> (messages, flits, flit_hops) over all of its entries. *)
  let measured = Array.make t.stmt_count (0, 0, 0) in
  Hashtbl.iter
    (fun key e ->
      let stmt_id, _, _, _ = unpack key in
      let m, f, fh = measured.(stmt_id) in
      measured.(stmt_id) <- (m + e.e_messages, f + e.e_flits, fh + e.e_flit_hops))
    t.table;
  let totals = ref [] in
  for id = t.stmt_count - 1 downto 0 do
    let m, f, fh = measured.(id) in
    let p = if id < Array.length t.predicted then t.predicted.(id) else 0 in
    if m <> 0 || p <> 0 then begin
      let nest, stmt = t.stmts.(id) in
      totals :=
        {
          s_nest = nest;
          s_stmt = stmt;
          s_messages = m;
          s_flits = f;
          s_flit_hops = fh;
          s_predicted = p;
        }
        :: !totals
    end
  done;
  List.sort (fun a b -> compare (a.s_nest, a.s_stmt) (b.s_nest, b.s_stmt)) !totals

let fold_entries t f = Hashtbl.fold (fun _ e acc -> f acc e) t.table 0

let total_messages t = fold_entries t (fun acc e -> acc + e.e_messages)

let total_flits t = fold_entries t (fun acc e -> acc + e.e_flits)

let total_flit_hops t = fold_entries t (fun acc e -> acc + e.e_flit_hops)

let total_predicted t = Array.fold_left ( + ) 0 t.predicted

let to_json t =
  let open Render.Json in
  let row r =
    Obj
      [
        ("nest", Str r.nest);
        ("stmt", Int r.stmt);
        ("array", Str r.array_name);
        ("src", Int r.src);
        ("dst", Int r.dst);
        ("messages", Int r.messages);
        ("flits", Int r.flits);
        ("flit_hops", Int r.flit_hops);
      ]
  in
  let stmt s =
    Obj
      [
        ("nest", Str s.s_nest);
        ("stmt", Int s.s_stmt);
        ("messages", Int s.s_messages);
        ("flits", Int s.s_flits);
        ("flit_hops", Int s.s_flit_hops);
        ("predicted", Int s.s_predicted);
      ]
  in
  Obj
    [
      ("rows", List (List.map row (rows t)));
      ("statements", List (List.map stmt (statements t)));
      ( "totals",
        Obj
          [
            ("messages", Int (total_messages t));
            ("flits", Int (total_flits t));
            ("flit_hops", Int (total_flit_hops t));
            ("predicted", Int (total_predicted t));
          ] );
    ]
