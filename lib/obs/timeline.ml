type instrument = {
  i_name : string;
  mutable sampler : unit -> int;
  (* Delta-encoded samples: [dts]/[dvs] hold timestamp and value deltas
     against the previous sample ([last_ts]/[last_v] are the running
     absolutes). Deltas of bounded counters are small, so the series stays
     compact without a second encoding pass. *)
  mutable dts : int array;
  mutable dvs : int array;
  mutable len : int;
  mutable last_ts : int;
  mutable last_v : int;
  mutable dropped : int;
}

type t = {
  on : bool;
  iv : int;
  cap : int;
  mutable next : int; (* next boundary to sample at *)
  mutable instruments : instrument list; (* reverse registration order *)
}

let none = { on = false; iv = 0; cap = 0; next = max_int; instruments = [] }

let default_capacity = 4096

let create ?(capacity = default_capacity) ~interval () =
  if interval <= 0 then none
  else { on = true; iv = interval; cap = max 1 capacity; next = interval; instruments = [] }

let enabled t = t.on

let interval t = t.iv

let register t name sampler =
  if t.on then
    match List.find_opt (fun i -> String.equal i.i_name name) t.instruments with
    | Some i -> i.sampler <- sampler
    | None ->
      t.instruments <-
        {
          i_name = name;
          sampler;
          dts = Array.make 64 0;
          dvs = Array.make 64 0;
          len = 0;
          last_ts = 0;
          last_v = 0;
          dropped = 0;
        }
        :: t.instruments

let push t i ~ts ~v =
  if i.len >= t.cap then i.dropped <- i.dropped + 1
  else begin
    if i.len >= Array.length i.dts then begin
      let grow a =
        let g = Array.make (2 * Array.length a) 0 in
        Array.blit a 0 g 0 (Array.length a);
        g
      in
      i.dts <- grow i.dts;
      i.dvs <- grow i.dvs
    end;
    i.dts.(i.len) <- ts - i.last_ts;
    i.dvs.(i.len) <- v - i.last_v;
    i.len <- i.len + 1;
    i.last_ts <- ts;
    i.last_v <- v
  end

let sample_all t ~ts =
  List.iter (fun i -> if ts > i.last_ts || i.len = 0 then push t i ~ts ~v:(i.sampler ())) t.instruments

let tick t ~now =
  if t.on && now >= t.next then begin
    (* Sample once, at the latest boundary crossed; skipped boundaries are
       implied by the step semantics of a counter series. *)
    let boundary = now - (now mod t.iv) in
    sample_all t ~ts:boundary;
    t.next <- boundary + t.iv
  end

let flush t ~now = if t.on then sample_all t ~ts:now

type series = { name : string; samples : (int * int) list; dropped : int }

let decode i =
  let acc = ref [] in
  let ts = ref 0 and v = ref 0 in
  for k = 0 to i.len - 1 do
    ts := !ts + i.dts.(k);
    v := !v + i.dvs.(k);
    acc := (!ts, !v) :: !acc
  done;
  List.rev !acc

let series t =
  List.sort
    (fun a b -> compare a.name b.name)
    (List.map (fun i -> { name = i.i_name; samples = decode i; dropped = i.dropped }) t.instruments)

let merge ts =
  let enabled_inputs = List.filter (fun t -> t.on) ts in
  match enabled_inputs with
  | [] -> none
  | _ ->
    let iv = List.fold_left (fun acc t -> max acc t.iv) 1 enabled_inputs in
    let cap = List.fold_left (fun acc t -> max acc t.cap) 1 enabled_inputs in
    let out = { on = true; iv; cap; next = iv; instruments = [] } in
    let by_name = Hashtbl.create 16 in
    List.iter
      (fun t ->
        List.iter
          (fun s ->
            let existing = Option.value (Hashtbl.find_opt by_name s.name) ~default:[] in
            Hashtbl.replace by_name s.name (s :: existing))
          (series t))
      enabled_inputs;
    let names = List.sort_uniq compare (Hashtbl.fold (fun k _ acc -> k :: acc) by_name []) in
    List.iter
      (fun name ->
        let inputs = Hashtbl.find by_name name in
        let stamps =
          List.sort_uniq compare (List.concat_map (fun s -> List.map fst s.samples) inputs)
        in
        (* Step semantics: an input contributes its most recent value at or
           before the stamp, 0 before its first sample. *)
        let value_at s ts =
          List.fold_left (fun acc (t', v) -> if t' <= ts then v else acc) 0 s.samples
        in
        register out name (fun () -> 0);
        let i = List.hd out.instruments in
        List.iter
          (fun ts ->
            let v = List.fold_left (fun acc s -> acc + value_at s ts) 0 inputs in
            push out i ~ts ~v)
          stamps;
        i.dropped <- List.fold_left (fun acc s -> acc + s.dropped) 0 inputs)
      names;
    out.instruments <- List.rev out.instruments;
    out

let to_json t =
  let open Render.Json in
  let one s =
    Obj
      [
        ("name", Str s.name);
        ("dropped", Int s.dropped);
        ("samples", List (List.map (fun (ts, v) -> List [ Int ts; Int v ]) s.samples));
      ]
  in
  Obj [ ("interval", Int t.iv); ("series", List (List.map one (series t))) ]

let chrome_counter_events t =
  let open Render.Json in
  List.concat_map
    (fun s ->
      List.map
        (fun (ts, v) ->
          Obj
            [
              ("name", Str s.name);
              ("ph", Str "C");
              ("pid", Int 0);
              ("tid", Int 0);
              ("ts", Int ts);
              ("args", Obj [ ("value", Int v) ]);
            ])
        s.samples)
    (series t)
