(** Named, typed metrics registry.

    Subsystems create instruments (counters, dense-indexed counter vectors,
    gauges, histograms) once, at structure-creation time, and bump them
    through the returned handles on the hot path. A handle created from a
    disabled registry is inert: bumping it is a single predictable branch
    and no per-event allocation, so instrumented code pays nothing when
    observability is off (the default).

    Determinism: instruments are write-only — they never feed back into
    simulation or compilation decisions — and {!to_alist} orders samples by
    name, so enabling metrics cannot perturb results and dumps are stable.

    Parallel collection: a registry is not synchronized. Under
    [Pool.parallel_map] each task must bump its own registry (or its own
    {!Sharded} shard); {!merge} then combines them by name into totals that
    are independent of task scheduling, because counter addition commutes
    and output order is name-sorted. *)

type t
(** A registry. *)

val create : unit -> t
(** A fresh enabled registry. *)

val disabled : t
(** The shared inert registry: every instrument created from it is a no-op
    and {!to_alist} is empty. *)

val enabled : t -> bool

(** {1 Instruments} *)

type counter

val counter : t -> string -> counter
(** [counter reg name] registers (or retrieves — same name, same handle) a
    monotonically increasing integer. *)

val add : counter -> int -> unit

val incr : counter -> unit

val counter_value : counter -> int

type vec

val vec : t -> string -> size:int -> label:(int -> string) -> vec
(** A dense family of counters indexed by [0..size-1] — one slot per link,
    node or bank. [label i] renders slot [i]'s sample name suffix, e.g.
    ["noc.link_flits{1,0->2,0}"]. Registering an existing name returns the
    existing family (sizes must agree). *)

val vadd : vec -> int -> int -> unit
(** [vadd v i n] adds [n] to slot [i]. Out-of-range slots are ignored. *)

val vec_value : vec -> int -> int

val vec_size : vec -> int

type gauge

val gauge : t -> string -> gauge
(** A last-value-wins float. *)

val set_gauge : gauge -> float -> unit

val gauge_fn : t -> string -> (unit -> float) -> unit
(** A derived gauge: the closure is evaluated at {!to_alist} / {!merge}
    time, never on the hot path. Used for values a structure already
    tracks (cache hit counts, resident pages) so publishing them costs
    nothing per event. *)

type histogram

val histogram : ?buckets:float array -> t -> string -> histogram
(** Distribution with cumulative-style buckets (default: powers of two
    from 1 to 2^20). *)

val observe : histogram -> float -> unit

(** {1 Reading and merging} *)

type sample =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of { counts : int array; bounds : float array; sum : float; count : int }

val to_alist : t -> (string * sample) list
(** All samples, sorted by name. Vector slots explode into
    [name{label}] entries (zero-valued slots are skipped); derived gauges
    are evaluated here. *)

val find : t -> string -> sample option
(** Lookup one exploded sample by name (same names as {!to_alist}). *)

val merge : t list -> t
(** A fresh registry holding the name-wise sum (counters, histograms) or
    last-writer value (gauges, in list order) of the inputs. Derived
    gauges are evaluated and frozen. The result is independent of any
    concurrent schedule that produced the inputs. *)

val percentile : counts:int array -> bounds:float array -> float -> float
(** [percentile ~counts ~bounds q] estimates the [q]-quantile
    ([0.0 <= q <= 1.0]) of a histogram sample by linear interpolation
    within the containing bucket (lower bound 0 for the first bucket; the
    overflow bucket clamps to the largest bound). Returns [0.0] for an
    empty histogram. *)

val to_json : t -> Render.Json.t
(** [Obj] keyed by sample name; counters as ints, gauges as floats,
    histograms as
    [{"count":..,"sum":..,"p50":..,"p95":..,"p99":..,"buckets":[[le,count],..]}]. *)

val to_prometheus : t -> string
(** Prometheus text exposition of the whole registry: one [# TYPE] line
    per family, then name-sorted [name{labels} value] sample lines.
    Instrument names are mangled ([Render.Prom.mangle]); exploded-vec
    labels become label pairs; histograms emit cumulative
    [_bucket{le=...}] series (ending at [le="+Inf"]) plus [_sum] and
    [_count]. Deterministic for a deterministic registry, with no
    duplicate series. *)

(** {1 Per-domain sharding} *)

(** Shards one logical registry across domains: each domain bumps a
    private registry ({!Sharded.local}) with no synchronization on the hot
    path, and {!Sharded.merged} combines the shards afterwards. Wrap the
    parallel region's metrics in this when tasks run under
    [Pool.parallel_map] so [--jobs N] stays deterministic. *)
module Sharded : sig
  type registry := t

  type t

  val create : ?enabled:bool -> unit -> t

  val enabled : t -> bool

  val local : t -> registry
  (** This domain's shard, created on first use. Cheap after the first
      call (one mutex-guarded lookup keyed by domain id); cache the result
      across a task when bumping in a loop. *)

  val add_shard : t -> registry -> unit
  (** Absorb a privately-filled registry as an extra shard. For units of
      work that must not share instrument handles even when scheduled on
      the same domain (e.g. whole simulations in a batch): give each its
      own registry, merge those in a deterministic order, and absorb the
      result. No-op when the sharded registry is disabled. *)

  val merged : t -> registry
  (** {!merge} of every shard created so far. Call after the parallel
      region has quiesced. *)
end
