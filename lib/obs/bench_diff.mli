(** Perf-regression sentinel over BENCH_micro.json snapshots.

    Compares the ["tests"] arrays of two snapshots by benchmark name and
    flags entries whose per-iteration time grew by more than a threshold
    percentage. The optional ["meta"] block (timestamp, commit, jobs,
    hostname) is surfaced in the report header but never influences the
    deltas. Backs [ndp_run bench diff OLD.json NEW.json]. *)

type delta = { d_name : string; d_old_ns : float; d_new_ns : float; d_pct : float }

type report = {
  r_threshold : float; (** percent; a regression is [d_pct > threshold] *)
  r_old_meta : (string * string) list;
  r_new_meta : (string * string) list;
  r_deltas : delta list; (** name-sorted; tests present on both sides *)
  r_only_old : string list;
  r_only_new : string list;
}

val compare_docs :
  ?threshold:float ->
  old_doc:Render.Json.t ->
  new_doc:Render.Json.t ->
  unit ->
  (report, string) result
(** [threshold] defaults to 10.0 (percent). Errors name the side whose
    snapshot is malformed. *)

val compare_strings :
  ?threshold:float -> old_text:string -> new_text:string -> unit -> (report, string) result
(** {!compare_docs} after parsing both snapshot texts. *)

val regressions : report -> delta list
(** Deltas beyond the threshold, name-sorted. *)

val has_regressions : report -> bool

val render : report -> string
(** Human report: meta header, per-benchmark delta table
    (ok / improved / REGRESSED), tests present on only one side, and a
    summary line. *)

val to_json : report -> Render.Json.t
