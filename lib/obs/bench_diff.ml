(* The perf-regression sentinel: compare two BENCH_micro.json snapshots
   test-by-test. The "tests" arrays are joined by benchmark name; the
   optional "meta" blocks (timestamp, commit, jobs, hostname) are carried
   into the report header but never into the deltas, so re-benchmarking
   on a different day or host only gates on the numbers. *)

module Json = Render.Json

type delta = { d_name : string; d_old_ns : float; d_new_ns : float; d_pct : float }

type report = {
  r_threshold : float; (* percent; regressions are d_pct > threshold *)
  r_old_meta : (string * string) list;
  r_new_meta : (string * string) list;
  r_deltas : delta list; (* name-sorted; tests present on both sides *)
  r_only_old : string list;
  r_only_new : string list;
}

let meta_value = function
  | Json.Str s -> s
  | Json.Int i -> string_of_int i
  | Json.Bool b -> string_of_bool b
  | v -> Json.to_string v

let meta_of doc =
  match Json.member "meta" doc with
  | Some (Json.Obj kvs) -> List.map (fun (k, v) -> (k, meta_value v)) kvs
  | _ -> []

let tests_of doc =
  match Json.member "tests" doc with
  | Some (Json.List entries) ->
    let entry = function
      | Json.Obj _ as e -> (
        match (Json.member "name" e, Json.member "ns" e) with
        | Some (Json.Str name), Some (Json.Float ns) -> Ok (name, ns)
        | Some (Json.Str name), Some (Json.Int ns) -> Ok (name, float_of_int ns)
        | _ -> Error "test entry missing \"name\"/\"ns\"")
      | _ -> Error "test entry is not an object"
    in
    List.fold_left
      (fun acc e ->
        match (acc, entry e) with
        | Error _, _ -> acc
        | _, Error msg -> Error msg
        | Ok tests, Ok t -> Ok (t :: tests))
      (Ok []) entries
    |> Result.map List.rev
  | Some _ -> Error "\"tests\" is not an array"
  | None -> Error "no \"tests\" array"

let pct_change ~old_ns ~new_ns =
  if old_ns > 0.0 then (new_ns -. old_ns) /. old_ns *. 100.0
  else if new_ns > 0.0 then Float.infinity
  else 0.0

let compare_docs ?(threshold = 10.0) ~old_doc ~new_doc () =
  match (tests_of old_doc, tests_of new_doc) with
  | Error msg, _ -> Error ("old snapshot: " ^ msg)
  | _, Error msg -> Error ("new snapshot: " ^ msg)
  | Ok old_tests, Ok new_tests ->
    let deltas =
      List.filter_map
        (fun (name, old_ns) ->
          match List.assoc_opt name new_tests with
          | None -> None
          | Some new_ns ->
            Some { d_name = name; d_old_ns = old_ns; d_new_ns = new_ns;
                   d_pct = pct_change ~old_ns ~new_ns })
        old_tests
      |> List.sort (fun a b -> compare a.d_name b.d_name)
    in
    let missing_from other = fun (name, _) -> not (List.mem_assoc name other) in
    Ok
      {
        r_threshold = threshold;
        r_old_meta = meta_of old_doc;
        r_new_meta = meta_of new_doc;
        r_deltas = deltas;
        r_only_old = List.sort compare (List.map fst (List.filter (missing_from new_tests) old_tests));
        r_only_new = List.sort compare (List.map fst (List.filter (missing_from old_tests) new_tests));
      }

let compare_strings ?threshold ~old_text ~new_text () =
  match (Json.parse old_text, Json.parse new_text) with
  | Error msg, _ -> Error ("old snapshot: " ^ msg)
  | _, Error msg -> Error ("new snapshot: " ^ msg)
  | Ok old_doc, Ok new_doc -> compare_docs ?threshold ~old_doc ~new_doc ()

let regressions r = List.filter (fun d -> d.d_pct > r.r_threshold) r.r_deltas

let has_regressions r = regressions r <> []

let status r d =
  if d.d_pct > r.r_threshold then "REGRESSED"
  else if d.d_pct < -.r.r_threshold then "improved"
  else "ok"

let meta_line tag = function
  | [] -> Printf.sprintf "%s: (no meta)" tag
  | kvs ->
    Printf.sprintf "%s: %s" tag
      (String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) kvs))

let render r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (meta_line "old" r.r_old_meta);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (meta_line "new" r.r_new_meta);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "threshold: +%.1f%%\n\n" r.r_threshold);
  let tbl = Ndp_prelude.Table.create ~header:[ "benchmark"; "old ns"; "new ns"; "delta"; "status" ] in
  List.iter
    (fun d ->
      Ndp_prelude.Table.add_row tbl
        [
          d.d_name;
          Printf.sprintf "%.1f" d.d_old_ns;
          Printf.sprintf "%.1f" d.d_new_ns;
          (if Float.is_finite d.d_pct then Printf.sprintf "%+.1f%%" d.d_pct else "+inf");
          status r d;
        ])
    r.r_deltas;
  Buffer.add_string buf (Ndp_prelude.Table.render tbl);
  List.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf "\nonly in old: %s" n))
    r.r_only_old;
  List.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf "\nonly in new: %s" n))
    r.r_only_new;
  let regs = regressions r in
  Buffer.add_string buf
    (Printf.sprintf "\n\n%d compared, %d regressed (> +%.1f%%)"
       (List.length r.r_deltas) (List.length regs) r.r_threshold);
  Buffer.contents buf

let to_json r =
  let open Json in
  let meta kvs = Obj (List.map (fun (k, v) -> (k, Str v)) kvs) in
  Obj
    [
      ("threshold_pct", Float r.r_threshold);
      ("old_meta", meta r.r_old_meta);
      ("new_meta", meta r.r_new_meta);
      ( "deltas",
        List
          (List.map
             (fun d ->
               Obj
                 [
                   ("name", Str d.d_name);
                   ("old_ns", Float d.d_old_ns);
                   ("new_ns", Float d.d_new_ns);
                   ("delta_pct", Float d.d_pct);
                   ("status", Str (status r d));
                 ])
             r.r_deltas) );
      ("only_old", List (List.map (fun n -> Str n) r.r_only_old));
      ("only_new", List (List.map (fun n -> Str n) r.r_only_new));
      ("regressions", Int (List.length (regressions r)));
    ]
