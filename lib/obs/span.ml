(* Request-scoped nestable spans. A collector is a single-domain append
   log of (name, parent, depth, wall, cycles, attrs) records; nesting is
   derived from an explicit open-span stack, so parent links and depths
   are structural, never guessed from timestamps. Parallel code records
   into per-unit collectors and [merge]s them in deterministic (input)
   order — the same discipline as [Metrics.Sharded] — so traced output is
   byte-identical at any [--jobs]. *)

type attr = Int of int | Str of string

type node = {
  sp_id : int;
  sp_parent : int; (* -1 for roots *)
  sp_depth : int;
  sp_name : string;
  sp_start : float; (* seconds, relative to the collector epoch *)
  mutable sp_stop : float; (* < sp_start while the span is open *)
  mutable sp_cycles : int;
  mutable sp_attrs : (string * attr) list;
}

type span = node

let dead =
  {
    sp_id = -1;
    sp_parent = -1;
    sp_depth = 0;
    sp_name = "";
    sp_start = 0.0;
    sp_stop = 0.0;
    sp_cycles = 0;
    sp_attrs = [];
  }

type t = {
  on : bool;
  clock : unit -> float;
  epoch : float;
  mutable nodes : node array;
  mutable count : int;
  mutable stack : node list; (* innermost open span first *)
}

(* The fake clock backs golden tests: one process-global monotone counter
   stepping in exact binary fractions of a second, shared by every
   collector created while NDP_FAKE_CLOCK is set, so durations are
   reproducible byte-for-byte across runs. *)
let fake_counter = Atomic.make 0

let fake_clock () = float_of_int (Atomic.fetch_and_add fake_counter 1) /. 1024.0

let wall_clock = Unix.gettimeofday

let default_clock () =
  match Sys.getenv_opt "NDP_FAKE_CLOCK" with
  | None | Some "" | Some "0" -> wall_clock
  | Some _ -> fake_clock

let none =
  { on = false; clock = (fun () -> 0.0); epoch = 0.0; nodes = [||]; count = 0; stack = [] }

let create ?clock () =
  let clock = match clock with Some c -> c | None -> default_clock () in
  { on = true; clock; epoch = clock (); nodes = Array.make 16 dead; count = 0; stack = [] }

let enabled t = t.on

let count t = t.count

let depth t = List.length t.stack

let push t n =
  let cap = Array.length t.nodes in
  if t.count = cap then begin
    let bigger = Array.make (max 16 (2 * cap)) dead in
    Array.blit t.nodes 0 bigger 0 t.count;
    t.nodes <- bigger
  end;
  t.nodes.(t.count) <- n;
  t.count <- t.count + 1

let enter t name =
  if not t.on then dead
  else begin
    let parent, d =
      match t.stack with [] -> (-1, 0) | p :: _ -> (p.sp_id, p.sp_depth + 1)
    in
    let start = t.clock () -. t.epoch in
    let n =
      {
        sp_id = t.count;
        sp_parent = parent;
        sp_depth = d;
        sp_name = name;
        sp_start = start;
        sp_stop = start -. 1.0;
        sp_cycles = 0;
        sp_attrs = [];
      }
    in
    push t n;
    t.stack <- n :: t.stack;
    n
  end

let exit ?(cycles = 0) t sp =
  if t.on && sp != dead then begin
    sp.sp_stop <- t.clock () -. t.epoch;
    sp.sp_cycles <- sp.sp_cycles + cycles;
    (* Pop through any unclosed children so an exception path cannot wedge
       the stack; their stop stays unset and [wall_ms] clamps to 0. *)
    let rec pop = function
      | [] -> []
      | n :: rest -> if n == sp then rest else pop rest
    in
    t.stack <- pop t.stack
  end

let attr t sp key v = if t.on && sp != dead then sp.sp_attrs <- sp.sp_attrs @ [ (key, v) ]

let attr_int t sp key v = attr t sp key (Int v)

let attr_str t sp key v = attr t sp key (Str v)

let with_span ?cycles t name f =
  let sp = enter t name in
  match f () with
  | v ->
      exit ?cycles t sp;
      v
  | exception e ->
      exit ?cycles t sp;
      raise e

let wall_ms n = if n.sp_stop < n.sp_start then 0.0 else (n.sp_stop -. n.sp_start) *. 1000.0

let nodes t = Array.to_list (Array.sub t.nodes 0 t.count)

(* Concatenate collectors in input order, rebasing ids and parent links.
   Every unit of parallel work gets its own collector; merging in the
   deterministic order the work was issued (Pool.parallel_map returns
   input order) makes the merged log independent of domain count. *)
let merge ts =
  let out =
    { on = true; clock = (fun () -> 0.0); epoch = 0.0; nodes = Array.make 16 dead; count = 0; stack = [] }
  in
  List.iter
    (fun src ->
      if src.on then begin
        let base = out.count in
        for i = 0 to src.count - 1 do
          let n = src.nodes.(i) in
          push out
            {
              n with
              sp_id = base + n.sp_id;
              sp_parent = (if n.sp_parent < 0 then -1 else base + n.sp_parent);
            }
        done
      end)
    ts;
  out

let attr_json = function Int i -> Render.Json.Int i | Str s -> Render.Json.Str s

let node_json ~wall n =
  let open Render.Json in
  let base =
    [
      ("id", Int n.sp_id);
      ("parent", Int n.sp_parent);
      ("depth", Int n.sp_depth);
      ("name", Str n.sp_name);
    ]
  in
  let timing = if wall then [ ("ms", Float (wall_ms n)) ] else [] in
  let cyc = if n.sp_cycles <> 0 then [ ("cycles", Int n.sp_cycles) ] else [] in
  let attrs =
    match n.sp_attrs with
    | [] -> []
    | kvs -> [ ("attrs", Obj (List.map (fun (k, v) -> (k, attr_json v)) kvs)) ]
  in
  Obj (base @ timing @ cyc @ attrs)

let to_json ?(wall = true) t =
  Render.Json.Obj
    [
      ("count", Render.Json.Int t.count);
      ("spans", Render.Json.List (List.map (node_json ~wall) (nodes t)));
    ]

(* Per-phase aggregate: name -> (occurrences, total wall ms, total cycles),
   name-sorted so renders are deterministic. *)
let summary t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun n ->
      let c, ms, cy = try Hashtbl.find tbl n.sp_name with Not_found -> (0, 0.0, 0) in
      Hashtbl.replace tbl n.sp_name (c + 1, ms +. wall_ms n, cy + n.sp_cycles))
    (nodes t);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let summary_table t =
  let tbl = Ndp_prelude.Table.create ~header:[ "phase"; "count"; "ms"; "cycles" ] in
  List.iter
    (fun (name, (c, ms, cy)) ->
      Ndp_prelude.Table.add_row tbl
        [ name; string_of_int c; Printf.sprintf "%.3f" ms; string_of_int cy ])
    (summary t);
  Ndp_prelude.Table.render tbl

(* Chrome trace slices: wall-clock "X" events on their own pid track so
   they sit next to (not interleaved with) the cycle-domain task/counter
   tracks. Nesting falls out of ts/dur containment on one tid. *)
let chrome_events ?(pid = 1) t =
  List.map
    (fun n ->
      let open Render.Json in
      Obj
        [
          ("name", Str n.sp_name);
          ("cat", Str "span");
          ("ph", Str "X");
          ("pid", Int pid);
          ("tid", Int 0);
          ("ts", Int (int_of_float (n.sp_start *. 1e6)));
          ("dur", Int (int_of_float (wall_ms n *. 1e3)));
          ( "args",
            Obj
              ([
                 ("id", Int n.sp_id);
                 ("parent", Int n.sp_parent);
                 ("cycles", Int n.sp_cycles);
               ]
              @ List.map (fun (k, v) -> (k, attr_json v)) n.sp_attrs) );
        ])
    (nodes t)
