(** The one output-format surface shared by every `ndp_run` subcommand and
    by the bench harness.

    Historically each reporting path grew its own format story: `check`
    rendered diagnostics as human/sexp/jsonl, bench had a bespoke [--json],
    and new commands would have invented a fourth dialect. [Render] fixes
    the vocabulary: a command builds one {!Json.t} document (plus an
    optional human renderer) and every format is derived from it, so
    [--format human|sexp|json|jsonl] means the same thing everywhere. *)

type format = Human | Sexp | Json | Jsonl

val all_formats : (string * format) list
(** [(name, format)] pairs, in CLI presentation order — feed to
    [Cmdliner.Arg.enum]. *)

val format_to_string : format -> string

val format_of_string : string -> (format, string) result

(** A minimal JSON document model (no external dependency). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val escape : string -> string
  (** A quoted JSON string literal with the mandatory escapes. *)

  val to_string : t -> string
  (** Compact single-line rendering. Non-finite floats render as [null]
      (JSON has no spelling for them). *)

  val parse : string -> (t, string) result
  (** Parse one JSON document (the dialect {!to_string} writes; RFC 8259).
      Numbers without a fraction or exponent that fit in an OCaml [int]
      parse as [Int], everything else as [Float], so
      [parse (to_string doc) = Ok doc] for every document the renderer can
      produce (non-finite floats excepted — they serialize as [null]).
      The error string names the offset of the first syntax error. *)

  val member : string -> t -> t option
  (** [member key (Obj kvs)] is the value bound to [key]; [None] on a
      missing key or a non-object. *)
end

(** Prometheus text-exposition lexical helpers, composed by
    [Metrics.to_prometheus] (the semantic assembly lives there because
    [Metrics] depends on [Render], not the reverse). *)
module Prom : sig
  val mangle : string -> string
  (** Map a dotted instrument name to a valid Prometheus metric name:
      characters outside [[a-zA-Z0-9_:]] become ['_'], a leading digit is
      prefixed with ['_']. *)

  val split_series : string -> string * (string * string) list
  (** Split an exploded registry sample name ([base] or [base{label}])
      into the family name and its label pairs: [k=v] labels become
      [(k, v)]; a label without ['='] is kept whole as [("label", l)]. *)

  val escape_label_value : string -> string
  (** Backslash-escape backslash, double-quote and newline for a quoted
      label value. *)

  val labels_to_string : (string * string) list -> string
  (** [{k="v",...}], or [""] for no labels. Keys are {!mangle}d, values
      {!escape_label_value}d. *)

  val float_repr : float -> string
  (** Prometheus float spelling: integers bare, non-finite as
      [NaN]/[+Inf]/[-Inf]. *)

  val sample_line : string -> (string * string) list -> string -> string
  (** [name{labels} value]. *)
end

val sexp_atom : string -> string
(** Quote/escape a string as a single s-expression atom; bare symbols pass
    through unquoted. *)

val json_to_sexp : Json.t -> string
(** Generic s-expression view of a JSON document: objects become
    [(key value)] pair lists, arrays become plain lists. Gives every
    command a sexp format for free once it can build its JSON document. *)

val output : format -> human:(unit -> string) -> Json.t -> string
(** Render one document under the requested format. [human] is consulted
    only for {!Human}; {!Json} is the compact document; {!Jsonl} emits one
    line per element of a top-level [List] (or per field of a top-level
    [Obj], as [{"key": ..., "value": ...}] lines); {!Sexp} is
    {!json_to_sexp}. *)
