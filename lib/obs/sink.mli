(** The observability handle threaded through the simulator and compiler:
    one metrics registry, one event tracer, one data-movement attribution
    ledger and one counter timeline. Subsystem constructors
    ([Machine.create], [Engine.create], [Pipeline.run], ...) take
    [?obs:Sink.t] defaulting to {!none}, so unobserved runs pay only the
    inert-handle branches. *)

type t = {
  metrics : Metrics.t;
  trace : Trace.t;
  ledger : Ledger.t;
  timeline : Timeline.t;
  spans : Span.t;
}

val none : t
(** Everything disabled — the default everywhere. *)

val create :
  ?metrics:bool ->
  ?trace:bool ->
  ?trace_capacity:int ->
  ?ledger:bool ->
  ?timeline_interval:int ->
  ?timeline_capacity:int ->
  ?spans:bool ->
  unit ->
  t
(** Enable the requested parts. [metrics] and [trace] default to [true];
    the profiling layers default to off ([ledger = false],
    [timeline_interval = 0], [spans = false]) so existing callers keep
    their exact pre-profiling behaviour. Callers that already hold a
    {!Span.t} (e.g. a per-request collector) substitute it with a record
    update: [{ sink with Sink.spans }]. *)

val metrics_enabled : t -> bool

val trace_enabled : t -> bool

val ledger_enabled : t -> bool

val timeline_enabled : t -> bool

val spans_enabled : t -> bool
