(** The observability handle threaded through the simulator and compiler:
    one metrics registry plus one event tracer. Subsystem constructors
    ([Machine.create], [Engine.create], [Pipeline.run], ...) take
    [?obs:Sink.t] defaulting to {!none}, so unobserved runs pay only the
    inert-handle branches. *)

type t = { metrics : Metrics.t; trace : Trace.t }

val none : t
(** Disabled metrics and disabled trace — the default everywhere. *)

val create : ?metrics:bool -> ?trace:bool -> ?trace_capacity:int -> unit -> t
(** Enable the requested parts (both default to [true]). *)

val metrics_enabled : t -> bool

val trace_enabled : t -> bool
