(** Ring-buffered event tracer.

    The engine and network emit task, message and sync events as they
    replay a schedule; the buffer keeps the most recent [capacity] events
    (dropping the oldest first and counting the drops) so tracing a large
    run is bounded-memory. Events render as Chrome [trace_event] JSON —
    load the file in Perfetto / [chrome://tracing] to see the schedule laid
    out per node and compare it against the paper's expected placement —
    or as JSONL for scripted consumers.

    A disabled tracer ({!none}) makes every emit a single branch, so
    instrumented code pays nothing when tracing is off. *)

type kind = Task | Message | Sync

type event = {
  kind : kind;
  name : string;
  node : int; (** executing node; for messages, the source node *)
  start_ts : int; (** cycle the span begins (issue / departure) *)
  end_ts : int; (** cycle the span ends (finish / arrival) *)
  id : int; (** task id, consumer task id for syncs, sequence no. for messages *)
  args : (string * int) list; (** extra integer attributes, e.g. dst, bytes, group *)
}

type t

val create : ?capacity:int -> unit -> t
(** An enabled tracer keeping the last [capacity] events (default 65536;
    clamped to at least 1). *)

val none : t
(** The shared disabled tracer. *)

val enabled : t -> bool

val emit : t -> event -> unit

val task : t -> name:string -> node:int -> start:int -> finish:int -> id:int -> group:int -> unit

val message : t -> src:int -> dst:int -> depart:int -> arrival:int -> bytes:int -> unit

val sync : t -> node:int -> ts:int -> producer:int -> consumer:int -> unit

val events : t -> event list
(** Surviving events, oldest first (emission order). *)

val sorted_events : t -> event list
(** Surviving events, stably sorted by start cycle — the order
    {!to_chrome} and {!to_jsonl} render in. *)

val length : t -> int
(** Number of surviving events. *)

val total : t -> int
(** Number of events ever emitted. *)

val dropped : t -> int
(** [total - length]: events overwritten by the ring. *)

val to_chrome : ?counters:Render.Json.t list -> ?spans:Span.t -> t -> string
(** One Chrome [trace_event] JSON document:
    [{"traceEvents": [...], "displayTimeUnit": "ns", ...}]. Tasks and
    messages are complete ("X") events with [pid] 0 and [tid] = node
    (cycles as microseconds); syncs are instant ("i") events. Events are
    sorted by start cycle, so timestamps are globally (and per-node)
    non-decreasing. [counters] are pre-rendered extra events — e.g.
    {!Timeline.chrome_counter_events} counter tracks — appended after the
    task events (Perfetto orders by timestamp itself). [spans] appends
    {!Span.chrome_events} slices: request-scoped wall-clock phases on
    their own pid track, nested next to the cycle-domain tracks. *)

val to_jsonl : t -> string
(** One JSON object per line, same field names as {!to_chrome} events,
    same ordering. *)
