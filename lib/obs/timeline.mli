(** Cycle-resolved counter timelines.

    A timeline periodically snapshots registered samplers — closures over
    counters the simulator already maintains — every [interval] simulated
    cycles, producing one compact series per instrument. Samples are
    delta-encoded (both timestamp and value), bounded by a per-instrument
    capacity (later boundary crossings are counted as dropped, mirroring
    [Trace]'s ring discipline), and series from independent shards can be
    {!merge}d into totals the same way [Metrics.Sharded] merges
    registries.

    The driver calls {!tick} with a monotone "now" (the engine uses the
    running [finish_time] envelope); the timeline samples at most once per
    crossed interval boundary, so ticking is a single compare on the hot
    path. A disabled timeline ({!none}) makes every operation a single
    always-false branch. *)

type t

val none : t
(** The shared inert timeline — the default everywhere. *)

val create : ?capacity:int -> interval:int -> unit -> t
(** [capacity] bounds the samples kept per instrument (default 4096).
    [interval <= 0] yields a disabled timeline. *)

val enabled : t -> bool

val interval : t -> int
(** Sampling period in simulated cycles; [0] when disabled. *)

val register : t -> string -> (unit -> int) -> unit
(** Register (or re-bind) a named sampler. Re-registering an existing name
    swaps the closure but keeps the recorded series, so a fresh engine can
    adopt a sink that already carries history. *)

val tick : t -> now:int -> unit
(** Sample every instrument if [now] has crossed the next interval
    boundary (at the boundary timestamp). [now] must be monotone
    non-decreasing across calls. *)

val flush : t -> now:int -> unit
(** Take a final off-boundary sample at [now] so every series ends at the
    run's last cycle. Idempotent for a given [now]. *)

type series = { name : string; samples : (int * int) list; dropped : int }
(** Decoded [(timestamp, value)] pairs in time order. *)

val series : t -> series list
(** All series, sorted by name. *)

val merge : t list -> t
(** Sum-merge by instrument name: the merged value at a timestamp is the
    sum of each input's most recent sample at or before it (0 before an
    input's first sample). The result is read-only in spirit — it has no
    samplers — but ticks and registrations still work and append to it. *)

val to_json : t -> Render.Json.t
(** [{"interval": N, "series": [{"name", "dropped", "samples": [[ts,v],..]},..]}]. *)

val chrome_counter_events : t -> Render.Json.t list
(** One Perfetto/Chrome counter event ([ph = "C"]) per sample, for
    appending to a [Trace.to_chrome] document's [traceEvents]. *)
