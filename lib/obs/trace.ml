type kind = Task | Message | Sync

type event = {
  kind : kind;
  name : string;
  node : int;
  start_ts : int;
  end_ts : int;
  id : int;
  args : (string * int) list;
}

let dummy_event =
  { kind = Sync; name = ""; node = 0; start_ts = 0; end_ts = 0; id = 0; args = [] }

type t = {
  on : bool;
  ring : event array;
  mutable emitted : int; (* events ever pushed; write cursor = emitted mod capacity *)
}

let create ?(capacity = 65536) () =
  { on = true; ring = Array.make (max 1 capacity) dummy_event; emitted = 0 }

let none = { on = false; ring = [| dummy_event |]; emitted = 0 }

let enabled t = t.on

let emit t e =
  if t.on then begin
    t.ring.(t.emitted mod Array.length t.ring) <- e;
    t.emitted <- t.emitted + 1
  end

let task t ~name ~node ~start ~finish ~id ~group =
  if t.on then
    emit t
      {
        kind = Task;
        name;
        node;
        start_ts = start;
        end_ts = finish;
        id;
        args = [ ("group", group) ];
      }

let message t ~src ~dst ~depart ~arrival ~bytes =
  if t.on then
    emit t
      {
        kind = Message;
        name = "msg";
        node = src;
        start_ts = depart;
        end_ts = arrival;
        id = t.emitted;
        args = [ ("dst", dst); ("bytes", bytes) ];
      }

let sync t ~node ~ts ~producer ~consumer =
  if t.on then
    emit t
      {
        kind = Sync;
        name = "sync";
        node;
        start_ts = ts;
        end_ts = ts;
        id = consumer;
        args = [ ("producer", producer) ];
      }

let length t = min t.emitted (Array.length t.ring)

let total t = t.emitted

let dropped t = t.emitted - length t

let events t =
  let cap = Array.length t.ring in
  let n = length t in
  let first = if t.emitted <= cap then 0 else t.emitted mod cap in
  List.init n (fun i -> t.ring.((first + i) mod cap))

let kind_to_string = function Task -> "task" | Message -> "message" | Sync -> "sync"

let sorted_events t =
  (* Stable sort on the start cycle keeps emission order among equal
     timestamps and makes the rendered stream monotonic, which both
     Perfetto and the trace selfcheck rely on. *)
  List.stable_sort (fun a b -> compare a.start_ts b.start_ts) (events t)

let chrome_event e =
  let open Render.Json in
  let common =
    [
      ("name", Str e.name);
      ("cat", Str (kind_to_string e.kind));
      ("pid", Int 0);
      ("tid", Int e.node);
      ("ts", Int e.start_ts);
    ]
  in
  let shape =
    match e.kind with
    | Task | Message -> [ ("ph", Str "X"); ("dur", Int (max 0 (e.end_ts - e.start_ts))) ]
    | Sync -> [ ("ph", Str "i"); ("s", Str "t") ]
  in
  let args = ("id", e.id) :: e.args in
  common @ shape @ [ ("args", Obj (List.map (fun (k, v) -> (k, Int v)) args)) ]

let to_chrome ?(counters = []) ?spans t =
  let open Render.Json in
  let events = List.map (fun e -> Obj (chrome_event e)) (sorted_events t) in
  let span_events = match spans with None -> [] | Some s -> Span.chrome_events s in
  to_string
    (Obj
       [
         ("traceEvents", List (events @ counters @ span_events));
         ("displayTimeUnit", Str "ns");
         ("otherData", Obj [ ("emitted", Int (total t)); ("dropped", Int (dropped t)) ]);
       ])

let to_jsonl t =
  String.concat "\n"
    (List.map (fun e -> Render.Json.to_string (Render.Json.Obj (chrome_event e))) (sorted_events t))
