(** Request-scoped nestable spans.

    A collector records a log of named spans with structural parent links
    (derived from an explicit open-span stack), wall-clock durations,
    simulated-cycle counts and key=value attributes. Handles are inert —
    [enter]/[exit] on a disabled collector cost one branch and allocate
    nothing, the same discipline as disabled {!Metrics} handles.

    A collector is single-domain: parallel code gives each unit of work
    its own collector and {!merge}s them in deterministic (input) order,
    mirroring [Metrics.Sharded], so traced output is byte-identical at
    any [--jobs]. *)

type attr = Int of int | Str of string

type t
(** A span collector. *)

type span
(** A handle for one open (or finished) span. *)

val none : t
(** The disabled collector — every operation is an inert branch. *)

val create : ?clock:(unit -> float) -> unit -> t
(** A live collector. [clock] defaults to {!default_clock} [()]. *)

val default_clock : unit -> unit -> float
(** [Unix.gettimeofday], unless the [NDP_FAKE_CLOCK] environment variable
    is set (non-empty, non-"0"), in which case a process-global monotone
    counter stepping 1/1024 s per call — golden tests use it to make
    durations byte-reproducible. *)

val enabled : t -> bool

val count : t -> int
(** Spans recorded so far. *)

val depth : t -> int
(** Currently open (entered, not yet exited) spans. *)

val enter : t -> string -> span
(** Open a span named [name]; its parent is the innermost open span. *)

val exit : ?cycles:int -> t -> span -> unit
(** Close [span], stamping its wall duration and adding [cycles] to its
    simulated-cycle count. Unclosed children are popped (their durations
    clamp to 0) so an exception path cannot wedge the stack. *)

val attr_int : t -> span -> string -> int -> unit

val attr_str : t -> span -> string -> string -> unit

val with_span : ?cycles:int -> t -> string -> (unit -> 'a) -> 'a
(** [with_span t name f] brackets [f ()] in a span, exception-safely. *)

val merge : t list -> t
(** Concatenate collectors in input order, rebasing span ids and parent
    links past earlier collectors. Disabled collectors contribute
    nothing. The result is a live collector with no open spans. *)

val to_json : ?wall:bool -> t -> Render.Json.t
(** The span log as [{"count": n, "spans": [...]}]. [wall:false] omits
    the wall-clock ["ms"] field — the deterministic projection the merge
    tests compare byte-for-byte. *)

val summary : t -> (string * (int * float * int)) list
(** Per-name aggregate [(count, total wall ms, total cycles)],
    name-sorted. *)

val summary_table : t -> string
(** Human rendering of {!summary}. *)

val chrome_events : ?pid:int -> t -> Render.Json.t list
(** Chrome trace "X" slices (wall microseconds) on their own [pid] track
    (default 1), nested by ts/dur containment — feed to
    [Trace.to_chrome ~spans]. *)
