type t = { metrics : Metrics.t; trace : Trace.t }

let none = { metrics = Metrics.disabled; trace = Trace.none }

let create ?(metrics = true) ?(trace = true) ?trace_capacity () =
  {
    metrics = (if metrics then Metrics.create () else Metrics.disabled);
    trace = (if trace then Trace.create ?capacity:trace_capacity () else Trace.none);
  }

let metrics_enabled t = Metrics.enabled t.metrics

let trace_enabled t = Trace.enabled t.trace
