type t = {
  metrics : Metrics.t;
  trace : Trace.t;
  ledger : Ledger.t;
  timeline : Timeline.t;
  spans : Span.t;
}

let none =
  {
    metrics = Metrics.disabled;
    trace = Trace.none;
    ledger = Ledger.none;
    timeline = Timeline.none;
    spans = Span.none;
  }

let create ?(metrics = true) ?(trace = true) ?trace_capacity ?(ledger = false)
    ?(timeline_interval = 0) ?timeline_capacity ?(spans = false) () =
  {
    metrics = (if metrics then Metrics.create () else Metrics.disabled);
    trace = (if trace then Trace.create ?capacity:trace_capacity () else Trace.none);
    ledger = (if ledger then Ledger.create () else Ledger.none);
    timeline =
      (if timeline_interval > 0 then
         Timeline.create ?capacity:timeline_capacity ~interval:timeline_interval ()
       else Timeline.none);
    spans = (if spans then Span.create () else Span.none);
  }

let metrics_enabled t = Metrics.enabled t.metrics

let trace_enabled t = Trace.enabled t.trace

let ledger_enabled t = Ledger.enabled t.ledger

let timeline_enabled t = Timeline.enabled t.timeline

let spans_enabled t = Span.enabled t.spans
