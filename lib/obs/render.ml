type format = Human | Sexp | Json | Jsonl

let all_formats = [ ("human", Human); ("sexp", Sexp); ("json", Json); ("jsonl", Jsonl) ]

let format_to_string f =
  match List.find (fun (_, g) -> g = f) all_formats with name, _ -> name

let format_of_string s =
  match List.assoc_opt (String.lowercase_ascii s) all_formats with
  | Some f -> Ok f
  | None ->
    Error
      (Printf.sprintf "unknown format %S (expected %s)" s
         (String.concat ", " (List.map fst all_formats)))

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf

  let float_repr f =
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else Printf.sprintf "%.12g" f

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if not (Float.is_finite f) then Buffer.add_string buf "null"
      else Buffer.add_string buf (float_repr f)
    | Str s -> Buffer.add_string buf (escape s)
    | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (escape k);
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 256 in
    write buf j;
    Buffer.contents buf
end

let sexp_atom s =
  let bare c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '-' || c = '_' || c = '.' || c = '/'
  in
  if s <> "" && String.for_all bare s then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' || c = '\\' then Buffer.add_char buf '\\';
        Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let rec json_to_sexp (j : Json.t) =
  match j with
  | Json.Null -> "()"
  | Json.Bool b -> if b then "true" else "false"
  | Json.Int i -> string_of_int i
  | Json.Float f -> Json.float_repr f
  | Json.Str s -> sexp_atom s
  | Json.List xs -> "(" ^ String.concat " " (List.map json_to_sexp xs) ^ ")"
  | Json.Obj fields ->
    "("
    ^ String.concat " "
        (List.map (fun (k, v) -> "(" ^ sexp_atom k ^ " " ^ json_to_sexp v ^ ")") fields)
    ^ ")"

let output fmt ~human (doc : Json.t) =
  match fmt with
  | Human -> human ()
  | Json -> Json.to_string doc
  | Sexp -> json_to_sexp doc
  | Jsonl -> (
    match doc with
    | Json.List xs -> String.concat "\n" (List.map Json.to_string xs)
    | Json.Obj fields ->
      String.concat "\n"
        (List.map
           (fun (k, v) -> Json.to_string (Json.Obj [ ("key", Json.Str k); ("value", v) ]))
           fields)
    | other -> Json.to_string other)
