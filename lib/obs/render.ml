type format = Human | Sexp | Json | Jsonl

let all_formats = [ ("human", Human); ("sexp", Sexp); ("json", Json); ("jsonl", Jsonl) ]

let format_to_string f =
  match List.find (fun (_, g) -> g = f) all_formats with name, _ -> name

let format_of_string s =
  match List.assoc_opt (String.lowercase_ascii s) all_formats with
  | Some f -> Ok f
  | None ->
    Error
      (Printf.sprintf "unknown format %S (expected %s)" s
         (String.concat ", " (List.map fst all_formats)))

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf

  let float_repr f =
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else Printf.sprintf "%.12g" f

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if not (Float.is_finite f) then Buffer.add_string buf "null"
      else Buffer.add_string buf (float_repr f)
    | Str s -> Buffer.add_string buf (escape s)
    | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (escape k);
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 256 in
    write buf j;
    Buffer.contents buf

  (* A reader for the same dialect [to_string] writes (RFC 8259 minus
     nothing we emit): numbers without '.', 'e' or 'E' that fit in an
     OCaml int parse as [Int], everything else as [Float]; \uXXXX escapes
     decode to UTF-8. The serve wire protocol and the tests parse with
     this, so a [to_string]/[parse] round trip is the identity on every
     document the renderer can produce (non-finite floats excepted — they
     serialize as [null]). *)
  let parse (s : string) : (t, string) result =
    let n = String.length s in
    let pos = ref 0 in
    let exception Bad of string in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then s.[!pos] else '\000' in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws () | _ -> ()
    in
    let expect c =
      if peek () = c then advance () else fail (Printf.sprintf "expected '%c'" c)
    in
    let add_utf8 b cp =
      if cp < 0x80 then Buffer.add_char b (Char.chr cp)
      else if cp < 0x800 then begin
        Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
        Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
      end
      else begin
        Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
        Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
        Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
      end
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | '\000' when !pos >= n -> fail "unterminated string"
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (match peek () with
          | 'n' -> Buffer.add_char b '\n'; advance ()
          | 't' -> Buffer.add_char b '\t'; advance ()
          | 'r' -> Buffer.add_char b '\r'; advance ()
          | 'b' -> Buffer.add_char b '\b'; advance ()
          | 'f' -> Buffer.add_char b '\012'; advance ()
          | '/' -> Buffer.add_char b '/'; advance ()
          | '"' -> Buffer.add_char b '"'; advance ()
          | '\\' -> Buffer.add_char b '\\'; advance ()
          | 'u' ->
            advance ();
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | Some cp -> add_utf8 b cp
            | None -> fail "bad \\u escape");
            pos := !pos + 4
          | _ -> fail "bad escape");
          go ()
        | c ->
          Buffer.add_char b c;
          advance ();
          go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while num_char (peek ()) do
        advance ()
      done;
      let text = String.sub s start (!pos - start) in
      let integral = String.for_all (function '0' .. '9' | '-' -> true | _ -> false) text in
      match (integral, int_of_string_opt text) with
      | true, Some i -> Int i
      | _ -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "bad number")
    in
    let literal word v =
      String.iter expect word;
      v
    in
    let rec parse_value depth =
      if depth > 512 then fail "nesting too deep";
      skip_ws ();
      match peek () with
      | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then (advance (); Obj [])
        else
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | ',' -> advance (); members ((key, v) :: acc)
            | '}' -> advance (); Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
      | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then (advance (); List [])
        else
          let rec elements acc =
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | ',' -> advance (); elements (v :: acc)
            | ']' -> advance (); List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
      | '"' -> Str (parse_string ())
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | 'n' -> literal "null" Null
      | _ -> parse_number ()
    in
    match
      let v = parse_value 0 in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Bad msg -> Error msg

  let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
end

let sexp_atom s =
  let bare c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '-' || c = '_' || c = '.' || c = '/'
  in
  if s <> "" && String.for_all bare s then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' || c = '\\' then Buffer.add_char buf '\\';
        Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let rec json_to_sexp (j : Json.t) =
  match j with
  | Json.Null -> "()"
  | Json.Bool b -> if b then "true" else "false"
  | Json.Int i -> string_of_int i
  | Json.Float f -> Json.float_repr f
  | Json.Str s -> sexp_atom s
  | Json.List xs -> "(" ^ String.concat " " (List.map json_to_sexp xs) ^ ")"
  | Json.Obj fields ->
    "("
    ^ String.concat " "
        (List.map (fun (k, v) -> "(" ^ sexp_atom k ^ " " ^ json_to_sexp v ^ ")") fields)
    ^ ")"

(* Prometheus text-exposition lexical helpers. The semantic assembly
   (families, bucket cumulation) lives in [Metrics.to_prometheus] —
   [Metrics] already depends on [Render], so only the format vocabulary
   can live here. *)
module Prom = struct
  let mangle name =
    let mangled =
      String.map
        (fun c ->
          match c with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
          | _ -> '_')
        name
    in
    if mangled = "" then "_"
    else
      match mangled.[0] with '0' .. '9' -> "_" ^ mangled | _ -> mangled

  (* Registry sample names are [base] or [base{label}] (the exploded-vec
     form). A label of shape [k=v] becomes the pair; anything else (e.g. a
     NoC link like "1,0->2,0") is kept whole under the key "label". *)
  let split_series name =
    match String.index_opt name '{' with
    | Some i when String.length name > 0 && name.[String.length name - 1] = '}' ->
      let base = String.sub name 0 i in
      let label = String.sub name (i + 1) (String.length name - i - 2) in
      let pair =
        match String.index_opt label '=' with
        | Some j ->
          (String.sub label 0 j, String.sub label (j + 1) (String.length label - j - 1))
        | None -> ("label", label)
      in
      (base, [ pair ])
    | _ -> (name, [])

  let escape_label_value v =
    let buf = Buffer.create (String.length v) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '"' -> Buffer.add_string buf "\\\""
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      v;
    Buffer.contents buf

  let labels_to_string = function
    | [] -> ""
    | kvs ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" (mangle k) (escape_label_value v)) kvs)
      ^ "}"

  let float_repr f =
    if Float.is_nan f then "NaN"
    else if f = Float.infinity then "+Inf"
    else if f = Float.neg_infinity then "-Inf"
    else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%.12g" f

  let sample_line name labels value =
    Printf.sprintf "%s%s %s" name (labels_to_string labels) value
end

let output fmt ~human (doc : Json.t) =
  match fmt with
  | Human -> human ()
  | Json -> Json.to_string doc
  | Sexp -> json_to_sexp doc
  | Jsonl -> (
    match doc with
    | Json.List xs -> String.concat "\n" (List.map Json.to_string xs)
    | Json.Obj fields ->
      String.concat "\n"
        (List.map
           (fun (k, v) -> Json.to_string (Json.Obj [ ("key", Json.Str k); ("value", v) ]))
           fields)
    | other -> Json.to_string other)
