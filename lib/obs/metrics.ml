type counter = { mutable c_v : int; c_on : bool }

type vec = { v_data : int array; v_label : int -> string; v_on : bool }

type gauge = { mutable g_v : float; g_on : bool }

type histogram = {
  h_bounds : float array; (* upper bounds, strictly increasing *)
  h_counts : int array; (* length bounds + 1; last slot = overflow *)
  mutable h_sum : float;
  mutable h_count : int;
  h_on : bool;
}

type instrument =
  | I_counter of counter
  | I_vec of vec
  | I_gauge of gauge
  | I_gauge_fn of (unit -> float)
  | I_histogram of histogram

type t = { on : bool; table : (string, instrument) Hashtbl.t }

let create () = { on = true; table = Hashtbl.create 64 }

let disabled = { on = false; table = Hashtbl.create 0 }

let enabled t = t.on

(* Inert handles shared by every instrument of a disabled registry: no
   allocation, and bumps reduce to one always-false branch. *)
let dead_counter = { c_v = 0; c_on = false }

let dead_vec = { v_data = [||]; v_label = string_of_int; v_on = false }

let dead_gauge = { g_v = 0.0; g_on = false }

let dead_histogram =
  { h_bounds = [||]; h_counts = [| 0 |]; h_sum = 0.0; h_count = 0; h_on = false }

let register t name make get =
  match Hashtbl.find_opt t.table name with
  | Some i -> (
    match get i with
    | Some h -> h
    | None -> invalid_arg (Printf.sprintf "Metrics: %S already registered with another type" name))
  | None ->
    let h = make () in
    h

let counter t name =
  if not t.on then dead_counter
  else
    register t name
      (fun () ->
        let c = { c_v = 0; c_on = true } in
        Hashtbl.replace t.table name (I_counter c);
        c)
      (function I_counter c -> Some c | _ -> None)

let add c n = if c.c_on then c.c_v <- c.c_v + n

let incr c = add c 1

let counter_value c = c.c_v

let vec t name ~size ~label =
  if not t.on then dead_vec
  else
    register t name
      (fun () ->
        let v = { v_data = Array.make size 0; v_label = label; v_on = true } in
        Hashtbl.replace t.table name (I_vec v);
        v)
      (function
        | I_vec v ->
          if Array.length v.v_data <> size then
            invalid_arg (Printf.sprintf "Metrics.vec: %S re-registered with size %d" name size);
          Some v
        | _ -> None)

let vadd v i n = if v.v_on && i >= 0 && i < Array.length v.v_data then v.v_data.(i) <- v.v_data.(i) + n

let vec_value v i = if i >= 0 && i < Array.length v.v_data then v.v_data.(i) else 0

let vec_size v = Array.length v.v_data

let gauge t name =
  if not t.on then dead_gauge
  else
    register t name
      (fun () ->
        let g = { g_v = 0.0; g_on = true } in
        Hashtbl.replace t.table name (I_gauge g);
        g)
      (function I_gauge g -> Some g | _ -> None)

let set_gauge g v = if g.g_on then g.g_v <- v

let gauge_fn t name f = if t.on then Hashtbl.replace t.table name (I_gauge_fn f)

let default_buckets = Array.init 21 (fun i -> float_of_int (1 lsl i))

let histogram ?(buckets = default_buckets) t name =
  if not t.on then dead_histogram
  else
    register t name
      (fun () ->
        let h =
          {
            h_bounds = Array.copy buckets;
            h_counts = Array.make (Array.length buckets + 1) 0;
            h_sum = 0.0;
            h_count = 0;
            h_on = true;
          }
        in
        Hashtbl.replace t.table name (I_histogram h);
        h)
      (function I_histogram h -> Some h | _ -> None)

let observe h x =
  if h.h_on then begin
    let n = Array.length h.h_bounds in
    let rec slot i = if i = n || x <= h.h_bounds.(i) then i else slot (i + 1) in
    let i = slot 0 in
    h.h_counts.(i) <- h.h_counts.(i) + 1;
    h.h_sum <- h.h_sum +. x;
    h.h_count <- h.h_count + 1
  end

type sample =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of { counts : int array; bounds : float array; sum : float; count : int }

let explode name instrument acc =
  match instrument with
  | I_counter c -> (name, Counter_v c.c_v) :: acc
  | I_gauge g -> (name, Gauge_v g.g_v) :: acc
  | I_gauge_fn f -> (name, Gauge_v (f ())) :: acc
  | I_histogram h ->
    ( name,
      Histogram_v
        {
          counts = Array.copy h.h_counts;
          bounds = Array.copy h.h_bounds;
          sum = h.h_sum;
          count = h.h_count;
        } )
    :: acc
  | I_vec v ->
    let acc = ref acc in
    for i = Array.length v.v_data - 1 downto 0 do
      if v.v_data.(i) <> 0 then
        acc := (Printf.sprintf "%s{%s}" name (v.v_label i), Counter_v v.v_data.(i)) :: !acc
    done;
    !acc

let to_alist t =
  let samples = Hashtbl.fold (fun name i acc -> explode name i acc) t.table [] in
  List.sort (fun (a, _) (b, _) -> compare a b) samples

let find t name = List.assoc_opt name (to_alist t)

let merge regs =
  let out = create () in
  List.iter
    (fun reg ->
      List.iter
        (fun (name, sample) ->
          match sample with
          | Counter_v n -> add (counter out name) n
          | Gauge_v v -> set_gauge (gauge out name) v
          | Histogram_v { counts; bounds; sum; count } -> (
            match Hashtbl.find_opt out.table name with
            | Some (I_histogram h) when h.h_bounds = bounds ->
              Array.iteri (fun i n -> h.h_counts.(i) <- h.h_counts.(i) + n) counts;
              h.h_sum <- h.h_sum +. sum;
              h.h_count <- h.h_count + count
            | _ ->
              let h = histogram ~buckets:bounds out name in
              Array.blit counts 0 h.h_counts 0 (Array.length counts);
              h.h_sum <- sum;
              h.h_count <- count))
        (to_alist reg))
    regs;
  out

(* Quantile estimate from cumulative-style buckets: find the bucket the
   rank lands in and interpolate linearly between its bounds (the first
   bucket's lower bound is 0; the overflow bucket clamps to the largest
   bound, the best statement the histogram can make). *)
let percentile ~counts ~bounds q =
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then 0.0
  else begin
    let target = q *. float_of_int total in
    let nb = Array.length bounds in
    let top = if nb = 0 then 0.0 else bounds.(nb - 1) in
    let rec go i cum =
      if i >= Array.length counts then top
      else begin
        let cum' = cum + counts.(i) in
        if counts.(i) > 0 && float_of_int cum' >= target then
          if i >= nb then top
          else begin
            let lo = if i = 0 then 0.0 else bounds.(i - 1) in
            let frac = (target -. float_of_int cum) /. float_of_int counts.(i) in
            lo +. (frac *. (bounds.(i) -. lo))
          end
        else go (i + 1) cum'
      end
    in
    go 0 0
  end

let to_json t =
  let sample_json = function
    | Counter_v n -> Render.Json.Int n
    | Gauge_v v -> Render.Json.Float v
    | Histogram_v { counts; bounds; sum; count } ->
      let buckets =
        List.concat
          (List.init (Array.length counts) (fun i ->
               if counts.(i) = 0 then []
               else
                 [
                   Render.Json.List
                     [
                       (if i < Array.length bounds then Render.Json.Float bounds.(i)
                        else Render.Json.Str "+inf");
                       Render.Json.Int counts.(i);
                     ];
                 ]))
      in
      let p q = Render.Json.Float (percentile ~counts ~bounds q) in
      Render.Json.Obj
        [
          ("count", Render.Json.Int count);
          ("sum", Render.Json.Float sum);
          ("p50", p 0.5);
          ("p95", p 0.95);
          ("p99", p 0.99);
          ("buckets", Render.Json.List buckets);
        ]
  in
  Render.Json.Obj (List.map (fun (name, s) -> (name, sample_json s)) (to_alist t))

(* Prometheus text exposition of the whole registry. Families are the
   mangled instrument names; exploded-vec labels ride along as label
   pairs; histograms emit cumulative _bucket series plus _sum/_count, the
   standard shape. Output is name-sorted (inherited from [to_alist]), so
   the exposition is deterministic and free of duplicate series. *)
let to_prometheus t =
  let open Render.Prom in
  let buf = Buffer.create 1024 in
  let typed = Hashtbl.create 32 in
  let emit_type family kind =
    if not (Hashtbl.mem typed family) then begin
      Hashtbl.add typed family kind;
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" family kind)
    end
  in
  let line name labels value =
    Buffer.add_string buf (sample_line name labels value);
    Buffer.add_char buf '\n'
  in
  List.iter
    (fun (name, sample) ->
      let base, labels = split_series name in
      let family = mangle base in
      match sample with
      | Counter_v n ->
        emit_type family "counter";
        line family labels (string_of_int n)
      | Gauge_v v ->
        emit_type family "gauge";
        line family labels (float_repr v)
      | Histogram_v { counts; bounds; sum; count } ->
        emit_type family "histogram";
        let cum = ref 0 in
        Array.iteri
          (fun i n ->
            cum := !cum + n;
            let le = if i < Array.length bounds then float_repr bounds.(i) else "+Inf" in
            line (family ^ "_bucket") (labels @ [ ("le", le) ]) (string_of_int !cum))
          counts;
        line (family ^ "_sum") labels (float_repr sum);
        line (family ^ "_count") labels (string_of_int count))
    (to_alist t);
  Buffer.contents buf

module Sharded = struct
  type registry = t

  let fresh_registry = create

  type nonrec t = {
    s_on : bool;
    lock : Mutex.t;
    mutable shards : (int * registry) list; (* domain id -> shard *)
  }

  let create ?(enabled = true) () = { s_on = enabled; lock = Mutex.create (); shards = [] }

  let enabled t = t.s_on

  let local t =
    if not t.s_on then disabled
    else begin
      let id = (Domain.self () :> int) in
      Mutex.lock t.lock;
      let reg =
        match List.assoc_opt id t.shards with
        | Some reg -> reg
        | None ->
          let reg = fresh_registry () in
          t.shards <- (id, reg) :: t.shards;
          reg
      in
      Mutex.unlock t.lock;
      reg
    end

  (* Absorb a privately-filled registry (negative keys can never collide
     with the domain ids [local] uses). Callers that give each unit of
     work its own registry — rather than sharing a per-domain shard —
     keep units from reading each other's instrument handles, and can
     pre-merge in a deterministic order before absorbing. *)
  let add_shard t reg =
    if t.s_on then begin
      Mutex.lock t.lock;
      t.shards <- ((-1 - List.length t.shards), reg) :: t.shards;
      Mutex.unlock t.lock
    end

  let merged t =
    Mutex.lock t.lock;
    let shards = List.map snd t.shards in
    Mutex.unlock t.lock;
    merge shards
end
