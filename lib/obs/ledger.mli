(** Data-movement attribution ledger.

    Every message the simulated NoC carries is charged to a provenance key
    [(nest, statement id, array, src -> dst)]. The simulator does not know
    statements or arrays — it sees task groups and virtual addresses — so
    the compiler registers two resolvers (group -> statement, va -> array)
    and the hot path only stamps a mutable current context: the engine
    marks the running task's group, the memory system marks the address
    being moved, and {!account} folds [flits x links] into the entry for
    the current context. Summing [flit_hops] over every entry therefore
    reconciles exactly with the [noc.link_flits] total, because both count
    the same per-link flit traversals.

    The compiler side also records each statement's *predicted* movement
    (the Kruskal/window [size x distance] estimate, normalized to
    flit-hops) via {!predict}, so readers can put measured and predicted
    movement side by side per statement.

    Like the rest of the [?obs] surface, a disabled ledger ({!none}) makes
    every operation a single always-false branch — no allocation, no
    behavioural difference. *)

type t

val none : t
(** The shared inert ledger — the default everywhere. *)

val create : unit -> t

val enabled : t -> bool

(** {1 Vocabulary and resolvers (compiler side)} *)

val stmt_id : t -> nest:string -> stmt:int -> int
(** Intern a statement [(nest name, statement index)] and return its dense
    id. Id [0] is reserved for the unattributed ["(other)"] statement.
    Returns [0] on a disabled ledger. *)

val array_id : t -> string -> int
(** Intern an array name. Id [0] is reserved for ["(other)"]. *)

val set_group_resolver : t -> (int -> int) -> unit
(** [group -> stmt id] map, consulted by {!enter_group}. The compiler owns
    group numbering, so it supplies the translation. *)

val set_va_resolver : t -> (int -> int) -> unit
(** [virtual address -> array id] map, consulted by {!enter_va}. *)

(** {1 Hot path (simulator side)} *)

val enter_group : t -> int -> unit
(** The engine is about to execute a task of this group: subsequent
    {!account} calls are charged to the group's statement. *)

val enter_va : t -> int -> unit
(** The memory system is about to move data at this address: subsequent
    {!account} calls are charged to the containing array. *)

val enter_array : t -> int -> unit
(** Like {!enter_va} but with a pre-interned array id — used for traffic
    with no address, e.g. forwarded partial results. *)

val account : t -> src:int -> dst:int -> flits:int -> links:int -> unit
(** Charge one message of [flits] flits that traversed [links] links to
    the current [(statement, array)] context: [flit_hops += flits x links],
    [flits += flits], [messages += 1]. *)

(** {1 Predicted cost (compiler side)} *)

val predict : t -> stmt:int -> flit_hops:int -> unit
(** Accumulate the compiler's predicted movement for a statement, in the
    same flit-hop unit {!account} measures. *)

(** {1 Reading} *)

type row = {
  nest : string;
  stmt : int; (** statement index within the nest; [-1] for "(other)" *)
  array_name : string;
  src : int;
  dst : int;
  messages : int;
  flits : int;
  flit_hops : int;
}

type stmt_total = {
  s_nest : string;
  s_stmt : int;
  s_messages : int;
  s_flits : int;
  s_flit_hops : int;
  s_predicted : int;
}

val rows : t -> row list
(** Every provenance entry, sorted by [(nest, stmt, array, src, dst)] —
    deterministic regardless of accumulation order. *)

val statements : t -> stmt_total list
(** Per-statement aggregation of {!rows} joined with the predicted table,
    sorted by [(nest, stmt)]. Statements with predicted cost but no
    measured traffic (and vice versa) are included. *)

val total_messages : t -> int

val total_flits : t -> int

val total_flit_hops : t -> int
(** The reconciliation total: equals the sum over links of
    [noc.link_flits] for the same run. *)

val total_predicted : t -> int

val to_json : t -> Render.Json.t
(** [{"rows": [...], "statements": [...], "totals": {...}}]. *)
