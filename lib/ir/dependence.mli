(** Dependence analysis over statement instances.

    The partitioner works on concrete statement instances (a statement in a
    given loop iteration), so dependences are computed by resolving each
    reference to the element it touches. References a resolver cannot
    analyze (indirect subscripts without inspector data) yield conservative
    {e may}-dependences against every access to the same array. *)

type instance = {
  stmt_idx : int; (** position of the statement in program order *)
  stmt : Stmt.t;
  env : Env.t;
}

type kind = Flow | Anti | Output

type dep = {
  src : int; (** index into the analyzed instance list *)
  dst : int;
  kind : kind;
  may : bool; (** [true] when at least one side was unresolvable *)
}

type resolver = Reference.t -> Env.t -> int option
(** Maps a reference under an iteration environment to the address of the
    element it touches; [None] when not compile-time analyzable. *)

val analyze : resolver -> instance list -> dep list
(** All pairwise dependences with [src < dst] in list order. Accesses are
    pre-bucketed by (array, resolved address) — unresolvable ones by array
    name — so only pairs that can actually conflict are compared; affine
    streams cost O(n * dependence-chain length) instead of O(n{^ 2}). The
    result is identical to {!analyze_naive}. *)

val analyze_naive : resolver -> instance list -> dep list
(** Reference implementation comparing all O(n{^ 2}) instance pairs. Kept
    as the oracle for equivalence tests and the baseline for the
    [bench/main.exe micro] dependence benchmarks; use {!analyze}. *)

val kind_to_string : kind -> string

type index
(** Precomputed (src, dst) lookup over a dependence list. *)

val index_deps : dep list -> index
(** O(n) construction; queries through {!serialized} are O(1). *)

val serialized : index -> src:int -> dst:int -> bool
(** Whether any dependence orders the two instances. *)

val must_serialize : dep list -> src:int -> dst:int -> bool
(** Whether any dependence orders the two instances. Thin wrapper that
    builds a throwaway {!index}; callers with repeated queries against one
    dependence list should build the index once via {!index_deps}. *)
