type instance = { stmt_idx : int; stmt : Stmt.t; env : Env.t }

type kind = Flow | Anti | Output

type dep = { src : int; dst : int; kind : kind; may : bool }

type resolver = Reference.t -> Env.t -> int option

type access = { ref_ : Reference.t; addr : int option }

let accesses resolver inst =
  let resolve r = { ref_ = r; addr = resolver r inst.env } in
  (resolve (Stmt.output inst.stmt), List.map resolve (Stmt.inputs inst.stmt))

(* Two accesses conflict when they certainly touch the same element, or when
   either is unresolvable and the arrays match (a may-dependence). *)
let conflict a b =
  if a.ref_.Reference.array <> b.ref_.Reference.array then None
  else
    match (a.addr, b.addr) with
    | Some x, Some y -> if x = y then Some false else None
    | None, _ | _, None -> Some true

(* The per-pair check shared by both analyses: all dependences between the
   accesses of instance [i] and the later instance [j]. *)
let pair_deps add (wi, ri) (wj, rj) i j =
  (match conflict wi wj with
  | Some may -> add i j Output may
  | None -> ());
  List.iter
    (fun r -> match conflict wi r with Some may -> add i j Flow may | None -> ())
    rj;
  List.iter
    (fun r -> match conflict r wj with Some may -> add i j Anti may | None -> ())
    ri

let analyze_naive resolver instances =
  let arr = Array.of_list instances in
  let resolved = Array.map (accesses resolver) arr in
  let deps = ref [] in
  let add src dst kind may = deps := { src; dst; kind; may } :: !deps in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      pair_deps add resolved.(i) resolved.(j) i j
    done
  done;
  List.rev !deps

let analyze resolver instances =
  let arr = Array.of_list instances in
  let resolved = Array.map (accesses resolver) arr in
  let n = Array.length arr in
  if n <= 12 then begin
    (* Compilation windows are a handful of instances; the all-pairs scan
       beats paying three hashtable setups, and the bucketed path below
       reproduces its output exactly, so the dispatch is invisible. *)
    let deps = ref [] in
    let add src dst kind may = deps := { src; dst; kind; may } :: !deps in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        pair_deps add resolved.(i) resolved.(j) i j
      done
    done;
    List.rev !deps
  end
  else begin
  (* A pair can only carry a dependence when some access pair shares an
     array AND the addresses match or a side is unresolvable. So bucket
     resolved accesses by (array, address) and unresolvable ones by array:
     instance j partners instance i when they share an (array, address)
     bucket, or either holds an unresolvable reference to an array the
     other touches. Affine streams then cost O(n * chain length) instead
     of O(n^2). *)
  let by_addr : (string * int, int list) Hashtbl.t = Hashtbl.create 64 in
  let by_unresolved : (string, int list) Hashtbl.t = Hashtbl.create 16 in
  let by_array : (string, int list) Hashtbl.t = Hashtbl.create 16 in
  let push tbl key i =
    match Hashtbl.find_opt tbl key with
    | Some (j :: _ as l) -> if j <> i then Hashtbl.replace tbl key (i :: l)
    | Some [] | None -> Hashtbl.replace tbl key [ i ]
  in
  Array.iteri
    (fun i (w, rs) ->
      List.iter
        (fun a ->
          let name = a.ref_.Reference.array in
          push by_array name i;
          match a.addr with
          | Some addr -> push by_addr (name, addr) i
          | None -> push by_unresolved name i)
        (w :: rs))
    resolved;
  (* Bucket lists are descending (consed over increasing i). [mark.(j) = i]
     stamps j as a partner of i exactly once; sorting the stamped partners
     ascending reproduces the naive j order, so the output — order and
     duplicates included — is identical to [analyze_naive]. *)
  let mark = Array.make n (-1) in
  let deps = ref [] in
  let add src dst kind may = deps := { src; dst; kind; may } :: !deps in
  for i = 0 to n - 1 do
    let js = ref [] in
    let stamp_bucket tbl key =
      match Hashtbl.find_opt tbl key with
      | None -> ()
      | Some l ->
        let rec stamp = function
          | j :: rest when j > i ->
            if mark.(j) <> i then begin
              mark.(j) <- i;
              js := j :: !js
            end;
            stamp rest
          | _ -> ()
        in
        stamp l
    in
    let wi, ri = resolved.(i) in
    List.iter
      (fun a ->
        let name = a.ref_.Reference.array in
        (match a.addr with
        | Some addr -> stamp_bucket by_addr (name, addr)
        | None ->
          (* Unresolvable: may-conflicts with every access to the array. *)
          stamp_bucket by_array name);
        stamp_bucket by_unresolved name)
      (wi :: ri);
    List.iter
      (fun j -> pair_deps add resolved.(i) resolved.(j) i j)
      (List.sort compare !js)
  done;
  List.rev !deps
  end

let kind_to_string = function Flow -> "flow" | Anti -> "anti" | Output -> "output"

type index = (int * int, unit) Hashtbl.t

let index_deps deps =
  let tbl = Hashtbl.create (max 16 (List.length deps)) in
  List.iter (fun d -> Hashtbl.replace tbl (d.src, d.dst) ()) deps;
  tbl

let serialized index ~src ~dst = Hashtbl.mem index (src, dst)

let must_serialize deps ~src ~dst = serialized (index_deps deps) ~src ~dst
