(** Reuse classification of array references within one loop nest.

    Mirrors the classical self/group, temporal/spatial taxonomy, restricted
    to what the window scheduler can actually exploit: short-distance reuse
    that lands inside the L1 window ([Context.reuse_horizon] statements).
    The classification is purely symbolic — no sampling, no simulation. *)

type t =
  | Self_temporal
      (** some multi-trip nest variable is absent from the subscript:
          successive iterations re-touch the same element *)
  | Self_spatial
      (** the innermost moving variable advances by less than a cache line
          per iteration: successive iterations stay in-line *)
  | Group of { with_stmt : int; delta : int }
      (** an earlier reference of statement [with_stmt] with identical
          coefficients touches the same line, [delta] elements away; that
          leader carries the fetch, this reference rides it *)
  | None_  (** no short-distance reuse, or the subscript is indirect *)

val to_string : t -> string

val classify_nest :
  line_words:(string -> int) -> Loop.nest -> ((int * int) * (Reference.t * t)) list
(** Classification of every reference of the nest body, keyed by
    [(statement index, reference position)] where position 0 is the
    statement's output and inputs follow in order. [line_words a] is the
    number of elements of array [a] per cache line. *)

val classify : line_words:(string -> int) -> Loop.nest -> stmt_idx:int -> Reference.t -> t
(** Classification of one reference of statement [stmt_idx] (the first
    positional match when the same reference text appears twice). *)
