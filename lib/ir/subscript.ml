type t =
  | Affine of { coeffs : (string * int) list; const : int }
  | Indirect of { index_array : string; inner : t }

let const c = Affine { coeffs = []; const = c }

let var name = Affine { coeffs = [ (name, 1) ]; const = 0 }

let affine coeffs const = Affine { coeffs; const }

let indirect index_array inner = Indirect { index_array; inner }

let rec analyzable = function
  | Affine _ -> true
  | Indirect _ -> false

and vars = function
  | Affine { coeffs; _ } -> List.sort_uniq compare (List.map fst coeffs)
  | Indirect { inner; _ } -> vars inner

(* Top-level accumulation loop: a [fold_left] here would allocate its
   closure on every evaluation, and this runs once per reference
   resolution — the compiler's innermost loop. *)
let rec eval_coeffs env acc = function
  | [] -> acc
  | (v, c) :: tl -> eval_coeffs env (acc + (c * Env.get env v)) tl

let rec eval ~lookup env = function
  | Affine { coeffs; const } -> eval_coeffs env const coeffs
  | Indirect { index_array; inner } -> lookup index_array (eval ~lookup env inner)

let eval_affine env = function
  | Affine { coeffs; const } ->
    let add acc (v, c) =
      Option.bind acc (fun sum -> Option.map (fun value -> sum + (c * value)) (Env.lookup env v))
    in
    List.fold_left add (Some const) coeffs
  | Indirect _ -> None

let rec to_string = function
  | Affine { coeffs; const } ->
    let term (v, c) = if c = 1 then v else Printf.sprintf "%d*%s" c v in
    let terms = List.map term coeffs in
    let terms = if const <> 0 || terms = [] then terms @ [ string_of_int const ] else terms in
    String.concat "+" terms
  | Indirect { index_array; inner } -> Printf.sprintf "%s[%s]" index_array (to_string inner)
