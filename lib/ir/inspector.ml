type t = { index_arrays : (string, int array) Hashtbl.t; mutable ran : bool }

let create () = { index_arrays = Hashtbl.create 8; ran = false }

let declare_index_array t name contents = Hashtbl.replace t.index_arrays name contents

let run t = t.ran <- true

let has_run t = t.ran

let lookup t name i =
  match Hashtbl.find_opt t.index_arrays name with
  | None -> raise Not_found
  | Some a ->
    let n = Array.length a in
    a.(((i mod n) + n) mod n)

(* The resolvers are staged on their first two arguments: [make_context]
   partially applies them once, and every subsequent resolution reuses the
   same closure instead of re-building [lookup t] per reference. *)
let runtime_resolver t ~address_of =
  let lk = lookup t in
  fun (r : Reference.t) env ->
    try Some (address_of r.array (Subscript.eval ~lookup:lk env r.subscript))
    with Not_found -> None

let compiler_resolver t ~address_of =
  let resolve = runtime_resolver t ~address_of in
  fun (r : Reference.t) env ->
    if Reference.analyzable r || t.ran then resolve r env else None
