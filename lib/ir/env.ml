type t = (string * int) list

let empty = []

let bind name value t = (name, value) :: List.remove_assoc name t

let lookup t name = List.assoc_opt name t

(* The hot lookup of subscript evaluation: no option allocation, and a
   physical-equality fast path before the string compare (binding and
   reference names usually share the parser's interned strings). *)
let get t name =
  let rec go = function
    | [] -> raise Not_found
    | (n, v) :: tl -> if n == name || String.equal n name then v else go tl
  in
  go t

let of_list l = List.fold_left (fun acc (n, v) -> bind n v acc) empty l

let to_list t = List.sort compare t

let pp ppf t =
  let pp_binding ppf (n, v) = Format.fprintf ppf "%s=%d" n v in
  Format.fprintf ppf "{%a}" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_binding) (to_list t)
