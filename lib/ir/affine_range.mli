(** Interval and footprint evaluation of affine subscripts over loop bounds.

    An affine subscript [c0 + c1*v1 + ... + ck*vk] attains its extrema at
    the corners of the iteration box, so the inclusive value range follows
    directly from each variable's bounds and its coefficient's sign. Beyond
    the corner extrema, the per-variable stride profile ([strides]) makes
    line-granular footprints ([footprint_lines]) exact: each variable is an
    arithmetic progression, and distinct-line counts of progressions have
    closed forms. *)

type outcome =
  | Range of int * int (** inclusive [min, max] over the iteration space *)
  | Unbound of string (** a subscript variable no enclosing loop binds *)
  | Non_affine (** indirect subscript: not statically boundable *)

val of_subscript : bounds:(string -> (int * int) option) -> Subscript.t -> outcome
(** [bounds v] is the half-open iteration range of loop variable [v]
    ([lo, hi)), or [None] when [v] is not bound. Variables of empty loops
    contribute nothing (the statement never executes). *)

val inner_of_indirect : Subscript.t -> (string * Subscript.t) option
(** The innermost indirection of a subscript: the index array together with
    the affine subscript indexing it; [None] for affine subscripts. *)

val bounds_of_nest : Loop.nest -> string -> (int * int) option
(** The [bounds] function of one loop nest. *)

type stride = {
  s_var : string;  (** loop variable *)
  s_coeff : int;  (** its (folded) coefficient in the subscript *)
  s_trip : int;  (** trip count of the binding loop *)
}

val strides : bounds:(string -> (int * int) option) -> Subscript.t -> stride list option
(** Per-variable stride profile of an affine subscript, outermost variable
    first. Duplicate variables are folded; zero coefficients and empty
    loops are dropped, so the result lists exactly the variables that move
    the subscript. [None] for indirect subscripts and for variables no
    enclosing loop binds. *)

val footprint_lines :
  line_words:int -> bounds:(string -> (int * int) option) -> Subscript.t -> int option
(** Number of distinct [line_words]-element cache lines the subscript
    touches over its whole iteration space, assuming the array base is
    line-aligned (arrays are page-aligned by [Array_decl.layout]). Exact
    for zero or one moving variable (closed form) and for multi-variable
    boxes up to 2^16 iteration points (enumeration); a [min]-of-bounds
    over-approximation beyond. [None] when the subscript is indirect or a
    variable is unbound. Raises [Invalid_argument] if [line_words <= 0]. *)
