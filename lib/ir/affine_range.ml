type outcome =
  | Range of int * int
  | Unbound of string
  | Non_affine

let of_affine ~bounds coeffs const =
  let step acc (v, c) =
    match acc with
    | Unbound _ | Non_affine -> acc
    | Range (lo, hi) -> (
      match bounds v with
      | None -> Unbound v
      | Some (vlo, vhi) ->
        (* vhi is exclusive; a coefficient's sign decides which end of the
           iteration range minimizes or maximizes the term. *)
        if vhi <= vlo then Range (lo, hi) (* empty loop: term contributes nothing *)
        else begin
          let a = c * vlo and b = c * (vhi - 1) in
          Range (lo + min a b, hi + max a b)
        end)
  in
  List.fold_left step (Range (const, const)) coeffs

let of_subscript ~bounds = function
  | Subscript.Affine { coeffs; const } -> of_affine ~bounds coeffs const
  | Subscript.Indirect _ -> Non_affine

let rec inner_of_indirect = function
  | Subscript.Affine _ -> None
  | Subscript.Indirect { index_array; inner } -> (
    match inner with
    | Subscript.Affine _ -> Some (index_array, inner)
    | Subscript.Indirect _ -> inner_of_indirect inner)

let bounds_of_nest (nest : Loop.nest) var =
  List.find_map
    (fun (v : Loop.loop_var) -> if v.Loop.var = var then Some (v.Loop.lo, v.Loop.hi) else None)
    nest.Loop.vars

(* ------------------------------------------------------------------ *)
(* Per-variable stride profile and line-granular footprints.           *)

type stride = { s_var : string; s_coeff : int; s_trip : int }

(* Duplicate variables folded, zero coefficients and empty loops dropped:
   what remains is exactly the set of variables that move the subscript. *)
let strides ~bounds = function
  | Subscript.Indirect _ -> None
  | Subscript.Affine { coeffs; const = _ } ->
    let merged =
      List.fold_left
        (fun acc (v, c) ->
          match List.assoc_opt v acc with
          | Some c0 -> (v, c0 + c) :: List.remove_assoc v acc
          | None -> (v, c) :: acc)
        [] coeffs
    in
    let rec build acc = function
      | [] -> Some (List.rev acc)
      | (v, c) :: rest -> (
        match bounds v with
        | None -> None
        | Some (vlo, vhi) ->
          let trip = max 0 (vhi - vlo) in
          if c = 0 || trip = 0 then build acc rest
          else build ({ s_var = v; s_coeff = c; s_trip = trip } :: acc) rest)
    in
    build [] (List.rev merged)

(* Distinct lines of one arithmetic progression [base, base+s, ...,
   base+(n-1)s] (s > 0). With s >= line_words every term advances the
   line, so all n are distinct; with s < line_words consecutive floors
   differ by at most one, so the lines form one contiguous run. *)
let progression_lines ~line_words ~base ~stride:s ~n =
  if n <= 0 then 0
  else if s >= line_words then n
  else
    let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b) in
    fdiv (base + ((n - 1) * s)) line_words - fdiv base line_words + 1

(* Beyond this many iteration points the exact per-point enumeration is
   abandoned for the interval bound; every nest in the suite stays well
   under it. *)
let enumeration_cap = 1 lsl 16

let footprint_lines ~line_words ~bounds sub =
  if line_words <= 0 then invalid_arg "Affine_range.footprint_lines: line_words must be positive";
  match sub with
  | Subscript.Indirect _ -> None
  | Subscript.Affine { coeffs; const } -> (
    match strides ~bounds sub with
    | None -> None
    | Some [] ->
      (* The subscript is constant over the whole iteration space — but an
         empty enclosing loop means the statement never runs at all. *)
      let empty =
        List.exists
          (fun (v, _) ->
            match bounds v with Some (lo, hi) -> hi <= lo | None -> false)
          coeffs
      in
      Some (if empty then 0 else 1)
    | Some strides ->
      (* Normalize each variable to a zero-based trip with positive
         stride: v in [lo, hi) contributes c*lo (or c*(hi-1) for c < 0)
         to the base and |c| per step. *)
      let base, dims =
        List.fold_left
          (fun (base, dims) s ->
            match bounds s.s_var with
            | None -> (base, dims) (* unreachable: strides checked bounds *)
            | Some (vlo, vhi) ->
              if s.s_coeff > 0 then (base + (s.s_coeff * vlo), (s.s_coeff, s.s_trip) :: dims)
              else (base + (s.s_coeff * (vhi - 1)), (-s.s_coeff, s.s_trip) :: dims))
          (const, []) strides
      in
      match dims with
      | [] -> Some 1
      | [ (s, n) ] -> Some (progression_lines ~line_words ~base ~stride:s ~n)
      | dims ->
        let points = List.fold_left (fun acc (_, n) -> acc * n) 1 dims in
        if points <= enumeration_cap then begin
          (* Exact: enumerate the iteration box once, collecting distinct
             line indices. *)
          let lines = Hashtbl.create 1024 in
          let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b) in
          let rec walk v = function
            | [] -> Hashtbl.replace lines (fdiv v line_words) ()
            | (s, n) :: rest ->
              for k = 0 to n - 1 do
                walk (v + (k * s)) rest
              done
          in
          walk base dims;
          Some (Hashtbl.length lines)
        end
        else begin
          (* Interval bound: the footprint cannot exceed the line span of
             the value range, nor the number of iteration points. *)
          let span = List.fold_left (fun acc (s, n) -> acc + (s * (n - 1))) 0 dims in
          let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b) in
          Some (min points (fdiv (base + span) line_words - fdiv base line_words + 1))
        end)
