(* Reuse classification of array references within one loop nest.

   A reference "reuses" a cache line when the line it touches at one
   iteration is touched again within a short window — by itself at a later
   iteration (self reuse) or by an equal-stride sibling reference (group
   reuse). Only short-distance reuse matters to the partitioner: the
   window scheduler's L1 map remembers lines for [Context.reuse_horizon]
   statements, so reuse carried by an outer loop almost never survives. *)

type t =
  | Self_temporal
  | Self_spatial
  | Group of { with_stmt : int; delta : int }
  | None_

let to_string = function
  | Self_temporal -> "self-temporal"
  | Self_spatial -> "self-spatial"
  | Group { with_stmt; delta } -> Printf.sprintf "group(s%d,%+d)" with_stmt delta
  | None_ -> "none"

(* Folded (var, coeff) profile with zeros dropped, sorted by variable, for
   structural comparison of two affine subscripts. *)
let profile = function
  | Subscript.Indirect _ -> None
  | Subscript.Affine { coeffs; const } ->
    let merged =
      List.fold_left
        (fun acc (v, c) ->
          match List.assoc_opt v acc with
          | Some c0 -> (v, c0 + c) :: List.remove_assoc v acc
          | None -> (v, c) :: acc)
        [] coeffs
    in
    let moving = List.filter (fun (_, c) -> c <> 0) merged in
    Some (List.sort compare moving, const)

let classify_nest ~line_words (nest : Loop.nest) =
  let bounds = Affine_range.bounds_of_nest nest in
  let trip v = match bounds v with Some (lo, hi) -> max 0 (hi - lo) | None -> 0 in
  (* Every reference of the body with its position: 0 is the statement's
     output, inputs follow in order. *)
  let refs =
    List.concat
      (List.mapi
         (fun si (stmt : Stmt.t) ->
           List.mapi
             (fun pos (r : Reference.t) -> ((si, pos), r))
             (Stmt.output stmt :: Stmt.inputs stmt))
         nest.Loop.body)
  in
  let self (r : Reference.t) =
    match Affine_range.strides ~bounds r.Reference.subscript with
    | None -> None_
    | Some strides ->
      let moving = List.map (fun (s : Affine_range.stride) -> s.Affine_range.s_var) strides in
      (* Temporal: some multi-trip nest variable does not move the
         subscript, so its iterations re-touch the same element. *)
      let temporal =
        List.exists
          (fun (lv : Loop.loop_var) ->
            trip lv.Loop.var > 1 && not (List.mem lv.Loop.var moving))
          nest.Loop.vars
      in
      if temporal then Self_temporal
      else begin
        (* Spatial: the innermost moving variable advances by less than a
           line per iteration. *)
        let lw = line_words r.Reference.array in
        let innermost =
          List.find_opt
            (fun (lv : Loop.loop_var) -> List.mem lv.Loop.var moving)
            (List.rev nest.Loop.vars)
        in
        match innermost with
        | Some lv -> (
          match
            List.find_opt
              (fun (s : Affine_range.stride) -> s.Affine_range.s_var = lv.Loop.var)
              strides
          with
          | Some s when abs s.Affine_range.s_coeff < lw && trip lv.Loop.var > 1 -> Self_spatial
          | _ -> None_)
        | None -> None_
      end
  in
  List.map
    (fun ((si, pos), (r : Reference.t)) ->
      match profile r.Reference.subscript with
      | None -> ((si, pos), (r, None_))
      | Some (coeffs, const) -> (
        (* A reference follows the earliest structurally-equal sibling
           (same array, same folded coefficients) whose constant lands
           within a line of ours: the leader keeps its self
           classification, followers are group reuse. *)
        let leader =
          List.find_opt
            (fun ((si', pos'), (r' : Reference.t)) ->
              (si', pos') < (si, pos)
              && r'.Reference.array = r.Reference.array
              && match profile r'.Reference.subscript with
                 | Some (coeffs', const') ->
                   coeffs' = coeffs && abs (const - const') < line_words r.Reference.array
                 | None -> false)
            refs
        in
        match leader with
        | Some ((si', _), (r' : Reference.t)) ->
          let const' =
            match profile r'.Reference.subscript with Some (_, c) -> c | None -> const
          in
          ((si, pos), (r, Group { with_stmt = si'; delta = const - const' }))
        | None -> ((si, pos), (r, self r))))
    refs

let classify ~line_words nest ~stmt_idx (r : Reference.t) =
  match
    List.find_opt
      (fun ((si, _), (r', _)) -> si = stmt_idx && Reference.equal r' r)
      (classify_nest ~line_words nest)
  with
  | Some (_, (_, cls)) -> cls
  | None -> None_
