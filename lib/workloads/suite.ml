let builders =
  [
    ("barnes", Barnes.kernel);
    ("cholesky", Cholesky.kernel);
    ("fft", Fft.kernel);
    ("fmm", Fmm.kernel);
    ("lu", Lu.kernel);
    ("ocean", Ocean.kernel);
    ("radiosity", Radiosity.kernel);
    ("radix", Radix.kernel);
    ("raytrace", Raytrace.kernel);
    ("water", Water.kernel);
    ("minimd", Minimd.kernel);
    ("minixyce", Minixyce.kernel);
    ("resnet_block", Resnet_block.kernel);
    ("mobilenet_block", Mobilenet_block.kernel);
  ]

let all () = List.map (fun (_, build) -> build ()) builders

let names = List.map fst builders

(* Aliases accepted by [find] but not listed in [names]: "mg" is the
   conventional NPB-style name for the multigrid solver (ocean). *)
let aliases = [ ("mg", "ocean") ]

let find name =
  let name = Option.value (List.assoc_opt name aliases) ~default:name in
  match List.assoc_opt name builders with
  | Some build -> build ()
  | None -> raise Not_found
