(** Inverted residual block (MobileNet-style), flattened to per-element
    statement chains: 1x1 expand -> relu6 mask -> depthwise -> relu6 mask
    -> 1x1 project + residual. Four intermediates (e, h, d, g), each with
    a single consumer, form a five-statement chain per element: fusion
    elides four of the five write-backs, leaving only the block output
    [y] on the NoC. *)

let n = 16 * 1024
let trips = 256

let kernel () =
  Spec.kernel ~name:"mobilenet_block"
    ~description:"Inverted residual: expand/act/depthwise/act/project chains"
    ~arrays:
      [
        ("x", n, 8); ("we", n, 8); ("be", n, 8); ("me", n, 8);
        ("wd", n, 8); ("bd", n, 8); ("md", n, 8); ("wp", n, 8);
        ("e", n, 8); ("h", n, 8); ("d", n, 8); ("g", n, 8); ("y", n, 8);
      ]
    ~nests:
      [
        (Spec.nest "block"
           [ ("i", 0, trips) ]
           [
             "e[i] = x[i] * we[i] + be[i]";
             "h[i] = e[i] * me[i]";
             "d[i] = h[i] * wd[i] + bd[i]";
             "g[i] = d[i] * md[i]";
             "y[i] = g[i] * wp[i] + x[i]";
           ]);
      ]
    ~hot:[ "x"; "we"; "wd" ] ()
