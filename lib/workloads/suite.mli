(** The twelve-application suite of the paper's evaluation (Table 1). *)

val all : unit -> Ndp_core.Kernel.t list
(** In the paper's order: Barnes, Cholesky, FFT, FMM, LU, Ocean,
    Radiosity, Radix, Raytrace, Water, MiniMD, MiniXyce. *)

val names : string list

val find : string -> Ndp_core.Kernel.t
(** Raises [Not_found] for unknown application names. Also accepts the
    alias ["mg"] for the multigrid solver (["ocean"]). *)
