(** The application suite: the paper's twelve evaluation kernels
    (Table 1) plus two DNN-style fusion targets. *)

val all : unit -> Ndp_core.Kernel.t list
(** In the paper's order: Barnes, Cholesky, FFT, FMM, LU, Ocean,
    Radiosity, Radix, Raytrace, Water, MiniMD, MiniXyce — followed by the
    DNN-style residual and inverted-residual block kernels
    (resnet_block, mobilenet_block), whose producer→consumer statement
    chains are what the fusion pass targets. *)

val names : string list

val find : string -> Ndp_core.Kernel.t
(** Raises [Not_found] for unknown application names. Also accepts the
    alias ["mg"] for the multigrid solver (["ocean"]). *)
