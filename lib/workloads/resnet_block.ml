(** Residual block (ResNet-style), flattened to per-element statement
    chains: conv1 -> activation mask -> conv2 -> residual add. The three
    intermediates (t1, t2, t3) each have exactly one consumer — the next
    statement of the same iteration — so the fusion pass can chain all
    four statements onto one node and elide every intermediate
    write-back; only the block output [y] crosses the NoC. *)

let n = 16 * 1024
let trips = 256

let kernel () =
  Spec.kernel ~name:"resnet_block"
    ~description:"Residual block: conv/act/conv/add element chains"
    ~arrays:
      [
        ("x", n, 8); ("w1", n, 8); ("b1", n, 8); ("m1", n, 8);
        ("w2", n, 8); ("b2", n, 8); ("t1", n, 8); ("t2", n, 8);
        ("t3", n, 8); ("y", n, 8);
      ]
    ~nests:
      [
        (Spec.nest "block"
           [ ("i", 0, trips) ]
           [
             "t1[i] = x[i] * w1[i] + b1[i]";
             "t2[i] = t1[i] * m1[i]";
             "t3[i] = t2[i] * w2[i] + b2[i]";
             "y[i] = t3[i] + x[i]";
           ]);
      ]
    ~hot:[ "x"; "w1"; "w2" ] ()
