(** Deterministic fault-injection plans.

    A plan is an immutable description of hardware degradation: killed or
    slowed mesh links, node stall windows and memory-controller
    backpressure. Plans are built once (either programmatically from
    {!event} values or from the [--faults] mini-language via {!parse}) and
    then consumed read-only by the simulator, so a fixed seed yields
    byte-identical runs under any [--jobs] value — no randomness is drawn
    at simulation time.

    Random choices (e.g. which [N] links [kill=N] removes) are resolved at
    plan-construction time through {!Ndp_prelude.Rng} (splitmix64). *)

type t

(** One injected fault. Link faults given as [(a, b)] node pairs affect
    both directions of the physical link. *)
type event =
  | Kill_links of int  (** kill [n] distinct links chosen by the seed *)
  | Kill_link of int * int  (** kill the link between two adjacent nodes *)
  | Degrade_links of int * float
      (** degrade [n] seed-chosen links: service time multiplied by factor *)
  | Degrade_link of int * int * float  (** degrade one specific link *)
  | Stall of int * int * int
      (** [Stall (node, start, len)]: node issues no new tasks during
          [\[start, start+len)] cycles *)
  | Mc_slow of int * float
      (** multiply memory latency behind the MC nearest to this node *)

val make :
  mesh:Ndp_noc.Mesh.t ->
  seed:int ->
  ?retry_timeout:int ->
  ?max_retries:int ->
  event list ->
  t
(** Resolve events into a concrete plan. [retry_timeout] (default 256) is
    the cycles lost per timed-out send attempt on a killed link;
    [max_retries] (default 3) bounds the attempts before the message is
    forced through on the degraded maintenance path. *)

val parse :
  mesh:Ndp_noc.Mesh.t ->
  seed:int ->
  ?retry_timeout:int ->
  ?max_retries:int ->
  string ->
  (t, string) result
(** Parse a comma-separated fault spec. Grammar (whitespace-free):
    - [kill=N] — kill N random links; [kill=A>B] — kill link A<->B
    - [slow=NxF] — degrade N random links by factor F; [slow=A>BxF]
    - [stall=NODE\@START+LEN] — stall window on a node
    - [mc=NODExF] — backpressure the MC nearest NODE by factor F

    Example: ["kill=2,slow=1x4.0,stall=9\@0+200000,mc=0x2.5"]. *)

val empty : mesh:Ndp_noc.Mesh.t -> t
(** A plan with no faults (behaves exactly like [None]). *)

val is_empty : t -> bool

val seed : t -> int
val retry_timeout : t -> int
val max_retries : t -> int

val link_killed : t -> int -> bool
(** Indexed by {!Ndp_noc.Mesh.link_index}. *)

val link_factor : t -> int -> float
(** Service-time multiplier for a link (1.0 when healthy, >= 1.0 when
    degraded; also >= 1.0 for killed links — the kill penalty is modelled
    by retries, not by the factor). *)

val mc_factor : t -> int -> float
(** Memory-latency multiplier for the MC hosted on the given node. *)

val stall_until : t -> node:int -> time:int -> int
(** Earliest cycle >= [time] at which [node] may issue a task: skips over
    any stall window containing [time]. Returns [time] when unaffected. *)

val avoided : t -> int -> bool
(** True for nodes the repair pass should route computation away from:
    nodes with a stall window, and nodes isolated by killed links. *)

val avoided_nodes : t -> int list

val distance : t -> int -> int -> int
(** Fault-aware distance: the cost of the XY route between two nodes where
    each healthy link costs 1, each degraded link costs its factor and
    each killed link costs the retry penalty expressed in hops. Equal to
    {!Ndp_noc.Mesh.distance} on a fault-free plan. Memoized; O(1) after
    first use of a pair. *)

val counts : t -> int * int * int * int
(** [(killed, degraded, stalled_nodes, slowed_mcs)]. *)

val describe : t -> string
(** Human-readable one-line-per-fault summary. *)
