(* Deterministic fault-injection plans.

   All randomness is spent here, at construction time, through the seeded
   splitmix64 generator; the accessors the simulator calls are pure reads
   over immutable arrays (the distance memo table is write-once per cell),
   which is what makes fault runs reproducible across [--jobs] values. *)

module Mesh = Ndp_noc.Mesh
module Rng = Ndp_prelude.Rng

type t = {
  mesh : Mesh.t;
  seed : int;
  retry_timeout : int;
  max_retries : int;
  killed : bool array; (* by Mesh.link_index *)
  factor : float array; (* service-time multiplier, by Mesh.link_index *)
  stalls : (int * int) list array; (* per node, sorted (start, len) *)
  mc_mult : float array; (* per node; > 1.0 only on MC nodes *)
  avoided : bool array; (* per node *)
  dist : int array; (* n*n memo; -1 = not yet computed *)
}

let seed t = t.seed
let retry_timeout t = t.retry_timeout
let max_retries t = t.max_retries
let link_killed t i = t.killed.(i)
let link_factor t i = t.factor.(i)
let mc_factor t node = t.mc_mult.(node)

let is_empty t =
  (not (Array.exists Fun.id t.killed))
  && (not (Array.exists (fun f -> f <> 1.0) t.factor))
  && Array.for_all (fun ws -> ws = []) t.stalls
  && not (Array.exists (fun f -> f <> 1.0) t.mc_mult)

let stall_until t ~node ~time =
  let rec skip time = function
    | [] -> time
    | (start, len) :: rest ->
        if time < start then time
        else if time < start + len then skip (start + len) rest
        else skip time rest
  in
  skip time t.stalls.(node)

let avoided t node = t.avoided.(node)

let avoided_nodes t =
  let acc = ref [] in
  for node = Array.length t.avoided - 1 downto 0 do
    if t.avoided.(node) then acc := node :: !acc
  done;
  !acc

(* Cost of one link, in "hop" units, as seen by the repair planner. A
   killed link costs the full retry penalty converted to hops assuming the
   default 16-cycle hop, so the MST planner treats crossing it as roughly
   as expensive as the simulator will make it. *)
let link_weight t link =
  let i = Mesh.link_index t.mesh link in
  if t.killed.(i) then max 4 (t.max_retries * t.retry_timeout / 16)
  else int_of_float (ceil t.factor.(i))

let distance t u v =
  if u = v then 0
  else
    let n = Mesh.size t.mesh in
    let cell = (u * n) + v in
    let cached = t.dist.(cell) in
    if cached >= 0 then cached
    else begin
      let cost =
        List.fold_left
          (fun acc link -> acc + link_weight t link)
          0
          (Mesh.xy_route t.mesh ~src:u ~dst:v)
      in
      t.dist.(cell) <- cost;
      cost
    end

let counts t =
  let undirected pred =
    let k = ref 0 in
    List.iter
      (fun link ->
        if link.Mesh.from_node < link.Mesh.to_node && pred link then incr k)
      (Mesh.links t.mesh);
    !k
  in
  let killed = undirected (fun l -> t.killed.(Mesh.link_index t.mesh l)) in
  let degraded =
    undirected (fun l ->
        let i = Mesh.link_index t.mesh l in
        (not t.killed.(i)) && t.factor.(i) <> 1.0)
  in
  let stalled = Array.fold_left (fun n ws -> if ws <> [] then n + 1 else n) 0 t.stalls in
  let mcs = Array.fold_left (fun n f -> if f <> 1.0 then n + 1 else n) 0 t.mc_mult in
  (killed, degraded, stalled, mcs)

let describe t =
  let buf = Buffer.create 128 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  add "seed=%d retry_timeout=%d max_retries=%d" t.seed t.retry_timeout
    t.max_retries;
  List.iter
    (fun link ->
      if link.Mesh.from_node < link.Mesh.to_node then begin
        let i = Mesh.link_index t.mesh link in
        if t.killed.(i) then
          add "; kill %d<->%d" link.Mesh.from_node link.Mesh.to_node
        else if t.factor.(i) <> 1.0 then
          add "; slow %d<->%d x%g" link.Mesh.from_node link.Mesh.to_node
            t.factor.(i)
      end)
    (Mesh.links t.mesh);
  Array.iteri
    (fun node ws ->
      List.iter (fun (s, l) -> add "; stall %d@%d+%d" node s l) ws)
    t.stalls;
  Array.iteri
    (fun node f -> if f <> 1.0 then add "; mc %d x%g" node f)
    t.mc_mult;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

type event =
  | Kill_links of int
  | Kill_link of int * int
  | Degrade_links of int * float
  | Degrade_link of int * int * float
  | Stall of int * int * int
  | Mc_slow of int * float

let both_directions mesh a b =
  if Mesh.distance mesh a b <> 1 then
    invalid_arg
      (Printf.sprintf "Ndp_fault.Plan: nodes %d and %d are not adjacent" a b);
  [
    Mesh.link_index mesh { Mesh.from_node = a; to_node = b };
    Mesh.link_index mesh { Mesh.from_node = b; to_node = a };
  ]

(* Undirected links as (low, high) node pairs, in deterministic order. *)
let undirected_pairs mesh =
  Mesh.links mesh
  |> List.filter (fun l -> l.Mesh.from_node < l.Mesh.to_node)
  |> List.map (fun l -> (l.Mesh.from_node, l.Mesh.to_node))
  |> Array.of_list

let make ~mesh ~seed ?(retry_timeout = 256) ?(max_retries = 3) events =
  if retry_timeout <= 0 then invalid_arg "Ndp_fault.Plan: retry_timeout <= 0";
  if max_retries <= 0 then invalid_arg "Ndp_fault.Plan: max_retries <= 0";
  let n = Mesh.size mesh in
  let num_links = Mesh.num_links mesh in
  let killed = Array.make num_links false in
  let factor = Array.make num_links 1.0 in
  let stalls = Array.make n [] in
  let mc_mult = Array.make n 1.0 in
  let rng = Rng.create seed in
  let pick_fresh count =
    (* [count] seed-chosen undirected links that carry no fault yet. *)
    let pairs = undirected_pairs mesh in
    Rng.shuffle rng pairs;
    let chosen = ref [] and taken = ref 0 and i = ref 0 in
    while !taken < count && !i < Array.length pairs do
      let a, b = pairs.(!i) in
      let idx = Mesh.link_index mesh { Mesh.from_node = a; to_node = b } in
      if (not killed.(idx)) && factor.(idx) = 1.0 then begin
        chosen := (a, b) :: !chosen;
        incr taken
      end;
      incr i
    done;
    List.rev !chosen
  in
  let apply = function
    | Kill_link (a, b) ->
        List.iter (fun i -> killed.(i) <- true) (both_directions mesh a b)
    | Kill_links count ->
        List.iter
          (fun (a, b) ->
            List.iter (fun i -> killed.(i) <- true) (both_directions mesh a b))
          (pick_fresh count)
    | Degrade_link (a, b, f) ->
        if f < 1.0 then invalid_arg "Ndp_fault.Plan: degrade factor < 1.0";
        List.iter (fun i -> factor.(i) <- f) (both_directions mesh a b)
    | Degrade_links (count, f) ->
        if f < 1.0 then invalid_arg "Ndp_fault.Plan: degrade factor < 1.0";
        List.iter
          (fun (a, b) ->
            List.iter (fun i -> factor.(i) <- f) (both_directions mesh a b))
          (pick_fresh count)
    | Stall (node, start, len) ->
        if node < 0 || node >= n then
          invalid_arg "Ndp_fault.Plan: stall node out of range";
        if start < 0 || len <= 0 then
          invalid_arg "Ndp_fault.Plan: bad stall window";
        stalls.(node) <- (start, len) :: stalls.(node)
    | Mc_slow (node, f) ->
        if node < 0 || node >= n then
          invalid_arg "Ndp_fault.Plan: mc node out of range";
        if f < 1.0 then invalid_arg "Ndp_fault.Plan: mc factor < 1.0";
        mc_mult.(Mesh.nearest_mc mesh node) <- f
  in
  List.iter apply events;
  Array.iteri
    (fun node ws ->
      stalls.(node) <- List.sort (fun (a, _) (b, _) -> compare a b) ws)
    stalls;
  let avoided = Array.make n false in
  for node = 0 to n - 1 do
    let isolated =
      List.for_all
        (fun link ->
          link.Mesh.from_node <> node || killed.(Mesh.link_index mesh link))
        (Mesh.links mesh)
    in
    avoided.(node) <- stalls.(node) <> [] || isolated
  done;
  {
    mesh;
    seed;
    retry_timeout;
    max_retries;
    killed;
    factor;
    stalls;
    mc_mult;
    avoided;
    dist = Array.make (n * n) (-1);
  }

let empty ~mesh = make ~mesh ~seed:0 []

(* ------------------------------------------------------------------ *)
(* Spec mini-language                                                  *)

let parse ~mesh ~seed ?retry_timeout ?max_retries spec =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let int_of s =
    match int_of_string_opt (String.trim s) with
    | Some n -> Ok n
    | None -> fail "expected an integer, got %S" s
  in
  let float_of s =
    match float_of_string_opt (String.trim s) with
    | Some f -> Ok f
    | None -> fail "expected a number, got %S" s
  in
  let ( let* ) r f = Result.bind r f in
  (* A>B link endpoint pair. *)
  let pair_of s =
    match String.split_on_char '>' s with
    | [ a; b ] ->
        let* a = int_of a in
        let* b = int_of b in
        Ok (a, b)
    | _ -> fail "expected A>B, got %S" s
  in
  let item s =
    match String.index_opt s '=' with
    | None -> fail "fault item %S lacks '='" s
    | Some eq -> (
        let key = String.sub s 0 eq in
        let value = String.sub s (eq + 1) (String.length s - eq - 1) in
        match key with
        | "kill" ->
            if String.contains value '>' then
              let* a, b = pair_of value in
              Ok (Kill_link (a, b))
            else
              let* n = int_of value in
              Ok (Kill_links n)
        | "slow" -> (
            match String.rindex_opt value 'x' with
            | None -> fail "slow=%s lacks an xFACTOR suffix" value
            | Some i ->
                let target = String.sub value 0 i in
                let f = String.sub value (i + 1) (String.length value - i - 1) in
                let* f = float_of f in
                if String.contains target '>' then
                  let* a, b = pair_of target in
                  Ok (Degrade_link (a, b, f))
                else
                  let* n = int_of target in
                  Ok (Degrade_links (n, f)))
        | "stall" -> (
            match String.index_opt value '@' with
            | None -> fail "stall=%s lacks @START+LEN" value
            | Some at -> (
                let node = String.sub value 0 at in
                let window =
                  String.sub value (at + 1) (String.length value - at - 1)
                in
                match String.index_opt window '+' with
                | None -> fail "stall window %S lacks +LEN" window
                | Some plus ->
                    let* node = int_of node in
                    let* start = int_of (String.sub window 0 plus) in
                    let* len =
                      int_of
                        (String.sub window (plus + 1)
                           (String.length window - plus - 1))
                    in
                    Ok (Stall (node, start, len))))
        | "mc" -> (
            match String.rindex_opt value 'x' with
            | None -> fail "mc=%s lacks an xFACTOR suffix" value
            | Some i ->
                let* node = int_of (String.sub value 0 i) in
                let* f =
                  float_of
                    (String.sub value (i + 1) (String.length value - i - 1))
                in
                Ok (Mc_slow (node, f)))
        | other -> fail "unknown fault kind %S" other)
  in
  let items =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest ->
        let* ev = item s in
        collect (ev :: acc) rest
  in
  let* events = collect [] items in
  match make ~mesh ~seed ?retry_timeout ?max_retries events with
  | plan -> Ok plan
  | exception Invalid_argument msg -> Error msg
