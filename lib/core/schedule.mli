(** Subcomputation scheduling (Algorithm 1, lines 33-58; Section 4.3).

    The statement MST is rooted at the store node and walked from the
    leaves: each tree node combines its local data with the partial results
    arriving from its children, and forwards one partial result to its
    parent. A node with two or more children is a join and synchronizes on
    its children (Figure 6). The final subcomputation always runs on the
    store node — the result is never migrated (Section 4.5). Intermediate
    subcomputations may be deflected to a neighbouring tree node by the
    load balancer (10% rule, division counted 10x). *)

type t = {
  tasks : Ndp_sim.Task.t list; (** producers before consumers *)
  root_task : int; (** final task id *)
  join_arcs : (int * int) list; (** producer -> consumer sync arcs at joins *)
  parallelism : int; (** antichain width of the task graph *)
  offload_mix : Ndp_sim.Task.op_mix; (** ops moved off the store node *)
  placements : (int * int) list; (** (VA line, node) L1 placements *)
}

val schedule :
  Context.t -> group:int -> Splitter.t -> Ndp_ir.Stmt.t -> Ndp_ir.Env.t -> t

val repair : Context.t -> t -> t
(** When the context carries a repair plan, remap every task placed on an
    avoided node (stalled, or isolated by killed links) to its nearest
    healthy node under the fault-aware distance (ties to the lowest id),
    rewriting L1 placements to match and counting moves in
    [ctx.remapped_tasks]. Identity without a plan. Must be applied before
    cross-node dependence arcs are derived. *)
