open Ndp_ir

type t = {
  name : string;
  description : string;
  program : Loop.program;
  index_arrays : (string * int array) list;
  hot_arrays : string list;
}

let make ~name ~description ~program ?(index_arrays = []) ?(hot_arrays = []) () =
  { name; description; program; index_arrays; hot_arrays }

let inspector t =
  let insp = Inspector.create () in
  List.iter (fun (name, contents) -> Inspector.declare_index_array insp name contents) t.index_arrays;
  insp

(* Staged on the kernel: resolvers call the returned closure once per
   reference resolution, so the name lookup must be cheap. Declaration
   lists are short and references reuse the parser's interned name
   strings, so a linear scan with a physical-equality fast path beats
   both the old repeated [Array_decl.find] and a string-hashing table. *)
let address_of t =
  let decls = Array.of_list t.program.Loop.arrays in
  let n = Array.length decls in
  fun name i ->
    let rec find j =
      if j >= n then raise Not_found
      else
        let d = decls.(j) in
        if d.Array_decl.name == name || String.equal d.Array_decl.name name then
          Array_decl.address d i
        else find (j + 1)
    in
    find 0

let hot_ranges t ~budget =
  let add (used, acc) name =
    match List.find_opt (fun d -> d.Array_decl.name = name) t.program.Loop.arrays with
    | None -> (used, acc)
    | Some d ->
      let bytes = d.Array_decl.length * d.Array_decl.elem_size in
      if used + bytes > budget then (used, acc)
      else (used + bytes, (d.Array_decl.base_va, bytes) :: acc)
  in
  let _, acc = List.fold_left add (0, []) t.hot_arrays in
  List.rev acc

let total_statements t = List.length (Loop.all_statements t.program)
