module Mesh = Ndp_noc.Mesh
module Task = Ndp_sim.Task

let home (ctx : Context.t) va = Ndp_sim.Machine.home_node ctx.machine ~va

(* Profile cost of running an iteration on a node: total distance to the
   home of every reference it touches (the LLC-locality view). [distance]
   is the context's under a repair plan, so faulted links look expensive
   here too. The assignment below computes these costs regrouped by home
   node, so the per-(iteration, candidate) walk only lives in this
   comment. *)

let assign_iterations (ctx : Context.t) nest iterations =
  let mesh = Context.mesh ctx in
  let num_nodes = Mesh.size mesh in
  let iters = Array.of_list iterations in
  (* Chunk one sweep of the iteration space and repeat the assignment for
     the remaining sweeps: each core owns the same iterations of every
     sweep, as an OpenMP-style static schedule would. *)
  let period = max 1 (Ndp_ir.Loop.base_trip_count nest) in
  let iters = Array.sub iters 0 (min period (Array.length iters)) in
  let trips = Array.length iters in
  let stmt_refs =
    Array.of_list
      (List.map
         (fun stmt -> Ndp_ir.Stmt.output stmt :: Ndp_ir.Stmt.inputs stmt)
         nest.Ndp_ir.Loop.body)
  in
  let assign ~usable ~distance =
    (* The chunk count tracks the usable-node count so the greedy
       matching below always finds a free node; should a plan ever avoid
       every node the caller passes an all-true [usable]. *)
    let usable_count =
      let k = ref 0 in
      for node = 0 to num_nodes - 1 do
        if usable node then incr k
      done;
      !k
    in
    let chunks = min usable_count (max 1 trips) in
    let bounds k =
      let per = trips / chunks and rem = trips mod chunks in
      let lo = (k * per) + min k rem in
      let hi = lo + per + if k < rem then 1 else 0 in
      (lo, hi)
    in
    (* Resolve each (iteration, reference) once and histogram home-node
       hits per chunk: the chunk-on-node cost the greedy matching compares
       is then [sum_h hist.(k).(h) * distance node h] — the same integer
       sum the per-candidate walk computed, regrouped by home node. The
       naive walk re-resolved every reference for each of the
       [usable_count - k] candidate nodes of greedy step [k]; the home
       lookups it would have performed are accounted below so the
       [mem.home_lookups] profile metric keeps its value. *)
    let hist = Array.make_matrix chunks num_nodes 0 in
    for k = 0 to chunks - 1 do
      let lo, hi = bounds k in
      let h = hist.(k) in
      for i = lo to hi - 1 do
        let env = iters.(i) in
        Array.iter
          (List.iter (fun r ->
               match ctx.Context.runtime_resolve r env with
               | None -> ()
               | Some va ->
                 let bank = home ctx va in
                 h.(bank) <- h.(bank) + 1))
          stmt_refs
      done;
      let extra = usable_count - k - 1 in
      if extra > 0 then
        for node = 0 to num_nodes - 1 do
          if h.(node) > 0 then
            Ndp_sim.Machine.note_home_lookups ctx.Context.machine ~bank:node
              ~count:(h.(node) * extra)
        done
    done;
    let chunk_cost k node =
      let h = hist.(k) in
      let acc = ref 0 in
      for home = 0 to num_nodes - 1 do
        if h.(home) > 0 then acc := !acc + (h.(home) * distance node home)
      done;
      !acc
    in
    (* Greedy matching: chunks claim their cheapest still-free node. *)
    let taken = Array.make num_nodes false in
    let assignment = Array.make trips 0 in
    for k = 0 to chunks - 1 do
      let best = ref (-1) and best_cost = ref max_int in
      for node = 0 to num_nodes - 1 do
        if (not taken.(node)) && usable node then begin
          let c = chunk_cost k node in
          if c < !best_cost then begin
            best := node;
            best_cost := c
          end
        end
      done;
      taken.(!best) <- true;
      let lo, hi = bounds k in
      for i = lo to hi - 1 do
        assignment.(i) <- !best
      done
    done;
    assignment
  in
  let healthy =
    let k = ref 0 in
    for node = 0 to num_nodes - 1 do
      if not (Context.avoided ctx node) then incr k
    done;
    !k
  in
  let usable node = healthy = 0 || not (Context.avoided ctx node) in
  let assignment = assign ~usable ~distance:(fun u v -> Context.distance ctx u v) in
  (* Repair accounting: every iteration whose owner differs from the one
     the fault-free matching would pick was remapped — off an avoided
     node, or away from routes the plan degraded. *)
  (match ctx.Context.repair with
  | None -> ()
  | Some _ ->
    let plain = assign ~usable:(fun _ -> true) ~distance:(Mesh.distance mesh) in
    let sweeps = List.length iterations / max 1 trips in
    Array.iteri
      (fun i node ->
        if node <> plain.(i) then
          ctx.Context.remapped_tasks <- ctx.Context.remapped_tasks + sweeps)
      assignment);
  Array.init (List.length iterations) (fun i -> assignment.(i mod trips))

let compile_instance (ctx : Context.t) ~group ~node (inst : Ndp_ir.Dependence.instance) =
  let stmt = inst.Ndp_ir.Dependence.stmt in
  let env = inst.Ndp_ir.Dependence.env in
  let operand r =
    Option.map
      (fun va -> Task.Load { va; bytes = Context.bytes_of ctx r })
      (ctx.runtime_resolve r env)
  in
  let operands = List.filter_map operand (Ndp_ir.Stmt.inputs stmt) in
  let store =
    Option.map
      (fun va -> (va, Context.bytes_of ctx (Ndp_ir.Stmt.output stmt)))
      (ctx.runtime_resolve (Ndp_ir.Stmt.output stmt) env)
  in
  Task.make
    ~id:(Context.fresh_task_id ctx)
    ~group ~node
    ~ops:(Ndp_ir.Expr.ops stmt.Ndp_ir.Stmt.rhs)
    ~operands ?store
    ~label:("g" ^ string_of_int group ^ ":default")
    ()
