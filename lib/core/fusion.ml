module Dep = Ndp_ir.Dependence
module Stmt = Ndp_ir.Stmt
module Reference = Ndp_ir.Reference
module Subscript = Ndp_ir.Subscript
module Config = Ndp_sim.Config

type slot = { f_node : int; f_elide : bool }

type decision = {
  d_nest : string;
  d_stmts : int list;
  d_arrays : string list;
  d_instances : int;
  d_elided_stores : int;
  d_pred_saved_flit_hops : int;
}

let plan (ctx : Context.t) ~nest ~window ~capacity ~shared ~default_node insts deps =
  let n = Array.length insts in
  let slots = Array.make (max 1 n) None in
  if capacity <= 0 || n = 0 || window <= 0 then (slots, [])
  else begin
    let line_bytes = ctx.Context.config.Config.line_bytes in
    let flow_dsts = Array.make n [] in
    let first_kill = Array.make n max_int in
    let tainted = Array.make n false in
    Array.iter
      (fun (d : Dep.dep) ->
        if d.Dep.may then begin
          (* an unresolvable access may alias the intermediate: neither
             endpoint can anchor a chain *)
          tainted.(d.Dep.src) <- true;
          tainted.(d.Dep.dst) <- true
        end
        else
          match d.Dep.kind with
          | Dep.Flow -> flow_dsts.(d.Dep.src) <- d.Dep.dst :: flow_dsts.(d.Dep.src)
          | Dep.Output ->
            if d.Dep.dst < first_kill.(d.Dep.src) then first_kill.(d.Dep.src) <- d.Dep.dst
          | Dep.Anti -> ())
      deps;
    let affine =
      Array.init n (fun i ->
          let stmt = insts.(i).Dep.stmt in
          List.for_all Reference.analyzable (Stmt.output stmt :: Stmt.inputs stmt))
    in
    let out_array i = (Stmt.output insts.(i).Dep.stmt).Reference.array in
    (* Candidate link i -> j: j is i's only live reader and the pair can
       share a node and a window chunk. *)
    let succ = Array.make n (-1) in
    for i = 0 to n - 1 do
      let live = List.filter (fun d -> d < first_kill.(i)) flow_dsts.(i) in
      match List.sort_uniq compare live with
      | [ j ]
        when (not tainted.(i))
             && (not tainted.(j))
             && affine.(i) && affine.(j)
             && i / window = j / window
             && default_node.(i) = default_node.(j)
             && not (Hashtbl.mem shared (out_array i)) ->
        succ.(i) <- j
      | _ -> ()
    done;
    (* Multi-input joins are boundaries: a consumer fed by two candidate
       producers would need both intermediates resident, so neither link
       survives and the join starts its own chain. *)
    let preds = Array.make n 0 in
    Array.iter (fun j -> if j >= 0 then preds.(j) <- preds.(j) + 1) succ;
    for i = 0 to n - 1 do
      if succ.(i) >= 0 && preds.(succ.(i)) > 1 then succ.(i) <- -1
    done;
    Array.fill preds 0 n 0;
    Array.iter (fun j -> if j >= 0 then preds.(j) <- preds.(j) + 1) succ;
    let lines_of i =
      let inst = insts.(i) in
      List.filter_map
        (fun r ->
          match ctx.Context.compiler_resolve r inst.Dep.env with
          | Some va -> Some (va / line_bytes)
          | None -> None)
        (Stmt.output inst.Dep.stmt :: Stmt.inputs inst.Dep.stmt)
    in
    let line_flits = Config.flits_of_bytes ctx.Context.config line_bytes in
    let home_of i =
      match ctx.Context.compiler_resolve (Stmt.output insts.(i).Dep.stmt) insts.(i).Dep.env with
      | Some va -> Some (Ndp_sim.Machine.compiler_home_node ctx.Context.machine ~va)
      | None -> None
    in
    let decisions = Hashtbl.create 16 in
    let record chain =
      let node = default_node.(List.hd chain) in
      let tail = List.nth chain (List.length chain - 1) in
      let elided = List.filter (fun i -> i <> tail) chain in
      (* Write-back links the elision saves: one line from the chain node
         to each intermediate's home. *)
      let saved_links =
        List.fold_left
          (fun acc i ->
            match home_of i with
            | Some home -> acc + Context.distance ctx node home
            | None -> acc)
          0 elided
      in
      (* Profitability: a fused member runs unsplit at the chain node, so
         its operands all travel there — price that against what the MST
         split (at the member's normal store node) would have cost, on a
         forked context so real compilation state is untouched. Fuse only
         when the saved write-backs beat the penalty. *)
      let penalty =
        let ectx = Context.fork_for_estimate ctx in
        List.fold_left
          (fun acc i ->
            let inst = insts.(i) in
            let stmt = inst.Dep.stmt in
            let normal = match home_of i with Some h -> h | None -> node in
            let fused_cost = Splitter.default_movement ectx ~store_node:node stmt inst.Dep.env in
            let unfused_cost =
              min
                (Splitter.split ectx ~store_node:normal stmt inst.Dep.env).Splitter.est_movement
                (Splitter.default_movement ectx ~store_node:normal stmt inst.Dep.env)
            in
            acc + max 0 (fused_cost - unfused_cost))
          0 chain
      in
      if saved_links > penalty then begin
        List.iter (fun i -> slots.(i) <- Some { f_node = node; f_elide = true }) chain;
        slots.(tail) <- Some { f_node = node; f_elide = false };
        let stmts = List.map (fun i -> insts.(i).Dep.stmt_idx) chain in
        let arrays = List.sort_uniq compare (List.map out_array elided) in
        let cur =
          match Hashtbl.find_opt decisions stmts with
          | Some d -> d
          | None ->
            {
              d_nest = nest;
              d_stmts = stmts;
              d_arrays = arrays;
              d_instances = 0;
              d_elided_stores = 0;
              d_pred_saved_flit_hops = 0;
            }
        in
        Hashtbl.replace decisions stmts
          {
            cur with
            d_instances = cur.d_instances + 1;
            d_elided_stores = cur.d_elided_stores + List.length elided;
            d_pred_saved_flit_hops = cur.d_pred_saved_flit_hops + (line_flits * saved_links);
          }
      end
    in
    (* Maximal paths through the link graph (a DAG: deps have src < dst),
       greedily segmented so each fused run's distinct-line footprint fits
       the capacity bound — the intermediate must stay L1-resident until
       its consumer runs. *)
    for h = 0 to n - 1 do
      if succ.(h) >= 0 && preds.(h) = 0 then begin
        let rec path i acc = if succ.(i) >= 0 then path succ.(i) (i :: acc) else List.rev (i :: acc) in
        let members = path h [] in
        let seg = ref [] and seg_lines = ref [] in
        let flush () =
          if List.length !seg >= 2 then record (List.rev !seg);
          seg := [];
          seg_lines := []
        in
        List.iter
          (fun i ->
            let merged = List.sort_uniq compare (lines_of i @ !seg_lines) in
            if List.length merged * line_bytes > capacity && !seg <> [] then begin
              flush ();
              seg := [ i ];
              seg_lines := List.sort_uniq compare (lines_of i)
            end
            else begin
              seg := i :: !seg;
              seg_lines := merged
            end)
          members;
        flush ()
      end
    done;
    let decs = Hashtbl.fold (fun _ d acc -> d :: acc) decisions [] in
    let decs = List.sort (fun a b -> compare (a.d_stmts, a.d_nest) (b.d_stmts, b.d_nest)) decs in
    (slots, decs)
  end
