(** Window-based multi-statement scheduling (Sections 4.3-4.4).

    A window is a run of consecutive statement instances. Within a window
    the variable2node map propagates L1 placements from already-scheduled
    subcomputations to later MSTs, inter-statement dependences are turned
    into ordered result arcs, and the synchronization graph is minimized.
    The window-size preprocessing compiles each nest under every window
    size from 1 to the configured maximum and keeps the size with the
    least estimated data movement. *)

type meta = {
  group : int; (** global statement-instance id *)
  default_node : int; (** node the default placement would use *)
  inst : Ndp_ir.Dependence.instance;
}

type stmt_report = {
  r_group : int;
  est_movement : int;
  default_est : int;
  parallelism : int;
  task_count : int;
  offload_mix : Ndp_sim.Task.op_mix;
  syncs : int; (** surviving synchronizations charged to this statement *)
}

type compiled = {
  tasks : (Ndp_sim.Task.t * int) list;
      (** tasks with their dependency level (1 = no result operands),
          sorted level-major so ready subcomputations precede waiting
          ones in every node's generated program *)
  reports : stmt_report list;
  sync_count : int; (** surviving synchronization arcs *)
  predictions : (int * bool) list; (** (va, predicted hit) in issue order *)
  roots : (int * int) list;
      (** (statement group, final task id) per compiled instance — the
          task that performs the output store *)
  sync_arcs : (int * int) list;
      (** the surviving cross-node synchronization arcs themselves, as
          (producer task, consumer task); [sync_count] is their length *)
}

val store_node_of : Context.t -> meta -> int
(** Home node of the statement's output under the compiler's view; falls
    back to the default node when the output is unanalyzable. *)

val compile :
  ?deps:Ndp_ir.Dependence.dep list ->
  ?fusion:Fusion.slot option array ->
  Context.t ->
  meta list ->
  compiled
(** Compile one window. Clears and then populates the variable2node map.
    [deps], when given, must be the dependence analysis of exactly these
    instances (indices local to the list) and skips the per-window
    re-analysis — the window-size preprocessing derives one analysis per
    nest sample and slices it per chunk. [fusion], when given, is the
    fusion plan sliced to this window (parallel to the meta list): a
    fused member executes whole on its chain's node, and its write-back
    becomes L1-local when the slot elides it. An absent array or all-
    [None] slots compile exactly as without [fusion]. *)

val choose_size : ?pool:Ndp_prelude.Pool.t -> Context.t -> meta list -> max:int -> int
(** The preprocessing step of Section 4.4: pick the window size in
    [1..max] minimizing total estimated data movement over the instance
    stream of one loop nest. The nest sample's dependences are analyzed
    once and sliced per chunk; with [pool], candidate sizes 2..max are
    evaluated concurrently over forked estimate contexts (size 1 runs
    first, serially, warming the page table so the concurrent candidates
    are read-only on shared machine state). The chosen size is
    independent of [pool]. *)

type analytic = {
  a_est : int array;
      (** margin-ruled movement estimate per instance, in links — the same
          quantity [compile] reports as [est_movement] *)
  a_syncs : int;  (** modeled cross-node synchronization handshakes *)
}

val analytic_of : ?deps:Ndp_ir.Dependence.dep list -> Context.t -> meta list -> window:int -> analytic
(** Closed-form counterpart of compiling the stream under a fixed window
    size: per-statement movement from the splitter's estimates with the
    variable2node map maintained at located (rather than scheduled) nodes,
    and one handshake per distinct in-chunk cross-node dependence pair.
    No tasks are built and no schedule is run. [deps], when given, must be
    the dependence analysis of exactly these instances (indices local to
    the list). *)

val choose_size_analytic : ?pool:Ndp_prelude.Pool.t -> Context.t -> meta list -> max:int -> int
(** Analytic window-size preprocessing: one walk over the nest sample
    prices every candidate size (each statement keeps its reuse-aware
    estimate when its L1 providers share the chunk, and its cold estimate
    when the boundary cuts them off), and the sampled estimator
    ({!choose_size}'s engine) is consulted only for candidates within 25%
    of the analytic minimum. Nests with only non-affine references
    short-circuit to size 1. *)

val sync_links_of : Context.t -> int
(** Cost of one synchronization handshake expressed in links — the unit
    that makes movement and synchronization commensurable in the
    preprocessing objective. *)

val all_non_affine : meta list -> bool
(** No reference of any instance is compile-time analyzable: the movement
    estimate cannot discriminate between window sizes (everything resolves
    through the inspector), so sizing falls back to 1 with a W402 lint. *)

val choose_size_reanalyze : Context.t -> meta list -> max:int -> int
(** The pre-optimization preprocessing loop: re-runs the full per-chunk
    dependence analysis for every candidate size. Kept as the oracle for
    tests and the [bench/main.exe micro] comparison; use {!choose_size}. *)

val chunk : 'a list -> int -> 'a list list

val movement_estimate : Context.t -> meta list -> window:int -> int
(** Total estimated movement when compiling the stream under a fixed
    window size (no simulation; used by preprocessing and tests). *)
