module Config = Ndp_sim.Config
module Machine = Ndp_sim.Machine
module Engine = Ndp_sim.Engine
module Task = Ndp_sim.Task
module Dep = Ndp_ir.Dependence
module Loop = Ndp_ir.Loop

type window_policy = Adaptive | Analytic | Fixed of int

type part_options = {
  window : window_policy;
  reuse_aware : bool;
  sync_minimize : bool;
  level_based : bool;
  balance_threshold : float option;
  ideal_data : bool;
  use_inspector : bool;
  fuse : bool;
  fuse_capacity : int option;
      (** footprint bound in bytes for one fused chain; [None] uses the
          configured L1 size, [Some 0] makes fusion the identity pass *)
}

type scheme = Default | Partitioned of part_options

let partitioned_defaults =
  {
    window = Adaptive;
    reuse_aware = true;
    sync_minimize = true;
    level_based = true;
    balance_threshold = None;
    ideal_data = false;
    use_inspector = true;
    fuse = false;
    fuse_capacity = None;
  }

type tweaks = {
  l1_boost : float;
  distance_factor : float;
  mc_overrides : (int * int) list;
  cost_scale : float;
  extra_syncs : int;
}

let no_tweaks =
  { l1_boost = 0.0; distance_factor = 1.0; mc_overrides = []; cost_scale = 1.0; extra_syncs = 0 }

(* What the schedule validator needs to re-check a compiled schedule:
   which statement instances ran, as which tasks, in which emission order,
   under which ordering regime. Captured only under [~validate:true]. *)
type schedule_trace =
  | Serialized of { t_nest : string; t_metas : Window.meta list; t_tasks : Task.t list }
      (** default scheme: one task per instance, emitted in global program
          order (every task is a barrier for the next) *)
  | Windowed of { t_nest : string; t_metas : Window.meta list; t_compiled : Window.compiled }
      (** one compiled window of the partitioned scheme *)

type result = {
  kernel_name : string;
  scheme_name : string;
  stats : Ndp_sim.Stats.t;
  energy : Ndp_sim.Energy.breakdown;
  exec_time : int;
  group_hops : int array;
  group_avg_latency : float array;
  parallelism : float array;
  group_syncs : int array;
  sync_arcs : int;
  num_instances : int;
  offload_mix : Task.op_mix;
  analyzable_fraction : float;
  predictor_accuracy : float;
  windows_chosen : (string * int) list;
  est_movement_total : int;
  tasks_emitted : int;
  remapped_tasks : int;
  node_finish : int array;
  node_busy : int array;
  fusion_decisions : Fusion.decision list;
      (** the fusion plans applied, aggregated per chain signature; empty
          unless the scheme fuses *)
  traces : schedule_trace list;
  emitted : Task.t list list;
      (** the task stream as issued to the engine (one sublist per
          [Engine.run] call, pre-tweaks); captured only with
          [~capture:true], for {!replay} *)
}

let scheme_name = function
  | Default -> "default"
  | Partitioned o ->
    let base =
      match o.window with
      | Adaptive -> "partitioned(adaptive)"
      | Analytic -> "partitioned(analytic)"
      | Fixed k -> Printf.sprintf "partitioned(w=%d)" k
    in
    if o.fuse then base ^ "+fuse" else base

(* Enumerate the statement-instance stream of a nest, in execution order.
   Built through one pre-sized array rather than nested [List.mapi] +
   [List.concat]: nests reach hundreds of thousands of instances and the
   intermediate per-iteration lists dominated allocation here. *)
let instance_stream (ctx : Context.t) nest ~first_group =
  let iterations = Loop.iterations nest in
  let assignment = Baseline.assign_iterations ctx nest iterations in
  let envs = Array.of_list iterations in
  let body = Array.of_list nest.Loop.body in
  let stmts_per_iter = Array.length body in
  let n = Array.length envs * stmts_per_iter in
  let metas =
    Array.to_list
      (Array.init n (fun i ->
           let iter_idx = i / stmts_per_iter in
           let stmt_idx = i mod stmts_per_iter in
           {
             Window.group = first_group + i;
             default_node = assignment.(iter_idx);
             inst = { Dep.stmt_idx; stmt = body.(stmt_idx); env = envs.(iter_idx) };
           }))
  in
  (metas, first_group + n)

let analyzable_fraction metas =
  let count (ok, total) (m : Window.meta) =
    let refs =
      Ndp_ir.Stmt.output m.Window.inst.Dep.stmt :: Ndp_ir.Stmt.inputs m.Window.inst.Dep.stmt
    in
    let ok' = List.length (List.filter Ndp_ir.Reference.analyzable refs) in
    (ok + ok', total + List.length refs)
  in
  let ok, total = List.fold_left count (0, 0) metas in
  if total = 0 then 1.0 else float_of_int ok /. float_of_int total

let make_context ?(options_override = None) ?(obs = Ndp_obs.Sink.none) ?faults ?repair ~config
    ~tweaks scheme kernel =
  let machine = Machine.create ~obs ?faults config in
  (match config.Config.memory_mode with
  | Config.Flat ->
    Machine.set_hot_ranges machine (Kernel.hot_ranges kernel ~budget:config.Config.mcdram_capacity)
  | Config.Hybrid ->
    Machine.set_hot_ranges machine
      (Kernel.hot_ranges kernel ~budget:(config.Config.mcdram_capacity / 2))
  | Config.Cache_mode -> ());
  Machine.set_l1_boost machine tweaks.l1_boost;
  Ndp_sim.Network.set_distance_factor (Machine.network machine) tweaks.distance_factor;
  Machine.set_mc_overrides machine tweaks.mc_overrides;
  let opts = match scheme with Partitioned o -> o | Default -> partitioned_defaults in
  let insp = Kernel.inspector kernel in
  if opts.use_inspector then Ndp_ir.Inspector.run insp;
  let address_of = Kernel.address_of kernel in
  let runtime_resolve = Ndp_ir.Inspector.runtime_resolver insp ~address_of in
  let compiler_resolve =
    if opts.ideal_data then runtime_resolve
    else Ndp_ir.Inspector.compiler_resolver insp ~address_of
  in
  let ctx_options =
    match options_override with
    | Some o -> o
    | None ->
      {
        Context.reuse_aware = opts.reuse_aware;
        sync_minimize = opts.sync_minimize;
        level_based = opts.level_based;
        balance_threshold =
          Option.value opts.balance_threshold ~default:config.Config.balance_threshold;
        ideal_location = opts.ideal_data;
      }
  in
  Context.create ~machine ~compiler_resolve ~runtime_resolve
    ~arrays:kernel.Kernel.program.Loop.arrays ?repair ~options:ctx_options ()

let apply_tweaks tweaks (task : Task.t) =
  let task =
    if tweaks.cost_scale > 1.0 then
      { task with Task.cost = max 1 (int_of_float (float_of_int task.Task.cost /. tweaks.cost_scale)) }
    else task
  in
  if tweaks.extra_syncs > 0 then { task with Task.syncs = task.Task.syncs + tweaks.extra_syncs }
  else task

let line_of config va = va / config.Config.line_bytes

(* The record request behind every entry point: one value carries what
   used to be [run]'s optional-argument sprawl, so jobs can be hashed
   (Ndp_serve.Key), batched ([run_batch]) and shipped over a wire
   (Ndp_serve.Protocol) without re-encoding eight optionals each time. *)
type job = {
  scheme : scheme;
  kernel : Kernel.t;
  config : Config.t;
  tweaks : tweaks;
  faults : Ndp_fault.Plan.t option;
  repair : bool;
  validate : bool;
  capture : bool;
}

let job_make ?(config = Config.default) ?(tweaks = no_tweaks) ?faults ?(repair = false)
    ?(validate = false) ?(capture = false) scheme kernel =
  { scheme; kernel; config; tweaks; faults; repair; validate; capture }

let run_job ?pool ?(obs = Ndp_obs.Sink.none) (j : job) =
  let { scheme; kernel; config; tweaks; faults; repair; validate; capture } = j in
  let repair_plan = if repair then faults else None in
  (* Phase spans live on the calling domain only: window-size estimation
     and batch runs fan work across the pool, so per-phase brackets here
     stay race-free and deterministic at any [--jobs]. *)
  let spans = obs.Ndp_obs.Sink.spans in
  let sp_parse = Ndp_obs.Span.enter spans "parse" in
  let ctx = make_context ~config ~tweaks ~obs ?faults ?repair:repair_plan scheme kernel in
  let traces = ref [] in
  let emitted = ref [] in
  let engine = Engine.create ~obs ?faults ctx.Context.machine in
  let streams, total_groups =
    List.fold_left
      (fun (acc, g) nest ->
        let metas, g' = instance_stream ctx nest ~first_group:g in
        ((nest, metas) :: acc, g'))
      ([], 0) kernel.Kernel.program.Loop.nests
  in
  let streams = List.rev streams in
  let ledger = obs.Ndp_obs.Sink.ledger in
  let ledger_on = Ndp_obs.Ledger.enabled ledger in
  (* Predicted-cost hook: [record_predicted group movement] files the
     compiler's [size x distance] estimate (in link units, one cache line
     per unit) under the group's statement, normalized to the flit-hop
     unit the ledger measures. Recording happens here — from the reports
     of the windows actually emitted — and never inside [Window.compile],
     which also runs on forked contexts during window-size estimation. *)
  let record_predicted =
    if not ledger_on then fun _ _ -> ()
    else begin
      let stmt_of_group = Array.make (max 1 total_groups) 0 in
      List.iter
        (fun ((nest : Loop.nest), metas) ->
          List.iter
            (fun (m : Window.meta) ->
              stmt_of_group.(m.Window.group) <-
                Ndp_obs.Ledger.stmt_id ledger ~nest:nest.Loop.nest_name
                  ~stmt:m.Window.inst.Dep.stmt_idx)
            metas)
        streams;
      Ndp_obs.Ledger.set_group_resolver ledger (fun g ->
          if g >= 0 && g < total_groups then stmt_of_group.(g) else 0);
      let ranges =
        Array.of_list
          (List.sort compare
             (List.map
                (fun (d : Ndp_ir.Array_decl.t) ->
                  (d.base_va, d.base_va + (d.length * d.elem_size), Ndp_obs.Ledger.array_id ledger d.name))
                kernel.Kernel.program.Loop.arrays))
      in
      Ndp_obs.Ledger.set_va_resolver ledger (fun va ->
          let lo = ref 0 and hi = ref (Array.length ranges) in
          let found = ref 0 in
          while !lo < !hi do
            let mid = (!lo + !hi) / 2 in
            let base, limit, id = ranges.(mid) in
            if va < base then hi := mid
            else if va >= limit then lo := mid + 1
            else begin
              found := id;
              lo := !hi
            end
          done;
          !found);
      let line_flits = Config.flits_of_bytes config config.Config.line_bytes in
      fun group movement ->
        Ndp_obs.Ledger.predict ledger ~stmt:stmt_of_group.(group)
          ~flit_hops:(movement * line_flits)
    end
  in
  let parallelism = Array.make total_groups 1.0 in
  let group_syncs = Array.make total_groups 0 in
  let est_movement_total = ref 0 in
  let sync_arcs = ref 0 in
  let offload = ref Task.zero_mix in
  let windows_chosen = ref [] in
  let tasks_emitted = ref 0 in
  let fusion_decisions = ref [] in
  (* Arrays fusion must never elide: referenced by more than one nest
     (the intermediate outlives its nest), or read through an index-array
     indirection anywhere (those reads are invisible to the dependence
     analysis, which buckets by the referenced data array). *)
  let shared_arrays =
    let counts = Hashtbl.create 16 in
    List.iter
      (fun (nest : Loop.nest) ->
        let local = Hashtbl.create 16 in
        List.iter
          (fun (s : Ndp_ir.Stmt.t) ->
            List.iter
              (fun (r : Ndp_ir.Reference.t) ->
                Hashtbl.replace local r.Ndp_ir.Reference.array ();
                let rec index_arrays (sub : Ndp_ir.Subscript.t) =
                  match sub with
                  | Ndp_ir.Subscript.Indirect { index_array; inner } ->
                    Hashtbl.replace counts index_array 2;
                    index_arrays inner
                  | Ndp_ir.Subscript.Affine _ -> ()
                in
                index_arrays r.Ndp_ir.Reference.subscript)
              (Ndp_ir.Stmt.output s :: Ndp_ir.Stmt.inputs s))
          nest.Loop.body;
        Hashtbl.iter
          (fun a () ->
            Hashtbl.replace counts a (1 + Option.value (Hashtbl.find_opt counts a) ~default:0))
          local)
      kernel.Kernel.program.Loop.nests;
    let shared = Hashtbl.create 16 in
    Hashtbl.iter (fun a c -> if c > 1 then Hashtbl.replace shared a ()) counts;
    shared
  in
  Ndp_obs.Span.attr_int spans sp_parse "instances" total_groups;
  Ndp_obs.Span.exit spans sp_parse;
  (match scheme with
  | Default ->
    List.iter
      (fun ((nest : Loop.nest), metas) ->
        (* The default scheme interleaves per-instance compilation with
           execution, so it gets one coarse per-nest span rather than the
           partitioned scheme's phase breakdown. *)
        let sp_sim = Ndp_obs.Span.enter spans "simulate" in
        Ndp_obs.Span.attr_str spans sp_sim "nest" nest.Loop.nest_name;
        let c0 = Ndp_sim.Stats.finish_time (Engine.stats engine) in
        let nest_tasks = ref [] in
        List.iter
          (fun (m : Window.meta) ->
            let task =
              Baseline.compile_instance ctx ~group:m.Window.group ~node:m.Window.default_node
                m.Window.inst
            in
            if ledger_on then
              record_predicted m.Window.group
                (Splitter.default_movement ctx ~store_node:m.Window.default_node
                   m.Window.inst.Dep.stmt m.Window.inst.Dep.env);
            incr tasks_emitted;
            if validate then nest_tasks := task :: !nest_tasks;
            if capture then emitted := [ task ] :: !emitted;
            Engine.run engine [ apply_tweaks tweaks task ])
          metas;
        if validate then
          traces :=
            Serialized
              { t_nest = nest.Loop.nest_name; t_metas = metas; t_tasks = List.rev !nest_tasks }
            :: !traces;
        let c1 = Ndp_sim.Stats.finish_time (Engine.stats engine) in
        Ndp_obs.Span.exit ~cycles:(c1 - c0) spans sp_sim)
      streams
  | Partitioned opts ->
    List.iter
      (fun ((nest : Loop.nest), metas) ->
        let sp_w = Ndp_obs.Span.enter spans "window" in
        Ndp_obs.Span.attr_str spans sp_w "nest" nest.Loop.nest_name;
        let w =
          match opts.window with
          | Fixed k -> max 1 k
          | Adaptive -> Window.choose_size ?pool ctx metas ~max:config.Config.max_window
          | Analytic -> Window.choose_size_analytic ?pool ctx metas ~max:config.Config.max_window
        in
        Ndp_obs.Span.attr_int spans sp_w "w" w;
        Ndp_obs.Span.exit spans sp_w;
        windows_chosen := (nest.Loop.nest_name, w) :: !windows_chosen;
        let pending : (int, bool Queue.t) Hashtbl.t = Hashtbl.create 64 in
        let push_prediction (va, p) =
          let line = line_of config va in
          let q =
            match Hashtbl.find_opt pending line with
            | Some q -> q
            | None ->
              let q = Queue.create () in
              Hashtbl.replace pending line q;
              q
          in
          Queue.push p q
        in
        let pop_prediction line =
          match Hashtbl.find_opt pending line with
          | Some q when not (Queue.is_empty q) -> Some (Queue.pop q)
          | _ -> None
        in
        let on_load ~va ~l1_hit ~l2_hit =
          let line = line_of config va in
          match l2_hit with
          | None ->
            (* Satisfied by the L1: the L2 prediction went untested. *)
            if l1_hit then ignore (pop_prediction line)
          | Some hit -> (
            match pop_prediction line with
            | Some predicted ->
              Ndp_mem.Miss_predictor.confirm ctx.Context.predictor ~addr:va ~predicted ~hit
            | None -> Ndp_mem.Miss_predictor.note_access ctx.Context.predictor va)
        in
        let nest_tasks = ref [] in
        (* One dependence analysis per nest, sliced per window: a pair
           inside a chunk is exactly what analyzing the chunk alone finds
           (the analysis is pairwise — see [Window.estimate_sliced]), and
           [analyze] emits deps in ascending (src, dst) order, so each
           chunk's slice is one pointer walk instead of a re-analysis that
           re-resolves every reference in the window. *)
        let sp_d = Ndp_obs.Span.enter spans "deps" in
        Ndp_obs.Span.attr_str spans sp_d "nest" nest.Loop.nest_name;
        let deps_arr =
          Array.of_list
            (Dep.analyze ctx.Context.compiler_resolve
               (List.map (fun (m : Window.meta) -> m.Window.inst) metas))
        in
        Ndp_obs.Span.attr_int spans sp_d "deps" (Array.length deps_arr);
        Ndp_obs.Span.exit spans sp_d;
        (* The fusion plan is computed once per nest against the full
           dependence analysis (the first-kill rule needs every later
           sweep's re-write in view) and sliced per chunk below. Fusion
           and fault repair do not compose: repair may remap a chain
           member off its node, stranding the L1-resident intermediate. *)
        let fusion_slots =
          if opts.fuse && repair_plan = None then begin
            let sp_f = Ndp_obs.Span.enter spans "fusion" in
            Ndp_obs.Span.attr_str spans sp_f "nest" nest.Loop.nest_name;
            let metas_arr = Array.of_list metas in
            let insts = Array.map (fun (m : Window.meta) -> m.Window.inst) metas_arr in
            let default_node =
              Array.map (fun (m : Window.meta) -> m.Window.default_node) metas_arr
            in
            let capacity = Option.value opts.fuse_capacity ~default:config.Config.l1_size in
            let slots, decs =
              Fusion.plan ctx ~nest:nest.Loop.nest_name ~window:w ~capacity
                ~shared:shared_arrays ~default_node insts deps_arr
            in
            fusion_decisions := !fusion_decisions @ decs;
            Ndp_obs.Span.attr_int spans sp_f "decisions" (List.length decs);
            Ndp_obs.Span.exit spans sp_f;
            Some slots
          end
          else None
        in
        let sp_s = Ndp_obs.Span.enter spans "schedule" in
        Ndp_obs.Span.attr_str spans sp_s "nest" nest.Loop.nest_name;
        let dp = ref 0 in
        List.iteri
          (fun ci window_metas ->
            let lo = ci * w in
            let hi = lo + List.length window_metas in
            while !dp < Array.length deps_arr && deps_arr.(!dp).Dep.src < lo do
              incr dp
            done;
            let sliced = ref [] in
            let p = ref !dp in
            while !p < Array.length deps_arr && deps_arr.(!p).Dep.src < hi do
              let d = deps_arr.(!p) in
              if d.Dep.dst < hi then
                sliced := { d with Dep.src = d.Dep.src - lo; Dep.dst = d.Dep.dst - lo } :: !sliced;
              incr p
            done;
            dp := !p;
            let fusion = Option.map (fun s -> Array.sub s lo (hi - lo)) fusion_slots in
            let compiled = Window.compile ~deps:(List.rev !sliced) ?fusion ctx window_metas in
            if validate then
              traces :=
                Windowed
                  { t_nest = nest.Loop.nest_name; t_metas = window_metas; t_compiled = compiled }
                :: !traces;
            List.iter push_prediction compiled.Window.predictions;
            List.iter
              (fun (r : Window.stmt_report) ->
                parallelism.(r.Window.r_group) <- float_of_int r.Window.parallelism;
                group_syncs.(r.Window.r_group) <- r.Window.syncs;
                record_predicted r.Window.r_group r.Window.est_movement;
                est_movement_total := !est_movement_total + r.Window.est_movement;
                offload := Task.mix_add !offload r.Window.offload_mix)
              compiled.Window.reports;
            sync_arcs := !sync_arcs + compiled.Window.sync_count;
            tasks_emitted := !tasks_emitted + List.length compiled.Window.tasks;
            nest_tasks := compiled.Window.tasks :: !nest_tasks)
          (Window.chunk metas w);
        (* Emit the whole nest level-major: every node first runs all of
           its dependency-free subcomputations across the nest's windows,
           then the joins. This is the decoupling the paper's code
           generation achieves by interleaving a node's own iterations
           with the subcomputations it hosts for others (Section 4.5) —
           producers finish long before consumers need them, so sync
           waits do not convoy. The stable sort keeps producers before
           consumers within a level chain. *)
        let ordered =
          let arr = Array.of_list (List.concat (List.rev !nest_tasks)) in
          Array.stable_sort (fun ((_ : Task.t), la) ((_ : Task.t), lb) -> compare la lb) arr;
          arr
        in
        Ndp_obs.Span.attr_int spans sp_s "tasks" (Array.length ordered);
        Ndp_obs.Span.exit spans sp_s;
        if capture then
          emitted := Array.fold_right (fun (t, _) acc -> t :: acc) ordered [] :: !emitted;
        let sp_sim = Ndp_obs.Span.enter spans "simulate" in
        Ndp_obs.Span.attr_str spans sp_sim "nest" nest.Loop.nest_name;
        let c0 = Ndp_sim.Stats.finish_time (Engine.stats engine) in
        Engine.run ~on_load engine
          (Array.fold_right (fun (t, _) acc -> apply_tweaks tweaks t :: acc) ordered []);
        let c1 = Ndp_sim.Stats.finish_time (Engine.stats engine) in
        Ndp_obs.Span.exit ~cycles:(c1 - c0) spans sp_sim)
      streams);
  let stats = Ndp_sim.Stats.copy (Engine.stats engine) in
  (* End every timeline series at the run's last cycle, boundary or not. *)
  Ndp_obs.Timeline.flush obs.Ndp_obs.Sink.timeline ~now:(Ndp_sim.Stats.finish_time stats);
  let group_hops = Array.init total_groups (fun g -> Engine.group_hops engine g) in
  let group_avg_latency =
    Array.init total_groups (fun g ->
        let sum, count = Engine.group_latency engine g in
        if count = 0 then 0.0 else float_of_int sum /. float_of_int count)
  in
  let all_metas = List.concat_map snd streams in
  let reg = obs.Ndp_obs.Sink.metrics in
  if Ndp_obs.Metrics.enabled reg then
    List.iter
      (fun (nest_name, w) ->
        Ndp_obs.Metrics.set_gauge
          (Ndp_obs.Metrics.gauge reg (Printf.sprintf "core.window_size{nest=%s}" nest_name))
          (float_of_int w))
      (List.rev !windows_chosen);
  if repair_plan <> None then
    Ndp_obs.Metrics.add
      (Ndp_obs.Metrics.counter reg "fault.remapped_tasks")
      ctx.Context.remapped_tasks;
  {
    kernel_name = kernel.Kernel.name;
    scheme_name = scheme_name scheme;
    stats;
    energy = Ndp_sim.Energy.of_stats stats;
    exec_time = Ndp_sim.Stats.finish_time stats;
    group_hops;
    group_avg_latency;
    parallelism;
    group_syncs;
    sync_arcs = !sync_arcs;
    num_instances = total_groups;
    offload_mix = !offload;
    analyzable_fraction = analyzable_fraction all_metas;
    predictor_accuracy = Ndp_mem.Miss_predictor.accuracy ctx.Context.predictor;
    windows_chosen = List.rev !windows_chosen;
    est_movement_total = !est_movement_total;
    tasks_emitted = !tasks_emitted;
    remapped_tasks = ctx.Context.remapped_tasks;
    node_finish = Engine.node_clocks engine;
    node_busy = Engine.node_busy engine;
    fusion_decisions = !fusion_decisions;
    traces = List.rev !traces;
    emitted = List.rev !emitted;
  }

module Job = struct
  type t = job = {
    scheme : scheme;
    kernel : Kernel.t;
    config : Config.t;
    tweaks : tweaks;
    faults : Ndp_fault.Plan.t option;
    repair : bool;
    validate : bool;
    capture : bool;
  }

  let make = job_make
  let run = run_job
end

(* Thin compatibility wrapper over [Job]; prefer [Job.make] + [Job.run]. *)
let run ?config ?tweaks ?(validate = false) ?(capture = false) ?pool ?obs ?faults ?repair
    scheme kernel =
  run_job ?pool ?obs (job_make ?config ?tweaks ?faults ?repair ~validate ~capture scheme kernel)

(* --- Batched simulation ------------------------------------------------ *)

type batch_job = Job.t

let batch_job ?config ?tweaks ?faults ?repair scheme kernel =
  job_make ?config ?tweaks ?faults ?repair scheme kernel

(* Each job builds its own machine, engine, context and inspector, and a
   [Kernel.t] is immutable, so jobs share no mutable state and each result
   is byte-identical to the corresponding solo [run]. Metrics follow the
   [Sharded] discipline with a twist: every JOB (not domain) fills a
   private registry — two jobs sharing a per-domain shard would also share
   [Stats] counter handles and read each other's counts — and the private
   registries are merged in input order and absorbed as one shard, so the
   merged totals are identical at any pool size. *)
let run_batch ?pool ?metrics jobs =
  let with_reg =
    match metrics with Some sh -> Ndp_obs.Metrics.Sharded.enabled sh | None -> false
  in
  let run_one (j : Job.t) =
    let reg = if with_reg then Ndp_obs.Metrics.create () else Ndp_obs.Metrics.disabled in
    let obs =
      if with_reg then { Ndp_obs.Sink.none with Ndp_obs.Sink.metrics = reg }
      else Ndp_obs.Sink.none
    in
    (Job.run ~obs j, reg)
  in
  let outcomes =
    match pool with
    | None -> List.map run_one jobs
    | Some pool -> Ndp_prelude.Pool.parallel_map pool run_one jobs
  in
  (match metrics with
  | Some sh when with_reg ->
    Ndp_obs.Metrics.Sharded.add_shard sh (Ndp_obs.Metrics.merge (List.map snd outcomes))
  | _ -> ());
  List.map fst outcomes

type replayed = {
  rp_stats : Ndp_sim.Stats.t;
  rp_energy : Ndp_sim.Energy.breakdown;
  rp_exec_time : int;
  rp_node_finish : int array;
  rp_node_busy : int array;
}

(* Re-simulate a captured task stream on a fresh machine, skipping
   compilation entirely. The schedule is the one compiled under the
   capture run's config; replaying it under a different cost model asks
   "how would this fixed schedule perform on that hardware" — the
   design-space question a sweep explores. Address-shape parameters
   (mesh dimensions, line size, page size) must match the capture config,
   since task operands carry resolved virtual addresses. *)
let replay ?(config = Config.default) ?(tweaks = no_tweaks) ?(obs = Ndp_obs.Sink.none) kernel
    emitted =
  let machine = Machine.create ~obs config in
  (match config.Config.memory_mode with
  | Config.Flat ->
    Machine.set_hot_ranges machine (Kernel.hot_ranges kernel ~budget:config.Config.mcdram_capacity)
  | Config.Hybrid ->
    Machine.set_hot_ranges machine
      (Kernel.hot_ranges kernel ~budget:(config.Config.mcdram_capacity / 2))
  | Config.Cache_mode -> ());
  Machine.set_l1_boost machine tweaks.l1_boost;
  Ndp_sim.Network.set_distance_factor (Machine.network machine) tweaks.distance_factor;
  Machine.set_mc_overrides machine tweaks.mc_overrides;
  let engine = Engine.create ~obs machine in
  let spans = obs.Ndp_obs.Sink.spans in
  let sp = Ndp_obs.Span.enter spans "replay" in
  List.iter (fun batch -> Engine.run engine (List.map (apply_tweaks tweaks) batch)) emitted;
  let stats = Ndp_sim.Stats.copy (Engine.stats engine) in
  Ndp_obs.Span.exit ~cycles:(Ndp_sim.Stats.finish_time stats) spans sp;
  Ndp_obs.Timeline.flush obs.Ndp_obs.Sink.timeline ~now:(Ndp_sim.Stats.finish_time stats);
  {
    rp_stats = stats;
    rp_energy = Ndp_sim.Energy.of_stats stats;
    rp_exec_time = Ndp_sim.Stats.finish_time stats;
    rp_node_finish = Engine.node_clocks engine;
    rp_node_busy = Engine.node_busy engine;
  }

let static_context ?(config = Config.default) scheme kernel =
  make_context ~config ~tweaks:no_tweaks scheme kernel

let nest_stream = instance_stream

let profile_page_accesses ?(config = Config.default) kernel =
  let ctx = make_context ~config ~tweaks:no_tweaks Default kernel in
  let acc = ref [] in
  let _ =
    List.fold_left
      (fun g nest ->
        let metas, g' = instance_stream ctx nest ~first_group:g in
        List.iter
          (fun (m : Window.meta) ->
            let refs =
              Ndp_ir.Stmt.output m.Window.inst.Dep.stmt
              :: Ndp_ir.Stmt.inputs m.Window.inst.Dep.stmt
            in
            List.iter
              (fun r ->
                match ctx.Context.runtime_resolve r m.Window.inst.Dep.env with
                | Some va -> acc := (Data_mapping.page_of ctx va, m.Window.default_node) :: !acc
                | None -> ())
              refs)
          metas;
        g')
      0 kernel.Kernel.program.Loop.nests
  in
  !acc
