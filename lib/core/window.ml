module Task = Ndp_sim.Task
module Dep = Ndp_ir.Dependence

type meta = { group : int; default_node : int; inst : Dep.instance }

type stmt_report = {
  r_group : int;
  est_movement : int;
  default_est : int;
  parallelism : int;
  task_count : int;
  offload_mix : Task.op_mix;
  syncs : int;
}

type compiled = {
  tasks : (Task.t * int) list;
  reports : stmt_report list;
  sync_count : int;
  predictions : (int * bool) list;
  roots : (int * int) list;
  sync_arcs : (int * int) list;
}

(* The root of the statement MST is the node the default placement
   assigned the iteration to (Figure 8: node i computes the final
   combine); the result's write-back still goes to its home bank, which
   the engine models in the store path. Keeping the final subcomputation
   on the assigned node preserves the default's iteration-level balance —
   rooting at the LHS home bank would serialize the 8 statements sharing
   an output cache line onto one node. *)
let store_node_of (_ctx : Context.t) meta = meta.default_node

let chunk list size =
  if size <= 0 then invalid_arg "Window.chunk: size must be positive";
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if n = size then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (n + 1) rest
  in
  go [] [] 0 list

(* Splitting must clear this margin over the default before it is worth
   doing (see the comment at the use site in [compile]); the analytic
   estimator applies the identical rule so the two agree statement by
   statement. *)
let margin_num, margin_den = (7, 10)

let margin_ruled ~default_est est =
  if est * margin_den < default_est * margin_num then est else default_est

let compile ?deps ?fusion (ctx : Context.t) metas =
  Context.clear_reuse ctx;
  (* Task ids allocated during this compile form the dense range
     [id_base, ctx.next_task); every per-task table below is an array
     indexed by [id - id_base] instead of a hashtable — this function is
     the compiler's hot path. *)
  let id_base = ctx.Context.next_task in
  let per_stmt =
    List.mapi
      (fun i meta ->
        let stmt = meta.inst.Dep.stmt in
        let env = meta.inst.Dep.env in
        let fslot =
          match fusion with Some f when i < Array.length f -> f.(i) | Some _ | None -> None
        in
        let store_node =
          match fslot with Some s -> s.Fusion.f_node | None -> store_node_of ctx meta
        in
        let split = Splitter.split ctx ~store_node stmt env in
        let default_est = Splitter.default_movement ctx ~store_node stmt env in
        (* Splitting must satisfy the minimum-data-movement requirement:
           when the MST saves nothing over fetching every operand to the
           store node (tiny network footprints — the paper's Cholesky/LU
           case), the statement executes whole on its store node. *)
        (* The estimate counts links only; synchronization and partial-
           result forwarding are not in it, so splitting must clear a
           margin before it is worth doing. *)
        let split =
          match fslot with
          | Some _ ->
            (* A fused member executes whole on the chain's node — one
               Kruskal vertex — so the elided intermediate is in the same
               L1 its consumer loads from. *)
            { (Splitter.unsplit split) with Splitter.est_movement = default_est }
          | None ->
            if split.Splitter.est_movement * margin_den < default_est * margin_num then split
            else { (Splitter.unsplit split) with Splitter.est_movement = default_est }
        in
        (* Repair before anything reads task placements: the cross-node
           arc filter and the variable2node propagation below must see the
           post-remap nodes or sync arcs would be elided against stale
           placements. *)
        let sched = Schedule.repair ctx (Schedule.schedule ctx ~group:meta.group split stmt env) in
        let sched =
          match fslot with
          | Some { Fusion.f_elide = true; _ } ->
            {
              sched with
              Schedule.tasks =
                List.map
                  (fun (t : Task.t) ->
                    if t.Task.id = sched.Schedule.root_task && t.Task.store <> None then
                      { t with Task.store_local = true }
                    else t)
                  sched.Schedule.tasks;
            }
          | _ -> sched
        in
        Context.advance_statement ctx;
        (* Propagate this statement's L1 placements to later statements in
           the window (the variable2node map of Algorithm 1, line 37). *)
        List.iter (fun (line, node) -> Context.note_cached ctx ~line ~node) sched.Schedule.placements;
        (match split.Splitter.store with
        | Some (va, _) ->
          Context.note_cached ctx ~line:(Location.line_of ctx va) ~node:store_node
        | None -> ());
        (meta, split, sched, default_est))
      metas
  in
  let num_tasks = ctx.Context.next_task - id_base in
  (* Inter-statement dependences (flow/anti/output, including conservative
     may-deps) become arcs from the producer's final task to the consuming
     statement's task graph. [deps], when provided, is the pre-computed
     analysis of exactly these instances (indices local to [metas]) — the
     window-size preprocessing derives it once per nest sample and slices
     it per chunk instead of re-running the analysis per candidate. *)
  let deps =
    match deps with
    | Some d -> d
    | None -> Dep.analyze ctx.compiler_resolve (List.map (fun m -> m.inst) metas)
  in
  let arr = Array.of_list per_stmt in
  let inter_arcs =
    List.filter_map
      (fun (d : Dep.dep) ->
        let _, _, src_sched, _ = arr.(d.Dep.src) in
        let _, _, dst_sched, _ = arr.(d.Dep.dst) in
        let producer = src_sched.Schedule.root_task in
        let consumer = dst_sched.Schedule.root_task in
        if producer = consumer then None else Some (producer, consumer, d.Dep.kind))
      deps
  in
  let join_arcs = List.concat_map (fun (_, _, s, _) -> s.Schedule.join_arcs) per_stmt in
  (* A producer and consumer on the same node are ordered by the node's
     program; only cross-node waits need a synchronization handshake. *)
  let node_of_task = Array.make (max 1 num_tasks) (-1) in
  List.iter
    (fun (_, _, s, _) ->
      List.iter
        (fun (t : Task.t) -> node_of_task.(t.Task.id - id_base) <- t.Task.node)
        s.Schedule.tasks)
    per_stmt;
  let cross_node (p, c) = node_of_task.(p - id_base) <> node_of_task.(c - id_base) in
  (* Dropping a same-node arc is only sound if the node really does run the
     producer first. The level-major emission below orders a node's program
     by level, so the dropped arc must still raise the consumer's level
     above the producer's — otherwise a consumer with a shallower task tree
     would be emitted (and executed) before its producer. *)
  let same_node_parents = Array.make (max 1 num_tasks) [] in
  List.iter
    (fun (p, c, _) ->
      if not (cross_node (p, c)) then
        same_node_parents.(c - id_base) <- p :: same_node_parents.(c - id_base))
    inter_arcs;
  let all_arcs =
    List.filter cross_node (join_arcs @ List.map (fun (p, c, _) -> (p, c)) inter_arcs)
  in
  let surviving = Sync_min.minimize ~enabled:ctx.options.Context.sync_minimize all_arcs in
  let sync_of = Sync_min.syncs_per_consumer surviving in
  (* Inter-statement arcs that survive also order execution: attach them as
     Result operands (flow deps carry a cache line; anti/output deps carry
     a token). *)
  let extra_operands = Array.make (max 1 num_tasks) [] in
  List.iter
    (fun (p, c, kind) ->
      if List.mem (p, c) surviving then begin
        let bytes = match kind with Dep.Flow | Dep.Anti | Dep.Output -> 8 in
        extra_operands.(c - id_base) <-
          Task.Result { producer = p; bytes } :: extra_operands.(c - id_base)
      end)
    inter_arcs;
  let finalize (task : Task.t) =
    let extras = extra_operands.(task.Task.id - id_base) in
    let syncs = Option.value (Hashtbl.find_opt sync_of task.Task.id) ~default:0 in
    match extras with
    | [] -> if syncs = task.Task.syncs then task else { task with Task.syncs }
    | _ -> { task with Task.operands = task.Task.operands @ extras; Task.syncs }
  in
  let tasks =
    Array.of_list
      (List.concat_map (fun (_, _, s, _) -> List.map finalize s.Schedule.tasks) per_stmt)
  in
  (* Emit the window level-by-level (all dependency-free subcomputations
     first), so a node's generated program never blocks a ready
     subcomputation behind one that is still waiting for remote partial
     results — the interleaving the paper's code generator produces
     (Figure 8). The sort is stable, preserving producer-before-consumer
     within a level chain. *)
  let level_of = Array.make (max 1 num_tasks) 0 in
  let leveled =
    Array.map
      (fun (t : Task.t) ->
        let producer_level = function
          | Task.Result { producer; bytes = _ } -> level_of.(producer - id_base)
          | Task.Load _ -> 0
        in
        let operand_floor =
          List.fold_left (fun acc op -> max acc (producer_level op)) 0 t.Task.operands
        in
        (* Same-node arcs have no Result operand; their ordering obligation
           lives entirely in this level assignment. *)
        let parent_floor =
          List.fold_left
            (fun acc p -> max acc level_of.(p - id_base))
            0
            same_node_parents.(t.Task.id - id_base)
        in
        let level = 1 + max operand_floor parent_floor in
        level_of.(t.Task.id - id_base) <- level;
        (t, level))
      tasks
  in
  Array.stable_sort (fun ((_ : Task.t), la) ((_ : Task.t), lb) -> compare la lb) leveled;
  let tasks = Array.to_list leveled in
  let group_syncs = Hashtbl.create 16 in
  List.iter
    (fun ((t : Task.t), _) ->
      if t.Task.syncs > 0 then
        Hashtbl.replace group_syncs t.Task.group
          (Option.value (Hashtbl.find_opt group_syncs t.Task.group) ~default:0 + t.Task.syncs))
    tasks;
  let reports =
    List.map
      (fun (meta, split, sched, default_est) ->
        {
          r_group = meta.group;
          est_movement = split.Splitter.est_movement;
          default_est;
          parallelism = sched.Schedule.parallelism;
          task_count = List.length sched.Schedule.tasks;
          offload_mix = sched.Schedule.offload_mix;
          syncs = Option.value (Hashtbl.find_opt group_syncs meta.group) ~default:0;
        })
      per_stmt
  in
  let predictions = List.concat_map (fun (_, sp, _, _) -> sp.Splitter.predictions) per_stmt in
  let roots =
    List.map (fun (meta, _, sched, _) -> (meta.group, sched.Schedule.root_task)) per_stmt
  in
  { tasks; reports; sync_count = List.length surviving; predictions; roots; sync_arcs = surviving }

(* Preprocessing objective: estimated links traversed plus the cost of the
   synchronizations the window structure induces, expressed in links
   (sync handshake cycles over per-link cycles). Movement alone is
   monotone in the window size; synchronizations are what push back. *)
let sync_links_of (ctx : Context.t) =
  let c = ctx.Context.config in
  max 1 (c.Ndp_sim.Config.sync_cycles / c.Ndp_sim.Config.hop_cycles) + 2

let estimate_of_compiled ~sync_links (compiled : compiled) =
  let movement = List.fold_left (fun acc r -> acc + r.est_movement) 0 compiled.reports in
  movement + (sync_links * compiled.sync_count)

let movement_estimate (ctx : Context.t) metas ~window =
  let ctx = Context.fork_for_estimate ctx in
  let sync_links = sync_links_of ctx in
  let windows = chunk metas window in
  List.fold_left
    (fun acc w -> acc + estimate_of_compiled ~sync_links (compile ctx w))
    0 windows

(* Like [movement_estimate], but against a forked context and with the
   nest sample's dependence analysis computed once ([all_deps], indices
   into [sample]) and sliced per chunk: a dependence whose endpoints both
   fall inside a chunk is exactly what analyzing the chunk alone would
   find (the analysis is pairwise), so re-deriving it per candidate
   window size only repeats work. *)
let estimate_sliced (ctx : Context.t) sample all_deps ~window =
  let ctx = Context.fork_for_estimate ctx in
  let sync_links = sync_links_of ctx in
  let n = Array.length sample in
  let rec go lo acc =
    if lo >= n then acc
    else begin
      let hi = min n (lo + window) in
      let metas = Array.to_list (Array.sub sample lo (hi - lo)) in
      let deps =
        List.filter_map
          (fun (d : Dep.dep) ->
            if d.Dep.src >= lo && d.Dep.dst < hi then
              Some { d with Dep.src = d.Dep.src - lo; Dep.dst = d.Dep.dst - lo }
            else None)
          all_deps
      in
      go hi (acc + estimate_of_compiled ~sync_links (compile ~deps ctx metas))
    end
  in
  go 0 0

(* The preprocessing estimates movement on a prefix of the instance stream;
   loop iterations are statistically uniform, so a few hundred instances
   characterize the nest. *)
let preprocessing_sample = 256

(* A nest whose references are all indirect gives the movement estimate
   nothing to discriminate on: every candidate size scores the inspector
   fallback identically, so the sampled search is pure waste. Such nests
   run at window size 1 (and lint surfaces a W402). *)
let all_non_affine metas =
  metas <> []
  && List.for_all
       (fun m ->
         let stmt = m.inst.Dep.stmt in
         List.for_all
           (fun r -> not (Ndp_ir.Reference.analyzable r))
           (Ndp_ir.Stmt.output stmt :: Ndp_ir.Stmt.inputs stmt))
       metas

let choose_size ?pool (ctx : Context.t) metas ~max:max_size =
  if max_size < 1 || all_non_affine metas then 1
  else begin
    let sample = Array.of_list (List.filteri (fun i _ -> i < preprocessing_sample) metas) in
    let all_deps =
      Dep.analyze ctx.Context.compiler_resolve
        (Array.to_list (Array.map (fun m -> m.inst) sample))
    in
    let estimate w = estimate_sliced ctx sample all_deps ~window:w in
    (* Size 1 is evaluated first and serially: it resolves (and thereby
       page-allocates) every address the sample can reach, so the
       remaining candidates — possibly running concurrently on forked
       contexts — only ever read the machine's page table and predictor. *)
    let m1 = estimate 1 in
    let rest = List.init (max 0 (max_size - 1)) (fun i -> i + 2) in
    let estimates =
      match pool with
      | Some p -> Ndp_prelude.Pool.parallel_map p estimate rest
      | None -> List.map estimate rest
    in
    let best_w, _ =
      List.fold_left2
        (fun (best_w, best_m) w m -> if m < best_m then (w, m) else (best_w, best_m))
        (1, m1) rest estimates
    in
    best_w
  end

(* ------------------------------------------------------------------ *)
(* Analytic (closed-form) movement estimation.

   [compile] prices a candidate window by actually building it: splitting,
   scheduling, repairing and sync-minimizing every statement of the sample
   once per candidate size. The analytic path prices the same objective
   from one walk over the sample plus integer arithmetic per candidate:
   movement comes from the splitter's per-statement estimates under the
   two reuse regimes (window captures the providers / window cut them
   off), synchronization from the dependence pairs whose endpoints share a
   chunk. What it forgoes — schedule placements landing on exec nodes,
   join arcs, transitive sync reduction — are second-order against the
   movement term, and the chooser falls back to the sampled estimator
   whenever the analytic curve is too flat to call the winner. *)

type analytic = { a_est : int array; a_syncs : int }

(* Mirror of [compile]'s variable2node propagation without running the
   scheduler. The schedule consumes a lone data item at its parent
   combine — almost always the root, which is pinned to the store node —
   and runs a multi-item combine on the MST vertex itself, so lines land
   at the store node except where a vertex holds two or more items. The
   margin rule is applied first: a collapsed statement notes everything at
   its store node, exactly like [Schedule.single_node_schedule]. *)
let note_analytic (ctx : Context.t) ~store_node ~kept (split : Splitter.t) =
  List.iter
    (fun (node, locs) ->
      let target =
        if kept && node <> store_node && List.length locs >= 2 then node else store_node
      in
      List.iter
        (fun (loc : Location.t) ->
          match loc.Location.va with
          | Some va -> Context.note_cached ctx ~line:(Location.line_of ctx va) ~node:target
          | None -> ())
        locs)
    split.Splitter.items_at;
  match split.Splitter.store with
  | Some (va, _) -> Context.note_cached ctx ~line:(Location.line_of ctx va) ~node:store_node
  | None -> ()

let analytic_of ?deps (ctx : Context.t) metas ~window =
  if window <= 0 then invalid_arg "Window.analytic_of: window must be positive";
  let ctx = Context.fork_for_estimate ctx in
  let arr = Array.of_list metas in
  let n = Array.length arr in
  let a_est = Array.make (max 1 n) 0 in
  let syncs = ref 0 in
  let rec go lo =
    if lo < n then begin
      let hi = min n (lo + window) in
      Context.clear_reuse ctx;
      for i = lo to hi - 1 do
        let m = arr.(i) in
        let stmt = m.inst.Dep.stmt and env = m.inst.Dep.env in
        let store_node = store_node_of ctx m in
        let split = Splitter.split ctx ~store_node stmt env in
        let default_est = Splitter.default_movement ctx ~store_node stmt env in
        let kept = split.Splitter.est_movement * margin_den < default_est * margin_num in
        a_est.(i) <- (if kept then split.Splitter.est_movement else default_est);
        Context.advance_statement ctx;
        note_analytic ctx ~store_node ~kept split
      done;
      (* In-chunk dependences whose endpoints sit on different nodes each
         cost one handshake; duplicate (producer, consumer) pairs collapse
         like [compile]'s arc set does. *)
      let chunk_deps =
        match deps with
        | Some d -> List.filter (fun (d : Dep.dep) -> d.Dep.src >= lo && d.Dep.dst < hi) d
        | None ->
          let insts = List.init (hi - lo) (fun k -> arr.(lo + k).inst) in
          List.map
            (fun (d : Dep.dep) -> { d with Dep.src = d.Dep.src + lo; Dep.dst = d.Dep.dst + lo })
            (Dep.analyze ctx.Context.compiler_resolve insts)
      in
      let pairs = Hashtbl.create 16 in
      List.iter
        (fun (d : Dep.dep) ->
          if
            arr.(d.Dep.src).default_node <> arr.(d.Dep.dst).default_node
            && not (Hashtbl.mem pairs (d.Dep.src, d.Dep.dst))
          then begin
            Hashtbl.add pairs (d.Dep.src, d.Dep.dst) ();
            incr syncs
          end)
        chunk_deps;
      go hi
    end
  in
  go 0;
  { a_est = (if n = 0 then [||] else a_est); a_syncs = !syncs }

(* Candidates whose analytic total lands within this fraction of the
   analytic minimum are re-scored with the sampled estimator; an
   uncontested analytic winner skips sampling entirely. *)
let analytic_tie_margin = 0.10

let choose_size_analytic ?pool (ctx : Context.t) metas ~max:max_size =
  if max_size < 1 || metas = [] || all_non_affine metas then 1
  else begin
    let sample = Array.of_list (List.filteri (fun i _ -> i < preprocessing_sample) metas) in
    let n = Array.length sample in
    let all_deps =
      Dep.analyze ctx.Context.compiler_resolve
        (Array.to_list (Array.map (fun m -> m.inst) sample))
    in
    (* One un-chunked walk over the sample decomposes every candidate
       size. Statement [i]'s estimate depends on chunking only through
       which in-window providers survive the chunk boundary: [est_full]
       prices it with its providers visible, [est_none] with the reuse map
       cold. Providers are read straight off the variable2node stamps
       ([note_cached] records the noting statement's clock, so stamp-1 is
       the provider's sample index); entries within [reuse_horizon] can
       never have been capacity-evicted, so the provider set is exact. *)
    let ectx = Context.fork_for_estimate ctx in
    Context.clear_reuse ectx;
    let nctx = { ectx with Context.options = { ectx.Context.options with Context.reuse_aware = false } } in
    let est_full = Array.make (max 1 n) 0 in
    let est_none = Array.make (max 1 n) 0 in
    let providers = Array.make (max 1 n) [] in
    for i = 0 to n - 1 do
      let m = sample.(i) in
      let stmt = m.inst.Dep.stmt and env = m.inst.Dep.env in
      let store_node = store_node_of ectx m in
      let provs = ref [] in
      List.iter
        (fun r ->
          match ectx.Context.compiler_resolve r env with
          | Some va -> (
            let line = Location.line_of ectx va in
            match Hashtbl.find_opt ectx.Context.var2node line with
            | Some (_, stamp) when ectx.Context.stmt_clock - stamp <= Context.reuse_horizon ->
              let p = stamp - 1 in
              if p >= 0 && not (List.mem p !provs) then provs := p :: !provs
            | _ -> ())
          | None -> ())
        (Ndp_ir.Stmt.inputs stmt);
      providers.(i) <- !provs;
      let split = Splitter.split ectx ~store_node stmt env in
      let default_est = Splitter.default_movement ectx ~store_node stmt env in
      let kept = split.Splitter.est_movement * margin_den < default_est * margin_num in
      est_full.(i) <- (if kept then split.Splitter.est_movement else default_est);
      (* [default_movement] never consults the reuse map, so the default
         estimate is shared between the two regimes. *)
      est_none.(i) <-
        (if !provs = [] then est_full.(i)
         else margin_ruled ~default_est (Splitter.split nctx ~store_node stmt env).Splitter.est_movement);
      Context.advance_statement ectx;
      note_analytic ectx ~store_node ~kept split
    done;
    let sync_links = sync_links_of ectx in
    let total w =
      let movement = ref 0 in
      for i = 0 to n - 1 do
        let captured = providers.(i) <> [] && List.for_all (fun p -> p / w = i / w) providers.(i) in
        movement := !movement + (if providers.(i) = [] || captured then est_full.(i) else est_none.(i))
      done;
      let pairs = Hashtbl.create 64 in
      let syncs = ref 0 in
      List.iter
        (fun (d : Dep.dep) ->
          if
            d.Dep.src / w = d.Dep.dst / w
            && sample.(d.Dep.src).default_node <> sample.(d.Dep.dst).default_node
            && not (Hashtbl.mem pairs (d.Dep.src, d.Dep.dst))
          then begin
            Hashtbl.add pairs (d.Dep.src, d.Dep.dst) ();
            incr syncs
          end)
        all_deps;
      !movement + (sync_links * !syncs)
    in
    let candidates = List.init max_size (fun k -> k + 1) in
    let totals = List.map total candidates in
    let best = List.fold_left min (List.hd totals) totals in
    let cut = float_of_int best *. (1. +. analytic_tie_margin) in
    let ties =
      List.filteri (fun k _ -> float_of_int (List.nth totals k) <= cut) candidates
    in
    match ties with
    | [ w ] -> w
    | ties ->
      (* Too close to call analytically: re-score only the contested
         candidates with the sampled estimator, keeping [choose_size]'s
         smallest-window tie-break. The walk above already resolved (and
         page-allocated) every address the sample reaches, so pooled
         evaluation only reads shared machine state. *)
      let estimate w = estimate_sliced ctx sample all_deps ~window:w in
      let estimates =
        match pool with
        | Some p -> Ndp_prelude.Pool.parallel_map p estimate ties
        | None -> List.map estimate ties
      in
      let best_w, _ =
        List.fold_left2
          (fun (best_w, best_m) w m -> if m < best_m then (w, m) else (best_w, best_m))
          (List.hd ties, List.hd estimates)
          (List.tl ties) (List.tl estimates)
      in
      best_w
  end

let choose_size_reanalyze (ctx : Context.t) metas ~max:max_size =
  let sample = List.filteri (fun i _ -> i < preprocessing_sample) metas in
  let rec best w best_w best_m =
    if w > max_size then best_w
    else begin
      let m = movement_estimate ctx sample ~window:w in
      if m < best_m then best (w + 1) w m else best (w + 1) best_w best_m
    end
  in
  best 1 1 max_int
