module Task = Ndp_sim.Task
module Dep = Ndp_ir.Dependence

type meta = { group : int; default_node : int; inst : Dep.instance }

type stmt_report = {
  r_group : int;
  est_movement : int;
  default_est : int;
  parallelism : int;
  task_count : int;
  offload_mix : Task.op_mix;
  syncs : int;
}

type compiled = {
  tasks : (Task.t * int) list;
  reports : stmt_report list;
  sync_count : int;
  predictions : (int * bool) list;
  roots : (int * int) list;
  sync_arcs : (int * int) list;
}

(* The root of the statement MST is the node the default placement
   assigned the iteration to (Figure 8: node i computes the final
   combine); the result's write-back still goes to its home bank, which
   the engine models in the store path. Keeping the final subcomputation
   on the assigned node preserves the default's iteration-level balance —
   rooting at the LHS home bank would serialize the 8 statements sharing
   an output cache line onto one node. *)
let store_node_of (_ctx : Context.t) meta = meta.default_node

let chunk list size =
  if size <= 0 then invalid_arg "Window.chunk: size must be positive";
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if n = size then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (n + 1) rest
  in
  go [] [] 0 list

let compile ?deps (ctx : Context.t) metas =
  Context.clear_reuse ctx;
  (* Task ids allocated during this compile form the dense range
     [id_base, ctx.next_task); every per-task table below is an array
     indexed by [id - id_base] instead of a hashtable — this function is
     the compiler's hot path. *)
  let id_base = ctx.Context.next_task in
  let per_stmt =
    List.map
      (fun meta ->
        let stmt = meta.inst.Dep.stmt in
        let env = meta.inst.Dep.env in
        let store_node = store_node_of ctx meta in
        let split = Splitter.split ctx ~store_node stmt env in
        let default_est = Splitter.default_movement ctx ~store_node stmt env in
        (* Splitting must satisfy the minimum-data-movement requirement:
           when the MST saves nothing over fetching every operand to the
           store node (tiny network footprints — the paper's Cholesky/LU
           case), the statement executes whole on its store node. *)
        (* The estimate counts links only; synchronization and partial-
           result forwarding are not in it, so splitting must clear a
           margin before it is worth doing. *)
        let margin_num, margin_den = (7, 10) in
        let split =
          if split.Splitter.est_movement * margin_den < default_est * margin_num then split
          else { (Splitter.unsplit split) with Splitter.est_movement = default_est }
        in
        (* Repair before anything reads task placements: the cross-node
           arc filter and the variable2node propagation below must see the
           post-remap nodes or sync arcs would be elided against stale
           placements. *)
        let sched = Schedule.repair ctx (Schedule.schedule ctx ~group:meta.group split stmt env) in
        Context.advance_statement ctx;
        (* Propagate this statement's L1 placements to later statements in
           the window (the variable2node map of Algorithm 1, line 37). *)
        List.iter (fun (line, node) -> Context.note_cached ctx ~line ~node) sched.Schedule.placements;
        (match split.Splitter.store with
        | Some (va, _) ->
          Context.note_cached ctx ~line:(Location.line_of ctx va) ~node:store_node
        | None -> ());
        (meta, split, sched, default_est))
      metas
  in
  let num_tasks = ctx.Context.next_task - id_base in
  (* Inter-statement dependences (flow/anti/output, including conservative
     may-deps) become arcs from the producer's final task to the consuming
     statement's task graph. [deps], when provided, is the pre-computed
     analysis of exactly these instances (indices local to [metas]) — the
     window-size preprocessing derives it once per nest sample and slices
     it per chunk instead of re-running the analysis per candidate. *)
  let deps =
    match deps with
    | Some d -> d
    | None -> Dep.analyze ctx.compiler_resolve (List.map (fun m -> m.inst) metas)
  in
  let arr = Array.of_list per_stmt in
  let inter_arcs =
    List.filter_map
      (fun (d : Dep.dep) ->
        let _, _, src_sched, _ = arr.(d.Dep.src) in
        let _, _, dst_sched, _ = arr.(d.Dep.dst) in
        let producer = src_sched.Schedule.root_task in
        let consumer = dst_sched.Schedule.root_task in
        if producer = consumer then None else Some (producer, consumer, d.Dep.kind))
      deps
  in
  let join_arcs = List.concat_map (fun (_, _, s, _) -> s.Schedule.join_arcs) per_stmt in
  (* A producer and consumer on the same node are ordered by the node's
     program; only cross-node waits need a synchronization handshake. *)
  let node_of_task = Array.make (max 1 num_tasks) (-1) in
  List.iter
    (fun (_, _, s, _) ->
      List.iter
        (fun (t : Task.t) -> node_of_task.(t.Task.id - id_base) <- t.Task.node)
        s.Schedule.tasks)
    per_stmt;
  let cross_node (p, c) = node_of_task.(p - id_base) <> node_of_task.(c - id_base) in
  (* Dropping a same-node arc is only sound if the node really does run the
     producer first. The level-major emission below orders a node's program
     by level, so the dropped arc must still raise the consumer's level
     above the producer's — otherwise a consumer with a shallower task tree
     would be emitted (and executed) before its producer. *)
  let same_node_parents = Array.make (max 1 num_tasks) [] in
  List.iter
    (fun (p, c, _) ->
      if not (cross_node (p, c)) then
        same_node_parents.(c - id_base) <- p :: same_node_parents.(c - id_base))
    inter_arcs;
  let all_arcs =
    List.filter cross_node (join_arcs @ List.map (fun (p, c, _) -> (p, c)) inter_arcs)
  in
  let surviving = Sync_min.minimize ~enabled:ctx.options.Context.sync_minimize all_arcs in
  let sync_of = Sync_min.syncs_per_consumer surviving in
  (* Inter-statement arcs that survive also order execution: attach them as
     Result operands (flow deps carry a cache line; anti/output deps carry
     a token). *)
  let extra_operands = Array.make (max 1 num_tasks) [] in
  List.iter
    (fun (p, c, kind) ->
      if List.mem (p, c) surviving then begin
        let bytes = match kind with Dep.Flow | Dep.Anti | Dep.Output -> 8 in
        extra_operands.(c - id_base) <-
          Task.Result { producer = p; bytes } :: extra_operands.(c - id_base)
      end)
    inter_arcs;
  let finalize (task : Task.t) =
    let extras = extra_operands.(task.Task.id - id_base) in
    let syncs = Option.value (Hashtbl.find_opt sync_of task.Task.id) ~default:0 in
    { task with Task.operands = task.Task.operands @ extras; Task.syncs }
  in
  let tasks =
    Array.of_list
      (List.concat_map (fun (_, _, s, _) -> List.map finalize s.Schedule.tasks) per_stmt)
  in
  (* Emit the window level-by-level (all dependency-free subcomputations
     first), so a node's generated program never blocks a ready
     subcomputation behind one that is still waiting for remote partial
     results — the interleaving the paper's code generator produces
     (Figure 8). The sort is stable, preserving producer-before-consumer
     within a level chain. *)
  let level_of = Array.make (max 1 num_tasks) 0 in
  let leveled =
    Array.map
      (fun (t : Task.t) ->
        let producer_level = function
          | Task.Result { producer; bytes = _ } -> level_of.(producer - id_base)
          | Task.Load _ -> 0
        in
        let operand_floor =
          List.fold_left (fun acc op -> max acc (producer_level op)) 0 t.Task.operands
        in
        (* Same-node arcs have no Result operand; their ordering obligation
           lives entirely in this level assignment. *)
        let parent_floor =
          List.fold_left
            (fun acc p -> max acc level_of.(p - id_base))
            0
            same_node_parents.(t.Task.id - id_base)
        in
        let level = 1 + max operand_floor parent_floor in
        level_of.(t.Task.id - id_base) <- level;
        (t, level))
      tasks
  in
  Array.stable_sort (fun ((_ : Task.t), la) ((_ : Task.t), lb) -> compare la lb) leveled;
  let tasks = Array.to_list leveled in
  let group_syncs = Hashtbl.create 16 in
  List.iter
    (fun ((t : Task.t), _) ->
      if t.Task.syncs > 0 then
        Hashtbl.replace group_syncs t.Task.group
          (Option.value (Hashtbl.find_opt group_syncs t.Task.group) ~default:0 + t.Task.syncs))
    tasks;
  let reports =
    List.map
      (fun (meta, split, sched, default_est) ->
        {
          r_group = meta.group;
          est_movement = split.Splitter.est_movement;
          default_est;
          parallelism = sched.Schedule.parallelism;
          task_count = List.length sched.Schedule.tasks;
          offload_mix = sched.Schedule.offload_mix;
          syncs = Option.value (Hashtbl.find_opt group_syncs meta.group) ~default:0;
        })
      per_stmt
  in
  let predictions = List.concat_map (fun (_, sp, _, _) -> sp.Splitter.predictions) per_stmt in
  let roots =
    List.map (fun (meta, _, sched, _) -> (meta.group, sched.Schedule.root_task)) per_stmt
  in
  { tasks; reports; sync_count = List.length surviving; predictions; roots; sync_arcs = surviving }

(* Preprocessing objective: estimated links traversed plus the cost of the
   synchronizations the window structure induces, expressed in links
   (sync handshake cycles over per-link cycles). Movement alone is
   monotone in the window size; synchronizations are what push back. *)
let sync_links_of (ctx : Context.t) =
  let c = ctx.Context.config in
  max 1 (c.Ndp_sim.Config.sync_cycles / c.Ndp_sim.Config.hop_cycles) + 2

let estimate_of_compiled ~sync_links (compiled : compiled) =
  let movement = List.fold_left (fun acc r -> acc + r.est_movement) 0 compiled.reports in
  movement + (sync_links * compiled.sync_count)

let movement_estimate (ctx : Context.t) metas ~window =
  let ctx = Context.fork_for_estimate ctx in
  let sync_links = sync_links_of ctx in
  let windows = chunk metas window in
  List.fold_left
    (fun acc w -> acc + estimate_of_compiled ~sync_links (compile ctx w))
    0 windows

(* Like [movement_estimate], but against a forked context and with the
   nest sample's dependence analysis computed once ([all_deps], indices
   into [sample]) and sliced per chunk: a dependence whose endpoints both
   fall inside a chunk is exactly what analyzing the chunk alone would
   find (the analysis is pairwise), so re-deriving it per candidate
   window size only repeats work. *)
let estimate_sliced (ctx : Context.t) sample all_deps ~window =
  let ctx = Context.fork_for_estimate ctx in
  let sync_links = sync_links_of ctx in
  let n = Array.length sample in
  let rec go lo acc =
    if lo >= n then acc
    else begin
      let hi = min n (lo + window) in
      let metas = Array.to_list (Array.sub sample lo (hi - lo)) in
      let deps =
        List.filter_map
          (fun (d : Dep.dep) ->
            if d.Dep.src >= lo && d.Dep.dst < hi then
              Some { d with Dep.src = d.Dep.src - lo; Dep.dst = d.Dep.dst - lo }
            else None)
          all_deps
      in
      go hi (acc + estimate_of_compiled ~sync_links (compile ~deps ctx metas))
    end
  in
  go 0 0

(* The preprocessing estimates movement on a prefix of the instance stream;
   loop iterations are statistically uniform, so a few hundred instances
   characterize the nest. *)
let preprocessing_sample = 256

let choose_size ?pool (ctx : Context.t) metas ~max:max_size =
  let sample = Array.of_list (List.filteri (fun i _ -> i < preprocessing_sample) metas) in
  let all_deps =
    Dep.analyze ctx.Context.compiler_resolve
      (Array.to_list (Array.map (fun m -> m.inst) sample))
  in
  let estimate w = estimate_sliced ctx sample all_deps ~window:w in
  if max_size < 1 then 1
  else begin
    (* Size 1 is evaluated first and serially: it resolves (and thereby
       page-allocates) every address the sample can reach, so the
       remaining candidates — possibly running concurrently on forked
       contexts — only ever read the machine's page table and predictor. *)
    let m1 = estimate 1 in
    let rest = List.init (max 0 (max_size - 1)) (fun i -> i + 2) in
    let estimates =
      match pool with
      | Some p -> Ndp_prelude.Pool.parallel_map p estimate rest
      | None -> List.map estimate rest
    in
    let best_w, _ =
      List.fold_left2
        (fun (best_w, best_m) w m -> if m < best_m then (w, m) else (best_w, best_m))
        (1, m1) rest estimates
    in
    best_w
  end

let choose_size_reanalyze (ctx : Context.t) metas ~max:max_size =
  let sample = List.filteri (fun i _ -> i < preprocessing_sample) metas in
  let rec best w best_w best_m =
    if w > max_size then best_w
    else begin
      let m = movement_estimate ctx sample ~window:w in
      if m < best_m then best (w + 1) w m else best (w + 1) best_w best_m
    end
  in
  best 1 1 max_int
