module Task = Ndp_sim.Task
module Dep = Ndp_ir.Dependence

type meta = { group : int; default_node : int; inst : Dep.instance }

type stmt_report = {
  r_group : int;
  est_movement : int;
  default_est : int;
  parallelism : int;
  task_count : int;
  offload_mix : Task.op_mix;
  syncs : int;
}

type compiled = {
  tasks : (Task.t * int) list;
  reports : stmt_report list;
  sync_count : int;
  predictions : (int * bool) list;
  roots : (int * int) list;
  sync_arcs : (int * int) list;
}

(* The root of the statement MST is the node the default placement
   assigned the iteration to (Figure 8: node i computes the final
   combine); the result's write-back still goes to its home bank, which
   the engine models in the store path. Keeping the final subcomputation
   on the assigned node preserves the default's iteration-level balance —
   rooting at the LHS home bank would serialize the 8 statements sharing
   an output cache line onto one node. *)
let store_node_of (_ctx : Context.t) meta = meta.default_node

let chunk list size =
  if size <= 0 then invalid_arg "Window.chunk: size must be positive";
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if n = size then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (n + 1) rest
  in
  go [] [] 0 list

let compile (ctx : Context.t) metas =
  Context.clear_reuse ctx;
  let per_stmt =
    List.map
      (fun meta ->
        let stmt = meta.inst.Dep.stmt in
        let env = meta.inst.Dep.env in
        let store_node = store_node_of ctx meta in
        let split = Splitter.split ctx ~store_node stmt env in
        let default_est = Splitter.default_movement ctx ~store_node stmt env in
        (* Splitting must satisfy the minimum-data-movement requirement:
           when the MST saves nothing over fetching every operand to the
           store node (tiny network footprints — the paper's Cholesky/LU
           case), the statement executes whole on its store node. *)
        (* The estimate counts links only; synchronization and partial-
           result forwarding are not in it, so splitting must clear a
           margin before it is worth doing. *)
        let margin_num, margin_den = (7, 10) in
        let split =
          if split.Splitter.est_movement * margin_den < default_est * margin_num then split
          else { (Splitter.unsplit split) with Splitter.est_movement = default_est }
        in
        let sched = Schedule.schedule ctx ~group:meta.group split stmt env in
        Context.advance_statement ctx;
        (* Propagate this statement's L1 placements to later statements in
           the window (the variable2node map of Algorithm 1, line 37). *)
        List.iter (fun (line, node) -> Context.note_cached ctx ~line ~node) sched.Schedule.placements;
        (match split.Splitter.store with
        | Some (va, _) ->
          Context.note_cached ctx ~line:(Location.line_of ctx va) ~node:store_node
        | None -> ());
        (meta, split, sched, default_est))
      metas
  in
  (* Inter-statement dependences (flow/anti/output, including conservative
     may-deps) become arcs from the producer's final task to the consuming
     statement's task graph. *)
  let instances = List.map (fun m -> m.inst) metas in
  let deps = Dep.analyze ctx.compiler_resolve instances in
  let arr = Array.of_list per_stmt in
  let inter_arcs =
    List.filter_map
      (fun (d : Dep.dep) ->
        let _, _, src_sched, _ = arr.(d.Dep.src) in
        let _, _, dst_sched, _ = arr.(d.Dep.dst) in
        let producer = src_sched.Schedule.root_task in
        let consumer = dst_sched.Schedule.root_task in
        if producer = consumer then None else Some (producer, consumer, d.Dep.kind))
      deps
  in
  let join_arcs = List.concat_map (fun (_, _, s, _) -> s.Schedule.join_arcs) per_stmt in
  (* A producer and consumer on the same node are ordered by the node's
     program; only cross-node waits need a synchronization handshake. *)
  let node_of_task = Hashtbl.create 64 in
  List.iter
    (fun (_, _, s, _) ->
      List.iter
        (fun (t : Task.t) -> Hashtbl.replace node_of_task t.Task.id t.Task.node)
        s.Schedule.tasks)
    per_stmt;
  let cross_node (p, c) = Hashtbl.find_opt node_of_task p <> Hashtbl.find_opt node_of_task c in
  (* Dropping a same-node arc is only sound if the node really does run the
     producer first. The level-major emission below orders a node's program
     by level, so the dropped arc must still raise the consumer's level
     above the producer's — otherwise a consumer with a shallower task tree
     would be emitted (and executed) before its producer. *)
  let same_node_parents = Hashtbl.create 16 in
  List.iter
    (fun (p, c, _) ->
      if not (cross_node (p, c)) then
        Hashtbl.replace same_node_parents c
          (p :: Option.value (Hashtbl.find_opt same_node_parents c) ~default:[]))
    inter_arcs;
  let all_arcs =
    List.filter cross_node (join_arcs @ List.map (fun (p, c, _) -> (p, c)) inter_arcs)
  in
  let surviving = Sync_min.minimize ~enabled:ctx.options.Context.sync_minimize all_arcs in
  let sync_of = Sync_min.syncs_per_consumer surviving in
  (* Inter-statement arcs that survive also order execution: attach them as
     Result operands (flow deps carry a cache line; anti/output deps carry
     a token). *)
  let extra_operands = Hashtbl.create 16 in
  List.iter
    (fun (p, c, kind) ->
      if List.mem (p, c) surviving then begin
        let bytes = match kind with Dep.Flow | Dep.Anti | Dep.Output -> 8 in
        let cur = Option.value (Hashtbl.find_opt extra_operands c) ~default:[] in
        Hashtbl.replace extra_operands c (Task.Result { producer = p; bytes } :: cur)
      end)
    inter_arcs;
  let finalize (task : Task.t) =
    let extras = Option.value (Hashtbl.find_opt extra_operands task.Task.id) ~default:[] in
    let syncs = Option.value (Hashtbl.find_opt sync_of task.Task.id) ~default:0 in
    { task with Task.operands = task.Task.operands @ extras; Task.syncs }
  in
  let tasks = List.concat_map (fun (_, _, s, _) -> List.map finalize s.Schedule.tasks) per_stmt in
  (* Emit the window level-by-level (all dependency-free subcomputations
     first), so a node's generated program never blocks a ready
     subcomputation behind one that is still waiting for remote partial
     results — the interleaving the paper's code generator produces
     (Figure 8). The sort is stable, preserving producer-before-consumer
     within a level chain. *)
  let level_of = Hashtbl.create 64 in
  List.iter
    (fun (t : Task.t) ->
      let producer_level = function
        | Task.Result { producer; bytes = _ } ->
          Option.value (Hashtbl.find_opt level_of producer) ~default:0
        | Task.Load _ -> 0
      in
      let operand_floor =
        List.fold_left (fun acc op -> max acc (producer_level op)) 0 t.Task.operands
      in
      (* Same-node arcs have no Result operand; their ordering obligation
         lives entirely in this level assignment. *)
      let parent_floor =
        List.fold_left
          (fun acc p -> max acc (Option.value (Hashtbl.find_opt level_of p) ~default:0))
          0
          (Option.value (Hashtbl.find_opt same_node_parents t.Task.id) ~default:[])
      in
      let level = 1 + max operand_floor parent_floor in
      Hashtbl.replace level_of t.Task.id level)
    tasks;
  let tasks =
    List.stable_sort
      (fun (a, la) (b, lb) ->
        ignore (a : Task.t);
        ignore (b : Task.t);
        compare la lb)
      (List.map (fun (t : Task.t) -> (t, Hashtbl.find level_of t.Task.id)) tasks)
  in
  let group_syncs = Hashtbl.create 16 in
  List.iter
    (fun ((t : Task.t), _) ->
      if t.Task.syncs > 0 then
        Hashtbl.replace group_syncs t.Task.group
          (Option.value (Hashtbl.find_opt group_syncs t.Task.group) ~default:0 + t.Task.syncs))
    tasks;
  let reports =
    List.map
      (fun (meta, split, sched, default_est) ->
        {
          r_group = meta.group;
          est_movement = split.Splitter.est_movement;
          default_est;
          parallelism = sched.Schedule.parallelism;
          task_count = List.length sched.Schedule.tasks;
          offload_mix = sched.Schedule.offload_mix;
          syncs = Option.value (Hashtbl.find_opt group_syncs meta.group) ~default:0;
        })
      per_stmt
  in
  let predictions = List.concat_map (fun (_, sp, _, _) -> sp.Splitter.predictions) per_stmt in
  let roots =
    List.map (fun (meta, _, sched, _) -> (meta.group, sched.Schedule.root_task)) per_stmt
  in
  { tasks; reports; sync_count = List.length surviving; predictions; roots; sync_arcs = surviving }

(* Preprocessing objective: estimated links traversed plus the cost of the
   synchronizations the window structure induces, expressed in links
   (sync handshake cycles over per-link cycles). Movement alone is
   monotone in the window size; synchronizations are what push back. *)
let movement_estimate (ctx : Context.t) metas ~window =
  let ctx = Context.fork_for_estimate ctx in
  let sync_links =
    let c = ctx.Context.config in
    max 1 (c.Ndp_sim.Config.sync_cycles / c.Ndp_sim.Config.hop_cycles) + 2
  in
  let windows = chunk metas window in
  List.fold_left
    (fun acc w ->
      let compiled = compile ctx w in
      let movement =
        List.fold_left (fun acc r -> acc + r.est_movement) 0 compiled.reports
      in
      acc + movement + (sync_links * compiled.sync_count))
    0 windows

(* The preprocessing estimates movement on a prefix of the instance stream;
   loop iterations are statistically uniform, so a few hundred instances
   characterize the nest. *)
let preprocessing_sample = 256

let choose_size (ctx : Context.t) metas ~max:max_size =
  let sample = List.filteri (fun i _ -> i < preprocessing_sample) metas in
  let rec best w best_w best_m =
    if w > max_size then best_w
    else begin
      let m = movement_estimate ctx sample ~window:w in
      if m < best_m then best (w + 1) w m else best (w + 1) best_w best_m
    end
  in
  best 1 1 max_int
