module Task = Ndp_sim.Task
module Tree = Ndp_graph.Rooted_tree

type t = {
  tasks : Task.t list;
  root_task : int;
  join_arcs : (int * int) list;
  parallelism : int;
  offload_mix : Task.op_mix;
  placements : (int * int) list;
}

(* What a child subtree hands to its parent: either a finished task whose
   result travels up, or a single data item the parent loads itself. *)
type upward =
  | From_task of { task : int; bytes : int }
  | Deferred of Location.t

let take k list =
  let rec go k acc = function
    | rest when k = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (k - 1) (x :: acc) rest
  in
  go k [] list

let load_operand (ctx : Context.t) env (loc : Location.t) =
  let va =
    match loc.Location.va with
    | Some va -> Some va
    | None -> ctx.runtime_resolve loc.Location.ref_ env
  in
  Option.map (fun va -> Task.Load { va; bytes = loc.Location.bytes }) va

(* Pick the node that executes a combine: the MST parent node first (the
   minimum-movement choice), then its children, skipping overloaded nodes
   per the 10% rule. The root combine is pinned to the store node. *)
(* Expected core occupancy of running a combine at [node] — the same
   formula the engine charges, evaluated with the compiler's location and
   hit/miss knowledge, so the balance veto tracks reality. *)
let expected_occupancy (ctx : Context.t) ~node ~ops_cost ~items =
  let c = ctx.Context.config in
  let latency (loc : Location.t) =
    if loc.Location.in_l1 && loc.Location.node = node then c.Ndp_sim.Config.l1_hit_cycles
    else begin
      let travel = 2 * Context.distance ctx node loc.Location.node * c.Ndp_sim.Config.hop_cycles in
      let service =
        match loc.Location.predicted_hit with
        | Some false -> c.Ndp_sim.Config.ddr_cycles
        | Some true | None -> c.Ndp_sim.Config.l2_hit_cycles
      in
      travel + service + c.Ndp_sim.Config.l1_hit_cycles
    end
  in
  let stall = List.fold_left (fun acc l -> acc + latency l) 0 items in
  (List.length items * c.Ndp_sim.Config.load_issue_cycles)
  + (ops_cost * c.Ndp_sim.Config.op_cycles)
  + int_of_float ((1.0 -. c.Ndp_sim.Config.mlp_overlap) *. float_of_int stall)

let choose_exec_node (ctx : Context.t) ~pinned ~preferred ~alternatives ~ops_cost ~items =
  let occ node = expected_occupancy ctx ~node ~ops_cost ~items in
  if pinned then (preferred, occ preferred)
  else begin
    let candidates =
      preferred
      :: List.sort (fun a b -> compare ctx.Context.loads.(a) ctx.Context.loads.(b)) alternatives
    in
    (* Under repair, prefer healthy hosts outright; if every candidate is
       avoided the final repair sweep will remap the task. *)
    let candidates =
      match List.filter (fun n -> not (Context.avoided ctx n)) candidates with
      | [] -> candidates
      | healthy -> healthy
    in
    (* Occupancy is pure in the candidate, so price each one once: the
       balance scan and the fallback minimum below both read the cache
       instead of re-walking the item list per comparison. *)
    let priced = List.map (fun n -> (n, occ n)) candidates in
    match List.find_opt (fun (n, o) -> Context.balanced ctx ~node:n ~cost:o) priced with
    | Some hit -> hit
    | None ->
      List.fold_left
        (fun ((bn, bo) as best) ((n, o) as cand) ->
          if ctx.Context.loads.(n) + o < ctx.Context.loads.(bn) + bo then cand else best)
        (List.hd priced) priced
  end

let schedule (ctx : Context.t) ~group (split : Splitter.t) stmt env =
  let all_ops = Ndp_ir.Expr.ops stmt.Ndp_ir.Stmt.rhs in
  let ops_pool = ref all_ops in
  let draw k =
    let taken, rest = take k !ops_pool in
    ops_pool := rest;
    taken
  in
  let items_of node =
    Option.value (List.assoc_opt node split.Splitter.items_at) ~default:[]
  in
  let tasks = ref [] in
  let join_arcs = ref [] in
  let placements = ref [] in
  let offload = ref Task.zero_mix in
  (* Task ids drawn during this call are contiguous from [id_base], so the
     per-task level table is a growable array instead of a hashtable. *)
  let id_base = ctx.Context.next_task in
  let levels = ref (Array.make 16 0) in
  let set_level id l =
    let i = id - id_base in
    let a = !levels in
    let a =
      if i < Array.length a then a
      else begin
        let n = ref (Array.length a * 2) in
        while i >= !n do
          n := !n * 2
        done;
        let grown = Array.make !n 0 in
        Array.blit a 0 grown 0 (Array.length a);
        levels := grown;
        grown
      end
    in
    a.(i) <- l
  in
  let level_of id =
    let i = id - id_base in
    let a = !levels in
    if i >= 0 && i < Array.length a then a.(i) else 0
  in
  let note_placement exec (loc : Location.t) =
    match loc.Location.va with
    | Some va -> placements := (Location.line_of ctx va, exec) :: !placements
    | None -> ()
  in
  let emit ~node ~ops ~operands ~store ~label ~level ~bcost =
    let id = Context.fresh_task_id ctx in
    let task = Task.make ~id ~group ~node ~ops ~operands ?store ~label () in
    tasks := task :: !tasks;
    Context.add_load ctx ~node ~cost:(max 1 bcost);
    if node <> split.Splitter.store_node then offload := Task.mix_add !offload task.Task.mix;
    set_level id level;
    task
  in
  (* Degenerate case: the whole statement's data sits on one node. *)
  let single_node_schedule node =
    let locs = items_of node in
    let operands = List.filter_map (load_operand ctx env) locs in
    let final_ops = draw (List.length all_ops) in
    let bcost =
      expected_occupancy ctx ~node ~ops_cost:(Task.cost_of_ops final_ops) ~items:locs
    in
    let task =
      emit ~node ~ops:final_ops ~operands ~store:split.Splitter.store
        ~label:("g" ^ string_of_int group ^ ":final")
        ~level:1 ~bcost
    in
    List.iter (note_placement node) locs;
    {
      tasks = List.rev !tasks;
      root_task = task.Task.id;
      join_arcs = [];
      parallelism = 1;
      offload_mix = !offload;
      placements = !placements;
    }
  in
  if split.Splitter.edges = [] then single_node_schedule split.Splitter.store_node
  else begin
    let tree = Tree.of_edges ~root:split.Splitter.store_node split.Splitter.edges in
    let rec visit vertex =
      let children = Tree.children tree vertex in
      let child_results = List.map visit children in
      let locs = items_of vertex in
      let is_root = vertex = split.Splitter.store_node in
      let local_loads = List.filter_map (load_operand ctx env) locs in
      let deferred_loads =
        List.filter_map
          (function Deferred loc -> load_operand ctx env loc | From_task _ -> None)
          child_results
      in
      let deferred_locs =
        List.filter_map
          (function Deferred loc -> Some loc | From_task _ -> None)
          child_results
      in
      let result_ops =
        List.filter_map
          (function
            | From_task { task; bytes } -> Some (Task.Result { producer = task; bytes })
            | Deferred _ -> None)
          child_results
      in
      let inputs = List.length local_loads + List.length deferred_loads + List.length result_ops in
      if (not is_root) && inputs = 1 && result_ops = [] then begin
        (* A lone data item: no computation here; the parent fetches it
           directly (the leaf-node case of the MST walk). *)
        match locs @ deferred_locs with
        | [ loc ] -> Deferred loc
        | _ -> assert false
      end
      else begin
        let ops = if is_root then draw (List.length !ops_pool) else draw (max 0 (inputs - 1)) in
        let alternatives =
          (* "Skips this node and moves to the next one" (4.5): the result
             travels toward the parent anyway, so every node on the mesh
             route to the parent can host the combine without adding a
             single link of movement; the children are equally free. *)
          match Tree.parent tree vertex with
          | None -> List.sort_uniq compare children
          | Some parent ->
            (* The shared per-mesh route table; same node sequence
               [xy_route] yields, with no per-visit route allocation. *)
            let nodes = Ndp_noc.Mesh.route_nodes (Context.mesh ctx) ~src:vertex ~dst:parent in
            List.sort_uniq compare (Array.fold_right (fun n acc -> n :: acc) nodes children)
        in
        let exec, bcost =
          choose_exec_node ctx ~pinned:is_root ~preferred:vertex ~alternatives
            ~ops_cost:(Task.cost_of_ops ops) ~items:(locs @ deferred_locs)
        in
        let level =
          let producer_level = function
            | Task.Result { producer; bytes = _ } -> level_of producer
            | Task.Load _ -> 0
          in
          1 + List.fold_left (fun acc op -> max acc (producer_level op)) 0 result_ops
        in
        let operands = local_loads @ deferred_loads @ result_ops in
        let store = if is_root then split.Splitter.store else None in
        let label =
          if is_root then "g" ^ string_of_int group ^ ":final"
          else "g" ^ string_of_int group ^ ":sub@" ^ string_of_int exec
        in
        let task = emit ~node:exec ~ops ~operands ~store ~label ~level ~bcost in
        List.iter (note_placement exec) (locs @ deferred_locs);
        if List.length result_ops >= 2 then
          List.iter
            (function
              | Task.Result { producer; bytes = _ } -> join_arcs := (producer, task.Task.id) :: !join_arcs
              | Task.Load _ -> ())
            result_ops;
        (* A forwarded partial result is a single scalar, not a line. *)
        From_task { task = task.Task.id; bytes = Context.bytes_of ctx stmt.Ndp_ir.Stmt.lhs }
      end
    in
    (match visit split.Splitter.store_node with
    | From_task _ -> ()
    | Deferred _ -> assert false);
    let tasks = List.rev !tasks in
    let root_task =
      match List.rev tasks with
      | last :: _ -> last.Task.id
      | [] -> assert false
    in
    let parallelism =
      let max_level =
        List.fold_left (fun acc (t : Task.t) -> max acc (level_of t.Task.id)) 1 tasks
      in
      let counts = Array.make (max_level + 1) 0 in
      List.iter
        (fun (t : Task.t) ->
          let l = level_of t.Task.id in
          counts.(l) <- counts.(l) + 1)
        tasks;
      Array.fold_left max 1 counts
    in
    {
      tasks;
      root_task;
      join_arcs = List.rev !join_arcs;
      parallelism;
      offload_mix = !offload;
      placements = !placements;
    }
  end

(* Remap the schedule off the repair plan's avoided nodes. The balance
   veto already steers most combines to healthy hosts; this sweep catches
   the rest (the pinned store-node root, nodes hosting located data).
   Every avoided node maps to its nearest healthy node under the
   fault-aware distance, ties broken by lowest id — a pure function of the
   plan, so repaired schedules are identical across [--jobs] values. Must
   run before [Window.compile] derives cross-node arcs, so the sync
   structure is computed against the repaired placement. *)
let repair (ctx : Context.t) sched =
  match ctx.Context.repair with
  | None -> sched
  | Some plan ->
    if Ndp_fault.Plan.avoided_nodes plan = [] then sched
    else begin
      let n = Ndp_noc.Mesh.size (Context.mesh ctx) in
      let substitute =
        Array.init n (fun node ->
            if not (Ndp_fault.Plan.avoided plan node) then node
            else begin
              let best = ref node and best_d = ref max_int in
              for cand = 0 to n - 1 do
                if not (Ndp_fault.Plan.avoided plan cand) then begin
                  let d = Context.distance ctx node cand in
                  if d < !best_d then begin
                    best := cand;
                    best_d := d
                  end
                end
              done;
              !best
            end)
      in
      let remap_task (t : Task.t) =
        let node = substitute.(t.Task.node) in
        if node = t.Task.node then t
        else begin
          ctx.Context.remapped_tasks <- ctx.Context.remapped_tasks + 1;
          { t with Task.node }
        end
      in
      {
        sched with
        tasks = List.map remap_task sched.tasks;
        placements =
          List.map (fun (line, node) -> (line, substitute.(node))) sched.placements;
      }
    end
