(** Producer→consumer statement fusion (pre-MST coalescing).

    Within one nest, a statement whose output has exactly one live reader
    — the next statement of a chain, in the same window chunk — can run
    on the same node as that reader with its write-back elided: the
    intermediate value stays in the node's L1 and never crosses the NoC.
    The pass plans such chains before MST scheduling; every member of a
    chain is forced to execute whole on the chain's node (a single
    Kruskal vertex), and all stores but the tail's become L1-local.

    Legality ("first-kill" rule, under the all-pairs dependence analysis):
    the live readers of instance [i] are the flow-dependence consumers
    positioned before the first output dependence from [i] (the first
    re-write of the element kills later reads). A store is elided only
    when those live readers are exactly the single in-chain consumer,
    both statements are fully affine, no may-dependence touches either
    instance, the output array is local to the nest (never read through
    an index-array indirection, never referenced by another nest), both
    instances share a window chunk and a default node, and the chain's
    line-granular footprint fits the capacity bound. A capacity bound of
    0 disables fusion entirely (the identity pass).

    Profitability: fusing forces each member to run unsplit at the chain
    node, so operands that the MST split would have consumed near their
    homes all travel there instead. A chain segment is kept only when the
    write-back links its elisions save exceed that unsplit penalty,
    priced with {!Splitter} estimates on a {!Context.fork_for_estimate}
    copy (real compilation state is untouched). *)

type slot = {
  f_node : int; (** the chain's node: every member executes whole here *)
  f_elide : bool; (** elide this member's write-back (L1-local store) *)
}

type decision = {
  d_nest : string;
  d_stmts : int list;
      (** statement indices (within the nest body) of the chain,
          producer first *)
  d_arrays : string list; (** intermediate arrays whose stores are elided *)
  d_instances : int; (** fused chain instances over the stream *)
  d_elided_stores : int;
  d_pred_saved_flit_hops : int;
      (** predicted NoC saving: one line write-back from the chain node to
          the output's home bank per elided store *)
}

val plan :
  Context.t ->
  nest:string ->
  window:int ->
  capacity:int ->
  shared:(string, unit) Hashtbl.t ->
  default_node:int array ->
  Ndp_ir.Dependence.instance array ->
  Ndp_ir.Dependence.dep array ->
  slot option array * decision list
(** Plan fusion over one nest's full instance stream. [window] is the
    chunk size the stream will be compiled under (chains never straddle a
    chunk boundary), [capacity] the footprint bound in bytes, [shared]
    the arrays fusion must never elide (referenced by another nest or
    used as an index array), [default_node] the default placement per
    instance and [deps] the nest-wide dependence analysis (indices into
    the instance array). The returned slot array is parallel to the
    instance array; [None] means the instance is not fused. Decisions are
    aggregated per (chain statement signature), sorted for determinism. *)
