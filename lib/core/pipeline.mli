(** End-to-end driver: compile a kernel under a placement scheme and
    execute it on the simulated manycore, producing the metrics the
    paper's evaluation reports.

    Compilation and execution are interleaved per window, so the compiler's
    L2 miss predictor is trained by the access stream it actually induces
    (the profiling-on-beginning-iterations effect of Section 4.5), and the
    simulated L1s see exactly the schedule the compiler produced. *)

type window_policy = Adaptive | Analytic | Fixed of int

type part_options = {
  window : window_policy;
  reuse_aware : bool; (** variable2node reuse (Section 4.3) *)
  sync_minimize : bool; (** transitive-closure sync elimination *)
  level_based : bool; (** nested-set priority levels *)
  balance_threshold : float option; (** [None]: the config's 10% *)
  ideal_data : bool; (** perfect analysis + location (Section 6.4) *)
  use_inspector : bool; (** executor phase for indirect accesses *)
  fuse : bool;
      (** producer→consumer fusion ({!Fusion}): chains schedule as one
          Kruskal vertex and intermediate write-backs never cross the NoC *)
  fuse_capacity : int option;
      (** footprint bound in bytes for one fused chain; [None] uses the
          configured L1 size, [Some 0] makes fusion the identity pass *)
}

type scheme = Default | Partitioned of part_options

val partitioned_defaults : part_options
(** Adaptive window, reuse-aware, sync-minimized, level-based, inspector
    enabled — the paper's full scheme. *)

val scheme_name : scheme -> string

(** Counterfactual knobs for the isolation schemes (Figure 18) and the
    data-mapping comparison (Figure 23). *)
type tweaks = {
  l1_boost : float; (** S1: convert L1 misses to hits with this probability *)
  distance_factor : float; (** S2: scale message path lengths; 1.0 = off *)
  mc_overrides : (int * int) list; (** Figure 23 page->MC re-homing *)
  cost_scale : float; (** S3: divide per-task compute cost; 1.0 = off *)
  extra_syncs : int; (** S4: add syncs to every statement task *)
}

val no_tweaks : tweaks

(** Evidence the schedule validator ([Ndp_analysis.Validate]) checks
    against: which instances were compiled into which tasks, in emission
    order, and under which ordering regime. Captured only when [run] is
    given [~validate:true]; empty otherwise. *)
type schedule_trace =
  | Serialized of {
      t_nest : string;
      t_metas : Window.meta list;
      t_tasks : Ndp_sim.Task.t list;
          (** default scheme: each task runs to completion before the next
              is issued, so emission order is a total happens-before *)
    }
  | Windowed of {
      t_nest : string;
      t_metas : Window.meta list;
      t_compiled : Window.compiled;
          (** one window of the partitioned scheme; ordering comes from
              result operands, surviving sync arcs and per-node program
              order of the emitted task list *)
    }

type result = {
  kernel_name : string;
  scheme_name : string;
  stats : Ndp_sim.Stats.t;
  energy : Ndp_sim.Energy.breakdown;
  exec_time : int;
  group_hops : int array; (** flit-hops per statement instance *)
  group_avg_latency : float array; (** mean network latency per instance *)
  parallelism : float array; (** subcomputation parallelism per instance *)
  group_syncs : int array; (** surviving synchronizations per instance *)
  sync_arcs : int; (** surviving synchronizations, whole run *)
  num_instances : int;
  offload_mix : Ndp_sim.Task.op_mix;
  analyzable_fraction : float;
  predictor_accuracy : float;
  windows_chosen : (string * int) list; (** per loop nest *)
  est_movement_total : int; (** compiler's own movement estimate *)
  tasks_emitted : int;
  remapped_tasks : int;
      (** subcomputations repair placed on a different node than the
          fault-free compiler would (avoided-node evictions plus
          degraded-weight rebalancing); always 0 without [~repair] *)
  node_finish : int array; (** per-node completion times *)
  node_busy : int array; (** per-node busy cycles (occupancy) *)
  fusion_decisions : Fusion.decision list;
      (** fusion chains applied, aggregated per (nest, chain statement
          signature); empty unless the scheme fuses. Fusion is skipped
          under fault repair (a remap would strand the L1-resident
          intermediate). *)
  traces : schedule_trace list; (** empty unless run with [~validate:true] *)
  emitted : Ndp_sim.Task.t list list;
      (** the task stream as issued to the engine, one sublist per engine
          call, before counterfactual tweaks; empty unless run with
          [~capture:true]. Feed to {!replay} to re-simulate the schedule
          under a different cost model without recompiling. *)
}

(** The primary entry point: a pipeline request as one record.

    [Job.t] is the record-based successor to {!run}'s optional-argument
    sprawl: everything that determines a compile+simulate outcome lives in
    one value, so the CLI, the serving daemon ([Ndp_serve]) and the tests
    build requests the same way, [Ndp_serve.Key] can hash them, and
    {!run_batch} can ship lists of them across a pool. *)
module Job : sig
  type t = {
    scheme : scheme;
    kernel : Kernel.t;
    config : Ndp_sim.Config.t;
    tweaks : tweaks;
    faults : Ndp_fault.Plan.t option;
    repair : bool;
    validate : bool; (** capture {!schedule_trace}s for the validator *)
    capture : bool; (** capture the emitted task stream for {!replay} *)
  }

  val make :
    ?config:Ndp_sim.Config.t ->
    ?tweaks:tweaks ->
    ?faults:Ndp_fault.Plan.t ->
    ?repair:bool ->
    ?validate:bool ->
    ?capture:bool ->
    scheme ->
    Kernel.t ->
    t
  (** Defaults: default config, no tweaks, no faults, no repair, no
      validation traces, no capture. *)

  val run : ?pool:Ndp_prelude.Pool.t -> ?obs:Ndp_obs.Sink.t -> t -> result
  (** Execute one job. See {!run} below for the semantics of the job
      fields and of [pool]/[obs]; the two entry points are the same code
      path. *)
end

val run :
  ?config:Ndp_sim.Config.t ->
  ?tweaks:tweaks ->
  ?validate:bool ->
  ?capture:bool ->
  ?pool:Ndp_prelude.Pool.t ->
  ?obs:Ndp_obs.Sink.t ->
  ?faults:Ndp_fault.Plan.t ->
  ?repair:bool ->
  scheme ->
  Kernel.t ->
  result
(** Deprecated thin wrapper over {!Job.make} + {!Job.run}, kept for one
    PR while external callers migrate; prefer {!Job}.

    [~validate:true] additionally records a {!schedule_trace} per emitted
    window (or per nest under the default scheme) so the schedule can be
    re-checked against ground-truth dependences after the run. [pool]
    parallelizes the adaptive window-size preprocessing across candidate
    sizes; the result is bit-identical with and without it. [obs] threads
    an observability sink through the machine and engine (per-link, cache,
    core metric families plus task/message trace events) and records each
    nest's chosen window size as a [core.window_size{nest=..}] gauge;
    observability never changes the result.

    [faults] injects an {!Ndp_fault.Plan} into the simulated machine (link
    degradation/kill retries, node stalls, MC backpressure); omitting it
    leaves every code path byte-identical to the fault-free simulator.
    [~repair:true] (meaningful only with [faults]) additionally hands the
    plan to the compiler: partitioning runs Kruskal over the surviving
    mesh with degraded link weights, the iteration assignment and the
    balance pass avoid stalled or isolated nodes and {!Schedule.repair}
    sweeps up anything still placed on one. Every subcomputation that ends
    up on a different node than under the fault-free assignment is counted
    in [remapped_tasks] and the [fault.remapped_tasks] counter. *)

(** {1 Batched and replayed simulation} *)

type batch_job = Job.t
(** A batch entry is an ordinary {!Job.t}. *)

val batch_job :
  ?config:Ndp_sim.Config.t ->
  ?tweaks:tweaks ->
  ?faults:Ndp_fault.Plan.t ->
  ?repair:bool ->
  scheme ->
  Kernel.t ->
  batch_job

val run_batch :
  ?pool:Ndp_prelude.Pool.t ->
  ?metrics:Ndp_obs.Metrics.Sharded.t ->
  batch_job list ->
  result list
(** Run every job, concurrently when given a [pool], returning results in
    input order. Each job is an independent simulation — its own machine,
    engine, context and inspector — so a batch is deterministic at any
    pool size and each result is byte-identical to the corresponding solo
    {!run}. [metrics] applies the [Metrics.Sharded] discipline at job
    granularity: every job fills its own private registry (jobs must not
    share instrument handles — a shared [Stats] counter would bleed one
    simulation's counts into another's result), and the registries are
    merged in input order and absorbed as one shard, so [Sharded.merged]
    afterwards yields totals identical at any pool size. *)

type replayed = {
  rp_stats : Ndp_sim.Stats.t;
  rp_energy : Ndp_sim.Energy.breakdown;
  rp_exec_time : int;
  rp_node_finish : int array;
  rp_node_busy : int array;
}

val replay :
  ?config:Ndp_sim.Config.t ->
  ?tweaks:tweaks ->
  ?obs:Ndp_obs.Sink.t ->
  Kernel.t ->
  Ndp_sim.Task.t list list ->
  replayed
(** Re-simulate a task stream captured by [run ~capture:true] on a fresh
    machine, skipping compilation. With the capture run's config and
    tweaks the replay is cycle-identical to the original simulation; with
    a different config it answers how the {e fixed} schedule performs
    under that cost model — the amortized inner loop of [bench sweep].
    Address-shape parameters (mesh dimensions, line/page size) must match
    the capture config, since operands carry resolved virtual addresses.
    Replay is fault-free: counterfactual hardware sweeps assume a healthy
    mesh. *)

val profile_page_accesses :
  ?config:Ndp_sim.Config.t -> Kernel.t -> (int * int) list
(** [(virtual page, node)] samples under the default placement — the
    profile input of the Figure 23 data-to-MC mapping. *)

val static_context : ?config:Ndp_sim.Config.t -> scheme -> Kernel.t -> Context.t
(** The compilation context exactly as {!run} would build it for the
    scheme — hot ranges, inspector execution, resolver choice, context
    options — but with no engine and no observability attached. This is
    the entry point for static analysis passes that must see the same
    compile-time world as the pipeline. *)

val nest_stream : Context.t -> Ndp_ir.Loop.nest -> first_group:int -> Window.meta list * int
(** The statement-instance stream of one nest in execution order, with the
    default iteration assignment applied — [(metas, next_first_group)]. *)
