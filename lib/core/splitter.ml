module Kruskal = Ndp_graph.Kruskal
module Mesh = Ndp_noc.Mesh

type t = {
  edges : Kruskal.edge list;
  items_at : (int * Location.t list) list;
  store_node : int;
  store : (int * int) option;
  nodes : int list;
  est_movement : int;
  predictions : (int * bool) list;
}

(* A component is the "single node" of the level-based optimization: either
   one located reference or an already-processed inner set, identified by
   the physical nodes its data occupies. *)
type component = { members : int list }

let min_pair ctx a b =
  let best (bu, bv, bw) u v =
    let w = Context.distance ctx u v in
    if w < bw then (u, v, w) else (bu, bv, bw)
  in
  List.fold_left
    (fun acc u -> List.fold_left (fun acc v -> best acc u v) acc b.members)
    (-1, -1, max_int)
    a.members

(* Kruskal over components: the candidate edge between two components is
   the concrete minimum-distance pair of member nodes ([Context.distance],
   so under a repair plan the tree grows over the surviving mesh with
   degraded link weights). [guf] is the statement-global union-find over
   physical nodes: Algorithm 1 pools the per-level MST edges into one
   MSTedges set, so an edge whose endpoints are already physically
   connected (by a sibling level's tree) would create a cycle and is
   skipped — the existing path is reused. *)
let mst_over_generic ctx ~guf ~uf components =
  let n = List.length components in
  let arr = Array.of_list components in
  let candidates = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let u, v, w = min_pair ctx arr.(i) arr.(j) in
      candidates := (w, i, j, u, v) :: !candidates
    done
  done;
  let sorted = List.sort compare !candidates in
  let pick acc (w, i, j, u, v) =
    if Ndp_graph.Union_find.union uf i j then
      (* A zero-weight merge means the components share a physical node:
         no link is traversed, so no tree edge is recorded. *)
      if w = 0 || not (Ndp_graph.Union_find.union guf u v) then acc
      else { Kruskal.u; v; weight = w } :: acc
    else acc
  in
  List.fold_left pick [] sorted

(* Allocation-free fast path of [mst_over_generic]: each candidate edge is
   packed into a single int with the fields in the significance order the
   tuple sort compared them — (weight, i, j, u, v), 6 bits per id field —
   so sorting the packed array is the identical total order and the
   Kruskal walk below visits candidates exactly as the list version did.
   Component counts and node ids stay under 64 on any mesh this simulator
   builds; the weight has the remaining 38 bits, far above any fault-plan
   route cost. The generic path remains for anything larger. *)
let field_mask = 0x3f

let mst_over ctx ~guf components =
  let n = List.length components in
  if n <= 1 then []
  else if n > field_mask || Ndp_graph.Union_find.capacity guf > field_mask + 1 then
    mst_over_generic ctx ~guf ~uf:(Ndp_graph.Union_find.create n) components
  else begin
    let arr = Array.of_list components in
    let cands = Array.make (n * (n - 1) / 2) 0 in
    let k = ref 0 in
    let overflow = ref false in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let bu = ref (-1) and bv = ref (-1) and bw = ref max_int in
        List.iter
          (fun u ->
            List.iter
              (fun v ->
                let w = Context.distance ctx u v in
                if w < !bw then begin
                  bu := u;
                  bv := v;
                  bw := w
                end)
              arr.(j).members)
          arr.(i).members;
        if !bw lsr 38 <> 0 then overflow := true;
        cands.(!k) <- (((((!bw lsl 6) lor i) lsl 6) lor j) lsl 12) lor (!bu lsl 6) lor !bv;
        incr k
      done
    done;
    if !overflow then mst_over_generic ctx ~guf ~uf:(Ndp_graph.Union_find.create n) components
    else begin
      Array.sort (fun (a : int) b -> compare a b) cands;
      let uf = Context.scratch_mst ctx ~at_least:n in
      let edges = ref [] in
      Array.iter
        (fun packed ->
          let v = packed land field_mask in
          let u = (packed lsr 6) land field_mask in
          let j = (packed lsr 12) land field_mask in
          let i = (packed lsr 18) land field_mask in
          let w = packed lsr 24 in
          if Ndp_graph.Union_find.union uf i j then
            if not (w = 0 || not (Ndp_graph.Union_find.union guf u v)) then
              edges := { Kruskal.u; v; weight = w } :: !edges)
        cands;
      !edges
    end
  end

let flat_refs stmt = Ndp_ir.Stmt.inputs stmt

let split (ctx : Context.t) ~store_node stmt env =
  let mesh = Context.mesh ctx in
  let items : (int, Location.t list) Hashtbl.t = Hashtbl.create 8 in
  let predictions = ref [] in
  let locate_item r =
    let loc = Location.locate ctx ~store_node r env in
    (match (loc.Location.predicted_hit, loc.Location.va) with
    | Some p, Some va -> predictions := (va, p) :: !predictions
    | _ -> ());
    let cur = Option.value (Hashtbl.find_opt items loc.Location.node) ~default:[] in
    Hashtbl.replace items loc.Location.node (loc :: cur);
    loc
  in
  let edges = ref [] in
  let guf =
    if Mesh.size mesh = Ndp_graph.Union_find.capacity ctx.Context.scratch_guf then
      Context.scratch_guf ctx
    else Ndp_graph.Union_find.create (Mesh.size mesh)
  in
  (* Process one nested-set level: place every item, recurse into sub-sets,
     then connect the level's components with an MST. Returns the member
     node set of the completed level. *)
  let rec process_level ?(extra = []) (set : Ndp_ir.Nested_set.t) =
    let component_of_item = function
      | Ndp_ir.Nested_set.Ref r ->
        let loc = locate_item r in
        Some { members = [ loc.Location.node ] }
      | Ndp_ir.Nested_set.Const _ -> None
      | Ndp_ir.Nested_set.Sub s -> Some { members = process_level s }
    in
    let components =
      List.filter_map component_of_item set.Ndp_ir.Nested_set.items
      @ List.map (fun n -> { members = [ n ] }) extra
    in
    (* Deduplicate identical singleton vertices (Algorithm 1, line 12). *)
    let components =
      List.fold_left
        (fun acc c ->
          match c.members with
          | [ n ] when List.exists (fun c' -> c'.members = [ n ]) acc -> acc
          | _ -> c :: acc)
        [] components
    in
    edges := mst_over ctx ~guf components @ !edges;
    List.sort_uniq compare (List.concat_map (fun c -> c.members) components)
  in
  let set =
    if ctx.options.Context.level_based then Ndp_ir.Nested_set.of_expr stmt.Ndp_ir.Stmt.rhs
    else
      (* Ablation: ignore priority levels, flattening all references. *)
      {
        Ndp_ir.Nested_set.items =
          List.map (fun r -> Ndp_ir.Nested_set.Ref r) (flat_refs stmt);
        level_ops = Ndp_ir.Expr.ops stmt.Ndp_ir.Stmt.rhs;
        reassociable = true;
      }
  in
  let nodes = process_level ~extra:[ store_node ] set in
  let store =
    Option.map
      (fun va -> (va, Context.bytes_of ctx stmt.Ndp_ir.Stmt.lhs))
      (ctx.runtime_resolve stmt.Ndp_ir.Stmt.lhs env)
  in
  let edges = !edges in
  {
    edges;
    items_at = Hashtbl.fold (fun node locs acc -> (node, List.rev locs) :: acc) items [];
    store_node;
    store;
    nodes;
    est_movement = Kruskal.total_weight edges;
    predictions = List.rev !predictions;
  }

let unsplit t =
  let all_items = List.concat_map snd t.items_at in
  {
    t with
    edges = [];
    items_at = [ (t.store_node, all_items) ];
    nodes = [ t.store_node ];
  }

let default_movement (ctx : Context.t) ~store_node stmt env =
  let movement_of r =
    match ctx.runtime_resolve r env with
    | None -> 0
    | Some va -> Context.distance ctx store_node (Ndp_sim.Machine.home_node ctx.machine ~va)
  in
  List.fold_left (fun acc r -> acc + movement_of r) 0 (Ndp_ir.Stmt.inputs stmt)
