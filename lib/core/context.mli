(** Shared compilation state threaded through the partitioning pass. *)

type options = {
  reuse_aware : bool;
      (** consult the variable2node map when locating data (multi-statement
          L1 reuse, Section 4.3) *)
  sync_minimize : bool; (** transitive-closure sync elimination (Section 4.5) *)
  level_based : bool;
      (** honour nested-set priority levels; when [false] the splitter
          flattens the statement (ablation) *)
  balance_threshold : float; (** load-balance slack, 0.10 in the paper *)
  ideal_location : bool;
      (** resolve locations from ground truth instead of the predictor
          (the "ideal data analysis" scenario, Section 6.4) *)
}

val default_options : Ndp_sim.Config.t -> options

type t = {
  machine : Ndp_sim.Machine.t;
  config : Ndp_sim.Config.t;
  predictor : Ndp_mem.Miss_predictor.t;
  compiler_resolve : Ndp_ir.Dependence.resolver;
  runtime_resolve : Ndp_ir.Dependence.resolver;
  arrays : Ndp_ir.Array_decl.t list;
  decls : Ndp_ir.Array_decl.t array; (** [arrays] staged for scanning *)
  scratch_guf : Ndp_graph.Union_find.t; (** splitter scratch, mesh-sized *)
  mutable scratch_mst : Ndp_graph.Union_find.t; (** splitter scratch, grown on demand *)
  loads : int array; (** accumulated op cost per node, for balancing *)
  mutable loads_total : int; (** running sum of [loads] *)
  var2node : (int, int * int) Hashtbl.t;
      (** VA cache line -> (node holding it in L1, statement stamp) *)
  var2node_fifo : int Queue.t;
  var2node_cap : int;
  mutable stmt_clock : int;
  mutable next_task : int;
  repair : Ndp_fault.Plan.t option;
      (** when set, partitioning plans against the faulted mesh *)
  mutable remapped_tasks : int;
      (** subcomputations moved off avoided nodes by {!Schedule.repair} *)
  options : options;
}

val create :
  machine:Ndp_sim.Machine.t ->
  compiler_resolve:Ndp_ir.Dependence.resolver ->
  runtime_resolve:Ndp_ir.Dependence.resolver ->
  arrays:Ndp_ir.Array_decl.t list ->
  ?repair:Ndp_fault.Plan.t ->
  options:options ->
  unit ->
  t

val distance : t -> int -> int -> int
(** Inter-node distance as the partitioner should see it: Manhattan hops
    normally; the fault-aware XY-route cost when a repair plan is set. *)

val avoided : t -> int -> bool
(** True when a repair plan marks the node as one to place no work on. *)

val fresh_task_id : t -> int

val bytes_of : t -> Ndp_ir.Reference.t -> int

val scratch_guf : t -> Ndp_graph.Union_find.t
(** The context's statement-global union-find scratch, reset to all
    singletons. Valid until the next [scratch_guf] call on this context. *)

val scratch_mst : t -> at_least:int -> Ndp_graph.Union_find.t
(** Per-MST union-find scratch with at least [at_least] elements, reset to
    all singletons. Valid until the next [scratch_mst] call. *)

val mesh : t -> Ndp_noc.Mesh.t

val clear_reuse : t -> unit
(** Reset the variable2node map (at window boundaries). *)

val note_cached : t -> line:int -> node:int -> unit
(** Record that a cache line was fetched into a node's L1, evicting the
    oldest entry when the modelled L1 capacity is exceeded. *)

val cached_node : t -> line:int -> int option
(** A placement is only trusted for a bounded number of subsequent
    statements ([reuse_horizon]) — the compile-time model of L1 pollution
    that makes very large windows unattractive (Section 4.4). *)

val advance_statement : t -> unit
(** Note that one statement of the current window has been scheduled. *)

val reuse_horizon : int

val add_load : t -> node:int -> cost:int -> unit

val balanced : t -> node:int -> cost:int -> bool
(** The 10%-rule: adding [cost] to [node] must not push it more than the
    threshold above the most loaded other node. *)

val fork_for_estimate : t -> t
(** Copy with private load/reuse/task-counter state, sharing the machine
    and predictor read-only — used by the window-size preprocessing, which
    must not disturb real compilation state. *)
