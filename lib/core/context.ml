type options = {
  reuse_aware : bool;
  sync_minimize : bool;
  level_based : bool;
  balance_threshold : float;
  ideal_location : bool;
}

let default_options (config : Ndp_sim.Config.t) =
  {
    reuse_aware = true;
    sync_minimize = true;
    level_based = true;
    balance_threshold = config.Ndp_sim.Config.balance_threshold;
    ideal_location = false;
  }

type t = {
  machine : Ndp_sim.Machine.t;
  config : Ndp_sim.Config.t;
  predictor : Ndp_mem.Miss_predictor.t;
  compiler_resolve : Ndp_ir.Dependence.resolver;
  runtime_resolve : Ndp_ir.Dependence.resolver;
  arrays : Ndp_ir.Array_decl.t list;
  decls : Ndp_ir.Array_decl.t array; (* [arrays] staged for scanning *)
  scratch_guf : Ndp_graph.Union_find.t; (* splitter scratch, mesh-sized *)
  mutable scratch_mst : Ndp_graph.Union_find.t; (* splitter scratch, grown on demand *)
  loads : int array;
  mutable loads_total : int; (* running sum of [loads], for [balanced] *)
  var2node : (int, int * int) Hashtbl.t; (* line -> node, statement stamp *)
  var2node_fifo : int Queue.t;
  var2node_cap : int;
  mutable stmt_clock : int;
  mutable next_task : int;
  repair : Ndp_fault.Plan.t option;
  mutable remapped_tasks : int;
  options : options;
}

let create ~machine ~compiler_resolve ~runtime_resolve ~arrays ?repair ~options () =
  let config = Ndp_sim.Machine.config machine in
  let map = Ndp_sim.Config.addr_map config in
  {
    machine;
    config;
    predictor =
      Ndp_mem.Miss_predictor.create
        ~capacity_blocks:config.Ndp_sim.Config.predictor_capacity_blocks map;
    compiler_resolve;
    runtime_resolve;
    arrays;
    decls = Array.of_list arrays;
    scratch_guf = Ndp_graph.Union_find.create (Ndp_noc.Mesh.size (Ndp_sim.Machine.mesh machine));
    scratch_mst = Ndp_graph.Union_find.create 16;
    loads = Array.make (Ndp_noc.Mesh.size (Ndp_sim.Machine.mesh machine)) 0;
    loads_total = 0;
    var2node = Hashtbl.create 256;
    var2node_fifo = Queue.create ();
    var2node_cap = config.Ndp_sim.Config.l1_size / config.Ndp_sim.Config.line_bytes;
    stmt_clock = 0;
    next_task = 0;
    repair;
    remapped_tasks = 0;
    options;
  }

(* Planner distance: Manhattan hops on a healthy mesh; under repair, the
   fault-aware XY-route cost (degraded links weigh more, killed links weigh
   the retry penalty), so Kruskal and the occupancy estimates route
   computation around injected faults. *)
let distance t u v =
  match t.repair with
  | None -> Ndp_noc.Mesh.distance (Ndp_sim.Machine.mesh t.machine) u v
  | Some plan -> Ndp_fault.Plan.distance plan u v

let avoided t node =
  match t.repair with
  | None -> false
  | Some plan -> Ndp_fault.Plan.avoided plan node

let fresh_task_id t =
  let id = t.next_task in
  t.next_task <- id + 1;
  id

(* Same lookup [Array_decl.find] performs, on the staged array with a
   physical-equality fast path: references reuse the parser's interned
   name strings, and this runs once per reference per statement visit. *)
let bytes_of t (r : Ndp_ir.Reference.t) =
  let name = r.Ndp_ir.Reference.array in
  let n = Array.length t.decls in
  let rec find j =
    if j >= n then raise Not_found
    else
      let d = t.decls.(j) in
      if d.Ndp_ir.Array_decl.name == name || String.equal d.Ndp_ir.Array_decl.name name then
        d.Ndp_ir.Array_decl.elem_size
      else find (j + 1)
  in
  find 0

(* Splitter scratch: one mesh-sized union-find reused across [split]
   calls, plus a second grown on demand for the per-level MSTs. Forked
   contexts get fresh instances, so pooled estimation never shares them. *)
let scratch_guf t =
  Ndp_graph.Union_find.reset t.scratch_guf;
  t.scratch_guf

let scratch_mst t ~at_least =
  if Ndp_graph.Union_find.capacity t.scratch_mst < at_least then
    t.scratch_mst <- Ndp_graph.Union_find.create at_least
  else Ndp_graph.Union_find.reset t.scratch_mst;
  t.scratch_mst

let mesh t = Ndp_sim.Machine.mesh t.machine

let clear_reuse t =
  Hashtbl.reset t.var2node;
  Queue.clear t.var2node_fifo;
  t.stmt_clock <- 0

(* How many subsequent statements a recorded L1 placement stays credible
   for: intervening subcomputations pollute the small L1s, so reuse
   assumptions beyond this horizon usually miss at runtime (Section 4.4).
   This is what makes the window-size preprocessing prefer moderate
   windows rather than growing without bound. *)
let reuse_horizon = 4

let advance_statement t = t.stmt_clock <- t.stmt_clock + 1

let note_cached t ~line ~node =
  if not (Hashtbl.mem t.var2node line) then begin
    Queue.push line t.var2node_fifo;
    (* Model L1 capacity: beyond it, the oldest tracked line is assumed
       evicted — the cache-pollution effect of large windows (4.4). *)
    if Queue.length t.var2node_fifo > t.var2node_cap then
      Hashtbl.remove t.var2node (Queue.pop t.var2node_fifo)
  end;
  Hashtbl.replace t.var2node line (node, t.stmt_clock)

let cached_node t ~line =
  match Hashtbl.find t.var2node line with
  | exception Not_found -> None
  | node, stamp -> if t.stmt_clock - stamp <= reuse_horizon then Some node else None

let add_load t ~node ~cost =
  t.loads.(node) <- t.loads.(node) + cost;
  t.loads_total <- t.loads_total + cost

let balanced t ~node ~cost =
  (* The paper phrases the rule as "no more than 10% extra load than the
     next highly-loaded node"; taken literally, several overloaded nodes
     validate each other (each is within 10% of the next). We compare to
     the fleet mean instead, which vetoes any emerging hot spot while
     leaving evenly-loaded nodes free. The [cost] grace keeps the very
     first assignments from being vetoed while the mean is still zero. *)
  let mean = float_of_int t.loads_total /. float_of_int (Array.length t.loads) in
  let would = float_of_int (t.loads.(node) + cost) in
  would <= ((1.0 +. t.options.balance_threshold) *. mean) +. float_of_int cost

let fork_for_estimate t =
  {
    t with
    scratch_guf = Ndp_graph.Union_find.create (Ndp_graph.Union_find.capacity t.scratch_guf);
    scratch_mst = Ndp_graph.Union_find.create 16;
    loads = Array.copy t.loads;
    var2node = Hashtbl.copy t.var2node;
    var2node_fifo = Queue.copy t.var2node_fifo;
  }
