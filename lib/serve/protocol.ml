module Json = Ndp_obs.Render.Json
module Pipeline = Ndp_core.Pipeline

type job_spec = {
  app : string;
  scheme : string;
  window : string;
  cluster : string;
  memory : string;
  tweaks : Pipeline.tweaks;
  faults : string;
  fault_seed : int option;
  repair : bool;
}

let default_spec ~app =
  {
    app;
    scheme = "partitioned";
    window = "adaptive";
    cluster = "quadrant";
    memory = "flat";
    tweaks = Pipeline.no_tweaks;
    faults = "";
    fault_seed = None;
    repair = false;
  }

type variant = { v_name : string; v_overrides : (string * int) list; v_tweaks : Pipeline.tweaks }

type request =
  | Ping
  | List_apps
  | Run of { spec : job_spec; metrics : bool }
  | Compile of job_spec
  | Profile of { spec : job_spec; interval : int; top : int }
  | Analyze of { spec : job_spec; threshold : float }
  | Inject of job_spec
  | Batch of job_spec list
  | Sweep of { spec : job_spec; variants : variant list }
  | Cache_stats
  | Metrics_dump
  | Metrics_text
  | Shutdown

(* The wire op string; also the access-log "op" field and the label of
   the per-op serve.request_ms histogram. *)
let op_name = function
  | Ping -> "ping"
  | List_apps -> "list"
  | Run _ -> "run"
  | Compile _ -> "compile"
  | Profile _ -> "profile"
  | Analyze _ -> "analyze"
  | Inject _ -> "inject"
  | Batch _ -> "batch"
  | Sweep _ -> "sweep"
  | Cache_stats -> "cache-stats"
  | Metrics_dump -> "metrics"
  | Metrics_text -> "metrics-text"
  | Shutdown -> "shutdown"

type envelope = { id : int; ok : bool; cached : bool; key : string }

(* ------------------------------------------------------------------ *)
(* JSON encoding                                                       *)

let tweaks_to_json (tw : Pipeline.tweaks) =
  Json.Obj
    [
      ("l1_boost", Json.Float tw.Pipeline.l1_boost);
      ("distance_factor", Json.Float tw.Pipeline.distance_factor);
      ( "mc_overrides",
        Json.List
          (List.map
             (fun (page, mc) -> Json.List [ Json.Int page; Json.Int mc ])
             tw.Pipeline.mc_overrides) );
      ("cost_scale", Json.Float tw.Pipeline.cost_scale);
      ("extra_syncs", Json.Int tw.Pipeline.extra_syncs);
    ]

let spec_to_json (s : job_spec) =
  Json.Obj
    [
      ("app", Json.Str s.app);
      ("scheme", Json.Str s.scheme);
      ("window", Json.Str s.window);
      ("cluster", Json.Str s.cluster);
      ("memory", Json.Str s.memory);
      ("tweaks", tweaks_to_json s.tweaks);
      ("faults", Json.Str s.faults);
      ("fault_seed", match s.fault_seed with None -> Json.Null | Some n -> Json.Int n);
      ("repair", Json.Bool s.repair);
    ]

let variant_to_json (v : variant) =
  Json.Obj
    [
      ("name", Json.Str v.v_name);
      ("config", Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) v.v_overrides));
      ("tweaks", tweaks_to_json v.v_tweaks);
    ]

let request_to_json ~id req =
  let op name fields = Json.Obj (("id", Json.Int id) :: ("op", Json.Str name) :: fields) in
  match req with
  | Ping -> op "ping" []
  | List_apps -> op "list" []
  | Run { spec; metrics } -> op "run" [ ("spec", spec_to_json spec); ("metrics", Json.Bool metrics) ]
  | Compile spec -> op "compile" [ ("spec", spec_to_json spec) ]
  | Profile { spec; interval; top } ->
    op "profile"
      [ ("spec", spec_to_json spec); ("interval", Json.Int interval); ("top", Json.Int top) ]
  | Analyze { spec; threshold } ->
    op "analyze" [ ("spec", spec_to_json spec); ("threshold", Json.Float threshold) ]
  | Inject spec -> op "inject" [ ("spec", spec_to_json spec) ]
  | Batch specs -> op "batch" [ ("specs", Json.List (List.map spec_to_json specs)) ]
  | Sweep { spec; variants } ->
    op "sweep"
      [ ("spec", spec_to_json spec); ("variants", Json.List (List.map variant_to_json variants)) ]
  | Cache_stats -> op "cache-stats" []
  | Metrics_dump -> op "metrics" []
  | Metrics_text -> op "metrics-text" []
  | Shutdown -> op "shutdown" []

let envelope_to_json (e : envelope) =
  Json.Obj
    [
      ("id", Json.Int e.id);
      ("ok", Json.Bool e.ok);
      ("cached", Json.Bool e.cached);
      ("key", Json.Str e.key);
    ]

(* ------------------------------------------------------------------ *)
(* JSON decoding                                                       *)

let ( let* ) = Result.bind

let get name j = match Json.member name j with Some v -> Ok v | None -> Error ("missing field " ^ name)

let get_str name j =
  let* v = get name j in
  match v with Json.Str s -> Ok s | _ -> Error ("field " ^ name ^ " must be a string")

let get_int name j =
  let* v = get name j in
  match v with Json.Int n -> Ok n | _ -> Error ("field " ^ name ^ " must be an integer")

let get_bool name j =
  let* v = get name j in
  match v with Json.Bool b -> Ok b | _ -> Error ("field " ^ name ^ " must be a boolean")

let get_float name j =
  let* v = get name j in
  match v with
  | Json.Float f -> Ok f
  | Json.Int n -> Ok (float_of_int n)
  | _ -> Error ("field " ^ name ^ " must be a number")

let tweaks_of_json j =
  let* l1_boost = get_float "l1_boost" j in
  let* distance_factor = get_float "distance_factor" j in
  let* cost_scale = get_float "cost_scale" j in
  let* extra_syncs = get_int "extra_syncs" j in
  let* overrides = get "mc_overrides" j in
  let* mc_overrides =
    match overrides with
    | Json.List xs ->
      List.fold_left
        (fun acc x ->
          let* acc = acc in
          match x with
          | Json.List [ Json.Int page; Json.Int mc ] -> Ok ((page, mc) :: acc)
          | _ -> Error "mc_overrides entries must be [page, mc] integer pairs")
        (Ok []) xs
      |> Result.map List.rev
    | _ -> Error "field mc_overrides must be a list"
  in
  Ok { Pipeline.l1_boost; distance_factor; mc_overrides; cost_scale; extra_syncs }

let spec_of_json j =
  let* app = get_str "app" j in
  let* scheme = get_str "scheme" j in
  let* window = get_str "window" j in
  let* cluster = get_str "cluster" j in
  let* memory = get_str "memory" j in
  let* tw = get "tweaks" j in
  let* tweaks = tweaks_of_json tw in
  let* faults = get_str "faults" j in
  let* fault_seed =
    let* v = get "fault_seed" j in
    match v with
    | Json.Null -> Ok None
    | Json.Int n -> Ok (Some n)
    | _ -> Error "field fault_seed must be an integer or null"
  in
  let* repair = get_bool "repair" j in
  Ok { app; scheme; window; cluster; memory; tweaks; faults; fault_seed; repair }

let variant_of_json j =
  let* v_name = get_str "name" j in
  let* cfg = get "config" j in
  let* v_overrides =
    match cfg with
    | Json.Obj kvs ->
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          match v with
          | Json.Int n -> Ok ((k, n) :: acc)
          | _ -> Error ("variant config field " ^ k ^ " must be an integer"))
        (Ok []) kvs
      |> Result.map List.rev
    | _ -> Error "variant config must be an object"
  in
  let* tw = get "tweaks" j in
  let* v_tweaks = tweaks_of_json tw in
  Ok { v_name; v_overrides; v_tweaks }

let list_of_json name of_json j =
  let* v = get name j in
  match v with
  | Json.List xs ->
    List.fold_left
      (fun acc x ->
        let* acc = acc in
        let* v = of_json x in
        Ok (v :: acc))
      (Ok []) xs
    |> Result.map List.rev
  | _ -> Error ("field " ^ name ^ " must be a list")

let request_of_json j =
  let* id = get_int "id" j in
  let* op = get_str "op" j in
  let* req =
    match op with
    | "ping" -> Ok Ping
    | "list" -> Ok List_apps
    | "run" ->
      let* s = get "spec" j in
      let* spec = spec_of_json s in
      let* metrics = get_bool "metrics" j in
      Ok (Run { spec; metrics })
    | "compile" ->
      let* s = get "spec" j in
      let* spec = spec_of_json s in
      Ok (Compile spec)
    | "profile" ->
      let* s = get "spec" j in
      let* spec = spec_of_json s in
      let* interval = get_int "interval" j in
      let* top = get_int "top" j in
      Ok (Profile { spec; interval; top })
    | "analyze" ->
      let* s = get "spec" j in
      let* spec = spec_of_json s in
      let* threshold = get_float "threshold" j in
      Ok (Analyze { spec; threshold })
    | "inject" ->
      let* s = get "spec" j in
      let* spec = spec_of_json s in
      Ok (Inject spec)
    | "batch" ->
      let* specs = list_of_json "specs" spec_of_json j in
      Ok (Batch specs)
    | "sweep" ->
      let* s = get "spec" j in
      let* spec = spec_of_json s in
      let* variants = list_of_json "variants" variant_of_json j in
      Ok (Sweep { spec; variants })
    | "cache-stats" -> Ok Cache_stats
    | "metrics" -> Ok Metrics_dump
    | "metrics-text" -> Ok Metrics_text
    | "shutdown" -> Ok Shutdown
    | other -> Error (Printf.sprintf "unknown op %S" other)
  in
  Ok (id, req)

let envelope_of_json j =
  let* id = get_int "id" j in
  let* ok = get_bool "ok" j in
  let* cached = get_bool "cached" j in
  let* key = get_str "key" j in
  Ok { id; ok; cached; key }

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)

(* A frame is "<decimal byte length>\n<payload>\n". Requests are one
   frame (the JSON object); responses are two — the envelope, then the
   raw body. Shipping the body as its own frame keeps cached responses
   byte-identical: the server never reparses or reserializes a stored
   body, it just frames the stored string. *)

type frame = Frame of string | Eof | Corrupt of string

let max_frame_bytes = 64 * 1024 * 1024

let write_frame oc payload =
  Printf.fprintf oc "%d\n%s\n" (String.length payload) payload

let read_frame ic =
  match input_line ic with
  | exception End_of_file -> Eof
  | line -> (
    match int_of_string_opt (String.trim line) with
    | None -> Corrupt (Printf.sprintf "bad frame header %S" line)
    | Some len when len < 0 || len > max_frame_bytes ->
      Corrupt (Printf.sprintf "unreasonable frame length %d" len)
    | Some len -> (
      match really_input_string ic len with
      | exception End_of_file -> Corrupt "truncated frame payload"
      | payload -> (
        match input_char ic with
        | exception End_of_file -> Corrupt "missing frame terminator"
        | '\n' -> Frame payload
        | c -> Corrupt (Printf.sprintf "bad frame terminator %C" c))))

let write_request oc ~id req =
  write_frame oc (Json.to_string (request_to_json ~id req))

let write_response oc (e : envelope) ~body =
  write_frame oc (Json.to_string (envelope_to_json e));
  write_frame oc body

let read_response ic =
  match read_frame ic with
  | Eof -> Error "connection closed"
  | Corrupt msg -> Error msg
  | Frame env_s -> (
    match Result.bind (Json.parse env_s) envelope_of_json with
    | Error msg -> Error ("bad envelope: " ^ msg)
    | Ok env -> (
      match read_frame ic with
      | Eof -> Error "connection closed before body"
      | Corrupt msg -> Error msg
      | Frame body -> Ok (env, body)))
