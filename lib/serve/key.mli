(** Canonical content keys for compiled schedules and simulation results.

    A key is a string that covers {e every} input the pipeline's output
    depends on — kernel IR content, the full [Config.t], the placement
    scheme with its window policy, counterfactual tweaks, the fault plan
    (spec and seed) and the repair/validate/capture switches. Two jobs
    with equal keys produce byte-identical results (runs are
    deterministic), so keys address the serve daemon's schedule and result
    caches and [Experiments.Common]'s in-process memo cache.

    Floats are rendered in hex ([%h]) so distinct values can never round
    to the same key; list-valued fields serialize element-wise so equal
    lengths cannot collide. *)

val config : Ndp_sim.Config.t -> string
(** Covers every [Config.t] field. *)

val tweaks : Ndp_core.Pipeline.tweaks -> string
(** [""] for {!Ndp_core.Pipeline.no_tweaks}; otherwise every field,
    with [mc_overrides] serialized pairwise. *)

val scheme : Ndp_core.Pipeline.scheme -> string
(** Scheme tag plus, for [Partitioned], every [part_options] field
    including the window policy. *)

val kernel : Ndp_core.Kernel.t -> string
(** [name:md5] where the digest covers the program text (statements,
    loop bounds, sweeps), the array layout, index-array contents and hot
    arrays — same-named kernels with different bodies key apart. *)

val fault : Ndp_fault.Plan.t option -> string
(** [""] for [None]; otherwise the plan's seed, retry parameters and its
    resolved event list. *)

val job : Ndp_core.Pipeline.Job.t -> string
(** The canonical key of a whole pipeline job: all of the above plus the
    repair/validate/capture flags, ['#']-joined. *)

val digest : string -> string
(** Hex MD5 of a canonical key — the fixed-width content address used on
    the wire and as cache index. *)

val job_digest : Ndp_core.Pipeline.Job.t -> string
(** [digest (job j)]. *)
