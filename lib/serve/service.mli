(** The one execution-and-rendering path behind every consumer of the
    pipeline: `ndp_run`'s subcommands, the serve daemon and the tests all
    resolve a {!Protocol.job_spec} to a {!Ndp_core.Pipeline.Job} here and
    render results through the same document builders, so a response body
    from the daemon is byte-identical to the corresponding CLI output
    under [--format json]. *)

(** {1 Spec resolution} *)

val window_of_string : string -> (Ndp_core.Pipeline.window_policy, string) result
(** [""]/["adaptive"], ["analytic"] or a decimal fixed size. *)

val scheme_of_spec : Protocol.job_spec -> (Ndp_core.Pipeline.scheme, string) result

val config_of_spec : Protocol.job_spec -> (Ndp_sim.Config.t, string) result
(** The default config with the spec's cluster and memory modes applied. *)

val job_of_spec : Protocol.job_spec -> (Ndp_core.Pipeline.Job.t, string) result
(** Resolves the kernel by suite name, cluster/memory/scheme/window by
    their CLI spellings, and parses the fault spec (seeded by [fault_seed]
    or the config's seed). A spec with no fault text and no seed yields
    [faults = None]. *)

val variant_config :
  Ndp_sim.Config.t -> Protocol.variant -> (Ndp_sim.Config.t, string) result
(** Apply a sweep variant's integer overrides. Only simulation-side knobs
    (hop/service/hit/miss/op/sync/load-issue cycles, outstanding loads)
    may be overridden — address-shape parameters must match the capture
    config for replay to be meaningful. *)

(** {1 Shared renderers} *)

val result_human : Ndp_core.Pipeline.result -> string

val result_json : Ndp_core.Pipeline.result -> Ndp_obs.Render.Json.t

val metrics_json : Ndp_obs.Metrics.t -> Ndp_obs.Render.Json.t

val metrics_human : Ndp_obs.Metrics.t -> string

val plan_json : Ndp_fault.Plan.t -> spec:string -> repair:bool -> Ndp_obs.Render.Json.t

val link_flits_total : Ndp_obs.Metrics.t -> int
(** Sum of [noc.link_flits{..}] over every link — the ledger
    reconciliation target. *)

val divergence_ratio : static:int -> measured:int -> float
(** Symmetric >=1 divergence ratio; [infinity] when exactly one side is
    zero, [1.0] when both are. *)

val ratio_cell : float -> string

(** {1 Operations}

    Each operation runs one job and returns the result alongside the
    rendered JSON document and a lazy human rendering — exactly the
    artifacts the CLI prints and the daemon caches. *)

type run_outcome = {
  result : Ndp_core.Pipeline.result;
  sink : Ndp_obs.Sink.t;
  doc : Ndp_obs.Render.Json.t;
  human : unit -> string;
}

val run :
  ?pool:Ndp_prelude.Pool.t ->
  ?metrics:bool ->
  ?spans:Ndp_obs.Span.t ->
  Ndp_core.Pipeline.Job.t ->
  run_outcome
(** [metrics] collects the registry during the run and nests the result
    under [{"result": .., "metrics": ..}], mirroring [ndp_run run
    --metrics]. [spans] (default disabled) collects the pipeline's phase
    spans — it never changes the document, so cached daemon responses
    stay byte-identical to CLI output. *)

type profile_outcome = {
  p_result : Ndp_core.Pipeline.result;
  p_sink : Ndp_obs.Sink.t;
  p_doc : Ndp_obs.Render.Json.t;
  p_human : unit -> string;
  p_reconciled : bool; (** ledger flit-hops = noc.link_flits *)
  p_measured : int;
  p_link_flits : int;
}

val profile :
  ?pool:Ndp_prelude.Pool.t ->
  ?trace:bool ->
  ?spans:Ndp_obs.Span.t ->
  interval:int ->
  top:int ->
  Ndp_core.Pipeline.Job.t ->
  profile_outcome
(** Movement-attribution ledger + counter timeline. [trace] additionally
    fills the sink's tracer (for the CLI's Perfetto output); [spans]
    collects phase spans; neither changes the document. [top] bounds the
    human table only. *)

type analyze_outcome = {
  a_result : Ndp_core.Pipeline.result;
  a_doc : Ndp_obs.Render.Json.t;
  a_human : unit -> string;
  a_within : bool;
  a_ratio : float;
  a_static_total : int;
  a_measured_total : int;
}

val analyze :
  ?pool:Ndp_prelude.Pool.t ->
  ?spans:Ndp_obs.Span.t ->
  threshold:float ->
  Ndp_core.Pipeline.Job.t ->
  analyze_outcome
(** Static cost table reconciled against one measured run. *)

type fusion_outcome = {
  f_fused : Ndp_core.Pipeline.result;
  f_unfused : Ndp_core.Pipeline.result;
  f_doc : Ndp_obs.Render.Json.t;
  f_human : unit -> string;
  f_fused_total : int;  (** measured ledger flit-hops, fused run *)
  f_unfused_total : int;
  f_reduction_pct : float;
}

val analyze_fusion :
  ?pool:Ndp_prelude.Pool.t -> Ndp_core.Pipeline.Job.t -> fusion_outcome
(** Runs the job twice — fused and unfused partitioned schemes, same
    window policy and config, each under its own movement ledger — and
    joins the fused run's per-chain fusion decisions with the measured
    per-statement flit-hop deltas (unfused minus fused). The same
    reconciliation discipline as {!analyze}, aimed at the fusion pass's
    own savings predictions. *)

type inject_outcome = {
  i_result : Ndp_core.Pipeline.result;
  i_plan : Ndp_fault.Plan.t;
  i_reg : Ndp_obs.Metrics.t;
  i_doc : Ndp_obs.Render.Json.t;
  i_human : unit -> string;
}

val inject :
  ?pool:Ndp_prelude.Pool.t ->
  ?spans:Ndp_obs.Span.t ->
  spec:string ->
  Ndp_core.Pipeline.Job.t ->
  inject_outcome
(** Runs the job under its fault plan (an empty plan when the job carries
    none); [spec] is echoed into the document's plan description. *)
