type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable next_id : int;
}

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () ->
    Ok
      {
        fd;
        ic = Unix.in_channel_of_descr fd;
        oc = Unix.out_channel_of_descr fd;
        next_id = 1;
      }
  | exception Unix.Unix_error (err, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Printf.sprintf "cannot connect to %s: %s" path (Unix.error_message err))

let rpc t req =
  let id = t.next_id in
  t.next_id <- id + 1;
  match
    Protocol.write_request t.oc ~id req;
    flush t.oc
  with
  | exception Sys_error msg -> Error ("send failed: " ^ msg)
  | () -> (
    match Protocol.read_response t.ic with
    | Error _ as e -> e
    | Ok (env, body) ->
      if env.Protocol.id <> id then
        Error (Printf.sprintf "response id %d does not match request id %d" env.Protocol.id id)
      else Ok (env, body))

let close t =
  (try flush t.oc with Sys_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()
