(** The one typed request/response vocabulary shared by the daemon, the
    [ndp_run client] CLI and the tests.

    Wire format: length-delimited JSON. A frame is
    ["<decimal byte length>\n<payload>\n"]. A request is a single frame
    holding one JSON object [{"id": N, "op": "...", ...}]; a response is
    two frames — the {!envelope} object, then the raw body (itself a JSON
    document, rendered once by the server). Shipping the body as its own
    frame is what makes cached responses byte-identical: the server frames
    the stored string verbatim instead of reparsing and reserializing it. *)

(** What to compile and simulate — the wire-level mirror of
    {!Ndp_core.Pipeline.Job}, in CLI vocabulary (names, not variants), so
    the daemon resolves it through the same tables as the subcommands. *)
type job_spec = {
  app : string; (** suite kernel name *)
  scheme : string; (** ["default"] or ["partitioned"] *)
  window : string; (** ["adaptive"], ["analytic"] or a fixed size *)
  cluster : string; (** all-to-all, quadrant or snc-4 *)
  memory : string; (** flat, cache or hybrid *)
  tweaks : Ndp_core.Pipeline.tweaks;
  faults : string; (** fault-plan spec; [""] injects nothing *)
  fault_seed : int option; (** [None]: the config's seed *)
  repair : bool;
}

val default_spec : app:string -> job_spec
(** Partitioned/adaptive/quadrant/flat, no tweaks, no faults. *)

(** One cost-model variant of a {!request.Sweep}: simulation-side integer
    config overrides (by field name, e.g. ["hop_cycles"]) plus tweaks,
    replayed against the captured schedule without recompiling. *)
type variant = { v_name : string; v_overrides : (string * int) list; v_tweaks : Ndp_core.Pipeline.tweaks }

type request =
  | Ping
  | List_apps
  | Run of { spec : job_spec; metrics : bool }
  | Compile of job_spec (** compile + capture into the schedule cache *)
  | Profile of { spec : job_spec; interval : int; top : int }
  | Analyze of { spec : job_spec; threshold : float }
  | Inject of job_spec
  | Batch of job_spec list (** one [run_batch] across the pool *)
  | Sweep of { spec : job_spec; variants : variant list }
  | Cache_stats
      (** cache counters plus per-op request-latency percentiles
          (deterministic under [NDP_FAKE_CLOCK]) *)
  | Metrics_dump (** full registry incl. latency (not deterministic) *)
  | Metrics_text
      (** full registry as Prometheus text exposition
          ([Metrics.to_prometheus]); the response body is plain text, not
          JSON *)
  | Shutdown

val op_name : request -> string
(** The wire op string — also the access-log ["op"] field and the label
    of the per-op [serve.request_ms{op=...}] histogram. *)

type envelope = { id : int; ok : bool; cached : bool; key : string }
(** [key] is the content digest the response was cached under ([""] for
    uncacheable ops); [cached] tells whether the body came from the
    result cache. *)

(** {1 JSON codecs}

    [request_of_json (request_to_json ~id r) = Ok (id, r)] for every
    request (floats survive via the {!Ndp_obs.Render.Json} round-trip
    guarantee). *)

val spec_to_json : job_spec -> Ndp_obs.Render.Json.t

val spec_of_json : Ndp_obs.Render.Json.t -> (job_spec, string) result

val request_to_json : id:int -> request -> Ndp_obs.Render.Json.t

val request_of_json : Ndp_obs.Render.Json.t -> (int * request, string) result

val envelope_to_json : envelope -> Ndp_obs.Render.Json.t

val envelope_of_json : Ndp_obs.Render.Json.t -> (envelope, string) result

(** {1 Framing} *)

type frame = Frame of string | Eof | Corrupt of string

val write_frame : out_channel -> string -> unit

val read_frame : in_channel -> frame

val write_request : out_channel -> id:int -> request -> unit

val write_response : out_channel -> envelope -> body:string -> unit

val read_response : in_channel -> (envelope * string, string) result
