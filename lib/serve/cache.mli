(** Bounded, mutex-protected LRU cache with eviction accounting.

    Generalizes the unbounded memo table [Experiments.Common] grew for the
    experiment drivers: keys are canonical content strings (see {!Key}),
    values are whatever the owner stores (rendered response bodies,
    captured schedules), and capacity is enforced by least-recently-used
    eviction. Hit/miss/eviction counts surface both as exact integers
    ({!stats}, feeding the daemon's deterministic [cache-stats] response)
    and as [serve.cache_{hits,misses,evictions}{cache=NAME}] counters in
    the registry passed at creation.

    Thread-safety: all operations take an internal mutex. {!find_or_add}
    computes outside the lock — concurrent callers may both compute a
    missing key, but the first writer wins, so every reader observes one
    value (runs are deterministic, so the loser's value was bit-identical
    anyway). *)

type 'a t

type stats = { entries : int; hits : int; misses : int; evictions : int }

val create : ?metrics:Ndp_obs.Metrics.t -> name:string -> capacity:int -> unit -> 'a t
(** [metrics] defaults to the disabled registry (instruments inert,
    {!stats} still exact). [capacity] is clamped to at least 1. *)

val name : _ t -> string

val capacity : _ t -> int

val find : 'a t -> string -> 'a option
(** Lookup without insertion; refreshes recency on hit but does not count
    toward hit/miss totals. *)

val find_or_add : 'a t -> string -> (unit -> 'a) -> 'a * bool
(** [find_or_add t key compute] returns [(value, was_hit)]. On a miss,
    [compute] runs outside the lock and the result is inserted, evicting
    least-recently-used entries while over capacity. *)

val stats : _ t -> stats
