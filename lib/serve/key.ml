module Pipeline = Ndp_core.Pipeline
module Config = Ndp_sim.Config
module Kernel = Ndp_core.Kernel
module Plan = Ndp_fault.Plan

(* Every [Config.t] field participates in the key: a key that kept only
   cluster/memory/page-policy would let configs differing in (for example)
   balance threshold, mesh dimensions, window bound or MCDRAM capacity
   alias each other's memoized results. Floats are rendered in hex ([%h])
   so distinct values can never round to the same key. *)
let config (c : Config.t) =
  String.concat ","
    [
      string_of_int c.Config.mesh_cols;
      string_of_int c.Config.mesh_rows;
      Ndp_noc.Cluster.letter c.Config.cluster;
      Config.memory_mode_letter c.Config.memory_mode;
      string_of_int c.Config.line_bytes;
      string_of_int c.Config.l1_size;
      string_of_int c.Config.l1_assoc;
      string_of_int c.Config.l2_bank_size;
      string_of_int c.Config.l2_assoc;
      string_of_int c.Config.mcdram_capacity;
      string_of_int c.Config.hop_cycles;
      string_of_int c.Config.link_service_cycles;
      string_of_int c.Config.flit_bytes;
      string_of_int c.Config.l1_hit_cycles;
      string_of_int c.Config.l2_hit_cycles;
      string_of_int c.Config.mcdram_cycles;
      string_of_int c.Config.ddr_cycles;
      string_of_int c.Config.op_cycles;
      string_of_int c.Config.sync_cycles;
      string_of_int c.Config.load_issue_cycles;
      string_of_int c.Config.outstanding_loads;
      string_of_bool c.Config.coherence;
      string_of_bool c.Config.prefetch_next_line;
      Printf.sprintf "%h" c.Config.mlp_overlap;
      Printf.sprintf "%h" c.Config.balance_threshold;
      string_of_int c.Config.max_window;
      (match c.Config.page_policy with
      | Ndp_mem.Page_alloc.Coloring -> "col"
      | Ndp_mem.Page_alloc.Scrambled -> "scr");
      string_of_int c.Config.predictor_capacity_blocks;
      string_of_int c.Config.seed;
    ]

let tweaks (tw : Pipeline.tweaks) =
  if tw = Pipeline.no_tweaks then ""
  else
    (* The override list is serialized pairwise: keying on its length alone
       would let two different page->MC maps of equal size collide. *)
    Printf.sprintf "|b%h d%h mc[%s] c%h s%d" tw.Pipeline.l1_boost tw.Pipeline.distance_factor
      (String.concat ";"
         (List.map (fun (page, mc) -> Printf.sprintf "%d:%d" page mc) tw.Pipeline.mc_overrides))
      tw.Pipeline.cost_scale tw.Pipeline.extra_syncs

let scheme = function
  | Pipeline.Default -> "default"
  | Pipeline.Partitioned o ->
    Printf.sprintf "part(w=%s,r=%b,s=%b,l=%b,bt=%s,id=%b,insp=%b,f=%b,fc=%s)"
      (match o.Pipeline.window with
      | Pipeline.Adaptive -> "a"
      | Pipeline.Analytic -> "an"
      | Pipeline.Fixed k -> string_of_int k)
      o.Pipeline.reuse_aware o.Pipeline.sync_minimize o.Pipeline.level_based
      (match o.Pipeline.balance_threshold with None -> "-" | Some f -> Printf.sprintf "%h" f)
      o.Pipeline.ideal_data o.Pipeline.use_inspector o.Pipeline.fuse
      (match o.Pipeline.fuse_capacity with None -> "-" | Some c -> string_of_int c)

let digest s = Digest.to_hex (Digest.string s)

(* The kernel key covers the whole IR content, not just the name: program
   text (statements and loop bounds), array layout, index-array contents
   and the MCDRAM placement hints all change what the compiler produces,
   so two kernels registered under the same name but different bodies must
   not alias. The content is digested so the key stays short. *)
let kernel (k : Kernel.t) =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let p = k.Kernel.program in
  add "%s\x00" p.Ndp_ir.Loop.prog_name;
  List.iter
    (fun (a : Ndp_ir.Array_decl.t) ->
      add "a:%s:%d:%d:%d\x00" a.Ndp_ir.Array_decl.name a.Ndp_ir.Array_decl.length
        a.Ndp_ir.Array_decl.elem_size a.Ndp_ir.Array_decl.base_va)
    p.Ndp_ir.Loop.arrays;
  List.iter
    (fun (n : Ndp_ir.Loop.nest) ->
      add "n:%s:%d\x00" n.Ndp_ir.Loop.nest_name n.Ndp_ir.Loop.sweeps;
      List.iter
        (fun (v : Ndp_ir.Loop.loop_var) ->
          add "v:%s:%d:%d\x00" v.Ndp_ir.Loop.var v.Ndp_ir.Loop.lo v.Ndp_ir.Loop.hi)
        n.Ndp_ir.Loop.vars;
      List.iter (fun s -> add "s:%s\x00" (Ndp_ir.Stmt.to_string s)) n.Ndp_ir.Loop.body)
    p.Ndp_ir.Loop.nests;
  List.iter
    (fun (name, contents) ->
      add "i:%s:%d:" name (Array.length contents);
      Array.iter (fun v -> add "%d," v) contents;
      Buffer.add_char b '\x00')
    k.Kernel.index_arrays;
  List.iter (fun name -> add "h:%s\x00" name) k.Kernel.hot_arrays;
  Printf.sprintf "%s:%s" k.Kernel.name (digest (Buffer.contents b))

(* The plan's own seed (not just the spec's) plus its resolved event list:
   [describe] renders every concrete choice the seeded RNG made, so two
   plans from the same spec but different seeds — or different specs that
   happen to share a seed — key apart. *)
let fault = function
  | None -> ""
  | Some p ->
    Printf.sprintf "f(seed=%d,rt=%d,mr=%d,%s)" (Plan.seed p) (Plan.retry_timeout p)
      (Plan.max_retries p) (Plan.describe p)

let job (j : Pipeline.Job.t) =
  String.concat "#"
    [
      kernel j.Pipeline.Job.kernel;
      scheme j.Pipeline.Job.scheme;
      config j.Pipeline.Job.config;
      tweaks j.Pipeline.Job.tweaks;
      fault j.Pipeline.Job.faults;
      (if j.Pipeline.Job.repair then "r" else "");
      (if j.Pipeline.Job.validate then "v" else "");
      (if j.Pipeline.Job.capture then "c" else "");
    ]

let job_digest j = digest (job j)
