(** The compile-as-a-service daemon: dispatches {!Protocol} requests onto
    a domain pool and memoizes both rendered response bodies and captured
    schedules in content-addressed LRU caches.

    Two caches, two granularities:
    - the {e result} cache maps [digest(op + params + Key.job)] to the
      rendered response body string, so a repeated identical request is
      answered from memory with byte-identical bytes;
    - the {e schedule} cache maps [Key.job_digest] (capture forced on) to
      the full captured {!Ndp_core.Pipeline.result}, so [Compile] and
      every [Sweep] over the same job share one compile and sweep
      variants replay the captured task stream without recompiling.

    Instruments in the registry:
    [serve.requests], [serve.errors], [serve.request_ms] (aggregate plus
    a lazily-registered [serve.request_ms{op=..}] histogram per op) and
    [serve.cache_{hits,misses,evictions}{cache=results|schedules}].

    Every request is traced: [handle] opens a per-request span collector
    with a root "request" span, threads it through the service layer (so
    uncached pipeline work records its phase spans under it) and stamps
    the reply with a monotone sequence number, the request latency and
    the collector. Tracing never touches the response body, so cached
    bodies stay byte-identical. *)

type t

type reply = {
  seq : int;  (** server-wide request sequence number (the request id) *)
  ok : bool;
  cached : bool;
  key : string;
  body : string;
  ms : float;  (** request latency by the server's clock *)
  spans : Ndp_obs.Span.t;  (** per-request span log, root span "request" *)
}

val create :
  ?jobs:int ->
  ?result_capacity:int ->
  ?schedule_capacity:int ->
  ?metrics:Ndp_obs.Metrics.t ->
  ?clock:(unit -> float) ->
  ?access_log:out_channel ->
  ?slow_ms:float ->
  unit ->
  t
(** [jobs] sizes the embedded pool. Capacities default to 256 result
    bodies and 64 captured schedules. [metrics] defaults to a fresh
    enabled registry. [clock] (default {!Ndp_obs.Span.default_clock}, so
    [NDP_FAKE_CLOCK] applies) times requests and spans. [access_log]
    makes {!serve_channels} append one JSONL line per request;
    [slow_ms] makes it print a span breakdown to stderr for requests
    slower than the threshold. *)

val registry : t -> Ndp_obs.Metrics.t

val pool : t -> Ndp_prelude.Pool.t

val result_cache : t -> string Cache.t

val schedule_cache : t -> Ndp_core.Pipeline.result Cache.t

val handle : t -> Protocol.request -> reply
(** In-process dispatch — the tests and the bench exercise exactly the
    path the socket loop uses. Never raises: failures come back as
    [{ok = false}] with an [{"error": ..}] body. *)

val serve_channels : t -> in_channel -> out_channel -> unit
(** One framed session over arbitrary channels (the [--stdio] mode and
    the per-connection loop). Returns on EOF, corrupt framing, or after
    answering [Shutdown] (which also marks the server stopped). After
    each well-formed request it writes the access-log line and, past the
    [slow_ms] threshold, the slow-log breakdown. *)

val serve : t -> socket_path:string -> unit
(** Bind a Unix-domain socket (unlinking any stale file), then accept and
    serve sessions one at a time until a [Shutdown] request; unlinks the
    socket on the way out. Parallelism comes from the pool within a
    request, so replies for a given request order are deterministic. *)

val shutdown : t -> unit
(** Tear down the embedded pool. *)
