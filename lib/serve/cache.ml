module Metrics = Ndp_obs.Metrics

type stats = { entries : int; hits : int; misses : int; evictions : int }

type 'a entry = { value : 'a; mutable tick : int }

type 'a t = {
  name : string;
  capacity : int;
  tbl : (string, 'a entry) Hashtbl.t;
  lock : Mutex.t;
  mutable clock : int;
  m_hits : Metrics.counter;
  m_misses : Metrics.counter;
  m_evictions : Metrics.counter;
  (* Own integer mirrors of the instruments: the registry may be the
     disabled one (inert handles), and [stats] must stay exact either
     way — it feeds the deterministic [cache-stats] response. *)
  mutable n_hits : int;
  mutable n_misses : int;
  mutable n_evictions : int;
}

let create ?(metrics = Metrics.disabled) ~name ~capacity () =
  let inst kind = Metrics.counter metrics (Printf.sprintf "serve.cache_%s{cache=%s}" kind name) in
  {
    name;
    capacity = max 1 capacity;
    tbl = Hashtbl.create 64;
    lock = Mutex.create ();
    clock = 0;
    m_hits = inst "hits";
    m_misses = inst "misses";
    m_evictions = inst "evictions";
    n_hits = 0;
    n_misses = 0;
    n_evictions = 0;
  }

let name t = t.name

let capacity t = t.capacity

let touch t e =
  t.clock <- t.clock + 1;
  e.tick <- t.clock

(* Caller holds the lock. O(n) victim scan — capacities are small (tens
   to hundreds) and eviction is off the hot (hit) path. *)
let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, tick) when tick <= e.tick -> ()
      | _ -> victim := Some (k, e.tick))
    t.tbl;
  match !victim with
  | None -> ()
  | Some (k, _) ->
    Hashtbl.remove t.tbl k;
    t.n_evictions <- t.n_evictions + 1;
    Metrics.incr t.m_evictions

let find t key =
  Mutex.lock t.lock;
  let r =
    match Hashtbl.find_opt t.tbl key with
    | Some e ->
      touch t e;
      Some e.value
    | None -> None
  in
  Mutex.unlock t.lock;
  r

let insert_locked t key v =
  while Hashtbl.length t.tbl >= t.capacity do
    evict_lru t
  done;
  t.clock <- t.clock + 1;
  Hashtbl.replace t.tbl key { value = v; tick = t.clock }

let find_or_add t key compute =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
    touch t e;
    t.n_hits <- t.n_hits + 1;
    Metrics.incr t.m_hits;
    Mutex.unlock t.lock;
    (e.value, true)
  | None ->
    Mutex.unlock t.lock;
    (* Compute outside the lock; a concurrent caller computing the same
       key produces a bit-identical value (runs are deterministic), and
       the first writer wins so every reader sees one value. *)
    let v = compute () in
    Mutex.lock t.lock;
    let r =
      match Hashtbl.find_opt t.tbl key with
      | Some e ->
        touch t e;
        e.value
      | None ->
        insert_locked t key v;
        v
    in
    t.n_misses <- t.n_misses + 1;
    Metrics.incr t.m_misses;
    Mutex.unlock t.lock;
    (r, false)

let stats t =
  Mutex.lock t.lock;
  let s =
    {
      entries = Hashtbl.length t.tbl;
      hits = t.n_hits;
      misses = t.n_misses;
      evictions = t.n_evictions;
    }
  in
  Mutex.unlock t.lock;
  s
