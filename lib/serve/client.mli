(** Blocking Unix-domain-socket client for the serve daemon. *)

type t

val connect : string -> (t, string) result

val rpc : t -> Protocol.request -> (Protocol.envelope * string, string) result
(** Send one request (ids are assigned sequentially per connection) and
    wait for its envelope + body. *)

val close : t -> unit
