module Json = Ndp_obs.Render.Json
module Metrics = Ndp_obs.Metrics
module Pipeline = Ndp_core.Pipeline
module Pool = Ndp_prelude.Pool
module Stats = Ndp_sim.Stats

type reply = {
  seq : int;
  ok : bool;
  cached : bool;
  key : string;
  body : string;
  ms : float;
  spans : Ndp_obs.Span.t;
}

type t = {
  pool : Pool.t;
  reg : Metrics.t;
  results : string Cache.t;
  schedules : Pipeline.result Cache.t;
  requests : Metrics.counter;
  errors : Metrics.counter;
  latency_ms : Metrics.histogram;
  clock : unit -> float;
  access_log : out_channel option;
  slow_ms : float option;
  mutable seq : int;
  mutable stop : bool;
}

let create ?jobs ?(result_capacity = 256) ?(schedule_capacity = 64) ?metrics ?clock ?access_log
    ?slow_ms () =
  let reg = match metrics with Some r -> r | None -> Metrics.create () in
  let clock = match clock with Some c -> c | None -> Ndp_obs.Span.default_clock () in
  {
    pool = Pool.create ?jobs ();
    reg;
    results = Cache.create ~metrics:reg ~name:"results" ~capacity:result_capacity ();
    schedules = Cache.create ~metrics:reg ~name:"schedules" ~capacity:schedule_capacity ();
    requests = Metrics.counter reg "serve.requests";
    errors = Metrics.counter reg "serve.errors";
    latency_ms = Metrics.histogram reg "serve.request_ms";
    clock;
    access_log;
    slow_ms;
    seq = 0;
    stop = false;
  }

let registry t = t.reg

let pool t = t.pool

let result_cache t = t.results

let schedule_cache t = t.schedules

let shutdown t = Pool.shutdown t.pool

let body doc = Json.to_string doc

(* seq/ms/spans are stamped once per request by [handle]; the dispatch
   helpers below fill only the outcome fields. *)
let reply_of ~ok ~cached ~key body =
  { seq = 0; ok; cached; key; body; ms = 0.0; spans = Ndp_obs.Span.none }

let plain doc = reply_of ~ok:true ~cached:false ~key:"" (body doc)

let plain_text s = reply_of ~ok:true ~cached:false ~key:"" s

(* Body serialization is charged to its own "render" phase so that, on a
   cold traced request, the recorded phases account for (nearly) all of
   the request wall time — the reconciliation check.sh enforces. *)
let rendered spans f = Ndp_obs.Span.with_span spans "render" f

let error msg = reply_of ~ok:false ~cached:false ~key:"" (body (Json.Obj [ ("error", Json.Str msg) ]))

(* Resolve the spec, derive the content key from the *resolved* job (so
   spellings that mean the same job — e.g. window "adaptive" vs "" —
   share a cache line), then serve from the result cache. The cache
   stores rendered body strings: a hit returns the stored bytes verbatim,
   which is what makes cached and uncached responses byte-identical. *)
let cacheable t spec ~salt render =
  match Service.job_of_spec spec with
  | Error msg -> error msg
  | Ok job ->
    let key = Key.digest (salt ^ "#" ^ Key.job job) in
    let b, hit = Cache.find_or_add t.results key (fun () -> render job) in
    reply_of ~ok:true ~cached:hit ~key b

(* The schedule cache is keyed by the compile inputs alone (capture forced
   on), so a Compile and every Sweep over the same job share one entry. *)
let captured t ~spans (job : Pipeline.Job.t) =
  let job = { job with Pipeline.Job.capture = true } in
  let skey = Key.job_digest job in
  let obs = { Ndp_obs.Sink.none with Ndp_obs.Sink.spans = spans } in
  let r, hit =
    Cache.find_or_add t.schedules skey (fun () -> Pipeline.Job.run ~pool:t.pool ~obs job)
  in
  (skey, r, hit)

let compile_body t ~spans (job : Pipeline.Job.t) =
  let skey, r, _hit = captured t ~spans job in
  body
    (Json.Obj
       [
         ("schedule_key", Json.Str skey);
         ("app", Json.Str r.Pipeline.kernel_name);
         ("scheme", Json.Str r.Pipeline.scheme_name);
         ("exec_time", Json.Int r.Pipeline.exec_time);
         ("tasks", Json.Int r.Pipeline.tasks_emitted);
         ("instances", Json.Int r.Pipeline.num_instances);
         ( "windows",
           Json.Obj (List.map (fun (n, w) -> (n, Json.Int w)) r.Pipeline.windows_chosen) );
         ("captured_calls", Json.Int (List.length r.Pipeline.emitted));
       ])

let sweep_body t ~spans (job : Pipeline.Job.t) (variants : Protocol.variant list) =
  let _skey, r, _hit = captured t ~spans job in
  let base_exec = max 1 r.Pipeline.exec_time in
  let kernel = job.Pipeline.Job.kernel in
  (* The replay fan-out runs on pool domains; the collector is
     single-domain, so one coarse span on this domain covers the sweep. *)
  let sp_replay = Ndp_obs.Span.enter spans "replay" in
  Ndp_obs.Span.attr_int spans sp_replay "variants" (List.length variants);
  let rows =
    Pool.parallel_map t.pool
      (fun (v : Protocol.variant) ->
        match Service.variant_config job.Pipeline.Job.config v with
        | Error msg -> Error (v.Protocol.v_name, msg)
        | Ok config ->
          let rp =
            Pipeline.replay ~config ~tweaks:v.Protocol.v_tweaks kernel r.Pipeline.emitted
          in
          Ok
            ( v.Protocol.v_name,
              Json.Obj
                [
                  ("name", Json.Str v.Protocol.v_name);
                  ("exec_time", Json.Int rp.Pipeline.rp_exec_time);
                  ( "vs_base",
                    Json.Float (float_of_int rp.Pipeline.rp_exec_time /. float_of_int base_exec)
                  );
                  ("hops", Json.Int (Stats.hops rp.Pipeline.rp_stats));
                  ("load_wait", Json.Int (Stats.load_wait rp.Pipeline.rp_stats));
                  ("energy_pj", Json.Float (Ndp_sim.Energy.total rp.Pipeline.rp_energy));
                ] ))
      variants
  in
  Ndp_obs.Span.exit spans sp_replay;
  match List.find_opt Result.is_error rows with
  | Some (Error (name, msg)) -> failwith (Printf.sprintf "variant %s: %s" name msg)
  | _ ->
    body
      (Json.Obj
         [
           ("app", Json.Str r.Pipeline.kernel_name);
           ("scheme", Json.Str r.Pipeline.scheme_name);
           ("base_exec_time", Json.Int r.Pipeline.exec_time);
           ("base_hops", Json.Int (Stats.hops r.Pipeline.stats));
           ( "variants",
             Json.List (List.filter_map (function Ok (_, j) -> Some j | Error _ -> None) rows)
           );
         ])

let variants_salt (variants : Protocol.variant list) =
  String.concat ";"
    (List.map
       (fun (v : Protocol.variant) ->
         Printf.sprintf "%s(%s)%s" v.Protocol.v_name
           (String.concat ","
              (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) v.Protocol.v_overrides))
           (Key.tweaks v.Protocol.v_tweaks))
       variants)

let cache_stats_json (s : Cache.stats) =
  Json.Obj
    [
      ("entries", Json.Int s.Cache.entries);
      ("hits", Json.Int s.Cache.hits);
      ("misses", Json.Int s.Cache.misses);
      ("evictions", Json.Int s.Cache.evictions);
    ]

(* Per-op latency percentiles, read back from [serve.request_ms] and its
   lazily-registered [serve.request_ms{op=..}] family. The aggregate
   histogram renders under the key "all". *)
let latency_json t =
  Json.Obj
    (List.filter_map
       (fun (name, sample) ->
         match sample with
         | Metrics.Histogram_v { counts; bounds; count; _ } ->
           let base, labels = Ndp_obs.Render.Prom.split_series name in
           if base <> "serve.request_ms" then None
           else
             let key =
               match List.assoc_opt "op" labels with Some op -> op | None -> "all"
             in
             let p q = Metrics.percentile ~counts ~bounds q in
             Some
               ( key,
                 Json.Obj
                   [
                     ("count", Json.Int count);
                     ("p50_ms", Json.Float (p 0.5));
                     ("p95_ms", Json.Float (p 0.95));
                     ("p99_ms", Json.Float (p 0.99));
                   ] )
         | _ -> None)
       (Metrics.to_alist t.reg))

let handle t (req : Protocol.request) =
  Metrics.incr t.requests;
  t.seq <- t.seq + 1;
  let seq = t.seq in
  let op = Protocol.op_name req in
  let spans = Ndp_obs.Span.create ~clock:t.clock () in
  let t0 = t.clock () in
  let root = Ndp_obs.Span.enter spans "request" in
  Ndp_obs.Span.attr_str spans root "op" op;
  let reply =
    try
      match req with
      | Protocol.Ping -> plain (Json.Obj [ ("pong", Json.Bool true) ])
      | Protocol.List_apps ->
        plain
          (Json.Obj
             [
               ( "apps",
                 Json.List (List.map (fun n -> Json.Str n) Ndp_workloads.Suite.names) );
             ])
      | Protocol.Shutdown -> plain (Json.Obj [ ("bye", Json.Bool true) ])
      | Protocol.Cache_stats ->
        plain
          (Json.Obj
             [
               ("results", cache_stats_json (Cache.stats t.results));
               ("schedules", cache_stats_json (Cache.stats t.schedules));
               ("latency", latency_json t);
             ])
      | Protocol.Metrics_dump -> plain (Metrics.to_json t.reg)
      | Protocol.Metrics_text -> plain_text (Metrics.to_prometheus t.reg)
      | Protocol.Run { spec; metrics } ->
        cacheable t spec
          ~salt:(Printf.sprintf "run:%b" metrics)
          (fun job ->
            let o = Service.run ~pool:t.pool ~metrics ~spans job in
            rendered spans (fun () -> body o.Service.doc))
      | Protocol.Profile { spec; interval; top } ->
        cacheable t spec
          ~salt:(Printf.sprintf "profile:%d:%d" interval top)
          (fun job ->
            let o = Service.profile ~pool:t.pool ~spans ~interval ~top job in
            rendered spans (fun () -> body o.Service.p_doc))
      | Protocol.Analyze { spec; threshold } ->
        cacheable t spec
          ~salt:(Printf.sprintf "analyze:%h" threshold)
          (fun job ->
            let o = Service.analyze ~pool:t.pool ~spans ~threshold job in
            rendered spans (fun () -> body o.Service.a_doc))
      | Protocol.Inject spec ->
        cacheable t spec ~salt:"inject" (fun job ->
            let o = Service.inject ~pool:t.pool ~spans ~spec:spec.Protocol.faults job in
            rendered spans (fun () -> body o.Service.i_doc))
      | Protocol.Compile spec ->
        cacheable t spec ~salt:"compile" (fun job -> compile_body t ~spans job)
      | Protocol.Sweep { spec; variants } ->
        cacheable t spec
          ~salt:("sweep:" ^ variants_salt variants)
          (fun job -> sweep_body t ~spans job variants)
      | Protocol.Batch specs -> (
        let jobs =
          List.fold_left
            (fun acc spec ->
              Result.bind acc (fun js ->
                  Result.map (fun j -> j :: js) (Service.job_of_spec spec)))
            (Ok []) specs
          |> Result.map List.rev
        in
        match jobs with
        | Error msg -> error msg
        | Ok jobs ->
          let key =
            Key.digest (String.concat "#" ("batch" :: List.map Key.job jobs))
          in
          let b, hit =
            Cache.find_or_add t.results key (fun () ->
                let results = Pipeline.run_batch ~pool:t.pool jobs in
                body (Json.Obj [ ("results", Json.List (List.map Service.result_json results)) ]))
          in
          reply_of ~ok:true ~cached:hit ~key b)
    with e -> error (Printexc.to_string e)
  in
  Ndp_obs.Span.exit spans root;
  let ms = (t.clock () -. t0) *. 1000.0 in
  Metrics.observe t.latency_ms ms;
  Metrics.observe (Metrics.histogram t.reg (Printf.sprintf "serve.request_ms{op=%s}" op)) ms;
  if not reply.ok then Metrics.incr t.errors;
  { reply with seq; ms; spans }

(* ------------------------------------------------------------------ *)
(* Access and slow logs                                                *)

(* Per-phase totals from the request's span log, without the synthetic
   "request" root (it would double-count everything under it). *)
let phase_fields spans =
  List.filter_map
    (fun (name, (count, total_ms, _cycles)) ->
      if name = "request" then None
      else
        Some (name, Json.Obj [ ("count", Json.Int count); ("ms", Json.Float total_ms) ]))
    (Ndp_obs.Span.summary spans)

(* One JSONL object per request: who, what, hit/miss, latency, bytes out
   and the per-phase breakdown. *)
let log_access t ~id ~op (reply : reply) =
  match t.access_log with
  | None -> ()
  | Some oc ->
    let line =
      Json.to_string
        (Json.Obj
           [
             ("seq", Json.Int reply.seq);
             ("id", Json.Int id);
             ("op", Json.Str op);
             ("key", Json.Str reply.key);
             ("ok", Json.Bool reply.ok);
             ("cached", Json.Bool reply.cached);
             ("ms", Json.Float reply.ms);
             ("bytes_out", Json.Int (String.length reply.body));
             ("spans", Json.Int (Ndp_obs.Span.count reply.spans));
             ("phases", Json.Obj (phase_fields reply.spans));
           ])
    in
    output_string oc line;
    output_char oc '\n';
    flush oc

let log_slow t ~op (reply : reply) =
  match t.slow_ms with
  | Some threshold when reply.ms > threshold ->
    Printf.eprintf "[slow] #%d %s %.3f ms (threshold %.1f ms)\n" reply.seq op reply.ms
      threshold;
    List.iter
      (fun (name, (count, total_ms, _cycles)) ->
        if name <> "request" then
          Printf.eprintf "[slow]   %-9s x%-4d %12.3f ms\n" name count total_ms)
      (Ndp_obs.Span.summary reply.spans);
    flush stderr
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Session loops                                                       *)

(* One framed session: read request frames until EOF / Shutdown /
   corrupt framing, answering each with an envelope + body pair.
   Per-frame JSON or vocabulary errors are answered in-band (the framing
   is still intact); corrupt framing poisons the byte stream, so the
   session answers once with id 0 and closes. *)
let serve_channels t ic oc =
  let continue = ref true in
  while !continue do
    match Protocol.read_frame ic with
    | Protocol.Eof -> continue := false
    | Protocol.Corrupt msg ->
      Protocol.write_response oc
        { Protocol.id = 0; ok = false; cached = false; key = "" }
        ~body:(body (Json.Obj [ ("error", Json.Str ("framing: " ^ msg)) ]));
      flush oc;
      continue := false
    | Protocol.Frame payload -> (
      match Result.bind (Json.parse payload) Protocol.request_of_json with
      | Error msg ->
        Metrics.incr t.requests;
        Metrics.incr t.errors;
        Protocol.write_response oc
          { Protocol.id = 0; ok = false; cached = false; key = "" }
          ~body:(body (Json.Obj [ ("error", Json.Str msg) ]));
        flush oc
      | Ok (id, req) ->
        let reply = handle t req in
        Protocol.write_response oc
          { Protocol.id = id; ok = reply.ok; cached = reply.cached; key = reply.key }
          ~body:reply.body;
        flush oc;
        let op = Protocol.op_name req in
        log_access t ~id ~op reply;
        log_slow t ~op reply;
        if req = Protocol.Shutdown then begin
          t.stop <- true;
          continue := false
        end)
  done

let serve t ~socket_path =
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX socket_path);
  Unix.listen sock 16;
  let cleanup () =
    (try Unix.close sock with Unix.Unix_error _ -> ());
    try Unix.unlink socket_path with Unix.Unix_error _ -> ()
  in
  (try
     (* Connections are served one at a time: within a request the domain
        pool supplies the parallelism, and sequential sessions keep cache
        accounting and replies deterministic for a given request order. *)
     while not t.stop do
       let fd, _ = Unix.accept sock in
       let ic = Unix.in_channel_of_descr fd in
       let oc = Unix.out_channel_of_descr fd in
       (try serve_channels t ic oc with Sys_error _ | End_of_file -> ());
       (try flush oc with Sys_error _ -> ());
       try Unix.close fd with Unix.Unix_error _ -> ()
     done
   with e ->
     cleanup ();
     raise e);
  cleanup ()
