module Render = Ndp_obs.Render
module Metrics = Ndp_obs.Metrics
module Ledger = Ndp_obs.Ledger
module Timeline = Ndp_obs.Timeline
module Stats = Ndp_sim.Stats
module Config = Ndp_sim.Config
module Pipeline = Ndp_core.Pipeline
module Plan = Ndp_fault.Plan
module Cost = Ndp_analysis.Cost

(* ------------------------------------------------------------------ *)
(* Spec resolution: wire vocabulary -> Pipeline.Job                    *)

let ( let* ) = Result.bind

let window_of_string s =
  match String.lowercase_ascii s with
  | "" | "adaptive" -> Ok Pipeline.Adaptive
  | "analytic" -> Ok Pipeline.Analytic
  | other -> (
    match int_of_string_opt other with
    | Some k -> Ok (Pipeline.Fixed k)
    | None -> Error (Printf.sprintf "expected a window size, \"adaptive\" or \"analytic\", got %S" s))

let scheme_of_spec (s : Protocol.job_spec) =
  match String.lowercase_ascii s.Protocol.scheme with
  | "default" -> Ok Pipeline.Default
  | "partitioned" ->
    let* w = window_of_string s.Protocol.window in
    Ok (Pipeline.Partitioned { Pipeline.partitioned_defaults with Pipeline.window = w })
  | "partitioned+fuse" | "fused" ->
    let* w = window_of_string s.Protocol.window in
    Ok
      (Pipeline.Partitioned
         { Pipeline.partitioned_defaults with Pipeline.window = w; Pipeline.fuse = true })
  | other ->
    Error
      (Printf.sprintf "unknown scheme %S (expected default, partitioned or partitioned+fuse)"
         other)

let config_of_spec (s : Protocol.job_spec) =
  let* cluster = Ndp_noc.Cluster.of_string s.Protocol.cluster in
  let* memory = Config.memory_mode_of_string s.Protocol.memory in
  Ok (Config.with_modes Config.default cluster memory)

let job_of_spec (s : Protocol.job_spec) =
  match Ndp_workloads.Suite.find s.Protocol.app with
  | exception Not_found -> Error (Printf.sprintf "unknown application %S" s.Protocol.app)
  | kernel ->
    let* config = config_of_spec s in
    let* scheme = scheme_of_spec s in
    let* faults =
      if s.Protocol.faults = "" && s.Protocol.fault_seed = None then Ok None
      else
        let mesh = Config.mesh config in
        let seed = Option.value s.Protocol.fault_seed ~default:config.Config.seed in
        let* plan = Plan.parse ~mesh ~seed s.Protocol.faults in
        Ok (Some plan)
    in
    Ok
      (Pipeline.Job.make ~config ~tweaks:s.Protocol.tweaks ?faults ~repair:s.Protocol.repair
         scheme kernel)

(* Simulation-side integer knobs a sweep variant may override. The
   address-shape parameters (mesh, line/page size) are deliberately
   absent: replay requires them to match the capture config. *)
let apply_override (c : Config.t) (field, v) =
  match field with
  | "hop_cycles" -> Ok { c with Config.hop_cycles = v }
  | "link_service_cycles" -> Ok { c with Config.link_service_cycles = v }
  | "l1_hit_cycles" -> Ok { c with Config.l1_hit_cycles = v }
  | "l2_hit_cycles" -> Ok { c with Config.l2_hit_cycles = v }
  | "mcdram_cycles" -> Ok { c with Config.mcdram_cycles = v }
  | "ddr_cycles" -> Ok { c with Config.ddr_cycles = v }
  | "op_cycles" -> Ok { c with Config.op_cycles = v }
  | "sync_cycles" -> Ok { c with Config.sync_cycles = v }
  | "load_issue_cycles" -> Ok { c with Config.load_issue_cycles = v }
  | "outstanding_loads" -> Ok { c with Config.outstanding_loads = v }
  | other -> Error (Printf.sprintf "variant cannot override config field %S" other)

let variant_config base (v : Protocol.variant) =
  List.fold_left
    (fun acc kv ->
      let* c = acc in
      apply_override c kv)
    (Ok base) v.Protocol.v_overrides

(* ------------------------------------------------------------------ *)
(* Result rendering (shared by CLI and daemon)                         *)

let result_human (r : Pipeline.result) =
  let s = r.Pipeline.stats in
  let buf = Buffer.create 512 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "%s / %s\n" r.Pipeline.kernel_name r.Pipeline.scheme_name;
  pr "  execution time     %d cycles\n" r.Pipeline.exec_time;
  pr "  data movement      %d flit-hops over %d messages\n" (Stats.hops s) (Stats.messages s);
  pr "  network latency    avg %s, max %d cycles\n"
    (if Stats.messages s = 0 then "-" else Printf.sprintf "%.1f" (Stats.avg_latency s))
    (Stats.latency_max s);
  pr "  L1 hit rate        %.1f%%   L2 hit rate %.1f%%\n"
    (100.0 *. Stats.l1_hit_rate s)
    (100.0 *. Stats.l2_hit_rate s);
  pr "  tasks              %d (%d statement instances)\n" r.Pipeline.tasks_emitted
    r.Pipeline.num_instances;
  pr "  synchronizations   %d\n" r.Pipeline.sync_arcs;
  pr "  energy             %.0f pJ (%s)\n"
    (Ndp_sim.Energy.total r.Pipeline.energy)
    (Format.asprintf "%a" Ndp_sim.Energy.pp r.Pipeline.energy);
  (match r.Pipeline.windows_chosen with
  | [] -> ()
  | ws ->
    pr "  windows            %s\n"
      (String.concat ", " (List.map (fun (n, w) -> Printf.sprintf "%s=%d" n w) ws)));
  pr "  predictor accuracy %.1f%%" (100.0 *. r.Pipeline.predictor_accuracy);
  Buffer.contents buf

let result_json (r : Pipeline.result) =
  let s = r.Pipeline.stats in
  Render.Json.Obj
    [
      ("app", Render.Json.Str r.Pipeline.kernel_name);
      ("scheme", Render.Json.Str r.Pipeline.scheme_name);
      ("exec_time", Render.Json.Int r.Pipeline.exec_time);
      ("tasks", Render.Json.Int r.Pipeline.tasks_emitted);
      ("instances", Render.Json.Int r.Pipeline.num_instances);
      ("sync_arcs", Render.Json.Int r.Pipeline.sync_arcs);
      ("energy_pj", Render.Json.Float (Ndp_sim.Energy.total r.Pipeline.energy));
      ( "stats",
        Render.Json.Obj (List.map (fun (name, v) -> (name, Render.Json.Int v)) (Stats.to_alist s))
      );
      ( "windows",
        Render.Json.Obj
          (List.map (fun (n, w) -> (n, Render.Json.Int w)) r.Pipeline.windows_chosen) );
      ("predictor_accuracy", Render.Json.Float r.Pipeline.predictor_accuracy);
    ]

let metrics_json reg = Metrics.to_json reg

let metrics_human reg =
  let t = Ndp_prelude.Table.create ~header:[ "metric"; "value" ] in
  List.iter
    (fun (name, sample) ->
      let value =
        match sample with
        | Metrics.Counter_v v -> string_of_int v
        | Metrics.Gauge_v v -> Ndp_prelude.Table.cell_f v
        | Metrics.Histogram_v h ->
          let p q =
            Ndp_prelude.Table.cell_f (Metrics.percentile ~counts:h.counts ~bounds:h.bounds q)
          in
          Printf.sprintf "count=%d sum=%s p50=%s p95=%s p99=%s" h.count
            (Ndp_prelude.Table.cell_f h.sum) (p 0.5) (p 0.95) (p 0.99)
      in
      Ndp_prelude.Table.add_row t [ name; value ])
    (Metrics.to_alist reg);
  Ndp_prelude.Table.render t

let plan_json plan ~spec ~repair =
  let killed, degraded, stalled, mcs = Plan.counts plan in
  Render.Json.Obj
    [
      ("spec", Render.Json.Str spec);
      ("seed", Render.Json.Int (Plan.seed plan));
      ("retry_timeout", Render.Json.Int (Plan.retry_timeout plan));
      ("max_retries", Render.Json.Int (Plan.max_retries plan));
      ("links_killed", Render.Json.Int killed);
      ("links_degraded", Render.Json.Int degraded);
      ("nodes_stalled", Render.Json.Int stalled);
      ("mcs_slowed", Render.Json.Int mcs);
      ( "avoided_nodes",
        Render.Json.List (List.map (fun n -> Render.Json.Int n) (Plan.avoided_nodes plan)) );
      ("repair", Render.Json.Bool repair);
    ]

(* The reconciliation target: what the NoC itself counted, summed over
   every link. The ledger charges [flits x links] per message, so the two
   totals must agree exactly. *)
let link_flits_total reg =
  let prefix = "noc.link_flits{" in
  List.fold_left
    (fun acc (name, sample) ->
      match sample with
      | Metrics.Counter_v flits when Astring.String.is_prefix ~affix:prefix name -> acc + flits
      | _ -> acc)
    0 (Metrics.to_alist reg)

(* Symmetric divergence: how far apart two totals are, as a >=1 ratio.
   Equal zeroes agree perfectly; a zero against a nonzero is infinitely
   divergent (rendered as null in JSON, "-" in the table). *)
let divergence_ratio ~static ~measured =
  if static = 0 && measured = 0 then 1.0
  else if static = 0 || measured = 0 then infinity
  else
    let a = float_of_int static and b = float_of_int measured in
    if a > b then a /. b else b /. a

let ratio_cell r = if Float.is_finite r then Printf.sprintf "x%.2f" r else "-"

(* ------------------------------------------------------------------ *)
(* run                                                                 *)

type run_outcome = {
  result : Pipeline.result;
  sink : Ndp_obs.Sink.t;
  doc : Render.Json.t;
  human : unit -> string;
}

let run ?pool ?(metrics = false) ?(spans = Ndp_obs.Span.none) (job : Pipeline.Job.t) =
  let obs =
    if metrics then Ndp_obs.Sink.create ~metrics:true ~trace:false () else Ndp_obs.Sink.none
  in
  let obs = { obs with Ndp_obs.Sink.spans = spans } in
  let r = Pipeline.Job.run ?pool ~obs job in
  let doc =
    if metrics then
      Render.Json.Obj
        [ ("result", result_json r); ("metrics", metrics_json obs.Ndp_obs.Sink.metrics) ]
    else result_json r
  in
  let human () =
    result_human r ^ if metrics then "\n\n" ^ metrics_human obs.Ndp_obs.Sink.metrics else ""
  in
  { result = r; sink = obs; doc; human }

(* ------------------------------------------------------------------ *)
(* profile                                                             *)

let divergence_cell ~measured ~predicted =
  if predicted = 0 then "-"
  else Printf.sprintf "x%.2f" (float_of_int measured /. float_of_int predicted)

let profile_human (r : Pipeline.result) ledger timeline ~top ~link_flits =
  let buf = Buffer.create 2048 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  Buffer.add_string buf (result_human r);
  pr "\n\n";
  let stmts = Ledger.statements ledger in
  let stmt_ratio =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (s : Ledger.stmt_total) ->
        Hashtbl.replace tbl (s.Ledger.s_nest, s.Ledger.s_stmt)
          (divergence_cell ~measured:s.Ledger.s_flit_hops ~predicted:s.Ledger.s_predicted))
      stmts;
    fun nest stmt -> Option.value (Hashtbl.find_opt tbl (nest, stmt)) ~default:"-"
  in
  let rows = Ledger.rows ledger in
  let by_weight =
    List.stable_sort
      (fun (a : Ledger.row) (b : Ledger.row) -> compare b.Ledger.flit_hops a.Ledger.flit_hops)
      rows
  in
  let shown = List.filteri (fun i _ -> i < top) by_weight in
  let total = max 1 (Ledger.total_flit_hops ledger) in
  pr "top %d of %d movement sources (by flit-hops):\n" (List.length shown) (List.length rows);
  let t =
    Ndp_prelude.Table.create
      ~header:[ "nest"; "stmt"; "array"; "route"; "msgs"; "flits"; "flit-hops"; "share"; "divergence" ]
  in
  List.iter
    (fun (row : Ledger.row) ->
      Ndp_prelude.Table.add_row t
        [
          row.Ledger.nest;
          string_of_int row.Ledger.stmt;
          row.Ledger.array_name;
          Printf.sprintf "%d->%d" row.Ledger.src row.Ledger.dst;
          string_of_int row.Ledger.messages;
          string_of_int row.Ledger.flits;
          string_of_int row.Ledger.flit_hops;
          Printf.sprintf "%.1f%%" (100.0 *. float_of_int row.Ledger.flit_hops /. float_of_int total);
          stmt_ratio row.Ledger.nest row.Ledger.stmt;
        ])
    shown;
  Buffer.add_string buf (Ndp_prelude.Table.render t);
  pr "\npredicted vs measured movement per statement (flit-hops):\n";
  let t =
    Ndp_prelude.Table.create ~header:[ "nest"; "stmt"; "predicted"; "measured"; "divergence" ]
  in
  List.iter
    (fun (s : Ledger.stmt_total) ->
      Ndp_prelude.Table.add_row t
        [
          s.Ledger.s_nest;
          string_of_int s.Ledger.s_stmt;
          string_of_int s.Ledger.s_predicted;
          string_of_int s.Ledger.s_flit_hops;
          divergence_cell ~measured:s.Ledger.s_flit_hops ~predicted:s.Ledger.s_predicted;
        ])
    stmts;
  Ndp_prelude.Table.add_row t
    [
      "(total)";
      "";
      string_of_int (Ledger.total_predicted ledger);
      string_of_int (Ledger.total_flit_hops ledger);
      divergence_cell ~measured:(Ledger.total_flit_hops ledger)
        ~predicted:(Ledger.total_predicted ledger);
    ];
  Buffer.add_string buf (Ndp_prelude.Table.render t);
  let measured = Ledger.total_flit_hops ledger in
  pr "\nreconciliation: ledger %d flit-hops vs noc.link_flits %d -> %s\n" measured link_flits
    (if measured = link_flits then "ok" else "MISMATCH");
  (match Timeline.series timeline with
  | [] -> ()
  | series ->
    let samples = List.fold_left (fun acc s -> acc + List.length s.Timeline.samples) 0 series in
    let dropped = List.fold_left (fun acc s -> acc + s.Timeline.dropped) 0 series in
    pr "timeline: %d series, interval %d cycles, %d samples, %d dropped"
      (List.length series) (Timeline.interval timeline) samples dropped);
  Buffer.contents buf

type profile_outcome = {
  p_result : Pipeline.result;
  p_sink : Ndp_obs.Sink.t;
  p_doc : Render.Json.t;
  p_human : unit -> string;
  p_reconciled : bool;
  p_measured : int;
  p_link_flits : int;
}

let profile ?pool ?(trace = false) ?(spans = Ndp_obs.Span.none) ~interval ~top
    (job : Pipeline.Job.t) =
  let obs =
    Ndp_obs.Sink.create ~metrics:true ~trace ~ledger:true ~timeline_interval:(max 0 interval) ()
  in
  let obs = { obs with Ndp_obs.Sink.spans = spans } in
  let r = Pipeline.Job.run ?pool ~obs job in
  let ledger = obs.Ndp_obs.Sink.ledger in
  let timeline = obs.Ndp_obs.Sink.timeline in
  let reg = obs.Ndp_obs.Sink.metrics in
  let link_flits = link_flits_total reg in
  let measured = Ledger.total_flit_hops ledger in
  let reconciled = measured = link_flits in
  (* Ledger/timeline JSON construction is a real cost on large apps;
     charge it to a "render" phase so traced requests reconcile. *)
  let doc =
    Ndp_obs.Span.with_span spans "render" @@ fun () ->
    Render.Json.Obj
      [
        ("result", result_json r);
        ("ledger", Ledger.to_json ledger);
        ("timeline", Timeline.to_json timeline);
        ( "reconciliation",
          Render.Json.Obj
            [
              ("ledger_flit_hops", Render.Json.Int measured);
              ("noc_link_flits", Render.Json.Int link_flits);
              ("reconciled", Render.Json.Bool reconciled);
            ] );
      ]
  in
  let human () = profile_human r ledger timeline ~top ~link_flits in
  {
    p_result = r;
    p_sink = obs;
    p_doc = doc;
    p_human = human;
    p_reconciled = reconciled;
    p_measured = measured;
    p_link_flits = link_flits;
  }

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)

let analyze_human (r : Pipeline.result) (table : Cost.t) stmt_of ~threshold ~ratio ~within =
  let buf = Buffer.create 2048 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "%s / %s static cost model\n\n" r.Pipeline.kernel_name r.Pipeline.scheme_name;
  pr "footprints and reuse (lines = nest-wide footprint in cache lines):\n";
  let t = Ndp_prelude.Table.create ~header:[ "nest"; "stmt"; "ref"; "affine"; "lines"; "reuse" ] in
  List.iter
    (fun (row : Cost.stmt_row) ->
      List.iter
        (fun (rr : Cost.ref_row) ->
          Ndp_prelude.Table.add_row t
            [
              row.Cost.c_nest;
              string_of_int row.Cost.c_stmt;
              rr.Cost.r_text;
              (if rr.Cost.r_affine then "yes" else "no");
              (match rr.Cost.r_lines with Some n -> string_of_int n | None -> "-");
              Ndp_ir.Reuse.to_string rr.Cost.r_reuse;
            ])
        row.Cost.c_refs)
    table.Cost.rows;
  Buffer.add_string buf (Ndp_prelude.Table.render t);
  pr "\nstatic vs measured movement per statement (flit-hops):\n";
  let t =
    Ndp_prelude.Table.create
      ~header:[ "nest"; "stmt"; "instances"; "static"; "predicted"; "measured"; "divergence" ]
  in
  List.iter
    (fun (row : Cost.stmt_row) ->
      let predicted, measured = stmt_of row.Cost.c_nest row.Cost.c_stmt in
      Ndp_prelude.Table.add_row t
        [
          row.Cost.c_nest;
          string_of_int row.Cost.c_stmt;
          string_of_int row.Cost.c_instances;
          string_of_int row.Cost.c_flit_hops;
          string_of_int predicted;
          string_of_int measured;
          ratio_cell (divergence_ratio ~static:row.Cost.c_flit_hops ~measured);
        ])
    table.Cost.rows;
  let measured_total = List.fold_left (fun acc r -> acc + snd (stmt_of r.Cost.c_nest r.Cost.c_stmt)) 0 table.Cost.rows in
  let predicted_total = List.fold_left (fun acc r -> acc + fst (stmt_of r.Cost.c_nest r.Cost.c_stmt)) 0 table.Cost.rows in
  Ndp_prelude.Table.add_row t
    [
      "(total)";
      "";
      "";
      string_of_int table.Cost.total_flit_hops;
      string_of_int predicted_total;
      string_of_int measured_total;
      ratio_cell ratio;
    ];
  Buffer.add_string buf (Ndp_prelude.Table.render t);
  (match table.Cost.windows with
  | [] -> ()
  | ws ->
    pr "\nanalytic windows: %s\n"
      (String.concat ", " (List.map (fun (n, w) -> Printf.sprintf "%s=%d" n w) ws)));
  pr "\nreconciliation: static %d vs measured %d flit-hops -> %s (threshold x%.2f)"
    table.Cost.total_flit_hops measured_total
    (if within then ratio_cell ratio ^ ", ok" else ratio_cell ratio ^ ", DIVERGED")
    threshold;
  Buffer.contents buf

type analyze_outcome = {
  a_result : Pipeline.result;
  a_doc : Render.Json.t;
  a_human : unit -> string;
  a_within : bool;
  a_ratio : float;
  a_static_total : int;
  a_measured_total : int;
}

let analyze ?pool ?(spans = Ndp_obs.Span.none) ~threshold (job : Pipeline.Job.t) =
  let config = job.Pipeline.Job.config in
  let scheme_v = job.Pipeline.Job.scheme in
  let kernel = job.Pipeline.Job.kernel in
  let table = Cost.table ~config ~scheme:scheme_v kernel in
  let obs = Ndp_obs.Sink.create ~metrics:false ~trace:false ~ledger:true () in
  let obs = { obs with Ndp_obs.Sink.spans = spans } in
  let r = Pipeline.Job.run ?pool ~obs job in
  let ledger = obs.Ndp_obs.Sink.ledger in
  let stmt_of =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (s : Ledger.stmt_total) ->
        Hashtbl.replace tbl (s.Ledger.s_nest, s.Ledger.s_stmt)
          (s.Ledger.s_predicted, s.Ledger.s_flit_hops))
      (Ledger.statements ledger);
    fun nest stmt -> Option.value (Hashtbl.find_opt tbl (nest, stmt)) ~default:(0, 0)
  in
  let measured_total = Ledger.total_flit_hops ledger in
  let ratio = divergence_ratio ~static:table.Cost.total_flit_hops ~measured:measured_total in
  let within = ratio <= threshold in
  let stmt_json (row : Cost.stmt_row) =
    let predicted, measured = stmt_of row.Cost.c_nest row.Cost.c_stmt in
    Render.Json.Obj
      [
        ("nest", Render.Json.Str row.Cost.c_nest);
        ("stmt", Render.Json.Int row.Cost.c_stmt);
        ("text", Render.Json.Str row.Cost.c_text);
        ("instances", Render.Json.Int row.Cost.c_instances);
        ( "refs",
          Render.Json.List
            (List.map
               (fun (rr : Cost.ref_row) ->
                 Render.Json.Obj
                   [
                     ("ref", Render.Json.Str rr.Cost.r_text);
                     ("array", Render.Json.Str rr.Cost.r_array);
                     ("affine", Render.Json.Bool rr.Cost.r_affine);
                     ( "lines",
                       match rr.Cost.r_lines with
                       | Some n -> Render.Json.Int n
                       | None -> Render.Json.Null );
                     ("reuse", Render.Json.Str (Ndp_ir.Reuse.to_string rr.Cost.r_reuse));
                   ])
               row.Cost.c_refs) );
        ("static_links", Render.Json.Int row.Cost.c_links);
        ("static_flit_hops", Render.Json.Int row.Cost.c_flit_hops);
        ("predicted_flit_hops", Render.Json.Int predicted);
        ("measured_flit_hops", Render.Json.Int measured);
        ( "divergence",
          Render.Json.Float (divergence_ratio ~static:row.Cost.c_flit_hops ~measured) );
      ]
  in
  let doc =
    Render.Json.Obj
      [
        ("app", Render.Json.Str r.Pipeline.kernel_name);
        ("scheme", Render.Json.Str r.Pipeline.scheme_name);
        ("statements", Render.Json.List (List.map stmt_json table.Cost.rows));
        ( "windows",
          Render.Json.Obj (List.map (fun (n, w) -> (n, Render.Json.Int w)) table.Cost.windows) );
        ( "totals",
          Render.Json.Obj
            [
              ("static_links", Render.Json.Int table.Cost.total_links);
              ("static_flit_hops", Render.Json.Int table.Cost.total_flit_hops);
              ("predicted_flit_hops", Render.Json.Int (Ledger.total_predicted ledger));
              ("measured_flit_hops", Render.Json.Int measured_total);
              ("divergence", Render.Json.Float ratio);
            ] );
        ("threshold", Render.Json.Float threshold);
        ("within_threshold", Render.Json.Bool within);
      ]
  in
  let human () = analyze_human r table stmt_of ~threshold ~ratio ~within in
  {
    a_result = r;
    a_doc = doc;
    a_human = human;
    a_within = within;
    a_ratio = ratio;
    a_static_total = table.Cost.total_flit_hops;
    a_measured_total = measured_total;
  }

(* ------------------------------------------------------------------ *)
(* analyze --fusion: per-decision predicted vs measured movement delta *)

type fusion_outcome = {
  f_fused : Pipeline.result;
  f_unfused : Pipeline.result;
  f_doc : Render.Json.t;
  f_human : unit -> string;
  f_fused_total : int; (** measured ledger flit-hops, fused run *)
  f_unfused_total : int;
  f_reduction_pct : float;
}

let chain_label (d : Ndp_core.Fusion.decision) =
  String.concat ">" (List.map (fun s -> Printf.sprintf "s%d" s) d.Ndp_core.Fusion.d_stmts)

(* Run the job fused and unfused (same window policy, same config), each
   with its own movement ledger, and join the fused run's fusion
   decisions with the per-statement measured flit-hop deltas — the same
   reconciliation discipline [analyze] applies to the static cost model,
   aimed at the fusion pass's own predictions. *)
let analyze_fusion ?pool (job : Pipeline.Job.t) =
  let opts =
    match job.Pipeline.Job.scheme with
    | Pipeline.Partitioned o -> o
    | Pipeline.Default -> Pipeline.partitioned_defaults
  in
  let fused_job =
    { job with Pipeline.Job.scheme = Pipeline.Partitioned { opts with Pipeline.fuse = true } }
  in
  let unfused_job =
    { job with Pipeline.Job.scheme = Pipeline.Partitioned { opts with Pipeline.fuse = false } }
  in
  let run_with_ledger j =
    let obs = Ndp_obs.Sink.create ~metrics:false ~trace:false ~ledger:true () in
    let r = Pipeline.Job.run ?pool ~obs j in
    let measured =
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun (s : Ledger.stmt_total) ->
          Hashtbl.replace tbl (s.Ledger.s_nest, s.Ledger.s_stmt) s.Ledger.s_flit_hops)
        (Ledger.statements obs.Ndp_obs.Sink.ledger);
      fun nest stmt -> Option.value (Hashtbl.find_opt tbl (nest, stmt)) ~default:0
    in
    (r, measured, Ledger.total_flit_hops obs.Ndp_obs.Sink.ledger)
  in
  let fused, fused_of, fused_total = run_with_ledger fused_job in
  let unfused, unfused_of, unfused_total = run_with_ledger unfused_job in
  let decisions = fused.Pipeline.fusion_decisions in
  let measured_delta (d : Ndp_core.Fusion.decision) =
    List.fold_left
      (fun acc s ->
        acc + unfused_of d.Ndp_core.Fusion.d_nest s - fused_of d.Ndp_core.Fusion.d_nest s)
      0 d.Ndp_core.Fusion.d_stmts
  in
  let reduction_pct =
    if unfused_total = 0 then 0.0
    else 100.0 *. float_of_int (unfused_total - fused_total) /. float_of_int unfused_total
  in
  let decision_json (d : Ndp_core.Fusion.decision) =
    Render.Json.Obj
      [
        ("nest", Render.Json.Str d.Ndp_core.Fusion.d_nest);
        ("chain", Render.Json.Str (chain_label d));
        ( "arrays",
          Render.Json.List
            (List.map (fun a -> Render.Json.Str a) d.Ndp_core.Fusion.d_arrays) );
        ("instances", Render.Json.Int d.Ndp_core.Fusion.d_instances);
        ("elided_stores", Render.Json.Int d.Ndp_core.Fusion.d_elided_stores);
        ("predicted_saved_flit_hops", Render.Json.Int d.Ndp_core.Fusion.d_pred_saved_flit_hops);
        ("measured_delta_flit_hops", Render.Json.Int (measured_delta d));
      ]
  in
  let doc =
    Render.Json.Obj
      [
        ("app", Render.Json.Str fused.Pipeline.kernel_name);
        ("fused_scheme", Render.Json.Str fused.Pipeline.scheme_name);
        ("unfused_scheme", Render.Json.Str unfused.Pipeline.scheme_name);
        ("decisions", Render.Json.List (List.map decision_json decisions));
        ( "totals",
          Render.Json.Obj
            [
              ("fused_flit_hops", Render.Json.Int fused_total);
              ("unfused_flit_hops", Render.Json.Int unfused_total);
              ( "predicted_saved_flit_hops",
                Render.Json.Int
                  (List.fold_left
                     (fun acc (d : Ndp_core.Fusion.decision) ->
                       acc + d.Ndp_core.Fusion.d_pred_saved_flit_hops)
                     0 decisions) );
              ("reduction_pct", Render.Json.Float reduction_pct);
            ] );
      ]
  in
  let human () =
    let buf = Buffer.create 1024 in
    let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    pr "%s fusion decisions (%s vs %s)\n\n" fused.Pipeline.kernel_name
      fused.Pipeline.scheme_name unfused.Pipeline.scheme_name;
    if decisions = [] then pr "no fusion decisions (no eligible producer→consumer chains)\n"
    else begin
      let t =
        Ndp_prelude.Table.create
          ~header:
            [ "nest"; "chain"; "arrays"; "instances"; "elided"; "pred_saved"; "measured_delta" ]
      in
      List.iter
        (fun (d : Ndp_core.Fusion.decision) ->
          Ndp_prelude.Table.add_row t
            [
              d.Ndp_core.Fusion.d_nest;
              chain_label d;
              String.concat "," d.Ndp_core.Fusion.d_arrays;
              string_of_int d.Ndp_core.Fusion.d_instances;
              string_of_int d.Ndp_core.Fusion.d_elided_stores;
              string_of_int d.Ndp_core.Fusion.d_pred_saved_flit_hops;
              string_of_int (measured_delta d);
            ])
        decisions;
      Buffer.add_string buf (Ndp_prelude.Table.render t)
    end;
    pr "\nmovement: unfused %d -> fused %d flit-hops (%.1f%% reduction)" unfused_total
      fused_total reduction_pct;
    Buffer.contents buf
  in
  {
    f_fused = fused;
    f_unfused = unfused;
    f_doc = doc;
    f_human = human;
    f_fused_total = fused_total;
    f_unfused_total = unfused_total;
    f_reduction_pct = reduction_pct;
  }

(* ------------------------------------------------------------------ *)
(* inject                                                              *)

type inject_outcome = {
  i_result : Pipeline.result;
  i_plan : Plan.t;
  i_reg : Metrics.t;
  i_doc : Render.Json.t;
  i_human : unit -> string;
}

let inject ?pool ?(spans = Ndp_obs.Span.none) ~spec (job : Pipeline.Job.t) =
  let config = job.Pipeline.Job.config in
  let plan =
    match job.Pipeline.Job.faults with
    | Some p -> p
    | None -> Plan.empty ~mesh:(Config.mesh config)
  in
  let repair = job.Pipeline.Job.repair in
  let obs = Ndp_obs.Sink.create ~metrics:true ~trace:false () in
  let obs = { obs with Ndp_obs.Sink.spans = spans } in
  let r = Pipeline.Job.run ?pool ~obs { job with Pipeline.Job.faults = Some plan } in
  let reg = obs.Ndp_obs.Sink.metrics in
  let doc =
    Render.Json.Obj
      [
        ("plan", plan_json plan ~spec ~repair);
        ("result", result_json r);
        ("remapped_tasks", Render.Json.Int r.Pipeline.remapped_tasks);
        ("metrics", metrics_json reg);
      ]
  in
  let human () =
    let fault_rows =
      List.filter_map
        (fun (name, sample) ->
          match sample with
          | Metrics.Counter_v v when Astring.String.is_prefix ~affix:"fault." name ->
            Some (Printf.sprintf "  %-24s %d" name v)
          | Metrics.Gauge_v v when Astring.String.is_prefix ~affix:"fault." name ->
            Some (Printf.sprintf "  %-24s %g" name v)
          | _ -> None)
        (Metrics.to_alist reg)
    in
    String.concat "\n"
      ([ "plan: " ^ Plan.describe plan; result_human r ]
      @ (if repair then
           [ Printf.sprintf "  remapped tasks     %d" r.Pipeline.remapped_tasks ]
         else [])
      @ if fault_rows = [] then [] else ("fault counters:" :: fault_rows))
  in
  { i_result = r; i_plan = plan; i_reg = reg; i_doc = doc; i_human = human }
