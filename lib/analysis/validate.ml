module Dep = Ndp_ir.Dependence
module Task = Ndp_sim.Task
module Window = Ndp_core.Window
module Pipeline = Ndp_core.Pipeline
module D = Diagnostic

type trace = {
  v_kernel : string;
  v_nest : string;
  v_metas : Window.meta list;
  v_tasks : Task.t list;
  v_sync_arcs : (int * int) list;
  v_roots : (int * int) list;
  v_serialized : bool;
}

let of_compiled ~kernel ~nest metas (compiled : Window.compiled) =
  {
    v_kernel = kernel;
    v_nest = nest;
    v_metas = metas;
    v_tasks = List.map fst compiled.Window.tasks;
    v_sync_arcs = compiled.Window.sync_arcs;
    v_roots = compiled.Window.roots;
    v_serialized = false;
  }

let of_pipeline_trace ~kernel = function
  | Pipeline.Serialized { t_nest; t_metas; t_tasks } ->
    {
      v_kernel = kernel;
      v_nest = t_nest;
      v_metas = t_metas;
      v_tasks = t_tasks;
      v_sync_arcs = [];
      (* One task per instance, in program order. *)
      v_roots = List.map (fun (t : Task.t) -> (t.Task.group, t.Task.id)) t_tasks;
      v_serialized = true;
    }
  | Pipeline.Windowed { t_nest; t_metas; t_compiled } ->
    of_compiled ~kernel ~nest:t_nest t_metas t_compiled

let instance_to_string (m : Window.meta) =
  Format.asprintf "S%d `%s' %a" m.Window.group
    (Ndp_ir.Stmt.to_string m.Window.inst.Dep.stmt)
    Ndp_ir.Env.pp m.Window.inst.Dep.env

(* The happens-before relation the emitted schedule actually guarantees:
   a consumer with a Result operand waits for its producer's message; a
   surviving synchronization arc is an explicit handshake; and a node runs
   its own program in emission order. Everything else is concurrent. *)
let happens_before trace =
  let tasks = Array.of_list trace.v_tasks in
  let n = Array.length tasks in
  let dense = Hashtbl.create (max 16 n) in
  Array.iteri (fun i (t : Task.t) -> Hashtbl.replace dense t.Task.id i) tasks;
  let edges = ref [] in
  let arc p c =
    match (Hashtbl.find_opt dense p, Hashtbl.find_opt dense c) with
    | Some a, Some b when a <> b -> edges := (a, b) :: !edges
    | _ -> ()
  in
  Array.iteri
    (fun i (t : Task.t) ->
      ignore i;
      List.iter
        (function
          | Task.Result { producer; bytes = _ } -> arc producer t.Task.id
          | Task.Load _ -> ())
        t.Task.operands)
    tasks;
  List.iter (fun (p, c) -> arc p c) trace.v_sync_arcs;
  (* Program order: globally under the serialized (default) regime,
     otherwise per node in emission order. *)
  let last_on : (int, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i (t : Task.t) ->
      let key = if trace.v_serialized then 0 else t.Task.node in
      (match Hashtbl.find_opt last_on key with
      | Some prev -> edges := (prev, i) :: !edges
      | None -> ());
      Hashtbl.replace last_on key i)
    tasks;
  let reach = Ndp_graph.Transitive.closure ~n !edges in
  let ordered src dst =
    match (Hashtbl.find_opt dense src, Hashtbl.find_opt dense dst) with
    | Some a, Some b -> a = b || reach.(a).(b)
    | _ -> false
  in
  ordered

let check ~resolver trace =
  let metas = Array.of_list trace.v_metas in
  let instances = List.map (fun (m : Window.meta) -> m.Window.inst) trace.v_metas in
  let deps = Dep.analyze resolver instances in
  let ordered = happens_before trace in
  let root_of g = List.assoc_opt g trace.v_roots in
  let node_of =
    let tbl = Hashtbl.create 64 in
    List.iter (fun (t : Task.t) -> Hashtbl.replace tbl t.Task.id t.Task.node) trace.v_tasks;
    Hashtbl.find_opt tbl
  in
  let loc = D.location trace.v_kernel ~nest:trace.v_nest in
  let seen = Hashtbl.create 16 in
  let diags = ref [] in
  List.iter
    (fun (d : Dep.dep) ->
      if not (Hashtbl.mem seen (d.Dep.src, d.Dep.dst, d.Dep.kind)) then begin
        Hashtbl.replace seen (d.Dep.src, d.Dep.dst, d.Dep.kind) ();
        let src = metas.(d.Dep.src) and dst = metas.(d.Dep.dst) in
        match (root_of src.Window.group, root_of dst.Window.group) with
        | Some psrc, Some pdst ->
          if not (ordered psrc pdst) then begin
            let node t = Option.value (node_of t) ~default:(-1) in
            let code, severity =
              if d.Dep.may then ("W301", D.Warning) else ("E301", D.Error)
            in
            diags :=
              D.makef ~code ~severity ~loc
                "%s%s dependence %s (node %d) -> %s (node %d) is not ordered by any surviving \
                 sync arc, result arc or same-node program order"
                (if d.Dep.may then "may-" else "")
                (Dep.kind_to_string d.Dep.kind)
                (instance_to_string src) (node psrc) (instance_to_string dst) (node pdst)
              :: !diags
          end
        | None, _ | _, None ->
          diags :=
            D.makef ~code:"E302" ~severity:D.Error ~loc
              "instance S%d or S%d was compiled without a final task: schedule trace is \
               incomplete"
              src.Window.group dst.Window.group
            :: !diags
      end)
    deps;
  List.stable_sort D.compare_diag (List.rev !diags)

let ground_truth_resolver (kernel : Ndp_core.Kernel.t) =
  let insp = Ndp_core.Kernel.inspector kernel in
  Ndp_ir.Inspector.run insp;
  Ndp_ir.Inspector.runtime_resolver insp ~address_of:(Ndp_core.Kernel.address_of kernel)

let check_result ~kernel (result : Pipeline.result) =
  let resolver = ground_truth_resolver kernel in
  List.concat_map
    (fun t -> check ~resolver (of_pipeline_trace ~kernel:kernel.Ndp_core.Kernel.name t))
    result.Pipeline.traces

let check_kernel ?(config = Ndp_sim.Config.default) scheme kernel =
  let result = Pipeline.run ~config ~validate:true scheme kernel in
  check_result ~kernel result
