open Ndp_ir

type outcome =
  | Range of int * int
  | Unbound of string
  | Non_affine

let of_affine ~bounds coeffs const =
  let step acc (v, c) =
    match acc with
    | Unbound _ | Non_affine -> acc
    | Range (lo, hi) -> (
      match bounds v with
      | None -> Unbound v
      | Some (vlo, vhi) ->
        (* vhi is exclusive; a coefficient's sign decides which end of the
           iteration range minimizes or maximizes the term. *)
        if vhi <= vlo then Range (lo, hi) (* empty loop: term contributes nothing *)
        else begin
          let a = c * vlo and b = c * (vhi - 1) in
          Range (lo + min a b, hi + max a b)
        end)
  in
  List.fold_left step (Range (const, const)) coeffs

let of_subscript ~bounds = function
  | Subscript.Affine { coeffs; const } -> of_affine ~bounds coeffs const
  | Subscript.Indirect _ -> Non_affine

let rec inner_of_indirect = function
  | Subscript.Affine _ -> None
  | Subscript.Indirect { index_array; inner } -> (
    match inner with
    | Subscript.Affine _ -> Some (index_array, inner)
    | Subscript.Indirect _ -> inner_of_indirect inner)

let bounds_of_nest (nest : Loop.nest) var =
  List.find_map
    (fun (v : Loop.loop_var) -> if v.Loop.var = var then Some (v.Loop.lo, v.Loop.hi) else None)
    nest.Loop.vars
