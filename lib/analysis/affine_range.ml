(* Relocated to [Ndp_ir.Affine_range] so that IR-level passes
   ([Ndp_ir.Reuse]) can share it; re-exported here for compatibility. *)
include Ndp_ir.Affine_range
