(** Pass 1: static well-formedness checks over a kernel's loop-nest IR.

    Algorithm 1 and everything downstream of it silently assume the IR is
    sane — subscripts stay inside declared extents ([Array_decl.address]
    wraps modulo the extent, so an out-of-bounds access is masked, not
    trapped), every array is declared, loops actually iterate. This pass
    makes those assumptions checkable.

    Rules (see DESIGN.md for the full table):
    - [E101] affine subscript (or an indirection's inner subscript) can
      leave the declared array extent over the nest's iteration space
    - [E102] reference to an undeclared array or index array
    - [E103] inspector-known index-array values leave the target extent
    - [E104] subscript uses a loop variable no enclosing loop binds
    - [W201] array is written but never read (dead stores)
    - [W202] non-affine reference without inspector coverage
    - [W203] degenerate (empty) loop bounds
    - [W204] window size exceeds a nest's statement-instance count

    The static cost model's W4xx family ({!Cost.lint_kernel}: W401
    footprint-exceeds-window, W402 non-affine reference defeats static
    analysis, W403 single-statement movement domination) is merged into
    the result. *)

val check_kernel : ?window:int -> Ndp_core.Kernel.t -> Diagnostic.t list
(** Lint one kernel; [?window] additionally checks a fixed window size
    against each nest's instance stream ([W204]). Diagnostics are sorted
    errors-first. *)
