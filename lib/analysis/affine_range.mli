(** Interval evaluation of affine subscripts over loop bounds.

    An affine subscript [c0 + c1*v1 + ... + ck*vk] attains its extrema at
    the corners of the iteration box, so the inclusive value range follows
    directly from each variable's bounds and its coefficient's sign. *)

type outcome =
  | Range of int * int (** inclusive [min, max] over the iteration space *)
  | Unbound of string (** a subscript variable no enclosing loop binds *)
  | Non_affine (** indirect subscript: not statically boundable *)

val of_subscript :
  bounds:(string -> (int * int) option) -> Ndp_ir.Subscript.t -> outcome
(** [bounds v] is the half-open iteration range of loop variable [v]
    ([lo, hi)), or [None] when [v] is not bound. Variables of empty loops
    contribute nothing (the statement never executes). *)

val inner_of_indirect : Ndp_ir.Subscript.t -> (string * Ndp_ir.Subscript.t) option
(** The innermost indirection of a subscript: the index array together with
    the affine subscript indexing it; [None] for affine subscripts. *)

val bounds_of_nest : Ndp_ir.Loop.nest -> string -> (int * int) option
(** The [bounds] function of one loop nest. *)
