module Pipeline = Ndp_core.Pipeline
module D = Diagnostic

type report = {
  kernel : string;
  scheme : string option;
  diagnostics : D.t list;
}

let lint_kernel ?window kernel =
  {
    kernel = kernel.Ndp_core.Kernel.name;
    scheme = None;
    diagnostics = Lint.check_kernel ?window kernel;
  }

let validate_kernel ?config scheme kernel =
  {
    kernel = kernel.Ndp_core.Kernel.name;
    scheme = Some (Pipeline.scheme_name scheme);
    diagnostics = Validate.check_kernel ?config scheme kernel;
  }

let check_kernel ?config ?window ~schemes kernel =
  lint_kernel ?window kernel :: List.map (fun s -> validate_kernel ?config s kernel) schemes

let check_suite ?config ?window ?(jobs = 1) ~schemes kernels =
  (* One cell per (kernel, pass): flattened in the exact order the serial
     concat_map produced, so the report list — and thus the rendered
     output — is identical at any job count. *)
  let cells =
    List.concat_map
      (fun kernel ->
        (fun () -> lint_kernel ?window kernel)
        :: List.map (fun s () -> validate_kernel ?config s kernel) schemes)
      kernels
  in
  if jobs <= 1 then List.map (fun cell -> cell ()) cells
  else
    Ndp_prelude.Pool.with_pool ~jobs (fun pool ->
        Ndp_prelude.Pool.parallel_map pool (fun cell -> cell ()) cells)

let all_diagnostics reports = List.concat_map (fun r -> r.diagnostics) reports

let has_errors reports = List.exists D.is_error (all_diagnostics reports)

let render_report format r =
  let pass = if r.scheme = None then "lint" else "validate" in
  let target =
    match r.scheme with None -> r.kernel | Some s -> Printf.sprintf "%s under %s" r.kernel s
  in
  match format with
  | D.Human ->
    let header =
      if r.diagnostics = [] then Printf.sprintf "%-8s %-40s ok" pass target
      else Printf.sprintf "%-8s %-40s %s" pass target (D.summary r.diagnostics)
    in
    String.concat "\n" (header :: List.map (fun d -> "  " ^ D.to_string d) r.diagnostics)
  | D.Sexp | D.Json | D.Jsonl ->
    String.concat "\n" (List.map (D.render format) r.diagnostics)

let render ?(format = D.Human) reports =
  match format with
  | D.Json ->
    (* One JSON array holding every diagnostic, parseable as a whole. *)
    "[" ^ String.concat "," (List.map D.to_json (all_diagnostics reports)) ^ "]"
  | _ ->
    let lines = List.filter (fun s -> s <> "") (List.map (render_report format) reports) in
    (match format with
    | D.Human -> String.concat "\n" (lines @ [ D.summary (all_diagnostics reports) ])
    | _ -> String.concat "\n" lines)
