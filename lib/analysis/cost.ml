(* Static (closed-form) movement cost tables.

   Everything here is compile-time only: the kernel is never simulated.
   Footprints and reuse come from the symbolic subscript analysis
   ([Affine_range]/[Reuse]); per-statement movement comes from the same
   splitter estimates the pipeline's compiler uses, driven by the analytic
   window model ([Window.analytic_of]) instead of per-candidate sampled
   compilation. The table's flit-hop column is therefore directly
   comparable to the Ledger's per-statement [s_predicted] and (to the
   extent the prediction is faithful) [s_flit_hops] columns — the
   [ndp_run analyze] subcommand performs exactly that reconciliation. *)

module Config = Ndp_sim.Config
module Pipeline = Ndp_core.Pipeline
module Window = Ndp_core.Window
module Context = Ndp_core.Context
module Kernel = Ndp_core.Kernel
module Splitter = Ndp_core.Splitter
module Dep = Ndp_ir.Dependence
module Loop = Ndp_ir.Loop
module Stmt = Ndp_ir.Stmt
module Reference = Ndp_ir.Reference
module Array_decl = Ndp_ir.Array_decl
module Affine_range = Ndp_ir.Affine_range
module Reuse = Ndp_ir.Reuse
module D = Diagnostic

type ref_row = {
  r_array : string;
  r_text : string;
  r_affine : bool;
  r_lines : int option;
  r_reuse : Reuse.t;
}

type stmt_row = {
  c_nest : string;
  c_stmt : int;
  c_text : string;
  c_instances : int;
  c_refs : ref_row list;
  c_links : int;
  c_flit_hops : int;
}

type t = {
  rows : stmt_row list;
  windows : (string * int) list;
  total_links : int;
  total_flit_hops : int;
}

let line_words config (d : Array_decl.t) =
  max 1 (config.Config.line_bytes / max 1 d.Array_decl.elem_size)

let ref_rows config (kernel : Kernel.t) (nest : Loop.nest) =
  let bounds = Affine_range.bounds_of_nest nest in
  let decls = kernel.Kernel.program.Loop.arrays in
  (* Undeclared arrays are E102's problem, not ours: assume word-sized
     elements so the classification still proceeds. *)
  let words name =
    match List.find_opt (fun (d : Array_decl.t) -> d.Array_decl.name = name) decls with
    | Some d -> line_words config d
    | None -> max 1 (config.Config.line_bytes / 8)
  in
  let classes = Reuse.classify_nest ~line_words:words nest in
  List.mapi
    (fun si (stmt : Stmt.t) ->
      List.mapi
        (fun pos (r : Reference.t) ->
          let reuse =
            match List.assoc_opt (si, pos) classes with
            | Some (_, cls) -> cls
            | None -> Reuse.None_
          in
          {
            r_array = r.Reference.array;
            r_text = Reference.to_string r;
            r_affine = Reference.analyzable r;
            r_lines =
              Affine_range.footprint_lines ~line_words:(words r.Reference.array) ~bounds
                r.Reference.subscript;
            r_reuse = reuse;
          })
        (Stmt.output stmt :: Stmt.inputs stmt))
    nest.Loop.body

(* Per-statement static movement of one nest, in link units, summed over
   the full instance stream — the closed-form counterpart of what the
   pipeline's [record_predicted] accumulates per statement. *)
let nest_movement ~scheme config ctx (nest : Loop.nest) metas =
  let spi = List.length nest.Loop.body in
  let links = Array.make (max 1 spi) 0 in
  let window =
    match scheme with
    | Pipeline.Default -> None
    | Pipeline.Partitioned o ->
      Some
        (match o.Pipeline.window with
        | Pipeline.Fixed k -> max 1 k
        | Pipeline.Adaptive | Pipeline.Analytic ->
          Window.choose_size_analytic ctx metas ~max:config.Config.max_window)
  in
  (match window with
  | None ->
    List.iter
      (fun (m : Window.meta) ->
        let est =
          Splitter.default_movement ctx ~store_node:m.Window.default_node m.Window.inst.Dep.stmt
            m.Window.inst.Dep.env
        in
        let si = m.Window.inst.Dep.stmt_idx in
        links.(si) <- links.(si) + est)
      metas
  | Some w ->
    let a = Window.analytic_of ctx metas ~window:w in
    List.iteri
      (fun i (m : Window.meta) ->
        let si = m.Window.inst.Dep.stmt_idx in
        links.(si) <- links.(si) + a.Window.a_est.(i))
      metas);
  (links, window)

let table ?(config = Config.default) ~scheme kernel =
  let ctx = Pipeline.static_context ~config scheme kernel in
  let line_flits = Config.flits_of_bytes config config.Config.line_bytes in
  let rows = ref [] in
  let windows = ref [] in
  let _ =
    List.fold_left
      (fun g (nest : Loop.nest) ->
        let metas, g' = Pipeline.nest_stream ctx nest ~first_group:g in
        let links, window = nest_movement ~scheme config ctx nest metas in
        Option.iter (fun w -> windows := (nest.Loop.nest_name, w) :: !windows) window;
        let refs = ref_rows config kernel nest in
        let instances = List.length metas / max 1 (List.length nest.Loop.body) in
        List.iteri
          (fun si (stmt : Stmt.t) ->
            rows :=
              {
                c_nest = nest.Loop.nest_name;
                c_stmt = si;
                c_text = Stmt.to_string stmt;
                c_instances = instances;
                c_refs = List.nth refs si;
                c_links = links.(si);
                c_flit_hops = links.(si) * line_flits;
              }
              :: !rows)
          nest.Loop.body;
        g')
      0 kernel.Kernel.program.Loop.nests
  in
  let rows = List.rev !rows in
  let total_links = List.fold_left (fun acc r -> acc + r.c_links) 0 rows in
  { rows; windows = List.rev !windows; total_links; total_flit_hops = total_links * line_flits }

(* ------------------------------------------------------------------ *)
(* W4xx lints: the static model critiquing the kernel.                 *)

(* Share of a nest's sampled static movement above which one statement is
   flagged as dominating the prediction (W403). *)
let domination_share = 0.9

let lint_kernel ?(config = Config.default) (kernel : Kernel.t) =
  let ctx = Pipeline.static_context ~config Pipeline.Default kernel in
  let window_lines = ctx.Context.var2node_cap in
  let diags = ref [] in
  let report d = diags := d :: !diags in
  let _ =
    List.fold_left
      (fun g (nest : Loop.nest) ->
        let nest_name = nest.Loop.nest_name in
        let refs = ref_rows config kernel nest in
        (* W401/W402: per-reference footprint and analyzability findings. *)
        List.iteri
          (fun si stmt_refs ->
            List.iter
              (fun rr ->
                let loc = D.location ~nest:nest_name ~stmt:si ~reference:rr.r_text kernel.Kernel.name in
                if not rr.r_affine then
                  report
                    (D.makef ~code:"W402" ~severity:D.Warning ~loc
                       "non-affine reference defeats static analysis: footprint and reuse \
                        of '%s' are invisible to the analytic cost model (inspector \
                        sampling is the only estimate)"
                       rr.r_text)
                else
                  match (rr.r_reuse, rr.r_lines) with
                  | Reuse.None_, _ | _, None -> ()
                  | _, Some lines when lines > window_lines ->
                    report
                      (D.makef ~code:"W401" ~severity:D.Warning ~loc
                         "footprint of %d lines exceeds the %d-line L1 reuse window: the \
                          %s reuse of '%s' will mostly miss at runtime"
                         lines window_lines (Reuse.to_string rr.r_reuse) rr.r_text)
                  | _ -> ())
              stmt_refs)
          refs;
        (* W403: one statement dominating the nest's predicted movement.
           A sample of the instance stream suffices (the same prefix the
           window-size preprocessing trusts). *)
        let metas, g' = Pipeline.nest_stream ctx nest ~first_group:g in
        let spi = List.length nest.Loop.body in
        if spi >= 2 then begin
          let sample = List.filteri (fun i _ -> i < 256) metas in
          let links = Array.make spi 0 in
          List.iter
            (fun (m : Window.meta) ->
              let est =
                Splitter.default_movement ctx ~store_node:m.Window.default_node
                  m.Window.inst.Dep.stmt m.Window.inst.Dep.env
              in
              links.(m.Window.inst.Dep.stmt_idx) <- links.(m.Window.inst.Dep.stmt_idx) + est)
            sample;
          let total = Array.fold_left ( + ) 0 links in
          if total > 0 then
            Array.iteri
              (fun si l ->
                if float_of_int l >= domination_share *. float_of_int total then
                  report
                    (D.makef ~code:"W403" ~severity:D.Warning
                       ~loc:(D.location ~nest:nest_name ~stmt:si kernel.Kernel.name)
                       "predicted movement is dominated by this statement (%d of %d link \
                        units, %.0f%%): window sizing and splitting decisions hinge on one \
                        statement's estimate"
                       l total
                       (100.0 *. float_of_int l /. float_of_int total)))
              links
        end;
        g')
      0 kernel.Kernel.program.Loop.nests
  in
  List.stable_sort D.compare_diag (List.rev !diags)
