open Ndp_ir
module D = Diagnostic

let refs_of_stmt stmt = Stmt.output stmt :: Stmt.inputs stmt

(* Every index array a subscript dereferences, innermost included. *)
let rec index_arrays_of_subscript = function
  | Subscript.Affine _ -> []
  | Subscript.Indirect { index_array; inner } -> index_array :: index_arrays_of_subscript inner

let outermost_index_array = function
  | Subscript.Affine _ -> None
  | Subscript.Indirect { index_array; _ } -> Some index_array

let array_range contents =
  match Array.length contents with
  | 0 -> None
  | n ->
    let lo = ref contents.(0) and hi = ref contents.(0) in
    for i = 1 to n - 1 do
      if contents.(i) < !lo then lo := contents.(i);
      if contents.(i) > !hi then hi := contents.(i)
    done;
    ignore n;
    Some (!lo, !hi)

let check_kernel ?window (kernel : Ndp_core.Kernel.t) =
  let program = kernel.Ndp_core.Kernel.program in
  let decls = program.Loop.arrays in
  let index_data = kernel.Ndp_core.Kernel.index_arrays in
  let decl_of name = List.find_opt (fun (d : Array_decl.t) -> d.Array_decl.name = name) decls in
  let inspected name = List.mem_assoc name index_data in
  let diags = ref [] in
  let report d = diags := d :: !diags in
  let kname = kernel.Ndp_core.Kernel.name in

  let check_extent ~loc ~what name range =
    match (decl_of name, range) with
    | Some decl, Affine_range.Range (lo, hi) ->
      if lo < 0 || hi >= decl.Array_decl.length then
        report
          (D.makef ~code:"E101" ~severity:D.Error ~loc
             "%s of %s spans [%d, %d] but the declared extent is [0, %d)" what name lo hi
             decl.Array_decl.length)
    | None, _ | _, (Affine_range.Unbound _ | Affine_range.Non_affine) -> ()
  in

  let check_reference ~nest ~stmt_idx (r : Reference.t) =
    let bounds = Affine_range.bounds_of_nest nest in
    let loc =
      D.location kname ~nest:nest.Loop.nest_name ~stmt:stmt_idx ~reference:(Reference.to_string r)
    in
    (* Unbound loop variables make the reference meaningless everywhere. *)
    List.iter
      (fun v ->
        if bounds v = None then
          report
            (D.makef ~code:"E104" ~severity:D.Error ~loc
               "subscript uses variable %s, which no enclosing loop binds" v))
      (Reference.vars r);
    (* The referenced array and every index array it goes through must be
       resolvable: declared, or (for index arrays) inspector-covered. *)
    (if decl_of r.Reference.array = None then
       report
         (D.makef ~code:"E102" ~severity:D.Error ~loc "array %s is not declared" r.Reference.array));
    List.iter
      (fun ia ->
        if decl_of ia = None && not (inspected ia) then
          report (D.makef ~code:"E102" ~severity:D.Error ~loc "index array %s is not declared" ia);
        if not (inspected ia) then
          report
            (D.makef ~code:"W202" ~severity:D.Warning ~loc
               "non-affine reference through %s has no inspector coverage: the compiler must \
                assume may-dependences against every access to %s"
               ia r.Reference.array))
      (index_arrays_of_subscript r.Reference.subscript);
    (* Bounds of the affine parts: the subscript itself against the
       referenced array, and each indirection's inner subscript against its
       index array. *)
    check_extent ~loc ~what:"affine subscript" r.Reference.array
      (Affine_range.of_subscript ~bounds r.Reference.subscript);
    (match Affine_range.inner_of_indirect r.Reference.subscript with
    | Some (ia, inner) ->
      check_extent ~loc ~what:"index-array subscript" ia (Affine_range.of_subscript ~bounds inner)
    | None -> ());
    (* Ground-truth value bounds: an indirect subscript evaluates to an
       element of its outermost index array, so when the inspector has the
       contents the reachable index range is exactly their min/max. *)
    (match outermost_index_array r.Reference.subscript with
    | Some ia -> (
      match (List.assoc_opt ia index_data, decl_of r.Reference.array) with
      | Some contents, Some decl -> (
        match array_range contents with
        | Some (lo, hi) ->
          if lo < 0 || hi >= decl.Array_decl.length then
            report
              (D.makef ~code:"E103" ~severity:D.Error ~loc
                 "index array %s holds values in [%d, %d] but %s's extent is [0, %d)" ia lo hi
                 r.Reference.array decl.Array_decl.length)
        | None -> ())
      | _ -> ())
    | None -> ())
  in

  let check_nest (nest : Loop.nest) =
    let nest_loc = D.location kname ~nest:nest.Loop.nest_name in
    List.iter
      (fun (v : Loop.loop_var) ->
        if v.Loop.hi <= v.Loop.lo then
          report
            (D.makef ~code:"W203" ~severity:D.Warning ~loc:nest_loc
               "loop %s iterates [%d, %d): the nest body never executes" v.Loop.var v.Loop.lo
               v.Loop.hi))
      nest.Loop.vars;
    let empty = List.exists (fun (v : Loop.loop_var) -> v.Loop.hi <= v.Loop.lo) nest.Loop.vars in
    if not empty then
      List.iteri
        (fun stmt_idx stmt -> List.iter (check_reference ~nest ~stmt_idx) (refs_of_stmt stmt))
        nest.Loop.body;
    (match window with
    | Some w ->
      let instances = Loop.trip_count nest * List.length nest.Loop.body in
      if w > instances then
        report
          (D.makef ~code:"W204" ~severity:D.Warning ~loc:nest_loc
             "window size %d exceeds the nest's %d statement instances: the whole nest is a \
              single window"
             w instances)
    | None -> ())
  in
  List.iter check_nest program.Loop.nests;

  (* Dead stores: arrays some statement writes but nothing ever reads.
     Index arrays count as read wherever a subscript dereferences them. *)
  let written =
    List.concat_map
      (fun (n : Loop.nest) -> List.map (fun s -> (Stmt.output s).Reference.array) n.Loop.body)
      program.Loop.nests
  in
  let read =
    List.concat_map
      (fun (n : Loop.nest) ->
        List.concat_map
          (fun s ->
            List.map (fun (r : Reference.t) -> r.Reference.array) (Stmt.inputs s)
            @ List.concat_map
                (fun (r : Reference.t) -> index_arrays_of_subscript r.Reference.subscript)
                (refs_of_stmt s))
          n.Loop.body)
      program.Loop.nests
  in
  List.iter
    (fun name ->
      if not (List.mem name read) then
        report
          (D.makef ~code:"W201" ~severity:D.Warning
             ~loc:(D.location kname ~reference:name)
             "array %s is written but never read: every store to it is dead" name))
    (List.sort_uniq compare written);
  (* The W4xx family comes from the static cost model; merge and re-sort
     so codes interleave deterministically with the structural findings. *)
  List.stable_sort D.compare_diag (List.rev !diags @ Cost.lint_kernel kernel)
