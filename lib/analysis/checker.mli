(** Suite-level driver: run the IR linter and the schedule validator over
    kernels and collect per-kernel, per-scheme reports. Backs the
    [ndp_run check] subcommand and the analysis test suite. *)

type report = {
  kernel : string;
  scheme : string option; (** [None] for lint, scheme name for validation *)
  diagnostics : Diagnostic.t list;
}

val lint_kernel : ?window:int -> Ndp_core.Kernel.t -> report

val validate_kernel :
  ?config:Ndp_sim.Config.t -> Ndp_core.Pipeline.scheme -> Ndp_core.Kernel.t -> report

val check_kernel :
  ?config:Ndp_sim.Config.t ->
  ?window:int ->
  schemes:Ndp_core.Pipeline.scheme list ->
  Ndp_core.Kernel.t ->
  report list
(** Lint once, then validate under each scheme. *)

val check_suite :
  ?config:Ndp_sim.Config.t ->
  ?window:int ->
  ?jobs:int ->
  schemes:Ndp_core.Pipeline.scheme list ->
  Ndp_core.Kernel.t list ->
  report list
(** With [jobs > 1] the (kernel, pass) cells run concurrently on a domain
    pool; the report list is identical to the serial one (cells are
    independent: each builds its own inspector, machine and context). *)

val all_diagnostics : report list -> Diagnostic.t list

val has_errors : report list -> bool

val render : ?format:Diagnostic.format -> report list -> string
(** Human format prints a per-pass status line plus indented diagnostics
    and a final summary; sexp/jsonl print one machine-readable line per
    diagnostic; json prints a single array of every diagnostic. *)
