(** Pass 2: schedule validation — a static race detector over compiled
    schedules.

    Sync minimization ([Sync_min] via [Transitive.reduction]) prunes
    synchronization arcs it believes are transitively implied, and the
    compiler's resolver is weaker than ground truth (it cannot see through
    uninspected indirect references). A bug in either produces a schedule
    that looks plausible and simulates fine but is racy. This pass
    re-derives the dependence set with the runtime (ground-truth) resolver
    and proves every dependence is still ordered by what the schedule
    actually guarantees:

    - a {e result arc}: the consumer holds a [Task.Result] operand and
      blocks on the producer's message;
    - a {e surviving sync arc}: an explicit handshake [Sync_min] kept;
    - {e same-node program order}: a node executes its emitted task list
      in order (globally, under the serialized default scheme).

    The validator checks the statement-level contract the compiler
    enforces: the producer's final task (which performs the store) must
    happen-before the consumer's final task. Dependences are checked
    within each compiled window — the scope over which the sync graph is
    built and minimized.

    Violations are reported as [E301] (definite race), [W301] (may-race:
    at least one side unresolvable even at runtime) or [E302] (incomplete
    trace), naming the dependence kind, both statement instances and their
    assigned mesh nodes. *)

type trace = {
  v_kernel : string;
  v_nest : string;
  v_metas : Ndp_core.Window.meta list; (** instances, window order *)
  v_tasks : Ndp_sim.Task.t list; (** emission order *)
  v_sync_arcs : (int * int) list; (** surviving handshakes *)
  v_roots : (int * int) list; (** statement group -> final task id *)
  v_serialized : bool; (** emission order is a total order *)
}

val of_compiled :
  kernel:string -> nest:string -> Ndp_core.Window.meta list -> Ndp_core.Window.compiled -> trace
(** Trace of one directly-compiled window (see [Window.compile]). *)

val of_pipeline_trace : kernel:string -> Ndp_core.Pipeline.schedule_trace -> trace

val check : resolver:Ndp_ir.Dependence.resolver -> trace -> Diagnostic.t list
(** Re-derive dependences over the trace's instances with [resolver] and
    report every one the schedule leaves unordered. Tests tamper with the
    trace (dropping a sync arc or result operand) to prove detection. *)

val ground_truth_resolver : Ndp_core.Kernel.t -> Ndp_ir.Dependence.resolver
(** Runtime resolver over a fresh, already-run inspector: resolves every
    reference the kernel's index arrays cover. *)

val check_result : kernel:Ndp_core.Kernel.t -> Ndp_core.Pipeline.result -> Diagnostic.t list
(** Validate every trace a [Pipeline.run ~validate:true] captured. *)

val check_kernel :
  ?config:Ndp_sim.Config.t -> Ndp_core.Pipeline.scheme -> Ndp_core.Kernel.t -> Diagnostic.t list
(** Compile-and-validate one kernel under one scheme. *)
