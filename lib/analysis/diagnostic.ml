type severity = Error | Warning | Info

type location = {
  kernel : string;
  nest : string option;
  stmt : int option;
  reference : string option;
}

type t = { code : string; severity : severity; loc : location; message : string }

let location ?nest ?stmt ?reference kernel = { kernel; nest; stmt; reference }

let make ~code ~severity ~loc message = { code; severity; loc; message }

let makef ~code ~severity ~loc fmt =
  Printf.ksprintf (fun message -> make ~code ~severity ~loc message) fmt

let severity_to_string = function Error -> "error" | Warning -> "warning" | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let is_error d = d.severity = Error

let count severity diags = List.length (List.filter (fun d -> d.severity = severity) diags)

let compare_diag a b =
  let c = compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = compare a.code b.code in
    if c <> 0 then c else compare (a.loc, a.message) (b.loc, b.message)

let loc_to_string loc =
  String.concat ""
    [
      loc.kernel;
      (match loc.nest with Some n -> "/" ^ n | None -> "");
      (match loc.stmt with Some i -> Printf.sprintf " stmt %d" i | None -> "");
      (match loc.reference with Some r -> Printf.sprintf " ref %s" r | None -> "");
    ]

let to_string d =
  Printf.sprintf "%s[%s] %s: %s" (severity_to_string d.severity) d.code (loc_to_string d.loc)
    d.message

(* S-expression atoms: quote anything beyond a bare symbol and escape the
   quotes/backslashes inside, so the output parses back. *)
let atom s =
  let bare c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '-' || c = '_' || c = '.' || c = '/'
  in
  if s <> "" && String.for_all bare s then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' || c = '\\' then Buffer.add_char buf '\\';
        Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let to_sexp d =
  let field name value = Printf.sprintf "(%s %s)" name (atom value) in
  let opt name = function Some v -> [ field name v ] | None -> [] in
  String.concat " "
    ([
       "(diagnostic";
       field "code" d.code;
       field "severity" (severity_to_string d.severity);
       field "kernel" d.loc.kernel;
     ]
    @ opt "nest" d.loc.nest
    @ opt "stmt" (Option.map string_of_int d.loc.stmt)
    @ opt "ref" d.loc.reference
    @ [ field "message" d.message ^ ")" ])

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_json d =
  let field name value = Printf.sprintf "%s:%s" (json_string name) value in
  let opt name = function Some v -> [ field name (json_string v) ] | None -> [] in
  "{"
  ^ String.concat ","
      ([
         field "code" (json_string d.code);
         field "severity" (json_string (severity_to_string d.severity));
         field "kernel" (json_string d.loc.kernel);
       ]
      @ opt "nest" d.loc.nest
      @ (match d.loc.stmt with Some i -> [ field "stmt" (string_of_int i) ] | None -> [])
      @ opt "ref" d.loc.reference
      @ [ field "message" (json_string d.message) ])
  ^ "}"

type format = Ndp_obs.Render.format = Human | Sexp | Json | Jsonl

let render format d =
  match format with
  | Human -> to_string d
  | Sexp -> to_sexp d
  | Json | Jsonl -> to_json d

let summary diags =
  Printf.sprintf "%d error(s), %d warning(s), %d info" (count Error diags) (count Warning diags)
    (count Info diags)
