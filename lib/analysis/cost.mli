(** Static (closed-form) movement cost tables and the W4xx lint family.

    A purely compile-time counterpart of the Ledger: per statement, the
    symbolic footprint and reuse class of every array reference, plus a
    closed-form movement estimate in the splitter's link units (and its
    flit-hop normalization, the unit the Ledger measures). [ndp_run
    analyze] renders the table and reconciles it against a measured run;
    the W4xx lints surface the places where the static model is blind or
    fragile. *)

type ref_row = {
  r_array : string;
  r_text : string;  (** printed reference *)
  r_affine : bool;
  r_lines : int option;
      (** nest-wide footprint in cache lines; [None] when non-affine *)
  r_reuse : Ndp_ir.Reuse.t;
}

type stmt_row = {
  c_nest : string;
  c_stmt : int;  (** statement index within the nest body *)
  c_text : string;
  c_instances : int;  (** instances over the full stream (all sweeps) *)
  c_refs : ref_row list;  (** output first, then inputs *)
  c_links : int;  (** static movement over all instances, link units *)
  c_flit_hops : int;  (** [c_links] normalized to the Ledger's unit *)
}

type t = {
  rows : stmt_row list;
  windows : (string * int) list;
      (** analytic window size per nest (partitioned schemes only) *)
  total_links : int;
  total_flit_hops : int;
}

val table : ?config:Ndp_sim.Config.t -> scheme:Ndp_core.Pipeline.scheme -> Ndp_core.Kernel.t -> t
(** The static cost table for a kernel under a scheme. [Default] prices
    every instance at its default movement; partitioned schemes run the
    analytic window model ([Window.analytic_of]) under the scheme's window
    policy (adaptive and analytic policies both size nests with
    {!Ndp_core.Window.choose_size_analytic} — no sampled compilation). *)

val lint_kernel : ?config:Ndp_sim.Config.t -> Ndp_core.Kernel.t -> Diagnostic.t list
(** The W4xx family, sorted by {!Diagnostic.compare_diag}:

    - [W401] — a reference with classified reuse has a footprint larger
      than the modelled L1 reuse window, so the reuse will mostly miss;
    - [W402] — a non-affine reference defeats static analysis entirely;
    - [W403] — one statement contributes ≥90% of a multi-statement nest's
      predicted movement, making the partitioner's decisions hinge on a
      single estimate. *)
