(** Structured diagnostics shared by the IR linter and the schedule
    validator.

    Every finding carries a stable code so tooling can filter and tests can
    assert on specific rules:

    - [E1xx] — IR lint errors (malformed or out-of-bounds kernels)
    - [W2xx] — IR lint warnings (suspicious but executable kernels)
    - [E3xx] — schedule-validation errors (dependence races)

    Diagnostics render both human-readable ({!to_string}) and
    machine-readable (s-expression {!to_sexp}, JSON-lines {!to_json}). *)

type severity = Error | Warning | Info

type location = {
  kernel : string;
  nest : string option; (** loop nest name, when the finding is nest-scoped *)
  stmt : int option; (** statement index within the nest body *)
  reference : string option; (** offending reference, printed form *)
}

type t = { code : string; severity : severity; loc : location; message : string }

val location : ?nest:string -> ?stmt:int -> ?reference:string -> string -> location
(** [location kernel] with optional narrowing. *)

val make : code:string -> severity:severity -> loc:location -> string -> t

val makef :
  code:string -> severity:severity -> loc:location -> ('a, unit, string, t) format4 -> 'a

val severity_to_string : severity -> string

val is_error : t -> bool

val count : severity -> t list -> int

val compare_diag : t -> t -> int
(** Orders errors before warnings before infos, then by code. *)

val to_string : t -> string
(** [error[E101] barnes/force stmt 2 ref a[i+1]: ...] *)

val to_sexp : t -> string
(** One s-expression per diagnostic; atoms are quoted and escaped. *)

val to_json : t -> string
(** One JSON object per diagnostic (JSON-lines friendly). *)

type format = Ndp_obs.Render.format = Human | Sexp | Json | Jsonl
(** Re-export of the shared CLI format vocabulary. For a single
    diagnostic, [Json] and [Jsonl] coincide (one object); {!Checker.render}
    distinguishes them (one array vs. one object per line). *)

val render : format -> t -> string

val summary : t list -> string
(** ["N error(s), M warning(s), K info"]. *)
