(** Fixed-size domain work pool.

    A pool owns [jobs - 1] worker domains plus the calling domain (which
    helps execute tasks while it waits), so [parallel_map] runs up to
    [jobs] tasks concurrently. Results are returned in input order and
    the first (lowest-index) exception is re-raised after every task of
    the call has finished, so a failing element cannot leave orphan tasks
    running behind the caller's back.

    Nested use is safe: a [parallel_map] issued from inside a pool task
    (or on a pool of size 1) degrades to an ordinary serial [List.map]
    on the calling domain, so library code can accept a pool without
    caring whether it is already running under one. *)

type t

val default_jobs : unit -> int
(** Parallelism used when [create] is not given [jobs]: the [NDP_JOBS]
    environment variable if set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]. *)

val create : ?jobs:int -> unit -> t
(** Spawn a pool of [jobs] (default {!default_jobs}). Values below 1 are
    clamped to 1; a pool of size 1 spawns no domains and runs everything
    inline. The pool registers an [at_exit] shutdown, so leaking one
    cannot hang process exit. *)

val size : t -> int
(** The parallelism [create] granted (including the calling domain). *)

val parallel_map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map t f xs] applies [f] to every element of [xs], possibly
    concurrently, and returns the results in input order. If one or more
    applications raise, every task still runs to completion and then the
    exception of the lowest-index failure is re-raised (with its
    backtrace). *)

val parallel_iter : t -> ('a -> unit) -> 'a list -> unit

val run_serially : (unit -> 'a) -> 'a
(** [run_serially f] runs [f ()] with this domain marked as a pool
    worker, forcing any [parallel_map] it performs onto the serial
    path. Used by determinism tests to compare against parallel runs. *)

val shutdown : t -> unit
(** Stop and join the worker domains. Idempotent; the pool afterwards
    behaves as a size-1 (inline) pool. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run, then [shutdown] (also on exception). *)
