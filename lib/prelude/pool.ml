type t = {
  jobs : int;
  mutex : Mutex.t;
  work_available : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable live : bool;
  mutable workers : unit Domain.t list;
}

(* Marks a domain as currently executing pool work: a nested
   [parallel_map] from such a domain must not enqueue-and-wait on the
   same pool (the workers it would wait for are busy running it), so it
   degrades to serial. *)
let in_worker : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

let inside_pool () = !(Domain.DLS.get in_worker)

let run_serially f =
  let flag = Domain.DLS.get in_worker in
  let saved = !flag in
  flag := true;
  Fun.protect ~finally:(fun () -> flag := saved) f

let default_jobs () =
  match Sys.getenv_opt "NDP_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let worker_loop t =
  Domain.DLS.get in_worker := true;
  let running = ref true in
  while !running do
    Mutex.lock t.mutex;
    while t.live && Queue.is_empty t.queue do
      Condition.wait t.work_available t.mutex
    done;
    match Queue.take_opt t.queue with
    | Some task ->
      Mutex.unlock t.mutex;
      task ()
    | None ->
      (* Queue drained and the pool is shutting down. *)
      running := false;
      Mutex.unlock t.mutex
  done

let shutdown t =
  Mutex.lock t.mutex;
  t.live <- false;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  let workers = t.workers in
  t.workers <- [];
  List.iter Domain.join workers

let create ?jobs () =
  let jobs = max 1 (Option.value jobs ~default:(default_jobs ())) in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work_available = Condition.create ();
      queue = Queue.create ();
      live = true;
      workers = [];
    }
  in
  if jobs > 1 then begin
    t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
    (* A leaked pool must not block process exit on blocked workers. *)
    at_exit (fun () -> shutdown t)
  end;
  t

let size t = t.jobs

(* Tasks enqueued on the pool never raise: [parallel_map] wraps each
   application in a [result] and re-raises on the calling domain. *)
let parallel_map t f xs =
  if t.jobs <= 1 || t.workers = [] || inside_pool () then List.map f xs
  else begin
    let arr = Array.of_list xs in
    let n = Array.length arr in
    if n = 0 then []
    else begin
      let results = Array.make n None in
      let remaining = ref n in
      let call_done = Condition.create () in
      let run i () =
        let r =
          try Ok (f arr.(i)) with e -> Error (e, Printexc.get_raw_backtrace ())
        in
        Mutex.lock t.mutex;
        results.(i) <- Some r;
        decr remaining;
        if !remaining = 0 then Condition.broadcast call_done;
        Mutex.unlock t.mutex
      in
      Mutex.lock t.mutex;
      for i = 0 to n - 1 do
        Queue.push (run i) t.queue
      done;
      Condition.broadcast t.work_available;
      (* Help drain the queue while waiting: the caller is the pool's
         jobs-th lane, and helping also prevents deadlock when a helped
         task issues a nested map. *)
      let rec wait () =
        if !remaining > 0 then
          match Queue.take_opt t.queue with
          | Some task ->
            Mutex.unlock t.mutex;
            task ();
            Mutex.lock t.mutex;
            wait ()
          | None ->
            Condition.wait call_done t.mutex;
            wait ()
      in
      wait ();
      Mutex.unlock t.mutex;
      let first_error = ref None in
      Array.iter
        (fun r ->
          match (r, !first_error) with
          | Some (Error e), None -> first_error := Some e
          | _ -> ())
        results;
      match !first_error with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None ->
        Array.to_list
          (Array.map
             (function Some (Ok v) -> v | Some (Error _) | None -> assert false)
             results)
    end
  end

let parallel_iter t f xs = ignore (parallel_map t f xs)

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
