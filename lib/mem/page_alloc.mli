(** Virtual-to-physical page allocation.

    The paper relies on an OS page-coloring API that preserves the cache-bank
    and memory-channel bits of the virtual address during VA-to-PA
    translation, which is what lets the compiler infer on-chip data location
    from virtual addresses (Section 4.1). [Coloring] models that API;
    [Scrambled] models a stock allocator that randomizes page frames, used to
    ablate the OS support. *)

type policy = Coloring | Scrambled

type t

val create : ?seed:int -> policy:policy -> ?metrics:Ndp_obs.Metrics.t -> Addr_map.t -> t
(** With an enabled [metrics] registry, first-touch allocations bump a
    [mem.page_faults] counter and a derived [mem.pages_resident] gauge
    reports the live page count at dump time. *)

val policy : t -> policy

val translate : t -> int -> int
(** [translate t va] is the physical address of [va]. The translation is a
    function: repeated calls agree. Under [Coloring] the channel bits of the
    page number are preserved; page-offset bits are always preserved. *)

val compiler_view : t -> int -> int
(** The physical address the {e compiler} believes [va] maps to. Under
    [Coloring] this equals [translate]; under [Scrambled] the compiler can
    only assume an identity mapping, so its view diverges from reality —
    exactly the imprecision the paper's OS support removes. *)
