type t = {
  capacity_blocks : int;
  map : Addr_map.t;
  last_seen : (int, int) Hashtbl.t; (* block -> sequence number *)
  mutable seq : int;
  mutable correct : int;
  mutable total : int;
}

let create ~capacity_blocks map =
  if capacity_blocks <= 0 then invalid_arg "Miss_predictor.create: capacity must be positive";
  { capacity_blocks; map; last_seen = Hashtbl.create 4096; seq = 0; correct = 0; total = 0 }

let predict t addr =
  let block = Addr_map.line_of_addr t.map addr in
  match Hashtbl.find t.last_seen block with
  | exception Not_found -> false
  | s -> t.seq - s < t.capacity_blocks

let note_access t addr =
  let block = Addr_map.line_of_addr t.map addr in
  t.seq <- t.seq + 1;
  Hashtbl.replace t.last_seen block t.seq

let confirm t ~addr ~predicted ~hit =
  t.total <- t.total + 1;
  if predicted = hit then t.correct <- t.correct + 1;
  note_access t addr

let accuracy t = if t.total = 0 then 0.0 else float_of_int t.correct /. float_of_int t.total

let observations t = t.total
