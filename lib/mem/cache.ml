type t = {
  num_sets : int;
  assoc : int;
  line_bits : int;
  tags : int array; (* num_sets * assoc, -1 = invalid *)
  stamps : int array; (* LRU recency stamps *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let log2_exact n =
  let rec go acc v = if v = 1 then acc else go (acc + 1) (v / 2) in
  if n <= 0 || n land (n - 1) <> 0 then invalid_arg "Cache: size must be a power of two"
  else go 0 n

let create ?(metrics = Ndp_obs.Metrics.disabled) ?(metric_name = "cache") ~size_bytes ~assoc
    ~line_bytes () =
  if assoc <= 0 then invalid_arg "Cache.create: assoc must be positive";
  let lines = size_bytes / line_bytes in
  if lines < assoc || lines mod assoc <> 0 then
    invalid_arg "Cache.create: size / line_bytes must be a positive multiple of assoc";
  let num_sets = lines / assoc in
  ignore (log2_exact num_sets);
  let t =
    {
      num_sets;
      assoc;
      line_bits = log2_exact line_bytes;
      tags = Array.make (num_sets * assoc) (-1);
      stamps = Array.make (num_sets * assoc) 0;
      clock = 0;
      hits = 0;
      misses = 0;
      evictions = 0;
    }
  in
  (* Derived gauges read the cache's own counters at dump time, so the
     access path is identical whether or not metrics are enabled. *)
  if Ndp_obs.Metrics.enabled metrics then begin
    let open Ndp_obs.Metrics in
    gauge_fn metrics (metric_name ^ ".hits") (fun () -> float_of_int t.hits);
    gauge_fn metrics (metric_name ^ ".misses") (fun () -> float_of_int t.misses);
    gauge_fn metrics (metric_name ^ ".evictions") (fun () -> float_of_int t.evictions)
  end;
  t

let set_of t block = block land (t.num_sets - 1)

(* Allocation-free way lookup (-1 = miss): the cache is probed several
   times per simulated memory access, so the option the original
   returned was a measurable share of the simulator's minor heap. *)
let find_slot t block =
  let s = set_of t block in
  let base = s * t.assoc in
  let rec go i =
    if i = t.assoc then -1
    else if t.tags.(base + i) = block then base + i
    else go (i + 1)
  in
  go 0

let touch t slot =
  t.clock <- t.clock + 1;
  t.stamps.(slot) <- t.clock

let victim_slot t block =
  let base = set_of t block * t.assoc in
  let rec go best i =
    if i = t.assoc then best
    else if t.tags.(base + i) = -1 then base + i
    else
      let best = if t.stamps.(base + i) < t.stamps.(best) then base + i else best in
      go best (i + 1)
  in
  go base 0

let fill t slot block =
  if t.tags.(slot) >= 0 then t.evictions <- t.evictions + 1;
  t.tags.(slot) <- block;
  touch t slot

let insert t addr =
  let block = addr lsr t.line_bits in
  let slot = find_slot t block in
  if slot >= 0 then touch t slot else fill t (victim_slot t block) block

let invalidate t addr =
  let slot = find_slot t (addr lsr t.line_bits) in
  if slot >= 0 then begin
    t.tags.(slot) <- -1;
    t.stamps.(slot) <- 0
  end

let access t addr =
  let block = addr lsr t.line_bits in
  let slot = find_slot t block in
  if slot >= 0 then begin
    touch t slot;
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    fill t (victim_slot t block) block;
    false
  end

let probe t addr = find_slot t (addr lsr t.line_bits) >= 0

let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0

let clear t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0;
  t.clock <- 0;
  reset_stats t

let num_sets t = t.num_sets
let assoc t = t.assoc
