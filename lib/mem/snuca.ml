type t = {
  mesh : Ndp_noc.Mesh.t;
  cluster : Ndp_noc.Cluster.t;
  map : Addr_map.t;
  quad_nodes : int array array; (* quadrant -> member nodes, ascending *)
  m_lookups : Ndp_obs.Metrics.vec; (* mem.home_lookups{bank} *)
}

let create ?(metrics = Ndp_obs.Metrics.disabled) mesh cluster map =
  let m_lookups =
    Ndp_obs.Metrics.vec metrics "mem.home_lookups" ~size:(Ndp_noc.Mesh.size mesh)
      ~label:(fun i -> Printf.sprintf "bank=%d" i)
  in
  let quad_nodes =
    Array.init 4 (fun q -> Array.of_list (Ndp_noc.Mesh.nodes_in_quadrant mesh q))
  in
  { mesh; cluster; map; quad_nodes; m_lookups }

let home_node t addr =
  let line = Addr_map.line_of_addr t.map addr in
  let node =
    match t.cluster with
    | Ndp_noc.Cluster.All_to_all | Ndp_noc.Cluster.Quadrant ->
      line mod Ndp_noc.Mesh.size t.mesh
    | Ndp_noc.Cluster.Snc4 ->
      (* Lines interleave over the nodes of the quadrant owning the page. *)
      let quadrant = Addr_map.channel t.map addr mod 4 in
      let nodes = t.quad_nodes.(quadrant) in
      nodes.(line mod Array.length nodes)
  in
  Ndp_obs.Metrics.vadd t.m_lookups node 1;
  node

let note_lookups t ~bank ~count = Ndp_obs.Metrics.vadd t.m_lookups bank count

let mc_node t addr =
  let home_bank = home_node t addr in
  let channel = Addr_map.channel t.map addr in
  Ndp_noc.Cluster.mc_for t.cluster t.mesh ~home_bank ~channel

let mesh t = t.mesh
let cluster t = t.cluster
let addr_map t = t.map
