(** Static NUCA address-to-node homing.

    In SNUCA each cache line is statically mapped to an L2 bank (its home
    bank) from its physical address; the bank index is then a node of the
    mesh. Under the SNC-4 cluster mode the home bank is additionally
    constrained to the quadrant selected by the page's channel bits, which
    models KNL's quadrant-local address affinity. *)

type t

val create : ?metrics:Ndp_obs.Metrics.t -> Ndp_noc.Mesh.t -> Ndp_noc.Cluster.t -> Addr_map.t -> t
(** With an enabled [metrics] registry, every {!home_node} lookup bumps a
    per-bank [mem.home_lookups{bank}] counter. *)

val home_node : t -> int -> int
(** Node id of the home L2 bank for a physical address. *)

val note_lookups : t -> bank:int -> count:int -> unit
(** Account [count] home-bank lookups against [bank] without performing
    them — for profiling passes that evaluate one lookup and reuse the
    result where the naive code would have looked the line up again. *)

val mc_node : t -> int -> int
(** Node id of the memory controller servicing an L2 miss on the address. *)

val mesh : t -> Ndp_noc.Mesh.t
val cluster : t -> Ndp_noc.Cluster.t
val addr_map : t -> Addr_map.t
