type policy = Coloring | Scrambled

type t = {
  policy : policy;
  map : Addr_map.t;
  frames : (int, int) Hashtbl.t; (* virtual page -> physical page *)
  rng : Ndp_prelude.Rng.t;
  m_faults : Ndp_obs.Metrics.counter; (* mem.page_faults: first-touch allocations *)
}

let create ?(seed = 0x5eed) ~policy ?(metrics = Ndp_obs.Metrics.disabled) map =
  let frames = Hashtbl.create 1024 in
  if Ndp_obs.Metrics.enabled metrics then
    Ndp_obs.Metrics.gauge_fn metrics "mem.pages_resident" (fun () ->
        float_of_int (Hashtbl.length frames));
  {
    policy;
    map;
    frames;
    rng = Ndp_prelude.Rng.create seed;
    m_faults = Ndp_obs.Metrics.counter metrics "mem.page_faults";
  }

let policy t = t.policy

let frame_of t vpage =
  match Hashtbl.find_opt t.frames vpage with
  | Some p -> p
  | None ->
    Ndp_obs.Metrics.incr t.m_faults;
    let p =
      match t.policy with
      | Coloring -> vpage
      | Scrambled ->
        (* A fresh random frame per page, deterministic in allocation order. *)
        let r = Ndp_prelude.Rng.int t.rng (1 lsl 20) in
        (r lsl 2) lor (Ndp_prelude.Rng.int t.rng 4)
    in
    Hashtbl.replace t.frames vpage p;
    p

let translate t va =
  let bits = Addr_map.page_bits t.map in
  let offset = va land ((1 lsl bits) - 1) in
  (frame_of t (va lsr bits) lsl bits) lor offset

let compiler_view t va =
  match t.policy with
  | Coloring -> translate t va
  | Scrambled -> va
