type policy = Coloring | Scrambled

(* Direct-mapped software TLB in front of the frame table. Every memory
   reference the simulator models goes through [translate], so the
   Hashtbl probe per access was one of the hottest paths in the whole
   pipeline. The TLB caches only pages that already exist in [frames]:
   first-touch allocation (and its fault counter / RNG draws) still runs
   exactly once per page, in first-access order. *)
let tlb_slots = 1024 (* power of two *)

type t = {
  policy : policy;
  map : Addr_map.t;
  frames : (int, int) Hashtbl.t; (* virtual page -> physical page *)
  tlb_tags : int array; (* vpage per slot, -1 = empty *)
  tlb_frames : int array;
  rng : Ndp_prelude.Rng.t;
  m_faults : Ndp_obs.Metrics.counter; (* mem.page_faults: first-touch allocations *)
}

let create ?(seed = 0x5eed) ~policy ?(metrics = Ndp_obs.Metrics.disabled) map =
  let frames = Hashtbl.create 1024 in
  if Ndp_obs.Metrics.enabled metrics then
    Ndp_obs.Metrics.gauge_fn metrics "mem.pages_resident" (fun () ->
        float_of_int (Hashtbl.length frames));
  {
    policy;
    map;
    frames;
    tlb_tags = Array.make tlb_slots (-1);
    tlb_frames = Array.make tlb_slots 0;
    rng = Ndp_prelude.Rng.create seed;
    m_faults = Ndp_obs.Metrics.counter metrics "mem.page_faults";
  }

let policy t = t.policy

let frame_of t vpage =
  let slot = vpage land (tlb_slots - 1) in
  if t.tlb_tags.(slot) = vpage then t.tlb_frames.(slot)
  else begin
    let p =
      match Hashtbl.find_opt t.frames vpage with
      | Some p -> p
      | None ->
        Ndp_obs.Metrics.incr t.m_faults;
        let p =
          match t.policy with
          | Coloring -> vpage
          | Scrambled ->
            (* A fresh random frame per page, deterministic in allocation
               order. *)
            let r = Ndp_prelude.Rng.int t.rng (1 lsl 20) in
            (r lsl 2) lor (Ndp_prelude.Rng.int t.rng 4)
        in
        Hashtbl.replace t.frames vpage p;
        p
    in
    t.tlb_tags.(slot) <- vpage;
    t.tlb_frames.(slot) <- p;
    p
  end

let translate t va =
  let bits = Addr_map.page_bits t.map in
  let offset = va land ((1 lsl bits) - 1) in
  (frame_of t (va lsr bits) lsl bits) lor offset

let compiler_view t va =
  match t.policy with
  | Coloring -> translate t va
  | Scrambled -> va
