(** Generic set-associative cache with LRU replacement.

    Addresses are tracked at cache-line granularity; callers pass raw
    addresses and the cache derives the block number. *)

type t

val create :
  ?metrics:Ndp_obs.Metrics.t ->
  ?metric_name:string ->
  size_bytes:int ->
  assoc:int ->
  line_bytes:int ->
  unit ->
  t
(** When [metrics] is an enabled registry, derived gauges
    [<metric_name>.hits], [.misses] and [.evictions] are registered; they
    read the cache's own counters at dump time, so the access path does
    not change. [metric_name] defaults to ["cache"]. *)

val access : t -> int -> bool
(** [access t addr] looks the line up, updates recency and inserts on miss
    (allocate-on-miss). Returns [true] on hit. *)

val probe : t -> int -> bool
(** Lookup without any state change. *)

val insert : t -> int -> unit
(** Force the line in (e.g. fill after a remote fetch), evicting LRU. *)

val invalidate : t -> int -> unit
(** Drop the line if present (coherence invalidation). *)

val hits : t -> int
val misses : t -> int

val evictions : t -> int
(** Valid lines displaced by fills (capacity/conflict victims). *)

val hit_rate : t -> float
(** Hits over accesses; 0 before any access. *)

val reset_stats : t -> unit

val clear : t -> unit
(** Drop all contents and statistics. *)

val num_sets : t -> int
val assoc : t -> int
