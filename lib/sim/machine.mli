(** The simulated manycore: per-node L1s, distributed SNUCA L2 banks,
    corner memory controllers, MCDRAM/DDR backing store and the mesh
    network. Implements the access flow of Figure 1: L1 miss -> home L2
    bank -> (on L2 miss) memory controller -> fill back. *)

type t

type outcome = {
  arrival : int; (** cycle at which the data reaches the requesting core *)
  l1_hit : bool;
  l2_hit : bool option; (** [None] when the L1 satisfied the access *)
}

val create : ?obs:Ndp_obs.Sink.t -> ?faults:Ndp_fault.Plan.t -> Config.t -> t
(** With [obs], the machine registers per-node L1 hit/miss vectors
    ([mem.l1_hits{node}], ...), per-bank L2 vectors
    ([mem.l2_bank_hits{bank}], ...), per-MC request counts, derived cache
    hit/miss/eviction gauges and the network's per-link families in
    [obs.metrics], and message traffic in [obs.trace]. Disabled by
    default; observability never changes timing or [stats].

    With [faults], the plan is forwarded to the internal {!Network} (link
    degradation and kill-retry penalties) and memory latency behind a
    backpressured controller is multiplied by the plan's MC factor,
    surfaced as [fault.mc_penalty_cycles]. Without a plan, timing is
    byte-identical to the pre-fault simulator. *)

val set_hot_ranges : t -> (int * int) list -> unit
(** Virtual-address [(base, length_bytes)] ranges placed in MCDRAM under
    the flat and hybrid memory modes (the VTune-guided placement of
    Section 6.1). *)

val set_l1_boost : t -> float -> unit
(** With probability [p], convert an L1 miss into a hit. Used by the S1
    isolation scheme (Figure 18) to impose the optimized code's L1 profile
    on the default placement. *)

val set_mc_overrides : t -> (int * int) list -> unit
(** [(virtual_page, mc_node)] pairs that redirect L2-miss service for those
    pages — the profile-based data-to-MC mapping of Figure 23. *)

val load : t -> node:int -> va:int -> bytes:int -> time:int -> stats:Stats.t -> outcome

val store : t -> node:int -> va:int -> bytes:int -> time:int -> stats:Stats.t -> int
(** Write-back of a result to its home L2 bank; returns completion time.
    The writing core does not stall on it. *)

val store_local : t -> node:int -> va:int -> bytes:int -> time:int -> stats:Stats.t -> int
(** Store of a fused intermediate: the line stays in the executing node's
    L1 (coherence invalidations still fire) and no write-back crosses the
    NoC. Legal only when the fusion pass proved every consumer of the
    value runs on this node. *)

val translate : t -> int -> int
(** VA -> PA under the configured page policy. *)

val compiler_translate : t -> int -> int
(** The compiler's view of the translation (see {!Ndp_mem.Page_alloc}). *)

val home_node : t -> va:int -> int
(** Home L2 bank node for a VA (runtime truth). *)

val note_home_lookups : t -> bank:int -> count:int -> unit
(** Account [count] extra [mem.home_lookups{bank}] metric bumps without
    re-translating — used by compiler profiling passes that batch a
    computation the per-candidate code evaluated repeatedly, keeping the
    metric's meaning (lookups the profile pass performs) unchanged. *)

val compiler_home_node : t -> va:int -> int

val compiler_mc_node : t -> va:int -> int

val probe_l2 : t -> va:int -> bool
(** Ground-truth L2 residency; used only by the ideal-data-analysis
    scheme. *)

val l1_probe : t -> node:int -> va:int -> bool

val network : t -> Network.t

val config : t -> Config.t

val mesh : t -> Ndp_noc.Mesh.t
