module Mesh = Ndp_noc.Mesh
module Cache = Ndp_mem.Cache
module Snuca = Ndp_mem.Snuca
module Page_alloc = Ndp_mem.Page_alloc
module Metrics = Ndp_obs.Metrics
module Ledger = Ndp_obs.Ledger

(* Per-line coherence state: a bitset over node ids for O(1) membership
   plus an insertion-order stack so invalidations still walk holders
   newest-first (the order the old cons-list encoding iterated in). The
   record is mutated in place — one table lookup per touch, no list
   rebuilding. *)
type sharer_set = {
  mutable bits : int array; (* node-id bitset, 63 nodes per word *)
  mutable stack : int array; (* nodes in insertion order *)
  mutable len : int;
}

type t = {
  config : Config.t;
  mesh : Mesh.t;
  faults : Ndp_fault.Plan.t option;
  snuca : Snuca.t;
  pages : Page_alloc.t;
  network : Network.t;
  l1s : Cache.t array; (* one per node *)
  l2s : Cache.t array; (* one bank per node *)
  mcdram_cache : Cache.t option; (* memory-side cache: cache & hybrid modes *)
  mutable hot_ranges : (int * int) list;
  mutable hot_sorted : (int * int) array; (* by base, for binary search *)
  mutable hot_max_len : int;
  mutable l1_boost : float;
  boost_rng : Ndp_prelude.Rng.t;
  mc_overrides : (int, int) Hashtbl.t; (* virtual page -> mc node *)
  sharers : (int, sharer_set) Hashtbl.t; (* VA line -> nodes with an L1 copy *)
  m_l1_hits : Metrics.vec; (* mem.l1_hits{node} *)
  m_l1_misses : Metrics.vec;
  m_l2_bank_hits : Metrics.vec; (* mem.l2_bank_hits{bank} *)
  m_l2_bank_misses : Metrics.vec;
  m_mc_requests : Metrics.vec; (* mem.mc_requests{node}: L2-miss service per MC *)
  m_mc_penalty : Metrics.counter; (* fault.mc_penalty_cycles *)
  ledger : Ledger.t;
}

type outcome = { arrival : int; l1_hit : bool; l2_hit : bool option }

let create ?(obs = Ndp_obs.Sink.none) ?faults (config : Config.t) =
  let mesh = Config.mesh config in
  let map = Config.addr_map config in
  let n = Mesh.size mesh in
  let reg = obs.Ndp_obs.Sink.metrics in
  let node_label i = Printf.sprintf "node=%d" i in
  let l1 i =
    Cache.create ~size_bytes:config.l1_size ~assoc:config.l1_assoc
      ~line_bytes:config.line_bytes ~metrics:reg
      ~metric_name:(Printf.sprintf "mem.l1.%d" i) ()
  in
  let l2 i =
    Cache.create ~size_bytes:config.l2_bank_size ~assoc:config.l2_assoc
      ~line_bytes:config.line_bytes ~metrics:reg
      ~metric_name:(Printf.sprintf "mem.l2_bank.%d" i) ()
  in
  let mcdram_cache =
    match config.memory_mode with
    | Config.Flat -> None
    | Config.Cache_mode ->
      Some
        (Cache.create ~size_bytes:config.mcdram_capacity ~assoc:1
           ~line_bytes:config.line_bytes ~metrics:reg ~metric_name:"mem.mcdram_cache" ())
    | Config.Hybrid ->
      Some
        (Cache.create ~size_bytes:(config.mcdram_capacity / 2) ~assoc:1
           ~line_bytes:config.line_bytes ~metrics:reg ~metric_name:"mem.mcdram_cache" ())
  in
  {
    config;
    mesh;
    faults;
    snuca = Snuca.create ~metrics:reg mesh config.cluster map;
    pages = Page_alloc.create ~seed:config.seed ~policy:config.page_policy ~metrics:reg map;
    network = Network.create ~obs ?faults config;
    l1s = Array.init n l1;
    l2s = Array.init n l2;
    mcdram_cache;
    hot_ranges = [];
    hot_sorted = [||];
    hot_max_len = 0;
    l1_boost = 0.0;
    boost_rng = Ndp_prelude.Rng.create (config.seed + 7);
    mc_overrides = Hashtbl.create 64;
    sharers = Hashtbl.create 4096;
    m_l1_hits = Metrics.vec reg "mem.l1_hits" ~size:n ~label:node_label;
    m_l1_misses = Metrics.vec reg "mem.l1_misses" ~size:n ~label:node_label;
    m_l2_bank_hits = Metrics.vec reg "mem.l2_bank_hits" ~size:n ~label:(fun i -> Printf.sprintf "bank=%d" i);
    m_l2_bank_misses =
      Metrics.vec reg "mem.l2_bank_misses" ~size:n ~label:(fun i -> Printf.sprintf "bank=%d" i);
    m_mc_requests = Metrics.vec reg "mem.mc_requests" ~size:n ~label:node_label;
    m_mc_penalty =
      (* Registered only under a plan, keeping fault-free dumps unchanged. *)
      Metrics.counter (match faults with Some _ -> reg | None -> Metrics.disabled) "fault.mc_penalty_cycles";
    ledger = obs.Ndp_obs.Sink.ledger;
  }

let set_hot_ranges t ranges =
  t.hot_ranges <- ranges;
  let sorted = Array.of_list ranges in
  Array.sort (fun (a, _) (b, _) -> compare a b) sorted;
  t.hot_sorted <- sorted;
  t.hot_max_len <- Array.fold_left (fun m (_, len) -> max m len) 0 sorted

let set_l1_boost t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Machine.set_l1_boost: probability out of range";
  t.l1_boost <- p

let set_mc_overrides t pairs =
  Hashtbl.reset t.mc_overrides;
  List.iter (fun (page, mc) -> Hashtbl.replace t.mc_overrides page mc) pairs

(* Binary search for the rightmost range with [base <= va], then walk left
   only as far as [hot_max_len] allows a range to still cover [va] — exact
   for overlapping ranges, O(log n) for the disjoint common case. *)
let is_hot t va =
  let a = t.hot_sorted in
  let n = Array.length a in
  if n = 0 then false
  else begin
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fst a.(mid) <= va then lo := mid + 1 else hi := mid
    done;
    (* a.(!lo - 1) is the rightmost range starting at or below va. *)
    let rec covered i =
      if i < 0 then false
      else
        let base, len = a.(i) in
        if base + t.hot_max_len <= va then false
        else va >= base && va < base + len || covered (i - 1)
    in
    covered (!lo - 1)
  end

let translate t va = Page_alloc.translate t.pages va

let compiler_translate t va = Page_alloc.compiler_view t.pages va

let home_node t ~va = Snuca.home_node t.snuca (translate t va)

let note_home_lookups t ~bank ~count = Snuca.note_lookups t.snuca ~bank ~count

let compiler_home_node t ~va = Snuca.home_node t.snuca (compiler_translate t va)

let compiler_mc_node t ~va = Snuca.mc_node t.snuca (compiler_translate t va)

(* Latency of servicing a request at the backing memory, per memory mode.
   Under flat/hybrid modes, arrays placed in MCDRAM are fast; under
   cache/hybrid modes a direct-mapped memory-side cache filters DDR. *)
let memory_latency t va pa stats =
  let c = t.config in
  let mcdram () =
    Stats.incr_mcdram_accesses stats;
    c.mcdram_cycles
  in
  let ddr () =
    Stats.incr_ddr_accesses stats;
    c.ddr_cycles
  in
  let through_cache cache =
    if Cache.access cache pa then mcdram () else mcdram () + ddr ()
  in
  match (c.memory_mode, t.mcdram_cache) with
  | Config.Flat, _ -> if is_hot t va then mcdram () else ddr ()
  | Config.Cache_mode, Some cache -> through_cache cache
  | Config.Hybrid, Some cache -> if is_hot t va then mcdram () else through_cache cache
  | (Config.Cache_mode | Config.Hybrid), None -> assert false

(* A request header is small; replies carry the data payload. *)
let request_bytes = 8

let line_of t va = va / t.config.Config.line_bytes

let set_words n = (n + 62) / 63

let set_mem s node = s.bits.(node / 63) land (1 lsl (node mod 63)) <> 0

let set_add s node =
  s.bits.(node / 63) <- s.bits.(node / 63) lor (1 lsl (node mod 63));
  if s.len = Array.length s.stack then begin
    let grown = Array.make (max 4 (2 * s.len)) 0 in
    Array.blit s.stack 0 grown 0 s.len;
    s.stack <- grown
  end;
  s.stack.(s.len) <- node;
  s.len <- s.len + 1

let sharer_set_of t line =
  match Hashtbl.find_opt t.sharers line with
  | Some s -> s
  | None ->
    let s =
      { bits = Array.make (set_words (Mesh.size t.mesh)) 0; stack = Array.make 4 0; len = 0 }
    in
    Hashtbl.add t.sharers line s;
    s

let note_sharer t ~node ~va =
  let s = sharer_set_of t (line_of t va) in
  if not (set_mem s node) then set_add s node

(* Write-invalidate coherence: a store kills every other node's L1 copy of
   the line; each invalidation is a small message from the writer. The
   holder walk runs newest-first — the iteration order of the cons-list
   encoding this replaced — because each send perturbs link occupancy, so
   the order is observable in latency stats. *)
let invalidate_sharers t ~writer ~va ~time ~stats =
  if t.config.Config.coherence then begin
    let line = line_of t va in
    let s = sharer_set_of t line in
    for i = s.len - 1 downto 0 do
      let node = s.stack.(i) in
      if node <> writer && Cache.probe t.l1s.(node) va then begin
        ignore (Network.send t.network ~time ~src:writer ~dst:node ~bytes:request_bytes ~stats);
        (* Evict by filling the slot with a poison tag: reinsert of the
           same line later will miss. *)
        Cache.invalidate t.l1s.(node) va;
        Stats.incr_invalidations stats
      end
    done;
    Array.fill s.bits 0 (Array.length s.bits) 0;
    s.len <- 0;
    set_add s writer
  end

(* Next-line prefetch: on an L1 miss, also pull line+1 from its own home
   bank into the requester's L1, off the critical path. *)
let prefetch_next t ~node ~va ~time ~stats =
  if t.config.Config.prefetch_next_line then begin
    let next_va = ((line_of t va) + 1) * t.config.Config.line_bytes in
    if not (Cache.probe t.l1s.(node) next_va) then begin
      Ledger.enter_va t.ledger next_va;
      let pa = translate t next_va in
      let home = Snuca.home_node t.snuca pa in
      ignore (Network.send t.network ~time ~src:node ~dst:home ~bytes:request_bytes ~stats);
      ignore
        (Network.send t.network ~time ~src:home ~dst:node ~bytes:t.config.Config.line_bytes ~stats);
      Cache.insert t.l2s.(home) pa;
      Cache.insert t.l1s.(node) next_va;
      note_sharer t ~node ~va:next_va;
      Stats.incr_prefetches stats
    end
  end

let mc_for t ~va ~pa =
  let vpage = va lsr Ndp_mem.Addr_map.page_bits (Snuca.addr_map t.snuca) in
  match Hashtbl.find_opt t.mc_overrides vpage with
  | Some mc -> mc
  | None -> Snuca.mc_node t.snuca pa

let load t ~node ~va ~bytes ~time ~stats =
  ignore bytes;
  Ledger.enter_va t.ledger va;
  let c = t.config in
  (* Data always moves at cache-line granularity on the mesh. *)
  let fill_bytes = c.Config.line_bytes in
  let l1_hit =
    Cache.access t.l1s.(node) va
    ||
    (t.l1_boost > 0.0
    &&
    if Ndp_prelude.Rng.chance t.boost_rng t.l1_boost then begin
      Cache.insert t.l1s.(node) va;
      true
    end
    else false)
  in
  if l1_hit then begin
    Stats.incr_l1_hits stats;
    Metrics.vadd t.m_l1_hits node 1;
    { arrival = time + c.l1_hit_cycles; l1_hit = true; l2_hit = None }
  end
  else begin
    Stats.incr_l1_misses stats;
    Metrics.vadd t.m_l1_misses node 1;
    let pa = translate t va in
    let home = Snuca.home_node t.snuca pa in
    let at_home = Network.send t.network ~time ~src:node ~dst:home ~bytes:request_bytes ~stats in
    let l2 = t.l2s.(home) in
    if Cache.access l2 pa then begin
      Stats.incr_l2_hits stats;
      Metrics.vadd t.m_l2_bank_hits home 1;
      let ready = at_home + c.l2_hit_cycles in
      let arrival = Network.send t.network ~time:ready ~src:home ~dst:node ~bytes:fill_bytes ~stats in
      Cache.insert t.l1s.(node) va;
      note_sharer t ~node ~va;
      prefetch_next t ~node ~va ~time:arrival ~stats;
      { arrival = arrival + c.l1_hit_cycles; l1_hit = false; l2_hit = Some true }
    end
    else begin
      Stats.incr_l2_misses stats;
      Metrics.vadd t.m_l2_bank_misses home 1;
      let mc = mc_for t ~va ~pa in
      Metrics.vadd t.m_mc_requests mc 1;
      let tag_checked = at_home + c.l2_hit_cycles in
      let at_mc =
        Network.send t.network ~time:tag_checked ~src:home ~dst:mc ~bytes:request_bytes ~stats
      in
      let mem_lat = memory_latency t va pa stats in
      (* MC backpressure: a plan can multiply the service latency behind a
         controller, modelling a saturated or throttled channel. *)
      let mem_lat =
        match t.faults with
        | None -> mem_lat
        | Some plan ->
          let f = Ndp_fault.Plan.mc_factor plan mc in
          if f = 1.0 then mem_lat
          else begin
            let slowed = int_of_float (ceil (float_of_int mem_lat *. f)) in
            Metrics.add t.m_mc_penalty (slowed - mem_lat);
            slowed
          end
      in
      let served = at_mc + mem_lat in
      (* The memory reply returns directly to the requester (as on KNL);
         the home bank receives its fill off the critical path. *)
      ignore (Network.send t.network ~time:served ~src:mc ~dst:home ~bytes:c.line_bytes ~stats);
      Cache.insert l2 pa;
      let arrival = Network.send t.network ~time:served ~src:mc ~dst:node ~bytes:fill_bytes ~stats in
      Cache.insert t.l1s.(node) va;
      note_sharer t ~node ~va;
      prefetch_next t ~node ~va ~time:arrival ~stats;
      { arrival = arrival + c.l1_hit_cycles; l1_hit = false; l2_hit = Some false }
    end
  end

let store t ~node ~va ~bytes ~time ~stats =
  ignore bytes;
  Ledger.enter_va t.ledger va;
  let pa = translate t va in
  let home = Snuca.home_node t.snuca pa in
  invalidate_sharers t ~writer:node ~va ~time ~stats;
  Cache.insert t.l1s.(node) va;
  note_sharer t ~node ~va;
  let arrival = Network.send t.network ~time ~src:node ~dst:home ~bytes:t.config.Config.line_bytes ~stats in
  Cache.insert t.l2s.(home) pa;
  arrival

(* Fused-intermediate store: the value stays in the producer node's L1 and
   is never written back to the home bank, because the fusion pass proved
   every consumer runs on this same node. Coherence invalidations still
   fire (another node may hold a stale copy from an earlier sweep), but no
   line crosses the NoC toward home and the L2 bank is left untouched. *)
let store_local t ~node ~va ~bytes ~time ~stats =
  ignore bytes;
  Ledger.enter_va t.ledger va;
  invalidate_sharers t ~writer:node ~va ~time ~stats;
  Cache.insert t.l1s.(node) va;
  note_sharer t ~node ~va;
  time

let probe_l2 t ~va =
  let pa = translate t va in
  let home = Snuca.home_node t.snuca pa in
  Cache.probe t.l2s.(home) pa

let l1_probe t ~node ~va = Cache.probe t.l1s.(node) va

let network t = t.network

let config t = t.config

let mesh t = t.mesh
