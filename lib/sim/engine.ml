module Metrics = Ndp_obs.Metrics
module Trace = Ndp_obs.Trace
module Ledger = Ndp_obs.Ledger
module Timeline = Ndp_obs.Timeline

type exec_record = { node : int; start : int; finish : int; group : int }

(* Task and group ids are dense small integers (allocated by counters in
   the compiler context / instance streamer), so per-task bookkeeping
   lives in growable arrays instead of hashtables: [Engine.run] performs
   several lookups per operand and this is the simulator's hottest loop. *)
module Slots = struct
  type 'a t = { mutable data : 'a array; absent : 'a }

  let create absent = { data = Array.make 256 absent; absent }

  let ensure t i =
    let n = Array.length t.data in
    if i >= n then begin
      let n' = ref (n * 2) in
      while i >= !n' do
        n' := !n' * 2
      done;
      let grown = Array.make !n' t.absent in
      Array.blit t.data 0 grown 0 n;
      t.data <- grown
    end

  let set t i v =
    ensure t i;
    t.data.(i) <- v

  let get t i = if i >= 0 && i < Array.length t.data then t.data.(i) else t.absent
end

(* Execution spans of one statement group, packed [start0; finish0;
   start1; ...] in a growable array: span recording is once per task, and
   the cons-list encoding this replaced allocated on every append. *)
type spans = { mutable s_data : int array; mutable s_len : int (* ints used *) }

let empty_spans = { s_data = [||]; s_len = 0 }

type t = {
  machine : Machine.t;
  stats : Stats.t;
  faults : Ndp_fault.Plan.t option;
  node_free : int array;
  finished : exec_record option Slots.t; (* task id -> execution record *)
  group_hops : int Slots.t;
  group_latency : (int * int) Slots.t;
  group_spans : spans Slots.t; (* group -> packed (start, finish) pairs *)
  node_busy : int array;
  trace : Trace.t;
  ledger : Ledger.t;
  timeline : Timeline.t;
  result_array : int; (* interned ledger array id for forwarded partials *)
  m_tasks : Metrics.vec; (* core.tasks{node} *)
  m_busy : Metrics.vec; (* core.busy_cycles{node} *)
  m_syncs : Metrics.vec; (* core.syncs{node} *)
  m_stall_cycles : Metrics.counter; (* fault.stall_cycles *)
}

let create ?(obs = Ndp_obs.Sink.none) ?faults machine =
  let n = Ndp_noc.Mesh.size (Machine.mesh machine) in
  let reg = obs.Ndp_obs.Sink.metrics in
  let node_label i = Printf.sprintf "node=%d" i in
  let stats = Stats.create ~metrics:reg () in
  let timeline = obs.Ndp_obs.Sink.timeline in
  if Timeline.enabled timeline then begin
    (* Timeline instruments: closures over counters the engine already
       maintains, sampled on the finish-time envelope as tasks retire. *)
    Timeline.register timeline "noc.flit_hops" (fun () -> Stats.hops stats);
    Timeline.register timeline "noc.messages" (fun () -> Stats.messages stats);
    Timeline.register timeline "core.tasks" (fun () -> Stats.tasks stats);
    Timeline.register timeline "mem.l1_misses" (fun () -> Stats.l1_misses stats);
    Timeline.register timeline "mem.l2_misses" (fun () -> Stats.l2_misses stats);
    Timeline.register timeline "sim.syncs" (fun () -> Stats.syncs stats)
  end;
  {
    machine;
    stats;
    faults;
    node_free = Array.make n 0;
    finished = Slots.create None;
    group_hops = Slots.create 0;
    group_latency = Slots.create (0, 0);
    group_spans = Slots.create empty_spans;
    node_busy = Array.make n 0;
    trace = obs.Ndp_obs.Sink.trace;
    ledger = obs.Ndp_obs.Sink.ledger;
    timeline;
    result_array = Ledger.array_id obs.Ndp_obs.Sink.ledger "(result)";
    m_tasks = Metrics.vec reg "core.tasks" ~size:n ~label:node_label;
    m_busy = Metrics.vec reg "core.busy_cycles" ~size:n ~label:node_label;
    m_syncs = Metrics.vec reg "core.syncs" ~size:n ~label:node_label;
    m_stall_cycles =
      (* Registered only under a plan, keeping fault-free dumps unchanged. *)
      Metrics.counter (match faults with Some _ -> reg | None -> Metrics.disabled) "fault.stall_cycles";
  }

let machine t = t.machine

let stats t = t.stats

let attribute_group t group ~hops_before ~lat_before ~msgs_before =
  let s = t.stats in
  Slots.set t.group_hops group (Slots.get t.group_hops group + (Stats.hops s - hops_before));
  let sum, count = Slots.get t.group_latency group in
  Slots.set t.group_latency group
    (sum + (Stats.latency_sum s - lat_before), count + (Stats.messages s - msgs_before))

let run ?(on_load = fun ~va:_ ~l1_hit:_ ~l2_hit:_ -> ()) t tasks =
  let config = Machine.config t.machine in
  let exec (task : Task.t) =
    Ledger.enter_group t.ledger task.group;
    let hops_before = Stats.hops t.stats in
    let lat_before = Stats.latency_sum t.stats in
    let msgs_before = Stats.messages t.stats in
    let issue = t.node_free.(task.node) in
    (* A stalled node issues nothing inside its fault windows: push the
       issue cycle past them and account the lost time. *)
    let issue =
      match t.faults with
      | None -> issue
      | Some plan ->
        let resumed = Ndp_fault.Plan.stall_until plan ~node:task.node ~time:issue in
        if resumed > issue then Metrics.add t.m_stall_cycles (resumed - issue);
        resumed
    in
    let operand_arrival = function
      | Task.Load { va; bytes } ->
        let outcome = Machine.load t.machine ~node:task.node ~va ~bytes ~time:issue ~stats:t.stats in
        on_load ~va ~l1_hit:outcome.Machine.l1_hit ~l2_hit:outcome.Machine.l2_hit;
        outcome.Machine.arrival
      | Task.Result { producer; bytes } -> (
        match Slots.get t.finished producer with
        | None -> invalid_arg "Engine.run: tasks not in producer-before-consumer order"
        | Some r ->
          if r.node = task.node then r.finish
          else begin
            Ledger.enter_array t.ledger t.result_array;
            Network.send (Machine.network t.machine) ~time:r.finish ~src:r.node ~dst:task.node
              ~bytes ~stats:t.stats
          end)
    in
    (* Two direct passes — all loads, then all results, each in operand
       order — replace the partition/map lists: same evaluation order as
       before, no per-task allocation. Loads overlap up to the MSHR bound:
       with [k] outstanding misses the task's memory time is at least the
       longest access and at least the summed latencies divided by [k]. *)
    let load_count = ref 0 and longest = ref issue and total_latency = ref 0 in
    List.iter
      (function
        | Task.Load _ as op ->
          let a = operand_arrival op in
          incr load_count;
          if a > !longest then longest := a;
          total_latency := !total_latency + (a - issue)
        | Task.Result _ -> ())
      task.operands;
    let load_ready =
      max !longest (issue + (!total_latency / max 1 config.Config.outstanding_loads))
    in
    let result_ready =
      List.fold_left
        (fun acc op ->
          match op with
          | Task.Result _ -> max acc (operand_arrival op)
          | Task.Load _ -> acc)
        issue task.operands
    in
    let data_ready = max load_ready result_ready in
    Stats.add_load_wait t.stats (load_ready - issue);
    Stats.add_result_wait t.stats (max 0 (result_ready - load_ready));
    let start = data_ready + (task.syncs * config.Config.sync_cycles) in
    let finish = start + (task.cost * config.Config.op_cycles) in
    (match task.store with
    | Some (va, bytes) ->
      if task.store_local then
        ignore (Machine.store_local t.machine ~node:task.node ~va ~bytes ~time:finish ~stats:t.stats)
      else ignore (Machine.store t.machine ~node:task.node ~va ~bytes ~time:finish ~stats:t.stats)
    | None -> ());
    (* The core issues its loads, then overlaps part of the wait with the
       next tasks in its queue (outstanding-miss parallelism); the
       unhidden fraction plus sync and compute time occupies the core. *)
    (* Waiting on a remote partial result does not occupy the core: the
       generated per-node program runs other ready subcomputations in the
       meantime, and the synchronization handshake itself is charged via
       [sync_cycles]. The wait still delays this task's [finish], so
       dependence chains pay full latency. *)
    let occupancy =
      (!load_count * config.Config.load_issue_cycles)
      + (task.syncs * config.Config.sync_cycles)
      + (task.cost * config.Config.op_cycles)
      + int_of_float ((1.0 -. config.Config.mlp_overlap) *. float_of_int (load_ready - issue))
    in
    t.node_free.(task.node) <- issue + occupancy;
    t.node_busy.(task.node) <- t.node_busy.(task.node) + occupancy;
    Slots.set t.finished task.id (Some { node = task.node; start; finish; group = task.group });
    let spans = Slots.get t.group_spans task.group in
    let spans =
      if spans == empty_spans then begin
        let fresh = { s_data = Array.make 8 0; s_len = 0 } in
        Slots.set t.group_spans task.group fresh;
        fresh
      end
      else spans
    in
    if spans.s_len = Array.length spans.s_data then begin
      let grown = Array.make (2 * spans.s_len) 0 in
      Array.blit spans.s_data 0 grown 0 spans.s_len;
      spans.s_data <- grown
    end;
    spans.s_data.(spans.s_len) <- start;
    spans.s_data.(spans.s_len + 1) <- finish;
    spans.s_len <- spans.s_len + 2;
    Stats.incr_tasks t.stats;
    Stats.add_ops t.stats task.cost;
    Stats.add_syncs t.stats task.syncs;
    Stats.note_finish t.stats finish;
    Metrics.vadd t.m_tasks task.node 1;
    Metrics.vadd t.m_busy task.node occupancy;
    Metrics.vadd t.m_syncs task.node task.syncs;
    Trace.task t.trace ~name:task.label ~node:task.node ~start ~finish ~id:task.id
      ~group:task.group;
    if task.syncs > 0 then
      Trace.sync t.trace ~node:task.node ~ts:data_ready ~producer:(-1) ~consumer:task.id;
    Timeline.tick t.timeline ~now:(Stats.finish_time t.stats);
    attribute_group t task.group ~hops_before ~lat_before ~msgs_before
  in
  List.iter exec tasks

let group_hops t group = Slots.get t.group_hops group

let group_latency t group = Slots.get t.group_latency group

let finish_of t id = Option.map (fun r -> r.finish) (Slots.get t.finished id)

let group_parallelism t group =
  let spans = Slots.get t.group_spans group in
  if spans.s_len = 0 then 0
  else begin
    (* Sweep over span endpoints counting maximum overlap. The sweep is
       order-independent once events are sorted (equal (time, delta)
       events are interchangeable), so the packed-array encoding needs no
       particular append order. *)
    let events = Array.make spans.s_len (0, 0) in
    for i = 0 to (spans.s_len / 2) - 1 do
      let s = spans.s_data.(2 * i) and f = spans.s_data.((2 * i) + 1) in
      events.(2 * i) <- (s, 1);
      events.((2 * i) + 1) <- (max (s + 1) f, -1)
    done;
    Array.sort compare events;
    let cur = ref 0 and peak = ref 0 in
    Array.iter
      (fun (_, d) ->
        cur := !cur + d;
        if !cur > !peak then peak := !cur)
      events;
    !peak
  end

let elapsed t = Array.fold_left max 0 t.node_free

let node_clocks t = Array.copy t.node_free

let node_busy t = Array.copy t.node_busy
