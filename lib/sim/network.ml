module Metrics = Ndp_obs.Metrics
module Trace = Ndp_obs.Trace

type t = {
  mesh : Ndp_noc.Mesh.t;
  config : Config.t;
  (* Per-link utilization accumulated in fixed time epochs. The engine
     replays tasks in program order while node clocks advance at different
     rates, so sends are observed out of simulated-time order; bucketing
     makes contention independent of processing order. *)
  util : (int * int, int) Hashtbl.t; (* (link index, epoch) -> busy cycles *)
  mutable distance_factor : float;
  link_flits : Metrics.vec; (* noc.link_flits{from->to}, indexed by link id *)
  link_busy : Metrics.vec; (* noc.link_busy_cycles{from->to} *)
  msg_latency : Metrics.histogram;
  trace : Trace.t;
}

let epoch_bits = 8
(* 256-cycle epochs: short enough to capture bursts, long enough that a
   message's own service time fits. *)

let epoch_span = 1 lsl epoch_bits

(* Render link [idx] as "x,y->x,y". Built once per network: [link_index]
   is dense, so a reverse table keyed by index serves every label. *)
let link_labeler mesh =
  let labels = Array.make (Ndp_noc.Mesh.num_links mesh) "?" in
  List.iter
    (fun (link : Ndp_noc.Mesh.link) ->
      let c n =
        let { Ndp_noc.Coord.x; y } = Ndp_noc.Mesh.coord_of_node mesh n in
        Printf.sprintf "%d,%d" x y
      in
      labels.(Ndp_noc.Mesh.link_index mesh link) <-
        Printf.sprintf "%s->%s" (c link.Ndp_noc.Mesh.from_node) (c link.Ndp_noc.Mesh.to_node))
    (Ndp_noc.Mesh.links mesh);
  fun i -> labels.(i)

let create ?(obs = Ndp_obs.Sink.none) (config : Config.t) =
  let mesh = Config.mesh config in
  let label = link_labeler mesh in
  let n = Ndp_noc.Mesh.num_links mesh in
  {
    mesh;
    config;
    util = Hashtbl.create 4096;
    distance_factor = 1.0;
    link_flits = Metrics.vec obs.Ndp_obs.Sink.metrics "noc.link_flits" ~size:n ~label;
    link_busy = Metrics.vec obs.Ndp_obs.Sink.metrics "noc.link_busy_cycles" ~size:n ~label;
    msg_latency = Metrics.histogram obs.Ndp_obs.Sink.metrics "noc.msg_latency";
    trace = obs.Ndp_obs.Sink.trace;
  }

let set_distance_factor t f =
  if f < 0.0 || f > 1.0 then invalid_arg "Network.set_distance_factor: factor must be in [0,1]";
  t.distance_factor <- f

(* Under a distance factor < 1 we traverse only a prefix of the route,
   modelling a counterfactual where data had to travel proportionally
   fewer links. *)
let effective_route t route =
  if t.distance_factor >= 1.0 then route
  else begin
    let n = List.length route in
    let keep = int_of_float (Float.round (t.distance_factor *. float_of_int n)) in
    List.filteri (fun i _ -> i < keep) route
  end

let send t ~time ~src ~dst ~bytes ~stats =
  if src = dst then time
  else begin
    let flits = Config.flits_of_bytes t.config bytes in
    let route = effective_route t (Ndp_noc.Mesh.xy_route t.mesh ~src ~dst) in
    let service = flits * t.config.Config.link_service_cycles in
    let traverse now link =
      let idx = Ndp_noc.Mesh.link_index t.mesh link in
      let key = (idx, now lsr epoch_bits) in
      let load = Option.value (Hashtbl.find_opt t.util key) ~default:0 in
      Hashtbl.replace t.util key (load + service);
      Metrics.vadd t.link_flits idx flits;
      Metrics.vadd t.link_busy idx service;
      (* Queueing: demand beyond the epoch's capacity waits. *)
      let wait = max 0 (load + service - epoch_span) in
      now + t.config.Config.hop_cycles + (service - 1) + wait
    in
    let arrival = List.fold_left traverse time route in
    let hops = List.length route in
    Stats.add_hops stats (hops * flits);
    Stats.incr_messages stats;
    let latency = arrival - time in
    Stats.note_latency stats latency;
    Metrics.observe t.msg_latency (float_of_int latency);
    Trace.message t.trace ~src ~dst ~depart:time ~arrival ~bytes;
    arrival
  end

let reset t = Hashtbl.reset t.util

let mesh t = t.mesh
