module Metrics = Ndp_obs.Metrics
module Trace = Ndp_obs.Trace
module Ledger = Ndp_obs.Ledger
module Plan = Ndp_fault.Plan

type t = {
  mesh : Ndp_noc.Mesh.t;
  config : Config.t;
  (* Per-link utilization accumulated in fixed time epochs. The engine
     replays tasks in program order while node clocks advance at different
     rates, so sends are observed out of simulated-time order; bucketing
     makes contention independent of processing order. One growable
     epoch-indexed array per link ([util.(link).(epoch)] = busy cycles)
     keeps state proportional to the links actually touched and makes the
     hot lookup two array reads. *)
  util : int array array;
  mutable distance_factor : float;
  faults : Plan.t option;
  link_flits : Metrics.vec; (* noc.link_flits{from->to}, indexed by link id *)
  link_busy : Metrics.vec; (* noc.link_busy_cycles{from->to} *)
  msg_latency : Metrics.histogram;
  fault_retries : Metrics.counter; (* fault.link_retries *)
  fault_drops : Metrics.counter; (* fault.msg_drops *)
  trace : Trace.t;
  ledger : Ledger.t;
}

let epoch_bits = 8
(* 256-cycle epochs: short enough to capture bursts, long enough that a
   message's own service time fits. *)

let epoch_span = 1 lsl epoch_bits

(* Render link [idx] as "x,y->x,y". Built once per network: [link_index]
   is dense, so a reverse table keyed by index serves every label. *)
let link_labeler mesh =
  let labels = Array.make (Ndp_noc.Mesh.num_links mesh) "?" in
  List.iter
    (fun (link : Ndp_noc.Mesh.link) ->
      let c n =
        let { Ndp_noc.Coord.x; y } = Ndp_noc.Mesh.coord_of_node mesh n in
        Printf.sprintf "%d,%d" x y
      in
      labels.(Ndp_noc.Mesh.link_index mesh link) <-
        Printf.sprintf "%s->%s" (c link.Ndp_noc.Mesh.from_node) (c link.Ndp_noc.Mesh.to_node))
    (Ndp_noc.Mesh.links mesh);
  fun i -> labels.(i)

let create ?(obs = Ndp_obs.Sink.none) ?faults (config : Config.t) =
  let mesh = Config.mesh config in
  let label = link_labeler mesh in
  let n = Ndp_noc.Mesh.num_links mesh in
  let registry = obs.Ndp_obs.Sink.metrics in
  (* fault.* instruments live in the registry only when a plan is present,
     so fault-free metric dumps are byte-identical to pre-fault output. *)
  let fault_registry =
    match faults with Some _ -> registry | None -> Metrics.disabled
  in
  (match faults with
  | None -> ()
  | Some plan ->
      (* Static plan shape, published once so [stats --format json] shows
         what was injected alongside the dynamic fault.* counters. *)
      let killed, degraded, stalled, mcs = Plan.counts plan in
      Metrics.set_gauge (Metrics.gauge registry "fault.links_killed") (float_of_int killed);
      Metrics.set_gauge (Metrics.gauge registry "fault.links_degraded") (float_of_int degraded);
      Metrics.set_gauge (Metrics.gauge registry "fault.nodes_stalled") (float_of_int stalled);
      Metrics.set_gauge (Metrics.gauge registry "fault.mcs_slowed") (float_of_int mcs));
  {
    mesh;
    config;
    util = Array.make n [||];
    distance_factor = 1.0;
    faults;
    link_flits = Metrics.vec registry "noc.link_flits" ~size:n ~label;
    link_busy = Metrics.vec registry "noc.link_busy_cycles" ~size:n ~label;
    msg_latency = Metrics.histogram registry "noc.msg_latency";
    fault_retries = Metrics.counter fault_registry "fault.link_retries";
    fault_drops = Metrics.counter fault_registry "fault.msg_drops";
    trace = obs.Ndp_obs.Sink.trace;
    ledger = obs.Ndp_obs.Sink.ledger;
  }

let set_distance_factor t f =
  if f < 0.0 || f > 1.0 then invalid_arg "Network.set_distance_factor: factor must be in [0,1]";
  t.distance_factor <- f

(* Under a distance factor < 1 we traverse only a prefix of the route,
   modelling a counterfactual where data had to travel proportionally
   fewer links. *)
let effective_hops t total =
  if t.distance_factor >= 1.0 then total
  else int_of_float (Float.round (t.distance_factor *. float_of_int total))

(* Occupancy of link [idx] in epoch [epoch], adding [service] busy cycles.
   Per-link arrays grow geometrically to the highest epoch touched. *)
let bump_util t idx epoch service =
  let a = t.util.(idx) in
  let a =
    if epoch < Array.length a then a
    else begin
      let len = ref (max 64 (Array.length a * 2)) in
      while epoch >= !len do len := !len * 2 done;
      let b = Array.make !len 0 in
      Array.blit a 0 b 0 (Array.length a);
      t.util.(idx) <- b;
      b
    end
  in
  let load = a.(epoch) in
  a.(epoch) <- load + service;
  load

let send t ~time ~src ~dst ~bytes ~stats =
  if src = dst then time
  else begin
    let flits = Config.flits_of_bytes t.config bytes in
    let route = Ndp_noc.Mesh.route_links t.mesh ~src ~dst in
    let hops = effective_hops t (Array.length route) in
    let service = flits * t.config.Config.link_service_cycles in
    let hop_cycles = t.config.Config.hop_cycles in
    let traverse now idx service =
      let load = bump_util t idx (now lsr epoch_bits) service in
      Metrics.vadd t.link_flits idx flits;
      Metrics.vadd t.link_busy idx service;
      (* Queueing: demand beyond the epoch's capacity waits. *)
      let wait = max 0 (load + service - epoch_span) in
      now + hop_cycles + (service - 1) + wait
    in
    let arrival =
      match t.faults with
      | None ->
          (* Fault-free fast path: no per-link plan consultation. *)
          let now = ref time in
          for i = 0 to hops - 1 do
            now := traverse !now route.(i) service
          done;
          !now
      | Some plan ->
          (* Fault model: a degraded link serves flits more slowly
             (service time scaled by its factor); a killed link times out
             [max_retries] send attempts before the message is forced
             through on the maintenance path — pure arithmetic on plan
             data, so runs stay deterministic. *)
          let now = ref time in
          for i = 0 to hops - 1 do
            let idx = route.(i) in
            let f = Plan.link_factor plan idx in
            let service =
              if f = 1.0 then service
              else int_of_float (ceil (float_of_int service *. f))
            in
            if Plan.link_killed plan idx then begin
              let retries = Plan.max_retries plan in
              Metrics.add t.fault_retries retries;
              Metrics.incr t.fault_drops;
              now := !now + (retries * Plan.retry_timeout plan)
            end;
            now := traverse !now idx service
          done;
          !now
    in
    (* Each traversed link also received [flits] in [noc.link_flits], so
       charging [flits x hops] here keeps the ledger total reconciled with
       the link-flit total by construction. *)
    Ledger.account t.ledger ~src ~dst ~flits ~links:hops;
    Stats.add_hops stats (hops * flits);
    Stats.incr_messages stats;
    let latency = arrival - time in
    Stats.note_latency stats latency;
    Metrics.observe t.msg_latency (float_of_int latency);
    Trace.message t.trace ~src ~dst ~depart:time ~arrival ~bytes;
    arrival
  end

let reset t =
  Array.fill t.util 0 (Array.length t.util) [||];
  (* A counterfactual run must not leak its path-length scaling into the
     next experiment on a reused network. *)
  t.distance_factor <- 1.0

let mesh t = t.mesh
