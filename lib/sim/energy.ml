type breakdown = {
  network : float;
  l1 : float;
  l2 : float;
  dram : float;
  compute : float;
  sync : float;
}

(* pJ per event: flit-hop, L1 access, L2 bank access, MCDRAM/DDR access,
   operation unit, synchronization handshake. *)
let hop_pj = 1.2
let l1_pj = 0.6
let l2_pj = 3.0
let mcdram_pj = 60.0
let ddr_pj = 110.0
let op_pj = 1.0
let sync_pj = 4.0

let of_stats (s : Stats.t) =
  {
    network = float_of_int (Stats.hops s) *. hop_pj;
    l1 = float_of_int (Stats.l1_hits s + Stats.l1_misses s) *. l1_pj;
    l2 = float_of_int (Stats.l2_hits s + Stats.l2_misses s) *. l2_pj;
    dram =
      (float_of_int (Stats.mcdram_accesses s) *. mcdram_pj)
      +. (float_of_int (Stats.ddr_accesses s) *. ddr_pj);
    compute = float_of_int (Stats.ops s) *. op_pj;
    sync = float_of_int (Stats.syncs s) *. sync_pj;
  }

let total b = b.network +. b.l1 +. b.l2 +. b.dram +. b.compute +. b.sync

let pp ppf b =
  Format.fprintf ppf "net %.0f l1 %.0f l2 %.0f dram %.0f compute %.0f sync %.0f (total %.0f pJ)"
    b.network b.l1 b.l2 b.dram b.compute b.sync (total b)
