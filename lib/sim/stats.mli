(** Aggregate counters collected by the execution engine.

    The type is opaque: readers go through the named accessors or
    {!to_alist}, writers through the typed bump functions. Internally each
    counter is an [Ndp_obs.Metrics] instrument — pass [?metrics] at
    {!create} to register them (under [sim.*] names) in a caller-owned
    registry, so one [Metrics.to_alist] dump interleaves the aggregate
    stats with the per-link / per-node / per-bank families the subsystems
    register in the same registry. Counting is always on: a disabled (or
    absent) registry changes where the counters live, never whether they
    count. *)

type t

val create : ?metrics:Ndp_obs.Metrics.t -> unit -> t
(** Fresh zeroed counters. When [metrics] is given and enabled, the
    counters are registered in it as [sim.l1_hits], [sim.hops], ...;
    otherwise they live in a private registry. *)

val copy : t -> t
(** A detached snapshot (backed by a private registry). *)

(** {1 Accessors} *)

val l1_hits : t -> int
val l1_misses : t -> int
val l2_hits : t -> int
val l2_misses : t -> int
val mcdram_accesses : t -> int
val ddr_accesses : t -> int

val hops : t -> int
(** Total link traversals weighted by flits. *)

val messages : t -> int

val latency_sum : t -> int
(** Network latency summed across all messages. *)

val latency_max : t -> int

val ops : t -> int
(** Weighted operation units executed. *)

val syncs : t -> int
(** Point-to-point synchronizations performed. *)

val tasks : t -> int

val finish_time : t -> int
(** Simulated completion cycle. *)

val load_wait : t -> int
(** Cycles tasks waited on memory operands. *)

val result_wait : t -> int
(** Cycles tasks waited on partial results. *)

val invalidations : t -> int
(** L1 copies killed by remote stores. *)

val prefetches : t -> int
(** Next-line prefetch fills issued. *)

val l1_hit_rate : t -> float

val l2_hit_rate : t -> float

val avg_latency : t -> float
(** 0.0 when no messages were sent. *)

val to_alist : t -> (string * int) list
(** Every counter as [(name, value)], in a fixed documented order
    (the declaration order above, [l1_hits] first). *)

val equal : t -> t -> bool
(** All counters equal — the metrics-on/off determinism check. *)

(** {1 Bumps (simulator-internal writers)} *)

val incr_l1_hits : t -> unit
val incr_l1_misses : t -> unit
val incr_l2_hits : t -> unit
val incr_l2_misses : t -> unit
val incr_mcdram_accesses : t -> unit
val incr_ddr_accesses : t -> unit
val add_hops : t -> int -> unit
val incr_messages : t -> unit

val note_latency : t -> int -> unit
(** Adds to [latency_sum] and raises [latency_max]. *)

val add_ops : t -> int -> unit
val add_syncs : t -> int -> unit
val incr_tasks : t -> unit

val note_finish : t -> int -> unit
(** Raises [finish_time] to the given cycle if later. *)

val add_load_wait : t -> int -> unit
val add_result_wait : t -> int -> unit
val incr_invalidations : t -> unit
val incr_prefetches : t -> unit

val pp : Format.formatter -> t -> unit
(** Human summary. Average latency renders as ["-"] on runs with no
    messages (never ["nan"]). *)
