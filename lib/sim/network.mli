(** 2D-mesh network with per-link contention.

    Messages follow deterministic XY routes. Each directed link can accept
    one flit per [link_service_cycles]; a message occupies each link on its
    path for [flits * service] cycles, so overlapping transfers queue —
    long routes both add latency and raise contention, the two effects the
    paper's partitioner attacks. *)

type t

val create : ?obs:Ndp_obs.Sink.t -> ?faults:Ndp_fault.Plan.t -> Config.t -> t
(** With [obs], every traversal bumps per-link flit/busy counters
    ([noc.link_flits{x,y->x,y}], [noc.link_busy_cycles{...}]), message
    latencies feed the [noc.msg_latency] histogram, and each message emits
    a trace event. Disabled by default; observability never changes
    arrival times or [stats].

    With [faults], degraded links scale their per-flit service time by the
    plan's factor and killed links charge a bounded retry-with-timeout
    penalty ([max_retries * retry_timeout] cycles per crossing), surfaced
    through the [fault.link_retries] / [fault.msg_drops] counters and
    [fault.links_*] gauges. Without a plan, arrival arithmetic is exactly
    the pre-fault code path. *)

val send : t -> time:int -> src:int -> dst:int -> bytes:int -> stats:Stats.t -> int
(** Inject a message; returns its arrival time at [dst]. A [src = dst]
    message arrives immediately and touches no link. Updates hop, message
    and latency counters in [stats]. *)

val reset : t -> unit
(** Clear all link occupancy and restore the distance factor to 1.0
    (between independent experiment runs). *)

val set_distance_factor : t -> float -> unit
(** Scale every message's effective path length by a factor in (0, 1].
    Used by the S2 isolation scheme (Figure 18) to impose the optimized
    code's data-movement costs on the default placement, and with factor 0
    by the ideal-network scenario (Section 6.4). Hop and latency statistics
    are scaled accordingly. *)

val mesh : t -> Ndp_noc.Mesh.t
