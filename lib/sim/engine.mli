(** Event-driven execution of task graphs on the simulated machine.

    The engine keeps per-node clocks and the network's link occupancy
    across calls, so windows compiled and executed in program order see
    realistic contention. Tasks must arrive producer-before-consumer. *)

type t

val create : ?obs:Ndp_obs.Sink.t -> ?faults:Ndp_fault.Plan.t -> Machine.t -> t
(** With [obs], every executed task emits a trace event (label, node,
    start/finish cycle, task id, group) plus an instant event per
    synchronizing task, and per-node task/busy/sync vectors
    ([core.tasks{node}], ...) are registered in [obs.metrics]. The
    engine's {!stats} counters are registered in [obs.metrics] (as
    [sim.*]) when it is enabled. Observability never changes scheduling
    or timing.

    With [faults], a task issued on a node during one of the plan's stall
    windows waits until the window closes; the lost cycles accumulate in
    the [fault.stall_cycles] counter. *)

val machine : t -> Machine.t

val stats : t -> Stats.t

val run :
  ?on_load:(va:int -> l1_hit:bool -> l2_hit:bool option -> unit) ->
  t ->
  Task.t list ->
  unit
(** Execute the tasks. [on_load] observes every [Load] operand's actual
    cache outcome (used to confirm compile-time predictions). *)

val group_hops : t -> int -> int
(** Flit-hops attributed to a statement-instance group so far. *)

val group_latency : t -> int -> int * int
(** [(sum, count)] of network latencies attributed to a group. *)

val finish_of : t -> int -> int option
(** Finish time of a task id, if it has executed. *)

val group_parallelism : t -> int -> int
(** Maximum number of that group's tasks whose executions overlapped in
    simulated time — the realized degree of subcomputation parallelism. *)

val elapsed : t -> int
(** Latest completion time across all nodes. *)

val node_clocks : t -> int array
(** Copy of each node's busy-until time. *)

val node_busy : t -> int array
(** Total busy cycles per node (sum of task spans). *)
