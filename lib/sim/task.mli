(** Schedulable subcomputations.

    The partitioner compiles every statement instance into one or more
    tasks; the default (iteration-granularity) placement compiles it into
    exactly one. Tasks reference each other through [Result] operands,
    which both carry the partial result over the network and order
    execution. *)

type op_mix = { add_sub : int; mul_div : int; other : int }

type operand =
  | Load of { va : int; bytes : int }
  | Result of { producer : int; bytes : int } (** producer task id *)

type t = {
  id : int;
  group : int; (** statement-instance id, for per-statement accounting *)
  node : int;
  cost : int; (** weighted operation units (division = 10) *)
  mix : op_mix;
  operands : operand list;
  store : (int * int) option; (** (va, bytes) final result write-back *)
  store_local : bool;
      (** the store stays in the executing node's L1 (no home write-back):
          set by the fusion pass on intermediates whose every consumer runs
          on this node, so the line never crosses the NoC *)
  syncs : int; (** explicit synchronizations awaited before starting *)
  label : string;
}

val zero_mix : op_mix

val mix_add : op_mix -> op_mix -> op_mix

val mix_of_ops : Ndp_ir.Op.t list -> op_mix

val mix_total : op_mix -> int

val cost_of_ops : Ndp_ir.Op.t list -> int

val make :
  id:int ->
  group:int ->
  node:int ->
  ops:Ndp_ir.Op.t list ->
  operands:operand list ->
  ?store:int * int ->
  ?store_local:bool ->
  ?syncs:int ->
  label:string ->
  unit ->
  t
