type op_mix = { add_sub : int; mul_div : int; other : int }

type operand =
  | Load of { va : int; bytes : int }
  | Result of { producer : int; bytes : int }

type t = {
  id : int;
  group : int;
  node : int;
  cost : int;
  mix : op_mix;
  operands : operand list;
  store : (int * int) option;
  store_local : bool;
  syncs : int;
  label : string;
}

let zero_mix = { add_sub = 0; mul_div = 0; other = 0 }

let mix_add a b =
  { add_sub = a.add_sub + b.add_sub; mul_div = a.mul_div + b.mul_div; other = a.other + b.other }

let mix_of_ops ops =
  let rec go a m o = function
    | [] -> { add_sub = a; mul_div = m; other = o }
    | op :: tl -> (
      match Ndp_ir.Op.kind op with
      | Ndp_ir.Op.Add_sub -> go (a + 1) m o tl
      | Ndp_ir.Op.Mul_div -> go a (m + 1) o tl
      | Ndp_ir.Op.Other -> go a m (o + 1) tl)
  in
  go 0 0 0 ops

let mix_total m = m.add_sub + m.mul_div + m.other

let cost_of_ops ops = List.fold_left (fun acc op -> acc + Ndp_ir.Op.cost op) 0 ops

let make ~id ~group ~node ~ops ~operands ?store ?(store_local = false) ?(syncs = 0) ~label () =
  {
    id;
    group;
    node;
    cost = cost_of_ops ops;
    mix = mix_of_ops ops;
    operands;
    store;
    store_local;
    syncs;
    label;
  }
